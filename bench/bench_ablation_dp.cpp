// Ablation: client-level differential privacy (Section 6.1, "privacy-
// preserving data mining"). Sweeps the Gaussian-mechanism noise multiplier
// at a fixed clipping norm and reports the accuracy cost next to the
// single-round (epsilon, delta) guarantee — the utility/privacy trade-off
// the paper flags as an open challenge for data silos.
//
// Flags: --dataset=covtype --clip=5 --noise=0,0.01,0.05,0.2 --dp_delta=1e-5
//        + common.

#include <cstdlib>
#include <iostream>

#include "bench_common.h"
#include "fl/privacy.h"

int main(int argc, char** argv) {
  const niid::FlagParser flags(argc, argv);
  niid::ExperimentConfig config = niid::bench::BaseConfig(
      flags, /*default_rounds=*/10, /*default_epochs=*/2);
  config.dataset = flags.GetString("dataset", "covtype");
  config.dp.clip_norm = flags.GetDouble("clip", 5.0);
  const double dp_delta = flags.GetDouble("dp_delta", 1e-5);
  if (!niid::bench::ApplyPartitionShorthand(
          config, flags.GetString("partition", "dir"))) {
    std::cerr << "bad partition\n";
    return 1;
  }
  niid::bench::Banner(
      "Ablation — differential privacy (clip " +
          std::to_string(config.dp.clip_norm) + ") on " + config.dataset,
      config);

  niid::Table table({"noise multiplier z", "per-round epsilon",
                     "naive T-round epsilon", "accuracy"});
  for (const std::string& noise_text : niid::bench::SplitCsvFlag(
           flags.GetString("noise", "0,0.01,0.05,0.2"))) {
    config.dp.noise_multiplier = std::atof(noise_text.c_str());
    const niid::ExperimentResult result = niid::RunExperiment(config);
    std::string eps = "inf (no noise)", eps_total = "inf";
    if (config.dp.noise_multiplier > 0) {
      const double e = niid::GaussianMechanismEpsilon(
          config.dp.noise_multiplier, dp_delta);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f", e);
      eps = buf;
      std::snprintf(buf, sizeof(buf), "%.2f", e * config.rounds);
      eps_total = buf;
    }
    table.AddRow({noise_text, eps, eps_total,
                  niid::FormatAccuracy(result.FinalAccuracies())});
    std::cerr << "done: z=" << noise_text << "\n";
  }
  table.Print(std::cout);
  std::cout << "\n(epsilon at delta=" << dp_delta
            << "; T-round column is the naive linear composition upper "
               "bound)\n";
  return 0;
}
