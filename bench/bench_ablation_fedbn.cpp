// Ablation: aggregation of BatchNorm statistics (Finding 7 / Section 6.2).
// Compares the default "average everything" aggregation with the FedBN-style
// alternative the paper suggests — average only learned parameters, let each
// party keep its own BatchNorm running statistics — on a BN ResNet under a
// feature-skew (noise) partition, where local statistics genuinely differ.
//
// Flags: --dataset=cifar10 --partition=noise --resnet_blocks=1 + common.

#include <iostream>

#include "bench_common.h"
#include "core/curves.h"

int main(int argc, char** argv) {
  const niid::FlagParser flags(argc, argv);
  niid::ExperimentConfig config = niid::bench::BaseConfig(
      flags, /*default_rounds=*/8, /*default_epochs=*/2);
  config.dataset = flags.GetString("dataset", "cifar10");
  config.model = "resnet";
  config.resnet_blocks_per_stage = flags.GetInt("resnet_blocks", 1);
  config.catalog.size_factor = flags.GetDouble("size_factor", 0.008);
  config.catalog.min_train_size = flags.GetInt64("min_train", 320);
  if (!flags.Has("lr_scale") && !flags.GetBool("paper_scale", false)) {
    config.lr_scale = 6.f;  // the BN ResNet tolerates a hotter profile
  }
  if (!niid::bench::ApplyPartitionShorthand(
          config, flags.GetString("partition", "noise"))) {
    std::cerr << "bad partition\n";
    return 1;
  }
  config.partition.noise_sigma = flags.GetDouble("noise_sigma", 0.1);
  niid::bench::Banner(
      "Ablation — BatchNorm aggregation (average vs keep-local) on " +
          config.dataset + " " + config.partition.Label(),
      config);

  // Both arms run a manual loop so the FedBN-style arm can be evaluated the
  // way the FedBN paper evaluates it: as personalized per-party models (each
  // party keeps its own BatchNorm statistics), averaged over parties. The
  // average-BN arm is scored on the global model, as in the paper.
  std::vector<niid::Curve> curves;
  niid::LocalTrainOptions local = config.local;
  local.learning_rate = niid::ResolveLearningRate(config);
  for (const bool average : {true, false}) {
    config.algo.average_bn_buffers = average;
    niid::Dataset test;
    auto server = niid::BuildServerForTrial(config, 0, &test);
    niid::Curve curve{average ? "average-BN (global model)"
                              : "keep-local-BN (personalized)",
                      {}};
    for (int round = 0; round < config.rounds; ++round) {
      server->RunRound(local);
      if (average) {
        curve.values.push_back(server->EvaluateGlobal(test).accuracy);
      } else {
        // Personalized evaluation, the standard FedBN protocol: each party's
        // model = the global trainable weights + its own BatchNorm
        // statistics.
        double sum = 0.0;
        for (int i = 0; i < server->num_clients(); ++i) {
          sum += server->EvaluatePersonalized(i, test).accuracy;
        }
        curve.values.push_back(sum / server->num_clients());
      }
    }
    curves.push_back(std::move(curve));
    std::cerr << "done: average_bn_buffers=" << average << "\n";
  }
  niid::PrintCurves(curves, std::cout);
  std::cout << "\ninstability / final accuracy:\n";
  for (const niid::Curve& curve : curves) {
    std::cout << "  " << curve.label
              << ": instability=" << niid::CurveInstability(curve.values)
              << " final=" << niid::FormatPercent(curve.values.back())
              << "\n";
  }
  std::cout << "\nNOTE: the two arms answer different questions — average-BN "
               "scores one global model (the paper's Finding 7 setting); "
               "keep-local-BN scores personalized party models (global "
               "trainables + each party's own BatchNorm statistics), which "
               "is what FedBN-style aggregation is for (Section 6.2).\n";
  niid::bench::PrintResourceFootprint(std::cout);
  return 0;
}
