// Ablation: FedNova's normalized averaging versus plain FedAvg when parties
// take *heterogeneous numbers of local steps* — exactly the setting FedNova
// was designed for (Section 3.2). Under strong quantity skew (q ~ Dir(beta)
// with small beta) the number of mini-batches per round differs widely
// across parties, so FedAvg's update is biased toward large parties.
//
// Flags: --dataset=covtype --betas=0.1,0.5,5 + common.

#include <cstdlib>
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  const niid::FlagParser flags(argc, argv);
  niid::ExperimentConfig base = niid::bench::BaseConfig(
      flags, /*default_rounds=*/10, /*default_epochs=*/3);
  base.dataset = flags.GetString("dataset", "covtype");
  base.partition.strategy = niid::PartitionStrategy::kQuantityDirichlet;
  base.partition.min_samples_per_party = 8;
  niid::bench::Banner(
      "Ablation — FedNova vs FedAvg under heterogeneous local steps "
      "(quantity skew) on " + base.dataset,
      base);

  niid::Table table({"q~Dir(beta)", "FedAvg", "FedProx", "SCAFFOLD",
                     "FedNova"});
  for (const std::string& beta_text :
       niid::bench::SplitCsvFlag(flags.GetString("betas", "0.1,0.5,5"))) {
    niid::ExperimentConfig config = base;
    config.partition.beta = std::atof(beta_text.c_str());
    std::vector<std::string> row = {"beta=" + beta_text};
    for (const std::string& algorithm : niid::AlgorithmNames()) {
      config.algorithm = algorithm;
      const niid::ExperimentResult result = niid::RunExperiment(config);
      row.push_back(niid::FormatAccuracy(result.FinalAccuracies()));
      std::cerr << "done: beta=" << beta_text << "/" << algorithm << "\n";
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\nSmaller beta = stronger quantity skew = more "
               "heterogeneous step counts tau_i per round.\n";

  // Second axis of heterogeneity: same data sizes, but each party runs a
  // random number of local epochs E_i ~ U{1..E} (a time-budget model).
  niid::Table epoch_table({"local epochs", "FedAvg", "FedProx", "SCAFFOLD",
                           "FedNova"});
  for (const bool heterogeneous : {false, true}) {
    niid::ExperimentConfig config = base;
    config.partition.strategy = niid::PartitionStrategy::kHomogeneous;
    config.min_local_epochs = heterogeneous ? 1 : 0;
    std::vector<std::string> row = {
        heterogeneous ? "E_i ~ U{1..E} (heterogeneous)" : "fixed E"};
    for (const std::string& algorithm : niid::AlgorithmNames()) {
      config.algorithm = algorithm;
      const niid::ExperimentResult result = niid::RunExperiment(config);
      row.push_back(niid::FormatAccuracy(result.FinalAccuracies()));
      std::cerr << "done: " << row[0] << "/" << algorithm << "\n";
    }
    epoch_table.AddRow(std::move(row));
  }
  std::cout << "\nHeterogeneous local-epoch budgets (IID data):\n";
  epoch_table.Print(std::cout);
  return 0;
}
