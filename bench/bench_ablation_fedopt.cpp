// Ablation: the adaptive server-optimizer family (FedAdam / FedYogi /
// FedAdagrad, Reddi et al.) versus the paper's four algorithms under label
// skew. The FedOpt paper reports that adaptive server optimizers help most
// when client updates are heterogeneous — exactly the regime NIID-Bench
// constructs — so this bench extends the paper's Table 3 comparison with
// the natural next generation of algorithms.
//
// Flags: --dataset=cifar10 --partitions=dir,c2,homo --server_lr=0.03
//        + common.

#include <iostream>

#include "bench_common.h"
#include "core/leaderboard.h"

int main(int argc, char** argv) {
  const niid::FlagParser flags(argc, argv);
  niid::ExperimentConfig base = niid::bench::BaseConfig(
      flags, /*default_rounds=*/10, /*default_epochs=*/2);
  base.dataset = flags.GetString("dataset", "cifar10");
  base.algo.fedopt_server_lr =
      static_cast<float>(flags.GetDouble("server_lr", 0.03));
  niid::bench::Banner(
      "Ablation — FedOpt family vs the paper's algorithms on " +
          base.dataset,
      base);

  const std::vector<std::string> partitions =
      niid::bench::SplitCsvFlag(flags.GetString("partitions", "dir,homo"));
  const std::vector<std::string> algorithms =
      niid::ExtendedAlgorithmNames();

  niid::Leaderboard leaderboard;
  std::vector<std::string> headers = {"partition"};
  headers.insert(headers.end(), algorithms.begin(), algorithms.end());
  niid::Table table(headers);
  for (const std::string& partition : partitions) {
    niid::ExperimentConfig config = base;
    if (!niid::bench::ApplyPartitionShorthand(config, partition)) {
      std::cerr << "bad partition " << partition << "\n";
      return 1;
    }
    std::vector<std::string> row = {config.partition.Label()};
    for (const std::string& algorithm : algorithms) {
      config.algorithm = algorithm;
      const niid::ExperimentResult result = niid::RunExperiment(config);
      row.push_back(niid::FormatAccuracy(result.FinalAccuracies()));
      leaderboard.AddResult(result);
      std::cerr << "done: " << config.partition.Label() << "/" << algorithm
                << "\n";
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\n";
  leaderboard.Print(std::cout);
  if (flags.Has("out_csv")) {
    const niid::Status saved = leaderboard.SaveCsv(flags.GetString("out_csv", ""));
    if (!saved.ok()) {
      std::cerr << "failed to write out_csv: " << saved.ToString() << "\n";
      return 1;
    }
  }
  return 0;
}
