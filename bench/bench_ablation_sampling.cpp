// Ablation: skew-aware party sampling (Section 6.1, "non-IID resistant
// sampling for partial participation"). Reruns the Figure 12 setting —
// many parties, low sample fraction, label skew — with uniform versus
// skew-aware sampling. Expected shape: matching the sampled pool's label
// distribution to the global one removes much of the round-to-round drift
// of the averaged update, so curves are visibly more stable.
//
// Flags: --parties=100 --fraction=0.1 --partition=dir + common.

#include <iostream>

#include "bench_common.h"
#include "core/curves.h"

int main(int argc, char** argv) {
  const niid::FlagParser flags(argc, argv);
  niid::ExperimentConfig base = niid::bench::BaseConfig(
      flags, /*default_rounds=*/20, /*default_epochs=*/2);
  base.dataset = flags.GetString("dataset", "cifar10");
  base.partition.num_parties = flags.GetInt("parties", 100);
  base.sample_fraction = flags.GetDouble("fraction", 0.1);
  base.partition.min_samples_per_party = 2;
  base.catalog.size_factor = flags.GetDouble("size_factor", 0.04);
  base.catalog.min_train_size = flags.GetInt64("min_train", 2000);
  if (!niid::bench::ApplyPartitionShorthand(
          base, flags.GetString("partition", "dir"))) {
    std::cerr << "bad partition\n";
    return 1;
  }
  niid::bench::Banner(
      "Ablation — uniform vs skew-aware sampling, " +
          std::to_string(base.partition.num_parties) + " parties, fraction " +
          std::to_string(base.sample_fraction),
      base);

  for (const std::string& algorithm : {std::string("fedavg"),
                                       std::string("fedprox")}) {
    niid::ExperimentConfig config = base;
    config.algorithm = algorithm;
    std::cout << "---- " << algorithm << " ----\n";
    std::vector<niid::Curve> curves;
    for (const bool skew_aware : {false, true}) {
      config.skew_aware_sampling = skew_aware;
      const niid::ExperimentResult result = niid::RunExperiment(config);
      curves.push_back({skew_aware ? "skew-aware" : "uniform",
                        result.MeanCurve()});
      std::cerr << "done: " << algorithm << "/"
                << (skew_aware ? "skew-aware" : "uniform") << "\n";
    }
    niid::PrintCurves(curves, std::cout, std::max(1, config.rounds / 10));
    std::cout << "instability / final accuracy:\n";
    for (const niid::Curve& curve : curves) {
      std::cout << "  " << curve.label
                << ": instability=" << niid::CurveInstability(curve.values)
                << " final=" << niid::FormatPercent(curve.values.back())
                << "\n";
    }
    std::cout << "\n";
  }
  return 0;
}
