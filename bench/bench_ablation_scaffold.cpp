// Ablation: SCAFFOLD's two control-variate update rules (Algorithm 2,
// line 23). Option (i) recomputes the full-batch gradient at the global
// model (more compute, potentially more stable); option (ii) reuses the
// local update (cheap). The paper discusses the trade-off in Section 3.3;
// this bench measures both accuracy and wall-clock on a label-skew setting.
//
// Flags: --dataset=cifar10 --partition=dir + common.

#include <chrono>
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  const niid::FlagParser flags(argc, argv);
  niid::ExperimentConfig config = niid::bench::BaseConfig(
      flags, /*default_rounds=*/8, /*default_epochs=*/2);
  config.dataset = flags.GetString("dataset", "cifar10");
  config.algorithm = "scaffold";
  if (!niid::bench::ApplyPartitionShorthand(
          config, flags.GetString("partition", "dir"))) {
    std::cerr << "bad partition\n";
    return 1;
  }
  niid::bench::Banner("Ablation — SCAFFOLD control-variate option (i) vs "
                      "(ii) on " + config.dataset,
                      config);

  niid::Table table({"variant", "accuracy", "wall-clock (s)"});
  for (int variant : {1, 2}) {
    config.algo.scaffold_variant = variant;
    const auto start = std::chrono::steady_clock::now();
    const niid::ExperimentResult result = niid::RunExperiment(config);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    char secs[32];
    std::snprintf(secs, sizeof(secs), "%.1f", seconds);
    table.AddRow({variant == 1 ? "(i) full-batch gradient"
                               : "(ii) reuse local update",
                  niid::FormatAccuracy(result.FinalAccuracies()), secs});
    std::cerr << "done: variant " << variant << "\n";
  }
  table.Print(std::cout);
  std::cout << "\nOption (ii) is the default (used in the paper's "
               "experiments); option (i) pays one extra pass over the local "
               "data per round. Either variant can win or collapse on a "
               "given seed/dataset — the run-to-run variance IS the paper's "
               "SCAFFOLD-instability finding.\n";
  return 0;
}
