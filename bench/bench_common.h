#ifndef NIID_BENCH_BENCH_COMMON_H_
#define NIID_BENCH_BENCH_COMMON_H_

// Shared plumbing for the paper-reproduction bench binaries.
//
// Every bench accepts a common set of flags and defaults to a configuration
// that finishes in roughly a minute or two on a single CPU core. The paper's
// full-scale protocol (50-500 rounds, 10 local epochs, 60k-sample datasets)
// is reachable with --paper_scale; EXPERIMENTS.md records which scale
// produced the committed numbers.
//
// Common flags:
//   --rounds=N --epochs=N --batch_size=N --trials=N --parties=N
//   --size_factor=F --seed=N --threads=N --paper_scale --out_csv=PATH

#include <iostream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "core/experiment.h"
#include "core/runner.h"
#include "fl/workspace.h"
#include "util/flags.h"
#include "util/stats.h"
#include "util/table.h"

namespace niid::bench {

/// Builds an ExperimentConfig from common flags. Benches override the fields
/// they sweep. `default_rounds`/`default_epochs` are the quick-profile
/// values; --paper_scale switches to the paper's protocol.
inline ExperimentConfig BaseConfig(const FlagParser& flags,
                                   int default_rounds = 6,
                                   int default_epochs = 2) {
  ExperimentConfig config;
  const bool paper = flags.GetBool("paper_scale", false);
  config.rounds = flags.GetInt("rounds", paper ? 50 : default_rounds);
  config.local.local_epochs =
      flags.GetInt("epochs", paper ? 10 : default_epochs);
  // Quick profile: batch 16 (paper uses 64) so that the small per-party
  // shards still yield several SGD steps per epoch, and a boosted learning
  // rate to compensate for running far fewer total steps.
  config.local.batch_size = flags.GetInt("batch_size", paper ? 64 : 16);
  config.lr_scale =
      static_cast<float>(flags.GetDouble("lr_scale", paper ? 1.0 : 4.0));
  config.trials = flags.GetInt("trials", paper ? 3 : 1);
  config.seed = flags.GetInt64("seed", 1);
  config.num_threads = flags.GetInt("threads", 1);
  config.partition.num_parties = flags.GetInt("parties", 10);
  config.catalog.size_factor =
      flags.GetDouble("size_factor", paper ? 1.0 : 0.01);
  config.catalog.min_train_size = flags.GetInt64("min_train", 600);
  config.catalog.min_test_size = flags.GetInt64("min_test", 200);
  config.catalog.max_train_size =
      flags.GetInt64("max_train", paper ? 0 : 4000);
  return config;
}

/// Applies a partition shorthand used across benches:
/// "homo", "dir" (p~Dir(beta)), "c1"/"c2"/"c3" (#C=k), "noise",
/// "quantity" (q~Dir(beta)), "synthetic", "real-world".
inline bool ApplyPartitionShorthand(ExperimentConfig& config,
                                    const std::string& name) {
  PartitionConfig& p = config.partition;
  if (name == "homo") {
    p.strategy = PartitionStrategy::kHomogeneous;
  } else if (name == "dir") {
    p.strategy = PartitionStrategy::kLabelDirichlet;
  } else if (name == "c1" || name == "c2" || name == "c3") {
    p.strategy = PartitionStrategy::kLabelQuantity;
    p.labels_per_party = name[1] - '0';
  } else if (name == "noise") {
    p.strategy = PartitionStrategy::kNoise;
  } else if (name == "quantity") {
    p.strategy = PartitionStrategy::kQuantityDirichlet;
  } else if (name == "synthetic") {
    p.strategy = PartitionStrategy::kSynthetic;
  } else if (name == "real-world") {
    p.strategy = PartitionStrategy::kRealWorld;
  } else {
    return false;
  }
  return true;
}

/// Splits a comma-separated flag value.
inline std::vector<std::string> SplitCsvFlag(const std::string& value) {
  return SplitCommaList(value);
}

/// Peak resident set size of this process in MiB (0 when the platform does
/// not expose it).
inline double PeakRssMb() {
#if defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#elif defined(__unix__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  // Linux reports ru_maxrss in KiB.
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
#else
  return 0.0;
#endif
}

/// The resource-footprint summary line: process peak RSS plus the number of
/// model replicas currently alive in workspace pools (the worker-workspace
/// engine keeps this at num_threads per live server, independent of party
/// count).
inline void PrintResourceFootprint(std::ostream& out) {
  out << "resources: peak_rss_mb=" << PeakRssMb()
      << " live_model_replicas=" << LiveModelReplicaCount() << "\n";
}

/// Prints the standard bench banner.
inline void Banner(const std::string& what, const ExperimentConfig& config) {
  std::cout << "== " << what << " ==\n"
            << "profile: rounds=" << config.rounds
            << " epochs=" << config.local.local_epochs
            << " batch=" << config.local.batch_size
            << " parties=" << config.partition.num_parties
            << " trials=" << config.trials
            << " threads=" << config.num_threads
            << " size_factor=" << config.catalog.size_factor << "\n"
            << "(pass --paper_scale for the paper's full protocol; "
               "--rounds/--epochs/--size_factor to rescale)\n\n";
}

}  // namespace niid::bench

#endif  // NIID_BENCH_BENCH_COMMON_H_
