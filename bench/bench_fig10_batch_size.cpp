// Reproduces Figure 10: training curves for batch sizes {16, 64, 256} on
// CIFAR-10 under the p ~ Dir(0.5) partition. Expected shape (Finding 6):
// larger batches slow learning per round, and the four algorithms respond to
// batch size the same way — batch size does not interact with heterogeneity.
//
// Flags: --dataset=cifar10 --batch_sizes=16,64,256 + common.

#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/curves.h"

int main(int argc, char** argv) {
  const niid::FlagParser flags(argc, argv);
  niid::ExperimentConfig base = niid::bench::BaseConfig(
      flags, /*default_rounds=*/10, /*default_epochs=*/2);
  base.dataset = flags.GetString("dataset", "cifar10");
  base.partition.strategy = niid::PartitionStrategy::kLabelDirichlet;
  base.partition.beta = flags.GetDouble("beta", 0.5);
  niid::bench::Banner(
      "Figure 10 — batch-size sweep on " + base.dataset + " p~Dir(0.5)",
      base);

  const std::vector<std::string> batch_sizes = niid::bench::SplitCsvFlag(
      flags.GetString("batch_sizes", "16,64,256"));

  for (const std::string& algorithm : niid::AlgorithmNames()) {
    niid::ExperimentConfig config = base;
    config.algorithm = algorithm;
    std::cout << "---- " << algorithm << " ----\n";
    std::vector<niid::Curve> curves;
    for (const std::string& batch : batch_sizes) {
      config.local.batch_size = std::atoi(batch.c_str());
      const niid::ExperimentResult result = niid::RunExperiment(config);
      curves.push_back({"B=" + batch, result.MeanCurve()});
      std::cerr << "done: " << algorithm << "/B=" << batch << "\n";
    }
    niid::PrintCurves(curves, std::cout, std::max(1, config.rounds / 10));
    std::cout << "\n";
  }
  return 0;
}
