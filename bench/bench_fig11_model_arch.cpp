// Reproduces Figure 11: FedAvg training curves of VGG-9 versus a BatchNorm
// ResNet on CIFAR-10 under different partitions. Expected shape (Finding 7):
// final accuracies are in the same ballpark, but the ResNet curve is more
// unstable under non-IID partitions because naive averaging of BatchNorm
// statistics mismatches every party's local distribution.
//
// The paper uses ResNet-50; this build uses a configurable-depth CIFAR
// ResNet (see DESIGN.md substitution table) — the BN-averaging mechanism
// under study is identical.
//
// Flags: --partitions=dir,homo --models=vgg9,resnet --resnet_blocks=1
//        --algorithm=fedavg + common.

#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/curves.h"

int main(int argc, char** argv) {
  const niid::FlagParser flags(argc, argv);
  niid::ExperimentConfig base = niid::bench::BaseConfig(
      flags, /*default_rounds=*/6, /*default_epochs=*/2);
  base.dataset = flags.GetString("dataset", "cifar10");
  base.algorithm = flags.GetString("algorithm", "fedavg");
  base.catalog.size_factor = flags.GetDouble("size_factor", 0.008);
  base.catalog.min_train_size = flags.GetInt64("min_train", 320);
  if (!flags.Has("lr_scale") && !flags.GetBool("paper_scale", false)) {
    base.lr_scale = 8.f;  // deep stacks need a hotter quick profile
  }
  base.resnet_blocks_per_stage = flags.GetInt("resnet_blocks", 1);
  niid::bench::Banner("Figure 11 — VGG-9 vs ResNet (BatchNorm) on " +
                          base.dataset,
                      base);

  const std::vector<std::string> partitions =
      niid::bench::SplitCsvFlag(flags.GetString("partitions", "dir,homo"));
  const std::vector<std::string> models =
      niid::bench::SplitCsvFlag(flags.GetString("models", "vgg9,resnet"));

  for (const std::string& partition : partitions) {
    niid::ExperimentConfig config = base;
    if (!niid::bench::ApplyPartitionShorthand(config, partition)) {
      std::cerr << "bad partition " << partition << "\n";
      return 1;
    }
    std::cout << "---- partition " << config.partition.Label() << " ----\n";
    std::vector<niid::Curve> curves;
    for (const std::string& model : models) {
      config.model = model;
      const niid::ExperimentResult result = niid::RunExperiment(config);
      curves.push_back({model, result.MeanCurve()});
      std::cerr << "done: " << config.partition.Label() << "/" << model
                << "\n";
    }
    niid::PrintCurves(curves, std::cout);
    std::cout << "instability (std of round-to-round change):\n";
    for (const niid::Curve& curve : curves) {
      std::cout << "  " << curve.label << ": "
                << niid::CurveInstability(curve.values) << "\n";
    }
    std::cout << "\n";
  }
  return 0;
}
