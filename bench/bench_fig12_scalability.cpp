// Reproduces Figure 12: training curves with 100 parties and sample
// fraction 0.1 on CIFAR-10 under each partition. Expected shape
// (Finding 8): curves are much less stable than under full participation,
// and SCAFFOLD collapses because its per-client control variates are
// refreshed too rarely to track the update direction.
//
// Flags: --parties=100 --fraction=0.1 --partitions=dir,c2,homo + common.

#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/curves.h"

int main(int argc, char** argv) {
  const niid::FlagParser flags(argc, argv);
  niid::ExperimentConfig base = niid::bench::BaseConfig(
      flags, /*default_rounds=*/20, /*default_epochs=*/2);
  base.dataset = flags.GetString("dataset", "cifar10");
  base.partition.num_parties = flags.GetInt("parties", 100);
  base.sample_fraction = flags.GetDouble("fraction", 0.1);
  base.partition.min_samples_per_party = 2;
  base.catalog.size_factor = flags.GetDouble("size_factor", 0.04);
  base.catalog.min_train_size = flags.GetInt64("min_train", 2000);
  if (flags.GetBool("paper_scale", false) && !flags.Has("rounds")) {
    base.rounds = 500;  // Section 5.6 runs 500 rounds
  }
  niid::bench::Banner("Figure 12 — 100 parties, sample fraction " +
                          std::to_string(base.sample_fraction),
                      base);

  const std::vector<std::string> partitions = niid::bench::SplitCsvFlag(
      flags.GetString("partitions",
                      flags.GetBool("paper_scale", false)
                          ? "homo,dir,c1,c2,c3,quantity"
                          : "dir,c2,homo"));

  for (const std::string& partition : partitions) {
    niid::ExperimentConfig config = base;
    if (!niid::bench::ApplyPartitionShorthand(config, partition)) {
      std::cerr << "bad partition " << partition << "\n";
      return 1;
    }
    std::cout << "---- partition " << config.partition.Label() << " ----\n";
    std::vector<niid::Curve> curves;
    for (const std::string& algorithm : niid::AlgorithmNames()) {
      config.algorithm = algorithm;
      const niid::ExperimentResult result = niid::RunExperiment(config);
      curves.push_back({algorithm, result.MeanCurve()});
      std::cerr << "done: " << config.partition.Label() << "/" << algorithm
                << "\n";
    }
    niid::PrintCurves(curves, std::cout, std::max(1, config.rounds / 10));
    std::cout << "instability / final accuracy:\n";
    for (const niid::Curve& curve : curves) {
      std::cout << "  " << curve.label << ": instability="
                << niid::CurveInstability(curve.values)
                << " final=" << niid::FormatPercent(curve.values.back())
                << "\n";
    }
    // Per-arm footprint. ru_maxrss is a process-wide high-water mark, so
    // this reports "peak so far" — a genuinely per-arm number needs one
    // process per arm (tools/bench_json.py --suite scale does exactly that).
    niid::bench::PrintResourceFootprint(std::cout);
    std::cout << "\n";
  }
  niid::bench::PrintResourceFootprint(std::cout);
  return 0;
}
