// Reproduces Figure 3: the party x class allocation matrix produced by the
// distribution-based label-imbalance partition p_k ~ Dir(0.5) on MNIST with
// 10 parties, plus summary skew statistics for every strategy.
//
// Flags: --dataset=mnist --beta=0.5 --parties=10 --seed=N --size_factor=F

#include <iostream>

#include "data/catalog.h"
#include "partition/partition.h"
#include "partition/report.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const niid::FlagParser flags(argc, argv);
  niid::CatalogOptions options;
  options.size_factor = flags.GetDouble("size_factor", 0.02);
  options.seed = flags.GetInt64("seed", 7);
  const std::string dataset_name = flags.GetString("dataset", "mnist");

  auto fd = niid::MakeCatalogDataset(dataset_name, options);
  if (!fd.ok()) {
    std::cerr << fd.status().ToString() << "\n";
    return 1;
  }

  niid::PartitionConfig config;
  config.strategy = niid::PartitionStrategy::kLabelDirichlet;
  config.beta = flags.GetDouble("beta", 0.5);
  config.num_parties = flags.GetInt("parties", 10);
  config.seed = flags.GetInt64("seed", 7);

  std::cout << "Figure 3 — " << config.Label() << " label allocation on "
            << dataset_name << " (" << fd->train.size() << " samples, "
            << config.num_parties << " parties)\n\n";
  const niid::Partition partition = niid::MakePartition(fd->train, config);
  const niid::PartitionReport report =
      niid::BuildPartitionReport(fd->train, partition);
  niid::PrintPartitionMatrix(report, std::cout);
  std::cout << "\nmean distinct labels/party: " << report.mean_labels_per_party
            << "   size imbalance (max/min): " << report.size_imbalance
            << "   mean label TV distance: " << report.mean_label_tv_distance
            << "\n";

  // Summary comparison across all strategies (quantifies Section 4).
  std::cout << "\nSkew summary across all partitioning strategies:\n\n";
  niid::Table summary({"strategy", "labels/party", "size max/min",
                       "label TV distance"});
  struct Row {
    niid::PartitionStrategy strategy;
    int k;
  };
  for (const Row& row : {Row{niid::PartitionStrategy::kHomogeneous, 2},
                         Row{niid::PartitionStrategy::kLabelQuantity, 1},
                         Row{niid::PartitionStrategy::kLabelQuantity, 2},
                         Row{niid::PartitionStrategy::kLabelQuantity, 3},
                         Row{niid::PartitionStrategy::kLabelDirichlet, 2},
                         Row{niid::PartitionStrategy::kNoise, 2},
                         Row{niid::PartitionStrategy::kQuantityDirichlet, 2}}) {
    niid::PartitionConfig c = config;
    c.strategy = row.strategy;
    c.labels_per_party = row.k;
    const niid::Partition p = niid::MakePartition(fd->train, c);
    const niid::PartitionReport r = niid::BuildPartitionReport(fd->train, p);
    char labels[32], imbalance[32], tv[32];
    std::snprintf(labels, sizeof(labels), "%.1f", r.mean_labels_per_party);
    std::snprintf(imbalance, sizeof(imbalance), "%.2f", r.size_imbalance);
    std::snprintf(tv, sizeof(tv), "%.3f", r.mean_label_tv_distance);
    summary.AddRow({c.Label(), labels, imbalance, tv});
  }
  summary.Print(std::cout);
  return 0;
}
