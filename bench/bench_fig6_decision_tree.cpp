// Reproduces Figure 6: the decision tree mapping each non-IID setting to the
// (almost) best FL algorithm, and cross-checks the static recommendations
// against a quick measured mini-grid on one dataset.
//
// Flags: --dataset=covtype plus the common flags; --skip_measure prints only
// the static tree.

#include <iostream>
#include <map>

#include "bench_common.h"
#include "core/decision_tree.h"

int main(int argc, char** argv) {
  const niid::FlagParser flags(argc, argv);
  niid::PrintDecisionTree(std::cout);

  std::cout << "\nPer-setting recommendations with rationale:\n";
  struct Setting {
    niid::PartitionStrategy strategy;
    int k;
    const char* label;
  };
  for (const Setting& s :
       {Setting{niid::PartitionStrategy::kLabelQuantity, 1, "#C=1"},
        Setting{niid::PartitionStrategy::kLabelDirichlet, 2, "p~Dir(beta)"},
        Setting{niid::PartitionStrategy::kNoise, 2, "x~Gau(sigma)"},
        Setting{niid::PartitionStrategy::kQuantityDirichlet, 2,
                "q~Dir(beta)"},
        Setting{niid::PartitionStrategy::kHomogeneous, 2, "IID"}}) {
    const niid::AlgorithmRecommendation rec =
        niid::RecommendAlgorithm(s.strategy, s.k);
    std::cout << "  " << s.label << " -> " << rec.algorithm << "\n      "
              << rec.rationale << "\n";
  }

  if (flags.GetBool("skip_measure", false)) return 0;

  // Measured cross-check: run the four algorithms on three archetypal
  // settings and report the winner next to the tree's recommendation.
  niid::ExperimentConfig base = niid::bench::BaseConfig(flags, 8, 2);
  base.dataset = flags.GetString("dataset", "covtype");
  niid::bench::Banner("Figure 6 cross-check (measured winners)", base);

  niid::Table table({"setting", "recommended", "measured winner", "accuracy"});
  struct Probe {
    const char* shorthand;
    niid::PartitionStrategy strategy;
    int k;
  };
  for (const Probe& probe :
       {Probe{"c1", niid::PartitionStrategy::kLabelQuantity, 1},
        Probe{"quantity", niid::PartitionStrategy::kQuantityDirichlet, 2},
        Probe{"homo", niid::PartitionStrategy::kHomogeneous, 2}}) {
    niid::ExperimentConfig config = base;
    niid::bench::ApplyPartitionShorthand(config, probe.shorthand);
    double best_acc = -1;
    std::string winner;
    for (const std::string& algorithm : niid::AlgorithmNames()) {
      config.algorithm = algorithm;
      const double acc =
          niid::Mean(niid::RunExperiment(config).FinalAccuracies());
      if (acc > best_acc) {
        best_acc = acc;
        winner = algorithm;
      }
    }
    table.AddRow({config.partition.Label(),
                  niid::RecommendAlgorithm(probe.strategy, probe.k).algorithm,
                  winner, niid::FormatPercent(best_acc)});
  }
  table.Print(std::cout);
  std::cout << "\nNote: at quick scale single-trial winners are noisy; the "
               "tree encodes the paper's full-scale Table 3 tallies.\n";
  return 0;
}
