// Reproduces Figure 7: test-accuracy-per-round training curves of the four
// algorithms on CIFAR-10 under each partition. The paper runs 100 rounds on
// six partitions; the quick default runs a shorter horizon on a subset.
//
// Flags: --dataset=cifar10 --partitions=dir,c1,... --out_csv=PATH + common.

#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/curves.h"

int main(int argc, char** argv) {
  const niid::FlagParser flags(argc, argv);
  niid::ExperimentConfig base = niid::bench::BaseConfig(
      flags, /*default_rounds=*/10, /*default_epochs=*/2);
  if (flags.GetBool("paper_scale", false) && !flags.Has("rounds")) {
    base.rounds = 100;  // Figure 7 uses 100 rounds
  }
  base.dataset = flags.GetString("dataset", "cifar10");
  niid::bench::Banner("Figure 7 — training curves on " + base.dataset, base);

  const std::vector<std::string> partitions = niid::bench::SplitCsvFlag(
      flags.GetString("partitions",
                      flags.GetBool("paper_scale", false)
                          ? "homo,dir,c1,c2,c3,quantity"
                          : "dir,c1,quantity"));

  for (const std::string& partition : partitions) {
    niid::ExperimentConfig config = base;
    if (!niid::bench::ApplyPartitionShorthand(config, partition)) {
      std::cerr << "bad partition " << partition << "\n";
      return 1;
    }
    std::cout << "---- partition " << config.partition.Label() << " ----\n";
    std::vector<niid::Curve> curves;
    for (const std::string& algorithm : niid::AlgorithmNames()) {
      config.algorithm = algorithm;
      const niid::ExperimentResult result = niid::RunExperiment(config);
      curves.push_back({algorithm, result.MeanCurve()});
      std::cerr << "done: " << config.partition.Label() << "/" << algorithm
                << "\n";
    }
    niid::PrintCurves(curves, std::cout,
                      std::max(1, config.rounds / 10));
    std::cout << "instability (std of round-to-round accuracy change):\n";
    for (const niid::Curve& curve : curves) {
      std::cout << "  " << curve.label << ": "
                << niid::CurveInstability(curve.values) << "\n";
    }
    std::cout << "\n";
    if (flags.Has("out_csv")) {
      const std::string path = flags.GetString("out_csv", "") + "." +
                               partition + ".csv";
      const niid::Status written = niid::WriteCurvesCsv(curves, path);
      if (!written.ok()) {
        std::cerr << "failed to write " << path << ": " << written.ToString()
                  << "\n";
        return 1;
      }
      std::cout << "wrote " << path << "\n";
    }
  }
  return 0;
}
