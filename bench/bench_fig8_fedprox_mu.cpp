// Reproduces Figure 8: FedProx training curves for mu in {0, 0.001, 0.01,
// 0.1, 1} on CIFAR-10 under the p ~ Dir(0.5) partition. The expected shape:
// larger mu slows training but can end at a better accuracy than a
// too-small mu; mu = 0 coincides with FedAvg.
//
// Flags: --dataset=cifar10 --mus=0,0.001,... --out_csv=PATH + common.

#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/curves.h"

int main(int argc, char** argv) {
  const niid::FlagParser flags(argc, argv);
  niid::ExperimentConfig config = niid::bench::BaseConfig(
      flags, /*default_rounds=*/12, /*default_epochs=*/2);
  config.dataset = flags.GetString("dataset", "cifar10");
  config.algorithm = "fedprox";
  config.partition.strategy = niid::PartitionStrategy::kLabelDirichlet;
  config.partition.beta = flags.GetDouble("beta", 0.5);
  niid::bench::Banner(
      "Figure 8 — FedProx mu sweep on " + config.dataset + " p~Dir(0.5)",
      config);

  std::vector<niid::Curve> curves;
  for (const std::string& mu_text : niid::bench::SplitCsvFlag(
           flags.GetString("mus", "0,0.001,0.01,0.1,1"))) {
    config.algo.fedprox_mu = static_cast<float>(std::atof(mu_text.c_str()));
    const niid::ExperimentResult result = niid::RunExperiment(config);
    curves.push_back({"mu=" + mu_text, result.MeanCurve()});
    std::cerr << "done: mu=" << mu_text << "\n";
  }
  niid::PrintCurves(curves, std::cout, std::max(1, config.rounds / 12));
  std::cout << "\nfinal accuracy:\n";
  for (const niid::Curve& curve : curves) {
    std::cout << "  " << curve.label << ": "
              << niid::FormatPercent(curve.values.back()) << "\n";
  }
  if (flags.Has("out_csv")) {
    const niid::Status written =
        niid::WriteCurvesCsv(curves, flags.GetString("out_csv", ""));
    if (!written.ok()) {
      std::cerr << "failed to write out_csv: " << written.ToString() << "\n";
      return 1;
    }
  }
  return 0;
}
