// Reproduces Figure 9: final test accuracy of each algorithm as the number
// of local epochs E varies (the paper sweeps {10, 20, 40, 80} on CIFAR-10
// under #C=1, #C=2, p~Dir(0.5) and homogeneous partitions). Expected shape:
// accuracy degrades for very large E under label skew, and the optimal E
// depends on the partition (Finding 5).
//
// Flags: --dataset=cifar10 --partitions=c2,dir --epoch_set=5,10,20,40
//        + common flags. --paper_scale uses the paper's E set and partitions.

#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench_common.h"

int main(int argc, char** argv) {
  const niid::FlagParser flags(argc, argv);
  const bool paper = flags.GetBool("paper_scale", false);
  niid::ExperimentConfig base = niid::bench::BaseConfig(
      flags, /*default_rounds=*/3, /*default_epochs=*/2);
  base.dataset = flags.GetString("dataset", "cifar10");
  base.catalog.size_factor = flags.GetDouble("size_factor", paper ? 1.0 : 0.005);
  base.catalog.min_train_size = flags.GetInt64("min_train", 300);
  niid::bench::Banner("Figure 9 — effect of local epochs on " + base.dataset,
                      base);

  const std::vector<std::string> partitions = niid::bench::SplitCsvFlag(
      flags.GetString("partitions", paper ? "c1,c2,dir,homo" : "c2,dir"));
  const std::vector<std::string> epoch_set = niid::bench::SplitCsvFlag(
      flags.GetString("epoch_set", paper ? "10,20,40,80" : "4,8,16,32"));

  for (const std::string& partition : partitions) {
    niid::ExperimentConfig config = base;
    if (!niid::bench::ApplyPartitionShorthand(config, partition)) {
      std::cerr << "bad partition " << partition << "\n";
      return 1;
    }
    std::cout << "---- partition " << config.partition.Label() << " ----\n";
    std::vector<std::string> headers = {"algorithm"};
    for (const std::string& e : epoch_set) headers.push_back("E=" + e);
    niid::Table table(headers);
    for (const std::string& algorithm : niid::AlgorithmNames()) {
      config.algorithm = algorithm;
      std::vector<std::string> row = {algorithm};
      for (const std::string& epochs : epoch_set) {
        config.local.local_epochs = std::atoi(epochs.c_str());
        const niid::ExperimentResult result = niid::RunExperiment(config);
        row.push_back(niid::FormatAccuracy(result.FinalAccuracies()));
        std::cerr << "done: " << config.partition.Label() << "/" << algorithm
                  << "/E=" << epochs << "\n";
      }
      table.AddRow(std::move(row));
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
