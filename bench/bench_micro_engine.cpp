// Micro-benchmarks of the engine substrate (google-benchmark): tensor math,
// layer forward/backward, state flatten/aggregation, and partition
// generation. These quantify where simulation wall-clock goes and guard
// against performance regressions.

#include <benchmark/benchmark.h>

#include "data/synthetic.h"
#include "fl/fedavg.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/models/factory.h"
#include "nn/parameters.h"
#include "partition/label_skew.h"
#include "tensor/ops.h"
#include "util/thread_pool.h"

namespace niid {
namespace {

// All GEMM benchmarks report items == floating-point operations (2*m*n*k),
// so the items_per_second counter reads directly in FLOP/s and
// tools/bench_json.py can emit GFLOP/s without shape bookkeeping.

// The pre-engine kernel (ikj axpy with the zero-skip branch), kept verbatim
// as the speedup baseline for BENCH_gemm.json. It lives here, not in the
// library: production code has exactly one GEMM implementation.
void NaiveMatmul(const Tensor& a, const Tensor& b, Tensor& out) {
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (out.rank() != 2 || out.dim(0) != m || out.dim(1) != n) {
    out = Tensor({m, n});
  }
  out.Fill(0.f);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out.data();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const float aik = pa[i * k + kk];
      if (aik == 0.f) continue;
      const float* brow = pb + kk * n;
      float* crow = pc + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

void BM_MatmulNaive(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::Randn({n, n}, rng);
  const Tensor b = Tensor::Randn({n, n}, rng);
  Tensor out;
  for (auto _ : state) {
    NaiveMatmul(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatmulNaive)->Arg(64)->Arg(128)->Arg(256);

void BM_Matmul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::Randn({n, n}, rng);
  const Tensor b = Tensor::Randn({n, n}, rng);
  Tensor out;
  for (auto _ : state) {
    Matmul(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

// Engine with a worker pool: range(0) = matrix size, range(1) = threads.
void BM_MatmulPool(benchmark::State& state) {
  const int64_t n = state.range(0);
  ThreadPool pool(static_cast<int>(state.range(1)));
  Rng rng(1);
  const Tensor a = Tensor::Randn({n, n}, rng);
  const Tensor b = Tensor::Randn({n, n}, rng);
  Tensor out;
  for (auto _ : state) {
    Matmul(a, b, out, &pool);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
// UseRealTime: the calling thread mostly blocks in ThreadPool::Wait, so its
// CPU time (the default basis for counters) would wildly overstate FLOP/s.
BENCHMARK(BM_MatmulPool)
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({512, 4})
    ->UseRealTime();

void BM_MatmulTransA(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::Randn({n, n}, rng);
  const Tensor b = Tensor::Randn({n, n}, rng);
  Tensor out;
  for (auto _ : state) {
    MatmulTransA(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatmulTransA)->Arg(256);

void BM_MatmulTransB(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::Randn({n, n}, rng);
  const Tensor b = Tensor::Randn({n, n}, rng);
  Tensor out;
  for (auto _ : state) {
    MatmulTransB(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatmulTransB)->Arg(256);

// Rectangular shapes pulled from the real training workload (simple-cnn and
// vgg9 conv layers as im2col GEMMs, linear head): tall-skinny and fat-k
// cases behave very differently from square matrices.
void BM_MatmulRect(benchmark::State& state) {
  const int64_t m = state.range(0), k = state.range(1), n = state.range(2);
  Rng rng(1);
  const Tensor a = Tensor::Randn({m, k}, rng);
  const Tensor b = Tensor::Randn({k, n}, rng);
  Tensor out;
  for (auto _ : state) {
    Matmul(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * n * k);
}
BENCHMARK(BM_MatmulRect)
    ->Args({36864, 25, 6})     // conv1 of simple-cnn on 64x1x28x28 (im2col)
    ->Args({4096, 150, 16})    // conv2 of simple-cnn
    ->Args({16384, 576, 128})  // a vgg9 3x3 conv block
    ->Args({64, 120, 84});     // linear head

void BM_Im2Col(benchmark::State& state) {
  Rng rng(2);
  const Tensor input = Tensor::Randn({32, 3, 32, 32}, rng);
  Tensor columns;
  for (auto _ : state) {
    Im2Col(input, 5, 1, 0, columns);
    benchmark::DoNotOptimize(columns.data());
  }
}
BENCHMARK(BM_Im2Col);

void BM_ConvForward(benchmark::State& state) {
  Rng rng(3);
  Conv2d conv(3, 16, 5, rng);
  const Tensor input = Tensor::Randn({32, 3, 32, 32}, rng);
  for (auto _ : state) {
    Tensor out = conv.Forward(input);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ConvForward);

void BM_ConvBackward(benchmark::State& state) {
  Rng rng(4);
  Conv2d conv(3, 16, 5, rng);
  const Tensor input = Tensor::Randn({32, 3, 32, 32}, rng);
  const Tensor out = conv.Forward(input);
  const Tensor grad = Tensor::Ones(out.shape());
  for (auto _ : state) {
    Tensor grad_in = conv.Backward(grad);
    benchmark::DoNotOptimize(grad_in.data());
  }
}
BENCHMARK(BM_ConvBackward);

void BM_BatchNormForward(benchmark::State& state) {
  Rng rng(5);
  BatchNorm bn(16);
  const Tensor input = Tensor::Randn({64, 16, 16, 16}, rng);
  for (auto _ : state) {
    Tensor out = bn.Forward(input);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_BatchNormForward);

void BM_SimpleCnnStep(benchmark::State& state) {
  Rng rng(6);
  ModelSpec spec;
  spec.name = "simple-cnn";
  spec.input_channels = 1;
  spec.input_height = 28;
  spec.input_width = 28;
  auto model = CreateModel(spec, rng);
  const Tensor input = Tensor::Randn({64, 1, 28, 28}, rng);
  for (auto _ : state) {
    ZeroGrads(*model);
    Tensor out = model->Forward(input);
    model->Backward(Tensor::Ones(out.shape()));
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 64);  // samples/s
}
BENCHMARK(BM_SimpleCnnStep);

void BM_FlattenState(benchmark::State& state) {
  Rng rng(7);
  ModelSpec spec;
  spec.name = "simple-cnn";
  auto model = CreateModel(spec, rng);
  for (auto _ : state) {
    StateVector flat = FlattenState(*model);
    benchmark::DoNotOptimize(flat.data());
  }
}
BENCHMARK(BM_FlattenState);

void BM_FedAvgAggregate(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  const int64_t dim = 62006;  // simple-cnn size
  std::vector<LocalUpdate> updates(clients);
  for (int i = 0; i < clients; ++i) {
    updates[i].client_id = i;
    updates[i].num_samples = 100;
    updates[i].delta.assign(dim, 0.01f);
    updates[i].tau = 10;
  }
  const std::vector<StateSegment> layout = {{0, dim, true}};
  FedAvg fedavg(AlgorithmConfig{});
  StateVector global(dim, 0.f);
  for (auto _ : state) {
    fedavg.Aggregate(global, updates, layout);
    benchmark::DoNotOptimize(global.data());
  }
}
BENCHMARK(BM_FedAvgAggregate)->Arg(10)->Arg(100);

void BM_DirichletLabelPartition(benchmark::State& state) {
  Rng data_rng(8);
  std::vector<int> labels(60000);
  for (auto& label : labels) {
    label = static_cast<int>(data_rng.UniformInt(10));
  }
  for (auto _ : state) {
    Rng rng(9);
    auto parts = LabelDirichletSplit(labels, 10, 10, 0.5, 10, rng);
    benchmark::DoNotOptimize(parts.data());
  }
}
BENCHMARK(BM_DirichletLabelPartition);

void BM_SyntheticImageGeneration(benchmark::State& state) {
  for (auto _ : state) {
    SyntheticImageConfig config;
    config.train_size = 500;
    config.test_size = 100;
    FederatedDataset fd = MakeSyntheticImages(config);
    benchmark::DoNotOptimize(fd.train.features.data());
  }
}
BENCHMARK(BM_SyntheticImageGeneration);

}  // namespace
}  // namespace niid

BENCHMARK_MAIN();
