// Micro-benchmarks of the engine substrate (google-benchmark): tensor math,
// layer forward/backward, state flatten/aggregation, and partition
// generation. These quantify where simulation wall-clock goes and guard
// against performance regressions.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <numeric>

#include "bench_common.h"
#include "data/synthetic.h"
#include "fl/algorithm.h"
#include "fl/client.h"
#include "fl/compress.h"
#include "fl/faults.h"
#include "fl/fedavg.h"
#include "fl/server.h"
#include "fl/workspace.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/models/factory.h"
#include "nn/optimizer.h"
#include "nn/parameters.h"
#include "partition/label_skew.h"
#include "tensor/ops.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace niid {
namespace {

// All GEMM benchmarks report items == floating-point operations (2*m*n*k),
// so the items_per_second counter reads directly in FLOP/s and
// tools/bench_json.py can emit GFLOP/s without shape bookkeeping.

// The pre-engine kernel (ikj axpy with the zero-skip branch), kept verbatim
// as the speedup baseline for BENCH_gemm.json. It lives here, not in the
// library: production code has exactly one GEMM implementation.
void NaiveMatmul(const Tensor& a, const Tensor& b, Tensor& out) {
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (out.rank() != 2 || out.dim(0) != m || out.dim(1) != n) {
    out = Tensor({m, n});
  }
  out.Fill(0.f);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out.data();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const float aik = pa[i * k + kk];
      if (aik == 0.f) continue;
      const float* brow = pb + kk * n;
      float* crow = pc + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

void BM_MatmulNaive(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::Randn({n, n}, rng);
  const Tensor b = Tensor::Randn({n, n}, rng);
  Tensor out;
  for (auto _ : state) {
    NaiveMatmul(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatmulNaive)->Arg(64)->Arg(128)->Arg(256);

void BM_Matmul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::Randn({n, n}, rng);
  const Tensor b = Tensor::Randn({n, n}, rng);
  Tensor out;
  for (auto _ : state) {
    Matmul(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

// Engine with a worker pool: range(0) = matrix size, range(1) = threads.
void BM_MatmulPool(benchmark::State& state) {
  const int64_t n = state.range(0);
  ThreadPool pool(static_cast<int>(state.range(1)));
  Rng rng(1);
  const Tensor a = Tensor::Randn({n, n}, rng);
  const Tensor b = Tensor::Randn({n, n}, rng);
  Tensor out;
  for (auto _ : state) {
    Matmul(a, b, out, &pool);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
// UseRealTime: the calling thread mostly blocks in ThreadPool::Wait, so its
// CPU time (the default basis for counters) would wildly overstate FLOP/s.
BENCHMARK(BM_MatmulPool)
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({512, 4})
    ->UseRealTime();

void BM_MatmulTransA(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::Randn({n, n}, rng);
  const Tensor b = Tensor::Randn({n, n}, rng);
  Tensor out;
  for (auto _ : state) {
    MatmulTransA(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatmulTransA)->Arg(256);

void BM_MatmulTransB(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::Randn({n, n}, rng);
  const Tensor b = Tensor::Randn({n, n}, rng);
  Tensor out;
  for (auto _ : state) {
    MatmulTransB(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatmulTransB)->Arg(256);

// Rectangular shapes pulled from the real training workload (simple-cnn and
// vgg9 conv layers as im2col GEMMs, linear head): tall-skinny and fat-k
// cases behave very differently from square matrices.
void BM_MatmulRect(benchmark::State& state) {
  const int64_t m = state.range(0), k = state.range(1), n = state.range(2);
  Rng rng(1);
  const Tensor a = Tensor::Randn({m, k}, rng);
  const Tensor b = Tensor::Randn({k, n}, rng);
  Tensor out;
  for (auto _ : state) {
    Matmul(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * n * k);
}
BENCHMARK(BM_MatmulRect)
    ->Args({36864, 25, 6})     // conv1 of simple-cnn on 64x1x28x28 (im2col)
    ->Args({4096, 150, 16})    // conv2 of simple-cnn
    ->Args({16384, 576, 128})  // a vgg9 3x3 conv block
    ->Args({64, 120, 84});     // linear head

void BM_Im2Col(benchmark::State& state) {
  Rng rng(2);
  const Tensor input = Tensor::Randn({32, 3, 32, 32}, rng);
  Tensor columns;
  for (auto _ : state) {
    Im2Col(input, 5, 1, 0, columns);
    benchmark::DoNotOptimize(columns.data());
  }
}
BENCHMARK(BM_Im2Col);

void BM_ConvForward(benchmark::State& state) {
  Rng rng(3);
  Conv2d conv(3, 16, 5, rng);
  const Tensor input = Tensor::Randn({32, 3, 32, 32}, rng);
  for (auto _ : state) {
    Tensor out = conv.Forward(input);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ConvForward);

void BM_ConvBackward(benchmark::State& state) {
  Rng rng(4);
  Conv2d conv(3, 16, 5, rng);
  const Tensor input = Tensor::Randn({32, 3, 32, 32}, rng);
  const Tensor out = conv.Forward(input);
  const Tensor grad = Tensor::Ones(out.shape());
  for (auto _ : state) {
    Tensor grad_in = conv.Backward(grad);
    benchmark::DoNotOptimize(grad_in.data());
  }
}
BENCHMARK(BM_ConvBackward);

void BM_BatchNormForward(benchmark::State& state) {
  Rng rng(5);
  BatchNorm bn(16);
  const Tensor input = Tensor::Randn({64, 16, 16, 16}, rng);
  for (auto _ : state) {
    Tensor out = bn.Forward(input);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_BatchNormForward);

void BM_SimpleCnnStep(benchmark::State& state) {
  Rng rng(6);
  ModelSpec spec;
  spec.name = "simple-cnn";
  spec.input_channels = 1;
  spec.input_height = 28;
  spec.input_width = 28;
  auto model = CreateModel(spec, rng);
  const Tensor input = Tensor::Randn({64, 1, 28, 28}, rng);
  for (auto _ : state) {
    ZeroGrads(*model);
    Tensor out = model->Forward(input);
    model->Backward(Tensor::Ones(out.shape()));
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 64);  // samples/s
}
BENCHMARK(BM_SimpleCnnStep);

void BM_FlattenState(benchmark::State& state) {
  Rng rng(7);
  ModelSpec spec;
  spec.name = "simple-cnn";
  auto model = CreateModel(spec, rng);
  for (auto _ : state) {
    StateVector flat = FlattenState(*model);
    benchmark::DoNotOptimize(flat.data());
  }
}
BENCHMARK(BM_FlattenState);

// ------------------------------------------------------------- step suite
// One full training step — gather, zero, forward, loss, backward, optimizer —
// decomposed stage by stage, on the paper's main workloads. In steady state
// every stage below is zero-allocation (tests/alloc_test.cc enforces this);
// tools/bench_json.py --suite step turns these into BENCH_step.json.

struct StepBench {
  Dataset data;
  std::unique_ptr<Module> model;
  std::unique_ptr<SgdOptimizer> optimizer;
  Tensor batch_x;
  std::vector<int> batch_y;
  std::vector<int64_t> indices;
  LossResult loss;
  int64_t batch_size = 64;
  int64_t cursor = 0;

  void NextBatch() {
    const int64_t start = cursor;
    cursor = (cursor + batch_size) % (data.size() - batch_size + 1);
    indices.resize(batch_size);
    std::iota(indices.begin(), indices.end(), start);
    GatherBatchInto(data, indices, batch_x, batch_y);
  }

  void FullStep() {
    NextBatch();
    optimizer->ZeroGrads();
    const Tensor& logits = model->Forward(batch_x);
    SoftmaxCrossEntropyInto(logits, batch_y, loss);
    model->Backward(loss.grad_logits);
    optimizer->Step();
  }
};

// CIFAR-10 shapes: batch 64 of 3x32x32, ten classes.
StepBench MakeCifarStepBench(const std::string& model_name) {
  StepBench b;
  SyntheticImageConfig config;
  config.channels = 3;
  config.height = 32;
  config.width = 32;
  config.train_size = 256;
  config.test_size = 1;
  config.seed = 11;
  b.data = MakeSyntheticImages(config).train;
  ModelSpec spec;
  spec.name = model_name;
  spec.input_channels = 3;
  spec.input_height = 32;
  spec.input_width = 32;
  Rng rng(12);
  b.model = CreateModel(spec, rng);
  b.model->SetTraining(true);
  b.optimizer = std::make_unique<SgdOptimizer>(*b.model, 0.01f);
  // One untimed step: sizes every layer/optimizer scratch buffer and
  // first-touches its pages, so even a 1-iteration run measures the
  // steady state the zero-allocation policy promises (slow-iteration
  // models like the ResNet get very few iterations at the default
  // --benchmark_min_time).
  b.FullStep();
  b.NextBatch();
  return b;
}

StepBench MakeTabularStepBench() {
  StepBench b;
  SyntheticTabularConfig config;
  config.num_features = 100;
  config.train_size = 256;
  config.test_size = 1;
  config.seed = 13;
  b.data = MakeSyntheticTabular(config).train;
  ModelSpec spec;
  spec.name = "mlp";
  spec.input_features = 100;
  spec.num_classes = 2;
  Rng rng(14);
  b.model = CreateModel(spec, rng);
  b.model->SetTraining(true);
  b.optimizer = std::make_unique<SgdOptimizer>(*b.model, 0.01f);
  b.FullStep();  // steady-state warmup, as above
  b.NextBatch();
  return b;
}

void BM_StepFullSimpleCnn(benchmark::State& state) {
  StepBench b = MakeCifarStepBench("simple-cnn");
  for (auto _ : state) {
    b.FullStep();
    benchmark::DoNotOptimize(b.loss.loss);
  }
  state.SetItemsProcessed(state.iterations() * b.batch_size);  // samples/s
}
BENCHMARK(BM_StepFullSimpleCnn);

void BM_StepFullTabularMlp(benchmark::State& state) {
  StepBench b = MakeTabularStepBench();
  for (auto _ : state) {
    b.FullStep();
    benchmark::DoNotOptimize(b.loss.loss);
  }
  state.SetItemsProcessed(state.iterations() * b.batch_size);
}
BENCHMARK(BM_StepFullTabularMlp);

void BM_StepFullResNet(benchmark::State& state) {
  StepBench b = MakeCifarStepBench("resnet");
  b.batch_size = 16;  // depth-8 resnet; keep single-core iteration time sane
  b.NextBatch();
  for (auto _ : state) {
    b.FullStep();
    benchmark::DoNotOptimize(b.loss.loss);
  }
  state.SetItemsProcessed(state.iterations() * b.batch_size);
}
BENCHMARK(BM_StepFullResNet);

// Per-stage breakdown, all on the simple-cnn/CIFAR-10 step above.

void BM_StepGather(benchmark::State& state) {
  StepBench b = MakeCifarStepBench("simple-cnn");
  for (auto _ : state) {
    b.NextBatch();
    benchmark::DoNotOptimize(b.batch_x.data());
  }
}
BENCHMARK(BM_StepGather);

void BM_StepZeroGrads(benchmark::State& state) {
  StepBench b = MakeCifarStepBench("simple-cnn");
  for (auto _ : state) {
    b.optimizer->ZeroGrads();
    benchmark::DoNotOptimize(b.model.get());
  }
}
BENCHMARK(BM_StepZeroGrads);

void BM_StepForward(benchmark::State& state) {
  StepBench b = MakeCifarStepBench("simple-cnn");
  for (auto _ : state) {
    const Tensor& logits = b.model->Forward(b.batch_x);
    benchmark::DoNotOptimize(logits.data());
  }
}
BENCHMARK(BM_StepForward);

void BM_StepLoss(benchmark::State& state) {
  StepBench b = MakeCifarStepBench("simple-cnn");
  const Tensor logits = b.model->Forward(b.batch_x);
  for (auto _ : state) {
    SoftmaxCrossEntropyInto(logits, b.batch_y, b.loss);
    benchmark::DoNotOptimize(b.loss.loss);
  }
}
BENCHMARK(BM_StepLoss);

void BM_StepBackward(benchmark::State& state) {
  StepBench b = MakeCifarStepBench("simple-cnn");
  const Tensor& logits = b.model->Forward(b.batch_x);
  SoftmaxCrossEntropyInto(logits, b.batch_y, b.loss);
  for (auto _ : state) {
    const Tensor& grad_in = b.model->Backward(b.loss.grad_logits);
    benchmark::DoNotOptimize(grad_in.data());
  }
}
BENCHMARK(BM_StepBackward);

// Backward with a layer-level compute pool: range(0) = threads. Only
// meaningful on runners with >= threads CPUs — the CI bench-smoke variant
// gates on that — and bit-identical to the serial BM_StepBackward either
// way (GEMM determinism policy, DESIGN.md §7).
void BM_StepBackwardPool(benchmark::State& state) {
  StepBench b = MakeCifarStepBench("simple-cnn");
  ThreadPool pool(static_cast<int>(state.range(0)));
  b.model->SetComputePool(&pool);
  const Tensor& logits = b.model->Forward(b.batch_x);
  SoftmaxCrossEntropyInto(logits, b.batch_y, b.loss);
  for (auto _ : state) {
    const Tensor& grad_in = b.model->Backward(b.loss.grad_logits);
    benchmark::DoNotOptimize(grad_in.data());
  }
}
// UseRealTime: the calling thread blocks in ThreadPool::Wait (see
// BM_MatmulPool above).
BENCHMARK(BM_StepBackwardPool)->Arg(2)->Arg(4)->UseRealTime();

void BM_StepOptimizer(benchmark::State& state) {
  StepBench b = MakeCifarStepBench("simple-cnn");
  b.FullStep();  // populate gradients
  for (auto _ : state) {
    b.optimizer->Step();
    benchmark::DoNotOptimize(b.model.get());
  }
}
BENCHMARK(BM_StepOptimizer);

void BM_StepDelta(benchmark::State& state) {
  StepBench b = MakeCifarStepBench("simple-cnn");
  const StateVector global = FlattenState(*b.model);
  StateVector local, delta;
  for (auto _ : state) {
    FlattenStateInto(*b.model, local);
    SubtractInto(global, local, delta);
    benchmark::DoNotOptimize(delta.data());
  }
}
BENCHMARK(BM_StepDelta);

void BM_FedAvgAggregate(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  const int64_t dim = 62006;  // simple-cnn size
  std::vector<LocalUpdate> updates(clients);
  for (int i = 0; i < clients; ++i) {
    updates[i].client_id = i;
    updates[i].num_samples = 100;
    updates[i].delta.assign(dim, 0.01f);
    updates[i].tau = 10;
  }
  const std::vector<StateSegment> layout = {{0, dim, true}};
  FedAvg fedavg(AlgorithmConfig{});
  StateVector global(dim, 0.f);
  for (auto _ : state) {
    fedavg.Aggregate(global, updates, layout);
    benchmark::DoNotOptimize(global.data());
  }
}
BENCHMARK(BM_FedAvgAggregate)->Arg(10)->Arg(100);

void BM_DirichletLabelPartition(benchmark::State& state) {
  Rng data_rng(8);
  std::vector<int> labels(60000);
  for (auto& label : labels) {
    label = static_cast<int>(data_rng.UniformInt(10));
  }
  for (auto _ : state) {
    Rng rng(9);
    auto parts = LabelDirichletSplit(labels, 10, 10, 0.5, 10, rng);
    benchmark::DoNotOptimize(parts.data());
  }
}
BENCHMARK(BM_DirichletLabelPartition);

void BM_SyntheticImageGeneration(benchmark::State& state) {
  for (auto _ : state) {
    SyntheticImageConfig config;
    config.train_size = 500;
    config.test_size = 100;
    FederatedDataset fd = MakeSyntheticImages(config);
    benchmark::DoNotOptimize(fd.train.features.data());
  }
}
BENCHMARK(BM_SyntheticImageGeneration);

// ------------------------------------------------------------ round suite
// End-to-end round latency and pooled-evaluation latency on the
// worker-workspace engine. Every benchmark exports the peak_rss_mb and
// live_model_replicas counters, so tools/bench_json.py --suite round turns
// these into BENCH_round.json and CI can watch both the latency and the
// O(threads)-replica memory claim.

struct RoundBench {
  std::unique_ptr<FederatedServer> server;
  Dataset test;
  LocalTrainOptions options;
};

RoundBench MakeRoundBench(int parties, double fraction, int threads) {
  RoundBench rb;
  SyntheticTabularConfig config;
  config.num_features = 32;
  config.train_size = static_cast<int64_t>(parties) * 64;
  config.test_size = 512;
  config.seed = 17;
  const FederatedDataset fd = MakeSyntheticTabular(config);
  rb.test = fd.test;
  ModelSpec spec;
  spec.name = "mlp";
  spec.input_features = 32;
  spec.num_classes = 2;
  std::vector<std::unique_ptr<Client>> clients;
  clients.reserve(parties);
  for (int i = 0; i < parties; ++i) {
    std::vector<int64_t> shard(64);
    std::iota(shard.begin(), shard.end(), static_cast<int64_t>(i) * 64);
    clients.push_back(
        std::make_unique<Client>(i, Subset(fd.train, shard), Rng(100 + i)));
  }
  ServerConfig server_config;
  server_config.sample_fraction = fraction;
  server_config.seed = 5;
  server_config.num_threads = threads;
  rb.server = std::make_unique<FederatedServer>(
      MakeModelFactory(spec), std::move(clients),
      std::make_unique<FedAvg>(AlgorithmConfig{}), server_config);
  rb.options.local_epochs = 1;
  rb.options.batch_size = 16;
  rb.options.learning_rate = 0.05f;
  return rb;
}

void SetFootprintCounters(benchmark::State& state) {
  state.counters["peak_rss_mb"] = bench::PeakRssMb();
  state.counters["live_model_replicas"] =
      static_cast<double>(LiveModelReplicaCount());
}

// range(0) = parties, range(1) = threads. The 100-party shapes sample 10% of
// parties per round, the paper's Figure 12 scalability setting.
void BM_RoundFedAvg(benchmark::State& state) {
  const int parties = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  RoundBench rb = MakeRoundBench(parties, parties >= 100 ? 0.1 : 1.0, threads);
  for (auto _ : state) {
    const RoundStats stats = rb.server->RunRound(rb.options);
    benchmark::DoNotOptimize(stats.mean_local_loss);
  }
  SetFootprintCounters(state);
}
BENCHMARK(BM_RoundFedAvg)
    ->Args({10, 1})
    ->Args({100, 1})
    ->Args({100, 2})
    ->UseRealTime();

// range(0) = threads; 512 test samples in batches of 64 = 8 batch slots.
void BM_EvalGlobal(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  RoundBench rb = MakeRoundBench(/*parties=*/10, /*fraction=*/1.0, threads);
  for (auto _ : state) {
    const EvalResult result = rb.server->EvaluateGlobal(rb.test, 64);
    benchmark::DoNotOptimize(result.loss);
  }
  state.SetItemsProcessed(state.iterations() * rb.test.size());  // samples/s
  SetFootprintCounters(state);
}
BENCHMARK(BM_EvalGlobal)->Arg(1)->Arg(2)->UseRealTime();

// ------------------------------------------------------------ fault suite
// Accuracy-under-failure benchmarks. Each iteration trains a small
// quantity-skewed federation to completion under a deterministic fault
// schedule and exports the final global accuracy as a counter, so
// tools/bench_json.py --suite faults can compare how algorithms degrade.
// The headline claim (BENCH_faults.json): FedNova's tau-normalized
// aggregation degrades more gracefully than FedAvg when stragglers truncate
// local epochs, because variable tau_i is exactly the heterogeneity FedNova
// corrects for.

struct FaultBench {
  std::unique_ptr<FederatedServer> server;
  Dataset test;
  LocalTrainOptions options;
};

// 12 parties with quantity-skewed shards (32/64/96/128 samples repeating),
// each drawing from only two of the four classes (#C=2 label skew). Under
// straggling, big and small parties truncate to different tau_i on top of
// that label skew — the regime where naive sample-weighted averaging drifts
// toward whoever happened to finish more steps, and the one FedNova's
// normalization corrects.
FaultBench MakeFaultBench(const std::string& algorithm,
                          const FaultConfig& faults, int min_aggregate_clients,
                          uint64_t seed_offset,
                          const CompressionConfig& compression = {}) {
  constexpr int kParties = 12;
  constexpr int kClasses = 4;
  const std::vector<int64_t> shard_sizes = {32, 64, 96, 128};
  int64_t train_size = 0;
  for (int i = 0; i < kParties; ++i) {
    train_size += shard_sizes[i % shard_sizes.size()];
  }

  FaultBench fb;
  SyntheticTabularConfig config;
  config.num_classes = kClasses;
  config.num_features = 32;
  config.train_size = train_size;
  config.test_size = 512;
  config.seed = 17 + seed_offset;
  const FederatedDataset fd = MakeSyntheticTabular(config);
  fb.test = fd.test;

  ModelSpec spec;
  spec.name = "mlp";
  spec.input_features = 32;
  spec.num_classes = kClasses;

  std::vector<std::vector<int64_t>> class_pool(kClasses);
  for (int64_t idx = 0; idx < fd.train.size(); ++idx) {
    class_pool[fd.train.labels[idx]].push_back(idx);
  }
  std::vector<size_t> pool_pos(kClasses, 0);

  std::vector<std::unique_ptr<Client>> clients;
  clients.reserve(kParties);
  for (int i = 0; i < kParties; ++i) {
    const int64_t size = shard_sizes[i % shard_sizes.size()];
    std::vector<int64_t> shard;
    shard.reserve(size);
    // Party i alternates between classes i%4 and (i+1)%4, wrapping within
    // each class pool, so shards are 2-class-skewed but never empty.
    for (int64_t s = 0; s < size; ++s) {
      const int cls = (i + static_cast<int>(s) % 2) % kClasses;
      const auto& pool = class_pool[cls];
      shard.push_back(pool[pool_pos[cls]++ % pool.size()]);
    }
    clients.push_back(std::make_unique<Client>(
        i, Subset(fd.train, shard), Rng(100 + i + 1000 * seed_offset)));
  }

  auto algo = CreateAlgorithm(algorithm, AlgorithmConfig{});
  NIID_CHECK(algo.ok());
  ServerConfig server_config;
  server_config.sample_fraction = 1.0;
  server_config.seed = 5 + seed_offset;
  server_config.num_threads = 2;
  server_config.faults = faults;
  server_config.min_aggregate_clients = min_aggregate_clients;
  server_config.compression = compression;
  fb.server = std::make_unique<FederatedServer>(
      MakeModelFactory(spec), std::move(clients), std::move(*algo),
      server_config);
  fb.options.local_epochs = 8;  // straggle truncation has room to bite
  fb.options.batch_size = 16;
  fb.options.learning_rate = 0.01f;
  return fb;
}

// A single (seed, algorithm, fault-level) accuracy is luck: at 512 test
// samples the differential effect of truncation is within seed noise. Each
// benchmark iteration therefore averages a fixed set of replicas — data,
// server, client, and fault streams all reseeded per replica — so the
// reported counter is a stable, still fully deterministic, mean accuracy.
constexpr int kFaultReplicas = 5;
constexpr int kFaultRounds = 24;

double MeanFaultedAccuracy(const std::string& algorithm,
                           const FaultConfig& faults,
                           int min_aggregate_clients) {
  double sum = 0.0;
  for (int replica = 0; replica < kFaultReplicas; ++replica) {
    FaultBench fb = MakeFaultBench(algorithm, faults, min_aggregate_clients,
                                   static_cast<uint64_t>(replica));
    for (int round = 0; round < kFaultRounds; ++round) {
      const RoundStats stats = fb.server->RunRound(fb.options);
      benchmark::DoNotOptimize(stats.mean_local_loss);
    }
    sum += fb.server->EvaluateGlobal(fb.test, 64).accuracy;
  }
  return sum / kFaultReplicas;
}

// range(0): 0 = fedavg, 1 = fednova. range(1): straggle probability in
// percent. straggle_floor 0.1 makes truncation aggressive: a straggler may
// keep as little as 10% of its 8 configured local epochs.
void BM_FaultStraggle(benchmark::State& state) {
  const std::string algorithm = state.range(0) == 0 ? "fedavg" : "fednova";
  FaultConfig faults;
  faults.straggle_rate = static_cast<double>(state.range(1)) / 100.0;
  faults.straggle_floor = 0.1;
  double accuracy = 0.0;
  for (auto _ : state) {
    accuracy = MeanFaultedAccuracy(algorithm, faults,
                                   /*min_aggregate_clients=*/1);
  }
  state.counters["final_accuracy"] = accuracy;
  SetFootprintCounters(state);
}
BENCHMARK(BM_FaultStraggle)
    ->Args({0, 0})
    ->Args({0, 60})
    ->Args({0, 100})
    ->Args({1, 0})
    ->Args({1, 60})
    ->Args({1, 100})
    ->UseRealTime();

// range(0): 0 = fedavg, 1 = fednova. range(1): drop probability in percent.
// The quorum (min_aggregate_clients = 6 of 12) forces resample-retries when
// drops thin a round below half the federation, so this also measures the
// retry loop's cost.
void BM_FaultDrop(benchmark::State& state) {
  const std::string algorithm = state.range(0) == 0 ? "fedavg" : "fednova";
  FaultConfig faults;
  faults.drop_rate = static_cast<double>(state.range(1)) / 100.0;
  double accuracy = 0.0;
  for (auto _ : state) {
    accuracy = MeanFaultedAccuracy(algorithm, faults,
                                   /*min_aggregate_clients=*/6);
  }
  state.counters["final_accuracy"] = accuracy;
  SetFootprintCounters(state);
}
BENCHMARK(BM_FaultDrop)
    ->Args({0, 0})
    ->Args({0, 40})
    ->Args({1, 0})
    ->Args({1, 40})
    ->UseRealTime();

// --------------------------------------------------------- compress suite
// Bytes-on-wire vs accuracy benchmarks for the update-codec layer. Each
// iteration trains the fault suite's label-skewed federation (no faults) to
// completion under one codec and exports bytes/round plus the final
// accuracy, replica-averaged like the fault suite so the gap between a codec
// and the float32 baseline is a stable number, not seed noise. The headline
// claim (BENCH_compress.json): int8 cuts uplink 4x and int4/top-k 8-20x,
// and with error feedback the accuracy cost stays within half a point.
//
// Two compression-ratio counters, because they answer different questions:
//   code_only_ratio  — 32 bits over bits-per-coordinate; the codec's design
//                      ratio (4.0 for int8, 8.0 for int4), what the wire
//                      would approach as segment metadata amortizes away.
//   measured_ratio   — honest bytes_uncompressed / bytes_on_wire including
//                      headers, per-segment scales, and top-k indices. For
//                      sparsifiers only this one is meaningful.

struct CompressCase {
  const char* label;
  CodecKind codec;
  double code_only_ratio;  // 0 = use the measured ratio (sparsifiers)
};

const CompressCase kCompressCases[] = {
    {"none", CodecKind::kIdentity, 1.0},
    {"int8", CodecKind::kInt8, 4.0},
    {"int4", CodecKind::kInt4, 8.0},
    {"topk", CodecKind::kTopK, 0.0},
    {"randk", CodecKind::kRandK, 0.0},
};

struct CompressRunStats {
  double accuracy = 0.0;
  double bytes_per_round = 0.0;
  double bytes_per_round_uncompressed = 0.0;
};

CompressRunStats MeanCompressedRun(const CompressionConfig& compression) {
  CompressRunStats out;
  for (int replica = 0; replica < kFaultReplicas; ++replica) {
    FaultBench fb =
        MakeFaultBench("fedavg", FaultConfig{}, /*min_aggregate_clients=*/1,
                       static_cast<uint64_t>(replica), compression);
    int64_t bytes = 0, bytes_uncompressed = 0;
    for (int round = 0; round < kFaultRounds; ++round) {
      const RoundStats stats = fb.server->RunRound(fb.options);
      bytes += stats.bytes_uplink;
      bytes_uncompressed += stats.bytes_uplink_uncompressed;
    }
    out.accuracy += fb.server->EvaluateGlobal(fb.test, 64).accuracy;
    out.bytes_per_round += static_cast<double>(bytes) / kFaultRounds;
    out.bytes_per_round_uncompressed +=
        static_cast<double>(bytes_uncompressed) / kFaultRounds;
  }
  out.accuracy /= kFaultReplicas;
  out.bytes_per_round /= kFaultReplicas;
  out.bytes_per_round_uncompressed /= kFaultReplicas;
  return out;
}

// range(0) = index into kCompressCases. Error feedback is on for every real
// codec — it is the setting the accuracy claim is about — and a no-op for
// the identity baseline.
void BM_CompressTrain(benchmark::State& state) {
  const CompressCase& c = kCompressCases[state.range(0)];
  CompressionConfig compression;
  compression.codec = c.codec;
  compression.error_feedback = c.codec != CodecKind::kIdentity;
  CompressRunStats stats;
  for (auto _ : state) {
    stats = MeanCompressedRun(compression);
  }
  state.counters["final_accuracy"] = stats.accuracy;
  state.counters["bytes_per_round"] = stats.bytes_per_round;
  state.counters["bytes_per_round_uncompressed"] =
      stats.bytes_per_round_uncompressed;
  state.counters["measured_ratio"] =
      stats.bytes_per_round > 0
          ? stats.bytes_per_round_uncompressed / stats.bytes_per_round
          : 0.0;
  state.counters["code_only_ratio"] =
      c.code_only_ratio > 0
          ? c.code_only_ratio
          : (stats.bytes_per_round > 0
                 ? stats.bytes_per_round_uncompressed / stats.bytes_per_round
                 : 0.0);
  SetFootprintCounters(state);
}
BENCHMARK(BM_CompressTrain)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->UseRealTime();

// Codec kernel throughput in isolation: encode / decode one state-sized
// delta. items == coordinates, so items_per_second reads in coords/s.
// range(0) = index into kCompressCases (identity has no kernels to time).
struct CodecMicroBench {
  std::unique_ptr<FederatedServer> server;
  std::unique_ptr<UpdateCodec> codec;
  StateVector delta;
  CodecScratch scratch;
  EncodedDelta payload;
};

CodecMicroBench MakeCodecMicroBench(CodecKind kind) {
  CodecMicroBench mb;
  CompressionConfig compression;
  compression.codec = kind;
  FaultBench fb = MakeFaultBench("fedavg", FaultConfig{},
                                 /*min_aggregate_clients=*/1, 0, compression);
  mb.server = std::move(fb.server);
  const int64_t n = static_cast<int64_t>(mb.server->global_state().size());
  mb.codec = std::make_unique<UpdateCodec>(compression, /*server_seed=*/5,
                                           mb.server->layout(), n);
  Rng rng(7);
  mb.delta.resize(n);
  for (float& x : mb.delta) x = 0.05f * static_cast<float>(rng.Normal());
  mb.codec->Encode(0, 0, mb.delta, nullptr, mb.scratch, mb.payload);
  return mb;
}

void BM_CompressEncode(benchmark::State& state) {
  CodecMicroBench mb =
      MakeCodecMicroBench(kCompressCases[state.range(0)].codec);
  for (auto _ : state) {
    mb.codec->Encode(0, 0, mb.delta, nullptr, mb.scratch, mb.payload);
    benchmark::DoNotOptimize(mb.payload.bytes.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(mb.delta.size()));
  state.counters["payload_bytes"] =
      static_cast<double>(mb.payload.bytes.size());
}
BENCHMARK(BM_CompressEncode)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_CompressDecode(benchmark::State& state) {
  CodecMicroBench mb =
      MakeCodecMicroBench(kCompressCases[state.range(0)].codec);
  StateVector decoded;
  for (auto _ : state) {
    NIID_CHECK(mb.codec->Decode(0, 0, mb.payload, decoded, mb.scratch).ok());
    benchmark::DoNotOptimize(decoded.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(mb.delta.size()));
}
BENCHMARK(BM_CompressDecode)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

}  // namespace
}  // namespace niid

#ifndef NIID_BENCH_BUILD_TYPE
#define NIID_BENCH_BUILD_TYPE "unknown"
#endif

// Expanded BENCHMARK_MAIN with provenance context: the Debian-packaged
// benchmark harness always reports library_build_type=debug regardless of
// how THIS binary (and the niid library it links) was compiled, so
// tools/bench_json.py keys its Release-only check off these fields instead.
int main(int argc, char** argv) {
  benchmark::AddCustomContext("niid_build_type", NIID_BENCH_BUILD_TYPE);
#ifdef NDEBUG
  benchmark::AddCustomContext("niid_assertions", "off");
#else
  benchmark::AddCustomContext("niid_assertions", "on");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
