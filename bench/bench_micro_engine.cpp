// Micro-benchmarks of the engine substrate (google-benchmark): tensor math,
// layer forward/backward, state flatten/aggregation, and partition
// generation. These quantify where simulation wall-clock goes and guard
// against performance regressions.

#include <benchmark/benchmark.h>

#include "data/synthetic.h"
#include "fl/fedavg.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/models/factory.h"
#include "nn/parameters.h"
#include "partition/label_skew.h"
#include "tensor/ops.h"

namespace niid {
namespace {

void BM_Matmul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::Randn({n, n}, rng);
  const Tensor b = Tensor::Randn({n, n}, rng);
  Tensor out;
  for (auto _ : state) {
    Matmul(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

void BM_Im2Col(benchmark::State& state) {
  Rng rng(2);
  const Tensor input = Tensor::Randn({32, 3, 32, 32}, rng);
  Tensor columns;
  for (auto _ : state) {
    Im2Col(input, 5, 1, 0, columns);
    benchmark::DoNotOptimize(columns.data());
  }
}
BENCHMARK(BM_Im2Col);

void BM_ConvForward(benchmark::State& state) {
  Rng rng(3);
  Conv2d conv(3, 16, 5, rng);
  const Tensor input = Tensor::Randn({32, 3, 32, 32}, rng);
  for (auto _ : state) {
    Tensor out = conv.Forward(input);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ConvForward);

void BM_ConvBackward(benchmark::State& state) {
  Rng rng(4);
  Conv2d conv(3, 16, 5, rng);
  const Tensor input = Tensor::Randn({32, 3, 32, 32}, rng);
  const Tensor out = conv.Forward(input);
  const Tensor grad = Tensor::Ones(out.shape());
  for (auto _ : state) {
    Tensor grad_in = conv.Backward(grad);
    benchmark::DoNotOptimize(grad_in.data());
  }
}
BENCHMARK(BM_ConvBackward);

void BM_BatchNormForward(benchmark::State& state) {
  Rng rng(5);
  BatchNorm bn(16);
  const Tensor input = Tensor::Randn({64, 16, 16, 16}, rng);
  for (auto _ : state) {
    Tensor out = bn.Forward(input);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_BatchNormForward);

void BM_SimpleCnnStep(benchmark::State& state) {
  Rng rng(6);
  ModelSpec spec;
  spec.name = "simple-cnn";
  spec.input_channels = 1;
  spec.input_height = 28;
  spec.input_width = 28;
  auto model = CreateModel(spec, rng);
  const Tensor input = Tensor::Randn({64, 1, 28, 28}, rng);
  for (auto _ : state) {
    ZeroGrads(*model);
    Tensor out = model->Forward(input);
    model->Backward(Tensor::Ones(out.shape()));
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 64);  // samples/s
}
BENCHMARK(BM_SimpleCnnStep);

void BM_FlattenState(benchmark::State& state) {
  Rng rng(7);
  ModelSpec spec;
  spec.name = "simple-cnn";
  auto model = CreateModel(spec, rng);
  for (auto _ : state) {
    StateVector flat = FlattenState(*model);
    benchmark::DoNotOptimize(flat.data());
  }
}
BENCHMARK(BM_FlattenState);

void BM_FedAvgAggregate(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  const int64_t dim = 62006;  // simple-cnn size
  std::vector<LocalUpdate> updates(clients);
  for (int i = 0; i < clients; ++i) {
    updates[i].client_id = i;
    updates[i].num_samples = 100;
    updates[i].delta.assign(dim, 0.01f);
    updates[i].tau = 10;
  }
  const std::vector<StateSegment> layout = {{0, dim, true}};
  FedAvg fedavg(AlgorithmConfig{});
  StateVector global(dim, 0.f);
  for (auto _ : state) {
    fedavg.Aggregate(global, updates, layout);
    benchmark::DoNotOptimize(global.data());
  }
}
BENCHMARK(BM_FedAvgAggregate)->Arg(10)->Arg(100);

void BM_DirichletLabelPartition(benchmark::State& state) {
  Rng data_rng(8);
  std::vector<int> labels(60000);
  for (auto& label : labels) {
    label = static_cast<int>(data_rng.UniformInt(10));
  }
  for (auto _ : state) {
    Rng rng(9);
    auto parts = LabelDirichletSplit(labels, 10, 10, 0.5, 10, rng);
    benchmark::DoNotOptimize(parts.data());
  }
}
BENCHMARK(BM_DirichletLabelPartition);

void BM_SyntheticImageGeneration(benchmark::State& state) {
  for (auto _ : state) {
    SyntheticImageConfig config;
    config.train_size = 500;
    config.test_size = 100;
    FederatedDataset fd = MakeSyntheticImages(config);
    benchmark::DoNotOptimize(fd.train.features.data());
  }
}
BENCHMARK(BM_SyntheticImageGeneration);

}  // namespace
}  // namespace niid

BENCHMARK_MAIN();
