// Scalability of the round loop itself: how far does the simulated party
// count stretch before memory or wall time gives out?
//
// The sparse party engine (ExperimentConfig::sparse_parties) keeps resident
// state O(sampled parties per round): party datasets come from a
// LazyPartitionIndex on demand, per-party rng/control-variate state lives in
// a map keyed by ever-sampled party, and aggregation runs through the
// sharded reduction tree. With sample fraction f, a federation of N parties
// costs ~f*N resident parties per round — at N=1e6 and f=1e-4 that is 100,
// the same envelope as the paper's 100-party Figure 12 runs.
//
// One invocation runs ONE arm and prints a machine-readable RESULT line, so
// that tools/bench_json.py (--suite scale) can launch a fresh subprocess per
// arm and read a per-arm peak RSS (getrusage's ru_maxrss is a process-wide
// high-water mark; only process isolation makes it per-arm).
//
// Flags (beyond the common set in bench_common.h):
//   --parties=N      federation size (default 100000)
//   --fraction=F     sample fraction (default so that f*N == 100)
//   --mode=sparse|dense   engine selection (default sparse)
//   --shards=N       reduction-tree shards (0 = one per worker thread)
//   --identity_check re-run the arm at shards=1,threads=1 and require a
//                    bitwise-equal final model (prints identity_ok=0/1)
//
// RESULT line fields: parties, mode, rounds, sampled_per_round, wall_s,
// peak_rss_mb, final_loss, identity_ok (absent unless --identity_check).

#include <chrono>
#include <cmath>
#include <iostream>
#include <string>

#include "bench_common.h"
#include "fl/server.h"

namespace {

// Builds the single-trial server for one arm and runs it, returning the
// final global state so arms can be compared bitwise.
niid::StateVector RunArm(const niid::ExperimentConfig& config,
                         double* final_loss) {
  niid::Dataset test;
  std::unique_ptr<niid::FederatedServer> server =
      niid::BuildServerForTrial(config, /*trial=*/0, &test);
  niid::LocalTrainOptions local = config.local;
  local.learning_rate = niid::ResolveLearningRate(config);
  double loss = 0.0;
  for (int round = 0; round < config.rounds; ++round) {
    loss = server->RunRound(local).mean_local_loss;
  }
  if (final_loss != nullptr) *final_loss = loss;
  return server->global_state();
}

}  // namespace

int main(int argc, char** argv) {
  const niid::FlagParser flags(argc, argv);
  niid::ExperimentConfig config = niid::bench::BaseConfig(
      flags, /*default_rounds=*/3, /*default_epochs=*/1);
  config.dataset = flags.GetString("dataset", "mnist");  // -> SimpleCnn
  config.trials = 1;
  const int64_t parties = flags.GetInt64("parties", 100000);
  config.partition.num_parties = static_cast<int>(parties);
  // Default fraction: 100 sampled parties per round regardless of N, the
  // constant-envelope regime the tentpole targets. 1e-4 at N=1e6.
  config.sample_fraction = flags.GetDouble(
      "fraction", 100.0 / static_cast<double>(parties));
  const std::string mode = flags.GetString("mode", "sparse");
  config.sparse_parties = mode == "sparse";
  config.num_shards = flags.GetInt("shards", 0);
  if (config.sparse_parties) {
    // Cross-device regime: every party holds an equal-size draw from the
    // global pool, derived on demand — the partition table is never built.
    config.partition.cross_device_samples_per_party =
        flags.GetInt64("samples_per_party", 64);
  }
  if (mode != "sparse" && mode != "dense") {
    std::cerr << "bad --mode " << mode << " (sparse|dense)\n";
    return 1;
  }

  niid::bench::Banner(
      "Scalability — " + std::to_string(parties) + " parties, " + mode, config);

  const auto start = std::chrono::steady_clock::now();
  double final_loss = 0.0;
  const niid::StateVector state = RunArm(config, &final_loss);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const double peak_rss_mb = niid::bench::PeakRssMb();

  std::string identity = "";
  if (flags.GetBool("identity_check", false)) {
    // The sharded tree promises one canonical reduction schedule: replaying
    // the arm serially on a single shard must land on the same bits.
    niid::ExperimentConfig serial = config;
    serial.num_threads = 1;
    serial.num_shards = 1;
    const niid::StateVector replay = RunArm(serial, nullptr);
    identity = std::string(" identity_ok=") + (replay == state ? "1" : "0");
  }

  const int64_t sampled = std::max<int64_t>(
      1, std::llround(config.sample_fraction * static_cast<double>(parties)));
  niid::bench::PrintResourceFootprint(std::cout);
  std::cout << "RESULT parties=" << parties << " mode=" << mode
            << " rounds=" << config.rounds
            << " sampled_per_round=" << sampled << " wall_s=" << wall_s
            << " peak_rss_mb=" << peak_rss_mb << " final_loss=" << final_loss
            << identity << "\n";
  return 0;
}
