// Robustness leaderboard benchmarks (google-benchmark): accuracy of each
// aggregation rule under adversarial scenarios. Every iteration trains the
// fault suite's label-skewed 12-party federation to completion under one
// (algorithm, aggregator, scenario) cell and exports the replica-averaged
// final global accuracy as a counter, so tools/bench_json.py --suite
// scenarios can build the algorithms x rules x scenarios table.
//
// The headline claim (BENCH_scenarios.json): under a 20% sign-flip attack on
// a label-skewed partition, coordinate-wise median (and trimmed mean)
// recover at least half of the accuracy plain FedAvg loses — the classic
// Byzantine-robust aggregation result, reproduced end-to-end through this
// repo's deterministic scenario engine.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "fl/algorithm.h"
#include "fl/client.h"
#include "fl/robust.h"
#include "fl/scenario.h"
#include "fl/server.h"
#include "nn/models/factory.h"
#include "util/check.h"
#include "util/rng.h"

namespace niid {
namespace {

struct ScenarioBench {
  std::unique_ptr<FederatedServer> server;
  Dataset test;
  LocalTrainOptions options;
};

// The fault suite's federation, reused verbatim so the scenario numbers are
// comparable: 12 parties with quantity-skewed shards (32/64/96/128 samples
// repeating), each drawing from only two of the four classes (#C=2 label
// skew). Label skew is what makes robust statistics interesting here — under
// skew the honest updates already disagree, so a rule that survives 20%
// sign-flipped uploads without washing out the honest signal has to separate
// adversaries from heterogeneity, not just from noise.
ScenarioBench MakeScenarioBench(const std::string& algorithm,
                                const ScenarioConfig& scenario,
                                const RobustConfig& robust,
                                uint64_t seed_offset) {
  constexpr int kParties = 12;
  constexpr int kClasses = 4;
  const std::vector<int64_t> shard_sizes = {32, 64, 96, 128};
  int64_t train_size = 0;
  for (int i = 0; i < kParties; ++i) {
    train_size += shard_sizes[i % shard_sizes.size()];
  }

  ScenarioBench sb;
  SyntheticTabularConfig config;
  config.num_classes = kClasses;
  config.num_features = 32;
  config.train_size = train_size;
  config.test_size = 512;
  config.seed = 17 + seed_offset;
  const FederatedDataset fd = MakeSyntheticTabular(config);
  sb.test = fd.test;

  ModelSpec spec;
  spec.name = "mlp";
  spec.input_features = 32;
  spec.num_classes = kClasses;

  std::vector<std::vector<int64_t>> class_pool(kClasses);
  for (int64_t idx = 0; idx < fd.train.size(); ++idx) {
    class_pool[fd.train.labels[idx]].push_back(idx);
  }
  std::vector<size_t> pool_pos(kClasses, 0);

  std::vector<std::unique_ptr<Client>> clients;
  clients.reserve(kParties);
  for (int i = 0; i < kParties; ++i) {
    const int64_t size = shard_sizes[i % shard_sizes.size()];
    std::vector<int64_t> shard;
    shard.reserve(size);
    for (int64_t s = 0; s < size; ++s) {
      const int cls = (i + static_cast<int>(s) % 2) % kClasses;
      const auto& pool = class_pool[cls];
      shard.push_back(pool[pool_pos[cls]++ % pool.size()]);
    }
    clients.push_back(std::make_unique<Client>(
        i, Subset(fd.train, shard), Rng(100 + i + 1000 * seed_offset)));
  }

  auto algo = CreateAlgorithm(algorithm, AlgorithmConfig{});
  NIID_CHECK(algo.ok());
  ServerConfig server_config;
  server_config.sample_fraction = 1.0;
  server_config.seed = 5 + seed_offset;
  server_config.num_threads = 2;
  server_config.scenario = scenario;
  server_config.scenario.num_classes = kClasses;
  server_config.robust = robust;
  sb.server = std::make_unique<FederatedServer>(
      MakeModelFactory(spec), std::move(clients), std::move(*algo),
      server_config);
  sb.options.local_epochs = 8;
  sb.options.batch_size = 16;
  sb.options.learning_rate = 0.01f;
  return sb;
}

// A single (seed, cell) accuracy is luck at 512 test samples; each iteration
// averages a fixed replica set — data, server, client, and scenario streams
// all reseeded per replica (scenario.seed = 0 derives from the server seed)
// — so the reported counter is a stable, still fully deterministic, mean.
constexpr int kScenarioReplicas = 3;
constexpr int kScenarioRounds = 24;

double MeanScenarioAccuracy(const std::string& algorithm,
                            const ScenarioConfig& scenario,
                            const RobustConfig& robust) {
  double sum = 0.0;
  for (int replica = 0; replica < kScenarioReplicas; ++replica) {
    ScenarioBench sb = MakeScenarioBench(algorithm, scenario, robust,
                                         static_cast<uint64_t>(replica));
    for (int round = 0; round < kScenarioRounds; ++round) {
      const RoundStats stats = sb.server->RunRound(sb.options);
      benchmark::DoNotOptimize(stats.mean_local_loss);
    }
    sum += sb.server->EvaluateGlobal(sb.test, 64).accuracy;
  }
  return sum / kScenarioReplicas;
}

const char* kAlgorithms[] = {"fedavg", "fedprox", "scaffold", "fednova"};
const AggregatorKind kAggregators[] = {
    AggregatorKind::kMean, AggregatorKind::kMedian,
    AggregatorKind::kTrimmedMean, AggregatorKind::kNormClip};

RobustConfig MakeRobust(AggregatorKind kind) {
  RobustConfig robust;
  robust.aggregator = kind;
  robust.trim_fraction = 0.25;  // survives up to 3 of 12 outliers per side
  robust.clip_norm = 1.0;       // honest deltas stay inside; 5x flips do not
  return robust;
}

// Scenario columns. clean = the no-attack baseline; signflip20 = a fixed 20%
// adversary subset uploading 5x-amplified sign-flipped deltas (the headline
// cell); churn = an honest population under label drift plus a diurnal
// availability trace (environment dynamics, no adversary).
ScenarioConfig MakeScenario(int index) {
  ScenarioConfig scenario;
  switch (index) {
    case 0:  // clean
      break;
    case 1:  // signflip20
      scenario.adversary_fraction = 0.2;
      scenario.attack = AttackKind::kSignFlip;
      scenario.attack_scale = 5.0;
      break;
    case 2:  // churn
      scenario.drift_period = 8;
      scenario.drift_beta = 0.5;
      scenario.drift_intensity = 0.3;
      scenario.availability_amplitude = 0.4;
      scenario.availability_period = 6;
      break;
    default:
      NIID_CHECK(false) << "unknown scenario index " << index;
  }
  return scenario;
}

// range(0) = algorithm, range(1) = aggregator, range(2) = scenario — indices
// into the tables above; tools/bench_json.py mirrors the mapping.
void BM_Scenario(benchmark::State& state) {
  const std::string algorithm = kAlgorithms[state.range(0)];
  const RobustConfig robust = MakeRobust(kAggregators[state.range(1)]);
  const ScenarioConfig scenario =
      MakeScenario(static_cast<int>(state.range(2)));
  double accuracy = 0.0;
  for (auto _ : state) {
    accuracy = MeanScenarioAccuracy(algorithm, scenario, robust);
  }
  state.counters["final_accuracy"] = accuracy;
}
BENCHMARK(BM_Scenario)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1, 2, 3}, {0, 1}})
    ->Args({0, 0, 2})  // churn column: fedavg across all four rules
    ->Args({0, 1, 2})
    ->Args({0, 2, 2})
    ->Args({0, 3, 2})
    ->UseRealTime();

}  // namespace
}  // namespace niid

#ifndef NIID_BENCH_BUILD_TYPE
#define NIID_BENCH_BUILD_TYPE "unknown"
#endif

// Provenance-stamped main, same contract as bench_micro_engine: the packaged
// benchmark harness misreports its own library_build_type, so
// tools/bench_json.py keys its Release-only check off these fields.
int main(int argc, char** argv) {
  benchmark::AddCustomContext("niid_build_type", NIID_BENCH_BUILD_TYPE);
#ifdef NDEBUG
  benchmark::AddCustomContext("niid_assertions", "off");
#else
  benchmark::AddCustomContext("niid_assertions", "on");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
