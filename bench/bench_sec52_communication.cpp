// Reproduces the Section 5.2 communication-efficiency analysis (the
// quantitative story behind Figure 7 / Finding 4): for each algorithm, the
// rounds and uploaded megabytes needed to first reach a target accuracy,
// plus the final accuracy at equal rounds. SCAFFOLD pays 2x volume per
// round; FedProx tracks FedAvg closely; none of the three extensions is
// decisively more communication-efficient than FedAvg.
//
// Flags: --dataset=cifar10 --partition=dir --target=0.5 + common.

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  const niid::FlagParser flags(argc, argv);
  niid::ExperimentConfig base = niid::bench::BaseConfig(
      flags, /*default_rounds=*/12, /*default_epochs=*/2);
  base.dataset = flags.GetString("dataset", "cifar10");
  const double target = flags.GetDouble("target", 0.5);
  if (!niid::bench::ApplyPartitionShorthand(
          base, flags.GetString("partition", "dir"))) {
    std::cerr << "bad partition\n";
    return 1;
  }
  niid::bench::Banner("Section 5.2 — communication efficiency on " +
                          base.dataset + " " + base.partition.Label(),
                      base);

  niid::Table table({"algorithm", "rounds to " +
                         niid::FormatPercent(target, 0),
                     "MB uploaded to target", "final accuracy",
                     "total MB uploaded"});
  for (const std::string& algorithm : niid::AlgorithmNames()) {
    niid::ExperimentConfig config = base;
    config.algorithm = algorithm;

    int rounds_to_target = -1;
    int64_t floats_to_target = -1;
    niid::RoundObserver observer =
        [&](int trial, const niid::RoundStats& stats,
            const niid::EvalResult& eval) {
          if (trial != 0 || rounds_to_target >= 0) return;
          if (eval.accuracy >= target) {
            rounds_to_target = stats.round + 1;
            floats_to_target = stats.cumulative_upload_floats;
          }
        };
    const niid::ExperimentResult result =
        niid::RunExperiment(config, observer);
    auto to_mb = [](int64_t floats) {
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%.1f",
                    floats * 4.0 / (1024.0 * 1024.0));
      return std::string(buffer);
    };
    table.AddRow({algorithm,
                  rounds_to_target < 0 ? "not reached"
                                       : std::to_string(rounds_to_target),
                  rounds_to_target < 0 ? "-" : to_mb(floats_to_target),
                  niid::FormatAccuracy(result.FinalAccuracies()),
                  to_mb(result.trials[0].upload_floats)});
    std::cerr << "done: " << algorithm << "\n";
  }
  table.Print(std::cout);
  std::cout << "\n(MB = uploaded model floats * 4 bytes; SCAFFOLD ships the "
               "control variate too, doubling every row's volume.)\n";
  return 0;
}
