// Reproduces Table 1: partitioning strategies covered by the experiments of
// prior work (FedAvg, FedProx, SCAFFOLD, FedNova) versus NIID-Bench.
// This table is static metadata from the paper's related-work analysis.

#include <iostream>

#include "core/coverage.h"

int main() {
  std::cout << "Table 1 — experimental settings in existing studies vs "
               "NIID-Bench\n\n";
  niid::PrintStrategyCoverage(std::cout);
  std::cout << "\nNIID-Bench is the only configuration covering all six "
               "partitioning strategies.\n";
  return 0;
}
