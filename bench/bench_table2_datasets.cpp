// Reproduces Table 2: statistics of the nine benchmark datasets. Prints the
// paper's reported sizes next to the sizes this build instantiates (the
// synthetic stand-ins keep shapes and class counts, scaling only N; see
// DESIGN.md substitution table).
//
// Flags: --size_factor=F (default 0.008), --full_stats (adds per-class
// counts of the generated train split).

#include <iostream>
#include <string>

#include "data/catalog.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const niid::FlagParser flags(argc, argv);
  niid::CatalogOptions options;
  options.size_factor = flags.GetDouble("size_factor", 0.008);
  options.seed = flags.GetInt64("seed", 7);

  std::cout << "Table 2 — dataset statistics (paper vs this build)\n\n";
  niid::Table table({"dataset", "#train (paper)", "#test (paper)",
                     "#features", "#classes", "#train (built)",
                     "#test (built)"});
  for (const std::string& name : niid::CatalogDatasetNames()) {
    const niid::DatasetInfo& info = niid::GetDatasetInfo(name);
    auto fd = niid::MakeCatalogDataset(name, options);
    if (!fd.ok()) {
      std::cerr << fd.status().ToString() << "\n";
      return 1;
    }
    table.AddRow({name, std::to_string(info.paper_train_size),
                  std::to_string(info.paper_test_size),
                  std::to_string(info.num_features),
                  std::to_string(info.num_classes),
                  std::to_string(fd->train.size()),
                  std::to_string(fd->test.size())});
  }
  table.Print(std::cout);

  if (flags.GetBool("full_stats", false)) {
    std::cout << "\nPer-class train counts of the generated splits:\n";
    for (const std::string& name : niid::CatalogDatasetNames()) {
      auto fd = niid::MakeCatalogDataset(name, options);
      std::cout << name << ":";
      for (int64_t c : niid::CountLabels(fd->train)) std::cout << " " << c;
      std::cout << "\n";
    }
  }
  return 0;
}
