// Reproduces Table 3: top-1 test accuracy of FedAvg / FedProx / SCAFFOLD /
// FedNova under every partitioning strategy and dataset, reported as
// mean±std over trials, with a per-block "number of times best" tally.
//
// The paper's protocol: N=10 parties (4 for FCUBE), full participation,
// E=10 local epochs, batch 64, SGD(momentum 0.9), lr 0.01 (0.1 for rcv1),
// 50 rounds, 3 trials. The quick default scales rounds/epochs/data down to
// finish on one CPU core; --paper_scale restores the full protocol.
//
// Flags (besides the common ones in bench_common.h):
//   --datasets=mnist,cifar10,...   subset to run (default: a representative
//                                  seven; --full runs all nine)
//   --mu=0.01                      FedProx mu (--tune_mu sweeps the paper's
//                                  grid {0.001,0.01,0.1,1} and reports best)
//   --out_csv=PATH                 dump every cell to CSV

#include <algorithm>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/leaderboard.h"
#include "util/csv.h"

namespace {

using niid::ExperimentConfig;
using niid::ExperimentResult;
using niid::FormatAccuracy;
using niid::Mean;

struct Cell {
  std::string category;
  std::string dataset;
  std::string partition;  // shorthand
};

std::vector<Cell> BuildGrid(const std::vector<std::string>& datasets) {
  std::vector<Cell> grid;
  for (const std::string& d : datasets) {
    if (d == "fcube") {
      grid.push_back({"feature skew", d, "synthetic"});
      continue;
    }
    if (d == "femnist") {
      grid.push_back({"feature skew", d, "real-world"});
      continue;
    }
    const bool is_image = niid::GetDatasetInfo(d).is_image;
    const int classes = niid::GetDatasetInfo(d).num_classes;
    grid.push_back({"label skew", d, "dir"});
    grid.push_back({"label skew", d, "c1"});
    if (classes > 2) {
      grid.push_back({"label skew", d, "c2"});
      grid.push_back({"label skew", d, "c3"});
    }
    if (is_image) grid.push_back({"feature skew", d, "noise"});
    grid.push_back({"quantity skew", d, "quantity"});
  }
  for (const std::string& d : datasets) {
    grid.push_back({"homogeneous", d, "homo"});
  }
  return grid;
}

}  // namespace

int main(int argc, char** argv) {
  const niid::FlagParser flags(argc, argv);
  ExperimentConfig base = niid::bench::BaseConfig(flags, /*default_rounds=*/8,
                                                  /*default_epochs=*/2);
  niid::bench::Banner("Table 3 — overall accuracy comparison", base);

  std::vector<std::string> datasets;
  if (flags.Has("datasets")) {
    datasets = niid::bench::SplitCsvFlag(flags.GetString("datasets", ""));
  } else if (flags.GetBool("full", false) ||
             flags.GetBool("paper_scale", false)) {
    datasets = niid::CatalogDatasetNames();
  } else {
    datasets = {"mnist", "cifar10", "adult", "rcv1",
                "covtype", "fcube", "femnist"};
  }

  const std::vector<std::string> algorithms = niid::AlgorithmNames();
  const float mu = static_cast<float>(flags.GetDouble("mu", 0.01));
  const bool tune_mu = flags.GetBool("tune_mu", false);

  std::unique_ptr<niid::CsvWriter> csv;
  if (flags.Has("out_csv")) {
    csv = std::make_unique<niid::CsvWriter>(flags.GetString("out_csv", ""));
    csv->WriteHeader({"category", "dataset", "partition", "algorithm",
                      "trial", "accuracy"});
  }

  niid::Table table({"category", "dataset", "partitioning", "FedAvg",
                     "FedProx", "SCAFFOLD", "FedNova"});
  niid::Leaderboard leaderboard;
  std::map<std::string, std::map<std::string, int>> best_counts;
  std::string previous_category;

  for (const Cell& cell : BuildGrid(datasets)) {
    ExperimentConfig config = base;
    config.dataset = cell.dataset;
    if (!niid::bench::ApplyPartitionShorthand(config, cell.partition)) {
      std::cerr << "bad partition " << cell.partition << "\n";
      return 1;
    }
    if (cell.dataset == "fcube") config.partition.num_parties = 4;

    std::vector<std::string> row = {cell.category, cell.dataset,
                                    config.partition.Label()};
    std::vector<double> means;
    for (const std::string& algorithm : algorithms) {
      config.algorithm = algorithm;
      std::vector<float> mus = {mu};
      if (algorithm == "fedprox" && tune_mu) {
        mus = {0.001f, 0.01f, 0.1f, 1.f};
      }
      double best_mean = -1.0;
      ExperimentResult best_result;
      for (float candidate : mus) {
        config.algo.fedprox_mu = candidate;
        ExperimentResult result = niid::RunExperiment(config);
        const double mean = Mean(result.FinalAccuracies());
        if (mean > best_mean) {
          best_mean = mean;
          best_result = std::move(result);
        }
      }
      row.push_back(FormatAccuracy(best_result.FinalAccuracies()));
      means.push_back(best_mean);
      leaderboard.AddResult(best_result);
      if (csv) {
        const auto finals = best_result.FinalAccuracies();
        for (size_t t = 0; t < finals.size(); ++t) {
          csv->WriteRow({cell.category, cell.dataset,
                         config.partition.Label(), algorithm,
                         std::to_string(t), std::to_string(finals[t])});
        }
      }
    }
    const size_t best =
        std::max_element(means.begin(), means.end()) - means.begin();
    row[3 + best] += " *";
    ++best_counts[cell.category][algorithms[best]];
    if (!previous_category.empty() && cell.category != previous_category) {
      table.AddSeparator();
    }
    previous_category = cell.category;
    table.AddRow(std::move(row));
    std::cerr << "done: " << cell.dataset << " / "
              << config.partition.Label() << "\n";
  }

  table.Print(std::cout);
  std::cout << "\n(* = best algorithm in the row"
            << (tune_mu ? "; FedProx mu tuned over {0.001,0.01,0.1,1}"
                        : "; FedProx mu fixed, pass --tune_mu for the "
                          "paper's per-cell tuning")
            << ")\n\nNumber of times each algorithm performs best:\n";
  for (const auto& [category, counts] : best_counts) {
    std::cout << "  " << category << ":";
    for (const std::string& algorithm : algorithms) {
      const auto it = counts.find(algorithm);
      std::cout << " " << algorithm << "="
                << (it == counts.end() ? 0 : it->second);
    }
    std::cout << "\n";
  }
  std::cout << "\n";
  leaderboard.Print(std::cout);
  if (flags.Has("leaderboard_csv")) {
    const niid::Status saved =
        leaderboard.SaveCsv(flags.GetString("leaderboard_csv", ""));
    if (!saved.ok()) {
      std::cerr << "failed to write leaderboard_csv: " << saved.ToString()
                << "\n";
      return 1;
    }
  }
  if (csv) csv->Flush();
  return 0;
}
