file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fedbn.dir/bench_ablation_fedbn.cpp.o"
  "CMakeFiles/bench_ablation_fedbn.dir/bench_ablation_fedbn.cpp.o.d"
  "bench_ablation_fedbn"
  "bench_ablation_fedbn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fedbn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
