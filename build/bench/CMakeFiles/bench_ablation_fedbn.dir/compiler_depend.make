# Empty compiler generated dependencies file for bench_ablation_fedbn.
# This may be replaced when dependencies are built.
