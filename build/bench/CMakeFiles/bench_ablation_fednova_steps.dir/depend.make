# Empty dependencies file for bench_ablation_fednova_steps.
# This may be replaced when dependencies are built.
