file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fedopt.dir/bench_ablation_fedopt.cpp.o"
  "CMakeFiles/bench_ablation_fedopt.dir/bench_ablation_fedopt.cpp.o.d"
  "bench_ablation_fedopt"
  "bench_ablation_fedopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fedopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
