# Empty compiler generated dependencies file for bench_ablation_fedopt.
# This may be replaced when dependencies are built.
