file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_scaffold.dir/bench_ablation_scaffold.cpp.o"
  "CMakeFiles/bench_ablation_scaffold.dir/bench_ablation_scaffold.cpp.o.d"
  "bench_ablation_scaffold"
  "bench_ablation_scaffold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_scaffold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
