# Empty compiler generated dependencies file for bench_ablation_scaffold.
# This may be replaced when dependencies are built.
