# Empty dependencies file for bench_fig10_batch_size.
# This may be replaced when dependencies are built.
