file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_model_arch.dir/bench_fig11_model_arch.cpp.o"
  "CMakeFiles/bench_fig11_model_arch.dir/bench_fig11_model_arch.cpp.o.d"
  "bench_fig11_model_arch"
  "bench_fig11_model_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_model_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
