# Empty compiler generated dependencies file for bench_fig3_partition_matrix.
# This may be replaced when dependencies are built.
