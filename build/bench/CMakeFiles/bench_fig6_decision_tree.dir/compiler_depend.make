# Empty compiler generated dependencies file for bench_fig6_decision_tree.
# This may be replaced when dependencies are built.
