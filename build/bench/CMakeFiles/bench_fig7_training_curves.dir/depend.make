# Empty dependencies file for bench_fig7_training_curves.
# This may be replaced when dependencies are built.
