file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_fedprox_mu.dir/bench_fig8_fedprox_mu.cpp.o"
  "CMakeFiles/bench_fig8_fedprox_mu.dir/bench_fig8_fedprox_mu.cpp.o.d"
  "bench_fig8_fedprox_mu"
  "bench_fig8_fedprox_mu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_fedprox_mu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
