# Empty compiler generated dependencies file for bench_fig8_fedprox_mu.
# This may be replaced when dependencies are built.
