file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_local_epochs.dir/bench_fig9_local_epochs.cpp.o"
  "CMakeFiles/bench_fig9_local_epochs.dir/bench_fig9_local_epochs.cpp.o.d"
  "bench_fig9_local_epochs"
  "bench_fig9_local_epochs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_local_epochs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
