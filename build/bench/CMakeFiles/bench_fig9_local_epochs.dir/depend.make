# Empty dependencies file for bench_fig9_local_epochs.
# This may be replaced when dependencies are built.
