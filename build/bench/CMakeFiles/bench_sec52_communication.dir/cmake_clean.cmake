file(REMOVE_RECURSE
  "CMakeFiles/bench_sec52_communication.dir/bench_sec52_communication.cpp.o"
  "CMakeFiles/bench_sec52_communication.dir/bench_sec52_communication.cpp.o.d"
  "bench_sec52_communication"
  "bench_sec52_communication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec52_communication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
