file(REMOVE_RECURSE
  "CMakeFiles/handwriting_feature_skew.dir/handwriting_feature_skew.cpp.o"
  "CMakeFiles/handwriting_feature_skew.dir/handwriting_feature_skew.cpp.o.d"
  "handwriting_feature_skew"
  "handwriting_feature_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/handwriting_feature_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
