# Empty compiler generated dependencies file for handwriting_feature_skew.
# This may be replaced when dependencies are built.
