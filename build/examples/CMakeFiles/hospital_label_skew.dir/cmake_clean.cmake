file(REMOVE_RECURSE
  "CMakeFiles/hospital_label_skew.dir/hospital_label_skew.cpp.o"
  "CMakeFiles/hospital_label_skew.dir/hospital_label_skew.cpp.o.d"
  "hospital_label_skew"
  "hospital_label_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hospital_label_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
