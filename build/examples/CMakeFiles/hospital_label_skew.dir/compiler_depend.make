# Empty compiler generated dependencies file for hospital_label_skew.
# This may be replaced when dependencies are built.
