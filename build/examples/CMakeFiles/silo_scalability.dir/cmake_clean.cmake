file(REMOVE_RECURSE
  "CMakeFiles/silo_scalability.dir/silo_scalability.cpp.o"
  "CMakeFiles/silo_scalability.dir/silo_scalability.cpp.o.d"
  "silo_scalability"
  "silo_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silo_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
