# Empty compiler generated dependencies file for silo_scalability.
# This may be replaced when dependencies are built.
