
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/coverage.cc" "src/CMakeFiles/niid_core.dir/core/coverage.cc.o" "gcc" "src/CMakeFiles/niid_core.dir/core/coverage.cc.o.d"
  "/root/repo/src/core/curves.cc" "src/CMakeFiles/niid_core.dir/core/curves.cc.o" "gcc" "src/CMakeFiles/niid_core.dir/core/curves.cc.o.d"
  "/root/repo/src/core/decision_tree.cc" "src/CMakeFiles/niid_core.dir/core/decision_tree.cc.o" "gcc" "src/CMakeFiles/niid_core.dir/core/decision_tree.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/CMakeFiles/niid_core.dir/core/experiment.cc.o" "gcc" "src/CMakeFiles/niid_core.dir/core/experiment.cc.o.d"
  "/root/repo/src/core/leaderboard.cc" "src/CMakeFiles/niid_core.dir/core/leaderboard.cc.o" "gcc" "src/CMakeFiles/niid_core.dir/core/leaderboard.cc.o.d"
  "/root/repo/src/core/profiler.cc" "src/CMakeFiles/niid_core.dir/core/profiler.cc.o" "gcc" "src/CMakeFiles/niid_core.dir/core/profiler.cc.o.d"
  "/root/repo/src/core/runner.cc" "src/CMakeFiles/niid_core.dir/core/runner.cc.o" "gcc" "src/CMakeFiles/niid_core.dir/core/runner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/niid_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/niid_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/niid_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/niid_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/niid_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/niid_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
