file(REMOVE_RECURSE
  "CMakeFiles/niid_core.dir/core/coverage.cc.o"
  "CMakeFiles/niid_core.dir/core/coverage.cc.o.d"
  "CMakeFiles/niid_core.dir/core/curves.cc.o"
  "CMakeFiles/niid_core.dir/core/curves.cc.o.d"
  "CMakeFiles/niid_core.dir/core/decision_tree.cc.o"
  "CMakeFiles/niid_core.dir/core/decision_tree.cc.o.d"
  "CMakeFiles/niid_core.dir/core/experiment.cc.o"
  "CMakeFiles/niid_core.dir/core/experiment.cc.o.d"
  "CMakeFiles/niid_core.dir/core/leaderboard.cc.o"
  "CMakeFiles/niid_core.dir/core/leaderboard.cc.o.d"
  "CMakeFiles/niid_core.dir/core/profiler.cc.o"
  "CMakeFiles/niid_core.dir/core/profiler.cc.o.d"
  "CMakeFiles/niid_core.dir/core/runner.cc.o"
  "CMakeFiles/niid_core.dir/core/runner.cc.o.d"
  "libniid_core.a"
  "libniid_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/niid_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
