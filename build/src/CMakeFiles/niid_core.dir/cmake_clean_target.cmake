file(REMOVE_RECURSE
  "libniid_core.a"
)
