# Empty compiler generated dependencies file for niid_core.
# This may be replaced when dependencies are built.
