
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/catalog.cc" "src/CMakeFiles/niid_data.dir/data/catalog.cc.o" "gcc" "src/CMakeFiles/niid_data.dir/data/catalog.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/niid_data.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/niid_data.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/fcube.cc" "src/CMakeFiles/niid_data.dir/data/fcube.cc.o" "gcc" "src/CMakeFiles/niid_data.dir/data/fcube.cc.o.d"
  "/root/repo/src/data/femnist.cc" "src/CMakeFiles/niid_data.dir/data/femnist.cc.o" "gcc" "src/CMakeFiles/niid_data.dir/data/femnist.cc.o.d"
  "/root/repo/src/data/loaders.cc" "src/CMakeFiles/niid_data.dir/data/loaders.cc.o" "gcc" "src/CMakeFiles/niid_data.dir/data/loaders.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/CMakeFiles/niid_data.dir/data/synthetic.cc.o" "gcc" "src/CMakeFiles/niid_data.dir/data/synthetic.cc.o.d"
  "/root/repo/src/data/transforms.cc" "src/CMakeFiles/niid_data.dir/data/transforms.cc.o" "gcc" "src/CMakeFiles/niid_data.dir/data/transforms.cc.o.d"
  "/root/repo/src/data/writers.cc" "src/CMakeFiles/niid_data.dir/data/writers.cc.o" "gcc" "src/CMakeFiles/niid_data.dir/data/writers.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/niid_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/niid_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
