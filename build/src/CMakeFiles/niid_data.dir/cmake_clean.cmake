file(REMOVE_RECURSE
  "CMakeFiles/niid_data.dir/data/catalog.cc.o"
  "CMakeFiles/niid_data.dir/data/catalog.cc.o.d"
  "CMakeFiles/niid_data.dir/data/dataset.cc.o"
  "CMakeFiles/niid_data.dir/data/dataset.cc.o.d"
  "CMakeFiles/niid_data.dir/data/fcube.cc.o"
  "CMakeFiles/niid_data.dir/data/fcube.cc.o.d"
  "CMakeFiles/niid_data.dir/data/femnist.cc.o"
  "CMakeFiles/niid_data.dir/data/femnist.cc.o.d"
  "CMakeFiles/niid_data.dir/data/loaders.cc.o"
  "CMakeFiles/niid_data.dir/data/loaders.cc.o.d"
  "CMakeFiles/niid_data.dir/data/synthetic.cc.o"
  "CMakeFiles/niid_data.dir/data/synthetic.cc.o.d"
  "CMakeFiles/niid_data.dir/data/transforms.cc.o"
  "CMakeFiles/niid_data.dir/data/transforms.cc.o.d"
  "CMakeFiles/niid_data.dir/data/writers.cc.o"
  "CMakeFiles/niid_data.dir/data/writers.cc.o.d"
  "libniid_data.a"
  "libniid_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/niid_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
