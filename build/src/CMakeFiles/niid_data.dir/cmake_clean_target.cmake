file(REMOVE_RECURSE
  "libniid_data.a"
)
