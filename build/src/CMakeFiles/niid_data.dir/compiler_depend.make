# Empty compiler generated dependencies file for niid_data.
# This may be replaced when dependencies are built.
