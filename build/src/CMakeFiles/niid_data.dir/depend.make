# Empty dependencies file for niid_data.
# This may be replaced when dependencies are built.
