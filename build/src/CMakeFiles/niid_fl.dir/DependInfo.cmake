
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fl/algorithm.cc" "src/CMakeFiles/niid_fl.dir/fl/algorithm.cc.o" "gcc" "src/CMakeFiles/niid_fl.dir/fl/algorithm.cc.o.d"
  "/root/repo/src/fl/client.cc" "src/CMakeFiles/niid_fl.dir/fl/client.cc.o" "gcc" "src/CMakeFiles/niid_fl.dir/fl/client.cc.o.d"
  "/root/repo/src/fl/fedavg.cc" "src/CMakeFiles/niid_fl.dir/fl/fedavg.cc.o" "gcc" "src/CMakeFiles/niid_fl.dir/fl/fedavg.cc.o.d"
  "/root/repo/src/fl/fednova.cc" "src/CMakeFiles/niid_fl.dir/fl/fednova.cc.o" "gcc" "src/CMakeFiles/niid_fl.dir/fl/fednova.cc.o.d"
  "/root/repo/src/fl/fedopt.cc" "src/CMakeFiles/niid_fl.dir/fl/fedopt.cc.o" "gcc" "src/CMakeFiles/niid_fl.dir/fl/fedopt.cc.o.d"
  "/root/repo/src/fl/fedprox.cc" "src/CMakeFiles/niid_fl.dir/fl/fedprox.cc.o" "gcc" "src/CMakeFiles/niid_fl.dir/fl/fedprox.cc.o.d"
  "/root/repo/src/fl/metrics.cc" "src/CMakeFiles/niid_fl.dir/fl/metrics.cc.o" "gcc" "src/CMakeFiles/niid_fl.dir/fl/metrics.cc.o.d"
  "/root/repo/src/fl/privacy.cc" "src/CMakeFiles/niid_fl.dir/fl/privacy.cc.o" "gcc" "src/CMakeFiles/niid_fl.dir/fl/privacy.cc.o.d"
  "/root/repo/src/fl/sampling.cc" "src/CMakeFiles/niid_fl.dir/fl/sampling.cc.o" "gcc" "src/CMakeFiles/niid_fl.dir/fl/sampling.cc.o.d"
  "/root/repo/src/fl/scaffold.cc" "src/CMakeFiles/niid_fl.dir/fl/scaffold.cc.o" "gcc" "src/CMakeFiles/niid_fl.dir/fl/scaffold.cc.o.d"
  "/root/repo/src/fl/server.cc" "src/CMakeFiles/niid_fl.dir/fl/server.cc.o" "gcc" "src/CMakeFiles/niid_fl.dir/fl/server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/niid_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/niid_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/niid_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/niid_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/niid_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
