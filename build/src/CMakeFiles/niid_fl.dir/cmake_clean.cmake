file(REMOVE_RECURSE
  "CMakeFiles/niid_fl.dir/fl/algorithm.cc.o"
  "CMakeFiles/niid_fl.dir/fl/algorithm.cc.o.d"
  "CMakeFiles/niid_fl.dir/fl/client.cc.o"
  "CMakeFiles/niid_fl.dir/fl/client.cc.o.d"
  "CMakeFiles/niid_fl.dir/fl/fedavg.cc.o"
  "CMakeFiles/niid_fl.dir/fl/fedavg.cc.o.d"
  "CMakeFiles/niid_fl.dir/fl/fednova.cc.o"
  "CMakeFiles/niid_fl.dir/fl/fednova.cc.o.d"
  "CMakeFiles/niid_fl.dir/fl/fedopt.cc.o"
  "CMakeFiles/niid_fl.dir/fl/fedopt.cc.o.d"
  "CMakeFiles/niid_fl.dir/fl/fedprox.cc.o"
  "CMakeFiles/niid_fl.dir/fl/fedprox.cc.o.d"
  "CMakeFiles/niid_fl.dir/fl/metrics.cc.o"
  "CMakeFiles/niid_fl.dir/fl/metrics.cc.o.d"
  "CMakeFiles/niid_fl.dir/fl/privacy.cc.o"
  "CMakeFiles/niid_fl.dir/fl/privacy.cc.o.d"
  "CMakeFiles/niid_fl.dir/fl/sampling.cc.o"
  "CMakeFiles/niid_fl.dir/fl/sampling.cc.o.d"
  "CMakeFiles/niid_fl.dir/fl/scaffold.cc.o"
  "CMakeFiles/niid_fl.dir/fl/scaffold.cc.o.d"
  "CMakeFiles/niid_fl.dir/fl/server.cc.o"
  "CMakeFiles/niid_fl.dir/fl/server.cc.o.d"
  "libniid_fl.a"
  "libniid_fl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/niid_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
