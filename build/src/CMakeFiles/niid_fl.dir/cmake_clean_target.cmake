file(REMOVE_RECURSE
  "libniid_fl.a"
)
