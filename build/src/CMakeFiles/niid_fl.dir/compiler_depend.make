# Empty compiler generated dependencies file for niid_fl.
# This may be replaced when dependencies are built.
