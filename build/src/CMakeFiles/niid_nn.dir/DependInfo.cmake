
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cc" "src/CMakeFiles/niid_nn.dir/nn/activations.cc.o" "gcc" "src/CMakeFiles/niid_nn.dir/nn/activations.cc.o.d"
  "/root/repo/src/nn/batchnorm.cc" "src/CMakeFiles/niid_nn.dir/nn/batchnorm.cc.o" "gcc" "src/CMakeFiles/niid_nn.dir/nn/batchnorm.cc.o.d"
  "/root/repo/src/nn/conv2d.cc" "src/CMakeFiles/niid_nn.dir/nn/conv2d.cc.o" "gcc" "src/CMakeFiles/niid_nn.dir/nn/conv2d.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/CMakeFiles/niid_nn.dir/nn/linear.cc.o" "gcc" "src/CMakeFiles/niid_nn.dir/nn/linear.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/CMakeFiles/niid_nn.dir/nn/loss.cc.o" "gcc" "src/CMakeFiles/niid_nn.dir/nn/loss.cc.o.d"
  "/root/repo/src/nn/models/factory.cc" "src/CMakeFiles/niid_nn.dir/nn/models/factory.cc.o" "gcc" "src/CMakeFiles/niid_nn.dir/nn/models/factory.cc.o.d"
  "/root/repo/src/nn/models/resnet.cc" "src/CMakeFiles/niid_nn.dir/nn/models/resnet.cc.o" "gcc" "src/CMakeFiles/niid_nn.dir/nn/models/resnet.cc.o.d"
  "/root/repo/src/nn/models/simple_cnn.cc" "src/CMakeFiles/niid_nn.dir/nn/models/simple_cnn.cc.o" "gcc" "src/CMakeFiles/niid_nn.dir/nn/models/simple_cnn.cc.o.d"
  "/root/repo/src/nn/models/tabular_mlp.cc" "src/CMakeFiles/niid_nn.dir/nn/models/tabular_mlp.cc.o" "gcc" "src/CMakeFiles/niid_nn.dir/nn/models/tabular_mlp.cc.o.d"
  "/root/repo/src/nn/models/vgg9.cc" "src/CMakeFiles/niid_nn.dir/nn/models/vgg9.cc.o" "gcc" "src/CMakeFiles/niid_nn.dir/nn/models/vgg9.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/CMakeFiles/niid_nn.dir/nn/module.cc.o" "gcc" "src/CMakeFiles/niid_nn.dir/nn/module.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/CMakeFiles/niid_nn.dir/nn/optimizer.cc.o" "gcc" "src/CMakeFiles/niid_nn.dir/nn/optimizer.cc.o.d"
  "/root/repo/src/nn/parameters.cc" "src/CMakeFiles/niid_nn.dir/nn/parameters.cc.o" "gcc" "src/CMakeFiles/niid_nn.dir/nn/parameters.cc.o.d"
  "/root/repo/src/nn/pooling.cc" "src/CMakeFiles/niid_nn.dir/nn/pooling.cc.o" "gcc" "src/CMakeFiles/niid_nn.dir/nn/pooling.cc.o.d"
  "/root/repo/src/nn/sequential.cc" "src/CMakeFiles/niid_nn.dir/nn/sequential.cc.o" "gcc" "src/CMakeFiles/niid_nn.dir/nn/sequential.cc.o.d"
  "/root/repo/src/nn/serialization.cc" "src/CMakeFiles/niid_nn.dir/nn/serialization.cc.o" "gcc" "src/CMakeFiles/niid_nn.dir/nn/serialization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/niid_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/niid_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
