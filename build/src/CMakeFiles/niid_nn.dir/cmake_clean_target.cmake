file(REMOVE_RECURSE
  "libniid_nn.a"
)
