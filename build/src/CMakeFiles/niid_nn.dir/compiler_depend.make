# Empty compiler generated dependencies file for niid_nn.
# This may be replaced when dependencies are built.
