
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/feature_skew.cc" "src/CMakeFiles/niid_partition.dir/partition/feature_skew.cc.o" "gcc" "src/CMakeFiles/niid_partition.dir/partition/feature_skew.cc.o.d"
  "/root/repo/src/partition/label_skew.cc" "src/CMakeFiles/niid_partition.dir/partition/label_skew.cc.o" "gcc" "src/CMakeFiles/niid_partition.dir/partition/label_skew.cc.o.d"
  "/root/repo/src/partition/partition.cc" "src/CMakeFiles/niid_partition.dir/partition/partition.cc.o" "gcc" "src/CMakeFiles/niid_partition.dir/partition/partition.cc.o.d"
  "/root/repo/src/partition/quantity_skew.cc" "src/CMakeFiles/niid_partition.dir/partition/quantity_skew.cc.o" "gcc" "src/CMakeFiles/niid_partition.dir/partition/quantity_skew.cc.o.d"
  "/root/repo/src/partition/report.cc" "src/CMakeFiles/niid_partition.dir/partition/report.cc.o" "gcc" "src/CMakeFiles/niid_partition.dir/partition/report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/niid_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/niid_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/niid_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
