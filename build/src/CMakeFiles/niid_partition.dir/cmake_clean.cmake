file(REMOVE_RECURSE
  "CMakeFiles/niid_partition.dir/partition/feature_skew.cc.o"
  "CMakeFiles/niid_partition.dir/partition/feature_skew.cc.o.d"
  "CMakeFiles/niid_partition.dir/partition/label_skew.cc.o"
  "CMakeFiles/niid_partition.dir/partition/label_skew.cc.o.d"
  "CMakeFiles/niid_partition.dir/partition/partition.cc.o"
  "CMakeFiles/niid_partition.dir/partition/partition.cc.o.d"
  "CMakeFiles/niid_partition.dir/partition/quantity_skew.cc.o"
  "CMakeFiles/niid_partition.dir/partition/quantity_skew.cc.o.d"
  "CMakeFiles/niid_partition.dir/partition/report.cc.o"
  "CMakeFiles/niid_partition.dir/partition/report.cc.o.d"
  "libniid_partition.a"
  "libniid_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/niid_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
