file(REMOVE_RECURSE
  "libniid_partition.a"
)
