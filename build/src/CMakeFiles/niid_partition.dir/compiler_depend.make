# Empty compiler generated dependencies file for niid_partition.
# This may be replaced when dependencies are built.
