file(REMOVE_RECURSE
  "CMakeFiles/niid_tensor.dir/tensor/ops.cc.o"
  "CMakeFiles/niid_tensor.dir/tensor/ops.cc.o.d"
  "CMakeFiles/niid_tensor.dir/tensor/tensor.cc.o"
  "CMakeFiles/niid_tensor.dir/tensor/tensor.cc.o.d"
  "libniid_tensor.a"
  "libniid_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/niid_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
