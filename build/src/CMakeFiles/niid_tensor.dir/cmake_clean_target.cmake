file(REMOVE_RECURSE
  "libniid_tensor.a"
)
