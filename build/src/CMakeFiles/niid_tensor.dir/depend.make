# Empty dependencies file for niid_tensor.
# This may be replaced when dependencies are built.
