file(REMOVE_RECURSE
  "CMakeFiles/niid_util.dir/util/csv.cc.o"
  "CMakeFiles/niid_util.dir/util/csv.cc.o.d"
  "CMakeFiles/niid_util.dir/util/flags.cc.o"
  "CMakeFiles/niid_util.dir/util/flags.cc.o.d"
  "CMakeFiles/niid_util.dir/util/logging.cc.o"
  "CMakeFiles/niid_util.dir/util/logging.cc.o.d"
  "CMakeFiles/niid_util.dir/util/rng.cc.o"
  "CMakeFiles/niid_util.dir/util/rng.cc.o.d"
  "CMakeFiles/niid_util.dir/util/samplers.cc.o"
  "CMakeFiles/niid_util.dir/util/samplers.cc.o.d"
  "CMakeFiles/niid_util.dir/util/stats.cc.o"
  "CMakeFiles/niid_util.dir/util/stats.cc.o.d"
  "CMakeFiles/niid_util.dir/util/table.cc.o"
  "CMakeFiles/niid_util.dir/util/table.cc.o.d"
  "CMakeFiles/niid_util.dir/util/thread_pool.cc.o"
  "CMakeFiles/niid_util.dir/util/thread_pool.cc.o.d"
  "libniid_util.a"
  "libniid_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/niid_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
