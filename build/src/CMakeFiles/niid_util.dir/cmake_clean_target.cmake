file(REMOVE_RECURSE
  "libniid_util.a"
)
