# Empty compiler generated dependencies file for niid_util.
# This may be replaced when dependencies are built.
