file(REMOVE_RECURSE
  "CMakeFiles/fedopt_test.dir/fedopt_test.cc.o"
  "CMakeFiles/fedopt_test.dir/fedopt_test.cc.o.d"
  "fedopt_test"
  "fedopt_test.pdb"
  "fedopt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedopt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
