# Empty compiler generated dependencies file for fedopt_test.
# This may be replaced when dependencies are built.
