file(REMOVE_RECURSE
  "CMakeFiles/writers_leaderboard_test.dir/writers_leaderboard_test.cc.o"
  "CMakeFiles/writers_leaderboard_test.dir/writers_leaderboard_test.cc.o.d"
  "writers_leaderboard_test"
  "writers_leaderboard_test.pdb"
  "writers_leaderboard_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/writers_leaderboard_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
