# Empty dependencies file for writers_leaderboard_test.
# This may be replaced when dependencies are built.
