// Fully configurable experiment runner — the library's general CLI.
//
// Exposes every knob of ExperimentConfig, profiles the resulting federation
// before training (the Section 6.1 skew profiler), runs the chosen
// algorithm, prints the curve, and optionally saves the trained global model.
//
// Examples:
//   custom_experiment --dataset=cifar10 --algorithm=scaffold
//       --partition=label-dir --beta=0.1 --rounds=20 --epochs=2
//   custom_experiment --dataset=adult --algorithm=fedprox --mu=0.1
//       --partition=quantity-dir --dp_clip=5 --dp_noise=0.01
//   custom_experiment --dataset=mnist --model=resnet --save=global.bin
//   custom_experiment --dataset=adult --straggle_rate=0.5 --drop_rate=0.2
//       --min_aggregate=3 --checkpoint=run.ckpt --checkpoint_every=5
//   custom_experiment --dataset=adult --checkpoint=run.ckpt
//       --checkpoint_every=5 --resume
//   custom_experiment --dataset=adult --compress=int8 --error_feedback
//   custom_experiment --dataset=mnist --compress=topk --compress_k=0.05

#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/curves.h"
#include "core/profiler.h"
#include "core/runner.h"
#include "nn/serialization.h"
#include "util/flags.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  const niid::FlagParser flags(argc, argv);
  if (flags.Has("help")) {
    std::cout <<
        "flags: --dataset=NAME --algorithm=NAME --partition=NAME\n"
        "       --parties=N --rounds=N --epochs=N --batch_size=N\n"
        "       --beta=F --labels_per_party=K --noise_sigma=F\n"
        "       --lr=F --lr_scale=F --mu=F --scaffold_variant=1|2\n"
        "       --server_lr=F --server_momentum=F --fraction=F\n"
        "       --min_epochs=N (heterogeneous local epochs)\n"
        "       --dp_clip=F --dp_noise=F (client-level DP)\n"
        "       --no_bn_averaging (FedBN-style) --model=NAME\n"
        "       --trials=N --seed=N --threads=N --size_factor=F\n"
        "       --drop_rate=F --crash_rate=F --straggle_rate=F\n"
        "       --straggle_floor=F --corrupt_rate=F --fault_seed=N\n"
        "       --min_aggregate=N --max_retries=N --max_update_norm=F\n"
        "       --checkpoint=PATH --checkpoint_every=N --resume\n"
        "       --halt_after=N (exit after round N; crash-resume testing)\n"
        "       --compress=none|int8|int4|topk|randk (uplink codec)\n"
        "       --compress_k=F (topk/randk kept fraction, default 0.05)\n"
        "       --error_feedback (client-held compression residuals)\n"
        "       --compress_seed=N (rand-k index stream; 0 = derive)\n"
        "       --attack=none|labelflip|signflip|scale|noise\n"
        "       --adversary_fraction=F --attack_scale=F\n"
        "       --drift_period=N (rounds per label-drift generation)\n"
        "       --drift_beta=F --drift_intensity=F (drift prior / rate)\n"
        "       --avail_amplitude=F --avail_period=N (diurnal availability)\n"
        "       --scenario_seed=N (scenario stream; 0 = derive)\n"
        "       --aggregator=mean|median|trimmed|clipped (robust server)\n"
        "       --trim_fraction=F (per-side, trimmed) --clip_norm=F (clipped)\n"
        "       --save=PATH (save final global model) --out_csv=PATH\n"
        "       --round_csv=PATH (per-round stats incl. uplink bytes)\n";
    return 0;
  }

  // Query every flag before Validate() so the parser knows the full surface
  // and can reject anything unknown or malformed.
  niid::ExperimentConfig config;
  config.dataset = flags.GetString("dataset", "mnist");
  config.algorithm = flags.GetString("algorithm", "fedavg");
  config.model = flags.GetString("model", "");
  config.catalog.size_factor = flags.GetDouble("size_factor", 0.01);
  config.catalog.min_train_size = 600;
  config.rounds = flags.GetInt("rounds", 10);
  config.trials = flags.GetInt("trials", 1);
  config.seed = flags.GetInt64("seed", 1);
  config.num_threads = flags.GetInt("threads", 1);
  config.sample_fraction = flags.GetDouble("fraction", 1.0);
  config.local.local_epochs = flags.GetInt("epochs", 2);
  config.local.batch_size = flags.GetInt("batch_size", 16);
  config.local.learning_rate =
      static_cast<float>(flags.GetDouble("lr", 0.0));
  config.lr_scale = static_cast<float>(flags.GetDouble("lr_scale", 4.0));
  config.algo.fedprox_mu = static_cast<float>(flags.GetDouble("mu", 0.01));
  config.algo.scaffold_variant = flags.GetInt("scaffold_variant", 2);
  config.algo.server_lr =
      static_cast<float>(flags.GetDouble("server_lr", 1.0));
  config.algo.server_momentum =
      static_cast<float>(flags.GetDouble("server_momentum", 0.0));
  config.algo.average_bn_buffers = !flags.GetBool("no_bn_averaging", false);
  config.dp.clip_norm = flags.GetDouble("dp_clip", 0.0);
  config.dp.noise_multiplier = flags.GetDouble("dp_noise", 0.0);
  config.min_local_epochs = flags.GetInt("min_epochs", 0);

  config.faults.drop_rate = flags.GetDouble("drop_rate", 0.0);
  config.faults.crash_rate = flags.GetDouble("crash_rate", 0.0);
  config.faults.straggle_rate = flags.GetDouble("straggle_rate", 0.0);
  config.faults.straggle_floor = flags.GetDouble("straggle_floor", 0.25);
  config.faults.corrupt_rate = flags.GetDouble("corrupt_rate", 0.0);
  config.faults.seed =
      static_cast<uint64_t>(flags.GetInt64("fault_seed", 0));
  config.min_aggregate_clients = flags.GetInt("min_aggregate", 1);
  config.max_resample_retries = flags.GetInt("max_retries", 2);
  // Non-negative by contract: a negative cap would silently disable the
  // norm gate, which is exactly the footgun Validate() should catch.
  config.max_update_norm = flags.GetNonNegativeDouble("max_update_norm", 0.0);
  config.checkpoint_path = flags.GetString("checkpoint", "");
  config.checkpoint_every = flags.GetInt("checkpoint_every", 0);
  config.resume = flags.GetBool("resume", false);
  const int halt_after = flags.GetInt("halt_after", 0);

  const std::string compress_name = flags.GetString("compress", "none");
  config.compression.sparsity = flags.GetDouble("compress_k", 0.05);
  config.compression.error_feedback = flags.GetBool("error_feedback", false);
  config.compression.seed =
      static_cast<uint64_t>(flags.GetInt64("compress_seed", 0));
  const std::string round_csv = flags.GetString("round_csv", "");

  const std::string attack_name = flags.GetString("attack", "none");
  config.scenario.adversary_fraction =
      flags.GetNonNegativeDouble("adversary_fraction", 0.0);
  config.scenario.attack_scale =
      flags.GetNonNegativeDouble("attack_scale", 1.0);
  config.scenario.drift_period = flags.GetInt("drift_period", 0);
  config.scenario.drift_beta =
      flags.GetNonNegativeDouble("drift_beta", 0.5);
  config.scenario.drift_intensity =
      flags.GetNonNegativeDouble("drift_intensity", 0.5);
  config.scenario.availability_amplitude =
      flags.GetNonNegativeDouble("avail_amplitude", 0.0);
  config.scenario.availability_period = flags.GetInt("avail_period", 24);
  config.scenario.seed =
      static_cast<uint64_t>(flags.GetInt64("scenario_seed", 0));
  const std::string aggregator_name = flags.GetString("aggregator", "mean");
  config.robust.trim_fraction =
      flags.GetNonNegativeDouble("trim_fraction", 0.1);
  config.robust.clip_norm = flags.GetNonNegativeDouble("clip_norm", 0.0);

  const std::string partition_name = flags.GetString("partition", "label-dir");
  config.partition.num_parties = flags.GetInt("parties", 10);
  config.partition.beta = flags.GetDouble("beta", 0.5);
  config.partition.labels_per_party = flags.GetInt("labels_per_party", 2);
  config.partition.noise_sigma = flags.GetDouble("noise_sigma", 0.1);
  const std::string out_csv = flags.GetString("out_csv", "");
  const std::string save_path = flags.GetString("save", "");

  if (const niid::Status valid = flags.Validate(); !valid.ok()) {
    std::cerr << valid.ToString() << "\n";
    return 1;
  }

  auto strategy_or = niid::ParseStrategy(partition_name);
  if (!strategy_or.ok()) {
    std::cerr << strategy_or.status().ToString() << "\n";
    return 1;
  }
  config.partition.strategy = *strategy_or;

  auto codec_or = niid::ParseCodec(compress_name);
  if (!codec_or.ok()) {
    std::cerr << codec_or.status().ToString() << "\n";
    return 1;
  }
  config.compression.codec = *codec_or;
  if (config.compression.sparsity <= 0.0 ||
      config.compression.sparsity > 1.0) {
    std::cerr << "--compress_k must be in (0, 1]\n";
    return 1;
  }

  auto attack_or = niid::ParseAttack(attack_name);
  if (!attack_or.ok()) {
    std::cerr << attack_or.status().ToString() << "\n";
    return 1;
  }
  config.scenario.attack = *attack_or;

  auto aggregator_or = niid::ParseAggregator(aggregator_name);
  if (!aggregator_or.ok()) {
    std::cerr << aggregator_or.status().ToString() << "\n";
    return 1;
  }
  config.robust.aggregator = *aggregator_or;

  std::cout << "experiment: " << config.dataset << " / "
            << config.partition.Label() << " / " << config.algorithm
            << " / " << config.partition.num_parties << " parties / "
            << config.rounds << " rounds\n";
  if (config.scenario.enabled() || config.robust.enabled()) {
    std::cout << "scenario: attack=" << niid::AttackName(config.scenario.attack)
              << " adversaries=" << config.scenario.adversary_fraction
              << " drift_period=" << config.scenario.drift_period
              << " avail_amplitude=" << config.scenario.availability_amplitude
              << " aggregator=" << niid::AggregatorName(config.robust.aggregator)
              << "\n";
    if (config.scenario.adversarial() && config.max_update_norm == 0.0 &&
        config.robust.aggregator == niid::AggregatorKind::kMean) {
      std::cout << "WARNING: adversarial scenario with the update-norm gate "
                   "disabled (--max_update_norm=0) and the plain mean "
                   "aggregator — poisoned updates flow straight into the "
                   "global model\n";
    }
  }
  std::cout << "\n";

  // Pre-training skew profile (server-visible metadata only).
  {
    niid::Dataset test_unused;
    auto server = niid::BuildServerForTrial(config, 0, &test_unused);
    std::vector<niid::ClientProfile> profiles;
    for (int i = 0; i < server->num_clients(); ++i) {
      profiles.push_back(
          niid::ProfileClient(i, server->client(i).data()));
    }
    std::cout << "pre-training federation profile:\n";
    niid::PrintDiagnosis(niid::DiagnoseSkew(profiles), std::cout);
    std::cout << "\n";
  }

  // Robustness accounting across all rounds and trials, and the optional
  // mid-run halt used by the crash-resume smoke test: the runner saves the
  // round's checkpoint before invoking the observer, so exiting here is a
  // faithful stand-in for the process dying right after a checkpoint.
  long total_dropped = 0, total_crashed = 0, total_straggled = 0;
  long total_rejected = 0, total_skipped_rounds = 0;
  long total_unavailable = 0, total_flipped = 0, total_poisoned = 0;
  long total_clipped = 0, total_trimmed = 0;
  long long total_bytes = 0, total_bytes_uncompressed = 0;
  std::vector<niid::RoundStats> round_log;
  const niid::RoundObserver observer =
      [&](int trial, const niid::RoundStats& stats,
          const niid::EvalResult& /*eval*/) {
        total_dropped += stats.dropped;
        total_crashed += stats.crashed;
        total_straggled += stats.straggled;
        total_rejected += stats.rejected;
        total_unavailable += stats.unavailable;
        total_flipped += stats.flipped;
        total_poisoned += stats.poisoned;
        total_clipped += stats.clipped;
        total_trimmed += stats.trimmed;
        total_bytes += stats.bytes_uplink;
        total_bytes_uncompressed += stats.bytes_uplink_uncompressed;
        if (!stats.quorum_met) ++total_skipped_rounds;
        if (trial == 0) round_log.push_back(stats);
        if (halt_after > 0 && stats.round + 1 >= halt_after) {
          std::cout << "halting after round " << stats.round << "\n";
          std::exit(0);
        }
      };

  const niid::ExperimentResult result = niid::RunExperiment(config, observer);
  std::cout << "final top-1 accuracy: "
            << niid::FormatAccuracy(result.FinalAccuracies()) << "\n\n";
  if (config.faults.enabled() || total_skipped_rounds > 0) {
    std::cout << "fault summary: dropped=" << total_dropped
              << " crashed=" << total_crashed
              << " straggled=" << total_straggled
              << " rejected=" << total_rejected
              << " below-quorum rounds=" << total_skipped_rounds << "\n\n";
  }
  if (config.scenario.enabled() || config.robust.enabled()) {
    std::cout << "scenario summary: unavailable=" << total_unavailable
              << " flipped=" << total_flipped
              << " poisoned=" << total_poisoned
              << " clipped=" << total_clipped
              << " trimmed=" << total_trimmed << "\n\n";
  }
  if (config.compression.enabled() && total_bytes > 0) {
    std::cout << "uplink: " << total_bytes << " bytes on wire ("
              << total_bytes_uncompressed << " uncompressed, "
              << static_cast<double>(total_bytes_uncompressed) /
                     static_cast<double>(total_bytes)
              << "x reduction)\n\n";
  }
  std::vector<niid::Curve> curves = {{config.algorithm, result.MeanCurve()}};
  niid::PrintCurves(curves, std::cout, std::max(1, config.rounds / 15));
  if (!out_csv.empty()) {
    const niid::Status written = niid::WriteCurvesCsv(curves, out_csv);
    if (!written.ok()) {
      std::cerr << "failed to write " << out_csv << ": " << written.ToString()
                << "\n";
      return 1;
    }
  }
  if (!round_csv.empty()) {
    const niid::Status written = niid::WriteRoundStatsCsv(round_log, round_csv);
    if (!written.ok()) {
      std::cerr << "failed to write " << round_csv << ": "
                << written.ToString() << "\n";
      return 1;
    }
  }

  if (!save_path.empty()) {
    // Re-train trial 0 deterministically to materialize the global model,
    // then save it.
    niid::Dataset test;
    auto server = niid::BuildServerForTrial(config, 0, &test);
    niid::LocalTrainOptions local = config.local;
    local.learning_rate = niid::ResolveLearningRate(config);
    for (int round = 0; round < config.rounds; ++round) {
      server->RunRound(local);
    }
    // Load the global state into a fresh model instance and serialize.
    niid::Rng rng(config.seed);
    auto data = niid::MakeCatalogDataset(config.dataset, config.catalog);
    niid::ModelSpec spec =
        niid::DefaultModelSpec(data->train, config.model);
    auto model = niid::CreateModel(spec, rng);
    niid::LoadState(*model, server->global_state());
    const niid::Status status = niid::SaveModel(*model, save_path);
    if (!status.ok()) {
      std::cerr << "save failed: " << status.ToString() << "\n";
      return 1;
    }
    std::cout << "\nsaved global model to " << save_path << "\n";
  }
  return 0;
}
