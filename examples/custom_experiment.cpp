// Fully configurable experiment runner — the library's general CLI.
//
// Exposes every knob of ExperimentConfig, profiles the resulting federation
// before training (the Section 6.1 skew profiler), runs the chosen
// algorithm, prints the curve, and optionally saves the trained global model.
//
// Examples:
//   custom_experiment --dataset=cifar10 --algorithm=scaffold
//       --partition=label-dir --beta=0.1 --rounds=20 --epochs=2
//   custom_experiment --dataset=adult --algorithm=fedprox --mu=0.1
//       --partition=quantity-dir --dp_clip=5 --dp_noise=0.01
//   custom_experiment --dataset=mnist --model=resnet --save=global.bin

#include <iostream>

#include "core/curves.h"
#include "core/profiler.h"
#include "core/runner.h"
#include "nn/serialization.h"
#include "util/flags.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  const niid::FlagParser flags(argc, argv);
  if (flags.Has("help")) {
    std::cout <<
        "flags: --dataset=NAME --algorithm=NAME --partition=NAME\n"
        "       --parties=N --rounds=N --epochs=N --batch_size=N\n"
        "       --beta=F --labels_per_party=K --noise_sigma=F\n"
        "       --lr=F --lr_scale=F --mu=F --scaffold_variant=1|2\n"
        "       --server_lr=F --server_momentum=F --fraction=F\n"
        "       --min_epochs=N (heterogeneous local epochs)\n"
        "       --dp_clip=F --dp_noise=F (client-level DP)\n"
        "       --no_bn_averaging (FedBN-style) --model=NAME\n"
        "       --trials=N --seed=N --threads=N --size_factor=F\n"
        "       --save=PATH (save final global model) --out_csv=PATH\n";
    return 0;
  }

  niid::ExperimentConfig config;
  config.dataset = flags.GetString("dataset", "mnist");
  config.algorithm = flags.GetString("algorithm", "fedavg");
  config.model = flags.GetString("model", "");
  config.catalog.size_factor = flags.GetDouble("size_factor", 0.01);
  config.catalog.min_train_size = 600;
  config.rounds = flags.GetInt("rounds", 10);
  config.trials = flags.GetInt("trials", 1);
  config.seed = flags.GetInt64("seed", 1);
  config.num_threads = flags.GetInt("threads", 1);
  config.sample_fraction = flags.GetDouble("fraction", 1.0);
  config.local.local_epochs = flags.GetInt("epochs", 2);
  config.local.batch_size = flags.GetInt("batch_size", 16);
  config.local.learning_rate =
      static_cast<float>(flags.GetDouble("lr", 0.0));
  config.lr_scale = static_cast<float>(flags.GetDouble("lr_scale", 4.0));
  config.algo.fedprox_mu = static_cast<float>(flags.GetDouble("mu", 0.01));
  config.algo.scaffold_variant = flags.GetInt("scaffold_variant", 2);
  config.algo.server_lr =
      static_cast<float>(flags.GetDouble("server_lr", 1.0));
  config.algo.server_momentum =
      static_cast<float>(flags.GetDouble("server_momentum", 0.0));
  config.algo.average_bn_buffers = !flags.GetBool("no_bn_averaging", false);
  config.dp.clip_norm = flags.GetDouble("dp_clip", 0.0);
  config.dp.noise_multiplier = flags.GetDouble("dp_noise", 0.0);
  config.min_local_epochs = flags.GetInt("min_epochs", 0);

  auto strategy_or =
      niid::ParseStrategy(flags.GetString("partition", "label-dir"));
  if (!strategy_or.ok()) {
    std::cerr << strategy_or.status().ToString() << "\n";
    return 1;
  }
  config.partition.strategy = *strategy_or;
  config.partition.num_parties = flags.GetInt("parties", 10);
  config.partition.beta = flags.GetDouble("beta", 0.5);
  config.partition.labels_per_party = flags.GetInt("labels_per_party", 2);
  config.partition.noise_sigma = flags.GetDouble("noise_sigma", 0.1);

  std::cout << "experiment: " << config.dataset << " / "
            << config.partition.Label() << " / " << config.algorithm
            << " / " << config.partition.num_parties << " parties / "
            << config.rounds << " rounds\n\n";

  // Pre-training skew profile (server-visible metadata only).
  {
    niid::Dataset test_unused;
    auto server = niid::BuildServerForTrial(config, 0, &test_unused);
    std::vector<niid::ClientProfile> profiles;
    for (int i = 0; i < server->num_clients(); ++i) {
      profiles.push_back(
          niid::ProfileClient(i, server->client(i).data()));
    }
    std::cout << "pre-training federation profile:\n";
    niid::PrintDiagnosis(niid::DiagnoseSkew(profiles), std::cout);
    std::cout << "\n";
  }

  const niid::ExperimentResult result = niid::RunExperiment(config);
  std::cout << "final top-1 accuracy: "
            << niid::FormatAccuracy(result.FinalAccuracies()) << "\n\n";
  std::vector<niid::Curve> curves = {{config.algorithm, result.MeanCurve()}};
  niid::PrintCurves(curves, std::cout, std::max(1, config.rounds / 15));
  if (flags.Has("out_csv")) {
    niid::WriteCurvesCsv(curves, flags.GetString("out_csv", ""));
  }

  if (flags.Has("save")) {
    // Re-train trial 0 deterministically to materialize the global model,
    // then save it.
    niid::Dataset test;
    auto server = niid::BuildServerForTrial(config, 0, &test);
    niid::LocalTrainOptions local = config.local;
    local.learning_rate = niid::ResolveLearningRate(config);
    for (int round = 0; round < config.rounds; ++round) {
      server->RunRound(local);
    }
    // Load the global state into a fresh model instance and serialize.
    niid::Rng rng(config.seed);
    auto data = niid::MakeCatalogDataset(config.dataset, config.catalog);
    niid::ModelSpec spec =
        niid::DefaultModelSpec(data->train, config.model);
    auto model = niid::CreateModel(spec, rng);
    niid::LoadState(*model, server->global_state());
    const niid::Status status =
        niid::SaveModel(*model, flags.GetString("save", ""));
    if (!status.ok()) {
      std::cerr << "save failed: " << status.ToString() << "\n";
      return 1;
    }
    std::cout << "\nsaved global model to " << flags.GetString("save", "")
              << "\n";
  }
  return 0;
}
