// Domain scenario: handwriting recognition across devices — feature
// distribution skew.
//
// The paper's second motivating example: people write the same digits with
// different stroke widths and slants, so P(x) differs per writer while
// P(y|x) is shared. This example exercises both feature-skew partitions:
//   1. real-world: the FEMNIST writer model, partitioned by writer;
//   2. noise-based: an increasing Gaussian perturbation per party.
// It verifies the paper's observation that feature skew barely hurts the
// simple CNN, and that SCAFFOLD is the recommended algorithm.
//
// Usage:
//   handwriting_feature_skew [--rounds=8] [--epochs=2] [--parties=10]
//                            [--size_factor=0.0015]

#include <iostream>

#include "core/decision_tree.h"
#include "core/runner.h"
#include "util/flags.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const niid::FlagParser flags(argc, argv);

  niid::ExperimentConfig base;
  base.catalog.size_factor = flags.GetDouble("size_factor", 0.0015);
  base.catalog.min_train_size = 500;
  base.catalog.min_test_size = 200;
  base.rounds = flags.GetInt("rounds", 8);
  base.local.local_epochs = flags.GetInt("epochs", 2);
  base.local.batch_size = flags.GetInt("batch_size", 16);
  base.lr_scale = static_cast<float>(flags.GetDouble("lr_scale", 4.0));
  base.partition.num_parties = flags.GetInt("parties", 10);
  base.seed = flags.GetInt64("seed", 5);

  std::cout << "Handwritten-digit recognition across devices "
            << "(feature distribution skew)\n\n";

  niid::Table table({"scenario", "FedAvg", "FedProx", "SCAFFOLD", "FedNova"});

  // Scenario 1: real writers (FEMNIST), partitioned by writer.
  {
    niid::ExperimentConfig config = base;
    config.dataset = "femnist";
    config.partition.strategy = niid::PartitionStrategy::kRealWorld;
    std::vector<std::string> row = {"by writer (femnist)"};
    for (const std::string& algorithm : niid::AlgorithmNames()) {
      config.algorithm = algorithm;
      row.push_back(niid::FormatPercent(
          niid::Mean(niid::RunExperiment(config).FinalAccuracies())));
      std::cerr << "femnist/" << algorithm << " done\n";
    }
    table.AddRow(std::move(row));
  }

  // Scenario 2: per-device sensor noise (Gau(sigma * i/N)) on MNIST.
  for (const double sigma : {0.1, 0.5}) {
    niid::ExperimentConfig config = base;
    config.dataset = "mnist";
    config.partition.strategy = niid::PartitionStrategy::kNoise;
    config.partition.noise_sigma = sigma;
    std::vector<std::string> row = {"noise x~Gau(" + std::to_string(sigma) +
                                    ")"};
    for (const std::string& algorithm : niid::AlgorithmNames()) {
      config.algorithm = algorithm;
      row.push_back(niid::FormatPercent(
          niid::Mean(niid::RunExperiment(config).FinalAccuracies())));
      std::cerr << "noise(" << sigma << ")/" << algorithm << " done\n";
    }
    table.AddRow(std::move(row));
  }

  // Baseline: the same data without any skew.
  {
    niid::ExperimentConfig config = base;
    config.dataset = "mnist";
    config.partition.strategy = niid::PartitionStrategy::kHomogeneous;
    std::vector<std::string> row = {"IID baseline"};
    for (const std::string& algorithm : niid::AlgorithmNames()) {
      config.algorithm = algorithm;
      row.push_back(niid::FormatPercent(
          niid::Mean(niid::RunExperiment(config).FinalAccuracies())));
    }
    table.AddRow(std::move(row));
  }

  table.Print(std::cout);
  const auto rec =
      niid::RecommendAlgorithm(niid::PartitionStrategy::kRealWorld);
  std::cout << "\nDecision-tree recommendation for feature-skewed silos: "
            << rec.algorithm << "\n  " << rec.rationale << "\n";
  return 0;
}
