// Domain scenario: hospital data silos with label distribution skew.
//
// The paper's motivating example: hospitals specialize in different
// diseases, so the label distributions of their patient records differ —
// some hospitals see almost exclusively a few conditions (#C=k), others a
// Dirichlet-skewed mix. This example builds that scenario on a tabular
// stand-in, prints each "hospital"'s case mix, runs all four FL algorithms,
// and shows how accuracy degrades as the specialization sharpens.
//
// Usage:
//   hospital_label_skew [--hospitals=10] [--rounds=10] [--epochs=3]
//                       [--size_factor=0.003]

#include <iostream>

#include "core/decision_tree.h"
#include "core/runner.h"
#include "partition/report.h"
#include "util/flags.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const niid::FlagParser flags(argc, argv);

  niid::ExperimentConfig config;
  config.dataset = "covtype";  // tabular patient-record stand-in
  config.catalog.size_factor = flags.GetDouble("size_factor", 0.003);
  config.catalog.min_train_size = 1000;
  config.catalog.min_test_size = 400;
  config.rounds = flags.GetInt("rounds", 10);
  config.local.local_epochs = flags.GetInt("epochs", 3);
  config.local.learning_rate = static_cast<float>(flags.GetDouble("lr", 0.05));
  config.local.batch_size = flags.GetInt("batch_size", 32);
  config.partition.num_parties = flags.GetInt("hospitals", 10);
  config.seed = flags.GetInt64("seed", 11);

  std::cout << "Federated learning across " << config.partition.num_parties
            << " hospitals (tabular records, 2 diagnostic classes)\n\n";

  // Show one hospital case mix under sharp specialization.
  {
    niid::ExperimentConfig probe = config;
    probe.partition.strategy = niid::PartitionStrategy::kLabelDirichlet;
    probe.partition.beta = 0.2;
    auto data = niid::MakeCatalogDataset(probe.dataset, probe.catalog);
    if (!data.ok()) {
      std::cerr << data.status().ToString() << "\n";
      return 1;
    }
    niid::PartitionConfig pc = probe.partition;
    pc.seed = probe.seed;
    const niid::Partition partition = niid::MakePartition(data->train, pc);
    std::cout << "Case mix per hospital under p~Dir(0.2) specialization:\n";
    niid::PrintPartitionMatrix(
        niid::BuildPartitionReport(data->train, partition), std::cout);
    std::cout << "\n";
  }

  // Sweep specialization level and compare algorithms.
  niid::Table table({"specialization", "FedAvg", "FedProx", "SCAFFOLD",
                     "FedNova"});
  struct Level {
    const char* label;
    niid::PartitionStrategy strategy;
    double beta;
    int k;
  };
  for (const Level& level :
       {Level{"none (IID)", niid::PartitionStrategy::kHomogeneous, 0.5, 2},
        Level{"mild (Dir 5.0)", niid::PartitionStrategy::kLabelDirichlet,
              5.0, 2},
        Level{"strong (Dir 0.2)", niid::PartitionStrategy::kLabelDirichlet,
              0.2, 2},
        Level{"extreme (#C=1)", niid::PartitionStrategy::kLabelQuantity, 0.5,
              1}}) {
    config.partition.strategy = level.strategy;
    config.partition.beta = level.beta;
    config.partition.labels_per_party = level.k;
    std::vector<std::string> row = {level.label};
    for (const std::string& algorithm : niid::AlgorithmNames()) {
      config.algorithm = algorithm;
      const niid::ExperimentResult result = niid::RunExperiment(config);
      row.push_back(niid::FormatPercent(
          niid::Mean(result.FinalAccuracies())));
    }
    table.AddRow(std::move(row));
    std::cerr << "evaluated specialization level: " << level.label << "\n";
  }
  std::cout << "Global-model accuracy by specialization level:\n";
  table.Print(std::cout);

  const auto rec = niid::RecommendAlgorithm(
      niid::PartitionStrategy::kLabelDirichlet);
  std::cout << "\nDecision-tree recommendation for label-skewed silos: "
            << rec.algorithm << "\n  " << rec.rationale << "\n";
  return 0;
}
