// Quickstart: run one federated experiment end to end.
//
// Trains the paper's simple CNN on a synthetic MNIST stand-in partitioned
// across 10 parties with distribution-based label imbalance (p ~ Dir(0.5)),
// compares FedAvg against FedProx, and prints the accuracy curves.
//
// Usage:
//   quickstart [--dataset=mnist] [--partition=label-dir] [--beta=0.5]
//              [--rounds=15] [--parties=10] [--threads=4] [--trials=1]

#include <iostream>

#include "core/curves.h"
#include "core/decision_tree.h"
#include "core/runner.h"
#include "util/flags.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  const niid::FlagParser flags(argc, argv);

  niid::ExperimentConfig config;
  config.dataset = flags.GetString("dataset", "mnist");
  config.catalog.size_factor = flags.GetDouble("size_factor", 0.01);
  config.catalog.min_train_size = 600;
  config.rounds = flags.GetInt("rounds", 10);
  config.trials = flags.GetInt("trials", 1);
  config.num_threads = flags.GetInt("threads", 4);
  config.local.local_epochs = flags.GetInt("epochs", 2);
  config.local.batch_size = flags.GetInt("batch_size", 16);
  config.lr_scale = static_cast<float>(flags.GetDouble("lr_scale", 4.0));

  auto strategy_or =
      niid::ParseStrategy(flags.GetString("partition", "label-dir"));
  if (!strategy_or.ok()) {
    std::cerr << strategy_or.status().ToString() << "\n";
    return 1;
  }
  config.partition.strategy = *strategy_or;
  config.partition.num_parties = flags.GetInt("parties", 10);
  config.partition.beta = flags.GetDouble("beta", 0.5);
  config.partition.labels_per_party = flags.GetInt("labels_per_party", 2);

  std::cout << "NIID-Bench quickstart: " << config.dataset << ", partition "
            << config.partition.Label() << ", " << config.partition.num_parties
            << " parties, " << config.rounds << " rounds\n\n";

  std::vector<niid::Curve> curves;
  for (const std::string algorithm : {"fedavg", "fedprox"}) {
    config.algorithm = algorithm;
    const niid::ExperimentResult result = niid::RunExperiment(config);
    std::cout << algorithm << ": final top-1 accuracy "
              << niid::FormatAccuracy(result.FinalAccuracies()) << "\n";
    curves.push_back({algorithm, result.MeanCurve()});
  }

  std::cout << "\nAccuracy by round:\n";
  niid::PrintCurves(curves, std::cout, /*stride=*/1);

  std::cout << "\n";
  const niid::AlgorithmRecommendation rec = niid::RecommendAlgorithm(
      config.partition.strategy, config.partition.labels_per_party);
  std::cout << "Figure-6 recommendation for this setting: " << rec.algorithm
            << "\n  (" << rec.rationale << ")\n";
  return 0;
}
