// Domain scenario: many small data silos with partial participation.
//
// A multinational corporation has 100 branch databases; only a fraction is
// reachable in any training round. This example reproduces the conditions
// of the paper's Section 5.6 at laptop scale: 100 parties, sample fraction
// 0.1, label-skewed data — and shows (a) the instability that partial
// participation adds and (b) SCAFFOLD's failure mode when control variates
// go stale.
//
// Usage:
//   silo_scalability [--silos=100] [--fraction=0.1] [--rounds=15]
//                    [--size_factor=0.001]

#include <iostream>

#include "core/curves.h"
#include "core/runner.h"
#include "util/flags.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  const niid::FlagParser flags(argc, argv);

  niid::ExperimentConfig config;
  config.dataset = "covtype";
  config.catalog.size_factor = flags.GetDouble("size_factor", 0.001);
  config.catalog.min_train_size = 2000;
  config.catalog.min_test_size = 500;
  config.rounds = flags.GetInt("rounds", 20);
  config.local.local_epochs = flags.GetInt("epochs", 3);
  config.local.learning_rate = static_cast<float>(flags.GetDouble("lr", 0.15));
  config.local.batch_size = flags.GetInt("batch_size", 16);
  config.partition.num_parties = flags.GetInt("silos", 100);
  config.partition.strategy = niid::PartitionStrategy::kLabelDirichlet;
  config.partition.beta = flags.GetDouble("beta", 0.5);
  config.partition.min_samples_per_party = 2;
  config.sample_fraction = flags.GetDouble("fraction", 0.1);
  config.seed = flags.GetInt64("seed", 23);

  std::cout << config.partition.num_parties << " data silos, "
            << "sample fraction " << config.sample_fraction
            << ", label skew " << config.partition.Label() << "\n\n";

  std::vector<niid::Curve> partial_curves;
  for (const std::string& algorithm : niid::AlgorithmNames()) {
    config.algorithm = algorithm;
    const niid::ExperimentResult result = niid::RunExperiment(config);
    partial_curves.push_back({algorithm, result.MeanCurve()});
    std::cerr << algorithm << " (partial participation) done\n";
  }
  std::cout << "Partial participation (" << config.sample_fraction
            << " sampled per round):\n";
  niid::PrintCurves(partial_curves, std::cout,
                    std::max(1, config.rounds / 10));

  // Contrast with full participation over 10 large silos.
  config.partition.num_parties = 10;
  config.sample_fraction = 1.0;
  std::vector<niid::Curve> full_curves;
  for (const std::string& algorithm : niid::AlgorithmNames()) {
    config.algorithm = algorithm;
    const niid::ExperimentResult result = niid::RunExperiment(config);
    full_curves.push_back({algorithm, result.MeanCurve()});
    std::cerr << algorithm << " (full participation) done\n";
  }
  std::cout << "\nFull participation over 10 silos (same data volume):\n";
  niid::PrintCurves(full_curves, std::cout, std::max(1, config.rounds / 10));

  std::cout << "\nInstability (std of round-to-round accuracy change):\n";
  for (size_t i = 0; i < partial_curves.size(); ++i) {
    std::cout << "  " << partial_curves[i].label << ": partial="
              << niid::CurveInstability(partial_curves[i].values)
              << "  full=" << niid::CurveInstability(full_curves[i].values)
              << "\n";
  }
  std::cout << "\nReading the numbers: with 10% participation each round "
               "touches a shifting 10% of the silos, so progress per round "
               "is slower and the sampled-pool distribution changes every "
               "round (Finding 8). Relative to the progress it makes, the "
               "partial run is far noisier — and SCAFFOLD suffers extra "
               "because a silo's control variate is refreshed only when "
               "that silo is sampled, so its drift estimate goes stale. "
               "For the paper's raw-instability view at this scale, see "
               "bench_fig12_scalability (CIFAR-10, where per-round motion "
               "is large enough for the wobble to dominate).\n";
  return 0;
}
