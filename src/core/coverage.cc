#include "core/coverage.h"

#include "util/table.h"

namespace niid {

std::vector<CoverageRow> StrategyCoverage() {
  // Table 1 of the paper, row by row.
  return {
      {"Label distribution skew", "quantity-based",
       {true, true, false, false, true}},
      {"Label distribution skew", "distribution-based",
       {false, false, true, true, true}},
      {"Feature distribution skew", "noise-based",
       {false, false, false, false, true}},
      {"Feature distribution skew", "synthetic",
       {false, true, false, false, true}},
      {"Feature distribution skew", "real-world",
       {false, true, false, false, true}},
      {"Quantity skew", "", {false, false, false, true, true}},
  };
}

void PrintStrategyCoverage(std::ostream& out) {
  Table table({"Partitioning category", "Strategy", "FedAvg", "FedProx",
               "SCAFFOLD", "FedNova", "NIID-Bench"});
  for (const CoverageRow& row : StrategyCoverage()) {
    std::vector<std::string> cells = {row.category, row.strategy};
    for (bool covered : row.covered) cells.push_back(covered ? "yes" : "-");
    table.AddRow(std::move(cells));
  }
  table.Print(out);
}

}  // namespace niid
