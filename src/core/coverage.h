#ifndef NIID_CORE_COVERAGE_H_
#define NIID_CORE_COVERAGE_H_

#include <ostream>
#include <string>
#include <vector>

namespace niid {

/// One row of the paper's Table 1: which partitioning strategies the
/// experiments of each prior study covered versus NIID-Bench.
struct CoverageRow {
  std::string category;
  std::string strategy;
  // Order: FedAvg, FedProx, SCAFFOLD, FedNova, NIID-Bench.
  std::vector<bool> covered;
};

/// The static Table 1 contents.
std::vector<CoverageRow> StrategyCoverage();

/// Prints Table 1.
void PrintStrategyCoverage(std::ostream& out);

}  // namespace niid

#endif  // NIID_CORE_COVERAGE_H_
