#include "core/curves.h"

#include <algorithm>

#include "util/csv.h"
#include "util/stats.h"
#include "util/table.h"

namespace niid {

void PrintCurves(const std::vector<Curve>& curves, std::ostream& out,
                 int stride) {
  if (curves.empty()) return;
  stride = std::max(stride, 1);
  size_t length = 0;
  for (const Curve& curve : curves) {
    length = std::max(length, curve.values.size());
  }
  std::vector<std::string> headers = {"round"};
  for (const Curve& curve : curves) headers.push_back(curve.label);
  Table table(headers);
  for (size_t row = 0; row < length; ++row) {
    if (row % stride != 0 && row + 1 != length) continue;
    std::vector<std::string> cells = {std::to_string(row + 1)};
    for (const Curve& curve : curves) {
      cells.push_back(row < curve.values.size()
                          ? FormatPercent(curve.values[row])
                          : "");
    }
    table.AddRow(std::move(cells));
  }
  table.Print(out);
}

Status WriteCurvesCsv(const std::vector<Curve>& curves,
                      const std::string& path) {
  CsvWriter writer(path);
  if (!writer.ok()) return Status::NotFound("cannot open for write: " + path);
  std::vector<std::string> header = {"round"};
  size_t length = 0;
  for (const Curve& curve : curves) {
    header.push_back(curve.label);
    length = std::max(length, curve.values.size());
  }
  writer.WriteHeader(header);
  for (size_t row = 0; row < length; ++row) {
    std::vector<std::string> cells = {std::to_string(row + 1)};
    for (const Curve& curve : curves) {
      cells.push_back(row < curve.values.size()
                          ? std::to_string(curve.values[row])
                          : "");
    }
    writer.WriteRow(cells);
  }
  writer.Flush();
  return Status::Ok();
}

double CurveInstability(const std::vector<double>& values, int window) {
  if (values.size() < 2) return 0.0;
  size_t begin = 1;
  if (window > 0 && values.size() > static_cast<size_t>(window)) {
    begin = values.size() - window;
  }
  std::vector<double> deltas;
  for (size_t i = begin; i < values.size(); ++i) {
    deltas.push_back(values[i] - values[i - 1]);
  }
  return StdDev(deltas);
}

}  // namespace niid
