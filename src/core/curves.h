#ifndef NIID_CORE_CURVES_H_
#define NIID_CORE_CURVES_H_

#include <ostream>
#include <string>
#include <vector>

#include "util/status.h"

namespace niid {

/// One labeled training curve (e.g. test accuracy per round).
struct Curve {
  std::string label;
  std::vector<double> values;
};

/// Prints curves side by side, one row per round, as the textual analogue of
/// the paper's curve figures. `stride` subsamples rounds (1 = every round).
void PrintCurves(const std::vector<Curve>& curves, std::ostream& out,
                 int stride = 1);

/// Writes curves to a CSV file (column per curve, row per round) for
/// external plotting. Returns a Status for I/O failures.
Status WriteCurvesCsv(const std::vector<Curve>& curves,
                      const std::string& path);

/// Stability measure used when discussing Findings 4/7/8: the standard
/// deviation of round-to-round accuracy changes over the last `window`
/// rounds (higher = more unstable training).
double CurveInstability(const std::vector<double>& values, int window = 0);

}  // namespace niid

#endif  // NIID_CORE_CURVES_H_
