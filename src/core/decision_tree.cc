#include "core/decision_tree.h"

namespace niid {

AlgorithmRecommendation RecommendAlgorithm(PartitionStrategy strategy,
                                           int labels_per_party) {
  switch (strategy) {
    case PartitionStrategy::kHomogeneous:
      return {"fedavg",
              "IID data: the specialized corrections buy nothing; plain "
              "weighted averaging is already unbiased."};
    case PartitionStrategy::kLabelQuantity:
      if (labels_per_party <= 1) {
        return {"fedprox",
                "Extreme label skew (#C=1): FedProx's proximal term keeps "
                "local models near the global one while the other "
                "algorithms collapse (Table 3)."};
      }
      return {"fedprox",
              "Label distribution skew: FedProx usually achieves the best "
              "accuracy (Finding 2)."};
    case PartitionStrategy::kLabelDirichlet:
      return {"fedprox",
              "Label distribution skew: FedProx usually achieves the best "
              "accuracy (Finding 2)."};
    case PartitionStrategy::kNoise:
    case PartitionStrategy::kSynthetic:
    case PartitionStrategy::kRealWorld:
      return {"scaffold",
              "Feature distribution skew: SCAFFOLD's control variates "
              "correct the drift best (Finding 2)."};
    case PartitionStrategy::kQuantityDirichlet:
      return {"fedprox",
              "Quantity skew: FedProx is the most reliable; SCAFFOLD and "
              "FedNova are unstable under size imbalance (Table 3)."};
  }
  return {"fedavg", "unknown setting"};
}

void PrintDecisionTree(std::ostream& out) {
  out << "Figure 6 — decision tree for choosing an FL algorithm:\n"
      << "  non-IID type?\n"
      << "  ├── label distribution skew\n"
      << "  │   ├── #C=1 (single label per party) ─> FedProx\n"
      << "  │   └── otherwise (#C=k, Dir(beta))   ─> FedProx\n"
      << "  ├── feature distribution skew          ─> SCAFFOLD\n"
      << "  ├── quantity skew                      ─> FedProx\n"
      << "  └── (close to) IID                     ─> FedAvg\n";
}

}  // namespace niid
