#ifndef NIID_CORE_DECISION_TREE_H_
#define NIID_CORE_DECISION_TREE_H_

#include <ostream>
#include <string>

#include "partition/partition.h"

namespace niid {

/// A recommendation from the paper's Figure 6 decision tree.
struct AlgorithmRecommendation {
  std::string algorithm;
  std::string rationale;
};

/// Returns the (almost) best algorithm for a non-IID setting per Figure 6:
/// label skew -> FedProx (with #C=1 strongly FedProx), feature skew ->
/// SCAFFOLD, quantity skew -> FedProx, IID -> FedAvg.
AlgorithmRecommendation RecommendAlgorithm(PartitionStrategy strategy,
                                           int labels_per_party = 2);

/// Prints the full decision tree as text (the Figure 6 reproduction).
void PrintDecisionTree(std::ostream& out);

}  // namespace niid

#endif  // NIID_CORE_DECISION_TREE_H_
