#include "core/experiment.h"

#include <algorithm>

namespace niid {

std::vector<double> ExperimentResult::FinalAccuracies() const {
  std::vector<double> values;
  values.reserve(trials.size());
  for (const TrialResult& trial : trials) {
    values.push_back(trial.final_accuracy);
  }
  return values;
}

std::vector<double> ExperimentResult::MeanCurve() const {
  std::vector<double> mean;
  if (trials.empty()) return mean;
  size_t length = 0;
  for (const TrialResult& trial : trials) {
    length = std::max(length, trial.round_accuracy.size());
  }
  mean.assign(length, 0.0);
  std::vector<int> counts(length, 0);
  for (const TrialResult& trial : trials) {
    for (size_t i = 0; i < trial.round_accuracy.size(); ++i) {
      mean[i] += trial.round_accuracy[i];
      ++counts[i];
    }
  }
  for (size_t i = 0; i < length; ++i) {
    if (counts[i] > 0) mean[i] /= counts[i];
  }
  return mean;
}

}  // namespace niid
