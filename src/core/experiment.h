#ifndef NIID_CORE_EXPERIMENT_H_
#define NIID_CORE_EXPERIMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/catalog.h"
#include "fl/algorithm.h"
#include "fl/client.h"
#include "fl/compress.h"
#include "fl/faults.h"
#include "fl/privacy.h"
#include "fl/robust.h"
#include "fl/scenario.h"
#include "partition/partition.h"

namespace niid {

/// Learning-rate schedule applied across communication rounds (the paper
/// holds lr constant; decaying it across rounds is standard FL practice and
/// exposed here as an extension).
enum class LrSchedule {
  kConstant,
  kStepDecay,  ///< lr halves every lr_decay_every rounds
  kCosine,     ///< cosine anneal from lr to lr * lr_min_factor
};

/// Everything needed to run one benchmark cell (dataset x partition x
/// algorithm), possibly over several trials. This mirrors the experimental
/// protocol of Section 5: N=10 parties, full participation, E=10, B=64,
/// SGD(momentum 0.9), lr 0.01 (0.1 for rcv1), 50 rounds, 3 trials.
struct ExperimentConfig {
  std::string dataset = "mnist";
  CatalogOptions catalog;
  /// Architecture override; "" picks the paper default (CNN / MLP).
  std::string model;
  int resnet_blocks_per_stage = 1;

  PartitionConfig partition;

  std::string algorithm = "fedavg";
  AlgorithmConfig algo;

  LocalTrainOptions local;
  /// Multiplier applied to the resolved learning rate. Scaled-down quick
  /// profiles use > 1 to compensate for running far fewer SGD steps than
  /// the paper's protocol; 1.0 at paper scale.
  float lr_scale = 1.0f;
  /// Round-wise learning-rate schedule (kConstant = the paper's protocol).
  LrSchedule lr_schedule = LrSchedule::kConstant;
  int lr_decay_every = 10;      ///< kStepDecay period in rounds
  float lr_min_factor = 0.01f;  ///< kCosine floor as a fraction of base lr
  /// learning_rate <= 0 means "use the dataset's paper default".
  int rounds = 50;
  double sample_fraction = 1.0;
  /// Evaluate the global model every `eval_every` rounds (1 = every round).
  int eval_every = 1;
  /// Optional client-level differential privacy on uploads.
  DpConfig dp;
  /// > 0 enables heterogeneous local epochs in [min_local_epochs, E].
  int min_local_epochs = 0;
  /// Skew-aware party sampling under partial participation (Section 6.1).
  bool skew_aware_sampling = false;
  /// Sparse party engine: simulate partition.num_parties parties without any
  /// per-party resident object (fl/server.h, sparse constructor). Sampled
  /// parties are materialized on demand from a LazyPartitionIndex, so memory
  /// is O(sampled parties per round) and 1M-party federations fit in the
  /// 100-party envelope. Incompatible with skew_aware_sampling; per-party
  /// rng streams use the DeriveStreamSeed convention instead of the dense
  /// path's split chain, so accuracy trajectories differ from an equivalent
  /// dense run (both are valid draws of the same experiment).
  bool sparse_parties = false;
  /// Sparse engine only: shard count for the reduction tree (0 = one shard
  /// per worker thread). Forwarded to ServerConfig::num_shards in BOTH modes.
  int num_shards = 0;

  /// Deterministic fault injection (drop / crash / straggle / corrupt);
  /// disabled by default.
  FaultConfig faults;
  /// Quorum and update-validation knobs, forwarded to ServerConfig.
  int min_aggregate_clients = 1;
  int max_resample_retries = 2;
  double max_update_norm = 0.0;

  /// Update compression on the uplink (fl/compress.h); identity by default.
  CompressionConfig compression;

  /// Deterministic environment scenario (fl/scenario.h): label drift,
  /// diurnal availability, adversarial parties. num_classes is filled from
  /// the dataset by the runner; disabled by default.
  ScenarioConfig scenario;
  /// Robust aggregation rule (fl/robust.h); plain mean by default.
  RobustConfig robust;

  /// Crash-safe persistence: when checkpoint_every > 0 and checkpoint_path
  /// is set, trial t's state is written atomically to
  /// `checkpoint_path + ".trial" + t` every checkpoint_every rounds and
  /// after the final round. With `resume` set, each trial restarts from its
  /// checkpoint file when one exists (a missing file means a fresh start);
  /// the continuation is bit-identical to never having stopped.
  int checkpoint_every = 0;
  std::string checkpoint_path;
  bool resume = false;

  int trials = 1;
  uint64_t seed = 1;
  int num_threads = 1;
  /// Z-score tabular features with train statistics before training.
  bool standardize_tabular = true;
};

/// One trial's outcome.
struct TrialResult {
  /// Test accuracy after each evaluated round (index r = round r, when
  /// eval_every == 1).
  std::vector<double> round_accuracy;
  std::vector<double> round_loss;
  double final_accuracy = 0.0;
  int64_t upload_floats = 0;  ///< total communication volume
};

/// All trials of one experiment.
struct ExperimentResult {
  ExperimentConfig config;
  std::vector<TrialResult> trials;

  /// Final accuracies across trials (for mean±std reporting).
  std::vector<double> FinalAccuracies() const;
  /// Per-round accuracy averaged over trials.
  std::vector<double> MeanCurve() const;
};

}  // namespace niid

#endif  // NIID_CORE_EXPERIMENT_H_
