#include "core/leaderboard.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/csv.h"
#include "util/stats.h"
#include "util/table.h"

namespace niid {

void Leaderboard::Add(LeaderboardEntry entry) {
  for (LeaderboardEntry& existing : entries_) {
    if (existing.dataset == entry.dataset &&
        existing.partition == entry.partition &&
        existing.algorithm == entry.algorithm) {
      existing = std::move(entry);
      return;
    }
  }
  entries_.push_back(std::move(entry));
}

void Leaderboard::AddResult(const ExperimentResult& result) {
  LeaderboardEntry entry;
  entry.dataset = result.config.dataset;
  entry.partition = result.config.partition.Label();
  entry.algorithm = result.config.algorithm;
  const std::vector<double> finals = result.FinalAccuracies();
  entry.mean_accuracy = Mean(finals);
  entry.std_accuracy = StdDev(finals);
  entry.trials = static_cast<int>(finals.size());
  Add(std::move(entry));
}

int Leaderboard::num_settings() const {
  std::set<std::pair<std::string, std::string>> settings;
  for (const LeaderboardEntry& entry : entries_) {
    settings.insert({entry.dataset, entry.partition});
  }
  return static_cast<int>(settings.size());
}

std::vector<LeaderboardRank> Leaderboard::Rank() const {
  // Group entries by setting.
  std::map<std::pair<std::string, std::string>,
           std::vector<const LeaderboardEntry*>>
      by_setting;
  for (const LeaderboardEntry& entry : entries_) {
    by_setting[{entry.dataset, entry.partition}].push_back(&entry);
  }

  std::map<std::string, LeaderboardRank> ranks;
  std::map<std::string, int> settings_counted;
  for (auto& [setting, cells] : by_setting) {
    (void)setting;
    std::vector<const LeaderboardEntry*> sorted = cells;
    std::sort(sorted.begin(), sorted.end(),
              [](const LeaderboardEntry* a, const LeaderboardEntry* b) {
                return a->mean_accuracy > b->mean_accuracy;
              });
    for (size_t position = 0; position < sorted.size(); ++position) {
      const LeaderboardEntry* cell = sorted[position];
      LeaderboardRank& rank = ranks[cell->algorithm];
      rank.algorithm = cell->algorithm;
      rank.mean_rank += static_cast<double>(position + 1);
      rank.mean_accuracy += cell->mean_accuracy;
      if (position == 0) ++rank.wins;
      ++settings_counted[cell->algorithm];
    }
  }
  std::vector<LeaderboardRank> result;
  for (auto& [name, rank] : ranks) {
    const int count = std::max(settings_counted[name], 1);
    rank.mean_rank /= count;
    rank.mean_accuracy /= count;
    result.push_back(rank);
  }
  std::sort(result.begin(), result.end(),
            [](const LeaderboardRank& a, const LeaderboardRank& b) {
              if (a.wins != b.wins) return a.wins > b.wins;
              return a.mean_rank < b.mean_rank;
            });
  return result;
}

void Leaderboard::Print(std::ostream& out) const {
  Table table({"rank", "algorithm", "wins", "mean rank", "mean accuracy"});
  int position = 1;
  for (const LeaderboardRank& rank : Rank()) {
    char mean_rank[32];
    std::snprintf(mean_rank, sizeof(mean_rank), "%.2f", rank.mean_rank);
    table.AddRow({std::to_string(position++), rank.algorithm,
                  std::to_string(rank.wins), mean_rank,
                  FormatPercent(rank.mean_accuracy)});
  }
  out << "Leaderboard over " << num_settings() << " non-IID settings:\n";
  table.Print(out);
}

Status Leaderboard::SaveCsv(const std::string& path) const {
  CsvWriter writer(path);
  if (!writer.ok()) return Status::NotFound("cannot open: " + path);
  writer.WriteHeader({"dataset", "partition", "algorithm", "mean_accuracy",
                      "std_accuracy", "trials"});
  for (const LeaderboardEntry& entry : entries_) {
    writer.WriteRow({entry.dataset, entry.partition, entry.algorithm,
                     std::to_string(entry.mean_accuracy),
                     std::to_string(entry.std_accuracy),
                     std::to_string(entry.trials)});
  }
  writer.Flush();
  return Status::Ok();
}

}  // namespace niid
