#ifndef NIID_CORE_LEADERBOARD_H_
#define NIID_CORE_LEADERBOARD_H_

#include <ostream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "util/status.h"

namespace niid {

/// One leaderboard cell: an algorithm's score on one (dataset, partition)
/// setting.
struct LeaderboardEntry {
  std::string dataset;
  std::string partition;  ///< e.g. "#C=2", "p~Dir(0.5)"
  std::string algorithm;
  double mean_accuracy = 0.0;
  double std_accuracy = 0.0;
  int trials = 0;
};

/// Per-algorithm aggregate ranking across settings.
struct LeaderboardRank {
  std::string algorithm;
  int wins = 0;            ///< settings where it scored best
  double mean_rank = 0.0;  ///< average rank (1 = best) across settings
  double mean_accuracy = 0.0;
};

/// Collects experiment results and ranks algorithms across non-IID settings,
/// mirroring the leaderboard the NIID-Bench authors maintain alongside their
/// code ("we also maintain a leaderboard ... to rank state-of-the-art
/// federated learning algorithms on different non-IID settings").
class Leaderboard {
 public:
  /// Records one cell. Re-adding the same (dataset, partition, algorithm)
  /// replaces the previous score.
  void Add(LeaderboardEntry entry);

  /// Convenience: records an ExperimentResult under its config's labels.
  void AddResult(const ExperimentResult& result);

  /// Per-algorithm rankings, best first (more wins, then lower mean rank).
  std::vector<LeaderboardRank> Rank() const;

  /// All recorded cells.
  const std::vector<LeaderboardEntry>& entries() const { return entries_; }

  /// Number of distinct (dataset, partition) settings recorded.
  int num_settings() const;

  /// Prints the ranking table.
  void Print(std::ostream& out) const;

  /// Dumps every cell to CSV for external tooling.
  Status SaveCsv(const std::string& path) const;

 private:
  std::vector<LeaderboardEntry> entries_;
};

}  // namespace niid

#endif  // NIID_CORE_LEADERBOARD_H_
