#include "core/profiler.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/stats.h"

namespace niid {

ClientProfile ProfileClient(int client_id, const Dataset& data) {
  ClientProfile profile;
  profile.client_id = client_id;
  profile.num_samples = data.size();
  profile.label_counts = CountLabels(data);
  double sum = 0.0, sq = 0.0;
  const float* values = data.features.data();
  const int64_t n = data.features.numel();
  for (int64_t i = 0; i < n; ++i) {
    sum += values[i];
    sq += static_cast<double>(values[i]) * values[i];
  }
  if (n > 0) {
    profile.feature_mean = sum / n;
    profile.feature_variance =
        std::max(sq / n - profile.feature_mean * profile.feature_mean, 0.0);
  }
  return profile;
}

std::string SkewKindName(SkewKind kind) {
  switch (kind) {
    case SkewKind::kNone:
      return "none (close to IID)";
    case SkewKind::kLabelSkew:
      return "label distribution skew";
    case SkewKind::kFeatureSkew:
      return "feature distribution skew";
    case SkewKind::kQuantitySkew:
      return "quantity skew";
  }
  return "unknown";
}

SkewDiagnosis DiagnoseSkew(const std::vector<ClientProfile>& profiles,
                           const ProfilerThresholds& thresholds) {
  NIID_CHECK(!profiles.empty());
  SkewDiagnosis diagnosis;

  // Global label distribution and size stats.
  const size_t classes = profiles[0].label_counts.size();
  std::vector<double> global(classes, 0.0);
  int64_t total = 0, min_size = profiles[0].num_samples,
          max_size = profiles[0].num_samples;
  for (const ClientProfile& p : profiles) {
    NIID_CHECK_EQ(p.label_counts.size(), classes);
    total += p.num_samples;
    min_size = std::min(min_size, p.num_samples);
    max_size = std::max(max_size, p.num_samples);
    for (size_t c = 0; c < classes; ++c) global[c] += p.label_counts[c];
  }
  NIID_CHECK_GT(total, 0);
  for (double& g : global) g /= total;
  diagnosis.size_imbalance =
      min_size > 0 ? static_cast<double>(max_size) / min_size
                   : static_cast<double>(max_size);

  // Sample-weighted mean TV distance of party label distributions from the
  // global one. Weighting by party size keeps tiny parties' multinomial
  // sampling noise from masquerading as label skew (a pure quantity-skew
  // federation has accurate histograms exactly where the samples are).
  double tv_sum = 0.0;
  for (const ClientProfile& p : profiles) {
    if (p.num_samples == 0) continue;
    double tv = 0.0;
    for (size_t c = 0; c < classes; ++c) {
      tv += std::abs(static_cast<double>(p.label_counts[c]) /
                         p.num_samples - global[c]);
    }
    tv_sum += 0.5 * tv * static_cast<double>(p.num_samples) / total;
  }
  diagnosis.label_tv_distance = tv_sum;

  // Feature-distribution divergence: dispersion of per-party feature means
  // (location shift — writer styles, domain shift) OR of per-party feature
  // stds (scale shift — additive noise is zero-mean and only shows up
  // here), both normalized by the pooled feature scale.
  std::vector<double> means, stds;
  double pooled_var = 0.0;
  for (const ClientProfile& p : profiles) {
    means.push_back(p.feature_mean);
    stds.push_back(std::sqrt(std::max(p.feature_variance, 0.0)));
    pooled_var += p.feature_variance;
  }
  pooled_var /= profiles.size();
  const double pooled_std = std::sqrt(std::max(pooled_var, 1e-12));
  const double location_shift = StdDev(means) / pooled_std;
  const double scale_shift = StdDev(stds) / pooled_std;
  diagnosis.feature_shift = std::max(location_shift, scale_shift);

  // Classify: label skew dominates (it is the damaging one per Finding 1),
  // then feature skew, then quantity skew.
  if (diagnosis.label_tv_distance >= thresholds.label_tv) {
    diagnosis.kind = SkewKind::kLabelSkew;
    diagnosis.recommendation =
        RecommendAlgorithm(PartitionStrategy::kLabelDirichlet);
  } else if (diagnosis.feature_shift >= thresholds.feature_shift) {
    diagnosis.kind = SkewKind::kFeatureSkew;
    diagnosis.recommendation = RecommendAlgorithm(PartitionStrategy::kNoise);
  } else if (diagnosis.size_imbalance >= thresholds.size_ratio) {
    diagnosis.kind = SkewKind::kQuantitySkew;
    diagnosis.recommendation =
        RecommendAlgorithm(PartitionStrategy::kQuantityDirichlet);
  } else {
    diagnosis.kind = SkewKind::kNone;
    diagnosis.recommendation =
        RecommendAlgorithm(PartitionStrategy::kHomogeneous);
  }
  return diagnosis;
}

void PrintDiagnosis(const SkewDiagnosis& diagnosis, std::ostream& out) {
  out << "detected skew: " << SkewKindName(diagnosis.kind) << "\n"
      << "  label TV distance:  " << diagnosis.label_tv_distance << "\n"
      << "  size imbalance:     " << diagnosis.size_imbalance << "\n"
      << "  feature mean shift: " << diagnosis.feature_shift << "\n"
      << "  recommended algorithm: " << diagnosis.recommendation.algorithm
      << "\n    " << diagnosis.recommendation.rationale << "\n";
}

}  // namespace niid
