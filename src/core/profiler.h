#ifndef NIID_CORE_PROFILER_H_
#define NIID_CORE_PROFILER_H_

#include <ostream>
#include <string>
#include <vector>

#include "core/decision_tree.h"
#include "data/dataset.h"

namespace niid {

/// Lightweight non-IID profiling (Section 6.1, "light-weight data techniques
/// for profiling non-IID data"): before training, the server collects only
/// each party's label histogram and feature moments — a few dozen floats,
/// far less revealing than raw data — and estimates which kind of skew the
/// federation exhibits, so the right algorithm can be picked up front via
/// the Figure-6 decision tree.
struct ClientProfile {
  int client_id = -1;
  int64_t num_samples = 0;
  std::vector<int64_t> label_counts;
  /// Mean and variance of all feature values (cheap distribution sketch).
  double feature_mean = 0.0;
  double feature_variance = 0.0;
};

/// Computes a party's profile from its local dataset.
ClientProfile ProfileClient(int client_id, const Dataset& data);

/// The skew kind the profiler detects.
enum class SkewKind {
  kNone,          ///< close to IID
  kLabelSkew,     ///< label distributions diverge across parties
  kFeatureSkew,   ///< feature moments diverge, labels consistent
  kQuantitySkew,  ///< sizes diverge, distributions consistent
};

std::string SkewKindName(SkewKind kind);

/// Aggregated federation-level diagnosis.
struct SkewDiagnosis {
  SkewKind kind = SkewKind::kNone;
  /// Mean total-variation distance between party label distributions and
  /// the federation-wide one.
  double label_tv_distance = 0.0;
  /// Max/min party size ratio.
  double size_imbalance = 1.0;
  /// Std over parties of the per-party feature mean, normalized by the
  /// pooled feature std (0 = identical feature distributions).
  double feature_shift = 0.0;
  /// The Figure-6 recommendation for the detected kind.
  AlgorithmRecommendation recommendation;
};

/// Thresholds used by the detector (exposed for tests and tuning).
struct ProfilerThresholds {
  double label_tv = 0.25;
  double size_ratio = 3.0;
  double feature_shift = 0.15;
};

/// Diagnoses the federation from per-party profiles.
SkewDiagnosis DiagnoseSkew(const std::vector<ClientProfile>& profiles,
                           const ProfilerThresholds& thresholds = {});

/// Pretty-prints a diagnosis.
void PrintDiagnosis(const SkewDiagnosis& diagnosis, std::ostream& out);

}  // namespace niid

#endif  // NIID_CORE_PROFILER_H_
