#include "core/runner.h"

#include <cmath>
#include <utility>

#include "data/transforms.h"
#include "partition/lazy_index.h"
#include "util/check.h"
#include "util/logging.h"

namespace niid {

float ResolveLearningRate(const ExperimentConfig& config) {
  const float base = config.local.learning_rate > 0.f
                         ? config.local.learning_rate
                         : GetDatasetInfo(config.dataset)
                               .default_learning_rate;
  return base * config.lr_scale;
}

float ScheduledLearningRate(const ExperimentConfig& config, float base,
                            int round, int total_rounds) {
  NIID_CHECK_GE(round, 0);
  switch (config.lr_schedule) {
    case LrSchedule::kConstant:
      return base;
    case LrSchedule::kStepDecay: {
      const int period = std::max(config.lr_decay_every, 1);
      float lr = base;
      for (int r = period; r <= round; r += period) lr *= 0.5f;
      return lr;
    }
    case LrSchedule::kCosine: {
      if (total_rounds <= 1) return base;
      const float floor_lr = base * config.lr_min_factor;
      const double phase = M_PI * static_cast<double>(round) /
                           static_cast<double>(total_rounds - 1);
      return floor_lr + 0.5f * (base - floor_lr) *
                            static_cast<float>(1.0 + std::cos(phase));
    }
  }
  return base;
}

std::unique_ptr<FederatedServer> BuildServerForTrial(
    const ExperimentConfig& config, int trial, Dataset* out_test) {
  // Data: fixed across trials so trial variance reflects partitioning and
  // training randomness, matching the paper's three-trial protocol.
  auto data_or = MakeCatalogDataset(config.dataset, config.catalog);
  NIID_CHECK(data_or.ok()) << data_or.status().ToString();
  FederatedDataset data = std::move(*data_or);

  if (config.standardize_tabular && !data.train.is_image()) {
    const FeatureStats stats = ComputeFeatureStats(data.train);
    StandardizeFeatures(data.train, stats);
    StandardizeFeatures(data.test, stats);
  }

  ModelSpec spec = DefaultModelSpec(data.train, config.model);
  spec.resnet_blocks_per_stage = config.resnet_blocks_per_stage;
  const ModelFactory factory = MakeModelFactory(spec);

  PartitionConfig partition_config = config.partition;
  partition_config.seed = config.seed + 7919ULL * trial;

  auto algorithm_or = CreateAlgorithm(config.algorithm, config.algo);
  NIID_CHECK(algorithm_or.ok()) << algorithm_or.status().ToString();

  ServerConfig server_config;
  server_config.sample_fraction = config.sample_fraction;
  server_config.seed = config.seed + 15485863ULL * trial;
  server_config.num_threads = config.num_threads;
  server_config.dp = config.dp;
  server_config.min_local_epochs = config.min_local_epochs;
  server_config.skew_aware_sampling = config.skew_aware_sampling;
  server_config.faults = config.faults;
  server_config.min_aggregate_clients = config.min_aggregate_clients;
  server_config.max_resample_retries = config.max_resample_retries;
  server_config.max_update_norm = config.max_update_norm;
  server_config.compression = config.compression;
  server_config.num_shards = config.num_shards;
  server_config.scenario = config.scenario;
  if (server_config.scenario.num_classes == 0) {
    // Label transforms (drift, labelflip) need the class count; the dataset
    // is authoritative unless the caller pinned one explicitly.
    server_config.scenario.num_classes = data.train.num_classes;
  }
  server_config.robust = config.robust;

  if (config.sparse_parties) {
    // Sparse party engine: no per-party objects, no dense partition table.
    // Party datasets come from the lazy index on demand; party rng streams
    // come from the DeriveStreamSeed family rooted at the dense path's
    // setup seed.
    server_config.party_stream_seed = config.seed + 104729ULL * trial;
    if (out_test != nullptr) *out_test = std::move(data.test);
    auto source = std::make_shared<LazyPartitionIndex>(std::move(data.train),
                                                       partition_config);
    return std::make_unique<FederatedServer>(
        factory, std::move(source), std::move(*algorithm_or), server_config);
  }

  const Partition partition = MakePartition(data.train, partition_config);

  Rng setup_rng(config.seed + 104729ULL * trial);
  std::vector<std::unique_ptr<Client>> clients;
  clients.reserve(partition.num_parties());
  for (int i = 0; i < partition.num_parties(); ++i) {
    Rng client_rng = setup_rng.Split();
    Dataset local =
        MaterializeClientDataset(data.train, partition, i, client_rng);
    clients.push_back(
        std::make_unique<Client>(i, std::move(local), client_rng.Split()));
  }

  if (out_test != nullptr) *out_test = std::move(data.test);
  return std::make_unique<FederatedServer>(
      factory, std::move(clients), std::move(*algorithm_or), server_config);
}

namespace {

std::string TrialCheckpointPath(const ExperimentConfig& config, int trial) {
  return config.checkpoint_path + ".trial" + std::to_string(trial);
}

}  // namespace

ExperimentResult RunExperiment(const ExperimentConfig& config,
                               const RoundObserver& observer) {
  NIID_CHECK_GE(config.trials, 1);
  NIID_CHECK_GE(config.rounds, 1);
  NIID_CHECK_GE(config.eval_every, 1);
  const bool checkpointing =
      config.checkpoint_every > 0 && !config.checkpoint_path.empty();

  ExperimentResult result;
  result.config = config;

  LocalTrainOptions local = config.local;
  const float base_lr = ResolveLearningRate(config);

  for (int trial = 0; trial < config.trials; ++trial) {
    Dataset test;
    std::unique_ptr<FederatedServer> server =
        BuildServerForTrial(config, trial, &test);
    TrialResult trial_result;
    EvalResult eval;
    int start_round = 0;
    if (config.resume && !config.checkpoint_path.empty()) {
      const std::string path = TrialCheckpointPath(config, trial);
      StatusOr<ServerCheckpoint> checkpoint = ReadCheckpointFile(path);
      if (checkpoint.ok()) {
        // A checkpoint that exists but fails to restore is an operational
        // error, not a fresh start: silently re-running from scratch would
        // mask it (determinism makes the output identical either way).
        NIID_CHECK_EQ(checkpoint->trial, trial)
            << "checkpoint " << path << " belongs to another trial";
        const Status restored = server->RestoreCheckpoint(*checkpoint);
        NIID_CHECK(restored.ok()) << restored.ToString();
        start_round = server->rounds_completed();
        trial_result.round_accuracy = checkpoint->round_accuracy;
        trial_result.round_loss = checkpoint->round_loss;
        NIID_LOG(kInfo) << "resumed trial " << trial << " at round "
                        << start_round << " from " << path;
      } else {
        NIID_CHECK(checkpoint.status().code() == StatusCode::kNotFound)
            << checkpoint.status().ToString();
      }
    }
    for (int round = start_round; round < config.rounds; ++round) {
      local.learning_rate =
          ScheduledLearningRate(config, base_lr, round, config.rounds);
      const RoundStats stats = server->RunRound(local);
      const bool evaluate = ((round + 1) % config.eval_every == 0) ||
                            round + 1 == config.rounds;
      if (evaluate) {
        eval = server->EvaluateGlobal(test);
        trial_result.round_accuracy.push_back(eval.accuracy);
        trial_result.round_loss.push_back(eval.loss);
      }
      // Checkpoint after evaluation and before the observer, so an observer
      // that halts the process (crash-resume testing) leaves a checkpoint
      // carrying this round's curve point.
      if (checkpointing && (((round + 1) % config.checkpoint_every == 0) ||
                            round + 1 == config.rounds)) {
        ServerCheckpoint checkpoint = server->MakeCheckpoint();
        checkpoint.trial = trial;
        checkpoint.round_accuracy = trial_result.round_accuracy;
        checkpoint.round_loss = trial_result.round_loss;
        const Status written = WriteCheckpointFile(
            checkpoint, TrialCheckpointPath(config, trial));
        NIID_CHECK(written.ok()) << written.ToString();
      }
      if (observer) observer(trial, stats, eval);
    }
    trial_result.final_accuracy = trial_result.round_accuracy.empty()
                                      ? 0.0
                                      : trial_result.round_accuracy.back();
    trial_result.upload_floats = server->cumulative_upload_floats();
    NIID_LOG(kDebug) << config.dataset << "/" << config.partition.Label()
                     << "/" << config.algorithm << " trial " << trial
                     << ": acc=" << trial_result.final_accuracy;
    result.trials.push_back(std::move(trial_result));
  }
  return result;
}

}  // namespace niid
