#ifndef NIID_CORE_RUNNER_H_
#define NIID_CORE_RUNNER_H_

#include <functional>

#include "core/experiment.h"
#include "fl/server.h"

namespace niid {

/// Optional per-round observer: (trial, stats, eval-after-round). The eval
/// result is only fresh on rounds where evaluation ran (see eval_every).
using RoundObserver =
    std::function<void(int trial, const RoundStats&, const EvalResult&)>;

/// Runs the full experiment: per trial, builds the dataset (fixed seed so
/// trials share data), partitions it (seed + trial), constructs clients and
/// the server, runs `rounds` rounds and records the accuracy curve.
ExperimentResult RunExperiment(const ExperimentConfig& config,
                               const RoundObserver& observer = nullptr);

/// Builds the federated setup for one trial without running rounds (exposed
/// for integration tests and custom loops). `trial` perturbs the partition
/// and training seeds. `out_test` receives the (possibly standardized) test
/// set.
std::unique_ptr<FederatedServer> BuildServerForTrial(
    const ExperimentConfig& config, int trial, Dataset* out_test);

/// Resolves the learning rate: explicit config value, else the dataset's
/// paper default (0.1 for rcv1, 0.01 otherwise).
float ResolveLearningRate(const ExperimentConfig& config);

/// Learning rate for `round` (0-based) of `total_rounds` under the config's
/// schedule, starting from `base` (= ResolveLearningRate's value).
float ScheduledLearningRate(const ExperimentConfig& config, float base,
                            int round, int total_rounds);

}  // namespace niid

#endif  // NIID_CORE_RUNNER_H_
