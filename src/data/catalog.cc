#include "data/catalog.h"

#include <algorithm>

#include "data/fcube.h"
#include "data/femnist.h"
#include "data/synthetic.h"
#include "util/check.h"

namespace niid {
namespace {

// Table 2 of the paper.
const std::vector<DatasetInfo>& Infos() {
  static const std::vector<DatasetInfo> infos{
      {"mnist", 60000, 10000, 784, 10, true, 1, 28, 28, 0.01f},
      {"fmnist", 60000, 10000, 784, 10, true, 1, 28, 28, 0.01f},
      {"cifar10", 50000, 10000, 1024, 10, true, 3, 32, 32, 0.01f},
      {"svhn", 73257, 26032, 1024, 10, true, 3, 32, 32, 0.01f},
      {"adult", 32561, 16281, 123, 2, false, 0, 0, 0, 0.01f},
      {"rcv1", 15182, 5060, 47236, 2, false, 0, 0, 0, 0.1f},
      {"covtype", 435759, 145253, 54, 2, false, 0, 0, 0, 0.01f},
      {"fcube", 4000, 1000, 3, 2, false, 0, 0, 0, 0.01f},
      {"femnist", 341873, 40832, 784, 10, true, 1, 28, 28, 0.01f},
  };
  return infos;
}

int64_t ScaledSize(int64_t paper_size, double factor, int64_t min_size,
                   int64_t max_size) {
  int64_t scaled = static_cast<int64_t>(paper_size * factor);
  scaled = std::max(scaled, min_size);
  if (max_size > 0) scaled = std::min(scaled, max_size);
  return std::min(scaled, std::max(paper_size, min_size));
}

}  // namespace

std::vector<std::string> CatalogDatasetNames() {
  std::vector<std::string> names;
  for (const auto& info : Infos()) names.push_back(info.name);
  return names;
}

const DatasetInfo& GetDatasetInfo(const std::string& name) {
  for (const auto& info : Infos()) {
    if (info.name == name) return info;
  }
  NIID_CHECK(false) << "unknown dataset: " << name;
  return Infos()[0];  // unreachable
}

StatusOr<FederatedDataset> MakeCatalogDataset(const std::string& name,
                                              const CatalogOptions& options) {
  bool known = false;
  for (const auto& info : Infos()) known = known || info.name == name;
  if (!known) return Status::InvalidArgument("unknown dataset: " + name);

  const DatasetInfo& info = GetDatasetInfo(name);
  const int64_t train =
      ScaledSize(info.paper_train_size, options.size_factor,
                 options.min_train_size, options.max_train_size);
  const int64_t test =
      ScaledSize(info.paper_test_size, options.size_factor,
                 options.min_test_size, /*max_size=*/options.max_train_size);

  if (name == "fcube") {
    FcubeConfig config;
    config.train_size = train;
    config.test_size = test;
    config.seed = options.seed;
    return MakeFcube(config);
  }
  if (name == "femnist") {
    FemnistConfig config;
    config.train_size = train;
    config.test_size = test;
    config.seed = options.seed;
    return MakeFemnist(config);
  }
  if (info.is_image) {
    SyntheticImageConfig config;
    config.name = name;
    config.num_classes = info.num_classes;
    config.channels = info.channels;
    config.height = info.height;
    config.width = info.width;
    config.train_size = train;
    config.test_size = test;
    config.seed = options.seed;
    // Difficulty knobs per dataset, preserving the paper's task ordering:
    // mnist easy > fmnist > svhn > cifar10 hard.
    if (name == "mnist") {
      config.class_sep = 1.4f;
      config.style_noise = 0.3f;
      config.pixel_noise = 0.08f;
    } else if (name == "fmnist") {
      config.class_sep = 1.0f;
      config.style_noise = 0.45f;
      config.pixel_noise = 0.10f;
    } else if (name == "svhn") {
      config.class_sep = 0.8f;
      config.style_noise = 0.5f;
      config.pixel_noise = 0.12f;
      config.basis_size = 16;
    } else if (name == "cifar10") {
      config.class_sep = 0.55f;
      config.style_noise = 0.6f;
      config.pixel_noise = 0.15f;
      config.basis_size = 12;
    }
    return MakeSyntheticImages(config);
  }

  SyntheticTabularConfig config;
  config.name = name;
  config.num_classes = info.num_classes;
  config.num_features = static_cast<int>(
      std::min<int64_t>(info.num_features, options.max_tabular_features));
  config.train_size = train;
  config.test_size = test;
  config.seed = options.seed;
  if (name == "adult") {
    config.class_sep = 1.0f;
    config.noise = 1.0f;
    config.density = 0.3f;  // one-hot-encoded categoricals are sparse
  } else if (name == "rcv1") {
    config.class_sep = 2.2f;
    config.noise = 0.6f;
    config.density = 0.05f;  // bag-of-words sparsity
  } else if (name == "covtype") {
    config.class_sep = 0.8f;
    config.noise = 1.0f;
    config.density = 1.0f;
  }
  return MakeSyntheticTabular(config);
}

ModelSpec DefaultModelSpec(const Dataset& dataset,
                           const std::string& model_name) {
  ModelSpec spec;
  spec.num_classes = dataset.num_classes;
  if (dataset.is_image()) {
    spec.name = model_name.empty() ? "simple-cnn" : model_name;
    spec.input_channels = static_cast<int>(dataset.features.dim(1));
    spec.input_height = static_cast<int>(dataset.features.dim(2));
    spec.input_width = static_cast<int>(dataset.features.dim(3));
  } else {
    spec.name = model_name.empty() ? "mlp" : model_name;
    spec.input_features = static_cast<int>(dataset.feature_dim());
  }
  return spec;
}

}  // namespace niid
