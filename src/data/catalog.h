#ifndef NIID_DATA_CATALOG_H_
#define NIID_DATA_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "nn/models/factory.h"
#include "util/status.h"

namespace niid {

/// Static facts about one of the paper's nine datasets (Table 2).
struct DatasetInfo {
  std::string name;
  int64_t paper_train_size = 0;
  int64_t paper_test_size = 0;
  int64_t num_features = 0;  ///< flat feature count, as reported in Table 2
  int num_classes = 0;
  bool is_image = false;
  int channels = 0, height = 0, width = 0;  ///< images only
  float default_learning_rate = 0.01f;      ///< 0.1 for rcv1 (Section 5)
};

/// Returns the names of all nine datasets in Table 2 order.
std::vector<std::string> CatalogDatasetNames();

/// Returns the static facts for `name`; aborts on unknown names.
const DatasetInfo& GetDatasetInfo(const std::string& name);

/// Controls how the catalog scales the paper's datasets to CPU-friendly
/// sizes. The synthetic generators keep the paper's shapes (channels, image
/// size, feature count up to `max_tabular_features`) and scale only N.
struct CatalogOptions {
  /// Fraction of the paper's train/test sizes to generate.
  double size_factor = 0.02;
  /// Lower bounds so tiny factors still produce meaningful datasets.
  int64_t min_train_size = 500;
  int64_t min_test_size = 200;
  /// Upper bound (0 = none) to keep the largest datasets tractable.
  int64_t max_train_size = 8000;
  /// rcv1's 47,236-dimensional space is capped to this many features.
  int max_tabular_features = 2000;
  uint64_t seed = 7;
};

/// Instantiates dataset `name` ("mnist", "fmnist", "cifar10", "svhn",
/// "adult", "rcv1", "covtype", "fcube", "femnist") with synthetic data that
/// mimics the paper's dataset (see DESIGN.md substitution table).
/// Returns kInvalidArgument for unknown names.
StatusOr<FederatedDataset> MakeCatalogDataset(const std::string& name,
                                              const CatalogOptions& options);

/// Returns the model the paper assigns to `dataset`: the simple CNN for
/// image datasets, the 32/16/8 MLP for tabular ones. `model_name` overrides
/// the architecture (e.g. "vgg9", "resnet") while keeping input dimensions.
ModelSpec DefaultModelSpec(const Dataset& dataset,
                           const std::string& model_name = "");

}  // namespace niid

#endif  // NIID_DATA_CATALOG_H_
