#include "data/dataset.h"

#include "tensor/kernels.h"
#include "util/check.h"

namespace niid {

std::vector<int64_t> CountLabels(const Dataset& dataset) {
  std::vector<int64_t> counts(dataset.num_classes, 0);
  for (int label : dataset.labels) {
    NIID_CHECK_GE(label, 0);
    NIID_CHECK_LT(label, dataset.num_classes);
    ++counts[label];
  }
  return counts;
}

namespace {

std::vector<int64_t> SampleShape(const Dataset& dataset, int64_t n) {
  std::vector<int64_t> shape = dataset.features.shape();
  NIID_CHECK_GE(shape.size(), 2u);
  shape[0] = n;
  return shape;
}

}  // namespace

Dataset Subset(const Dataset& dataset, const std::vector<int64_t>& indices) {
  Dataset out;
  SubsetInto(dataset, indices, out);
  return out;
}

void SubsetInto(const Dataset& dataset, const std::vector<int64_t>& indices,
                Dataset& out) {
  out.name = dataset.name;
  out.num_classes = dataset.num_classes;
  const int64_t row = dataset.feature_dim();
  const int64_t n = static_cast<int64_t>(indices.size());
  bool shape_ok = out.features.rank() == dataset.features.rank() &&
                  out.features.rank() >= 1 && out.features.dim(0) == n;
  for (int d = 1; shape_ok && d < out.features.rank(); ++d) {
    shape_ok = out.features.dim(d) == dataset.features.dim(d);
  }
  if (!shape_ok) out.features.Resize(SampleShape(dataset, n));
  out.labels.resize(indices.size());  // shrink keeps capacity
  out.groups.clear();
  if (!dataset.groups.empty()) out.groups.resize(indices.size());
  float* dst = out.features.data();
  const float* src = dataset.features.data();
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t idx = indices[i];
    NIID_CHECK_GE(idx, 0);
    NIID_CHECK_LT(idx, dataset.size());
    KernelCopy(row, src + idx * row, dst + i * row);
    out.labels[i] = dataset.labels[idx];
    if (!dataset.groups.empty()) out.groups[i] = dataset.groups[idx];
  }
}

std::pair<Tensor, std::vector<int>> GatherBatch(
    const Dataset& dataset, const std::vector<int64_t>& indices) {
  std::pair<Tensor, std::vector<int>> batch;
  GatherBatchInto(dataset, indices, batch.first, batch.second);
  return batch;
}

void GatherBatchInto(const Dataset& dataset,
                     const std::vector<int64_t>& indices, Tensor& x,
                     std::vector<int>& y) {
  const int64_t row = dataset.feature_dim();
  const int64_t n = static_cast<int64_t>(indices.size());
  bool shape_ok = x.rank() == dataset.features.rank() && x.dim(0) == n;
  for (int d = 1; shape_ok && d < x.rank(); ++d) {
    shape_ok = x.dim(d) == dataset.features.dim(d);
  }
  if (!shape_ok) x.Resize(SampleShape(dataset, n));
  y.resize(indices.size());  // shrink keeps capacity: no alloc in steady state
  float* dst = x.data();
  const float* src = dataset.features.data();
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t idx = indices[i];
    NIID_DCHECK_GE(idx, 0);
    NIID_DCHECK_LT(idx, dataset.size());
    KernelCopy(row, src + idx * row, dst + i * row);
    y[i] = dataset.labels[idx];
  }
}

void ValidateDataset(const Dataset& dataset) {
  NIID_CHECK_GE(dataset.features.rank(), 2);
  NIID_CHECK_EQ(dataset.features.dim(0), dataset.size());
  NIID_CHECK_GT(dataset.num_classes, 0);
  for (int label : dataset.labels) {
    NIID_CHECK_GE(label, 0);
    NIID_CHECK_LT(label, dataset.num_classes);
  }
  if (!dataset.groups.empty()) {
    NIID_CHECK_EQ(dataset.groups.size(), dataset.labels.size());
  }
}

}  // namespace niid
