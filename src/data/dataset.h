#ifndef NIID_DATA_DATASET_H_
#define NIID_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace niid {

/// An in-memory labeled dataset.
///
/// `features` is [N, F] for tabular data or [N, C, H, W] for images.
/// `labels` holds N class ids in [0, num_classes). `groups` is optional
/// per-sample provenance (e.g. the writer id in FEMNIST) used by the
/// real-world feature-skew partition; empty when not applicable.
struct Dataset {
  std::string name;
  Tensor features;
  std::vector<int> labels;
  int num_classes = 0;
  std::vector<int> groups;

  int64_t size() const { return static_cast<int64_t>(labels.size()); }
  bool is_image() const { return features.rank() == 4; }
  /// Flat feature dimensionality (C*H*W for images).
  int64_t feature_dim() const {
    return size() > 0 ? features.numel() / size() : 0;
  }
};

/// A train/test pair as shipped by the dataset catalog.
struct FederatedDataset {
  Dataset train;
  Dataset test;
};

/// Returns the per-class sample counts of `dataset`.
std::vector<int64_t> CountLabels(const Dataset& dataset);

/// Copies the samples at `indices` into a new Dataset (metadata preserved).
Dataset Subset(const Dataset& dataset, const std::vector<int64_t>& indices);

/// Storage-reusing variant of Subset: gathers into `out`, resizing its
/// tensors/vectors only when the subset shape actually changes. This is the
/// sparse party engine's per-round materialization path — an on-demand shard
/// view instead of a per-party Dataset copy held for the whole run.
void SubsetInto(const Dataset& dataset, const std::vector<int64_t>& indices,
                Dataset& out);

/// Gathers a mini-batch: X has the dataset's per-sample shape with leading
/// dimension indices.size(); y holds the matching labels.
std::pair<Tensor, std::vector<int>> GatherBatch(
    const Dataset& dataset, const std::vector<int64_t>& indices);

/// Zero-allocation variant: gathers into caller-owned buffers (resized only
/// when the batch shape actually changes, reusing capacity otherwise). This
/// is what Client/Evaluate hold per-instance scratch for.
void GatherBatchInto(const Dataset& dataset,
                     const std::vector<int64_t>& indices, Tensor& x,
                     std::vector<int>& y);

/// Validates internal consistency (sizes, label range); aborts on violation.
void ValidateDataset(const Dataset& dataset);

}  // namespace niid

#endif  // NIID_DATA_DATASET_H_
