#include "data/fcube.h"

#include "util/check.h"
#include "util/rng.h"

namespace niid {

int FcubeOctant(float x1, float x2, float x3) {
  return (x1 > 0.f ? 1 : 0) | (x2 > 0.f ? 2 : 0) | (x3 > 0.f ? 4 : 0);
}

namespace {

Dataset GenerateFcube(int64_t size, Rng& rng) {
  Dataset dataset;
  dataset.name = "fcube";
  dataset.num_classes = 2;
  dataset.features = Tensor({size, 3});
  dataset.labels.resize(size);
  float* dst = dataset.features.data();
  for (int64_t i = 0; i < size; ++i) {
    float x1, x2, x3;
    do {
      x1 = static_cast<float>(rng.Uniform(-1.0, 1.0));
      x2 = static_cast<float>(rng.Uniform(-1.0, 1.0));
      x3 = static_cast<float>(rng.Uniform(-1.0, 1.0));
      // Re-draw points exactly on a separating plane so octants and labels
      // are unambiguous (measure-zero event, but floats can produce it).
    } while (x1 == 0.f || x2 == 0.f || x3 == 0.f);
    dst[i * 3 + 0] = x1;
    dst[i * 3 + 1] = x2;
    dst[i * 3 + 2] = x3;
    dataset.labels[i] = x1 > 0.f ? 0 : 1;
  }
  return dataset;
}

}  // namespace

FederatedDataset MakeFcube(const FcubeConfig& config) {
  NIID_CHECK_GE(config.train_size, 1);
  Rng rng(config.seed);
  Rng train_rng = rng.Split();
  Rng test_rng = rng.Split();
  FederatedDataset fd;
  fd.train = GenerateFcube(config.train_size, train_rng);
  fd.test = GenerateFcube(config.test_size, test_rng);
  return fd;
}

}  // namespace niid
