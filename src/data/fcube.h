#ifndef NIID_DATA_FCUBE_H_
#define NIID_DATA_FCUBE_H_

#include <cstdint>

#include "data/dataset.h"

namespace niid {

/// Options for the FCUBE synthetic dataset (Section 4.2 of the paper).
struct FcubeConfig {
  int64_t train_size = 4000;
  int64_t test_size = 1000;
  uint64_t seed = 1234;
};

/// Generates FCUBE exactly as described in the paper: points are uniform in
/// the cube [-1, 1]^3; the label is decided by the plane x1 = 0 (label 0 for
/// x1 > 0, label 1 for x1 < 0). The synthetic feature-skew partition groups
/// points by the octant they fall into (see partition/feature_skew.h).
FederatedDataset MakeFcube(const FcubeConfig& config);

/// Returns the octant index (0..7) of a point: bit 0 = (x1 > 0),
/// bit 1 = (x2 > 0), bit 2 = (x3 > 0).
int FcubeOctant(float x1, float x2, float x3);

}  // namespace niid

#endif  // NIID_DATA_FCUBE_H_
