#include "data/femnist.h"

#include <algorithm>
#include <vector>

#include "data/synthetic.h"
#include "util/check.h"
#include "util/rng.h"

namespace niid {
namespace {

struct WriterStyle {
  std::vector<float> gain;   // multiplicative smooth field, centered at 1
  std::vector<float> bias;   // additive smooth field, centered at 0
  float intensity = 1.f;     // stroke-intensity factor
};

void ApplyWriters(Dataset& dataset, const std::vector<WriterStyle>& writers,
                  Rng& rng) {
  const int64_t pixels = dataset.feature_dim();
  dataset.groups.resize(dataset.size());
  float* data = dataset.features.data();
  for (int64_t i = 0; i < dataset.size(); ++i) {
    const int w = static_cast<int>(rng.UniformInt(writers.size()));
    dataset.groups[i] = w;
    const WriterStyle& style = writers[w];
    float* row = data + i * pixels;
    for (int64_t j = 0; j < pixels; ++j) {
      const float centered = (row[j] - 0.5f) * style.intensity;
      row[j] = std::clamp(centered * style.gain[j] + 0.5f + style.bias[j],
                          0.f, 1.f);
    }
  }
}

}  // namespace

FederatedDataset MakeFemnist(const FemnistConfig& config) {
  NIID_CHECK_GE(config.num_writers, 1);
  Rng rng(config.seed);

  // Base digits from the shared synthetic generator.
  SyntheticImageConfig base;
  base.name = "femnist";
  base.num_classes = config.num_classes;
  base.channels = 1;
  base.height = config.height;
  base.width = config.width;
  base.train_size = config.train_size;
  base.test_size = config.test_size;
  base.class_sep = 1.0f;
  base.style_noise = 0.25f;
  base.pixel_noise = 0.08f;
  base.seed = rng.NextUint64();
  FederatedDataset fd = MakeSyntheticImages(base);

  // Latent writer styles.
  const int64_t pixels = static_cast<int64_t>(config.height) * config.width;
  std::vector<WriterStyle> writers(config.num_writers);
  Rng style_rng = rng.Split();
  for (WriterStyle& style : writers) {
    style.gain.resize(pixels);
    style.bias.resize(pixels);
    FillSmoothNoiseField(style_rng, 1, config.height, config.width,
                         style.gain.data());
    FillSmoothNoiseField(style_rng, 1, config.height, config.width,
                         style.bias.data());
    for (int64_t j = 0; j < pixels; ++j) {
      style.gain[j] = 1.f + config.writer_strength * 0.5f * style.gain[j];
      style.bias[j] = config.writer_strength * 0.15f * style.bias[j];
    }
    style.intensity = 1.f + config.writer_strength * 0.4f *
                                static_cast<float>(style_rng.Normal());
    style.intensity = std::clamp(style.intensity, 0.4f, 1.8f);
  }

  Rng train_rng = rng.Split();
  Rng test_rng = rng.Split();
  ApplyWriters(fd.train, writers, train_rng);
  ApplyWriters(fd.test, writers, test_rng);
  return fd;
}

}  // namespace niid
