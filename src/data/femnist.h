#ifndef NIID_DATA_FEMNIST_H_
#define NIID_DATA_FEMNIST_H_

#include <cstdint>

#include "data/dataset.h"

namespace niid {

/// Options for the synthetic FEMNIST stand-in.
///
/// SUBSTITUTION NOTE (see DESIGN.md): the real FEMNIST partitions EMNIST
/// digits by writer, whose handwriting style induces a natural feature skew.
/// We model each writer as a latent style applied on top of the shared digit
/// generator: a smooth multiplicative gain field, a smooth additive bias
/// field and a stroke-intensity factor. P(y|x) stays shared across writers
/// while P(x) differs per writer — the defining property the real-world
/// feature-skew partition exercises.
struct FemnistConfig {
  int num_writers = 100;
  int64_t train_size = 8000;
  int64_t test_size = 2000;
  int num_classes = 10;
  int height = 28;
  int width = 28;
  /// Strength of the per-writer style (0 = all writers identical).
  float writer_strength = 0.5f;
  uint64_t seed = 1234;
};

/// Generates the writer-grouped dataset. Dataset::groups holds the writer id
/// of every sample (train and test drawn from the same writer pool).
FederatedDataset MakeFemnist(const FemnistConfig& config);

}  // namespace niid

#endif  // NIID_DATA_FEMNIST_H_
