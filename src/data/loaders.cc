#include "data/loaders.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace niid {
namespace {

StatusOr<std::vector<uint8_t>> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open file: " + path);
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  return bytes;
}

uint32_t ReadBigEndian32(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) |
         (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

}  // namespace

StatusOr<Dataset> LoadIdx(const std::string& image_path,
                          const std::string& label_path,
                          const std::string& dataset_name) {
  auto images_or = ReadFile(image_path);
  if (!images_or.ok()) return images_or.status();
  auto labels_or = ReadFile(label_path);
  if (!labels_or.ok()) return labels_or.status();
  const std::vector<uint8_t>& img = *images_or;
  const std::vector<uint8_t>& lab = *labels_or;

  if (img.size() < 16) return Status::DataLoss("IDX image file too short");
  if (lab.size() < 8) return Status::DataLoss("IDX label file too short");
  if (ReadBigEndian32(img.data()) != 0x00000803) {
    return Status::DataLoss("bad IDX image magic in " + image_path);
  }
  if (ReadBigEndian32(lab.data()) != 0x00000801) {
    return Status::DataLoss("bad IDX label magic in " + label_path);
  }
  const uint32_t n = ReadBigEndian32(img.data() + 4);
  const uint32_t rows = ReadBigEndian32(img.data() + 8);
  const uint32_t cols = ReadBigEndian32(img.data() + 12);
  if (ReadBigEndian32(lab.data() + 4) != n) {
    return Status::DataLoss("IDX image/label count mismatch");
  }
  const size_t expected = 16 + static_cast<size_t>(n) * rows * cols;
  if (img.size() != expected) {
    return Status::DataLoss("IDX image payload size mismatch");
  }
  if (lab.size() != 8 + static_cast<size_t>(n)) {
    return Status::DataLoss("IDX label payload size mismatch");
  }

  Dataset dataset;
  dataset.name = dataset_name;
  dataset.features = Tensor({static_cast<int64_t>(n), 1,
                             static_cast<int64_t>(rows),
                             static_cast<int64_t>(cols)});
  dataset.labels.resize(n);
  float* dst = dataset.features.data();
  const uint8_t* src = img.data() + 16;
  const int64_t pixels = static_cast<int64_t>(n) * rows * cols;
  for (int64_t i = 0; i < pixels; ++i) dst[i] = src[i] / 255.f;
  int max_label = 0;
  for (uint32_t i = 0; i < n; ++i) {
    dataset.labels[i] = lab[8 + i];
    max_label = std::max(max_label, dataset.labels[i]);
  }
  dataset.num_classes = max_label + 1;
  return dataset;
}

StatusOr<Dataset> LoadCifar10(const std::vector<std::string>& batch_paths,
                              const std::string& dataset_name) {
  constexpr int64_t kRecord = 1 + 3 * 32 * 32;
  std::vector<uint8_t> all;
  for (const std::string& path : batch_paths) {
    auto bytes_or = ReadFile(path);
    if (!bytes_or.ok()) return bytes_or.status();
    if (bytes_or->size() % kRecord != 0) {
      return Status::DataLoss("CIFAR-10 batch size not a record multiple: " +
                              path);
    }
    all.insert(all.end(), bytes_or->begin(), bytes_or->end());
  }
  const int64_t n = static_cast<int64_t>(all.size()) / kRecord;
  if (n == 0) return Status::DataLoss("empty CIFAR-10 input");

  Dataset dataset;
  dataset.name = dataset_name;
  dataset.num_classes = 10;
  dataset.features = Tensor({n, 3, 32, 32});
  dataset.labels.resize(n);
  float* dst = dataset.features.data();
  for (int64_t i = 0; i < n; ++i) {
    const uint8_t* record = all.data() + i * kRecord;
    const int label = record[0];
    if (label < 0 || label > 9) {
      return Status::DataLoss("CIFAR-10 label out of range");
    }
    dataset.labels[i] = label;
    // Records already store channel-major R, G, B planes.
    for (int64_t j = 0; j < 3 * 32 * 32; ++j) {
      dst[i * 3 * 32 * 32 + j] = record[1 + j] / 255.f;
    }
  }
  return dataset;
}

StatusOr<Dataset> LoadLibsvm(const std::string& path, int num_features,
                             const std::string& dataset_name) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open file: " + path);
  std::vector<std::vector<std::pair<int, float>>> rows;
  std::vector<double> raw_labels;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    double label = 0.0;
    if (!(ls >> label)) {
      return Status::DataLoss("bad label at line " +
                              std::to_string(line_number));
    }
    std::vector<std::pair<int, float>> row;
    std::string token;
    while (ls >> token) {
      const size_t colon = token.find(':');
      if (colon == std::string::npos) {
        return Status::DataLoss("bad feature token at line " +
                                std::to_string(line_number));
      }
      const int index = std::atoi(token.substr(0, colon).c_str());
      const float value =
          static_cast<float>(std::atof(token.substr(colon + 1).c_str()));
      if (index < 1 || index > num_features) {
        return Status::DataLoss("feature index out of range at line " +
                                std::to_string(line_number));
      }
      row.emplace_back(index - 1, value);
    }
    rows.push_back(std::move(row));
    raw_labels.push_back(label);
  }
  if (rows.empty()) return Status::DataLoss("empty LIBSVM file: " + path);

  // Remap original labels (e.g. {-1, +1} or {1..7}) to 0..K-1.
  std::set<double> distinct(raw_labels.begin(), raw_labels.end());
  std::map<double, int> label_map;
  int next = 0;
  for (double v : distinct) label_map[v] = next++;

  Dataset dataset;
  dataset.name = dataset_name;
  dataset.num_classes = next;
  const int64_t n = static_cast<int64_t>(rows.size());
  dataset.features = Tensor({n, num_features});
  dataset.labels.resize(n);
  float* dst = dataset.features.data();
  for (int64_t i = 0; i < n; ++i) {
    for (const auto& [col, value] : rows[i]) {
      dst[i * num_features + col] = value;
    }
    dataset.labels[i] = label_map[raw_labels[i]];
  }
  return dataset;
}

}  // namespace niid
