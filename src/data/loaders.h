#ifndef NIID_DATA_LOADERS_H_
#define NIID_DATA_LOADERS_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/status.h"

namespace niid {

/// Loads an MNIST-style IDX image file (magic 0x00000803) + IDX label file
/// (magic 0x00000801). Pixels are scaled to [0, 1]. Works for MNIST, FMNIST
/// and the EMNIST digit split.
StatusOr<Dataset> LoadIdx(const std::string& image_path,
                          const std::string& label_path,
                          const std::string& dataset_name);

/// Loads one or more CIFAR-10 binary batch files (each record: 1 label byte +
/// 3072 pixel bytes). Pixels are scaled to [0, 1]; shape [N, 3, 32, 32].
StatusOr<Dataset> LoadCifar10(const std::vector<std::string>& batch_paths,
                              const std::string& dataset_name);

/// Loads a LIBSVM/SVMLight text file ("label idx:val idx:val ...") into a
/// dense [N, num_features] dataset. Labels are remapped to 0..K-1 in order of
/// first appearance of the sorted distinct original labels; 1-based feature
/// indices (the LIBSVM convention) map to columns 0..num_features-1.
StatusOr<Dataset> LoadLibsvm(const std::string& path, int num_features,
                             const std::string& dataset_name);

}  // namespace niid

#endif  // NIID_DATA_LOADERS_H_
