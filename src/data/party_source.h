#ifndef NIID_DATA_PARTY_SOURCE_H_
#define NIID_DATA_PARTY_SOURCE_H_

#include <cstdint>

#include "data/dataset.h"

namespace niid {

/// Produces any party's local dataset on demand, as a pure function of the
/// party id. This is the contract the sparse party engine is built on: with
/// P = 1M simulated parties and a per-round sample fraction of 1e-4, the
/// server touches ~100 parties per round and must never hold per-party state
/// for the other 999,900. A PartySource owns the global training data plus
/// O(1)-or-O(classes) derivation caches, and answers MaterializeParty for an
/// arbitrary id without having visited any other id first.
///
/// Requirements on implementations:
///  - Purity: MaterializeParty(id, ...) yields bit-identical features/labels
///    every call, independent of call order and of which other ids were
///    materialized before. All randomness must come from generators seeded as
///    a pure function of (source seed, id) — see DeriveStreamSeed.
///  - Thread safety: concurrent MaterializeParty calls with distinct `out`
///    buffers must be safe (the round loop materializes the sampled parties
///    from worker threads). Shared caches must therefore be immutable after
///    construction.
class PartySource {
 public:
  virtual ~PartySource() = default;

  /// Total number of simulated parties.
  virtual int64_t num_parties() const = 0;

  /// Number of label classes in the underlying task.
  virtual int64_t num_classes() const = 0;

  /// Builds party `id`'s local dataset into `out`, reusing its storage
  /// (SubsetInto semantics). Guaranteed non-empty for every valid id.
  virtual void MaterializeParty(int64_t id, Dataset& out) const = 0;
};

}  // namespace niid

#endif  // NIID_DATA_PARTY_SOURCE_H_
