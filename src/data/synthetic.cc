#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.h"

namespace niid {
namespace {

// Separable box blur with radius 2 over each [height, width] plane,
// repeated twice, approximating a Gaussian blur.
void BoxBlur(int channels, int height, int width, float* field) {
  constexpr int kRadius = 2;
  std::vector<float> temp(static_cast<size_t>(height) * width);
  for (int c = 0; c < channels; ++c) {
    float* plane = field + static_cast<int64_t>(c) * height * width;
    for (int pass = 0; pass < 2; ++pass) {
      // Horizontal.
      for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
          float sum = 0.f;
          int count = 0;
          for (int dx = -kRadius; dx <= kRadius; ++dx) {
            const int xx = x + dx;
            if (xx < 0 || xx >= width) continue;
            sum += plane[y * width + xx];
            ++count;
          }
          temp[y * width + x] = sum / count;
        }
      }
      // Vertical.
      for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
          float sum = 0.f;
          int count = 0;
          for (int dy = -kRadius; dy <= kRadius; ++dy) {
            const int yy = y + dy;
            if (yy < 0 || yy >= height) continue;
            sum += temp[yy * width + x];
            ++count;
          }
          plane[y * width + x] = sum / count;
        }
      }
    }
  }
}

void NormalizeField(int64_t n, float* field) {
  double sum = 0.0, sq = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    sum += field[i];
    sq += static_cast<double>(field[i]) * field[i];
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  const float inv_std = var > 1e-12 ? static_cast<float>(1.0 / std::sqrt(var))
                                    : 1.f;
  for (int64_t i = 0; i < n; ++i) {
    field[i] = (field[i] - static_cast<float>(mean)) * inv_std;
  }
}

}  // namespace

void FillSmoothNoiseField(Rng& rng, int channels, int height, int width,
                          float* field) {
  const int64_t n = static_cast<int64_t>(channels) * height * width;
  for (int64_t i = 0; i < n; ++i) {
    field[i] = static_cast<float>(rng.Normal());
  }
  BoxBlur(channels, height, width, field);
  NormalizeField(n, field);
}

namespace {

// Shared machinery between train and test generation.
class ImageGenerator {
 public:
  explicit ImageGenerator(const SyntheticImageConfig& config)
      : config_(config), rng_(config.seed) {
    NIID_CHECK_GE(config.num_classes, 2);
    NIID_CHECK_GE(config.basis_size, 1);
    const int64_t pixels = Pixels();
    // Shared basis of smooth fields.
    basis_.resize(config.basis_size);
    for (auto& b : basis_) {
      b.resize(pixels);
      FillSmoothNoiseField(rng_, config.channels, config.height, config.width,
                           b.data());
    }
    // Class prototypes: normalized random combinations of the basis, so
    // classes share features and are not trivially orthogonal.
    prototypes_.resize(config.num_classes);
    for (auto& proto : prototypes_) {
      proto.assign(pixels, 0.f);
      for (const auto& b : basis_) {
        const float coeff = static_cast<float>(rng_.Normal());
        for (int64_t i = 0; i < pixels; ++i) proto[i] += coeff * b[i];
      }
      NormalizeField(pixels, proto.data());
    }
  }

  int64_t Pixels() const {
    return static_cast<int64_t>(config_.channels) * config_.height *
           config_.width;
  }

  /// Writes one sample of class `label` into `out` (Pixels() floats).
  void Sample(int label, Rng& rng, float* out) {
    const int64_t pixels = Pixels();
    const auto& proto = prototypes_[label];
    // Random circular shift of the prototype.
    int dy = 0, dx = 0;
    if (config_.max_shift > 0) {
      dy = static_cast<int>(rng.UniformInt(2 * config_.max_shift + 1)) -
           config_.max_shift;
      dx = static_cast<int>(rng.UniformInt(2 * config_.max_shift + 1)) -
           config_.max_shift;
    }
    const int h = config_.height, w = config_.width;
    std::vector<float> style(pixels);
    FillSmoothNoiseField(rng, config_.channels, h, w, style.data());
    const float intensity =
        config_.class_sep * (0.85f + 0.3f * static_cast<float>(rng.Uniform()));
    for (int c = 0; c < config_.channels; ++c) {
      for (int y = 0; y < h; ++y) {
        const int sy = ((y + dy) % h + h) % h;
        for (int x = 0; x < w; ++x) {
          const int sx = ((x + dx) % w + w) % w;
          const int64_t i = (static_cast<int64_t>(c) * h + y) * w + x;
          const int64_t si = (static_cast<int64_t>(c) * h + sy) * w + sx;
          float v = 0.5f + 0.25f * (intensity * proto[si] +
                                    config_.style_noise * style[i] +
                                    config_.pixel_noise *
                                        static_cast<float>(rng.Normal()));
          out[i] = std::clamp(v, 0.f, 1.f);
        }
      }
    }
  }

  Dataset Generate(int64_t size, Rng& rng, const std::string& name) {
    Dataset dataset;
    dataset.name = name;
    dataset.num_classes = config_.num_classes;
    dataset.features = Tensor({size, config_.channels, config_.height,
                               config_.width});
    dataset.labels.resize(size);
    float* dst = dataset.features.data();
    const int64_t pixels = Pixels();
    for (int64_t i = 0; i < size; ++i) {
      const int label =
          static_cast<int>(rng.UniformInt(config_.num_classes));
      dataset.labels[i] = label;
      Sample(label, rng, dst + i * pixels);
    }
    return dataset;
  }

  Rng& rng() { return rng_; }

 private:
  SyntheticImageConfig config_;
  Rng rng_;
  std::vector<std::vector<float>> basis_;
  std::vector<std::vector<float>> prototypes_;
};

}  // namespace

FederatedDataset MakeSyntheticImages(const SyntheticImageConfig& config) {
  ImageGenerator generator(config);
  Rng train_rng = generator.rng().Split();
  Rng test_rng = generator.rng().Split();
  FederatedDataset fd;
  fd.train = generator.Generate(config.train_size, train_rng, config.name);
  fd.test = generator.Generate(config.test_size, test_rng, config.name);
  return fd;
}

FederatedDataset MakeSyntheticTabular(const SyntheticTabularConfig& config) {
  NIID_CHECK_GE(config.num_classes, 2);
  NIID_CHECK_GE(config.num_features, 1);
  NIID_CHECK_GT(config.density, 0.f);
  Rng rng(config.seed);
  const int f = config.num_features;
  // Class means on the unit sphere, scaled by class_sep.
  std::vector<std::vector<float>> means(config.num_classes,
                                        std::vector<float>(f));
  for (auto& mu : means) {
    double norm_sq = 0.0;
    for (float& v : mu) {
      v = static_cast<float>(rng.Normal());
      norm_sq += static_cast<double>(v) * v;
    }
    const float scale =
        config.class_sep / static_cast<float>(std::sqrt(norm_sq));
    for (float& v : mu) v *= scale * std::sqrt(static_cast<float>(f));
  }

  auto generate = [&](int64_t size, Rng& gen_rng) {
    Dataset dataset;
    dataset.name = config.name;
    dataset.num_classes = config.num_classes;
    dataset.features = Tensor({size, f});
    dataset.labels.resize(size);
    float* dst = dataset.features.data();
    for (int64_t i = 0; i < size; ++i) {
      const int label = static_cast<int>(gen_rng.UniformInt(config.num_classes));
      dataset.labels[i] = label;
      float* row = dst + i * f;
      for (int j = 0; j < f; ++j) {
        if (config.density < 1.f &&
            gen_rng.Uniform() >= config.density) {
          row[j] = 0.f;  // inactive feature (sparse sample)
          continue;
        }
        row[j] = means[label][j] / std::sqrt(static_cast<float>(f)) +
                 config.noise * static_cast<float>(gen_rng.Normal());
      }
    }
    return dataset;
  };

  Rng train_rng = rng.Split();
  Rng test_rng = rng.Split();
  FederatedDataset fd;
  fd.train = generate(config.train_size, train_rng);
  fd.test = generate(config.test_size, test_rng);
  return fd;
}

}  // namespace niid
