#ifndef NIID_DATA_SYNTHETIC_H_
#define NIID_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>

#include "data/dataset.h"
#include "util/rng.h"

namespace niid {

/// Configuration for the synthetic image generator.
///
/// SUBSTITUTION NOTE (see DESIGN.md): real MNIST/FMNIST/CIFAR-10/SVHN files
/// are not available in this environment, so the catalog backs each of them
/// with this generator. Each class k has a spatially smooth prototype built
/// from a shared random basis; a sample is the prototype plus a random
/// circular shift, per-sample smooth "style" noise and pixel noise. This
/// preserves what the paper's experiments need from the data: (1) strong
/// label structure, so label-skew partitions starve parties of classes;
/// (2) a class-conditional feature manifold, so feature noise and writer
/// styles shift P(x) without changing P(y|x); (3) tunable difficulty, so the
/// dataset ordering (mnist easy, cifar hard) is preserved.
struct SyntheticImageConfig {
  std::string name = "synthetic-image";
  int num_classes = 10;
  int channels = 1;
  int height = 28;
  int width = 28;
  int64_t train_size = 4000;
  int64_t test_size = 1000;
  /// Scale of the class signal relative to unit-variance noise.
  float class_sep = 1.0f;
  /// Scale of per-sample smooth structured noise ("style").
  float style_noise = 0.4f;
  /// Scale of i.i.d. pixel noise.
  float pixel_noise = 0.1f;
  /// Maximum circular shift of the class prototype, in pixels.
  int max_shift = 2;
  /// Shared-basis size; smaller => classes share more features => harder.
  int basis_size = 24;
  uint64_t seed = 1234;
};

/// Generates a train/test pair from the same class prototypes.
FederatedDataset MakeSyntheticImages(const SyntheticImageConfig& config);

/// Configuration for the synthetic tabular generator (adult/rcv1/covtype
/// stand-ins). Classes are Gaussian clusters; optional per-sample sparse
/// support mimics bag-of-words data like rcv1.
struct SyntheticTabularConfig {
  std::string name = "synthetic-tabular";
  int num_classes = 2;
  int num_features = 100;
  int64_t train_size = 4000;
  int64_t test_size = 1000;
  /// Distance between class means relative to unit noise.
  float class_sep = 1.5f;
  /// Per-feature noise scale.
  float noise = 1.0f;
  /// Fraction of features active per sample (1.0 = dense).
  float density = 1.0f;
  uint64_t seed = 1234;
};

/// Generates a train/test pair from the same class means.
FederatedDataset MakeSyntheticTabular(const SyntheticTabularConfig& config);

/// Fills `field` (viewed as [channels, height, width]) with smoothed Gaussian
/// noise normalized to zero mean / unit variance. Exposed for FEMNIST's
/// writer-style fields and for tests.
void FillSmoothNoiseField(Rng& rng, int channels, int height, int width,
                          float* field);

}  // namespace niid

#endif  // NIID_DATA_SYNTHETIC_H_
