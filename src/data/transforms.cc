#include "data/transforms.h"

#include <cmath>

#include "util/check.h"

namespace niid {

void AddGaussianNoise(Dataset& dataset, double variance, Rng& rng) {
  NIID_CHECK_GE(variance, 0.0);
  if (variance == 0.0) return;
  const double stddev = std::sqrt(variance);
  float* data = dataset.features.data();
  const int64_t n = dataset.features.numel();
  for (int64_t i = 0; i < n; ++i) {
    data[i] += static_cast<float>(rng.Normal(0.0, stddev));
  }
}

FeatureStats ComputeFeatureStats(const Dataset& dataset) {
  const int64_t n = dataset.size();
  const int64_t f = dataset.feature_dim();
  NIID_CHECK_GE(n, 1);
  FeatureStats stats;
  stats.mean.assign(f, 0.f);
  stats.inv_std.assign(f, 1.f);
  std::vector<double> sum(f, 0.0), sq(f, 0.0);
  const float* data = dataset.features.data();
  for (int64_t i = 0; i < n; ++i) {
    const float* row = data + i * f;
    for (int64_t j = 0; j < f; ++j) {
      sum[j] += row[j];
      sq[j] += static_cast<double>(row[j]) * row[j];
    }
  }
  for (int64_t j = 0; j < f; ++j) {
    const double mean = sum[j] / n;
    const double var = std::max(sq[j] / n - mean * mean, 0.0);
    stats.mean[j] = static_cast<float>(mean);
    stats.inv_std[j] =
        static_cast<float>(1.0 / std::max(std::sqrt(var), 1e-7));
  }
  return stats;
}

void StandardizeFeatures(Dataset& dataset, const FeatureStats& stats) {
  const int64_t f = dataset.feature_dim();
  NIID_CHECK_EQ(static_cast<int64_t>(stats.mean.size()), f);
  float* data = dataset.features.data();
  for (int64_t i = 0; i < dataset.size(); ++i) {
    float* row = data + i * f;
    for (int64_t j = 0; j < f; ++j) {
      row[j] = (row[j] - stats.mean[j]) * stats.inv_std[j];
    }
  }
}

}  // namespace niid
