#ifndef NIID_DATA_TRANSFORMS_H_
#define NIID_DATA_TRANSFORMS_H_

#include "data/dataset.h"
#include "util/rng.h"

namespace niid {

/// Adds i.i.d. Gaussian noise with mean 0 and *variance* `variance` to every
/// feature, in place. This is the Gau(sigma * i / N) operation of the paper's
/// noise-based feature-skew partition (the paper parameterizes the Gaussian
/// by its variance).
void AddGaussianNoise(Dataset& dataset, double variance, Rng& rng);

/// Per-feature statistics computed on a training set.
struct FeatureStats {
  std::vector<float> mean;
  std::vector<float> inv_std;  ///< 1 / max(std, epsilon)
};

/// Computes per-feature mean and std over `dataset`.
FeatureStats ComputeFeatureStats(const Dataset& dataset);

/// Standardizes features in place using the given (train-set) statistics.
void StandardizeFeatures(Dataset& dataset, const FeatureStats& stats);

}  // namespace niid

#endif  // NIID_DATA_TRANSFORMS_H_
