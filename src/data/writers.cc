#include "data/writers.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>

namespace niid {
namespace {

void WriteBigEndian32(std::ofstream& out, uint32_t value) {
  const uint8_t bytes[4] = {
      static_cast<uint8_t>(value >> 24), static_cast<uint8_t>(value >> 16),
      static_cast<uint8_t>(value >> 8), static_cast<uint8_t>(value)};
  out.write(reinterpret_cast<const char*>(bytes), 4);
}

uint8_t QuantizePixel(float value) {
  const float clamped = std::clamp(value, 0.f, 1.f);
  return static_cast<uint8_t>(std::lround(clamped * 255.f));
}

}  // namespace

Status SaveIdx(const Dataset& dataset, const std::string& image_path,
               const std::string& label_path) {
  if (dataset.features.rank() != 4 || dataset.features.dim(1) != 1) {
    return Status::InvalidArgument(
        "SaveIdx requires [N, 1, H, W] features, got " +
        dataset.features.ShapeString());
  }
  for (int label : dataset.labels) {
    if (label < 0 || label > 255) {
      return Status::InvalidArgument("IDX labels must fit in uint8");
    }
  }
  std::ofstream images(image_path, std::ios::binary);
  if (!images) return Status::NotFound("cannot open: " + image_path);
  std::ofstream labels(label_path, std::ios::binary);
  if (!labels) return Status::NotFound("cannot open: " + label_path);

  const uint32_t n = static_cast<uint32_t>(dataset.size());
  WriteBigEndian32(images, 0x00000803);
  WriteBigEndian32(images, n);
  WriteBigEndian32(images, static_cast<uint32_t>(dataset.features.dim(2)));
  WriteBigEndian32(images, static_cast<uint32_t>(dataset.features.dim(3)));
  const float* src = dataset.features.data();
  for (int64_t i = 0; i < dataset.features.numel(); ++i) {
    const uint8_t pixel = QuantizePixel(src[i]);
    images.write(reinterpret_cast<const char*>(&pixel), 1);
  }

  WriteBigEndian32(labels, 0x00000801);
  WriteBigEndian32(labels, n);
  for (int label : dataset.labels) {
    const uint8_t byte = static_cast<uint8_t>(label);
    labels.write(reinterpret_cast<const char*>(&byte), 1);
  }
  if (!images.good() || !labels.good()) {
    return Status::DataLoss("IDX write failed");
  }
  return Status::Ok();
}

Status SaveCifar10(const Dataset& dataset, const std::string& path) {
  if (dataset.features.rank() != 4 || dataset.features.dim(1) != 3 ||
      dataset.features.dim(2) != 32 || dataset.features.dim(3) != 32) {
    return Status::InvalidArgument(
        "SaveCifar10 requires [N, 3, 32, 32] features, got " +
        dataset.features.ShapeString());
  }
  for (int label : dataset.labels) {
    if (label < 0 || label > 9) {
      return Status::InvalidArgument("CIFAR-10 labels must be 0..9");
    }
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::NotFound("cannot open: " + path);
  constexpr int64_t kPixels = 3 * 32 * 32;
  const float* src = dataset.features.data();
  for (int64_t i = 0; i < dataset.size(); ++i) {
    const uint8_t label = static_cast<uint8_t>(dataset.labels[i]);
    out.write(reinterpret_cast<const char*>(&label), 1);
    for (int64_t j = 0; j < kPixels; ++j) {
      const uint8_t pixel = QuantizePixel(src[i * kPixels + j]);
      out.write(reinterpret_cast<const char*>(&pixel), 1);
    }
  }
  if (!out.good()) return Status::DataLoss("CIFAR-10 write failed");
  return Status::Ok();
}

Status SaveLibsvm(const Dataset& dataset, const std::string& path,
                  float zero_threshold) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open: " + path);
  const int64_t features = dataset.feature_dim();
  const float* src = dataset.features.data();
  for (int64_t i = 0; i < dataset.size(); ++i) {
    if (dataset.num_classes == 2) {
      out << (dataset.labels[i] == 0 ? "-1" : "+1");
    } else {
      out << dataset.labels[i];
    }
    for (int64_t j = 0; j < features; ++j) {
      const float value = src[i * features + j];
      if (std::abs(value) > zero_threshold) {
        out << " " << (j + 1) << ":" << value;
      }
    }
    out << "\n";
  }
  out.flush();
  if (!out.good()) return Status::DataLoss("LIBSVM write failed");
  return Status::Ok();
}

}  // namespace niid
