#ifndef NIID_DATA_WRITERS_H_
#define NIID_DATA_WRITERS_H_

#include <string>

#include "data/dataset.h"
#include "util/status.h"

namespace niid {

/// Exporters for the standard on-disk formats the loaders read. They make
/// the synthetic datasets interchangeable with real ones: export a generated
/// dataset, point any MNIST/CIFAR/LIBSVM consumer (including this library's
/// own loaders) at the files.

/// Writes a single-channel image dataset as an IDX image + label file pair
/// (MNIST format). Pixels are clamped to [0, 1] and quantized to uint8.
/// Requires rank-4 features with channels == 1 and labels < 256.
Status SaveIdx(const Dataset& dataset, const std::string& image_path,
               const std::string& label_path);

/// Writes a 3x32x32 image dataset as a CIFAR-10 binary batch file.
/// Requires exactly that shape and labels in [0, 10).
Status SaveCifar10(const Dataset& dataset, const std::string& path);

/// Writes any dataset as LIBSVM text ("label idx:val ..."), emitting only
/// entries with |value| > zero_threshold (1-based feature indices). Binary
/// datasets map class 0 -> -1 and class 1 -> +1; multi-class datasets emit
/// the class id directly.
Status SaveLibsvm(const Dataset& dataset, const std::string& path,
                  float zero_threshold = 0.f);

}  // namespace niid

#endif  // NIID_DATA_WRITERS_H_
