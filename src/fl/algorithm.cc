#include "fl/algorithm.h"

#include "fl/fedavg.h"
#include "fl/fednova.h"
#include "fl/fedopt.h"
#include "fl/fedprox.h"
#include "fl/scaffold.h"

namespace niid {

StatusOr<std::unique_ptr<FlAlgorithm>> CreateAlgorithm(
    const std::string& name, const AlgorithmConfig& config) {
  if (name == "fedavg") {
    return std::unique_ptr<FlAlgorithm>(new FedAvg(config));
  }
  if (name == "fedprox") {
    return std::unique_ptr<FlAlgorithm>(new FedProx(config));
  }
  if (name == "scaffold") {
    return std::unique_ptr<FlAlgorithm>(new Scaffold(config));
  }
  if (name == "fednova") {
    return std::unique_ptr<FlAlgorithm>(new FedNova(config));
  }
  if (name == "fedadagrad") {
    return std::unique_ptr<FlAlgorithm>(
        new FedOpt(config, FedOptVariant::kAdagrad));
  }
  if (name == "fedadam") {
    return std::unique_ptr<FlAlgorithm>(
        new FedOpt(config, FedOptVariant::kAdam));
  }
  if (name == "fedyogi") {
    return std::unique_ptr<FlAlgorithm>(
        new FedOpt(config, FedOptVariant::kYogi));
  }
  return Status::InvalidArgument("unknown algorithm: " + name);
}

std::vector<std::string> AlgorithmNames() {
  return {"fedavg", "fedprox", "scaffold", "fednova"};
}

std::vector<std::string> ExtendedAlgorithmNames() {
  return {"fedavg",  "fedprox",    "scaffold", "fednova",
          "fedadam", "fedadagrad", "fedyogi"};
}

}  // namespace niid
