#include "fl/algorithm.h"

#include <memory>
#include <utility>

#include "fl/fedavg.h"
#include "fl/fednova.h"
#include "fl/fedopt.h"
#include "fl/fedprox.h"
#include "fl/scaffold.h"
#include "util/check.h"

namespace niid {
namespace {

template <typename T, typename... Args>
std::unique_ptr<FlAlgorithm> MakeAlgorithm(Args&&... args) {
  return std::make_unique<T>(std::forward<Args>(args)...);
}

}  // namespace

void FlAlgorithm::Aggregate(StateVector& global,
                            const std::vector<LocalUpdate>& updates,
                            const std::vector<StateSegment>& layout) {
  // Copy, then run the canonical reduction serially on one shard. The
  // sharded overload consumes its updates; this form exists so callers with
  // const update sets (tests, benches) keep working unchanged.
  std::vector<LocalUpdate> consumed(updates);
  ShardReducer reducer;
  reducer.Configure(1, nullptr, static_cast<int64_t>(consumed.size()));
  Aggregate(global, consumed, layout, reducer);
}

// NIID_HOT: per-round aggregation step shared by every weighted-average
// algorithm; the reducer owns the elementwise work, this frame only derives
// the per-update coefficients (exact integer/double scalar math, serial in
// slot order) and applies the reduced root.
void FlAlgorithm::WeightedAverageDeltas(StateVector& global,
                                        std::vector<LocalUpdate>& updates,
                                        const std::vector<StateSegment>& layout,
                                        float server_lr,
                                        bool average_bn_buffers,
                                        ShardReducer& reducer) {
  if (updates.empty()) return;
  double n = 0.0;
  for (const LocalUpdate& update : updates) n += update.num_samples;
  NIID_CHECK_GT(n, 0.0);
  // NOLINTNEXTLINE(niid-hot-alloc) grow-only round scratch
  coeff_scratch_.resize(updates.size());
  for (size_t j = 0; j < updates.size(); ++j) {
    NIID_CHECK_EQ(updates[j].delta.size(), global.size());
    coeff_scratch_[j] =
        server_lr * static_cast<float>(updates[j].num_samples / n);
  }
  const StateVector& acc =
      reducer.ReduceScaled(updates, coeff_scratch_, ShardReducer::Field::kDelta);
  SubtractOnSegments(global, acc, layout, average_bn_buffers);
}

// NIID_HOT: root application of the reduced aggregate.
void FlAlgorithm::SubtractOnSegments(StateVector& global,
                                     const StateVector& value,
                                     const std::vector<StateSegment>& layout,
                                     bool average_bn_buffers) {
  NIID_CHECK_EQ(value.size(), global.size());
  for (const StateSegment& seg : layout) {
    if (!seg.trainable && !average_bn_buffers) continue;
    for (int64_t i = seg.offset; i < seg.offset + seg.size; ++i) {
      global[i] -= value[i];
    }
  }
}

StatusOr<std::unique_ptr<FlAlgorithm>> CreateAlgorithm(
    const std::string& name, const AlgorithmConfig& config) {
  NIID_CHECK_GE(config.fedprox_mu, 0.f);
  NIID_CHECK_GT(config.server_lr, 0.f);
  NIID_CHECK(config.scaffold_variant == 1 || config.scaffold_variant == 2)
      << "scaffold_variant must be 1 or 2";
  NIID_CHECK_GT(config.fedopt_tau, 0.f);
  NIID_CHECK_GT(config.fedopt_server_lr, 0.f);
  if (name == "fedavg") {
    return MakeAlgorithm<FedAvg>(config);
  }
  if (name == "fedprox") {
    return MakeAlgorithm<FedProx>(config);
  }
  if (name == "scaffold") {
    return MakeAlgorithm<Scaffold>(config);
  }
  if (name == "fednova") {
    return MakeAlgorithm<FedNova>(config);
  }
  if (name == "fedadagrad") {
    return MakeAlgorithm<FedOpt>(config, FedOptVariant::kAdagrad);
  }
  if (name == "fedadam") {
    return MakeAlgorithm<FedOpt>(config, FedOptVariant::kAdam);
  }
  if (name == "fedyogi") {
    return MakeAlgorithm<FedOpt>(config, FedOptVariant::kYogi);
  }
  return Status::InvalidArgument("unknown algorithm: " + name);
}

std::vector<std::string> AlgorithmNames() {
  return {"fedavg", "fedprox", "scaffold", "fednova"};
}

std::vector<std::string> ExtendedAlgorithmNames() {
  return {"fedavg",  "fedprox",    "scaffold", "fednova",
          "fedadam", "fedadagrad", "fedyogi"};
}

}  // namespace niid
