#include "fl/algorithm.h"

#include <memory>
#include <utility>

#include "fl/fedavg.h"
#include "fl/fednova.h"
#include "fl/fedopt.h"
#include "fl/fedprox.h"
#include "fl/scaffold.h"
#include "util/check.h"

namespace niid {
namespace {

template <typename T, typename... Args>
std::unique_ptr<FlAlgorithm> MakeAlgorithm(Args&&... args) {
  return std::make_unique<T>(std::forward<Args>(args)...);
}

}  // namespace

StatusOr<std::unique_ptr<FlAlgorithm>> CreateAlgorithm(
    const std::string& name, const AlgorithmConfig& config) {
  NIID_CHECK_GE(config.fedprox_mu, 0.f);
  NIID_CHECK_GT(config.server_lr, 0.f);
  NIID_CHECK(config.scaffold_variant == 1 || config.scaffold_variant == 2)
      << "scaffold_variant must be 1 or 2";
  NIID_CHECK_GT(config.fedopt_tau, 0.f);
  NIID_CHECK_GT(config.fedopt_server_lr, 0.f);
  if (name == "fedavg") {
    return MakeAlgorithm<FedAvg>(config);
  }
  if (name == "fedprox") {
    return MakeAlgorithm<FedProx>(config);
  }
  if (name == "scaffold") {
    return MakeAlgorithm<Scaffold>(config);
  }
  if (name == "fednova") {
    return MakeAlgorithm<FedNova>(config);
  }
  if (name == "fedadagrad") {
    return MakeAlgorithm<FedOpt>(config, FedOptVariant::kAdagrad);
  }
  if (name == "fedadam") {
    return MakeAlgorithm<FedOpt>(config, FedOptVariant::kAdam);
  }
  if (name == "fedyogi") {
    return MakeAlgorithm<FedOpt>(config, FedOptVariant::kYogi);
  }
  return Status::InvalidArgument("unknown algorithm: " + name);
}

std::vector<std::string> AlgorithmNames() {
  return {"fedavg", "fedprox", "scaffold", "fednova"};
}

std::vector<std::string> ExtendedAlgorithmNames() {
  return {"fedavg",  "fedprox",    "scaffold", "fednova",
          "fedadam", "fedadagrad", "fedyogi"};
}

}  // namespace niid
