#ifndef NIID_FL_ALGORITHM_H_
#define NIID_FL_ALGORITHM_H_

#include <memory>
#include <string>
#include <vector>

#include "fl/client.h"
#include "fl/shard.h"
#include "fl/workspace.h"
#include "nn/parameters.h"
#include "util/status.h"

namespace niid {

/// Algorithm-specific knobs (beyond the shared LocalTrainOptions).
struct AlgorithmConfig {
  /// FedProx proximal weight mu (paper tunes it in {0.001, 0.01, 0.1, 1}).
  float fedprox_mu = 0.01f;
  /// SCAFFOLD control-variate update rule: 1 = option (i) (full-batch
  /// gradient at the global model), 2 = option (ii) (reuse local updates).
  int scaffold_variant = 2;
  /// Server learning rate eta of Algorithm 1 line 9 (1.0 = plain averaging,
  /// the setting the paper and reference implementation use).
  float server_lr = 1.0f;
  /// Server-side momentum on the aggregated delta (FedAvgM, Hsu et al. —
  /// the paper's reference [25]). 0 = plain FedAvg. Only honored by FedAvg.
  float server_momentum = 0.f;
  /// FedOpt (fedadam / fedyogi / fedadagrad) knobs, after Reddi et al.
  float fedopt_beta1 = 0.9f;
  float fedopt_beta2 = 0.99f;
  /// Adaptivity floor tau in the denominator sqrt(v) + tau.
  float fedopt_tau = 1e-3f;
  /// Server learning rate for the adaptive family (the per-coordinate step
  /// is ~ fedopt_server_lr once v warms up, so it is much smaller than the
  /// plain-averaging server_lr of 1).
  float fedopt_server_lr = 0.03f;
  /// When false, non-trainable buffers (BatchNorm statistics) are excluded
  /// from aggregation and parties keep their own — the FedBN-style
  /// aggregation the paper's Section 6.2 suggests (ablation).
  bool average_bn_buffers = true;
};

/// A federated optimization algorithm: how a party trains locally and how
/// the server folds the returned updates into the global model.
///
/// Thread-safety contract: RunClient may be called concurrently for
/// *different* clients within one round; any per-client state must live in
/// per-client slots, and any per-call scratch in the caller-owned
/// TrainContext (each concurrent call holds a distinct context). Initialize
/// and Aggregate are called serially.
class FlAlgorithm {
 public:
  virtual ~FlAlgorithm() = default;

  virtual std::string name() const = 0;

  /// Called once before the first round.
  virtual void Initialize(int num_clients, int64_t state_size) {
    (void)num_clients;
    (void)state_size;
  }

  /// Called serially before a round's (possibly concurrent) RunClient calls
  /// with the party ids about to train, so algorithms can set up per-client
  /// state without concurrent mutation — SCAFFOLD creates missing control
  /// variates here, which is what lets its per-client table stay sized
  /// O(ever-sampled) instead of O(num_clients) at cross-device scale.
  virtual void PrepareClients(const std::vector<int>& client_ids) {
    (void)client_ids;
  }

  /// Runs local training for one (sampled) party inside the checked-out
  /// workspace `ctx` (exclusively the caller's for the duration of the
  /// call).
  virtual LocalUpdate RunClient(Client& client, TrainContext& ctx,
                                const StateVector& global,
                                const LocalTrainOptions& options) = 0;

  /// Folds this round's updates into `global` (Algorithm 1 line 9/10).
  /// The algorithm derives one scale coefficient per update, hands the
  /// elementwise reduction to `reducer` (canonical pairwise tree,
  /// fl/shard.h — bit-identical for any shard/thread count), and applies
  /// only the reduced root to the global state. `updates` is consumed: the
  /// reduction scales and folds the update buffers in place (scalar fields
  /// survive untouched).
  virtual void Aggregate(StateVector& global, std::vector<LocalUpdate>& updates,
                         const std::vector<StateSegment>& layout,
                         ShardReducer& reducer) = 0;

  /// Convenience form for tests and benches: copies `updates` and runs the
  /// same canonical reduction serially on one shard, which is bit-identical
  /// to any sharded execution by construction.
  void Aggregate(StateVector& global, const std::vector<LocalUpdate>& updates,
                 const std::vector<StateSegment>& layout);

  /// Upload size in floats per participating party per round (communication
  /// accounting; SCAFFOLD doubles it).
  virtual int64_t UploadFloatsPerClient(int64_t state_size) const {
    return state_size;
  }

  /// Serializes the algorithm's durable server-side state (FedAvgM velocity,
  /// SCAFFOLD control variates, FedOpt moments) as opaque vectors for
  /// checkpointing. Stateless algorithms return {}.
  virtual std::vector<StateVector> SaveAlgorithmState() const { return {}; }

  /// Restores state captured by SaveAlgorithmState after Initialize was
  /// called with the same shape. Implementations validate every vector
  /// before mutating anything, so a failed load leaves the algorithm intact.
  virtual Status LoadAlgorithmState(const std::vector<StateVector>& state) {
    if (!state.empty()) {
      return Status::InvalidArgument(
          name() + " keeps no server state but the checkpoint carries " +
          std::to_string(state.size()) + " vector(s)");
    }
    return Status::Ok();
  }

 protected:
  /// Shared FedAvg-style weighted-average step:
  ///   global -= server_lr * sum_i (n_i / n) * delta_i
  /// with the sum reduced by `reducer` in canonical tree order. Buffer
  /// segments are skipped when average_bn_buffers is false (the reduction
  /// still covers them — only the application to `global` is gated).
  void WeightedAverageDeltas(StateVector& global,
                             std::vector<LocalUpdate>& updates,
                             const std::vector<StateSegment>& layout,
                             float server_lr, bool average_bn_buffers,
                             ShardReducer& reducer);

  /// global[i] -= value[i] on the layout segments selected by
  /// `average_bn_buffers` (non-trainable segments skip when it is false).
  static void SubtractOnSegments(StateVector& global, const StateVector& value,
                                 const std::vector<StateSegment>& layout,
                                 bool average_bn_buffers);

  /// Reused per-round coefficient scratch (grow-only, O(sampled parties)).
  std::vector<float> coeff_scratch_;
};

/// Factory: "fedavg", "fedprox", "scaffold", "fednova".
StatusOr<std::unique_ptr<FlAlgorithm>> CreateAlgorithm(
    const std::string& name, const AlgorithmConfig& config);

/// The paper's four algorithms, in Table 3 order.
std::vector<std::string> AlgorithmNames();

/// All registered algorithms, including the FedOpt extension family
/// (fedadam / fedadagrad / fedyogi).
std::vector<std::string> ExtendedAlgorithmNames();

}  // namespace niid

#endif  // NIID_FL_ALGORITHM_H_
