#include "fl/checkpoint.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "fl/compress.h"
#include "fl/robust.h"
#include "util/check.h"

namespace niid {
namespace {

constexpr char kMagic[8] = {'N', 'I', 'I', 'D', 'C', 'K', 'P', 'T'};
/// v1: pre-compression format. v2 adds the codec fingerprint (name,
/// error-feedback bit, codec seed), cumulative wire bytes, and per-party
/// error-feedback residuals. v3 adds the sparse party-id table (empty in
/// dense checkpoints, so dense v3 files carry 8 extra bytes over v2). v4
/// adds the scenario fingerprint and aggregator name (fl/scenario.h,
/// fl/robust.h) — both layers are stateless, so the fingerprint pair IS
/// their state. Readers accept all four; writers emit v4.
constexpr uint32_t kVersion = 4;

uint64_t Fnv1a(const char* data, size_t size) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

// ------------------------------------------------------------------ writer

template <typename T>
void AppendPod(std::string& out, const T& value) {
  out.append(reinterpret_cast<const char*>(&value), sizeof(T));
}

void AppendString(std::string& out, const std::string& value) {
  AppendPod(out, static_cast<uint64_t>(value.size()));
  out.append(value);
}

void AppendFloats(std::string& out, const StateVector& values) {
  AppendPod(out, static_cast<uint64_t>(values.size()));
  if (values.empty()) return;  // data() may be null on an empty vector
  out.append(reinterpret_cast<const char*>(values.data()),
             values.size() * sizeof(float));
}

void AppendDoubles(std::string& out, const std::vector<double>& values) {
  AppendPod(out, static_cast<uint64_t>(values.size()));
  if (values.empty()) return;  // data() may be null on an empty vector
  out.append(reinterpret_cast<const char*>(values.data()),
             values.size() * sizeof(double));
}

void AppendInt64s(std::string& out, const std::vector<int64_t>& values) {
  AppendPod(out, static_cast<uint64_t>(values.size()));
  if (values.empty()) return;  // data() may be null on an empty vector
  out.append(reinterpret_cast<const char*>(values.data()),
             values.size() * sizeof(int64_t));
}

void AppendRngState(std::string& out, const RngState& rng) {
  for (int i = 0; i < 4; ++i) AppendPod(out, rng.state[i]);
  AppendPod(out, static_cast<uint8_t>(rng.has_cached_normal ? 1 : 0));
  AppendPod(out, rng.cached_normal);
}

// ------------------------------------------------------------------ reader

/// Bounds-checked cursor over the in-memory file image. Every length field
/// is validated against the bytes actually present before any allocation or
/// copy, so hostile declared lengths fail cleanly instead of over-reading or
/// over-allocating.
class Cursor {
 public:
  Cursor(const char* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  bool ReadPod(T& value) {
    if (size_ - pos_ < sizeof(T)) return false;
    std::memcpy(&value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool ReadString(std::string& value) {
    uint64_t count = 0;
    if (!ReadPod(count)) return false;
    if (count > size_ - pos_) return false;
    value.assign(data_ + pos_, count);
    pos_ += count;
    return true;
  }

  bool ReadFloats(StateVector& values) {
    uint64_t count = 0;
    if (!ReadPod(count)) return false;
    if (count > (size_ - pos_) / sizeof(float)) return false;
    values.resize(count);
    if (count > 0) {
      std::memcpy(values.data(), data_ + pos_, count * sizeof(float));
    }
    pos_ += count * sizeof(float);
    return true;
  }

  bool ReadDoubles(std::vector<double>& values) {
    uint64_t count = 0;
    if (!ReadPod(count)) return false;
    if (count > (size_ - pos_) / sizeof(double)) return false;
    values.resize(count);
    if (count > 0) {
      std::memcpy(values.data(), data_ + pos_, count * sizeof(double));
    }
    pos_ += count * sizeof(double);
    return true;
  }

  bool ReadInt64s(std::vector<int64_t>& values) {
    uint64_t count = 0;
    if (!ReadPod(count)) return false;
    if (count > (size_ - pos_) / sizeof(int64_t)) return false;
    values.resize(count);
    if (count > 0) {
      std::memcpy(values.data(), data_ + pos_, count * sizeof(int64_t));
    }
    pos_ += count * sizeof(int64_t);
    return true;
  }

  bool ReadRngState(RngState& rng) {
    for (int i = 0; i < 4; ++i) {
      if (!ReadPod(rng.state[i])) return false;
    }
    uint8_t cached = 0;
    if (!ReadPod(cached)) return false;
    rng.has_cached_normal = cached != 0;
    return ReadPod(rng.cached_normal);
  }

  size_t remaining() const { return size_ - pos_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

bool AllFinite(const StateVector& values) {
  for (const float v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

bool AllFinite(const std::vector<double>& values) {
  for (const double v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

}  // namespace

Status WriteCheckpointFile(const ServerCheckpoint& checkpoint,
                           const std::string& path) {
  NIID_CHECK(!path.empty());
  std::string payload;
  payload.append(kMagic, sizeof(kMagic));
  AppendPod(payload, kVersion);
  AppendPod(payload, checkpoint.config_seed);
  AppendString(payload, checkpoint.algorithm);
  AppendString(payload, checkpoint.codec);
  AppendPod(payload, static_cast<uint8_t>(checkpoint.error_feedback ? 1 : 0));
  AppendPod(payload, checkpoint.codec_seed);
  AppendPod(payload, checkpoint.num_clients);
  AppendPod(payload, checkpoint.state_size);
  AppendPod(payload, checkpoint.rounds_completed);
  AppendPod(payload, checkpoint.cumulative_upload_floats);
  AppendPod(payload, checkpoint.cumulative_bytes_uplink);
  AppendRngState(payload, checkpoint.server_rng);
  AppendFloats(payload, checkpoint.global_state);
  AppendPod(payload, static_cast<uint64_t>(checkpoint.algorithm_state.size()));
  for (const StateVector& vec : checkpoint.algorithm_state) {
    AppendFloats(payload, vec);
  }
  AppendPod(payload, static_cast<uint64_t>(checkpoint.client_rng.size()));
  for (const RngState& rng : checkpoint.client_rng) {
    AppendRngState(payload, rng);
  }
  AppendPod(payload, static_cast<uint64_t>(checkpoint.client_buffers.size()));
  for (const StateVector& vec : checkpoint.client_buffers) {
    AppendFloats(payload, vec);
  }
  AppendPod(payload,
            static_cast<uint64_t>(checkpoint.client_residuals.size()));
  for (const StateVector& vec : checkpoint.client_residuals) {
    AppendFloats(payload, vec);
  }
  AppendPod(payload, static_cast<uint8_t>(checkpoint.sparse ? 1 : 0));
  AppendInt64s(payload, checkpoint.party_ids);
  AppendPod(payload, checkpoint.scenario_fingerprint);
  AppendString(payload, checkpoint.aggregator);
  AppendPod(payload, checkpoint.trial);
  AppendDoubles(payload, checkpoint.round_accuracy);
  AppendDoubles(payload, checkpoint.round_loss);
  AppendPod(payload, Fnv1a(payload.data(), payload.size()));

  // Atomic publication: write + flush the sibling tmp file, then rename over
  // the destination. POSIX rename is atomic within a filesystem, so readers
  // (and a resumed process after a crash) see either the old complete file
  // or the new complete file — never a torn write.
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) return Status::NotFound("cannot open for write: " + tmp_path);
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    out.flush();
    if (!out.good()) {
      return Status::DataLoss("write failed: " + tmp_path);
    }
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::DataLoss("rename failed: " + tmp_path + " -> " + path);
  }
  return Status::Ok();
}

StatusOr<ServerCheckpoint> ReadCheckpointFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open checkpoint: " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    return Status::DataLoss("read failed: " + path);
  }
  if (bytes.size() < sizeof(kMagic) + sizeof(uint32_t) + sizeof(uint64_t)) {
    return Status::DataLoss("checkpoint too small: " + path);
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::DataLoss("bad checkpoint magic in " + path);
  }
  const size_t body_size = bytes.size() - sizeof(uint64_t);
  uint64_t stored_checksum = 0;
  std::memcpy(&stored_checksum, bytes.data() + body_size, sizeof(uint64_t));
  if (Fnv1a(bytes.data(), body_size) != stored_checksum) {
    return Status::DataLoss("checkpoint checksum mismatch in " + path);
  }

  Cursor cursor(bytes.data() + sizeof(kMagic), body_size - sizeof(kMagic));
  uint32_t version = 0;
  if (!cursor.ReadPod(version)) {
    return Status::DataLoss("truncated checkpoint header");
  }
  if (version < 1 || version > kVersion) {
    return Status::InvalidArgument("unsupported checkpoint version " +
                                   std::to_string(version));
  }

  ServerCheckpoint checkpoint;
  uint64_t algorithm_vectors = 0;
  uint64_t num_client_rng = 0;
  uint64_t num_client_buffers = 0;
  bool parsed = cursor.ReadPod(checkpoint.config_seed) &&
                cursor.ReadString(checkpoint.algorithm);
  if (parsed && version >= 2) {
    uint8_t error_feedback = 0;
    parsed = cursor.ReadString(checkpoint.codec) &&
             cursor.ReadPod(error_feedback) &&
             cursor.ReadPod(checkpoint.codec_seed);
    checkpoint.error_feedback = error_feedback != 0;
  }
  parsed = parsed && cursor.ReadPod(checkpoint.num_clients) &&
           cursor.ReadPod(checkpoint.state_size) &&
           cursor.ReadPod(checkpoint.rounds_completed) &&
           cursor.ReadPod(checkpoint.cumulative_upload_floats);
  if (parsed && version >= 2) {
    parsed = cursor.ReadPod(checkpoint.cumulative_bytes_uplink);
  }
  parsed = parsed && cursor.ReadRngState(checkpoint.server_rng) &&
           cursor.ReadFloats(checkpoint.global_state) &&
           cursor.ReadPod(algorithm_vectors);
  if (!parsed) return Status::DataLoss("truncated checkpoint body");
  // Each vector header costs at least 8 bytes, so `remaining / 8` bounds the
  // plausible count before the reserve below.
  if (algorithm_vectors > cursor.remaining() / sizeof(uint64_t)) {
    return Status::DataLoss("implausible algorithm-state count");
  }
  checkpoint.algorithm_state.resize(algorithm_vectors);
  for (StateVector& vec : checkpoint.algorithm_state) {
    if (!cursor.ReadFloats(vec)) {
      return Status::DataLoss("truncated algorithm state");
    }
  }
  if (!cursor.ReadPod(num_client_rng)) {
    return Status::DataLoss("truncated client rng count");
  }
  if (num_client_rng > cursor.remaining() / (4 * sizeof(uint64_t))) {
    return Status::DataLoss("implausible client rng count");
  }
  checkpoint.client_rng.resize(num_client_rng);
  for (RngState& rng : checkpoint.client_rng) {
    if (!cursor.ReadRngState(rng)) {
      return Status::DataLoss("truncated client rng state");
    }
  }
  if (!cursor.ReadPod(num_client_buffers)) {
    return Status::DataLoss("truncated client buffer count");
  }
  if (num_client_buffers > cursor.remaining() / sizeof(uint64_t)) {
    return Status::DataLoss("implausible client buffer count");
  }
  checkpoint.client_buffers.resize(num_client_buffers);
  for (StateVector& vec : checkpoint.client_buffers) {
    if (!cursor.ReadFloats(vec)) {
      return Status::DataLoss("truncated client buffers");
    }
  }
  if (version >= 2) {
    uint64_t num_residuals = 0;
    if (!cursor.ReadPod(num_residuals)) {
      return Status::DataLoss("truncated client residual count");
    }
    if (num_residuals > cursor.remaining() / sizeof(uint64_t)) {
      return Status::DataLoss("implausible client residual count");
    }
    checkpoint.client_residuals.resize(num_residuals);
    for (StateVector& vec : checkpoint.client_residuals) {
      if (!cursor.ReadFloats(vec)) {
        return Status::DataLoss("truncated client residuals");
      }
    }
  }
  if (version >= 3) {
    uint8_t sparse = 0;
    if (!cursor.ReadPod(sparse) || !cursor.ReadInt64s(checkpoint.party_ids)) {
      return Status::DataLoss("truncated party id table");
    }
    checkpoint.sparse = sparse != 0;
  }
  if (version >= 4) {
    if (!cursor.ReadPod(checkpoint.scenario_fingerprint) ||
        !cursor.ReadString(checkpoint.aggregator)) {
      return Status::DataLoss("truncated scenario fingerprint");
    }
  }
  if (!cursor.ReadPod(checkpoint.trial) ||
      !cursor.ReadDoubles(checkpoint.round_accuracy) ||
      !cursor.ReadDoubles(checkpoint.round_loss)) {
    return Status::DataLoss("truncated checkpoint trailer");
  }
  if (cursor.remaining() != 0) {
    return Status::DataLoss("trailing bytes after checkpoint payload");
  }

  // Semantic validation: a checkpoint describes a real federation and a
  // finite model, whatever the bytes claim.
  if (checkpoint.num_clients <= 0 || checkpoint.state_size <= 0) {
    return Status::InvalidArgument("checkpoint has no clients or empty state");
  }
  if (static_cast<int64_t>(checkpoint.global_state.size()) !=
      checkpoint.state_size) {
    return Status::InvalidArgument("global state size mismatch");
  }
  // Dense checkpoints carry one entry per party; sparse checkpoints carry
  // one entry per listed party id (strictly ascending, in range).
  if (!checkpoint.sparse && !checkpoint.party_ids.empty()) {
    return Status::InvalidArgument("dense checkpoint with a party id table");
  }
  const int64_t party_entries =
      checkpoint.sparse ? static_cast<int64_t>(checkpoint.party_ids.size())
                        : checkpoint.num_clients;
  if (checkpoint.sparse) {
    if (party_entries > checkpoint.num_clients) {
      return Status::InvalidArgument("more party ids than parties");
    }
    int64_t previous = -1;
    for (const int64_t id : checkpoint.party_ids) {
      if (id <= previous || id >= checkpoint.num_clients) {
        return Status::InvalidArgument(
            "party ids must be strictly ascending and in range");
      }
      previous = id;
    }
  }
  if (static_cast<int64_t>(checkpoint.client_rng.size()) != party_entries ||
      static_cast<int64_t>(checkpoint.client_buffers.size()) !=
          party_entries) {
    return Status::InvalidArgument("per-client state count mismatch");
  }
  // v1 files predate the codec layer: they describe an identity-codec run
  // with no residuals and 4 wire bytes per uploaded float.
  if (version < 2) {
    checkpoint.cumulative_bytes_uplink =
        checkpoint.cumulative_upload_floats *
        static_cast<int64_t>(sizeof(float));
  }
  if (!ParseCodec(checkpoint.codec).ok()) {
    return Status::InvalidArgument("unknown checkpoint codec '" +
                                   checkpoint.codec + "'");
  }
  if (!ParseAggregator(checkpoint.aggregator).ok()) {
    return Status::InvalidArgument("unknown checkpoint aggregator '" +
                                   checkpoint.aggregator + "'");
  }
  // An absent residual section (v1 files, or writers that never compressed)
  // normalizes to one empty residual per party entry.
  if (checkpoint.client_residuals.empty()) {
    checkpoint.client_residuals.resize(party_entries);
  }
  if (static_cast<int64_t>(checkpoint.client_residuals.size()) !=
      party_entries) {
    return Status::InvalidArgument("per-client residual count mismatch");
  }
  for (const StateVector& vec : checkpoint.client_residuals) {
    if (!vec.empty() &&
        static_cast<int64_t>(vec.size()) != checkpoint.state_size) {
      return Status::InvalidArgument("checkpoint residual size mismatch");
    }
    if (!AllFinite(vec)) {
      return Status::DataLoss("non-finite value in client residuals");
    }
  }
  if (checkpoint.rounds_completed < 0) {
    return Status::InvalidArgument("negative round counter");
  }
  if (!AllFinite(checkpoint.global_state)) {
    return Status::DataLoss("non-finite value in checkpointed global state");
  }
  for (const StateVector& vec : checkpoint.algorithm_state) {
    if (!AllFinite(vec)) {
      return Status::DataLoss("non-finite value in algorithm state");
    }
  }
  for (const StateVector& vec : checkpoint.client_buffers) {
    if (!AllFinite(vec)) {
      return Status::DataLoss("non-finite value in client buffers");
    }
  }
  if (!AllFinite(checkpoint.round_accuracy) ||
      !AllFinite(checkpoint.round_loss)) {
    return Status::DataLoss("non-finite value in recorded curves");
  }
  return checkpoint;
}

}  // namespace niid
