#ifndef NIID_FL_CHECKPOINT_H_
#define NIID_FL_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "nn/parameters.h"
#include "util/rng.h"
#include "util/status.h"

namespace niid {

/// Full durable state of a federated run at a round boundary. Restoring this
/// into a freshly built server (same config) reproduces the continuation of
/// the interrupted run bit-identically: every Rng stream, the global model,
/// the per-algorithm server state (momentum, control variates, adaptive
/// moments), and the parties' FedBN buffer segments are all captured.
struct ServerCheckpoint {
  /// Fingerprint fields: a checkpoint only restores into a server built from
  /// the same seed / algorithm / federation shape.
  uint64_t config_seed = 0;
  std::string algorithm;
  int64_t num_clients = 0;
  int64_t state_size = 0;

  /// Update-compression fingerprint (format v2; files written before the
  /// codec layer read back with these defaults, i.e. compression off). The
  /// codec name, error-feedback bit, and codec seed must all match the
  /// restoring server — the rand-k index stream and residual dynamics are
  /// part of what makes a resumed run bit-identical.
  std::string codec = "none";
  bool error_feedback = false;
  uint64_t codec_seed = 0;

  int64_t rounds_completed = 0;
  int64_t cumulative_upload_floats = 0;
  /// Cumulative wire bytes (v2; v1 files reconstruct the identity-codec
  /// value, 4 bytes per uploaded float).
  int64_t cumulative_bytes_uplink = 0;
  RngState server_rng;
  StateVector global_state;
  /// Opaque per-algorithm state vectors (FlAlgorithm::SaveAlgorithmState).
  std::vector<StateVector> algorithm_state;
  std::vector<RngState> client_rng;
  /// Per-party durable BatchNorm buffer segments (empty when the party has
  /// none).
  std::vector<StateVector> client_buffers;
  /// Per-party error-feedback residuals (v2; empty until the party's first
  /// compressed round with error feedback on).
  std::vector<StateVector> client_residuals;
  /// Sparse party engine (v3). When false (dense), the per-party vectors
  /// above hold all `num_clients` parties in id order and party_ids is
  /// empty. When true, entry i of the per-party vectors belongs to party
  /// party_ids[i]; ids are strictly ascending and only ever-sampled parties
  /// appear, so the file stays O(sampled) even when num_clients is 1M. The
  /// shard/reduction topology is deliberately NOT serialized — it is derived
  /// from ServerConfig at restore time, and aggregation is bit-identical
  /// across shard counts anyway.
  bool sparse = false;
  std::vector<int64_t> party_ids;

  /// Scenario + robust-aggregation fingerprint (v4; files written before the
  /// scenario layer read back with these defaults, i.e. scenario off and the
  /// plain mean). Both layers are stateless — pure functions of config +
  /// seed — so exact resume needs only proof that the restoring server
  /// reconstructs the same schedule: ScenarioPlan::Fingerprint() (0 when the
  /// scenario is disabled) and the aggregator name.
  uint64_t scenario_fingerprint = 0;
  std::string aggregator = "mean";

  /// Experiment-runner bookkeeping (unused by FederatedServer itself): which
  /// trial this belongs to and the accuracy/loss curve accumulated so far.
  int64_t trial = 0;
  std::vector<double> round_accuracy;
  std::vector<double> round_loss;
};

/// Serializes `checkpoint` to `path` atomically: the bytes are written to
/// `path + ".tmp"` and renamed over `path` only after a successful flush, so
/// a crash mid-write can never leave a truncated file at `path` — the
/// previous checkpoint (if any) survives intact. The payload carries a
/// versioned magic header and an FNV-1a checksum trailer.
Status WriteCheckpointFile(const ServerCheckpoint& checkpoint,
                           const std::string& path);

/// Parses a file written by WriteCheckpointFile. Hardened like LoadModel:
/// wrong magic / version, truncation, declared lengths exceeding the actual
/// file size, checksum mismatch, and non-finite payloads all return a clean
/// error Status — never a crash or an over-allocation.
StatusOr<ServerCheckpoint> ReadCheckpointFile(const std::string& path);

}  // namespace niid

#endif  // NIID_FL_CHECKPOINT_H_
