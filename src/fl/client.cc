#include "fl/client.h"

#include <algorithm>
#include <numeric>

#include "nn/loss.h"
#include "nn/optimizer.h"
#include "util/check.h"

namespace niid {

Client::Client(int id, Dataset data, const ModelFactory& factory,
               Rng init_rng)
    : id_(id), data_(std::move(data)), rng_(init_rng.Split()) {
  model_ = factory(init_rng);
  NIID_CHECK_GT(data_.size(), 0) << "client " << id << " has no data";
}

LocalUpdate Client::Train(const StateVector& global_state,
                          const LocalTrainOptions& options,
                          const GradHook& grad_hook) {
  NIID_CHECK_GE(options.local_epochs, 1);
  NIID_CHECK_GE(options.batch_size, 1);

  // Receive the global model. With keep_local_buffers (FedBN-style ablation)
  // the client's own BatchNorm statistics survive the download.
  if (options.keep_local_buffers) {
    StateVector merged = global_state;
    const StateVector local = FlattenState(*model_);
    int64_t offset = 0;
    for (const StateSegment& seg : StateLayout(*model_)) {
      if (!seg.trainable) {
        for (int64_t i = 0; i < seg.size; ++i) {
          merged[seg.offset + i] = local[seg.offset + i];
        }
      }
      offset += seg.size;
    }
    NIID_CHECK_EQ(offset, static_cast<int64_t>(merged.size()));
    LoadState(*model_, merged);
  } else {
    LoadState(*model_, global_state);
  }
  model_->SetTraining(true);

  // A fresh optimizer per round: momentum does not leak across rounds,
  // matching the reference implementation.
  SgdOptimizer optimizer(*model_, options.learning_rate, options.momentum,
                         options.weight_decay);

  LocalUpdate update;
  update.client_id = id_;
  update.num_samples = data_.size();

  std::vector<int64_t> order(data_.size());
  std::iota(order.begin(), order.end(), 0);
  double loss_sum = 0.0;
  std::vector<int64_t> batch_indices;
  for (int epoch = 0; epoch < options.local_epochs; ++epoch) {
    rng_.Shuffle(order);
    for (int64_t start = 0; start < data_.size();
         start += options.batch_size) {
      const int64_t count =
          std::min<int64_t>(options.batch_size, data_.size() - start);
      batch_indices.assign(order.begin() + start,
                           order.begin() + start + count);
      auto [x, y] = GatherBatch(data_, batch_indices);
      ZeroGrads(*model_);
      const Tensor logits = model_->Forward(x);
      LossResult loss = SoftmaxCrossEntropy(logits, y);
      model_->Backward(loss.grad_logits);
      if (grad_hook) grad_hook(*model_);
      optimizer.Step();
      loss_sum += loss.loss;
      ++update.tau;
    }
  }
  update.average_loss = update.tau > 0 ? loss_sum / update.tau : 0.0;

  // Delta w_i = w^t - w_i^t (Algorithm 1, line 22).
  update.delta = global_state;
  const StateVector local_state = FlattenState(*model_);
  NIID_CHECK_EQ(update.delta.size(), local_state.size());
  for (size_t i = 0; i < update.delta.size(); ++i) {
    update.delta[i] -= local_state[i];
  }
  return update;
}

StateVector Client::FullBatchGradient(const StateVector& state,
                                      int batch_size) {
  NIID_CHECK_GE(batch_size, 1);
  LoadState(*model_, state);
  const bool was_training = model_->training();
  // Use training mode so BatchNorm behaves as it does during local SGD.
  model_->SetTraining(true);
  ZeroGrads(*model_);
  const double total = static_cast<double>(data_.size());
  std::vector<int64_t> indices;
  for (int64_t start = 0; start < data_.size(); start += batch_size) {
    const int64_t count = std::min<int64_t>(batch_size, data_.size() - start);
    indices.resize(count);
    std::iota(indices.begin(), indices.end(), start);
    auto [x, y] = GatherBatch(data_, indices);
    const Tensor logits = model_->Forward(x);
    LossResult loss = SoftmaxCrossEntropy(logits, y);
    // SoftmaxCrossEntropy scales by 1/count; rescale so the accumulated
    // gradient is the dataset mean.
    loss.grad_logits.Scale(static_cast<float>(count / total));
    model_->Backward(loss.grad_logits);
  }
  StateVector grad = GradState(*model_);
  model_->SetTraining(was_training);
  return grad;
}

}  // namespace niid
