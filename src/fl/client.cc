#include "fl/client.h"

#include <algorithm>
#include <numeric>

#include "fl/scenario.h"
#include "nn/loss.h"
#include "util/check.h"

namespace niid {

Client::Client(int id, Dataset data, Rng init_rng)
    : id_(id), data_(std::move(data)), rng_(init_rng.Split()) {
  NIID_CHECK_GT(data_.size(), 0) << "client " << id << " has no data";
}

Client::Client(int id, Rng rng) : id_(id), rng_(rng) {}

void Client::LoadPersonalState(Module& model,
                               const std::vector<StateSegment>& layout,
                               const StateVector& global) const {
  if (buffer_state_.empty()) {
    // No local statistics yet: global buffers equal fresh-initialization
    // values under keep_local_buffers aggregation (buffer segments are never
    // averaged), so a full load reproduces a newly constructed private model.
    LoadState(model, global);
    return;
  }
  LoadTrainableState(model, layout, global);
  LoadBufferState(model, layout, buffer_state_);
}

// NIID_HOT: per-round local training; all scratch lives in the leased
// TrainContext, so steady-state rounds perform no heap allocation.
LocalUpdate Client::Train(TrainContext& ctx, const StateVector& global_state,
                          const LocalTrainOptions& options,
                          const GradHook& grad_hook) {
  NIID_CHECK_GE(options.local_epochs, 1);
  NIID_CHECK_GE(options.batch_size, 1);
  // Shell clients (sparse engine) must have been filled before training.
  NIID_CHECK_GT(data_.size(), 0) << "client " << id_ << " has no data";

  // Receive the global model into the borrowed workspace. With
  // keep_local_buffers (FedBN-style ablation) the party's own BatchNorm
  // statistics overlay the download.
  if (options.keep_local_buffers) {
    LoadPersonalState(*ctx.model, ctx.layout, global_state);
  } else {
    LoadState(*ctx.model, global_state);
  }
  ctx.model->SetTraining(true);

  // Momentum does not leak across rounds or parties (fresh-optimizer
  // semantics of the reference implementation), but the optimizer object —
  // and with it the velocity storage and cached parameter list — persists
  // with the workspace.
  if (ctx.optimizer == nullptr) {
    // NOLINTNEXTLINE(niid-hot-alloc) one-time lazy init at first checkout
    ctx.optimizer = std::make_unique<SgdOptimizer>(
        *ctx.model, options.learning_rate, options.momentum,
        options.weight_decay);
  } else {
    ctx.optimizer->set_learning_rate(options.learning_rate);
    ctx.optimizer->set_momentum(options.momentum);
    ctx.optimizer->set_weight_decay(options.weight_decay);
    ctx.optimizer->ResetMomentum();
  }

  LocalUpdate update;
  update.client_id = id_;
  update.num_samples = data_.size();

  ctx.order.resize(data_.size());  // NOLINT(niid-hot-alloc) grow-only scratch
  std::iota(ctx.order.begin(), ctx.order.end(), 0);
  double loss_sum = 0.0;
  for (int epoch = 0; epoch < options.local_epochs; ++epoch) {
    rng_.Shuffle(ctx.order);
    for (int64_t start = 0; start < data_.size();
         start += options.batch_size) {
      const int64_t count =
          std::min<int64_t>(options.batch_size, data_.size() - start);
      ctx.batch_indices.assign(ctx.order.begin() + start,
                               ctx.order.begin() + start + count);
      GatherBatchInto(data_, ctx.batch_indices, ctx.batch_x, ctx.batch_y);
      if (options.scenario != nullptr &&
          (options.drift_generation > 0 || options.flip_labels)) {
        // Scenario label transforms key on the LOCAL sample index (stable
        // across epochs and shuffles), so a given sample always trains
        // under the same label regardless of batch composition.
        for (size_t k = 0; k < ctx.batch_indices.size(); ++k) {
          ctx.batch_y[k] = options.scenario->TransformLabel(
              id_, options.drift_generation, ctx.batch_indices[k],
              ctx.batch_y[k], options.flip_labels);
        }
      }
      ctx.optimizer->ZeroGrads();
      const Tensor& logits = ctx.model->Forward(ctx.batch_x);
      SoftmaxCrossEntropyInto(logits, ctx.batch_y, ctx.loss);
      ctx.model->Backward(ctx.loss.grad_logits);
      if (grad_hook) grad_hook(*ctx.model);
      ctx.optimizer->Step();
      loss_sum += ctx.loss.loss;
      ++update.tau;
    }
  }
  update.average_loss = update.tau > 0 ? loss_sum / update.tau : 0.0;

  // Delta w_i = w^t - w_i^t (Algorithm 1, line 22).
  FlattenStateInto(*ctx.model, ctx.local_state);
  SubtractInto(global_state, ctx.local_state, update.delta);

  // Park the party's durable statistics before the workspace moves on to
  // another party.
  if (options.keep_local_buffers) {
    SaveBufferState(*ctx.model, ctx.layout, buffer_state_);
  }
  return update;
}

// NIID_HOT: called per round by control-variate algorithms (Scaffold).
void Client::FullBatchGradientInto(TrainContext& ctx, const StateVector& state,
                                   int batch_size, StateVector& out) {
  NIID_CHECK_GE(batch_size, 1);
  LoadState(*ctx.model, state);
  const bool was_training = ctx.model->training();
  // Use training mode so BatchNorm behaves as it does during local SGD.
  ctx.model->SetTraining(true);
  for (Parameter* p : ctx.params) p->grad.Fill(0.f);
  const double total = static_cast<double>(data_.size());
  for (int64_t start = 0; start < data_.size(); start += batch_size) {
    const int64_t count = std::min<int64_t>(batch_size, data_.size() - start);
    ctx.batch_indices.resize(count);  // NOLINT(niid-hot-alloc) grow-only
    std::iota(ctx.batch_indices.begin(), ctx.batch_indices.end(), start);
    GatherBatchInto(data_, ctx.batch_indices, ctx.batch_x, ctx.batch_y);
    const Tensor& logits = ctx.model->Forward(ctx.batch_x);
    SoftmaxCrossEntropyInto(logits, ctx.batch_y, ctx.loss);
    // SoftmaxCrossEntropy scales by 1/count; rescale so the accumulated
    // gradient is the dataset mean.
    ctx.loss.grad_logits.Scale(static_cast<float>(count / total));
    ctx.model->Backward(ctx.loss.grad_logits);
  }
  GradStateInto(ctx.params, ctx.layout, out);
  ctx.model->SetTraining(was_training);
}

}  // namespace niid
