#include "fl/client.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace niid {

Client::Client(int id, Dataset data, const ModelFactory& factory,
               Rng init_rng)
    : id_(id), data_(std::move(data)), rng_(init_rng.Split()) {
  model_ = factory(init_rng);
  NIID_CHECK_GT(data_.size(), 0) << "client " << id << " has no data";
  layout_ = StateLayout(*model_);
}

LocalUpdate Client::Train(const StateVector& global_state,
                          const LocalTrainOptions& options,
                          const GradHook& grad_hook) {
  NIID_CHECK_GE(options.local_epochs, 1);
  NIID_CHECK_GE(options.batch_size, 1);

  // Receive the global model. With keep_local_buffers (FedBN-style ablation)
  // the client's own BatchNorm statistics survive the download: only the
  // trainable segments of the cached layout are overwritten in place.
  if (options.keep_local_buffers) {
    LoadTrainableState(*model_, layout_, global_state);
  } else {
    LoadState(*model_, global_state);
  }
  model_->SetTraining(true);

  // Momentum does not leak across rounds (fresh-optimizer semantics of the
  // reference implementation), but the optimizer object — and with it the
  // velocity storage and cached parameter list — persists across rounds.
  if (optimizer_ == nullptr) {
    optimizer_ = std::make_unique<SgdOptimizer>(*model_, options.learning_rate,
                                                options.momentum,
                                                options.weight_decay);
  } else {
    optimizer_->set_learning_rate(options.learning_rate);
    optimizer_->set_momentum(options.momentum);
    optimizer_->set_weight_decay(options.weight_decay);
    optimizer_->ResetMomentum();
  }

  LocalUpdate update;
  update.client_id = id_;
  update.num_samples = data_.size();

  order_.resize(data_.size());
  std::iota(order_.begin(), order_.end(), 0);
  double loss_sum = 0.0;
  for (int epoch = 0; epoch < options.local_epochs; ++epoch) {
    rng_.Shuffle(order_);
    for (int64_t start = 0; start < data_.size();
         start += options.batch_size) {
      const int64_t count =
          std::min<int64_t>(options.batch_size, data_.size() - start);
      batch_indices_.assign(order_.begin() + start,
                            order_.begin() + start + count);
      GatherBatchInto(data_, batch_indices_, batch_x_, batch_y_);
      optimizer_->ZeroGrads();
      const Tensor& logits = model_->Forward(batch_x_);
      SoftmaxCrossEntropyInto(logits, batch_y_, loss_);
      model_->Backward(loss_.grad_logits);
      if (grad_hook) grad_hook(*model_);
      optimizer_->Step();
      loss_sum += loss_.loss;
      ++update.tau;
    }
  }
  update.average_loss = update.tau > 0 ? loss_sum / update.tau : 0.0;

  // Delta w_i = w^t - w_i^t (Algorithm 1, line 22).
  FlattenStateInto(*model_, local_state_);
  SubtractInto(global_state, local_state_, update.delta);
  return update;
}

StateVector Client::FullBatchGradient(const StateVector& state,
                                      int batch_size) {
  NIID_CHECK_GE(batch_size, 1);
  LoadState(*model_, state);
  const bool was_training = model_->training();
  // Use training mode so BatchNorm behaves as it does during local SGD.
  model_->SetTraining(true);
  ZeroGrads(*model_);
  const double total = static_cast<double>(data_.size());
  for (int64_t start = 0; start < data_.size(); start += batch_size) {
    const int64_t count = std::min<int64_t>(batch_size, data_.size() - start);
    batch_indices_.resize(count);
    std::iota(batch_indices_.begin(), batch_indices_.end(), start);
    GatherBatchInto(data_, batch_indices_, batch_x_, batch_y_);
    const Tensor& logits = model_->Forward(batch_x_);
    SoftmaxCrossEntropyInto(logits, batch_y_, loss_);
    // SoftmaxCrossEntropy scales by 1/count; rescale so the accumulated
    // gradient is the dataset mean.
    loss_.grad_logits.Scale(static_cast<float>(count / total));
    model_->Backward(loss_.grad_logits);
  }
  StateVector grad = GradState(*model_);
  model_->SetTraining(was_training);
  return grad;
}

}  // namespace niid
