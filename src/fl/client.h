#ifndef NIID_FL_CLIENT_H_
#define NIID_FL_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "nn/loss.h"
#include "nn/models/factory.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "nn/parameters.h"
#include "util/rng.h"

namespace niid {

/// Hyper-parameters of one local-training invocation (Algorithm 1, party
/// side). Paper defaults: E=10, B=64, SGD(lr, momentum 0.9).
struct LocalTrainOptions {
  int local_epochs = 10;
  int batch_size = 64;
  float learning_rate = 0.01f;
  float momentum = 0.9f;
  float weight_decay = 0.f;
  /// FedBN-style ablation: when true the client keeps its own BatchNorm
  /// running statistics instead of adopting the server's.
  bool keep_local_buffers = false;
};

/// What a party returns to the server after local training.
struct LocalUpdate {
  int client_id = -1;
  int64_t num_samples = 0;
  /// Delta w_i = w^t - w_i^t (state-size; positive delta means the client
  /// moved "downhill" from the global model).
  StateVector delta;
  /// tau_i: number of local SGD steps taken (mini-batches processed).
  int64_t tau = 0;
  /// Mean training loss over all local steps.
  double average_loss = 0.0;
  /// SCAFFOLD only: Delta c_i (state-size, zero at buffer positions).
  StateVector delta_c;
};

/// One federated party: owns its local dataset, a private model instance
/// (architecture identical to the server's) and a private RNG stream.
class Client {
 public:
  /// `init_rng` seeds both the throwaway model initialization and the
  /// client's private shuffling/noise stream.
  Client(int id, Dataset data, const ModelFactory& factory, Rng init_rng);

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  int id() const { return id_; }
  int64_t num_samples() const { return data_.size(); }
  const Dataset& data() const { return data_; }
  Module& model() { return *model_; }

  /// Borrows `pool` for the model's layer-level GEMMs (see
  /// Module::SetComputePool). The pool must outlive the client. Results are
  /// bit-identical with or without a pool, so this is purely a speed knob.
  void set_compute_pool(ThreadPool* pool) { model_->SetComputePool(pool); }

  /// Called after every backward pass and before the SGD step; algorithms
  /// inject their gradient corrections here (FedProx's proximal term,
  /// SCAFFOLD's control variates).
  using GradHook = std::function<void(Module& model)>;

  /// Runs LocalTraining(i, w^t) of Algorithm 1: loads `global_state`, runs
  /// `options.local_epochs` epochs of mini-batch SGD (invoking `grad_hook`
  /// if non-null), and returns the resulting update. delta_c is left empty.
  LocalUpdate Train(const StateVector& global_state,
                    const LocalTrainOptions& options,
                    const GradHook& grad_hook = nullptr);

  /// Computes the full-batch gradient of the local loss at `state` (used by
  /// SCAFFOLD's control-variate option (i)). Returns a state-size vector.
  StateVector FullBatchGradient(const StateVector& state, int batch_size);

 private:
  int id_;
  Dataset data_;
  std::unique_ptr<Module> model_;
  Rng rng_;

  /// Parameter layout of model_, computed once; the parameter list of a
  /// module is immutable after construction so this never goes stale.
  std::vector<StateSegment> layout_;
  /// Persistent optimizer: momentum is reset every round (fresh-optimizer
  /// semantics) but the velocity storage and cached parameter list persist,
  /// keeping the steady-state training step free of heap allocations.
  std::unique_ptr<SgdOptimizer> optimizer_;
  // Reusable per-round scratch (see DESIGN.md "allocation policy").
  Tensor batch_x_;
  std::vector<int> batch_y_;
  std::vector<int64_t> order_;
  std::vector<int64_t> batch_indices_;
  LossResult loss_;
  StateVector local_state_;
};

}  // namespace niid

#endif  // NIID_FL_CLIENT_H_
