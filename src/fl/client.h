#ifndef NIID_FL_CLIENT_H_
#define NIID_FL_CLIENT_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "data/dataset.h"
#include "fl/workspace.h"
#include "nn/module.h"
#include "nn/parameters.h"
#include "util/rng.h"

namespace niid {

class ScenarioPlan;

/// Hyper-parameters of one local-training invocation (Algorithm 1, party
/// side). Paper defaults: E=10, B=64, SGD(lr, momentum 0.9).
struct LocalTrainOptions {
  int local_epochs = 10;
  int batch_size = 64;
  float learning_rate = 0.01f;
  float momentum = 0.9f;
  float weight_decay = 0.f;
  /// FedBN-style ablation: when true the client keeps its own BatchNorm
  /// running statistics instead of adopting the server's.
  bool keep_local_buffers = false;
  /// Scenario label transforms (fl/scenario.h), applied to each gathered
  /// batch. Null outside scenario runs — the zero-cost default. Kept as a
  /// plain pointer + POD fields so copying options per sampled party stays
  /// allocation-free.
  const ScenarioPlan* scenario = nullptr;
  /// Drift generation this party trains under (0 = partition-time labels).
  int drift_generation = 0;
  /// Adversarial label-flip party: trains on y -> C-1-y.
  bool flip_labels = false;
};

/// What a party returns to the server after local training.
struct LocalUpdate {
  int client_id = -1;
  int64_t num_samples = 0;
  /// Delta w_i = w^t - w_i^t (state-size; positive delta means the client
  /// moved "downhill" from the global model).
  StateVector delta;
  /// tau_i: number of local SGD steps taken (mini-batches processed).
  int64_t tau = 0;
  /// Mean training loss over all local steps.
  double average_loss = 0.0;
  /// SCAFFOLD only: Delta c_i (state-size, zero at buffer positions).
  StateVector delta_c;
};

/// One federated party. A client owns only what is durably ITS OWN between
/// rounds: the local dataset, a private RNG stream, and — under FedBN-style
/// `keep_local_buffers` — its packed BatchNorm buffer segments. Model,
/// optimizer, and training scratch live in a borrowed TrainContext
/// (fl/workspace.h), so simulating N parties costs O(num_threads) model
/// replicas, not O(N).
class Client {
 public:
  /// `init_rng` seeds the client's private shuffling/noise stream (one
  /// Split, matching the historical stream derivation bit-for-bit).
  Client(int id, Dataset data, Rng init_rng);

  /// Shell constructor for the sparse party engine: a reusable per-slot
  /// client whose dataset is filled in (mutable_data + a PartySource) and
  /// whose identity/rng are reinstalled (Rebind + RestoreRngState) each time
  /// the slot impersonates a different sampled party. `rng` is installed
  /// as-is — no Split — because sparse streams are derived with
  /// DeriveStreamSeed, not from a parent generator.
  Client(int id, Rng rng);

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Repoints this slot at party `id`. Sparse engine only; the caller must
  /// also reinstall the party's rng state, dataset, and durable buffers.
  void Rebind(int id) { id_ = id; }

  int id() const { return id_; }
  int64_t num_samples() const { return data_.size(); }
  const Dataset& data() const { return data_; }
  /// Slot refill target for the sparse engine (SubsetInto semantics).
  Dataset& mutable_data() { return data_; }

  /// Called after every backward pass and before the SGD step; algorithms
  /// inject their gradient corrections here (FedProx's proximal term,
  /// SCAFFOLD's control variates).
  using GradHook = std::function<void(Module& model)>;

  /// Runs LocalTraining(i, w^t) of Algorithm 1 inside `ctx`: loads
  /// `global_state` (merged with this party's saved buffer segments when
  /// `options.keep_local_buffers`), runs `options.local_epochs` epochs of
  /// mini-batch SGD (invoking `grad_hook` if non-null), and returns the
  /// resulting update; delta_c is left empty. The context's model is fully
  /// reloaded, so results do not depend on which context the caller hands
  /// in or on who used it before.
  LocalUpdate Train(TrainContext& ctx, const StateVector& global_state,
                    const LocalTrainOptions& options,
                    const GradHook& grad_hook = nullptr);

  /// Computes the full-batch gradient of the local loss at `state` into
  /// `out` (state-sized; zero at buffer positions), reusing `ctx` scratch —
  /// zero allocations after first use. Used by SCAFFOLD's control-variate
  /// option (i) every round, hence the Into form.
  void FullBatchGradientInto(TrainContext& ctx, const StateVector& state,
                             int batch_size, StateVector& out);

  /// Installs this party's personalized view of `global` into `model`:
  /// trainable segments from `global`, buffer segments from the party's
  /// durable store — or from `global` when the party has not yet trained
  /// with keep_local_buffers (fresh BatchNorm statistics are deterministic,
  /// so this matches the historical private-model behavior bit-for-bit).
  /// `layout` must be StateLayout(model).
  void LoadPersonalState(Module& model,
                         const std::vector<StateSegment>& layout,
                         const StateVector& global) const;

  /// True once the party holds its own BatchNorm buffer segments.
  bool has_local_buffers() const { return !buffer_state_.empty(); }

  // Checkpoint surface: a party's durable cross-round state is exactly its
  // private rng stream, (under FedBN-style aggregation) its packed buffer
  // segments, and (under compressed uploads with error feedback) its codec
  // residual — snapshot and reinstall all three for crash-safe resume.
  RngState SaveRngState() const { return rng_.SaveState(); }
  void RestoreRngState(const RngState& state) { rng_.RestoreState(state); }
  const StateVector& buffer_state() const { return buffer_state_; }
  void set_buffer_state(StateVector state) {
    buffer_state_ = std::move(state);
  }
  const StateVector& residual() const { return residual_; }
  StateVector* mutable_residual() { return &residual_; }
  void set_residual(StateVector residual) { residual_ = std::move(residual); }

 private:
  int id_;
  Dataset data_;
  Rng rng_;
  /// Durable per-party state under FedBN-style aggregation: the model's
  /// non-trainable segments, packed (SaveBufferState). Empty until the first
  /// keep_local_buffers round.
  StateVector buffer_state_;
  /// Durable error-feedback residual (fl/compress.h): what this party's
  /// previous compressed uploads discarded, folded into its next update.
  /// Empty until the first error-feedback round.
  StateVector residual_;
};

}  // namespace niid

#endif  // NIID_FL_CLIENT_H_
