#include "fl/compress.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <numeric>

#include "tensor/kernels.h"
#include "util/check.h"

namespace niid {
namespace {

// splitmix64-style avalanche, the same finalizer FaultPlan uses: mixes the
// (seed, round, client) tuple into an Rng seed so nearby tuples land on
// unrelated index streams.
uint64_t Mix(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

// Wire codec tags. Payload layout (all fields little-endian pods):
//   header: uint32 tag, uint32 round, uint32 client, uint64 n
//   int8/int4: uint64 num_segments, {float lo, float scale} per segment,
//              then n codes (int8: one byte each; int4: two per byte,
//              low nibble first)
//   topk:      uint64 k, k x uint32 indices (strictly increasing),
//              k x float values
//   randk:     uint64 k, k x float values (indices are replayed from the
//              seeded per-(round, client) stream, so they never ship)
constexpr uint32_t kTagInt8 = 0x38746e69;   // "int8"
constexpr uint32_t kTagInt4 = 0x34746e69;   // "int4"
constexpr uint32_t kTagTopK = 0x6b706f74;   // "topk"
constexpr uint32_t kTagRandK = 0x6b646e72;  // "rndk"

uint32_t CodecTag(CodecKind codec) {
  switch (codec) {
    case CodecKind::kInt8:
      return kTagInt8;
    case CodecKind::kInt4:
      return kTagInt4;
    case CodecKind::kTopK:
      return kTagTopK;
    case CodecKind::kRandK:
      return kTagRandK;
    case CodecKind::kIdentity:
      break;
  }
  NIID_CHECK(false) << "identity codec has no wire tag";
  return 0;
}

void AppendBytes(std::vector<uint8_t>& out, const void* data, size_t size) {
  const size_t old = out.size();
  out.resize(old + size);  // grow-only: payload slots are reused each round
  std::memcpy(out.data() + old, data, size);
}

template <typename T>
void AppendPod(std::vector<uint8_t>& out, const T& value) {
  AppendBytes(out, &value, sizeof(T));
}

/// Bounds-checked cursor over a wire payload, mirroring the checkpoint
/// reader: every declared length is validated against the bytes actually
/// present before any copy, so corrupted payloads fail cleanly.
class ByteCursor {
 public:
  ByteCursor(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  bool ReadPod(T& value) {
    if (size_ - pos_ < sizeof(T)) return false;
    std::memcpy(&value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  /// Borrows `count` raw bytes without copying.
  const uint8_t* Borrow(size_t count) {
    if (size_ - pos_ < count) return nullptr;
    const uint8_t* p = data_ + pos_;
    pos_ += count;
    return p;
  }

  size_t remaining() const { return size_ - pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

// NIID_HOT: nibble pack for int4 — two codes per byte, low nibble first.
void PackNibbles(int64_t n, const uint8_t* codes, uint8_t* packed) {
  const int64_t pairs = n / 2;
  for (int64_t i = 0; i < pairs; ++i) {
    packed[i] = static_cast<uint8_t>(codes[2 * i] |
                                     (codes[2 * i + 1] << 4));
  }
  if (n & 1) packed[pairs] = codes[n - 1];
}

// NIID_HOT: nibble unpack, the exact inverse of PackNibbles.
void UnpackNibbles(int64_t n, const uint8_t* packed, uint8_t* codes) {
  const int64_t pairs = n / 2;
  for (int64_t i = 0; i < pairs; ++i) {
    codes[2 * i] = packed[i] & 0x0f;
    codes[2 * i + 1] = packed[i] >> 4;
  }
  if (n & 1) codes[n - 1] = packed[pairs] & 0x0f;
}

int QuantQmax(CodecKind codec) {
  return codec == CodecKind::kInt8 ? 255 : 15;
}

}  // namespace

StatusOr<CodecKind> ParseCodec(const std::string& name) {
  if (name == "none" || name == "identity") return CodecKind::kIdentity;
  if (name == "int8") return CodecKind::kInt8;
  if (name == "int4") return CodecKind::kInt4;
  if (name == "topk") return CodecKind::kTopK;
  if (name == "randk") return CodecKind::kRandK;
  return Status::InvalidArgument(
      "unknown codec '" + name +
      "' (expected none, int8, int4, topk, or randk)");
}

std::string CodecName(CodecKind codec) {
  switch (codec) {
    case CodecKind::kIdentity:
      return "none";
    case CodecKind::kInt8:
      return "int8";
    case CodecKind::kInt4:
      return "int4";
    case CodecKind::kTopK:
      return "topk";
    case CodecKind::kRandK:
      return "randk";
  }
  return "unknown";
}

UpdateCodec::UpdateCodec(const CompressionConfig& config, uint64_t server_seed,
                         std::vector<StateSegment> layout, int64_t state_size)
    : config_(config), layout_(std::move(layout)), state_size_(state_size) {
  NIID_CHECK_GT(state_size_, 0);
  NIID_CHECK_GT(config_.sparsity, 0.0);
  NIID_CHECK_LE(config_.sparsity, 1.0);
  // A fixed offset (distinct from FaultPlan's) keeps the derived index
  // stream disjoint from both the server seed and the fault stream.
  base_seed_ = config_.seed != 0
                   ? config_.seed
                   : Mix(server_seed + 0x2545f4914f6cdd1dULL);
}

int64_t UpdateCodec::SparseK() const {
  const int64_t k =
      static_cast<int64_t>(std::llround(config_.sparsity *
                                        static_cast<double>(state_size_)));
  return std::min<int64_t>(std::max<int64_t>(k, 1), state_size_);
}

Rng UpdateCodec::IndexRng(int round, int client) const {
  uint64_t seed = base_seed_;
  seed = Mix(seed ^ (static_cast<uint64_t>(round) + 0x632be59bd9b4e019ULL));
  seed = Mix(seed ^ (static_cast<uint64_t>(client) + 0xd6e8feb86659fd93ULL));
  return Rng(seed);
}

// NIID_HOT: per-client encode, called from the round worker lambda. All
// buffers are grow-only scratch (TrainContext's CodecScratch, the slot's
// payload, the client's residual), so steady-state rounds stay off the
// allocator once the high-water sizes are reached.
void UpdateCodec::Encode(int round, int client, const StateVector& delta,
                         StateVector* residual, CodecScratch& scratch,
                         EncodedDelta& out) const {
  NIID_CHECK(enabled());
  NIID_CHECK_EQ(static_cast<int64_t>(delta.size()), state_size_);
  const int64_t n = state_size_;

  // Error feedback: encode (delta + residual) instead of delta; what the
  // codec then discards becomes the next residual.
  const float* src = delta.data();
  if (config_.error_feedback) {
    NIID_CHECK(residual != nullptr);
    scratch.corrected.resize(n);  // NOLINT(niid-hot-alloc) grow-only scratch
    KernelCopy(n, delta.data(), scratch.corrected.data());
    if (!residual->empty()) {
      NIID_CHECK_EQ(static_cast<int64_t>(residual->size()), n);
      KernelAxpy(n, 1.0f, residual->data(), scratch.corrected.data());
    }
    src = scratch.corrected.data();
    residual->resize(n);  // NOLINT(niid-hot-alloc) durable, sized once
  }

  out.bytes.clear();
  AppendPod(out.bytes, CodecTag(config_.codec));
  AppendPod(out.bytes, static_cast<uint32_t>(round));
  AppendPod(out.bytes, static_cast<uint32_t>(client));
  AppendPod(out.bytes, static_cast<uint64_t>(n));

  switch (config_.codec) {
    case CodecKind::kInt8:
    case CodecKind::kInt4: {
      const int qmax = QuantQmax(config_.codec);
      scratch.codes.resize(n);  // NOLINT(niid-hot-alloc) grow-only scratch
      AppendPod(out.bytes, static_cast<uint64_t>(layout_.size()));
      // Residual starts at the corrected value; each segment then subtracts
      // its reconstruction via the same dequant kernel with negated
      // (scale, lo) — fma(q, -s, -l) == -fma(q, s, l) exactly.
      if (config_.error_feedback) {
        KernelCopy(n, src, residual->data());
      }
      for (const StateSegment& segment : layout_) {
        const float* x = src + segment.offset;
        float lo = 0.f;
        float hi = 0.f;
        KernelMinMax(segment.size, x, &lo, &hi);
        const float scale = (hi - lo) / static_cast<float>(qmax);
        const float inv_scale = scale > 0.f ? 1.0f / scale : 0.f;
        AppendPod(out.bytes, lo);
        AppendPod(out.bytes, scale);
        uint8_t* q = scratch.codes.data() + segment.offset;
        KernelQuantizeAffine(segment.size, x, lo, inv_scale, qmax, q);
        if (config_.error_feedback) {
          KernelDequantAxpy(segment.size, q, -scale, -lo,
                            residual->data() + segment.offset);
        }
      }
      if (config_.codec == CodecKind::kInt8) {
        AppendBytes(out.bytes, scratch.codes.data(), n);
      } else {
        const int64_t packed = (n + 1) / 2;
        const size_t old = out.bytes.size();
        // NOLINTNEXTLINE(niid-hot-alloc) grow-only payload slot
        out.bytes.resize(old + packed);
        PackNibbles(n, scratch.codes.data(), out.bytes.data() + old);
      }
      break;
    }
    case CodecKind::kTopK: {
      const int64_t k = SparseK();
      scratch.magnitudes.resize(n);  // NOLINT(niid-hot-alloc) grow-only
      KernelAbs(n, src, scratch.magnitudes.data());
      // Threshold = the kth largest magnitude. The kth order statistic is a
      // VALUE of the multiset, so it does not depend on nth_element's
      // implementation; ties at the threshold are kept in index order.
      std::nth_element(scratch.magnitudes.begin(),
                       scratch.magnitudes.begin() + (k - 1),
                       scratch.magnitudes.end(), std::greater<float>());
      const float threshold = scratch.magnitudes[k - 1];
      const int64_t strictly = KernelCountAbsGreater(n, src, threshold);
      int64_t ties_needed = k - strictly;
      scratch.indices.clear();
      for (int64_t i = 0; i < n; ++i) {
        const float a = std::fabs(src[i]);
        if (a > threshold) {
          // NOLINTNEXTLINE(niid-hot-alloc) grow-only scratch
          scratch.indices.push_back(static_cast<uint32_t>(i));
        } else if (a == threshold && ties_needed > 0) {
          --ties_needed;
          // NOLINTNEXTLINE(niid-hot-alloc) grow-only scratch
          scratch.indices.push_back(static_cast<uint32_t>(i));
        }
      }
      NIID_CHECK_EQ(static_cast<int64_t>(scratch.indices.size()), k);
      AppendPod(out.bytes, static_cast<uint64_t>(k));
      AppendBytes(out.bytes, scratch.indices.data(),
                  static_cast<size_t>(k) * sizeof(uint32_t));
      if (config_.error_feedback) {
        KernelCopy(n, src, residual->data());
      }
      for (int64_t j = 0; j < k; ++j) {
        const uint32_t idx = scratch.indices[j];
        AppendPod(out.bytes, src[idx]);
        if (config_.error_feedback) (*residual)[idx] = 0.f;
      }
      break;
    }
    case CodecKind::kRandK: {
      const int64_t k = SparseK();
      // Partial Fisher-Yates over the index deck, drawn from the pure
      // per-(round, client) stream: the server replays the identical draw,
      // so only the k values cross the wire.
      scratch.indices.resize(n);  // NOLINT(niid-hot-alloc) grow-only
      std::iota(scratch.indices.begin(), scratch.indices.end(), 0u);
      Rng rng = IndexRng(round, client);
      for (int64_t j = 0; j < k; ++j) {
        const int64_t pick =
            j + static_cast<int64_t>(rng.UniformInt(
                    static_cast<uint64_t>(n - j)));
        std::swap(scratch.indices[j], scratch.indices[pick]);
      }
      AppendPod(out.bytes, static_cast<uint64_t>(k));
      if (config_.error_feedback) {
        KernelCopy(n, src, residual->data());
      }
      for (int64_t j = 0; j < k; ++j) {
        const uint32_t idx = scratch.indices[j];
        AppendPod(out.bytes, src[idx]);
        if (config_.error_feedback) (*residual)[idx] = 0.f;
      }
      break;
    }
    case CodecKind::kIdentity:
      break;  // unreachable: enabled() checked above
  }
}

// NIID_HOT: serial per-arrival decode in RunRound's post-processing loop.
Status UpdateCodec::Decode(int round, int client, const EncodedDelta& in,
                           StateVector& delta, CodecScratch& scratch) const {
  NIID_CHECK(enabled());
  ByteCursor cursor(in.bytes.data(), in.bytes.size());
  uint32_t tag = 0;
  uint32_t wire_round = 0;
  uint32_t wire_client = 0;
  uint64_t n = 0;
  if (!cursor.ReadPod(tag) || !cursor.ReadPod(wire_round) ||
      !cursor.ReadPod(wire_client) || !cursor.ReadPod(n)) {
    return Status::DataLoss("truncated codec header from client " +
                            std::to_string(client));
  }
  if (tag != CodecTag(config_.codec)) {
    return Status::DataLoss("codec tag mismatch from client " +
                            std::to_string(client));
  }
  if (wire_round != static_cast<uint32_t>(round) ||
      wire_client != static_cast<uint32_t>(client)) {
    return Status::DataLoss("payload bound to another (round, client) cell");
  }
  if (n != static_cast<uint64_t>(state_size_)) {
    return Status::DataLoss("encoded state size mismatch from client " +
                            std::to_string(client));
  }

  delta.resize(state_size_);  // NOLINT(niid-hot-alloc) already state-sized
  KernelFill(state_size_, 0.f, delta.data());

  switch (config_.codec) {
    case CodecKind::kInt8:
    case CodecKind::kInt4: {
      uint64_t segments = 0;
      if (!cursor.ReadPod(segments) || segments != layout_.size()) {
        return Status::DataLoss("segment count mismatch from client " +
                                std::to_string(client));
      }
      const int64_t code_bytes = config_.codec == CodecKind::kInt8
                                     ? state_size_
                                     : (state_size_ + 1) / 2;
      if (cursor.remaining() !=
          segments * 2 * sizeof(float) + static_cast<size_t>(code_bytes)) {
        return Status::DataLoss("quantized payload length mismatch");
      }
      scratch.magnitudes.resize(2 * segments);  // NOLINT(niid-hot-alloc)
      for (uint64_t s = 0; s < 2 * segments; ++s) {
        if (!cursor.ReadPod(scratch.magnitudes[s])) {
          return Status::DataLoss("truncated segment scales");
        }
      }
      const uint8_t* codes = cursor.Borrow(code_bytes);
      if (codes == nullptr) {
        return Status::DataLoss("truncated quantized codes");
      }
      if (config_.codec == CodecKind::kInt4) {
        scratch.codes.resize(state_size_);  // NOLINT(niid-hot-alloc)
        UnpackNibbles(state_size_, codes, scratch.codes.data());
        codes = scratch.codes.data();
      }
      for (size_t s = 0; s < layout_.size(); ++s) {
        const StateSegment& segment = layout_[s];
        const float lo = scratch.magnitudes[2 * s];
        const float scale = scratch.magnitudes[2 * s + 1];
        KernelDequantAxpy(segment.size, codes + segment.offset, scale, lo,
                          delta.data() + segment.offset);
      }
      break;
    }
    case CodecKind::kTopK: {
      uint64_t k = 0;
      if (!cursor.ReadPod(k) || k != static_cast<uint64_t>(SparseK())) {
        return Status::DataLoss("top-k cardinality mismatch from client " +
                                std::to_string(client));
      }
      if (cursor.remaining() != k * (sizeof(uint32_t) + sizeof(float))) {
        return Status::DataLoss("top-k payload length mismatch");
      }
      const uint8_t* raw_indices = cursor.Borrow(k * sizeof(uint32_t));
      const uint8_t* raw_values = cursor.Borrow(k * sizeof(float));
      NIID_CHECK(raw_indices != nullptr && raw_values != nullptr);
      int64_t previous = -1;
      for (uint64_t j = 0; j < k; ++j) {
        uint32_t idx = 0;
        float value = 0.f;
        std::memcpy(&idx, raw_indices + j * sizeof(uint32_t), sizeof(idx));
        std::memcpy(&value, raw_values + j * sizeof(float), sizeof(value));
        if (static_cast<int64_t>(idx) <= previous ||
            static_cast<int64_t>(idx) >= state_size_) {
          return Status::DataLoss("top-k indices not strictly increasing");
        }
        previous = idx;
        delta[idx] = value;
      }
      break;
    }
    case CodecKind::kRandK: {
      uint64_t k = 0;
      if (!cursor.ReadPod(k) || k != static_cast<uint64_t>(SparseK())) {
        return Status::DataLoss("rand-k cardinality mismatch from client " +
                                std::to_string(client));
      }
      if (cursor.remaining() != k * sizeof(float)) {
        return Status::DataLoss("rand-k payload length mismatch");
      }
      // Replay the client's index draw bit-for-bit from the shared stream.
      scratch.indices.resize(state_size_);  // NOLINT(niid-hot-alloc)
      std::iota(scratch.indices.begin(), scratch.indices.end(), 0u);
      Rng rng = IndexRng(round, client);
      for (uint64_t j = 0; j < k; ++j) {
        const uint64_t pick =
            j + rng.UniformInt(static_cast<uint64_t>(state_size_) - j);
        std::swap(scratch.indices[j], scratch.indices[pick]);
        float value = 0.f;
        if (!cursor.ReadPod(value)) {
          return Status::DataLoss("truncated rand-k values");
        }
        delta[scratch.indices[j]] = value;
      }
      break;
    }
    case CodecKind::kIdentity:
      break;  // unreachable: enabled() checked above
  }
  if (cursor.remaining() != 0) {
    return Status::DataLoss("trailing bytes after codec payload");
  }
  return Status::Ok();
}

}  // namespace niid
