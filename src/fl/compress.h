#ifndef NIID_FL_COMPRESS_H_
#define NIID_FL_COMPRESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "nn/parameters.h"
#include "util/rng.h"
#include "util/status.h"

namespace niid {

/// Update-compression codecs (DESIGN.md §13). The codec layer sits between a
/// party's local-training output and server aggregation: the worker encodes
/// the state delta into a compact wire payload, the server decodes it back
/// into a state-sized delta and aggregates the DECODED update, so the
/// existing ValidateUpdate finiteness/norm gate runs on exactly what would
/// be averaged.
enum class CodecKind {
  kIdentity,  ///< no codec: today's byte-for-byte float path
  kInt8,      ///< per-segment affine uint8 quantization (4x code size)
  kInt4,      ///< per-segment affine nibble quantization (8x code size)
  kTopK,      ///< keep the k largest-magnitude coordinates (index + value)
  kRandK,     ///< keep k seeded-random coordinates (value only; the index
              ///< stream is replayed server-side, like FaultPlan)
};

/// "none"/"identity", "int8", "int4", "topk", "randk".
StatusOr<CodecKind> ParseCodec(const std::string& name);
std::string CodecName(CodecKind codec);

struct CompressionConfig {
  CodecKind codec = CodecKind::kIdentity;
  /// Fraction of coordinates kept by topk/randk: k = clamp(round(f*n), 1, n).
  double sparsity = 0.05;
  /// Client-held error-feedback residuals: each party folds what previous
  /// rounds' compression discarded back into its next update, so compressed
  /// FedAvg/FedProx/FedNova track the uncompressed oracle.
  bool error_feedback = false;
  /// Seed of the random-k index stream. 0 derives it from the server seed,
  /// keeping codec draws independent of sampling/training/fault streams.
  uint64_t seed = 0;

  bool enabled() const { return codec != CodecKind::kIdentity; }
};

/// One encoded update's wire payload. Owned per round-slot by the server and
/// reused across rounds (grow-only), so steady-state encoding allocates
/// nothing once the high-water payload size is reached.
struct EncodedDelta {
  std::vector<uint8_t> bytes;
};

/// Reusable codec scratch, carried by TrainContext (client-side encode) and
/// by the server (serial decode). Grow-only, sized on first use.
struct CodecScratch {
  std::vector<float> corrected;    ///< delta + residual (error feedback)
  std::vector<uint8_t> codes;      ///< quantized codes / unpacked nibbles
  std::vector<float> magnitudes;   ///< |x| copy for the top-k threshold scan
  std::vector<uint32_t> indices;   ///< selected coordinates / rand-k deck
};

/// Encode/decode for one federation. Stateless across calls: the rand-k
/// index stream is a pure function of (seed, round, client), so Encode can
/// run concurrently for different clients and Decode replays the identical
/// index set server-side without shipping indices.
class UpdateCodec {
 public:
  /// `layout` is the model's cached segment layout (quantization scales are
  /// per tensor segment, so boundaries match layer parameters);
  /// `server_seed` anchors the derived rand-k stream when config.seed == 0.
  UpdateCodec(const CompressionConfig& config, uint64_t server_seed,
              std::vector<StateSegment> layout, int64_t state_size);

  bool enabled() const { return config_.enabled(); }
  const CompressionConfig& config() const { return config_; }

  /// Coordinates kept per update by the sparsifying codecs.
  int64_t SparseK() const;

  /// Client-side: encodes `delta` into `out` (overwritten). With error
  /// feedback on, `residual` (the party's durable residual store; empty
  /// until first use) is folded into the encoded value and replaced by the
  /// new compression error. Must be called at most once per (round, client).
  void Encode(int round, int client, const StateVector& delta,
              StateVector* residual, CodecScratch& scratch,
              EncodedDelta& out) const;

  /// Server-side: decodes `in` into `delta` (state-sized, overwritten).
  /// Hardened like the checkpoint reader: truncation, wrong codec tag,
  /// mismatched shape, or implausible lengths return an error Status — the
  /// caller counts that as a rejected update, never averages it.
  Status Decode(int round, int client, const EncodedDelta& in,
                StateVector& delta, CodecScratch& scratch) const;

  /// Wire bytes of one uncompressed state delta (the accounting baseline).
  int64_t UncompressedBytes() const {
    return state_size_ * static_cast<int64_t>(sizeof(float));
  }

 private:
  Rng IndexRng(int round, int client) const;

  CompressionConfig config_;
  uint64_t base_seed_ = 0;
  std::vector<StateSegment> layout_;
  int64_t state_size_ = 0;
};

}  // namespace niid

#endif  // NIID_FL_COMPRESS_H_
