#include "fl/faults.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace niid {
namespace {

// splitmix64-style avalanche: mixes the (seed, round, client, stream) tuple
// into an Rng seed. Nearby tuples land on unrelated streams.
uint64_t Mix(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

FaultPlan::FaultPlan(const FaultConfig& config, uint64_t server_seed)
    : config_(config) {
  for (const double rate : {config.drop_rate, config.crash_rate,
                            config.straggle_rate, config.corrupt_rate}) {
    NIID_CHECK_GE(rate, 0.0);
    NIID_CHECK_LE(rate, 1.0);
  }
  NIID_CHECK_LE(config.drop_rate + config.crash_rate + config.straggle_rate +
                    config.corrupt_rate,
                1.0)
      << "fault rates are mutually exclusive probabilities";
  NIID_CHECK_GT(config.straggle_floor, 0.0);
  NIID_CHECK_LE(config.straggle_floor, 1.0);
  // A fixed offset keeps the derived fault stream disjoint from the server's
  // own seed even when config.seed == 0.
  base_seed_ = config.seed != 0
                   ? config.seed
                   : Mix(server_seed + 0x9e3779b97f4a7c15ULL);
}

Rng FaultPlan::CellRng(int round, int client, uint64_t stream) const {
  uint64_t seed = base_seed_;
  seed = Mix(seed ^ (static_cast<uint64_t>(round) + 0x632be59bd9b4e019ULL));
  seed = Mix(seed ^ (static_cast<uint64_t>(client) + 0xd6e8feb86659fd93ULL));
  seed = Mix(seed ^ stream);
  return Rng(seed);
}

FaultDecision FaultPlan::Decide(int round, int client) const {
  NIID_CHECK_GE(round, 0);
  NIID_CHECK_GE(client, 0);
  FaultDecision decision;
  if (!config_.enabled()) return decision;
  Rng rng = CellRng(round, client, /*stream=*/0);
  // One uniform, cascading thresholds: the four faults are mutually
  // exclusive and each fires with exactly its configured probability.
  const double u = rng.Uniform();
  double threshold = config_.drop_rate;
  if (u < threshold) {
    decision.type = FaultType::kDrop;
    decision.work_fraction = 0.0;
    return decision;
  }
  threshold += config_.crash_rate;
  if (u < threshold) {
    decision.type = FaultType::kCrash;
    // Crashers die anywhere in the round; they always do some work first.
    decision.work_fraction = rng.Uniform(config_.straggle_floor, 1.0);
    return decision;
  }
  threshold += config_.straggle_rate;
  if (u < threshold) {
    decision.type = FaultType::kStraggle;
    decision.work_fraction = rng.Uniform(config_.straggle_floor, 1.0);
    return decision;
  }
  threshold += config_.corrupt_rate;
  if (u < threshold) {
    decision.type = FaultType::kCorrupt;
    const uint64_t mode = rng.UniformInt(3);
    decision.corruption = mode == 0 ? CorruptionMode::kNaN
                          : mode == 1 ? CorruptionMode::kInf
                                      : CorruptionMode::kNormBlowup;
  }
  return decision;
}

void FaultPlan::Corrupt(const FaultDecision& decision, int round, int client,
                        LocalUpdate& update) const {
  NIID_CHECK(decision.type == FaultType::kCorrupt);
  NIID_CHECK(!update.delta.empty());
  // A separate stream index so corruption positions are independent of the
  // Decide draw.
  Rng rng = CellRng(round, client, /*stream=*/1);
  switch (decision.corruption) {
    case CorruptionMode::kNaN:
    case CorruptionMode::kInf: {
      const float poison =
          decision.corruption == CorruptionMode::kNaN
              ? std::numeric_limits<float>::quiet_NaN()
              : std::numeric_limits<float>::infinity();
      // A handful of poisoned coordinates — realistic bit-rot is sparse, and
      // the validator must catch it anyway.
      const int hits = 1 + static_cast<int>(rng.UniformInt(8));
      for (int h = 0; h < hits; ++h) {
        update.delta[rng.UniformInt(update.delta.size())] = poison;
      }
      if (!update.delta_c.empty()) {
        update.delta_c[rng.UniformInt(update.delta_c.size())] = poison;
      }
      break;
    }
    case CorruptionMode::kNormBlowup: {
      // Finite but enormous: slips past a finiteness-only check, which is
      // exactly why ValidateUpdate also norm-caps.
      const float blowup =
          static_cast<float>(rng.Uniform(1e6, 1e8));
      for (float& v : update.delta) v *= blowup;
      break;
    }
  }
}

}  // namespace niid
