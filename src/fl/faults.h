#ifndef NIID_FL_FAULTS_H_
#define NIID_FL_FAULTS_H_

#include <cstdint>

#include "fl/client.h"
#include "util/rng.h"

namespace niid {

/// Deterministic client-failure model for the federated simulation. Real FL
/// orchestrators treat failure as the common case: parties drop out before
/// training, crash mid-round, straggle (finish only part of their local
/// work — the device-heterogeneity setting FedNova normalizes for), or
/// return garbage. Rates are per (round, client) probabilities; at most one
/// fault fires per party per round.
struct FaultConfig {
  /// Party is unavailable this round: sampled but never trains.
  double drop_rate = 0.0;
  /// Party crashes mid-round: it does (part of) the local work, but the
  /// update never reaches the server.
  double crash_rate = 0.0;
  /// Party straggles: local epochs are truncated to a random fraction in
  /// [straggle_floor, 1), so tau_i varies across parties within a round.
  double straggle_rate = 0.0;
  /// Lower bound of the straggler's kept-epoch fraction.
  double straggle_floor = 0.25;
  /// Party uploads a corrupted update (NaN / Inf / norm blow-up) for the
  /// server-side ValidateUpdate guard to catch.
  double corrupt_rate = 0.0;
  /// Seed of the fault stream. 0 derives it from the server seed, keeping
  /// fault schedules independent of the sampling and training streams.
  uint64_t seed = 0;

  bool enabled() const {
    return drop_rate > 0.0 || crash_rate > 0.0 || straggle_rate > 0.0 ||
           corrupt_rate > 0.0;
  }
};

enum class FaultType { kNone, kDrop, kCrash, kStraggle, kCorrupt };

enum class CorruptionMode { kNaN, kInf, kNormBlowup };

/// The fault (if any) a given party suffers in a given round.
struct FaultDecision {
  FaultType type = FaultType::kNone;
  /// kStraggle / kCrash: fraction of the configured local epochs completed
  /// before the party stops (crashers also do partial work — the point is
  /// the work is wasted, not that it is free).
  double work_fraction = 1.0;
  /// kCorrupt only.
  CorruptionMode corruption = CorruptionMode::kNaN;
};

/// A seeded, stateless fault schedule. Decide(round, client) is a pure
/// function of (seed, round, client): it can be evaluated from any worker
/// thread in any order and always returns the same decision, which is what
/// makes fault schedules bit-identical across num_threads ∈ {1, 2, 8}. The
/// stream is derived per (round, client) with its own seed, so enabling
/// faults never perturbs the sampling or training draws. ScenarioPlan
/// (fl/scenario.h) follows this exact idiom for drift / availability /
/// adversaries, anchored at a different derivation offset so the two
/// schedule families never share a stream even under the same server seed.
class FaultPlan {
 public:
  /// `server_seed` anchors the derived stream when config.seed == 0.
  FaultPlan(const FaultConfig& config, uint64_t server_seed);

  /// Returns the fault (or kNone) for `client` in `round`. Thread-safe.
  FaultDecision Decide(int round, int client) const;

  /// Applies `decision`'s corruption mode to `update` in place: sprinkles
  /// NaN/Inf into the delta, or scales it to an enormous (finite) norm.
  /// Deterministic per (round, client). Requires decision.type == kCorrupt.
  void Corrupt(const FaultDecision& decision, int round, int client,
               LocalUpdate& update) const;

  bool enabled() const { return config_.enabled(); }
  const FaultConfig& config() const { return config_; }

 private:
  /// Fresh Rng for the (round, client, stream) cell.
  Rng CellRng(int round, int client, uint64_t stream) const;

  FaultConfig config_;
  uint64_t base_seed_;
};

}  // namespace niid

#endif  // NIID_FL_FAULTS_H_
