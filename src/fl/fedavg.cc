#include "fl/fedavg.h"

#include "util/check.h"

namespace niid {

// NIID_HOT: per-round aggregation inner loop shared by every algorithm;
// iterates updates in sampled order so the reduction order is fixed.
void FlAlgorithm::WeightedAverageDeltas(
    StateVector& global, const std::vector<LocalUpdate>& updates,
    const std::vector<StateSegment>& layout, float server_lr,
    bool average_bn_buffers) {
  if (updates.empty()) return;
  double n = 0.0;
  for (const LocalUpdate& update : updates) n += update.num_samples;
  NIID_CHECK_GT(n, 0.0);
  for (const LocalUpdate& update : updates) {
    NIID_CHECK_EQ(update.delta.size(), global.size());
    const float weight =
        server_lr * static_cast<float>(update.num_samples / n);
    for (const StateSegment& seg : layout) {
      if (!seg.trainable && !average_bn_buffers) continue;
      for (int64_t i = seg.offset; i < seg.offset + seg.size; ++i) {
        global[i] -= weight * update.delta[i];
      }
    }
  }
}

void FedAvg::Initialize(int num_clients, int64_t state_size) {
  (void)num_clients;
  if (config_.server_momentum > 0.f) {
    velocity_.assign(state_size, 0.f);
  }
}

// NIID_HOT: per-round client path.
LocalUpdate FedAvg::RunClient(Client& client, TrainContext& ctx,
                              const StateVector& global,
                              const LocalTrainOptions& options) {
  LocalTrainOptions local = options;
  local.keep_local_buffers = !config_.average_bn_buffers;
  return client.Train(ctx, global, local);
}

std::vector<StateVector> FedAvg::SaveAlgorithmState() const {
  if (velocity_.empty()) return {};
  return {velocity_};
}

Status FedAvg::LoadAlgorithmState(const std::vector<StateVector>& state) {
  if (config_.server_momentum <= 0.f) {
    return FlAlgorithm::LoadAlgorithmState(state);
  }
  if (state.size() != 1 || state[0].size() != velocity_.size()) {
    return Status::InvalidArgument(
        "fedavg momentum checkpoint shape mismatch");
  }
  velocity_ = state[0];
  return Status::Ok();
}

void FedAvg::Aggregate(StateVector& global,
                       const std::vector<LocalUpdate>& updates,
                       const std::vector<StateSegment>& layout) {
  if (config_.server_momentum <= 0.f) {
    WeightedAverageDeltas(global, updates, layout, config_.server_lr,
                          config_.average_bn_buffers);
    return;
  }
  // FedAvgM: v = m * v + weighted_avg_delta; w -= server_lr * v.
  if (updates.empty()) return;
  NIID_CHECK_EQ(velocity_.size(), global.size());
  double n = 0.0;
  for (const LocalUpdate& update : updates) n += update.num_samples;
  NIID_CHECK_GT(n, 0.0);
  StateVector average(global.size(), 0.f);
  for (const LocalUpdate& update : updates) {
    NIID_CHECK_EQ(update.delta.size(), global.size());
    const float weight = static_cast<float>(update.num_samples / n);
    for (size_t i = 0; i < average.size(); ++i) {
      average[i] += weight * update.delta[i];
    }
  }
  for (const StateSegment& seg : layout) {
    if (!seg.trainable && !config_.average_bn_buffers) continue;
    for (int64_t i = seg.offset; i < seg.offset + seg.size; ++i) {
      velocity_[i] =
          config_.server_momentum * velocity_[i] + average[i];
      global[i] -= config_.server_lr * velocity_[i];
    }
  }
}

}  // namespace niid
