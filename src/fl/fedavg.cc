#include "fl/fedavg.h"

#include "util/check.h"

namespace niid {

void FedAvg::Initialize(int num_clients, int64_t state_size) {
  (void)num_clients;
  if (config_.server_momentum > 0.f) {
    velocity_.assign(state_size, 0.f);
  }
}

// NIID_HOT: per-round client path.
LocalUpdate FedAvg::RunClient(Client& client, TrainContext& ctx,
                              const StateVector& global,
                              const LocalTrainOptions& options) {
  LocalTrainOptions local = options;
  local.keep_local_buffers = !config_.average_bn_buffers;
  return client.Train(ctx, global, local);
}

std::vector<StateVector> FedAvg::SaveAlgorithmState() const {
  if (velocity_.empty()) return {};
  return {velocity_};
}

Status FedAvg::LoadAlgorithmState(const std::vector<StateVector>& state) {
  if (config_.server_momentum <= 0.f) {
    return FlAlgorithm::LoadAlgorithmState(state);
  }
  if (state.size() != 1 || state[0].size() != velocity_.size()) {
    return Status::InvalidArgument(
        "fedavg momentum checkpoint shape mismatch");
  }
  velocity_ = state[0];
  return Status::Ok();
}

void FedAvg::Aggregate(StateVector& global, std::vector<LocalUpdate>& updates,
                       const std::vector<StateSegment>& layout,
                       ShardReducer& reducer) {
  if (config_.server_momentum <= 0.f) {
    WeightedAverageDeltas(global, updates, layout, config_.server_lr,
                          config_.average_bn_buffers, reducer);
    return;
  }
  // FedAvgM: v = m * v + weighted_avg_delta; w -= server_lr * v. The
  // weighted average comes out of the reducer's canonical tree.
  if (updates.empty()) return;
  NIID_CHECK_EQ(velocity_.size(), global.size());
  double n = 0.0;
  for (const LocalUpdate& update : updates) n += update.num_samples;
  NIID_CHECK_GT(n, 0.0);
  coeff_scratch_.resize(updates.size());
  for (size_t j = 0; j < updates.size(); ++j) {
    NIID_CHECK_EQ(updates[j].delta.size(), global.size());
    coeff_scratch_[j] = static_cast<float>(updates[j].num_samples / n);
  }
  const StateVector& average = reducer.ReduceScaled(
      updates, coeff_scratch_, ShardReducer::Field::kDelta);
  for (const StateSegment& seg : layout) {
    if (!seg.trainable && !config_.average_bn_buffers) continue;
    for (int64_t i = seg.offset; i < seg.offset + seg.size; ++i) {
      velocity_[i] =
          config_.server_momentum * velocity_[i] + average[i];
      global[i] -= config_.server_lr * velocity_[i];
    }
  }
}

}  // namespace niid
