#ifndef NIID_FL_FEDAVG_H_
#define NIID_FL_FEDAVG_H_

#include <string>
#include <vector>

#include "fl/algorithm.h"

namespace niid {

/// FedAvg (McMahan et al.): plain local SGD, sample-count-weighted averaging
/// of the returned deltas (Algorithm 1 with neither colored extension).
class FedAvg : public FlAlgorithm {
 public:
  explicit FedAvg(const AlgorithmConfig& config) : config_(config) {}

  std::string name() const override { return "fedavg"; }
  void Initialize(int num_clients, int64_t state_size) override;
  LocalUpdate RunClient(Client& client, TrainContext& ctx,
                        const StateVector& global,
                        const LocalTrainOptions& options) override;
  using FlAlgorithm::Aggregate;
  void Aggregate(StateVector& global, std::vector<LocalUpdate>& updates,
                 const std::vector<StateSegment>& layout,
                 ShardReducer& reducer) override;
  std::vector<StateVector> SaveAlgorithmState() const override;
  Status LoadAlgorithmState(const std::vector<StateVector>& state) override;

 private:
  AlgorithmConfig config_;
  /// FedAvgM server-momentum buffer (empty when server_momentum == 0).
  StateVector velocity_;
};

}  // namespace niid

#endif  // NIID_FL_FEDAVG_H_
