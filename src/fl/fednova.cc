#include "fl/fednova.h"

#include "util/check.h"

namespace niid {

LocalUpdate FedNova::RunClient(Client& client, TrainContext& ctx,
                               const StateVector& global,
                               const LocalTrainOptions& options) {
  LocalTrainOptions local = options;
  local.keep_local_buffers = !config_.average_bn_buffers;
  return client.Train(ctx, global, local);
}

void FedNova::Aggregate(StateVector& global,
                        const std::vector<LocalUpdate>& updates,
                        const std::vector<StateSegment>& layout) {
  if (updates.empty()) return;
  double n = 0.0;
  for (const LocalUpdate& update : updates) {
    NIID_CHECK_GT(update.tau, 0);
    n += update.num_samples;
  }
  NIID_CHECK_GT(n, 0.0);
  // tau_eff = sum_i (n_i / n) * tau_i.
  double tau_eff = 0.0;
  for (const LocalUpdate& update : updates) {
    tau_eff += update.num_samples / n * static_cast<double>(update.tau);
  }
  for (const LocalUpdate& update : updates) {
    NIID_CHECK_EQ(update.delta.size(), global.size());
    const float weight = static_cast<float>(
        config_.server_lr * tau_eff * update.num_samples /
        (n * static_cast<double>(update.tau)));
    for (const StateSegment& seg : layout) {
      if (!seg.trainable && !config_.average_bn_buffers) continue;
      for (int64_t i = seg.offset; i < seg.offset + seg.size; ++i) {
        global[i] -= weight * update.delta[i];
      }
    }
  }
}

}  // namespace niid
