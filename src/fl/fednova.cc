#include "fl/fednova.h"

#include "util/check.h"

namespace niid {

LocalUpdate FedNova::RunClient(Client& client, TrainContext& ctx,
                               const StateVector& global,
                               const LocalTrainOptions& options) {
  LocalTrainOptions local = options;
  local.keep_local_buffers = !config_.average_bn_buffers;
  return client.Train(ctx, global, local);
}

void FedNova::Aggregate(StateVector& global, std::vector<LocalUpdate>& updates,
                        const std::vector<StateSegment>& layout,
                        ShardReducer& reducer) {
  if (updates.empty()) return;
  double n = 0.0;
  for (const LocalUpdate& update : updates) {
    NIID_CHECK_GT(update.tau, 0);
    n += update.num_samples;
  }
  NIID_CHECK_GT(n, 0.0);
  // tau_eff = sum_i (n_i / n) * tau_i. Scalar sums stay serial in slot
  // order (exact double folds, independent of the shard layout).
  double tau_eff = 0.0;
  for (const LocalUpdate& update : updates) {
    tau_eff += update.num_samples / n * static_cast<double>(update.tau);
  }
  coeff_scratch_.resize(updates.size());
  for (size_t j = 0; j < updates.size(); ++j) {
    NIID_CHECK_EQ(updates[j].delta.size(), global.size());
    coeff_scratch_[j] = static_cast<float>(
        config_.server_lr * tau_eff * updates[j].num_samples /
        (n * static_cast<double>(updates[j].tau)));
  }
  const StateVector& acc = reducer.ReduceScaled(
      updates, coeff_scratch_, ShardReducer::Field::kDelta);
  SubtractOnSegments(global, acc, layout, config_.average_bn_buffers);
}

}  // namespace niid
