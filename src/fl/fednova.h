#ifndef NIID_FL_FEDNOVA_H_
#define NIID_FL_FEDNOVA_H_

#include <string>
#include <vector>

#include "fl/algorithm.h"

namespace niid {

/// FedNova (Wang et al.): normalized averaging that removes the objective
/// inconsistency caused by heterogeneous local step counts tau_i. Local
/// training is plain SGD; aggregation (Algorithm 1, orange line 10) is
///   w^{t+1} = w^t - eta * (sum_i n_i tau_i / n) * sum_i (n_i / (n tau_i)) d_i
/// i.e. per-party deltas are normalized by their step count, then rescaled
/// by the effective number of steps.
class FedNova : public FlAlgorithm {
 public:
  explicit FedNova(const AlgorithmConfig& config) : config_(config) {}

  std::string name() const override { return "fednova"; }
  LocalUpdate RunClient(Client& client, TrainContext& ctx,
                        const StateVector& global,
                        const LocalTrainOptions& options) override;
  using FlAlgorithm::Aggregate;
  void Aggregate(StateVector& global, std::vector<LocalUpdate>& updates,
                 const std::vector<StateSegment>& layout,
                 ShardReducer& reducer) override;

 private:
  AlgorithmConfig config_;
};

}  // namespace niid

#endif  // NIID_FL_FEDNOVA_H_
