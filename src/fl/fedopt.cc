#include "fl/fedopt.h"

#include <cmath>

#include "util/check.h"

namespace niid {

FedOpt::FedOpt(const AlgorithmConfig& config, FedOptVariant variant)
    : config_(config), variant_(variant) {}

std::string FedOpt::name() const {
  switch (variant_) {
    case FedOptVariant::kAdagrad:
      return "fedadagrad";
    case FedOptVariant::kAdam:
      return "fedadam";
    case FedOptVariant::kYogi:
      return "fedyogi";
  }
  return "fedopt";
}

void FedOpt::Initialize(int num_clients, int64_t state_size) {
  (void)num_clients;
  m_.assign(state_size, 0.f);
  // Reddi et al. initialize v to tau^2 so the first steps are bounded.
  v_.assign(state_size, config_.fedopt_tau * config_.fedopt_tau);
}

std::vector<StateVector> FedOpt::SaveAlgorithmState() const {
  return {m_, v_};
}

Status FedOpt::LoadAlgorithmState(const std::vector<StateVector>& state) {
  if (state.size() != 2 || state[0].size() != m_.size() ||
      state[1].size() != v_.size()) {
    return Status::InvalidArgument("fedopt moment checkpoint shape mismatch");
  }
  m_ = state[0];
  v_ = state[1];
  return Status::Ok();
}

LocalUpdate FedOpt::RunClient(Client& client, TrainContext& ctx,
                              const StateVector& global,
                              const LocalTrainOptions& options) {
  LocalTrainOptions local = options;
  local.keep_local_buffers = !config_.average_bn_buffers;
  return client.Train(ctx, global, local);
}

void FedOpt::Aggregate(StateVector& global, std::vector<LocalUpdate>& updates,
                       const std::vector<StateSegment>& layout,
                       ShardReducer& reducer) {
  if (updates.empty()) return;
  NIID_CHECK_EQ(m_.size(), global.size());
  double n = 0.0;
  for (const LocalUpdate& update : updates) n += update.num_samples;
  NIID_CHECK_GT(n, 0.0);

  // Pseudo-gradient: the sample-weighted average delta, reduced in the
  // canonical tree order straight into the first update's buffer.
  coeff_scratch_.resize(updates.size());
  for (size_t j = 0; j < updates.size(); ++j) {
    NIID_CHECK_EQ(updates[j].delta.size(), global.size());
    coeff_scratch_[j] = static_cast<float>(updates[j].num_samples / n);
  }
  const StateVector& delta = reducer.ReduceScaled(
      updates, coeff_scratch_, ShardReducer::Field::kDelta);

  const float beta1 = config_.fedopt_beta1;
  const float beta2 = config_.fedopt_beta2;
  const float tau = config_.fedopt_tau;
  for (const StateSegment& seg : layout) {
    if (!seg.trainable) {
      // Buffers: plain averaging (when enabled), no adaptive scaling.
      if (config_.average_bn_buffers) {
        for (int64_t i = seg.offset; i < seg.offset + seg.size; ++i) {
          global[i] -= delta[i];
        }
      }
      continue;
    }
    for (int64_t i = seg.offset; i < seg.offset + seg.size; ++i) {
      const float d = delta[i];
      const float d2 = d * d;
      m_[i] = beta1 * m_[i] + (1.f - beta1) * d;
      switch (variant_) {
        case FedOptVariant::kAdagrad:
          v_[i] += d2;
          break;
        case FedOptVariant::kAdam:
          v_[i] = beta2 * v_[i] + (1.f - beta2) * d2;
          break;
        case FedOptVariant::kYogi: {
          const float sign = (v_[i] > d2) ? 1.f : ((v_[i] < d2) ? -1.f : 0.f);
          v_[i] -= (1.f - beta2) * d2 * sign;
          break;
        }
      }
      global[i] -= config_.fedopt_server_lr * m_[i] /
                   (std::sqrt(v_[i]) + tau);
    }
  }
}

}  // namespace niid
