#ifndef NIID_FL_FEDOPT_H_
#define NIID_FL_FEDOPT_H_

#include <string>
#include <vector>

#include "fl/algorithm.h"

namespace niid {

/// The adaptive-server-optimizer family of Reddi et al. ("Adaptive Federated
/// Optimization", the paper's reference [52] via FedML): clients run plain
/// local SGD like FedAvg; the server treats the weighted-average delta as a
/// pseudo-gradient and feeds it to a server-side adaptive optimizer:
///
///   m   <- beta1 * m + (1 - beta1) * delta
///   v   <- Adagrad:  v + delta^2
///          Adam:     beta2 * v + (1 - beta2) * delta^2
///          Yogi:     v - (1 - beta2) * delta^2 * sign(v - delta^2)
///   w   <- w - server_lr * m / (sqrt(v) + tau)
///
/// Adaptive updates apply to trainable segments only; BatchNorm buffers are
/// plain-averaged (rescaling running statistics by an adaptive step would
/// corrupt them).
enum class FedOptVariant { kAdagrad, kAdam, kYogi };

class FedOpt : public FlAlgorithm {
 public:
  FedOpt(const AlgorithmConfig& config, FedOptVariant variant);

  std::string name() const override;
  void Initialize(int num_clients, int64_t state_size) override;
  LocalUpdate RunClient(Client& client, TrainContext& ctx,
                        const StateVector& global,
                        const LocalTrainOptions& options) override;
  using FlAlgorithm::Aggregate;
  void Aggregate(StateVector& global, std::vector<LocalUpdate>& updates,
                 const std::vector<StateSegment>& layout,
                 ShardReducer& reducer) override;
  std::vector<StateVector> SaveAlgorithmState() const override;
  Status LoadAlgorithmState(const std::vector<StateVector>& state) override;

  FedOptVariant variant() const { return variant_; }
  const StateVector& momentum() const { return m_; }
  const StateVector& second_moment() const { return v_; }

 private:
  AlgorithmConfig config_;
  FedOptVariant variant_;
  StateVector m_;
  StateVector v_;
};

}  // namespace niid

#endif  // NIID_FL_FEDOPT_H_
