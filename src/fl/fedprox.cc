#include "fl/fedprox.h"

#include "util/check.h"

namespace niid {

LocalUpdate FedProx::RunClient(Client& client, TrainContext& ctx,
                               const StateVector& global,
                               const LocalTrainOptions& options) {
  NIID_CHECK(!global.empty());
  NIID_CHECK_GT(options.local_epochs, 0);
  const float mu = config_.fedprox_mu;
  NIID_CHECK_GE(mu, 0.f);
  LocalTrainOptions local = options;
  local.keep_local_buffers = !config_.average_bn_buffers;
  // d/dw [ (mu/2) ||w - w^t||^2 ] = mu * w - mu * w^t, applied to every
  // trainable parameter before each optimizer step.
  Client::GradHook hook = [mu, &global](Module& model) {
    if (mu == 0.f) return;
    for (Parameter* p : model.Parameters()) {
      if (!p->trainable) continue;
      float* grad = p->grad.data();
      const float* value = p->value.data();
      for (int64_t i = 0; i < p->value.numel(); ++i) {
        grad[i] += mu * value[i];
      }
    }
    AxpyToGrads(model, -mu, global);
  };
  return client.Train(ctx, global, local, hook);
}

void FedProx::Aggregate(StateVector& global, std::vector<LocalUpdate>& updates,
                        const std::vector<StateSegment>& layout,
                        ShardReducer& reducer) {
  WeightedAverageDeltas(global, updates, layout, config_.server_lr,
                        config_.average_bn_buffers, reducer);
}

}  // namespace niid
