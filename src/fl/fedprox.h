#ifndef NIID_FL_FEDPROX_H_
#define NIID_FL_FEDPROX_H_

#include <string>
#include <vector>

#include "fl/algorithm.h"

namespace niid {

/// FedProx (Li et al.): FedAvg plus a proximal term in the local objective,
///   L(w) = l(w) + (mu / 2) ||w - w^t||^2,
/// implemented as the gradient correction g += mu * (w - w^t) before each
/// local SGD step (Algorithm 1, red line 14). Aggregation is FedAvg's.
class FedProx : public FlAlgorithm {
 public:
  explicit FedProx(const AlgorithmConfig& config) : config_(config) {}

  std::string name() const override { return "fedprox"; }
  LocalUpdate RunClient(Client& client, TrainContext& ctx,
                        const StateVector& global,
                        const LocalTrainOptions& options) override;
  using FlAlgorithm::Aggregate;
  void Aggregate(StateVector& global, std::vector<LocalUpdate>& updates,
                 const std::vector<StateSegment>& layout,
                 ShardReducer& reducer) override;

  float mu() const { return config_.fedprox_mu; }

 private:
  AlgorithmConfig config_;
};

}  // namespace niid

#endif  // NIID_FL_FEDPROX_H_
