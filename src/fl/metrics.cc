#include "fl/metrics.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <numeric>

#include "nn/loss.h"
#include "util/check.h"

namespace niid {

Status WriteRoundStatsCsv(const std::vector<RoundStats>& rounds,
                          const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open round-stats csv '" + path +
                                   "' for writing");
  }
  // Scenario counters append AFTER the historical columns: positional
  // consumers of the original schema keep working unchanged.
  out << "round,mean_local_loss,aggregated,dropped,crashed,straggled,"
         "rejected,resample_retries,quorum_met,bytes_uplink,"
         "bytes_uplink_uncompressed,unavailable,flipped,poisoned,clipped,"
         "trimmed\n";
  for (const RoundStats& stats : rounds) {
    out << stats.round << ',' << stats.mean_local_loss << ','
        << stats.aggregated << ',' << stats.dropped << ',' << stats.crashed
        << ',' << stats.straggled << ',' << stats.rejected << ','
        << stats.resample_retries << ',' << (stats.quorum_met ? 1 : 0) << ','
        << stats.bytes_uplink << ',' << stats.bytes_uplink_uncompressed << ','
        << stats.unavailable << ',' << stats.flipped << ',' << stats.poisoned
        << ',' << stats.clipped << ',' << stats.trimmed << '\n';
  }
  out.flush();
  if (!out) {
    return Status::DataLoss("short write to round-stats csv '" + path + "'");
  }
  return Status::Ok();
}

EvalResult Evaluate(Module& model, const Dataset& dataset, int batch_size) {
  NIID_CHECK_GE(batch_size, 1);
  const bool was_training = model.training();
  model.SetTraining(false);

  EvalResult result;
  result.num_samples = dataset.size();
  double loss_sum = 0.0;
  int64_t correct = 0;
  std::vector<int64_t> indices(batch_size);
  Tensor batch_x;
  std::vector<int> batch_y;
  LossResult batch;
  for (int64_t start = 0; start < dataset.size(); start += batch_size) {
    const int64_t count = std::min<int64_t>(batch_size, dataset.size() - start);
    indices.resize(count);
    std::iota(indices.begin(), indices.end(), start);
    GatherBatchInto(dataset, indices, batch_x, batch_y);
    const Tensor& logits = model.Forward(batch_x);
    SoftmaxCrossEntropyInto(logits, batch_y, batch);
    loss_sum += batch.loss * count;
    correct += batch.correct;
  }
  if (dataset.size() > 0) {
    result.loss = loss_sum / dataset.size();
    result.accuracy = static_cast<double>(correct) / dataset.size();
  }
  model.SetTraining(was_training);
  return result;
}

EvalResult EvaluateParallel(WorkspacePool& workspaces, const StateVector& state,
                            const Dataset& dataset, ThreadPool* pool,
                            int batch_size) {
  NIID_CHECK_GE(batch_size, 1);
  // Preload every context once (serially): batches only read model state, so
  // a context can serve any number of batches without reloading.
  for (int i = 0; i < workspaces.size(); ++i) {
    TrainContext& ctx = workspaces.context(i);
    LoadState(*ctx.model, state);
    ctx.model->SetTraining(false);
  }

  EvalResult result;
  result.num_samples = dataset.size();
  if (dataset.size() == 0) return result;

  const int64_t num_batches =
      (dataset.size() + batch_size - 1) / batch_size;
  // One slot per batch: reducing slots in batch-index order reproduces the
  // serial `loss_sum += batch.loss * count` accumulation bit for bit.
  std::vector<double> loss_slots(num_batches, 0.0);
  std::vector<int64_t> correct_slots(num_batches, 0);
  ParallelFor(pool, num_batches, [&](int64_t b) {
    WorkspaceLease lease(workspaces);
    TrainContext& ctx = *lease;
    const int64_t start = b * batch_size;
    const int64_t count =
        std::min<int64_t>(batch_size, dataset.size() - start);
    ctx.batch_indices.resize(count);
    std::iota(ctx.batch_indices.begin(), ctx.batch_indices.end(), start);
    GatherBatchInto(dataset, ctx.batch_indices, ctx.batch_x, ctx.batch_y);
    const Tensor& logits = ctx.model->Forward(ctx.batch_x);
    SoftmaxCrossEntropyInto(logits, ctx.batch_y, ctx.loss);
    loss_slots[b] = ctx.loss.loss * count;
    correct_slots[b] = ctx.loss.correct;
  });

  double loss_sum = 0.0;
  int64_t correct = 0;
  for (int64_t b = 0; b < num_batches; ++b) {
    loss_sum += loss_slots[b];
    correct += correct_slots[b];
  }
  result.loss = loss_sum / dataset.size();
  result.accuracy = static_cast<double>(correct) / dataset.size();
  return result;
}

}  // namespace niid
