#include "fl/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "nn/loss.h"
#include "util/check.h"

namespace niid {

EvalResult Evaluate(Module& model, const Dataset& dataset, int batch_size) {
  NIID_CHECK_GE(batch_size, 1);
  const bool was_training = model.training();
  model.SetTraining(false);

  EvalResult result;
  result.num_samples = dataset.size();
  double loss_sum = 0.0;
  int64_t correct = 0;
  std::vector<int64_t> indices(batch_size);
  Tensor batch_x;
  std::vector<int> batch_y;
  LossResult batch;
  for (int64_t start = 0; start < dataset.size(); start += batch_size) {
    const int64_t count = std::min<int64_t>(batch_size, dataset.size() - start);
    indices.resize(count);
    std::iota(indices.begin(), indices.end(), start);
    GatherBatchInto(dataset, indices, batch_x, batch_y);
    const Tensor& logits = model.Forward(batch_x);
    SoftmaxCrossEntropyInto(logits, batch_y, batch);
    loss_sum += batch.loss * count;
    correct += batch.correct;
  }
  if (dataset.size() > 0) {
    result.loss = loss_sum / dataset.size();
    result.accuracy = static_cast<double>(correct) / dataset.size();
  }
  model.SetTraining(was_training);
  return result;
}

}  // namespace niid
