#ifndef NIID_FL_METRICS_H_
#define NIID_FL_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "fl/workspace.h"
#include "nn/module.h"
#include "nn/parameters.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace niid {

/// Result of evaluating a model on a dataset.
struct EvalResult {
  double accuracy = 0.0;  ///< top-1 accuracy in [0, 1]
  double loss = 0.0;      ///< mean cross-entropy
  int64_t num_samples = 0;
};

/// Per-round bookkeeping reported by FederatedServer::RunRound.
struct RoundStats {
  int round = 0;
  std::vector<int> sampled_clients;
  double mean_local_loss = 0.0;
  /// Cumulative upload volume in floats across all rounds so far.
  int64_t cumulative_upload_floats = 0;
  /// Uplink bytes this round, as they crossed the wire (compressed when an
  /// update codec is active) and as they would have uncompressed. Equal under
  /// the identity codec; both count every arrival — survivors and rejects —
  /// while dropped/crashed parties never uploaded anything.
  int64_t bytes_uplink = 0;
  int64_t bytes_uplink_uncompressed = 0;
  /// Fault + robustness accounting (all zero when faults are disabled).
  int dropped = 0;    ///< sampled but never trained
  int crashed = 0;    ///< trained but the update never arrived
  int straggled = 0;  ///< trained with truncated local epochs
  int rejected = 0;   ///< update arrived but failed ValidateUpdate/decode
  int resample_retries = 0;  ///< extra sampling attempts to reach quorum
  int aggregated = 0;        ///< updates folded into the global model
  bool quorum_met = true;    ///< false => aggregation skipped this round
  /// Scenario accounting (fl/scenario.h / fl/robust.h; all zero when the
  /// scenario layer and robust aggregation are off).
  int unavailable = 0;  ///< sampled but gated out by the availability trace
  int flipped = 0;      ///< parties that trained on flipped labels
  int poisoned = 0;     ///< arrivals rewritten by a model-poisoning attack
  int clipped = 0;      ///< updates rescaled by the norm-clip aggregator
  int trimmed = 0;      ///< per-coordinate values trimmed (2k equivalent)
};

/// Writes one CSV row per round: round, mean_local_loss, aggregated,
/// dropped, crashed, straggled, rejected, resample_retries, quorum_met,
/// bytes_uplink, bytes_uplink_uncompressed, then the scenario counters
/// (unavailable, flipped, poisoned, clipped, trimmed — appended last so
/// positional consumers of the original columns keep working) — the single
/// reporting path the fault, compression, and scenario benches share.
Status WriteRoundStatsCsv(const std::vector<RoundStats>& rounds,
                          const std::string& path);

/// Evaluates `model` on `dataset` in evaluation mode (BatchNorm uses running
/// statistics). Restores the model's previous training mode before returning.
EvalResult Evaluate(Module& model, const Dataset& dataset,
                    int batch_size = 256);

/// Pooled evaluation of the flat model state `state` on `dataset`: batches
/// are sharded over the workspace pool's contexts via `pool` (null = serial),
/// each batch writes its (loss * count, correct) partial into a slot indexed
/// by batch number, and the slots are reduced in batch-index order — exactly
/// the accumulation order of the serial Evaluate above, so the result is
/// bit-identical to it at every thread count. Every context in `workspaces`
/// is (re)loaded from `state`; the caller must hold no leases.
EvalResult EvaluateParallel(WorkspacePool& workspaces, const StateVector& state,
                            const Dataset& dataset, ThreadPool* pool,
                            int batch_size = 256);

}  // namespace niid

#endif  // NIID_FL_METRICS_H_
