#ifndef NIID_FL_METRICS_H_
#define NIID_FL_METRICS_H_

#include "data/dataset.h"
#include "nn/module.h"

namespace niid {

/// Result of evaluating a model on a dataset.
struct EvalResult {
  double accuracy = 0.0;  ///< top-1 accuracy in [0, 1]
  double loss = 0.0;      ///< mean cross-entropy
  int64_t num_samples = 0;
};

/// Evaluates `model` on `dataset` in evaluation mode (BatchNorm uses running
/// statistics). Restores the model's previous training mode before returning.
EvalResult Evaluate(Module& model, const Dataset& dataset,
                    int batch_size = 256);

}  // namespace niid

#endif  // NIID_FL_METRICS_H_
