#ifndef NIID_FL_METRICS_H_
#define NIID_FL_METRICS_H_

#include "data/dataset.h"
#include "fl/workspace.h"
#include "nn/module.h"
#include "nn/parameters.h"
#include "util/thread_pool.h"

namespace niid {

/// Result of evaluating a model on a dataset.
struct EvalResult {
  double accuracy = 0.0;  ///< top-1 accuracy in [0, 1]
  double loss = 0.0;      ///< mean cross-entropy
  int64_t num_samples = 0;
};

/// Evaluates `model` on `dataset` in evaluation mode (BatchNorm uses running
/// statistics). Restores the model's previous training mode before returning.
EvalResult Evaluate(Module& model, const Dataset& dataset,
                    int batch_size = 256);

/// Pooled evaluation of the flat model state `state` on `dataset`: batches
/// are sharded over the workspace pool's contexts via `pool` (null = serial),
/// each batch writes its (loss * count, correct) partial into a slot indexed
/// by batch number, and the slots are reduced in batch-index order — exactly
/// the accumulation order of the serial Evaluate above, so the result is
/// bit-identical to it at every thread count. Every context in `workspaces`
/// is (re)loaded from `state`; the caller must hold no leases.
EvalResult EvaluateParallel(WorkspacePool& workspaces, const StateVector& state,
                            const Dataset& dataset, ThreadPool* pool,
                            int batch_size = 256);

}  // namespace niid

#endif  // NIID_FL_METRICS_H_
