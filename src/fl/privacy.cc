#include "fl/privacy.h"

#include <cmath>

#include "nn/parameters.h"
#include "util/check.h"

namespace niid {

double ClipToNorm(StateVector& delta, double clip_norm) {
  NIID_CHECK_GT(clip_norm, 0.0);
  const double norm = Norm(delta);
  if (norm > clip_norm) {
    const float scale = static_cast<float>(clip_norm / norm);
    for (float& v : delta) v *= scale;
  }
  return norm;
}

void ApplyDpToUpdate(const DpConfig& config, Rng& rng, LocalUpdate& update) {
  if (!config.enabled()) return;
  const double sigma = config.noise_multiplier * config.clip_norm;
  auto clip_and_noise = [&](StateVector& vec) {
    if (vec.empty()) return;
    ClipToNorm(vec, config.clip_norm);
    if (sigma > 0.0) {
      for (float& v : vec) {
        v += static_cast<float>(rng.Normal(0.0, sigma));
      }
    }
  };
  clip_and_noise(update.delta);
  clip_and_noise(update.delta_c);
}

double GaussianMechanismEpsilon(double noise_multiplier, double dp_delta) {
  NIID_CHECK_GT(noise_multiplier, 0.0);
  NIID_CHECK_GT(dp_delta, 0.0);
  NIID_CHECK_LT(dp_delta, 1.0);
  return std::sqrt(2.0 * std::log(1.25 / dp_delta)) / noise_multiplier;
}

}  // namespace niid
