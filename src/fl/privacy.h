#ifndef NIID_FL_PRIVACY_H_
#define NIID_FL_PRIVACY_H_

#include <cstdint>

#include "fl/client.h"
#include "util/rng.h"

namespace niid {

/// Client-level differential privacy for federated updates (the Gaussian
/// mechanism of DP-FedAvg): each party's update is L2-clipped to
/// `clip_norm` and Gaussian noise with standard deviation
/// `noise_multiplier * clip_norm` is added coordinate-wise before
/// aggregation.
///
/// The paper's Section 6.1 ("privacy-preserving data mining") names this as
/// the standard defense against inference attacks on the exchanged models;
/// this module lets the benchmark quantify the accuracy cost
/// (bench_ablation_dp).
struct DpConfig {
  /// 0 disables the mechanism entirely.
  double clip_norm = 0.0;
  /// Noise stddev as a multiple of clip_norm (sigma = z * C).
  double noise_multiplier = 0.0;

  bool enabled() const { return clip_norm > 0.0; }
};

/// Clips `delta` to L2 norm `clip_norm` in place (no-op if already smaller).
/// Returns the pre-clip norm.
double ClipToNorm(StateVector& delta, double clip_norm);

/// Applies the Gaussian mechanism to `update.delta` in place: clip, then add
/// N(0, (z*C)^2) noise to every coordinate (including buffers — the whole
/// vector is transmitted and observable). delta_c, if present, is clipped
/// and noised the same way: SCAFFOLD's control variates also leak gradients.
void ApplyDpToUpdate(const DpConfig& config, Rng& rng, LocalUpdate& update);

/// Rough single-round (epsilon, delta)-DP accounting for the Gaussian
/// mechanism: epsilon = sqrt(2 ln(1.25/delta)) / z for one application.
/// Composition across rounds is left to the caller (the bench prints the
/// naive linear composition as an upper bound).
double GaussianMechanismEpsilon(double noise_multiplier, double dp_delta);

}  // namespace niid

#endif  // NIID_FL_PRIVACY_H_
