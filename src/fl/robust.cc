#include "fl/robust.h"

#include <algorithm>
#include <cstdint>

#include "nn/parameters.h"
#include "util/check.h"

namespace niid {
namespace {

// Fixed work partition for the coordinate-statistic rules: the coordinate
// space is cut into kBlocks contiguous ranges regardless of thread count, and
// each coordinate's statistic depends only on that coordinate across updates
// — so the result is bit-identical for any pool size, including none.
constexpr int64_t kBlocks = 64;

/// Clips each update's delta onto the L2 ball of radius clip_norm. Purely
/// per-update (disjoint writes), so the parallel loop is trivially
/// deterministic. Composes with every algorithm's own weighting because the
/// updates keep their identity — nothing is collapsed.
class NormClipAggregator : public RobustAggregator {
 public:
  explicit NormClipAggregator(const RobustConfig& config) : config_(config) {}

  std::string name() const override {
    return AggregatorName(AggregatorKind::kNormClip);
  }

  // NIID_HOT: per-round serial server path; flag scratch is grow-only.
  RobustStats Apply(std::vector<LocalUpdate>& updates,
                    ThreadPool* pool) override {
    const int64_t m = static_cast<int64_t>(updates.size());
    clipped_.resize(m);  // NOLINT(niid-hot-alloc) grow-only scratch
    ParallelFor(pool, m, [&](int64_t j) {
      LocalUpdate& update = updates[j];
      const double norm = Norm(update.delta);
      clipped_[j] = 0;
      if (norm > config_.clip_norm) {
        const float factor = static_cast<float>(config_.clip_norm / norm);
        for (float& v : update.delta) v *= factor;
        clipped_[j] = 1;
      }
    });
    RobustStats stats;
    for (int64_t j = 0; j < m; ++j) stats.clipped += clipped_[j];
    return stats;
  }

 private:
  RobustConfig config_;
  std::vector<uint8_t> clipped_;
};

/// Shared machinery for the coordinate-statistic rules (median, trimmed
/// mean): computes a per-coordinate statistic over all updates and collapses
/// them into ONE synthetic update written in place into slot 0 — safe
/// because coordinate i of the output depends only on coordinate i of every
/// input, which is read before slot 0's coordinate i is overwritten.
///
/// Synthetic-update semantics (how one robust update composes with the five
/// algorithms' Aggregate, which all consume a weighted set):
///   - num_samples = sum over survivors: with a single update only the ratio
///     n_j / n matters, so every sample-weighted rule reduces to
///     server_lr * robust_delta.
///   - tau = median of survivor taus: FedNova's effective tau for a single
///     update equals that update's tau, so its normalization cancels and the
///     robust delta is applied at server_lr exactly like FedAvg.
///   - delta_c = per-coordinate statistic * m: SCAFFOLD updates its server
///     control variate by (1/N) * sum of delta_c; pre-scaling by the
///     survivor count preserves c += (m/N) * robust-mean(delta_c).
class CoordinateStatisticAggregator : public RobustAggregator {
 public:
  // NIID_HOT: per-round serial server path; column scratch is grow-only.
  RobustStats Apply(std::vector<LocalUpdate>& updates,
                    ThreadPool* pool) override {
    const int64_t m = static_cast<int64_t>(updates.size());
    NIID_CHECK_GT(m, 0);
    RobustStats stats;
    if (m == 1) {
      // The statistic of a single update is the update itself; leaving it
      // untouched also preserves its weights exactly.
      OnCollapse(1, &stats);
      return stats;
    }
    const int64_t n = static_cast<int64_t>(updates[0].delta.size());
    const bool has_control = !updates[0].delta_c.empty();
    for (const LocalUpdate& update : updates) {
      NIID_CHECK_EQ(static_cast<int64_t>(update.delta.size()), n);
      NIID_CHECK_EQ(update.delta_c.empty(), !has_control)
          << "mixed control-variate presence across updates";
    }
    columns_.resize(kBlocks * m);  // NOLINT(niid-hot-alloc) grow-only
    ReduceField(updates, pool, m, n, /*control=*/false);
    if (has_control) {
      ReduceField(updates, pool, m,
                  static_cast<int64_t>(updates[0].delta_c.size()),
                  /*control=*/true);
    }
    // Collapse: slot 0 becomes the synthetic robust update.
    LocalUpdate& synthetic = updates[0];
    synthetic.client_id = -1;
    int64_t total_samples = 0;
    taus_.clear();  // NOLINT(niid-hot-alloc) grow-only
    for (const LocalUpdate& update : updates) {
      total_samples += update.num_samples;
      taus_.push_back(update.tau);  // NOLINT(niid-hot-alloc) grow-only
    }
    std::sort(taus_.begin(), taus_.end());
    synthetic.num_samples = total_samples;
    synthetic.tau = taus_[(m - 1) / 2];  // lower median keeps tau integral
    synthetic.average_loss = 0.0;  // losses were reduced before Apply
    updates.resize(1);  // NOLINT(niid-hot-alloc) shrink keeps capacity
    OnCollapse(static_cast<int>(m), &stats);
    return stats;
  }

 protected:
  /// Statistic over `column`, which ReduceField hands in sorted ascending.
  virtual float Statistic(float* column, int64_t m) const = 0;
  /// Lets the rule account per-round stats given the survivor count.
  virtual void OnCollapse(int m, RobustStats* stats) const = 0;

 private:
  void ReduceField(std::vector<LocalUpdate>& updates, ThreadPool* pool,
                   int64_t m, int64_t n, bool control) {
    ParallelFor(pool, kBlocks, [&](int64_t b) {
      const int64_t begin = b * n / kBlocks;
      const int64_t end = (b + 1) * n / kBlocks;
      float* column = columns_.data() + b * m;
      for (int64_t i = begin; i < end; ++i) {
        for (int64_t j = 0; j < m; ++j) {
          const LocalUpdate& u = updates[j];
          column[j] = control ? u.delta_c[i] : u.delta[i];
        }
        std::sort(column, column + m);
        float value = Statistic(column, m);
        // SCAFFOLD control-variate compensation (see class comment).
        if (control) value *= static_cast<float>(m);
        if (control) {
          updates[0].delta_c[i] = value;
        } else {
          updates[0].delta[i] = value;
        }
      }
    });
  }

  std::vector<float> columns_;
  std::vector<int64_t> taus_;
};

class MedianAggregator : public CoordinateStatisticAggregator {
 public:
  std::string name() const override {
    return AggregatorName(AggregatorKind::kMedian);
  }

 protected:
  float Statistic(float* column, int64_t m) const override {
    // Even counts average the two middle values — the textbook coordinate-
    // wise median; the mean of two sorted neighbors is order-deterministic.
    if (m % 2 == 1) return column[m / 2];
    return 0.5f * (column[m / 2 - 1] + column[m / 2]);
  }
  void OnCollapse(int /*m*/, RobustStats* /*stats*/) const override {}
};

class TrimmedMeanAggregator : public CoordinateStatisticAggregator {
 public:
  explicit TrimmedMeanAggregator(const RobustConfig& config)
      : config_(config) {}

  std::string name() const override {
    return AggregatorName(AggregatorKind::kTrimmedMean);
  }

 protected:
  float Statistic(float* column, int64_t m) const override {
    const int64_t k = TrimCount(m);
    // Left-to-right sum over the sorted survivors: a fixed order, so the
    // float result never depends on thread count.
    double sum = 0.0;
    for (int64_t j = k; j < m - k; ++j) sum += column[j];
    return static_cast<float>(sum / static_cast<double>(m - 2 * k));
  }

  void OnCollapse(int m, RobustStats* stats) const override {
    stats->trimmed = static_cast<int>(2 * TrimCount(m));
  }

 private:
  int64_t TrimCount(int64_t m) const {
    int64_t k = static_cast<int64_t>(config_.trim_fraction *
                                     static_cast<double>(m));
    // Always keep at least one survivor per coordinate.
    if (2 * k >= m) k = (m - 1) / 2;
    return k;
  }

  RobustConfig config_;
};

}  // namespace

StatusOr<AggregatorKind> ParseAggregator(const std::string& name) {
  if (name == "mean") return AggregatorKind::kMean;
  if (name == "median") return AggregatorKind::kMedian;
  if (name == "trimmed") return AggregatorKind::kTrimmedMean;
  if (name == "clipped") return AggregatorKind::kNormClip;
  return Status::InvalidArgument(
      "unknown aggregator '" + name +
      "' (expected mean, median, trimmed, or clipped)");
}

std::string AggregatorName(AggregatorKind kind) {
  switch (kind) {
    case AggregatorKind::kMean:
      return "mean";
    case AggregatorKind::kMedian:
      return "median";
    case AggregatorKind::kTrimmedMean:
      return "trimmed";
    case AggregatorKind::kNormClip:
      return "clipped";
  }
  return "unknown";
}

StatusOr<std::unique_ptr<RobustAggregator>> CreateRobustAggregator(
    const RobustConfig& config) {
  std::unique_ptr<RobustAggregator> aggregator;
  switch (config.aggregator) {
    case AggregatorKind::kMean:
      break;  // null: the baseline mean path has no robust layer
    case AggregatorKind::kMedian:
      aggregator = std::make_unique<MedianAggregator>();
      break;
    case AggregatorKind::kTrimmedMean:
      if (config.trim_fraction < 0.0 || config.trim_fraction >= 0.5) {
        return Status::InvalidArgument(
            "trim_fraction must be in [0, 0.5) per trimmed side");
      }
      aggregator = std::make_unique<TrimmedMeanAggregator>(config);
      break;
    case AggregatorKind::kNormClip:
      if (config.clip_norm <= 0.0) {
        return Status::InvalidArgument(
            "clip_norm must be > 0 for the clipped aggregator");
      }
      aggregator = std::make_unique<NormClipAggregator>(config);
      break;
  }
  return aggregator;
}

}  // namespace niid
