#ifndef NIID_FL_ROBUST_H_
#define NIID_FL_ROBUST_H_

#include <memory>
#include <string>
#include <vector>

#include "fl/client.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace niid {

/// Server-side robust aggregation rule. kMean is the paper's sample-weighted
/// FedAvg-style mean and maps to a null aggregator — the baseline path is
/// never touched, which is what keeps mean runs byte-identical to pre-robust
/// builds.
enum class AggregatorKind { kMean, kMedian, kTrimmedMean, kNormClip };

StatusOr<AggregatorKind> ParseAggregator(const std::string& name);
std::string AggregatorName(AggregatorKind kind);

struct RobustConfig {
  AggregatorKind aggregator = AggregatorKind::kMean;
  /// kTrimmedMean: fraction of updates trimmed from EACH end per coordinate.
  double trim_fraction = 0.1;
  /// kNormClip: updates whose delta L2 norm exceeds this are rescaled onto
  /// the ball. Must be > 0 when kNormClip is selected.
  double clip_norm = 0.0;

  bool enabled() const { return aggregator != AggregatorKind::kMean; }
};

/// Per-round robustness accounting, surfaced through RoundStats.
struct RobustStats {
  /// kNormClip: number of updates rescaled this round.
  int clipped = 0;
  /// kTrimmedMean: per-coordinate values discarded, reported as the
  /// per-update-equivalent count 2 * floor(trim_fraction * m).
  int trimmed = 0;
};

/// Interface between FederatedServer and the robust rules. Apply runs once
/// per round on the serial server path, after ValidateUpdate / DP and before
/// FlAlgorithm::Aggregate, and may rewrite `updates` in place — including
/// collapsing them to a single synthetic update (median / trimmed mean).
/// Determinism contract: the result must be bit-identical for any `pool`
/// (null, 1, or N threads) and must not touch any Rng.
class RobustAggregator {
 public:
  virtual ~RobustAggregator() = default;
  virtual std::string name() const = 0;
  virtual RobustStats Apply(std::vector<LocalUpdate>& updates,
                            ThreadPool* pool) = 0;
};

/// Returns the configured rule, or nullptr for kMean (no robust layer).
StatusOr<std::unique_ptr<RobustAggregator>> CreateRobustAggregator(
    const RobustConfig& config);

}  // namespace niid

#endif  // NIID_FL_ROBUST_H_
