#include "fl/sampling.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"
#include "util/samplers.h"

namespace niid {

std::vector<int> SampleParties(Rng& rng, int num_clients, double fraction) {
  NIID_CHECK_GE(num_clients, 1);
  NIID_CHECK_GT(fraction, 0.0);
  NIID_CHECK_LE(fraction, 1.0);
  if (fraction >= 1.0) {
    std::vector<int> all(num_clients);
    std::iota(all.begin(), all.end(), 0);
    return all;
  }
  const int k = std::max(
      1, static_cast<int>(std::lround(fraction * num_clients)));
  return SampleWithoutReplacement(rng, num_clients, std::min(k, num_clients));
}

std::vector<int> SamplePartiesSkewAware(
    Rng& rng, const std::vector<std::vector<int64_t>>& label_histograms,
    double fraction) {
  const int num_clients = static_cast<int>(label_histograms.size());
  NIID_CHECK_GE(num_clients, 1);
  NIID_CHECK_GT(fraction, 0.0);
  NIID_CHECK_LE(fraction, 1.0);
  if (fraction >= 1.0) {
    std::vector<int> all(num_clients);
    std::iota(all.begin(), all.end(), 0);
    return all;
  }
  const int k = std::min(
      num_clients,
      std::max(1, static_cast<int>(std::lround(fraction * num_clients))));
  const size_t classes = label_histograms.empty()
                             ? 0
                             : label_histograms[0].size();
  NIID_CHECK_GE(classes, 1u);

  // Global label distribution from the histograms.
  std::vector<double> global(classes, 0.0);
  double total = 0.0;
  for (const auto& histogram : label_histograms) {
    NIID_CHECK_EQ(histogram.size(), classes);
    for (size_t c = 0; c < classes; ++c) {
      global[c] += static_cast<double>(histogram[c]);
      total += static_cast<double>(histogram[c]);
    }
  }
  NIID_CHECK_GT(total, 0.0);
  for (double& g : global) g /= total;

  // TV distance between the pooled counts of `selected` and the global
  // distribution.
  auto pool_tv = [&](const std::vector<double>& pooled, double pooled_total) {
    if (pooled_total <= 0.0) return 1.0;
    double tv = 0.0;
    for (size_t c = 0; c < classes; ++c) {
      tv += std::abs(pooled[c] / pooled_total - global[c]);
    }
    return 0.5 * tv;
  };

  std::vector<bool> taken(num_clients, false);
  std::vector<double> pooled(classes, 0.0);
  double pooled_total = 0.0;
  std::vector<int> selected;
  selected.reserve(k);

  // Seed with a uniformly drawn party so coverage rotates across rounds.
  const int first = static_cast<int>(rng.UniformInt(num_clients));
  selected.push_back(first);
  taken[first] = true;
  for (size_t c = 0; c < classes; ++c) {
    pooled[c] += static_cast<double>(label_histograms[first][c]);
    pooled_total += static_cast<double>(label_histograms[first][c]);
  }

  // Greedy: each pick minimizes the pooled TV distance. Candidates are
  // visited in a random order so exact ties break randomly.
  std::vector<int> order(num_clients);
  std::iota(order.begin(), order.end(), 0);
  while (static_cast<int>(selected.size()) < k) {
    rng.Shuffle(order);
    int best = -1;
    double best_tv = 2.0;
    for (int candidate : order) {
      if (taken[candidate]) continue;
      double candidate_total = pooled_total;
      std::vector<double> candidate_pool = pooled;
      for (size_t c = 0; c < classes; ++c) {
        candidate_pool[c] +=
            static_cast<double>(label_histograms[candidate][c]);
        candidate_total += static_cast<double>(label_histograms[candidate][c]);
      }
      const double tv = pool_tv(candidate_pool, candidate_total);
      if (tv < best_tv) {
        best_tv = tv;
        best = candidate;
      }
    }
    NIID_CHECK_GE(best, 0);
    selected.push_back(best);
    taken[best] = true;
    for (size_t c = 0; c < classes; ++c) {
      pooled[c] += static_cast<double>(label_histograms[best][c]);
      pooled_total += static_cast<double>(label_histograms[best][c]);
    }
  }
  std::sort(selected.begin(), selected.end());
  return selected;
}

}  // namespace niid
