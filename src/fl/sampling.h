#ifndef NIID_FL_SAMPLING_H_
#define NIID_FL_SAMPLING_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace niid {

/// Samples the participating parties for one round (Algorithm 1, line 4):
/// max(1, round(fraction * num_clients)) distinct parties chosen uniformly.
/// fraction = 1 returns all parties (the paper's default, "all parties
/// participate in every round"); Section 5.6 uses fraction 0.1 over 100.
///
/// Scenario availability (fl/scenario.h) gates AFTER this draw, never inside
/// it: the server tests each sampled id against ScenarioPlan::Available and
/// skips the unreachable ones. Keeping the gate out of the sampler means the
/// sampling stream consumes exactly the same draws whether or not a scenario
/// is active — which is what makes an all-zero scenario byte-identical to no
/// scenario, and lets quorum resampling treat "unavailable this round" like
/// a fault-plan drop (pure in (round, client), so retrying is pointless).
std::vector<int> SampleParties(Rng& rng, int num_clients, double fraction);

/// Skew-aware party sampling — the paper's Section 6.1 future direction
/// ("non-IID resistant sampling for partial participation"): instead of a
/// uniform draw, greedily pick parties whose pooled label distribution best
/// matches the federation-wide one, so the averaged update direction is
/// stable from round to round.
///
/// `label_histograms[i]` is party i's per-class sample count (the same
/// metadata the skew profiler uses — no raw data). The first party of each
/// round is drawn uniformly (so coverage rotates); each subsequent pick
/// minimizes the total-variation distance between the selected pool's label
/// distribution and the global one. Returns sorted distinct ids.
std::vector<int> SamplePartiesSkewAware(
    Rng& rng, const std::vector<std::vector<int64_t>>& label_histograms,
    double fraction);

}  // namespace niid

#endif  // NIID_FL_SAMPLING_H_
