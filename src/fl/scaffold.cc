#include "fl/scaffold.h"

#include <cmath>

#include "util/check.h"

namespace niid {

void Scaffold::Initialize(int num_clients, int64_t state_size) {
  num_clients_ = num_clients;
  server_c_.assign(state_size, 0.f);
  client_c_.clear();
  zero_control_.assign(state_size, 0.f);
}

StateVector& Scaffold::EnsureClientControl(int id) {
  auto it = client_c_.find(id);
  if (it == client_c_.end()) {
    // Lazy creation. Under concurrent RunClient calls the server has
    // already inserted this entry via PrepareClients, so this branch only
    // runs for serial callers (tests driving RunClient directly).
    it = client_c_.emplace(id, StateVector(server_c_.size(), 0.f)).first;
  }
  return it->second;
}

void Scaffold::PrepareClients(const std::vector<int>& client_ids) {
  NIID_CHECK_GT(num_clients_, 0) << "Initialize() not called";
  for (const int id : client_ids) EnsureClientControl(id);
}

const StateVector& Scaffold::client_control(int id) const {
  const auto it = client_c_.find(id);
  return it == client_c_.end() ? zero_control_ : it->second;
}

LocalUpdate Scaffold::RunClient(Client& client, TrainContext& ctx,
                                const StateVector& global,
                                const LocalTrainOptions& options) {
  NIID_CHECK_GT(num_clients_, 0) << "Initialize() not called";
  StateVector& c_i = EnsureClientControl(client.id());
  NIID_CHECK_EQ(c_i.size(), global.size());

  // Correction c - c_i is constant during the round; it lives in the
  // checked-out workspace so concurrent parties never share storage.
  SubtractInto(server_c_, c_i, ctx.correction);
  StateVector& correction = ctx.correction;
  Client::GradHook hook = [&correction](Module& model) {
    AxpyToGrads(model, 1.f, correction);
  };

  LocalTrainOptions local = options;
  local.keep_local_buffers = !config_.average_bn_buffers;
  LocalUpdate update = client.Train(ctx, global, local, hook);

  // Refresh the local control variate (Algorithm 2, line 23).
  StateVector& c_new = ctx.control_scratch;
  if (config_.scaffold_variant == 1) {
    client.FullBatchGradientInto(ctx, global, options.batch_size, c_new);
  } else {
    // c_i* = c_i - c + (w^t - w_i) / (tau_i * eta_eff). delta is already
    // w^t - w_i; buffer positions must stay zero in control space.
    //
    // eta_eff accounts for heavy-ball momentum: with momentum m the update
    // accumulated over tau steps is ~ eta/(1-m) * sum of gradients, so
    // dividing by plain tau*eta overestimates the mean gradient by 1/(1-m).
    // SCAFFOLD's derivation assumes plain SGD; without this correction the
    // control-variate deviation dynamics have a growth factor (1 - 1/(1-m))
    // per round and the algorithm reliably explodes to NaN.
    NIID_CHECK_GT(update.tau, 0);
    c_new = c_i;
    const float eta_eff =
        options.learning_rate / (1.f - options.momentum);
    const float scale = 1.f / (static_cast<float>(update.tau) * eta_eff);
    int64_t offset = 0;
    for (const StateSegment& seg : ctx.layout) {
      if (seg.trainable) {
        for (int64_t i = seg.offset; i < seg.offset + seg.size; ++i) {
          c_new[i] += -server_c_[i] + scale * update.delta[i];
        }
      }
      offset += seg.size;
    }
    NIID_CHECK_EQ(offset, static_cast<int64_t>(global.size()));
  }

  update.delta_c.resize(c_new.size());
  for (size_t i = 0; i < c_new.size(); ++i) {
    update.delta_c[i] = c_new[i] - c_i[i];
  }
  // Copy (not move): c_new aliases workspace scratch that must keep its
  // storage for the next party using this context.
  c_i = c_new;
  return update;
}

std::vector<StateVector> Scaffold::SaveAlgorithmState() const {
  std::vector<StateVector> state;
  if (num_clients_ <= kDenseControlSaveLimit) {
    // Historical dense layout [server_c, c_0..c_{N-1}]: lazily absent
    // entries serialize as the zeros they represent, so the bytes match
    // every earlier revision.
    state.reserve(1 + static_cast<size_t>(num_clients_));
    state.push_back(server_c_);
    for (int i = 0; i < num_clients_; ++i) state.push_back(client_control(i));
    return state;
  }
  // Sparse layout [server_c, ids, c_{id}...]: only ever-sampled parties are
  // serialized. Ids (ascending map order) are stored as exact float values.
  state.reserve(2 + client_c_.size());
  state.push_back(server_c_);
  StateVector ids;
  ids.reserve(client_c_.size());
  for (const auto& [id, c_i] : client_c_) {
    NIID_CHECK_LT(id, 1 << 24) << "party id not exactly representable";
    ids.push_back(static_cast<float>(id));
  }
  state.push_back(std::move(ids));
  for (const auto& [id, c_i] : client_c_) state.push_back(c_i);
  return state;
}

Status Scaffold::LoadAlgorithmState(const std::vector<StateVector>& state) {
  // Validate everything before committing anything so a bad checkpoint
  // cannot leave the control variates half-restored.
  if (num_clients_ <= kDenseControlSaveLimit) {
    // Dense layout [server_c, c_0..c_{N-1}].
    if (state.size() != 1 + static_cast<size_t>(num_clients_)) {
      return Status::InvalidArgument(
          "scaffold checkpoint has " + std::to_string(state.size()) +
          " vectors, expected " + std::to_string(1 + num_clients_));
    }
    for (const StateVector& vec : state) {
      if (vec.size() != server_c_.size()) {
        return Status::InvalidArgument(
            "scaffold control-variate size mismatch");
      }
    }
    server_c_ = state[0];
    client_c_.clear();
    for (int i = 0; i < num_clients_; ++i) {
      // All-zero vectors are the lazy default; storing them would grow the
      // table back to O(N) on every resume.
      const StateVector& c_i = state[static_cast<size_t>(i) + 1];
      bool all_zero = true;
      for (const float v : c_i) {
        if (v != 0.f) {
          all_zero = false;
          break;
        }
      }
      if (!all_zero) client_c_[i] = c_i;
    }
    return Status::Ok();
  }
  // Sparse layout [server_c, ids, c_{id}...].
  if (state.size() < 2) {
    return Status::InvalidArgument("scaffold sparse checkpoint truncated");
  }
  if (state[0].size() != server_c_.size()) {
    return Status::InvalidArgument("scaffold control-variate size mismatch");
  }
  const StateVector& ids = state[1];
  if (state.size() != 2 + ids.size()) {
    return Status::InvalidArgument(
        "scaffold sparse checkpoint has " + std::to_string(state.size()) +
        " vectors for " + std::to_string(ids.size()) + " ids");
  }
  for (size_t k = 0; k < ids.size(); ++k) {
    const float fid = ids[k];
    if (!(fid >= 0.f) || fid != std::floor(fid) ||
        fid >= static_cast<float>(num_clients_)) {
      return Status::InvalidArgument("scaffold sparse checkpoint id invalid");
    }
    if (k > 0 && ids[k] <= ids[k - 1]) {
      return Status::InvalidArgument(
          "scaffold sparse checkpoint ids not ascending");
    }
    if (state[2 + k].size() != server_c_.size()) {
      return Status::InvalidArgument("scaffold control-variate size mismatch");
    }
  }
  server_c_ = state[0];
  client_c_.clear();
  for (size_t k = 0; k < ids.size(); ++k) {
    client_c_[static_cast<int>(ids[k])] = state[2 + k];
  }
  return Status::Ok();
}

void Scaffold::Aggregate(StateVector& global, std::vector<LocalUpdate>& updates,
                         const std::vector<StateSegment>& layout,
                         ShardReducer& reducer) {
  WeightedAverageDeltas(global, updates, layout, config_.server_lr,
                        config_.average_bn_buffers, reducer);
  if (updates.empty()) return;
  // c^{t+1} = c^t + (1/N) sum Delta c_i, with N the total number of parties
  // (Algorithm 2, line 10) — under partial participation the control variate
  // moves slowly, which is exactly the weakness Finding 8 exposes. The sum
  // runs through the same canonical tree as the deltas.
  const float inv_n = 1.f / static_cast<float>(num_clients_);
  coeff_scratch_.assign(updates.size(), inv_n);
  for (const LocalUpdate& update : updates) {
    NIID_CHECK_EQ(update.delta_c.size(), server_c_.size());
  }
  const StateVector& acc_c = reducer.ReduceScaled(
      updates, coeff_scratch_, ShardReducer::Field::kDeltaC);
  for (size_t i = 0; i < server_c_.size(); ++i) server_c_[i] += acc_c[i];
}

}  // namespace niid
