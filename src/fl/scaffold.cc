#include "fl/scaffold.h"

#include "util/check.h"

namespace niid {

void Scaffold::Initialize(int num_clients, int64_t state_size) {
  num_clients_ = num_clients;
  server_c_.assign(state_size, 0.f);
  client_c_.assign(num_clients, StateVector(state_size, 0.f));
}

LocalUpdate Scaffold::RunClient(Client& client, TrainContext& ctx,
                                const StateVector& global,
                                const LocalTrainOptions& options) {
  NIID_CHECK_GT(num_clients_, 0) << "Initialize() not called";
  StateVector& c_i = client_c_.at(client.id());
  NIID_CHECK_EQ(c_i.size(), global.size());

  // Correction c - c_i is constant during the round; it lives in the
  // checked-out workspace so concurrent parties never share storage.
  SubtractInto(server_c_, c_i, ctx.correction);
  StateVector& correction = ctx.correction;
  Client::GradHook hook = [&correction](Module& model) {
    AxpyToGrads(model, 1.f, correction);
  };

  LocalTrainOptions local = options;
  local.keep_local_buffers = !config_.average_bn_buffers;
  LocalUpdate update = client.Train(ctx, global, local, hook);

  // Refresh the local control variate (Algorithm 2, line 23).
  StateVector& c_new = ctx.control_scratch;
  if (config_.scaffold_variant == 1) {
    client.FullBatchGradientInto(ctx, global, options.batch_size, c_new);
  } else {
    // c_i* = c_i - c + (w^t - w_i) / (tau_i * eta_eff). delta is already
    // w^t - w_i; buffer positions must stay zero in control space.
    //
    // eta_eff accounts for heavy-ball momentum: with momentum m the update
    // accumulated over tau steps is ~ eta/(1-m) * sum of gradients, so
    // dividing by plain tau*eta overestimates the mean gradient by 1/(1-m).
    // SCAFFOLD's derivation assumes plain SGD; without this correction the
    // control-variate deviation dynamics have a growth factor (1 - 1/(1-m))
    // per round and the algorithm reliably explodes to NaN.
    NIID_CHECK_GT(update.tau, 0);
    c_new = c_i;
    const float eta_eff =
        options.learning_rate / (1.f - options.momentum);
    const float scale = 1.f / (static_cast<float>(update.tau) * eta_eff);
    int64_t offset = 0;
    for (const StateSegment& seg : ctx.layout) {
      if (seg.trainable) {
        for (int64_t i = seg.offset; i < seg.offset + seg.size; ++i) {
          c_new[i] += -server_c_[i] + scale * update.delta[i];
        }
      }
      offset += seg.size;
    }
    NIID_CHECK_EQ(offset, static_cast<int64_t>(global.size()));
  }

  update.delta_c.resize(c_new.size());
  for (size_t i = 0; i < c_new.size(); ++i) {
    update.delta_c[i] = c_new[i] - c_i[i];
  }
  // Copy (not move): c_new aliases workspace scratch that must keep its
  // storage for the next party using this context.
  c_i = c_new;
  return update;
}

std::vector<StateVector> Scaffold::SaveAlgorithmState() const {
  std::vector<StateVector> state;
  state.reserve(1 + client_c_.size());
  state.push_back(server_c_);
  for (const StateVector& c_i : client_c_) state.push_back(c_i);
  return state;
}

Status Scaffold::LoadAlgorithmState(const std::vector<StateVector>& state) {
  // Layout: [server_c, client_c_0, ..., client_c_{N-1}]. Validate every
  // vector before committing any so a bad checkpoint cannot leave the
  // control variates half-restored.
  if (state.size() != 1 + client_c_.size()) {
    return Status::InvalidArgument(
        "scaffold checkpoint has " + std::to_string(state.size()) +
        " vectors, expected " + std::to_string(1 + client_c_.size()));
  }
  for (const StateVector& vec : state) {
    if (vec.size() != server_c_.size()) {
      return Status::InvalidArgument(
          "scaffold control-variate size mismatch");
    }
  }
  server_c_ = state[0];
  for (size_t i = 0; i < client_c_.size(); ++i) client_c_[i] = state[i + 1];
  return Status::Ok();
}

void Scaffold::Aggregate(StateVector& global,
                         const std::vector<LocalUpdate>& updates,
                         const std::vector<StateSegment>& layout) {
  WeightedAverageDeltas(global, updates, layout, config_.server_lr,
                        config_.average_bn_buffers);
  // c^{t+1} = c^t + (1/N) sum Delta c_i, with N the total number of parties
  // (Algorithm 2, line 10) — under partial participation the control variate
  // moves slowly, which is exactly the weakness Finding 8 exposes.
  const float inv_n = 1.f / static_cast<float>(num_clients_);
  for (const LocalUpdate& update : updates) {
    NIID_CHECK_EQ(update.delta_c.size(), server_c_.size());
    for (size_t i = 0; i < server_c_.size(); ++i) {
      server_c_[i] += inv_n * update.delta_c[i];
    }
  }
}

}  // namespace niid
