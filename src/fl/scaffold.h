#ifndef NIID_FL_SCAFFOLD_H_
#define NIID_FL_SCAFFOLD_H_

#include <map>
#include <string>
#include <vector>

#include "fl/algorithm.h"

namespace niid {

/// SCAFFOLD (Karimireddy et al., Algorithm 2): variance reduction through
/// control variates. The server keeps c, each party keeps c_i; local steps
/// use the corrected gradient g - c_i + c, and after training the party
/// refreshes c_i by either
///   option (i):  c_i* = full-batch gradient of the local loss at w^t, or
///   option (ii): c_i* = c_i - c + (w^t - w_i) / (tau_i * eta)  (cheaper).
/// The server updates c += (1/N) * sum of Delta c_i over the sampled parties
/// (N = total parties) and aggregates deltas like FedAvg. Communication per
/// party doubles (model + control variate).
///
/// Client control variates are created lazily, the first time a party is
/// sampled (a never-sampled party's c_i is identically zero, so nothing is
/// lost by not storing it). This keeps the table O(ever-sampled parties)
/// instead of O(N) * state_size, which is what makes SCAFFOLD usable at
/// cross-device scale (N = 1M). Creation happens in PrepareClients (serial,
/// before the round's concurrent RunClient calls); RunClient itself only
/// reads/writes this party's existing entry.
class Scaffold : public FlAlgorithm {
 public:
  explicit Scaffold(const AlgorithmConfig& config) : config_(config) {}

  std::string name() const override { return "scaffold"; }
  void Initialize(int num_clients, int64_t state_size) override;
  void PrepareClients(const std::vector<int>& client_ids) override;
  LocalUpdate RunClient(Client& client, TrainContext& ctx,
                        const StateVector& global,
                        const LocalTrainOptions& options) override;
  using FlAlgorithm::Aggregate;
  void Aggregate(StateVector& global, std::vector<LocalUpdate>& updates,
                 const std::vector<StateSegment>& layout,
                 ShardReducer& reducer) override;
  int64_t UploadFloatsPerClient(int64_t state_size) const override {
    return 2 * state_size;
  }
  std::vector<StateVector> SaveAlgorithmState() const override;
  Status LoadAlgorithmState(const std::vector<StateVector>& state) override;

  const StateVector& server_control() const { return server_c_; }
  /// Party `id`'s control variate; all-zero (the lazy default) when the
  /// party has never been sampled.
  const StateVector& client_control(int id) const;

 private:
  /// Checkpoint layout switch: federations up to this size serialize the
  /// historical dense [server_c, c_0..c_{N-1}] layout byte-for-byte; larger
  /// ones use the sparse [server_c, ids, c_{id}...] layout (ids ascending,
  /// stored as exact float values — party ids stay below 2^24).
  static constexpr int kDenseControlSaveLimit = 4096;

  StateVector& EnsureClientControl(int id);

  AlgorithmConfig config_;
  int num_clients_ = 0;
  StateVector server_c_;
  /// Lazily created per-party control variates, keyed by party id (ordered
  /// map: checkpoint serialization iterates it deterministically).
  std::map<int, StateVector> client_c_;
  /// What client_control returns for never-sampled parties.
  StateVector zero_control_;
};

}  // namespace niid

#endif  // NIID_FL_SCAFFOLD_H_
