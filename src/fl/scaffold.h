#ifndef NIID_FL_SCAFFOLD_H_
#define NIID_FL_SCAFFOLD_H_

#include <string>
#include <vector>

#include "fl/algorithm.h"

namespace niid {

/// SCAFFOLD (Karimireddy et al., Algorithm 2): variance reduction through
/// control variates. The server keeps c, each party keeps c_i; local steps
/// use the corrected gradient g - c_i + c, and after training the party
/// refreshes c_i by either
///   option (i):  c_i* = full-batch gradient of the local loss at w^t, or
///   option (ii): c_i* = c_i - c + (w^t - w_i) / (tau_i * eta)  (cheaper).
/// The server updates c += (1/N) * sum of Delta c_i over the sampled parties
/// (N = total parties) and aggregates deltas like FedAvg. Communication per
/// party doubles (model + control variate).
class Scaffold : public FlAlgorithm {
 public:
  explicit Scaffold(const AlgorithmConfig& config) : config_(config) {}

  std::string name() const override { return "scaffold"; }
  void Initialize(int num_clients, int64_t state_size) override;
  LocalUpdate RunClient(Client& client, TrainContext& ctx,
                        const StateVector& global,
                        const LocalTrainOptions& options) override;
  void Aggregate(StateVector& global, const std::vector<LocalUpdate>& updates,
                 const std::vector<StateSegment>& layout) override;
  int64_t UploadFloatsPerClient(int64_t state_size) const override {
    return 2 * state_size;
  }
  std::vector<StateVector> SaveAlgorithmState() const override;
  Status LoadAlgorithmState(const std::vector<StateVector>& state) override;

  const StateVector& server_control() const { return server_c_; }
  const StateVector& client_control(int id) const { return client_c_.at(id); }

 private:
  AlgorithmConfig config_;
  int num_clients_ = 0;
  StateVector server_c_;
  std::vector<StateVector> client_c_;
};

}  // namespace niid

#endif  // NIID_FL_SCAFFOLD_H_
