#include "fl/scenario.h"

#include <cmath>

#include "util/check.h"

namespace niid {
namespace {

// splitmix64-style avalanche, same constants as the FaultPlan stream: mixes
// the (seed, round, client, stream) tuple into an Rng seed.
uint64_t Mix(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

// Stream indices keep every scenario query on a disjoint Rng cell. Values
// are arbitrary but frozen: changing one silently re-deals every committed
// scenario schedule.
constexpr uint64_t kStreamAvailability = 0;
constexpr uint64_t kStreamAdversary = 1;
constexpr uint64_t kStreamDriftPrior = 2;
constexpr uint64_t kStreamDriftSample = 3;
constexpr uint64_t kStreamPoison = 4;
constexpr uint64_t kStreamPhase = 5;

uint64_t HashDouble(uint64_t h, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  __builtin_memcpy(&bits, &v, sizeof(bits));
  return Mix(h ^ bits);
}

}  // namespace

StatusOr<AttackKind> ParseAttack(const std::string& name) {
  if (name == "none") return AttackKind::kNone;
  if (name == "labelflip") return AttackKind::kLabelFlip;
  if (name == "signflip") return AttackKind::kSignFlip;
  if (name == "scale") return AttackKind::kScale;
  if (name == "noise") return AttackKind::kNoise;
  return Status::InvalidArgument(
      "unknown attack '" + name +
      "' (expected none, labelflip, signflip, scale, or noise)");
}

std::string AttackName(AttackKind kind) {
  switch (kind) {
    case AttackKind::kNone:
      return "none";
    case AttackKind::kLabelFlip:
      return "labelflip";
    case AttackKind::kSignFlip:
      return "signflip";
    case AttackKind::kScale:
      return "scale";
    case AttackKind::kNoise:
      return "noise";
  }
  return "unknown";
}

ScenarioPlan::ScenarioPlan(const ScenarioConfig& config, uint64_t server_seed)
    : config_(config) {
  NIID_CHECK_GE(config.drift_period, 0);
  NIID_CHECK_GT(config.drift_beta, 0.0);
  NIID_CHECK_GE(config.drift_intensity, 0.0);
  NIID_CHECK_LE(config.drift_intensity, 1.0);
  NIID_CHECK_GE(config.availability_amplitude, 0.0);
  NIID_CHECK_LE(config.availability_amplitude, 1.0);
  NIID_CHECK_GT(config.availability_period, 0);
  NIID_CHECK_GE(config.adversary_fraction, 0.0);
  NIID_CHECK_LE(config.adversary_fraction, 1.0);
  NIID_CHECK_GT(config.attack_scale, 0.0);
  if (config.drifts() || config.attack == AttackKind::kLabelFlip) {
    NIID_CHECK_GT(config.num_classes, 1)
        << "label transforms need the dataset's class count";
  }
  // A fixed offset (distinct from the FaultPlan one) keeps the derived
  // scenario stream disjoint from both the server seed and the fault stream.
  base_seed_ = config.seed != 0
                   ? config.seed
                   : Mix(server_seed + 0x2545f4914f6cdd1dULL);
}

Rng ScenarioPlan::CellRng(int round, int client, uint64_t stream) const {
  uint64_t seed = base_seed_;
  seed = Mix(seed ^ (static_cast<uint64_t>(round) + 0x632be59bd9b4e019ULL));
  seed = Mix(seed ^ (static_cast<uint64_t>(client) + 0xd6e8feb86659fd93ULL));
  seed = Mix(seed ^ stream);
  return Rng(seed);
}

bool ScenarioPlan::Available(int round, int client) const {
  NIID_CHECK_GE(round, 0);
  NIID_CHECK_GE(client, 0);
  if (!config_.gates_availability()) return true;
  // Per-party phase so the diurnal trough rolls through the population in
  // waves instead of blacking out everyone in the same rounds.
  const uint64_t phase = CellRng(0, client, kStreamPhase)
                             .UniformInt(config_.availability_period);
  const double angle =
      2.0 * M_PI *
      (static_cast<double>(round + static_cast<int>(phase)) /
       config_.availability_period);
  const double p_avail =
      1.0 - config_.availability_amplitude * 0.5 * (1.0 + std::sin(angle));
  return CellRng(round, client, kStreamAvailability).Uniform() < p_avail;
}

int ScenarioPlan::DriftGeneration(int round, int client) const {
  NIID_CHECK_GE(round, 0);
  NIID_CHECK_GE(client, 0);
  if (!config_.drifts()) return 0;
  // Generation is a pure function of round / period with a per-party phase:
  // O(1) with no per-round bookkeeping, so the sparse 1M-party engine can
  // evaluate it for any (round, client) it happens to materialize.
  const uint64_t phase =
      CellRng(0, client, kStreamPhase).UniformInt(config_.drift_period);
  return (round + static_cast<int>(phase)) / config_.drift_period;
}

bool ScenarioPlan::IsAdversary(int client) const {
  NIID_CHECK_GE(client, 0);
  if (!config_.adversarial()) return false;
  // Round-independent: the adversary subset is fixed for the whole run, as
  // in the standard Byzantine threat model.
  return CellRng(0, client, kStreamAdversary).Uniform() <
         config_.adversary_fraction;
}

int ScenarioPlan::DriftedLabel(int client, int generation, double u) const {
  const int classes = config_.num_classes;
  // One Dirichlet(beta) draw is gamma(beta) per class, normalized. Selecting
  // a categorical sample from it only needs the total mass and a cumulative
  // walk, so the gamma stream is replayed twice instead of allocating a
  // prior vector — this runs inside the training hot loop.
  Rng prior = CellRng(generation, client, kStreamDriftPrior);
  double total = 0.0;
  for (int c = 0; c < classes; ++c) {
    total += prior.Gamma(config_.drift_beta);
  }
  NIID_CHECK_GT(total, 0.0);
  const double target = u * total;
  Rng walk = CellRng(generation, client, kStreamDriftPrior);
  double cumulative = 0.0;
  for (int c = 0; c < classes; ++c) {
    cumulative += walk.Gamma(config_.drift_beta);
    if (target < cumulative) return c;
  }
  return classes - 1;
}

int ScenarioPlan::TransformLabel(int client, int generation,
                                 int64_t sample_index, int label,
                                 bool flip) const {
  int out = label;
  if (generation > 0 && config_.drifts()) {
    // The per-sample stream folds the local sample index into the stream
    // slot, so each sample decides independently — and identically across
    // epochs, shuffles, and thread counts.
    Rng sample_rng =
        CellRng(generation, client,
                kStreamDriftSample ^ Mix(static_cast<uint64_t>(sample_index) +
                                         0x9e3779b97f4a7c15ULL));
    if (sample_rng.Uniform() < config_.drift_intensity) {
      out = DriftedLabel(client, generation, sample_rng.Uniform());
    }
  }
  if (flip) {
    // The classic targeted flip: y -> C-1-y. Deterministic, so a flipped
    // party trains on a consistent (wrong) task every round.
    out = config_.num_classes - 1 - out;
  }
  return out;
}

void ScenarioPlan::Poison(int round, int client, LocalUpdate& update) const {
  switch (config_.attack) {
    case AttackKind::kNone:
    case AttackKind::kLabelFlip:
      return;
    case AttackKind::kSignFlip: {
      const float factor = -static_cast<float>(config_.attack_scale);
      for (float& v : update.delta) v *= factor;
      for (float& v : update.delta_c) v *= factor;
      return;
    }
    case AttackKind::kScale: {
      const float factor = static_cast<float>(config_.attack_scale);
      for (float& v : update.delta) v *= factor;
      for (float& v : update.delta_c) v *= factor;
      return;
    }
    case AttackKind::kNoise: {
      Rng rng = CellRng(round, client, kStreamPoison);
      const float stddev = static_cast<float>(config_.attack_scale);
      for (float& v : update.delta) {
        v += stddev * static_cast<float>(rng.Normal());
      }
      return;
    }
  }
}

uint64_t ScenarioPlan::Fingerprint() const {
  if (!config_.enabled()) return 0;
  uint64_t h = Mix(base_seed_ ^ 0x5851f42d4c957f2dULL);
  h = Mix(h ^ static_cast<uint64_t>(config_.drift_period));
  h = HashDouble(h, config_.drift_beta);
  h = HashDouble(h, config_.drift_intensity);
  h = HashDouble(h, config_.availability_amplitude);
  h = Mix(h ^ static_cast<uint64_t>(config_.availability_period));
  h = HashDouble(h, config_.adversary_fraction);
  h = Mix(h ^ static_cast<uint64_t>(config_.attack));
  h = HashDouble(h, config_.attack_scale);
  h = Mix(h ^ static_cast<uint64_t>(config_.num_classes));
  // A disabled scenario fingerprints as 0; make sure an enabled one never
  // collides with that sentinel.
  return h == 0 ? 1 : h;
}

}  // namespace niid
