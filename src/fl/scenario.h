#ifndef NIID_FL_SCENARIO_H_
#define NIID_FL_SCENARIO_H_

#include <cstdint>
#include <string>

#include "fl/client.h"
#include "util/rng.h"
#include "util/status.h"

namespace niid {

/// Adversarial update transform applied by a malicious party between its
/// local training output and the upload. kLabelFlip is a data-poisoning
/// attack (training itself runs on flipped labels); the other three are
/// model-poisoning attacks on the update vector.
enum class AttackKind { kNone, kLabelFlip, kSignFlip, kScale, kNoise };

StatusOr<AttackKind> ParseAttack(const std::string& name);
std::string AttackName(AttackKind kind);

/// Deterministic environment model layered on top of the static paper
/// partitions: label drift over rounds, diurnal availability, and a fixed
/// adversary subset running one of the attacks above. All probabilities and
/// periods are per-round / per-client; everything derives from one seed so a
/// scenario run replays exactly.
struct ScenarioConfig {
  /// Rounds per drift generation; 0 disables drift. Within a generation a
  /// party's labels are stable; at each generation boundary (phase-shifted
  /// per party) a fresh Dirichlet label prior is drawn and a fraction of the
  /// party's samples are relabeled from it.
  int drift_period = 0;
  /// Concentration of the re-drawn per-party label prior.
  double drift_beta = 0.5;
  /// Fraction of a drifting party's samples that take the new prior's label.
  double drift_intensity = 0.5;
  /// Peak-to-trough availability swing in [0, 1]; 0 disables the gate. A
  /// party's availability follows 1 - amplitude * (1 + sin(...)) / 2 over a
  /// period of `availability_period` rounds, phase-shifted per party so the
  /// population thins out in rolling waves rather than all at once.
  double availability_amplitude = 0.0;
  /// Rounds per simulated day for the availability sinusoid.
  int availability_period = 24;
  /// Fraction of the population that is adversarial. The adversary set is a
  /// pure function of (seed, client) — fixed across rounds, as in the
  /// standard Byzantine threat model.
  double adversary_fraction = 0.0;
  AttackKind attack = AttackKind::kNone;
  /// kSignFlip / kScale: multiplier magnitude. kNoise: stddev of the added
  /// Gaussian per coordinate.
  double attack_scale = 1.0;
  /// Number of label classes; required (> 0) when drift or label-flip is
  /// active. The experiment runner fills it from the dataset.
  int num_classes = 0;
  /// Seed of the scenario stream. 0 derives it from the server seed, keeping
  /// scenario draws independent of sampling, training, and fault streams.
  uint64_t seed = 0;

  bool drifts() const { return drift_period > 0; }
  bool gates_availability() const { return availability_amplitude > 0.0; }
  bool adversarial() const {
    return adversary_fraction > 0.0 && attack != AttackKind::kNone;
  }
  bool enabled() const {
    return drifts() || gates_availability() || adversarial();
  }
};

/// A seeded, stateless scenario schedule following the FaultPlan idiom:
/// every query is a pure function of (seed, round, client[, sample]), so it
/// can be evaluated from any worker thread in any order — that is what makes
/// scenario runs bit-identical across num_threads in {1, 2, 8} and across
/// shard counts, and what lets checkpoint resume reconstruct the schedule
/// from the config fingerprint alone (there is no mutable state to save).
class ScenarioPlan {
 public:
  /// `server_seed` anchors the derived stream when config.seed == 0.
  ScenarioPlan(const ScenarioConfig& config, uint64_t server_seed);

  /// Whether `client` is reachable in `round` under the diurnal trace.
  /// Always true when availability gating is off. Thread-safe.
  bool Available(int round, int client) const;

  /// Drift generation of `client` at `round` (0 before the first drift).
  /// Purely round / period with a per-party phase, so sparse 1M-party mode
  /// never needs per-round bookkeeping.
  int DriftGeneration(int round, int client) const;

  /// Whether `client` belongs to the fixed adversary subset.
  bool IsAdversary(int client) const;

  /// Label seen by training for the party's local sample `sample_index`
  /// whose partition-time label is `label`. Applies generation drift first
  /// (if `generation` > 0), then the adversarial label flip (if `flip`).
  /// Pure in (seed, client, generation, sample_index, label).
  int TransformLabel(int client, int generation, int64_t sample_index,
                     int label, bool flip) const;

  /// Applies the configured model-poisoning attack to `update` in place.
  /// No-op for kNone / kLabelFlip. Deterministic per (round, client).
  void Poison(int round, int client, LocalUpdate& update) const;

  /// Stable hash of every config field (and the resolved base seed); 0 when
  /// the scenario is disabled. Checkpoints carry it so resume can prove the
  /// resumed process replays the same schedule.
  uint64_t Fingerprint() const;

  bool enabled() const { return config_.enabled(); }
  const ScenarioConfig& config() const { return config_; }

 private:
  /// Fresh Rng for the (round, client, stream) cell.
  Rng CellRng(int round, int client, uint64_t stream) const;

  /// Draws a label from the party's generation-`generation` Dirichlet prior
  /// without materializing the prior vector: the per-(client, generation)
  /// gamma stream is replayed twice (total mass, then the cumulative walk
  /// that `u` selects into).
  int DriftedLabel(int client, int generation, double u) const;

  ScenarioConfig config_;
  uint64_t base_seed_;
};

}  // namespace niid

#endif  // NIID_FL_SCENARIO_H_
