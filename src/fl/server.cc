#include "fl/server.h"

#include <algorithm>

#include "fl/sampling.h"
#include "util/check.h"

namespace niid {

FederatedServer::FederatedServer(const ModelFactory& factory,
                                 std::vector<std::unique_ptr<Client>> clients,
                                 std::unique_ptr<FlAlgorithm> algorithm,
                                 const ServerConfig& config)
    : clients_(std::move(clients)),
      algorithm_(std::move(algorithm)),
      config_(config),
      rng_(config.seed) {
  NIID_CHECK(!clients_.empty());
  Rng init_rng = rng_.Split();
  {
    // The global model exists only as a flat state vector; the factory model
    // is needed once, to draw the initial weights from the server's stream
    // (bit-identical to every earlier revision) and record the layout.
    std::unique_ptr<Module> init_model = factory(init_rng);
    global_state_ = FlattenState(*init_model);
    layout_ = StateLayout(*init_model);
  }
  algorithm_->Initialize(static_cast<int>(clients_.size()),
                         static_cast<int64_t>(global_state_.size()));
  if (config_.skew_aware_sampling) {
    label_histograms_.reserve(clients_.size());
    for (const auto& client : clients_) {
      label_histograms_.push_back(CountLabels(client->data()));
    }
  }
  if (config_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(config_.num_threads);
  }
  // One model replica per worker (plus none for the server): all training and
  // evaluation time-shares these contexts, so resident model memory stays
  // O(num_threads) no matter how many parties the simulation holds.
  workspaces_ = std::make_unique<WorkspacePool>(
      factory, std::max(1, config_.num_threads));
  if (pool_) {
    // The round pool doubles as the layer-level GEMM pool. When RunRound
    // already spreads sampled clients across the workers, nested layer calls
    // detect the re-entrancy and run serially; with few sampled clients the
    // GEMM row-block parallelism picks up the slack. Either way results are
    // bit-identical to single-threaded execution.
    workspaces_->SetComputePool(pool_.get());
  }
}

RoundStats FederatedServer::RunRound(const LocalTrainOptions& options) {
  RoundStats stats;
  stats.round = rounds_completed_;
  stats.sampled_clients =
      config_.skew_aware_sampling
          ? SamplePartiesSkewAware(rng_, label_histograms_,
                                   config_.sample_fraction)
          : SampleParties(rng_, num_clients(), config_.sample_fraction);

  // Heterogeneous local epochs (FedNova's setting): drawn serially from the
  // server stream before the parallel section so results stay deterministic.
  std::vector<LocalTrainOptions> per_client_options(
      stats.sampled_clients.size(), options);
  if (config_.min_local_epochs > 0) {
    NIID_CHECK_LE(config_.min_local_epochs, options.local_epochs);
    for (auto& client_options : per_client_options) {
      const int span = options.local_epochs - config_.min_local_epochs + 1;
      client_options.local_epochs =
          config_.min_local_epochs + static_cast<int>(rng_.UniformInt(span));
    }
  }

  std::vector<LocalUpdate> updates(stats.sampled_clients.size());
  ParallelFor(pool_.get(), static_cast<int64_t>(stats.sampled_clients.size()),
              [&](int64_t slot) {
                // Check a workspace out for this party, train into it, check
                // it back in. Which context a party lands on is irrelevant:
                // Train fully reloads model (and optimizer) state, so results
                // are bit-identical across thread counts.
                WorkspaceLease lease(*workspaces_);
                Client& client = *clients_[stats.sampled_clients[slot]];
                updates[slot] = algorithm_->RunClient(
                    client, *lease, global_state_, per_client_options[slot]);
              });

  // Client-level DP: conceptually the party perturbs its upload; applied
  // here serially (deterministic order) with the server's stream standing in
  // for the parties' noise sources.
  if (config_.dp.enabled()) {
    for (LocalUpdate& update : updates) {
      ApplyDpToUpdate(config_.dp, rng_, update);
    }
  }

  algorithm_->Aggregate(global_state_, updates, layout_);

  double loss_sum = 0.0;
  for (const LocalUpdate& update : updates) loss_sum += update.average_loss;
  stats.mean_local_loss =
      updates.empty() ? 0.0 : loss_sum / static_cast<double>(updates.size());
  cumulative_upload_floats_ +=
      static_cast<int64_t>(updates.size()) *
      algorithm_->UploadFloatsPerClient(
          static_cast<int64_t>(global_state_.size()));
  stats.cumulative_upload_floats = cumulative_upload_floats_;
  ++rounds_completed_;
  return stats;
}

EvalResult FederatedServer::EvaluateGlobal(const Dataset& test,
                                           int batch_size) {
  return EvaluateParallel(*workspaces_, global_state_, test, pool_.get(),
                          batch_size);
}

EvalResult FederatedServer::EvaluatePersonalized(int client_id,
                                                const Dataset& test,
                                                int batch_size) {
  Client& client = *clients_.at(client_id);
  WorkspaceLease lease(*workspaces_);
  client.LoadPersonalState(*lease->model, lease->layout, global_state_);
  return Evaluate(*lease->model, test, batch_size);
}

void FederatedServer::set_global_state(StateVector state) {
  NIID_CHECK_EQ(state.size(), global_state_.size());
  global_state_ = std::move(state);
}

}  // namespace niid
