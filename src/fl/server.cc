#include "fl/server.h"

#include "fl/sampling.h"
#include "util/check.h"

namespace niid {

FederatedServer::FederatedServer(const ModelFactory& factory,
                                 std::vector<std::unique_ptr<Client>> clients,
                                 std::unique_ptr<FlAlgorithm> algorithm,
                                 const ServerConfig& config)
    : clients_(std::move(clients)),
      algorithm_(std::move(algorithm)),
      config_(config),
      rng_(config.seed) {
  NIID_CHECK(!clients_.empty());
  Rng init_rng = rng_.Split();
  global_model_ = factory(init_rng);
  global_state_ = FlattenState(*global_model_);
  layout_ = StateLayout(*global_model_);
  algorithm_->Initialize(static_cast<int>(clients_.size()),
                         static_cast<int64_t>(global_state_.size()));
  if (config_.skew_aware_sampling) {
    label_histograms_.reserve(clients_.size());
    for (const auto& client : clients_) {
      label_histograms_.push_back(CountLabels(client->data()));
    }
  }
  if (config_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(config_.num_threads);
    // The round pool doubles as the layer-level GEMM pool. When RunRound
    // already spreads sampled clients across the workers, nested layer calls
    // detect the re-entrancy and run serially; with few sampled clients the
    // GEMM row-block parallelism picks up the slack. Either way results are
    // bit-identical to single-threaded execution.
    global_model_->SetComputePool(pool_.get());
    for (auto& client : clients_) client->set_compute_pool(pool_.get());
  }
}

RoundStats FederatedServer::RunRound(const LocalTrainOptions& options) {
  RoundStats stats;
  stats.round = rounds_completed_;
  stats.sampled_clients =
      config_.skew_aware_sampling
          ? SamplePartiesSkewAware(rng_, label_histograms_,
                                   config_.sample_fraction)
          : SampleParties(rng_, num_clients(), config_.sample_fraction);

  // Heterogeneous local epochs (FedNova's setting): drawn serially from the
  // server stream before the parallel section so results stay deterministic.
  std::vector<LocalTrainOptions> per_client_options(
      stats.sampled_clients.size(), options);
  if (config_.min_local_epochs > 0) {
    NIID_CHECK_LE(config_.min_local_epochs, options.local_epochs);
    for (auto& client_options : per_client_options) {
      const int span = options.local_epochs - config_.min_local_epochs + 1;
      client_options.local_epochs =
          config_.min_local_epochs + static_cast<int>(rng_.UniformInt(span));
    }
  }

  std::vector<LocalUpdate> updates(stats.sampled_clients.size());
  ParallelFor(pool_.get(), static_cast<int64_t>(stats.sampled_clients.size()),
              [&](int64_t slot) {
                Client& client = *clients_[stats.sampled_clients[slot]];
                updates[slot] = algorithm_->RunClient(
                    client, global_state_, per_client_options[slot]);
              });

  // Client-level DP: conceptually the party perturbs its upload; applied
  // here serially (deterministic order) with the server's stream standing in
  // for the parties' noise sources.
  if (config_.dp.enabled()) {
    for (LocalUpdate& update : updates) {
      ApplyDpToUpdate(config_.dp, rng_, update);
    }
  }

  algorithm_->Aggregate(global_state_, updates, layout_);

  double loss_sum = 0.0;
  for (const LocalUpdate& update : updates) loss_sum += update.average_loss;
  stats.mean_local_loss =
      updates.empty() ? 0.0 : loss_sum / static_cast<double>(updates.size());
  cumulative_upload_floats_ +=
      static_cast<int64_t>(updates.size()) *
      algorithm_->UploadFloatsPerClient(
          static_cast<int64_t>(global_state_.size()));
  stats.cumulative_upload_floats = cumulative_upload_floats_;
  ++rounds_completed_;
  return stats;
}

EvalResult FederatedServer::EvaluateGlobal(const Dataset& test,
                                           int batch_size) {
  LoadState(*global_model_, global_state_);
  return Evaluate(*global_model_, test, batch_size);
}

void FederatedServer::set_global_state(StateVector state) {
  NIID_CHECK_EQ(state.size(), global_state_.size());
  global_state_ = std::move(state);
}

}  // namespace niid
