#include "fl/server.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "fl/sampling.h"
#include "util/check.h"

namespace niid {

Status ValidateUpdate(const LocalUpdate& update, double max_update_norm) {
  for (const float v : update.delta) {
    if (!std::isfinite(v)) {
      return Status::DataLoss("non-finite value in update from client " +
                              std::to_string(update.client_id));
    }
  }
  for (const float v : update.delta_c) {
    if (!std::isfinite(v)) {
      return Status::DataLoss(
          "non-finite control variate from client " +
          std::to_string(update.client_id));
    }
  }
  if (!std::isfinite(update.average_loss)) {
    return Status::DataLoss("non-finite loss from client " +
                            std::to_string(update.client_id));
  }
  if (max_update_norm > 0.0) {
    const double norm = Norm(update.delta);
    if (norm > max_update_norm) {
      return Status::InvalidArgument(
          "update norm " + std::to_string(norm) + " from client " +
          std::to_string(update.client_id) + " exceeds cap " +
          std::to_string(max_update_norm));
    }
  }
  return Status::Ok();
}

FederatedServer::FederatedServer(const ModelFactory& factory,
                                 std::vector<std::unique_ptr<Client>> clients,
                                 std::unique_ptr<FlAlgorithm> algorithm,
                                 const ServerConfig& config)
    : clients_(std::move(clients)),
      algorithm_(std::move(algorithm)),
      config_(config),
      fault_plan_(config.faults, config.seed),
      scenario_plan_(config.scenario, config.seed),
      rng_(config.seed) {
  NIID_CHECK(!clients_.empty());
  if (config_.skew_aware_sampling) {
    label_histograms_.reserve(clients_.size());
    for (const auto& client : clients_) {
      label_histograms_.push_back(CountLabels(client->data()));
    }
  }
  Init(factory);
}

FederatedServer::FederatedServer(const ModelFactory& factory,
                                 std::shared_ptr<const PartySource> parties,
                                 std::unique_ptr<FlAlgorithm> algorithm,
                                 const ServerConfig& config)
    : party_source_(std::move(parties)),
      algorithm_(std::move(algorithm)),
      config_(config),
      fault_plan_(config.faults, config.seed),
      scenario_plan_(config.scenario, config.seed),
      rng_(config.seed) {
  NIID_CHECK(party_source_ != nullptr);
  NIID_CHECK_GE(party_source_->num_parties(), 1);
  NIID_CHECK_LE(party_source_->num_parties(), static_cast<int64_t>(1) << 24)
      << "party ids must stay exactly representable in float for checkpoints";
  NIID_CHECK(!config_.skew_aware_sampling)
      << "skew-aware sampling needs the dense per-party label histograms";
  Init(factory);
}

void FederatedServer::Init(const ModelFactory& factory) {
  NIID_CHECK_GE(config_.min_aggregate_clients, 1);
  NIID_CHECK_GE(config_.max_resample_retries, 0);
  NIID_CHECK_GE(config_.max_update_norm, 0.0);
  NIID_CHECK_GE(config_.num_shards, 0);
  {
    StatusOr<std::unique_ptr<RobustAggregator>> robust =
        CreateRobustAggregator(config_.robust);
    NIID_CHECK(robust.ok()) << robust.status().ToString();
    robust_ = std::move(*robust);
  }
  Rng init_rng = rng_.Split();
  {
    // The global model exists only as a flat state vector; the factory model
    // is needed once, to draw the initial weights from the server's stream
    // (bit-identical to every earlier revision) and record the layout.
    std::unique_ptr<Module> init_model = factory(init_rng);
    global_state_ = FlattenState(*init_model);
    layout_ = StateLayout(*init_model);
  }
  algorithm_->Initialize(num_clients(),
                         static_cast<int64_t>(global_state_.size()));
  if (config_.compression.enabled()) {
    codec_ = std::make_unique<UpdateCodec>(
        config_.compression, config_.seed, layout_,
        static_cast<int64_t>(global_state_.size()));
  }
  if (config_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(config_.num_threads);
  }
  // One model replica per worker (plus none for the server): all training and
  // evaluation time-shares these contexts, so resident model memory stays
  // O(num_threads) no matter how many parties the simulation holds.
  workspaces_ = std::make_unique<WorkspacePool>(
      factory, std::max(1, config_.num_threads));
  if (pool_) {
    // The round pool doubles as the layer-level GEMM pool. When RunRound
    // already spreads sampled clients across the workers, nested layer calls
    // detect the re-entrancy and run serially; with few sampled clients the
    // GEMM row-block parallelism picks up the slack. Either way results are
    // bit-identical to single-threaded execution.
    workspaces_->SetComputePool(pool_.get());
  }
  // High-water reservations for RunRound's per-round scratch. Dense mode
  // bounds every vector by the party count; the sparse engine bounds them by
  // the per-round attempt budget instead, so reservations stay O(sampled)
  // even with a million simulated parties (round_attempted_ is the one
  // O(parties) exception — one bit per party).
  const size_t bound = static_cast<size_t>(RoundPartyBound());
  reducer_.Configure(config_.num_shards, pool_.get(),
                     static_cast<int64_t>(bound));
  round_survivors_.reserve(bound);
  round_attempted_.reserve(static_cast<size_t>(num_clients()));
  round_options_.reserve(bound);
  round_work_.reserve(bound);
  round_updates_.reserve(bound);
  if (codec_) round_payloads_.resize(bound);
  round_prepare_ids_.reserve(bound);
}

int64_t FederatedServer::RoundPartyBound() const {
  const int64_t parties = num_clients();
  if (!party_source_) return parties;
  int64_t per_attempt = parties;
  if (config_.sample_fraction < 1.0) {
    per_attempt = std::max<int64_t>(
        1,
        std::llround(config_.sample_fraction * static_cast<double>(parties)));
  }
  const int64_t attempts =
      static_cast<int64_t>(config_.max_resample_retries) + 1;
  return std::min(parties, per_attempt * attempts);
}

void FederatedServer::PrepareSlots(const std::vector<Assignment>& work) {
  while (slots_.size() < work.size()) {
    // NOLINTNEXTLINE(niid-hot-alloc) grow-only slot pool, bounded by
    // RoundPartyBound(); steady-state rounds only rebind.
    slots_.push_back(std::make_unique<Client>(-1, Rng(0)));
  }
  for (size_t i = 0; i < work.size(); ++i) {
    const int id = work[i].client_id;
    Client& slot = *slots_[i];
    slot.Rebind(id);
    const auto it = party_store_.find(id);
    if (it != party_store_.end()) {
      slot.RestoreRngState(it->second.rng);
      slot.set_buffer_state(it->second.buffers);
      slot.set_residual(it->second.residual);
    } else {
      // First contact: the party's private stream is a pure function of
      // (party_stream_seed, id) — O(1), no global split chain to replay.
      const Rng fresh(DeriveStreamSeed(config_.party_stream_seed,
                                       static_cast<uint64_t>(id)));
      slot.RestoreRngState(fresh.SaveState());
      slot.set_buffer_state({});
      slot.set_residual({});
    }
  }
}

void FederatedServer::CommitSlots(const std::vector<Assignment>& work) {
  for (size_t i = 0; i < work.size(); ++i) {
    // NOLINTNEXTLINE(niid-hot-alloc) at most one new node per first-ever
    // contact with a party; steady-state rounds overwrite in place.
    PartyState& state = party_store_[work[i].client_id];
    const Client& slot = *slots_[i];
    state.rng = slot.SaveRngState();
    state.buffers = slot.buffer_state();
    state.residual = slot.residual();
  }
}

// NIID_HOT: the per-round orchestration path. All round scratch lives in
// members reserved at construction (see the round_* fields), so steady-state
// rounds do not touch the allocator from this frame.
RoundStats FederatedServer::RunRound(const LocalTrainOptions& options) {
  RoundStats stats;
  stats.round = rounds_completed_;

  // Quorum loop. Each attempt samples a party set, trains the parties not
  // yet attempted this round, validates what arrives, and accumulates
  // survivors; when the survivor count stays below min_aggregate_clients the
  // server re-samples, up to max_resample_retries times. Termination is
  // bounded by construction: attempts never exceed retries + 1, and a party
  // is attempted at most once per round (its fault decision is a pure
  // function of (round, client), so retrying it would change nothing).
  std::vector<LocalUpdate>& survivors = round_survivors_;
  survivors.clear();
  std::vector<bool>& attempted = round_attempted_;
  attempted.assign(num_clients(), false);
  int num_attempted = 0;
  for (int attempt = 0;; ++attempt) {
    const std::vector<int> sampled =
        config_.skew_aware_sampling
            ? SamplePartiesSkewAware(rng_, label_histograms_,
                                     config_.sample_fraction)
            : SampleParties(rng_, num_clients(), config_.sample_fraction);
    if (attempt == 0) stats.sampled_clients = sampled;

    // Heterogeneous local epochs (FedNova's setting): drawn serially from
    // the server stream for every sampled party — including re-sampled ones
    // whose draw goes unused — so stream consumption is deterministic and,
    // with faults disabled, bit-identical to every earlier revision.
    std::vector<LocalTrainOptions>& per_client_options = round_options_;
    per_client_options.assign(sampled.size(), options);
    if (config_.min_local_epochs > 0) {
      NIID_CHECK_LE(config_.min_local_epochs, options.local_epochs);
      for (auto& client_options : per_client_options) {
        const int span = options.local_epochs - config_.min_local_epochs + 1;
        client_options.local_epochs =
            config_.min_local_epochs +
            static_cast<int>(rng_.UniformInt(span));
      }
    }

    // Resolve fault decisions up front (they are pure in (round, client))
    // and build the work list: dropped parties never train, stragglers and
    // crashers get truncated epochs.
    std::vector<Assignment>& work = round_work_;
    work.clear();
    for (size_t i = 0; i < sampled.size(); ++i) {
      const int id = sampled[i];
      if (attempted[id]) continue;
      attempted[id] = true;
      ++num_attempted;
      if (config_.scenario.gates_availability() &&
          !scenario_plan_.Available(stats.round, id)) {
        // Diurnal trough: the party is unreachable this round. It still
        // counts as attempted — its availability is a pure function of
        // (round, client), so retrying it would change nothing.
        ++stats.unavailable;
        continue;
      }
      Assignment assignment;
      assignment.client_id = id;
      assignment.options = per_client_options[i];
      if (fault_plan_.enabled()) {
        assignment.decision = fault_plan_.Decide(stats.round, id);
      }
      switch (assignment.decision.type) {
        case FaultType::kDrop:
          ++stats.dropped;
          continue;
        case FaultType::kCrash:
          ++stats.crashed;
          break;
        case FaultType::kStraggle:
          ++stats.straggled;
          break;
        default:
          break;
      }
      if (assignment.decision.type == FaultType::kCrash ||
          assignment.decision.type == FaultType::kStraggle) {
        assignment.options.local_epochs = std::max(
            1, static_cast<int>(assignment.decision.work_fraction *
                                assignment.options.local_epochs));
      }
      if (scenario_plan_.enabled()) {
        // Scenario label transforms: drift generation for everyone, the
        // flip only for adversarial parties under the labelflip attack.
        // Both are pure in (round, client), so they ride the options struct
        // into the parallel phase with no ordering concerns.
        const int generation = scenario_plan_.DriftGeneration(stats.round, id);
        const bool flip =
            config_.scenario.attack == AttackKind::kLabelFlip &&
            scenario_plan_.IsAdversary(id);
        if (generation > 0 || flip) {
          assignment.options.scenario = &scenario_plan_;
          assignment.options.drift_generation = generation;
          assignment.options.flip_labels = flip;
          if (flip) ++stats.flipped;
        }
      }
      // NOLINTNEXTLINE(niid-hot-alloc) within capacity reserved at startup
      work.push_back(std::move(assignment));
    }

    // Serial pre-phase: let the algorithm pre-insert any per-party state the
    // concurrent RunClient calls will read (SCAFFOLD's lazy control table),
    // and — under the sparse engine — bind the slot clients to this round's
    // parties, reinstalling their durable state.
    round_prepare_ids_.clear();
    for (const Assignment& assignment : work) {
      // NOLINTNEXTLINE(niid-hot-alloc) within capacity reserved at startup
      round_prepare_ids_.push_back(assignment.client_id);
    }
    algorithm_->PrepareClients(round_prepare_ids_);
    if (party_source_) PrepareSlots(work);

    std::vector<LocalUpdate>& updates = round_updates_;
    updates.clear();
    updates.resize(work.size());  // NOLINT(niid-hot-alloc) within capacity
    ParallelFor(
        pool_.get(), static_cast<int64_t>(work.size()), [&](int64_t slot) {
          // Check a workspace out for this party, train into it, check it
          // back in. Which context a party lands on is irrelevant: Train
          // fully reloads model (and optimizer) state, so results are
          // bit-identical across thread counts.
          WorkspaceLease lease(*workspaces_);
          const Assignment& assignment = work[slot];
          Client& client = party_source_ ? *slots_[slot]
                                         : *clients_[assignment.client_id];
          if (party_source_) {
            // On-demand materialization: pure in the party id and writing
            // only this slot's storage, so it parallelizes and stays
            // bit-identical across thread counts and visit orders.
            party_source_->MaterializeParty(assignment.client_id,
                                            client.mutable_data());
          }
          if (assignment.decision.type == FaultType::kCrash) {
            // The party does (part of) the work, then dies before uploading:
            // plain local training with no algorithm hook and no durable
            // buffer save, so the only side effect is the client's private
            // rng advancing. Algorithm state — SCAFFOLD's c_i in particular
            // — must not move for a party whose update never arrived.
            LocalTrainOptions crash_options = assignment.options;
            crash_options.keep_local_buffers = false;
            updates[slot] =
                client.Train(*lease, global_state_, crash_options);
          } else {
            updates[slot] = algorithm_->RunClient(
                client, *lease, global_state_, assignment.options);
            if (scenario_plan_.enabled() &&
                scenario_plan_.IsAdversary(assignment.client_id)) {
              // The adversary rewrites its own update before upload, so the
              // poisoned vector is what the codec compresses and what
              // ValidateUpdate later gates. Pure in (round, client) and
              // slot-disjoint — safe under ParallelFor. No-op for
              // kLabelFlip (the damage happened during training).
              scenario_plan_.Poison(stats.round, assignment.client_id,
                                    updates[slot]);
            }
            if (codec_) {
              // The party compresses its own upload before it leaves the
              // device: fold in (and refresh) its durable error-feedback
              // residual, then encode into this slot's reusable payload.
              // Safe under ParallelFor — each party is attempted at most
              // once per round, and slots are disjoint.
              codec_->Encode(
                  stats.round, assignment.client_id, updates[slot].delta,
                  config_.compression.error_feedback
                      ? client.mutable_residual()
                      : nullptr,
                  lease->codec_scratch, round_payloads_[slot]);
            }
          }
        });
    // Serial post-phase: park this round's durable party state back in the
    // ordered table before the slots are rebound by a possible re-sample.
    if (party_source_) CommitSlots(work);

    // Serial post-processing in slot order: discard crashed uploads, decode
    // compressed payloads, corrupt what the fault plan says arrives
    // corrupted, and gate everything else through ValidateUpdate.
    const int64_t upload_bytes_per_client =
        static_cast<int64_t>(sizeof(float)) *
        algorithm_->UploadFloatsPerClient(
            static_cast<int64_t>(global_state_.size()));
    for (size_t slot = 0; slot < work.size(); ++slot) {
      const Assignment& assignment = work[slot];
      if (assignment.decision.type == FaultType::kCrash) continue;
      if (config_.scenario.adversarial() &&
          config_.scenario.attack != AttackKind::kLabelFlip &&
          scenario_plan_.IsAdversary(assignment.client_id)) {
        ++stats.poisoned;  // model-poisoned upload actually arrived
      }
      // Uplink accounting per arrival (rejects included — they crossed the
      // wire too). Sidecar floats the codec does not touch (SCAFFOLD's
      // delta_c) ship uncompressed either way.
      stats.bytes_uplink_uncompressed += upload_bytes_per_client;
      if (codec_) {
        const int64_t payload_bytes =
            static_cast<int64_t>(round_payloads_[slot].bytes.size());
        stats.bytes_uplink += payload_bytes + upload_bytes_per_client -
                              codec_->UncompressedBytes();
        const Status decoded = codec_->Decode(
            stats.round, assignment.client_id, round_payloads_[slot],
            updates[slot].delta, codec_scratch_);
        if (!decoded.ok()) {
          ++stats.rejected;
          continue;
        }
      } else {
        stats.bytes_uplink += upload_bytes_per_client;
      }
      if (assignment.decision.type == FaultType::kCorrupt) {
        fault_plan_.Corrupt(assignment.decision, stats.round,
                            assignment.client_id, updates[slot]);
      }
      const Status valid =
          ValidateUpdate(updates[slot], config_.max_update_norm);
      if (!valid.ok()) {
        ++stats.rejected;
        continue;
      }
      // NOLINTNEXTLINE(niid-hot-alloc) within capacity reserved at startup
      survivors.push_back(std::move(updates[slot]));
    }

    if (static_cast<int>(survivors.size()) >= config_.min_aggregate_clients) {
      break;
    }
    if (attempt >= config_.max_resample_retries) break;
    if (num_attempted >= num_clients()) break;  // nobody left to try
    ++stats.resample_retries;
  }
  stats.quorum_met =
      static_cast<int>(survivors.size()) >= config_.min_aggregate_clients;

  // Client-level DP: conceptually the party perturbs its upload; applied
  // here serially (deterministic order) with the server's stream standing in
  // for the parties' noise sources. Only updates that actually arrived and
  // validated are perturbed.
  if (config_.dp.enabled()) {
    for (LocalUpdate& update : survivors) {
      ApplyDpToUpdate(config_.dp, rng_, update);
    }
  }

  // Mean local loss via the reducer's ctor-reserved stats scratch, BEFORE
  // aggregation (which consumes the survivors' state vectors — the scalar
  // fields survive, but reading first keeps the dependency obvious). The
  // pairwise tree makes the sum independent of shard and thread counts.
  stats.mean_local_loss =
      survivors.empty()
          ? 0.0
          : reducer_.ReduceLossSum(survivors) /
                static_cast<double>(survivors.size());

  // Survivor count BEFORE any robust collapse: it drives both the reported
  // aggregation width and the upload accounting (median/trimmed shrink the
  // vector to one synthetic update, but every survivor crossed the wire).
  const int64_t num_survivors = static_cast<int64_t>(survivors.size());
  if (stats.quorum_met) {
    stats.aggregated = static_cast<int>(num_survivors);
    if (robust_) {
      // Robust pre-aggregation on the validated, DP-perturbed survivors:
      // clip rescales in place, median/trimmed collapse to one synthetic
      // update (fl/robust.h explains how that composes with each
      // algorithm's weighting). Deterministic for any pool size.
      const RobustStats robust_stats = robust_->Apply(survivors, pool_.get());
      stats.clipped = robust_stats.clipped;
      stats.trimmed = robust_stats.trimmed;
    }
    // Partial aggregation re-weights over the survivors: every algorithm's
    // Aggregate normalizes by the survivors' own sample counts (and SCAFFOLD
    // still divides control-variate progress by the full party count), so a
    // round with casualties remains a valid, smaller-quorum round. The
    // sharded reducer consumes the survivors' update vectors in place.
    algorithm_->Aggregate(global_state_, survivors, layout_, reducer_);
  }
  // Communication accounting: survivors and rejected updates both crossed
  // the wire; dropped and crashed parties never uploaded anything.
  cumulative_upload_floats_ +=
      (num_survivors + stats.rejected) *
      algorithm_->UploadFloatsPerClient(
          static_cast<int64_t>(global_state_.size()));
  stats.cumulative_upload_floats = cumulative_upload_floats_;
  cumulative_bytes_uplink_ += stats.bytes_uplink;
  ++rounds_completed_;
  return stats;
}

EvalResult FederatedServer::EvaluateGlobal(const Dataset& test,
                                           int batch_size) {
  return EvaluateParallel(*workspaces_, global_state_, test, pool_.get(),
                          batch_size);
}

EvalResult FederatedServer::EvaluatePersonalized(int client_id,
                                                const Dataset& test,
                                                int batch_size) {
  NIID_CHECK(!sparse()) << "personalized evaluation needs resident clients";
  Client& client = *clients_.at(client_id);
  WorkspaceLease lease(*workspaces_);
  client.LoadPersonalState(*lease->model, lease->layout, global_state_);
  return Evaluate(*lease->model, test, batch_size);
}

ServerCheckpoint FederatedServer::MakeCheckpoint() const {
  ServerCheckpoint checkpoint;
  checkpoint.config_seed = config_.seed;
  checkpoint.algorithm = algorithm_->name();
  checkpoint.codec = CodecName(config_.compression.codec);
  checkpoint.error_feedback = config_.compression.error_feedback;
  checkpoint.codec_seed = config_.compression.seed;
  checkpoint.num_clients = num_clients();
  checkpoint.state_size = static_cast<int64_t>(global_state_.size());
  // Both scenario and robust layers are stateless (pure functions of their
  // config + seed), so their entire "state" is the fingerprint/name pair the
  // restore guard checks — matching construction replays them exactly.
  checkpoint.scenario_fingerprint = scenario_plan_.Fingerprint();
  checkpoint.aggregator = AggregatorName(config_.robust.aggregator);
  checkpoint.rounds_completed = rounds_completed_;
  checkpoint.cumulative_upload_floats = cumulative_upload_floats_;
  checkpoint.cumulative_bytes_uplink = cumulative_bytes_uplink_;
  checkpoint.server_rng = rng_.SaveState();
  checkpoint.global_state = global_state_;
  checkpoint.algorithm_state = algorithm_->SaveAlgorithmState();
  if (party_source_) {
    // Sparse: only ever-sampled parties have durable state; the ordered
    // table makes the id list strictly ascending by construction.
    checkpoint.sparse = true;
    checkpoint.party_ids.reserve(party_store_.size());
    checkpoint.client_rng.reserve(party_store_.size());
    checkpoint.client_buffers.reserve(party_store_.size());
    checkpoint.client_residuals.reserve(party_store_.size());
    for (const auto& [id, state] : party_store_) {
      checkpoint.party_ids.push_back(id);
      checkpoint.client_rng.push_back(state.rng);
      checkpoint.client_buffers.push_back(state.buffers);
      checkpoint.client_residuals.push_back(state.residual);
    }
    return checkpoint;
  }
  checkpoint.client_rng.reserve(clients_.size());
  checkpoint.client_buffers.reserve(clients_.size());
  checkpoint.client_residuals.reserve(clients_.size());
  for (const auto& client : clients_) {
    checkpoint.client_rng.push_back(client->SaveRngState());
    checkpoint.client_buffers.push_back(client->buffer_state());
    checkpoint.client_residuals.push_back(client->residual());
  }
  return checkpoint;
}

Status FederatedServer::RestoreCheckpoint(const ServerCheckpoint& checkpoint) {
  // Fingerprint first: a checkpoint only restores into a server built from
  // the same seed / algorithm / federation shape, otherwise the resumed run
  // would silently diverge from the uninterrupted one.
  if (checkpoint.config_seed != config_.seed) {
    return Status::InvalidArgument(
        "checkpoint seed " + std::to_string(checkpoint.config_seed) +
        " does not match server seed " + std::to_string(config_.seed));
  }
  if (checkpoint.algorithm != algorithm_->name()) {
    return Status::InvalidArgument("checkpoint algorithm '" +
                                   checkpoint.algorithm +
                                   "' does not match server algorithm '" +
                                   algorithm_->name() + "'");
  }
  if (checkpoint.codec != CodecName(config_.compression.codec) ||
      checkpoint.error_feedback != config_.compression.error_feedback ||
      checkpoint.codec_seed != config_.compression.seed) {
    return Status::InvalidArgument(
        "checkpoint compression fingerprint (codec '" + checkpoint.codec +
        "') does not match server codec '" +
        CodecName(config_.compression.codec) + "'");
  }
  if (checkpoint.scenario_fingerprint != scenario_plan_.Fingerprint()) {
    return Status::InvalidArgument(
        "checkpoint scenario fingerprint does not match this server's "
        "scenario config (drift/availability/attack schedule would diverge)");
  }
  if (checkpoint.aggregator != AggregatorName(config_.robust.aggregator)) {
    return Status::InvalidArgument(
        "checkpoint aggregator '" + checkpoint.aggregator +
        "' does not match server aggregator '" +
        AggregatorName(config_.robust.aggregator) + "'");
  }
  if (checkpoint.num_clients != static_cast<int64_t>(num_clients())) {
    return Status::InvalidArgument("checkpoint client count mismatch");
  }
  if (checkpoint.state_size != static_cast<int64_t>(global_state_.size())) {
    return Status::InvalidArgument("checkpoint state size mismatch");
  }
  if (checkpoint.sparse != sparse()) {
    return Status::InvalidArgument(
        "checkpoint party-engine mode (sparse/dense) does not match server");
  }
  const size_t party_entries = sparse() ? checkpoint.party_ids.size()
                                        : clients_.size();
  if (checkpoint.client_rng.size() != party_entries ||
      checkpoint.client_buffers.size() != party_entries) {
    return Status::InvalidArgument("checkpoint per-party state count mismatch");
  }
  if (!checkpoint.client_residuals.empty() &&
      checkpoint.client_residuals.size() != party_entries) {
    return Status::InvalidArgument("checkpoint residual count mismatch");
  }
  for (const StateVector& residual : checkpoint.client_residuals) {
    if (!residual.empty() &&
        residual.size() != global_state_.size()) {
      return Status::InvalidArgument("checkpoint residual size mismatch");
    }
  }
  const int64_t buffer_floats = BufferSize(layout_);
  for (const StateVector& buffers : checkpoint.client_buffers) {
    if (!buffers.empty() &&
        static_cast<int64_t>(buffers.size()) != buffer_floats) {
      return Status::InvalidArgument("checkpoint buffer size mismatch");
    }
  }
  // The algorithm validates its own vectors before mutating; once it
  // commits, the remaining assignments cannot fail, so the all-or-nothing
  // contract holds for the server as a whole.
  if (Status status = algorithm_->LoadAlgorithmState(checkpoint.algorithm_state);
      !status.ok()) {
    return status;
  }
  global_state_ = checkpoint.global_state;
  rng_.RestoreState(checkpoint.server_rng);
  if (sparse()) {
    party_store_.clear();
    for (size_t i = 0; i < party_entries; ++i) {
      const int64_t id = checkpoint.party_ids[i];
      NIID_CHECK_GE(id, 0);
      NIID_CHECK_LT(id, num_clients());
      PartyState& state = party_store_[static_cast<int>(id)];
      state.rng = checkpoint.client_rng[i];
      state.buffers = checkpoint.client_buffers[i];
      state.residual = checkpoint.client_residuals.empty()
                           ? StateVector{}
                           : checkpoint.client_residuals[i];
    }
  } else {
    for (size_t i = 0; i < clients_.size(); ++i) {
      clients_[i]->RestoreRngState(checkpoint.client_rng[i]);
      clients_[i]->set_buffer_state(checkpoint.client_buffers[i]);
      clients_[i]->set_residual(checkpoint.client_residuals.empty()
                                    ? StateVector{}
                                    : checkpoint.client_residuals[i]);
    }
  }
  rounds_completed_ = static_cast<int>(checkpoint.rounds_completed);
  cumulative_upload_floats_ = checkpoint.cumulative_upload_floats;
  cumulative_bytes_uplink_ = checkpoint.cumulative_bytes_uplink;
  return Status::Ok();
}

Status FederatedServer::SaveCheckpoint(const std::string& path) const {
  return WriteCheckpointFile(MakeCheckpoint(), path);
}

Status FederatedServer::LoadCheckpoint(const std::string& path) {
  StatusOr<ServerCheckpoint> checkpoint = ReadCheckpointFile(path);
  if (!checkpoint.ok()) return checkpoint.status();
  return RestoreCheckpoint(*checkpoint);
}

void FederatedServer::set_global_state(StateVector state) {
  NIID_CHECK_EQ(state.size(), global_state_.size());
  global_state_ = std::move(state);
}

}  // namespace niid
