#ifndef NIID_FL_SERVER_H_
#define NIID_FL_SERVER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/party_source.h"
#include "fl/algorithm.h"
#include "fl/checkpoint.h"
#include "fl/client.h"
#include "fl/compress.h"
#include "fl/faults.h"
#include "fl/metrics.h"
#include "fl/privacy.h"
#include "fl/robust.h"
#include "fl/scenario.h"
#include "fl/workspace.h"
#include "nn/models/factory.h"
#include "util/check.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace niid {

/// Server-side configuration of the federated simulation.
struct ServerConfig {
  /// Fraction of parties sampled per round (Algorithm 1, line 4).
  double sample_fraction = 1.0;
  /// Seed for the server's sampling stream and global model initialization.
  uint64_t seed = 1;
  /// Worker threads used to train the sampled parties in parallel
  /// (1 = serial). Results are bit-identical regardless of thread count.
  int num_threads = 1;
  /// Client-level differential privacy (clip + Gaussian noise on uploads).
  DpConfig dp;
  /// When > 0, each sampled party runs a uniformly drawn number of local
  /// epochs in [min_local_epochs, options.local_epochs] instead of the fixed
  /// E — the heterogeneous-steps setting FedNova targets (Section 3.2).
  int min_local_epochs = 0;
  /// Use skew-aware party sampling (Section 6.1's "non-IID resistant
  /// sampling") instead of a uniform draw under partial participation. The
  /// server keys on the parties' label histograms only.
  bool skew_aware_sampling = false;
  /// Deterministic client-failure injection (drop / crash / straggle /
  /// corrupt). Disabled by default; the fault stream is independent of the
  /// sampling and training streams.
  FaultConfig faults;
  /// Quorum: the round only aggregates once at least this many validated
  /// updates arrived. Below quorum the server re-samples (bounded retries)
  /// and, if still short, skips aggregation for the round.
  int min_aggregate_clients = 1;
  /// Bounded resample-retry fallback when a round falls below quorum.
  int max_resample_retries = 2;
  /// ValidateUpdate rejects updates whose delta L2 norm exceeds this
  /// (defense against norm-blowup corruption). 0 disables the cap;
  /// non-finite updates are always rejected.
  double max_update_norm = 0.0;
  /// Update compression (fl/compress.h): workers encode their party's delta,
  /// the server decodes and aggregates the DECODED update. The identity
  /// codec bypasses the layer entirely — byte-for-byte today's behavior.
  CompressionConfig compression;
  /// Leaf count of the sharded reduction tree (fl/shard.h): 0 = one shard
  /// per worker thread (rounded up to a power of two), >= 1 = explicit.
  /// Aggregation results are bit-identical across every (num_shards,
  /// num_threads) combination by construction — see DESIGN.md section 14.
  int num_shards = 0;
  /// Sparse engine only: seed family for per-party private streams. Party p
  /// first trains with Rng(DeriveStreamSeed(party_stream_seed, p)) — an O(1)
  /// derivation, unlike the dense path's O(p) chain of setup-rng splits.
  uint64_t party_stream_seed = 0;
  /// Deterministic environment scenario (fl/scenario.h): label drift,
  /// diurnal availability, adversarial parties. Disabled by default; the
  /// scenario stream is independent of the sampling, training, and fault
  /// streams, so an all-zero scenario is byte-identical to no scenario.
  ScenarioConfig scenario;
  /// Robust aggregation rule (fl/robust.h) applied to the validated
  /// survivors right before the algorithm's Aggregate. kMean (default) maps
  /// to no robust layer at all — the baseline path is untouched.
  RobustConfig robust;
};

/// Server-side guard applied to every incoming update before aggregation:
/// rejects non-finite deltas/control-variates always, and deltas whose L2
/// norm exceeds `max_update_norm` when the cap is positive (norm-blowup
/// corruption stays finite, so finiteness alone is not enough).
Status ValidateUpdate(const LocalUpdate& update, double max_update_norm);

/// Orchestrates Algorithm 1/2's server loop over a fixed set of clients.
class FederatedServer {
 public:
  FederatedServer(const ModelFactory& factory,
                  std::vector<std::unique_ptr<Client>> clients,
                  std::unique_ptr<FlAlgorithm> algorithm,
                  const ServerConfig& config);

  /// Sparse party engine: simulate `parties->num_parties()` parties without
  /// any per-party resident object. Sampled parties are materialized on
  /// demand from the PartySource into a fixed pool of reusable slot clients;
  /// durable per-party state (rng stream, FedBN buffers, error-feedback
  /// residuals) lives in an ordered table holding only ever-sampled parties.
  /// Per-round memory is O(sampled parties), independent of the total count.
  FederatedServer(const ModelFactory& factory,
                  std::shared_ptr<const PartySource> parties,
                  std::unique_ptr<FlAlgorithm> algorithm,
                  const ServerConfig& config);

  /// Runs one communication round: samples parties, trains them (possibly in
  /// parallel), aggregates.
  RoundStats RunRound(const LocalTrainOptions& options);

  /// Evaluates the current global model. Batches are sharded over the
  /// workspace pool; the result is bit-identical to serial evaluation.
  EvalResult EvaluateGlobal(const Dataset& test, int batch_size = 256);

  /// FedBN-style personalized evaluation for one party: global trainable
  /// weights plus the party's own BatchNorm statistics (when it has kept
  /// local buffers; identical to EvaluateGlobal otherwise).
  EvalResult EvaluatePersonalized(int client_id, const Dataset& test,
                                  int batch_size = 256);

  // Crash-safe persistence ---------------------------------------------
  //
  // A checkpoint captures everything RunRound's determinism depends on:
  // restoring it into a freshly constructed server with the same config
  // continues the run bit-identically to never having stopped.

  /// Snapshots the full durable server state at the current round boundary.
  ServerCheckpoint MakeCheckpoint() const;

  /// Reinstalls a snapshot. The checkpoint's fingerprint (seed, algorithm,
  /// federation shape) must match this server; everything is validated
  /// before any state mutates, so a failed restore leaves the server intact.
  Status RestoreCheckpoint(const ServerCheckpoint& checkpoint);

  /// MakeCheckpoint + atomic WriteCheckpointFile.
  Status SaveCheckpoint(const std::string& path) const;

  /// ReadCheckpointFile + RestoreCheckpoint.
  Status LoadCheckpoint(const std::string& path);

  const StateVector& global_state() const { return global_state_; }
  /// Per-tensor segmentation of the flattened state (nn/parameters.h);
  /// what the update codec quantizes against.
  const std::vector<StateSegment>& layout() const { return layout_; }
  void set_global_state(StateVector state);
  FlAlgorithm& algorithm() { return *algorithm_; }
  /// True when this server runs the sparse party engine.
  bool sparse() const { return party_source_ != nullptr; }
  int num_clients() const {
    return party_source_ ? static_cast<int>(party_source_->num_parties())
                         : static_cast<int>(clients_.size());
  }
  /// Dense mode only: the resident party objects don't exist under the
  /// sparse engine.
  Client& client(int i) {
    NIID_CHECK(!sparse()) << "no resident clients under the sparse engine";
    return *clients_.at(i);
  }
  /// Model replicas owned by the worker pool (== max(1, num_threads)).
  int num_workspaces() const { return workspaces_->size(); }
  int rounds_completed() const { return rounds_completed_; }
  int64_t cumulative_upload_floats() const {
    return cumulative_upload_floats_;
  }
  /// Cumulative uplink bytes as they crossed the wire (== 4x upload floats
  /// under the identity codec).
  int64_t cumulative_bytes_uplink() const { return cumulative_bytes_uplink_; }
  /// The active update codec, or null when compression is off.
  const UpdateCodec* codec() const { return codec_.get(); }

 private:
  /// One party's assignment for a round: which client, what fault it
  /// suffers, and its (possibly truncated) training options.
  struct Assignment {
    int client_id = -1;
    FaultDecision decision;
    LocalTrainOptions options;
  };

  /// Durable cross-round state of one simulated party under the sparse
  /// engine. An entry exists only once the party has actually been sampled;
  /// the table is therefore O(ever-sampled parties), not O(total parties).
  struct PartyState {
    RngState rng;
    StateVector buffers;
    StateVector residual;
  };

  /// Shared constructor tail (model init, algorithm init, codec, pool,
  /// workspaces, reducer, scratch reservations).
  void Init(const ModelFactory& factory);
  /// Sparse mode: upper bound on parties a round can attempt (sample size
  /// times quorum attempts, capped by the population). Sizes the slot pool
  /// and every round_* reservation.
  int64_t RoundPartyBound() const;
  /// Sparse mode, serial: binds slot clients [0, count) to the parties in
  /// `work`, reinstalling each party's durable state (or deriving its fresh
  /// rng stream on first contact).
  void PrepareSlots(const std::vector<Assignment>& work);
  /// Sparse mode, serial: commits the slot clients' durable state back into
  /// the party table after the parallel training phase.
  void CommitSlots(const std::vector<Assignment>& work);

  std::vector<std::unique_ptr<Client>> clients_;
  /// Null in dense mode; the sparse engine's dataset oracle otherwise.
  std::shared_ptr<const PartySource> party_source_;
  /// Sparse mode: party id -> durable state. Ordered so checkpoint
  /// serialization and restore iterate deterministically.
  std::map<int, PartyState> party_store_;
  /// Sparse mode: reusable shell clients, one per concurrent work item;
  /// grown once to RoundPartyBound() and reused every round after.
  std::vector<std::unique_ptr<Client>> slots_;
  std::unique_ptr<FlAlgorithm> algorithm_;
  ServerConfig config_;
  FaultPlan fault_plan_;
  ScenarioPlan scenario_plan_;
  /// Null under the mean aggregator: the byte-compatible path never touches
  /// the robust layer at all.
  std::unique_ptr<RobustAggregator> robust_;
  /// Null when compression is off (identity codec): the byte-compatible path
  /// never touches the codec layer at all.
  std::unique_ptr<UpdateCodec> codec_;
  Rng rng_;
  StateVector global_state_;
  std::vector<StateSegment> layout_;
  std::unique_ptr<ThreadPool> pool_;
  /// One TrainContext per worker thread: sampled parties check a context out
  /// for the duration of their local training, so model memory is
  /// O(num_threads) instead of O(num_clients).
  std::unique_ptr<WorkspacePool> workspaces_;
  /// Per-party label histograms (metadata for skew-aware sampling).
  std::vector<std::vector<int64_t>> label_histograms_;
  int rounds_completed_ = 0;
  int64_t cumulative_upload_floats_ = 0;
  int64_t cumulative_bytes_uplink_ = 0;

  // Per-round scratch, hoisted out of RunRound and reserved to the federation
  // size at construction so steady-state rounds stay off the allocator (the
  // quorum loop attempts each party at most once per round, bounding every
  // vector by clients_.size()).
  std::vector<LocalUpdate> round_survivors_;
  std::vector<bool> round_attempted_;
  std::vector<LocalTrainOptions> round_options_;
  std::vector<Assignment> round_work_;
  std::vector<LocalUpdate> round_updates_;
  /// Per-slot encoded payloads (grow-only byte buffers, reused each round)
  /// and the server's serial decode scratch.
  std::vector<EncodedDelta> round_payloads_;
  CodecScratch codec_scratch_;
  /// Sharded reduction tree used by Aggregate and the round-stats loss sum;
  /// configured once at construction (shards, pool, stats scratch capacity).
  ShardReducer reducer_;
  /// Serial scratch for the pre-round PrepareClients id list.
  std::vector<int> round_prepare_ids_;
};

}  // namespace niid

#endif  // NIID_FL_SERVER_H_
