#include "fl/shard.h"

#include <algorithm>

#include "util/check.h"

namespace niid {
namespace {

// NIID_HOT: leaf-scale kernel of the reduction tree — one multiply per
// element per update, independent of shard/thread count.
void ScaleInPlace(StateVector& v, float coeff) {
  float* __restrict__ p = v.data();
  const int64_t n = static_cast<int64_t>(v.size());
  for (int64_t i = 0; i < n; ++i) p[i] *= coeff;
}

// NIID_HOT: combine kernel of the reduction tree — the only way partial
// sums ever meet, so the pairing schedule alone fixes the result bits.
void AddInPlace(StateVector& dst, const StateVector& src) {
  float* __restrict__ d = dst.data();
  const float* __restrict__ s = src.data();
  const int64_t n = static_cast<int64_t>(dst.size());
  for (int64_t i = 0; i < n; ++i) d[i] += s[i];
}

int64_t NextPowerOfTwo(int64_t value) {
  int64_t p = 1;
  while (p < value) p <<= 1;
  return p;
}

}  // namespace

void ShardReducer::Configure(int num_shards, ThreadPool* pool,
                             int64_t stats_capacity) {
  const int threads = pool != nullptr ? pool->num_threads() : 1;
  const int64_t requested = num_shards > 0 ? num_shards : threads;
  num_shards_ = static_cast<int>(NextPowerOfTwo(std::max<int64_t>(1, requested)));
  pool_ = pool;
  stats_scratch_.reserve(static_cast<size_t>(std::max<int64_t>(stats_capacity, 1)));
}

int64_t ShardReducer::BlockForCount(int64_t count) const {
  // Smallest power of two >= count / num_shards, so at most num_shards
  // blocks and every block start is 2*gap-aligned for every in-block gap.
  return NextPowerOfTwo((count + num_shards_ - 1) / num_shards_);
}

// NIID_HOT: per-round aggregation path. The reduction runs inside the
// updates' own buffers — no state-sized scratch, no allocation.
StateVector& ShardReducer::ReduceScaled(std::vector<LocalUpdate>& updates,
                                        const std::vector<float>& coeffs,
                                        Field field) {
  const int64_t m = static_cast<int64_t>(updates.size());
  NIID_CHECK_GT(m, 0);
  NIID_CHECK_EQ(coeffs.size(), updates.size());
  auto vec = [&updates, field](int64_t j) -> StateVector& {
    return field == Field::kDelta ? updates[j].delta : updates[j].delta_c;
  };
  const size_t len = vec(0).size();
  for (int64_t j = 1; j < m; ++j) NIID_CHECK_EQ(vec(j).size(), len);

  const int64_t block = BlockForCount(m);
  const int64_t num_blocks = (m + block - 1) / block;
  // Leaf phase: each shard scales its slots and runs every combine level
  // that fits inside its block. Blocks touch disjoint slot ranges, so the
  // shards are free to run concurrently; the schedule they execute is the
  // restriction of the global tree to their slots, so the block size can
  // never change the result bits.
  ParallelFor(pool_, num_blocks, [&](int64_t b) {
    const int64_t begin = b * block;
    const int64_t end = std::min(begin + block, m);
    for (int64_t j = begin; j < end; ++j) ScaleInPlace(vec(j), coeffs[j]);
    for (int64_t gap = 1; gap < block; gap <<= 1) {
      for (int64_t j = begin; j + gap < end; j += 2 * gap) {
        AddInPlace(vec(j), vec(j + gap));
      }
    }
  });
  // Combine phase: cross-shard levels in fixed shard order. Pairs within a
  // level write disjoint slots, so each level parallelizes; levels are
  // barriers (ParallelFor joins before the next gap doubles).
  for (int64_t gap = block; gap < m; gap <<= 1) {
    const int64_t pairs = (m - gap + 2 * gap - 1) / (2 * gap);
    ParallelFor(pool_, pairs, [&](int64_t p) {
      const int64_t j = p * 2 * gap;
      AddInPlace(vec(j), vec(j + gap));
    });
  }
  return vec(0);
}

double ShardReducer::ReduceLossSum(const std::vector<LocalUpdate>& updates) {
  const int64_t m = static_cast<int64_t>(updates.size());
  if (m == 0) return 0.0;
  // Same canonical schedule over the per-slot scalars. Scalar work is
  // negligible, so all levels run serially — the shard structure only
  // dictates where the partials sit (slot s*block holds shard s's partial
  // after the in-block levels), not the result.
  stats_scratch_.resize(static_cast<size_t>(m));  // within reserved capacity
  for (int64_t j = 0; j < m; ++j) stats_scratch_[j] = updates[j].average_loss;
  for (int64_t gap = 1; gap < m; gap <<= 1) {
    for (int64_t j = 0; j + gap < m; j += 2 * gap) {
      stats_scratch_[j] += stats_scratch_[j + gap];
    }
  }
  return stats_scratch_[0];
}

}  // namespace niid
