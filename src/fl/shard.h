#ifndef NIID_FL_SHARD_H_
#define NIID_FL_SHARD_H_

#include <cstdint>
#include <vector>

#include "fl/client.h"
#include "util/thread_pool.h"

namespace niid {

/// Sharded reduction tree for server-side aggregation (DESIGN.md §14).
///
/// The reducer computes   acc = sum_j coeff[j] * v_j   over the round's
/// update vectors as a *canonical* in-place pairwise tree:
///
///   v_j *= coeff[j]                                  (leaf scaling)
///   for gap = 1, 2, 4, ...:  v_j += v_{j+gap}        (j = 0 mod 2*gap)
///
/// The floating-point operation set of this schedule depends only on the
/// number of updates — never on the shard count or thread count. Shards are
/// contiguous power-of-two-aligned slot blocks: every combine level with
/// gap < block runs entirely inside one shard (disjoint writes, safe to run
/// shards in parallel), and the remaining cross-shard levels combine shard
/// partials pairwise in fixed shard order. Any (shards, threads) choice
/// therefore produces bit-identical results, and "single accumulator" is
/// simply the one-shard serial execution of the same schedule.
///
/// The reduction happens inside the callers' own update buffers (slot 0
/// receives the result; slots 1.. are consumed), so aggregation needs no
/// state-sized scratch at all — the peak-memory property the 1M-party run
/// relies on.
class ShardReducer {
 public:
  /// Which per-update vector to reduce.
  enum class Field { kDelta, kDeltaC };

  ShardReducer() = default;

  /// `num_shards` <= 0 picks a power of two >= the pool's thread count;
  /// other values round up to the next power of two. `stats_capacity`
  /// pre-reserves the per-shard RoundStats partial scratch (one double per
  /// update slot) so steady-state rounds stay off the allocator.
  void Configure(int num_shards, ThreadPool* pool, int64_t stats_capacity);

  int num_shards() const { return num_shards_; }

  /// Reduces coeff[j] * updates[j].<field> into updates[0].<field> via the
  /// canonical tree above and returns it. All selected vectors must share
  /// one size; slots 1.. are consumed (scalar fields survive untouched).
  StateVector& ReduceScaled(std::vector<LocalUpdate>& updates,
                            const std::vector<float>& coeffs, Field field);

  /// Sum of the updates' average_loss values under the same canonical
  /// per-slot schedule (per-shard partials live in ctor-reserved scratch, and
  /// the cross-shard combine follows the fixed shard order), so the round's
  /// mean local loss is bit-identical for any shard or thread count.
  double ReduceLossSum(const std::vector<LocalUpdate>& updates);

 private:
  /// Power-of-two block (slots per shard) for an m-slot reduction.
  int64_t BlockForCount(int64_t count) const;

  int num_shards_ = 1;
  ThreadPool* pool_ = nullptr;
  /// Per-slot RoundStats partials (loss sums); shard s's partial sits at
  /// slot s * block after the leaf levels.
  std::vector<double> stats_scratch_;
};

}  // namespace niid

#endif  // NIID_FL_SHARD_H_
