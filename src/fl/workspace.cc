#include "fl/workspace.h"

#include <atomic>

#include "util/check.h"

namespace niid {
namespace {

std::atomic<int64_t> live_model_replicas{0};

}  // namespace

int64_t LiveModelReplicaCount() {
  return live_model_replicas.load(std::memory_order_relaxed);
}

TrainContext::TrainContext(const ModelFactory& factory) {
  // The seed is irrelevant: a context's model is fully reloaded before every
  // use, so the factory draw only sizes the parameter tensors.
  Rng init_rng(0);
  model = factory(init_rng);
  NIID_CHECK(model != nullptr);
  params = model->Parameters();
  layout = StateLayout(*model);
  live_model_replicas.fetch_add(1, std::memory_order_relaxed);
}

TrainContext::~TrainContext() {
  live_model_replicas.fetch_sub(1, std::memory_order_relaxed);
}

WorkspacePool::WorkspacePool(const ModelFactory& factory, int num_workspaces) {
  NIID_CHECK_GE(num_workspaces, 1);
  contexts_.reserve(num_workspaces);
  free_.reserve(num_workspaces);
  for (int i = 0; i < num_workspaces; ++i) {
    contexts_.push_back(std::make_unique<TrainContext>(factory));
    free_.push_back(contexts_.back().get());
  }
}

TrainContext* WorkspacePool::Acquire() {
  std::unique_lock<std::mutex> lock(mutex_);
  available_.wait(lock, [this] { return !free_.empty(); });
  TrainContext* context = free_.back();
  free_.pop_back();
  return context;
}

void WorkspacePool::Release(TrainContext* context) {
  NIID_CHECK(context != nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    free_.push_back(context);
  }
  available_.notify_one();
}

void WorkspacePool::SetComputePool(ThreadPool* pool) {
  for (auto& context : contexts_) context->model->SetComputePool(pool);
}

}  // namespace niid
