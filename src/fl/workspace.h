#ifndef NIID_FL_WORKSPACE_H_
#define NIID_FL_WORKSPACE_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "fl/compress.h"
#include "nn/loss.h"
#include "nn/models/factory.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "nn/parameters.h"
#include "tensor/tensor.h"

namespace niid {

class ThreadPool;

/// Everything one simulation worker needs to train or evaluate one party:
/// a model replica, a persistent SGD optimizer (velocity storage survives
/// across assignments; momentum is reset per checkout), the cached parameter
/// list/layout, and the batch/loss/state scratch of the training loop.
///
/// A TrainContext carries NO per-client state. Whoever checks it out must
/// fully (re)load the model before using it — Client::Train and the pooled
/// evaluators do — which is what makes time-sharing one context across many
/// parties bit-identical to giving every party a private replica.
struct TrainContext {
  explicit TrainContext(const ModelFactory& factory);
  ~TrainContext();

  TrainContext(const TrainContext&) = delete;
  TrainContext& operator=(const TrainContext&) = delete;

  std::unique_ptr<Module> model;
  /// Created lazily on the first Train call (needs the learning-rate knobs).
  std::unique_ptr<SgdOptimizer> optimizer;
  /// Cached views of model's (immutable) parameter list.
  std::vector<Parameter*> params;
  std::vector<StateSegment> layout;

  // Reusable training scratch (see DESIGN.md "allocation policy"): sized on
  // first use, then steady-state training steps allocate nothing.
  Tensor batch_x;
  std::vector<int> batch_y;
  std::vector<int64_t> order;
  std::vector<int64_t> batch_indices;
  LossResult loss;
  StateVector local_state;

  // Algorithm scratch (state-sized, reused across assignments): SCAFFOLD's
  // c - c_i correction, its refreshed control variate, and the full-batch
  // gradient of control-variate option (i).
  StateVector correction;
  StateVector control_scratch;
  StateVector grad_scratch;

  // Update-codec scratch (fl/compress.h): the worker encodes its party's
  // delta in place before handing it to the server, reusing these buffers.
  CodecScratch codec_scratch;
};

/// Process-wide count of live TrainContext model replicas (all pools). The
/// scalability claim of the workspace engine — O(threads) replicas during a
/// 100-party run — is asserted against this counter in tests and reported in
/// the bench banners.
int64_t LiveModelReplicaCount();

/// A fixed pool of TrainContexts, one per simulation worker. RunRound checks
/// a context out per sampled party (WorkspaceLease), trains into it, and
/// checks it back in, so model memory is O(num_threads) regardless of how
/// many parties the simulation holds.
///
/// Checkout protocol: Acquire blocks until a context is free and hands out
/// exclusive ownership; Release returns it. Acquire order is unspecified —
/// determinism comes from full per-assignment state loading, never from
/// which worker gets which context.
class WorkspacePool {
 public:
  /// Builds `num_workspaces` (>= 1) contexts up front from `factory`.
  WorkspacePool(const ModelFactory& factory, int num_workspaces);

  WorkspacePool(const WorkspacePool&) = delete;
  WorkspacePool& operator=(const WorkspacePool&) = delete;

  /// Blocks until a context is free, then transfers exclusive use of it to
  /// the caller. Pair with Release (or use WorkspaceLease).
  TrainContext* Acquire();

  /// Returns a context obtained from Acquire to the free list.
  void Release(TrainContext* context);

  /// Number of contexts (== model replicas) owned by this pool.
  int size() const { return static_cast<int>(contexts_.size()); }

  /// Direct access for serial phases (eval preloading); the caller must
  /// guarantee no concurrent Acquire holder is using context `i`.
  TrainContext& context(int i) { return *contexts_.at(i); }

  /// Borrows `pool` for every context model's layer-level GEMMs (see
  /// Module::SetComputePool). Purely a speed knob; may be null.
  void SetComputePool(ThreadPool* pool);

 private:
  std::vector<std::unique_ptr<TrainContext>> contexts_;
  std::vector<TrainContext*> free_;  // guarded by mutex_
  std::mutex mutex_;
  std::condition_variable available_;
};

/// RAII checkout: acquires on construction, releases on destruction.
class WorkspaceLease {
 public:
  explicit WorkspaceLease(WorkspacePool& pool)
      : pool_(pool), context_(pool.Acquire()) {}
  ~WorkspaceLease() { pool_.Release(context_); }

  WorkspaceLease(const WorkspaceLease&) = delete;
  WorkspaceLease& operator=(const WorkspaceLease&) = delete;

  TrainContext& operator*() const { return *context_; }
  TrainContext* operator->() const { return context_; }
  TrainContext* get() const { return context_; }

 private:
  WorkspacePool& pool_;
  TrainContext* context_;
};

}  // namespace niid

#endif  // NIID_FL_WORKSPACE_H_
