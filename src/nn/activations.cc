#include "nn/activations.h"

#include "util/check.h"

namespace niid {

Tensor ReLU::Forward(const Tensor& input) {
  Tensor out = input;
  mask_.assign(input.numel(), 0);
  float* p = out.data();
  for (int64_t i = 0; i < out.numel(); ++i) {
    if (p[i] > 0.f) {
      mask_[i] = 1;
    } else {
      p[i] = 0.f;
    }
  }
  return out;
}

Tensor ReLU::Backward(const Tensor& grad_output) {
  NIID_CHECK_EQ(grad_output.numel(), static_cast<int64_t>(mask_.size()));
  Tensor grad_input = grad_output;
  float* p = grad_input.data();
  for (int64_t i = 0; i < grad_input.numel(); ++i) {
    if (!mask_[i]) p[i] = 0.f;
  }
  return grad_input;
}

}  // namespace niid
