#include "nn/activations.h"

#include "tensor/kernels.h"
#include "util/check.h"

namespace niid {

const Tensor& ReLU::Forward(const Tensor& input) {
  if (mask_.size() != static_cast<size_t>(input.numel())) {
    mask_.resize(input.numel());  // shrink keeps capacity: no alloc
  }
  if (out_.shape() != input.shape()) out_.Resize(input.shape());
  KernelReluForward(input.numel(), input.data(), out_.data(), mask_.data(),
                    compute_pool_);
  return out_;
}

const Tensor& ReLU::Backward(const Tensor& grad_output) {
  NIID_CHECK_EQ(grad_output.numel(), static_cast<int64_t>(mask_.size()));
  if (grad_input_.shape() != grad_output.shape()) {
    grad_input_.Resize(grad_output.shape());
  }
  KernelReluBackward(grad_output.numel(), grad_output.data(), mask_.data(),
                     grad_input_.data(), compute_pool_);
  return grad_input_;
}

}  // namespace niid
