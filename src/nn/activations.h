#ifndef NIID_NN_ACTIVATIONS_H_
#define NIID_NN_ACTIVATIONS_H_

#include <string>
#include <vector>

#include "nn/module.h"

namespace niid {

/// Rectified linear unit, elementwise; works on any tensor rank.
class ReLU : public Module {
 public:
  const Tensor& Forward(const Tensor& input) override;
  const Tensor& Backward(const Tensor& grad_output) override;
  std::string Name() const override { return "ReLU"; }

 private:
  std::vector<uint8_t> mask_;  ///< 1 where input > 0
  Tensor out_;
  Tensor grad_input_;
};

}  // namespace niid

#endif  // NIID_NN_ACTIVATIONS_H_
