#include "nn/batchnorm.h"

#include <cmath>

#include "util/check.h"

namespace niid {
namespace {

// Interprets input as [N, C, S]: S = H*W for rank-4, S = 1 for rank-2.
struct NcsView {
  int64_t n = 0, c = 0, s = 0;
};

NcsView MakeView(const Tensor& input, int64_t num_features) {
  NcsView view;
  if (input.rank() == 2) {
    view = {input.dim(0), input.dim(1), 1};
  } else {
    NIID_CHECK_EQ(input.rank(), 4);
    view = {input.dim(0), input.dim(1), input.dim(2) * input.dim(3)};
  }
  NIID_CHECK_EQ(view.c, num_features);
  return view;
}

}  // namespace

BatchNorm::BatchNorm(int64_t num_features, float momentum, float epsilon)
    : num_features_(num_features),
      momentum_(momentum),
      epsilon_(epsilon),
      gamma_("bn.gamma", Tensor::Ones({num_features}), /*is_trainable=*/true),
      beta_("bn.beta", Tensor::Zeros({num_features}), /*is_trainable=*/true),
      running_mean_("bn.running_mean", Tensor::Zeros({num_features}),
                    /*is_trainable=*/false),
      running_var_("bn.running_var", Tensor::Ones({num_features}),
                   /*is_trainable=*/false) {}

Tensor BatchNorm::Forward(const Tensor& input) {
  const NcsView v = MakeView(input, num_features_);
  cached_shape_ = input.shape();
  const int64_t count = v.n * v.s;
  NIID_CHECK_GE(count, 1);

  std::vector<float> mean(v.c), inv_std(v.c);
  const float* src = input.data();

  if (training_) {
    for (int64_t c = 0; c < v.c; ++c) {
      double sum = 0.0, sq_sum = 0.0;
      for (int64_t img = 0; img < v.n; ++img) {
        const float* plane = src + (img * v.c + c) * v.s;
        for (int64_t s = 0; s < v.s; ++s) {
          sum += plane[s];
          sq_sum += static_cast<double>(plane[s]) * plane[s];
        }
      }
      const double m = sum / count;
      const double var = sq_sum / count - m * m;
      mean[c] = static_cast<float>(m);
      inv_std[c] = static_cast<float>(1.0 / std::sqrt(var + epsilon_));
      // PyTorch stores the unbiased variance in the running buffer.
      const double unbiased =
          count > 1 ? var * count / static_cast<double>(count - 1) : var;
      running_mean_.value[c] = (1.f - momentum_) * running_mean_.value[c] +
                               momentum_ * static_cast<float>(m);
      running_var_.value[c] = (1.f - momentum_) * running_var_.value[c] +
                              momentum_ * static_cast<float>(unbiased);
    }
  } else {
    for (int64_t c = 0; c < v.c; ++c) {
      mean[c] = running_mean_.value[c];
      inv_std[c] =
          1.f / std::sqrt(running_var_.value[c] + epsilon_);
    }
  }
  batch_inv_std_ = inv_std;

  Tensor out(input.shape());
  cached_normalized_ = Tensor(input.shape());
  float* x_hat = cached_normalized_.data();
  float* dst = out.data();
  const float* gamma = gamma_.value.data();
  const float* beta = beta_.value.data();
  for (int64_t img = 0; img < v.n; ++img) {
    for (int64_t c = 0; c < v.c; ++c) {
      const float* in_plane = src + (img * v.c + c) * v.s;
      float* hat_plane = x_hat + (img * v.c + c) * v.s;
      float* out_plane = dst + (img * v.c + c) * v.s;
      const float mu = mean[c], is = inv_std[c], g = gamma[c], b = beta[c];
      for (int64_t s = 0; s < v.s; ++s) {
        const float h = (in_plane[s] - mu) * is;
        hat_plane[s] = h;
        out_plane[s] = g * h + b;
      }
    }
  }
  return out;
}

Tensor BatchNorm::Backward(const Tensor& grad_output) {
  NIID_CHECK(grad_output.shape() == cached_shape_);
  const NcsView v = MakeView(grad_output, num_features_);
  const int64_t count = v.n * v.s;

  const float* dy = grad_output.data();
  const float* x_hat = cached_normalized_.data();
  float* dgamma = gamma_.grad.data();
  float* dbeta = beta_.grad.data();
  const float* gamma = gamma_.value.data();

  // Per-channel reductions: sum(dy) and sum(dy * x_hat).
  std::vector<double> sum_dy(v.c, 0.0), sum_dy_xhat(v.c, 0.0);
  for (int64_t img = 0; img < v.n; ++img) {
    for (int64_t c = 0; c < v.c; ++c) {
      const float* dy_plane = dy + (img * v.c + c) * v.s;
      const float* hat_plane = x_hat + (img * v.c + c) * v.s;
      double s_dy = 0.0, s_dyh = 0.0;
      for (int64_t s = 0; s < v.s; ++s) {
        s_dy += dy_plane[s];
        s_dyh += static_cast<double>(dy_plane[s]) * hat_plane[s];
      }
      sum_dy[c] += s_dy;
      sum_dy_xhat[c] += s_dyh;
    }
  }
  for (int64_t c = 0; c < v.c; ++c) {
    dbeta[c] += static_cast<float>(sum_dy[c]);
    dgamma[c] += static_cast<float>(sum_dy_xhat[c]);
  }

  Tensor grad_input(cached_shape_);
  float* dx = grad_input.data();
  if (training_) {
    // dx = gamma * inv_std / M * (M*dy - sum(dy) - x_hat * sum(dy*x_hat)).
    const double inv_count = 1.0 / static_cast<double>(count);
    for (int64_t img = 0; img < v.n; ++img) {
      for (int64_t c = 0; c < v.c; ++c) {
        const float* dy_plane = dy + (img * v.c + c) * v.s;
        const float* hat_plane = x_hat + (img * v.c + c) * v.s;
        float* dx_plane = dx + (img * v.c + c) * v.s;
        const float coeff = gamma[c] * batch_inv_std_[c];
        const double mean_dy = sum_dy[c] * inv_count;
        const double mean_dy_xhat = sum_dy_xhat[c] * inv_count;
        for (int64_t s = 0; s < v.s; ++s) {
          dx_plane[s] = static_cast<float>(
              coeff * (dy_plane[s] - mean_dy - hat_plane[s] * mean_dy_xhat));
        }
      }
    }
  } else {
    // Eval mode: running stats are constants, so dx = dy * gamma * inv_std.
    for (int64_t img = 0; img < v.n; ++img) {
      for (int64_t c = 0; c < v.c; ++c) {
        const float* dy_plane = dy + (img * v.c + c) * v.s;
        float* dx_plane = dx + (img * v.c + c) * v.s;
        const float coeff = gamma[c] * batch_inv_std_[c];
        for (int64_t s = 0; s < v.s; ++s) dx_plane[s] = coeff * dy_plane[s];
      }
    }
  }
  return grad_input;
}

}  // namespace niid
