#include "nn/batchnorm.h"

#include <cmath>

#include "tensor/kernels.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace niid {
namespace {

// Interprets input as [N, C, S]: S = H*W for rank-4, S = 1 for rank-2.
struct NcsView {
  int64_t n = 0, c = 0, s = 0;
};

NcsView MakeView(const Tensor& input, int64_t num_features) {
  NcsView view;
  if (input.rank() == 2) {
    view = {input.dim(0), input.dim(1), 1};
  } else {
    NIID_CHECK_EQ(input.rank(), 4);
    view = {input.dim(0), input.dim(1), input.dim(2) * input.dim(3)};
  }
  NIID_CHECK_EQ(view.c, num_features);
  return view;
}

}  // namespace

BatchNorm::BatchNorm(int64_t num_features, float momentum, float epsilon)
    : num_features_(num_features),
      momentum_(momentum),
      epsilon_(epsilon),
      gamma_("bn.gamma", Tensor::Ones({num_features}), /*is_trainable=*/true),
      beta_("bn.beta", Tensor::Zeros({num_features}), /*is_trainable=*/true),
      running_mean_("bn.running_mean", Tensor::Zeros({num_features}),
                    /*is_trainable=*/false),
      running_var_("bn.running_var", Tensor::Ones({num_features}),
                   /*is_trainable=*/false) {
  batch_mean_.resize(num_features);
  batch_inv_std_.resize(num_features);
  sum_dy_.resize(num_features);
  sum_dy_xhat_.resize(num_features);
}

const Tensor& BatchNorm::Forward(const Tensor& input) {
  const NcsView v = MakeView(input, num_features_);
  cached_shape_ = input.shape();
  const int64_t count = v.n * v.s;
  NIID_CHECK_GE(count, 1);

  const float* src = input.data();

  if (training_) {
    // One task per channel: each channel's moments accumulate plane sums in
    // image order via the fixed KernelSumSq reduction tree, and each channel
    // is wholly owned by one task, so the result is independent of both the
    // thread count and the SIMD backend.
    float* rm = running_mean_.value.data();
    float* rv = running_var_.value.data();
    ParallelFor(compute_pool_, v.c, [&](int64_t c) {
      double sum = 0.0, sq_sum = 0.0;
      for (int64_t img = 0; img < v.n; ++img) {
        KernelSumSq(v.s, src + (img * v.c + c) * v.s, &sum, &sq_sum);
      }
      const double m = sum / count;
      const double var = sq_sum / count - m * m;
      batch_mean_[c] = static_cast<float>(m);
      batch_inv_std_[c] = static_cast<float>(1.0 / std::sqrt(var + epsilon_));
      // PyTorch stores the unbiased variance in the running buffer.
      const double unbiased =
          count > 1 ? var * count / static_cast<double>(count - 1) : var;
      rm[c] = (1.f - momentum_) * rm[c] + momentum_ * static_cast<float>(m);
      rv[c] = (1.f - momentum_) * rv[c] +
              momentum_ * static_cast<float>(unbiased);
    });
  } else {
    for (int64_t c = 0; c < v.c; ++c) {
      batch_mean_[c] = running_mean_.value[c];
      batch_inv_std_[c] = 1.f / std::sqrt(running_var_.value[c] + epsilon_);
    }
  }

  if (out_.shape() != input.shape()) out_.Resize(input.shape());
  if (cached_normalized_.shape() != input.shape()) {
    cached_normalized_.Resize(input.shape());
  }
  float* x_hat = cached_normalized_.data();
  float* dst = out_.data();
  const float* gamma = gamma_.value.data();
  const float* beta = beta_.value.data();
  ParallelFor(compute_pool_, v.n * v.c, [&](int64_t p) {
    const int64_t c = p % v.c;
    KernelBnNormalize(v.s, batch_mean_[c], batch_inv_std_[c], gamma[c],
                      beta[c], src + p * v.s, x_hat + p * v.s, dst + p * v.s);
  });
  return out_;
}

const Tensor& BatchNorm::Backward(const Tensor& grad_output) {
  NIID_CHECK(grad_output.shape() == cached_shape_);
  const NcsView v = MakeView(grad_output, num_features_);
  const int64_t count = v.n * v.s;

  const float* dy = grad_output.data();
  const float* x_hat = cached_normalized_.data();
  float* dgamma = gamma_.grad.data();
  float* dbeta = beta_.grad.data();
  const float* gamma = gamma_.value.data();

  // Per-channel reductions: sum(dy) and sum(dy * x_hat). The fused kernel
  // chains the per-image plane reductions in image order — bit-identical to
  // the historical per-image KernelDySums loop — and each channel is wholly
  // owned by one task (same policy as Forward).
  ParallelFor(compute_pool_, v.c, [&](int64_t c) {
    double s_dy = 0.0, s_dyh = 0.0;
    KernelBnBackwardReduce(v.n, v.c * v.s, v.s, dy + c * v.s, x_hat + c * v.s,
                           &s_dy, &s_dyh);
    sum_dy_[c] = s_dy;
    sum_dy_xhat_[c] = s_dyh;
    dbeta[c] += static_cast<float>(s_dy);
    dgamma[c] += static_cast<float>(s_dyh);
  });

  if (grad_input_.shape() != cached_shape_) grad_input_.Resize(cached_shape_);
  float* dx = grad_input_.data();
  if (training_) {
    // dx = gamma * inv_std / M * (M*dy - sum(dy) - x_hat * sum(dy*x_hat)).
    const double inv_count = 1.0 / static_cast<double>(count);
    ParallelFor(compute_pool_, v.n * v.c, [&](int64_t p) {
      const int64_t c = p % v.c;
      KernelBnBackwardDx(v.s, gamma[c] * batch_inv_std_[c],
                         sum_dy_[c] * inv_count, sum_dy_xhat_[c] * inv_count,
                         dy + p * v.s, x_hat + p * v.s, dx + p * v.s);
    });
  } else {
    // Eval mode: running stats are constants, so dx = dy * gamma * inv_std.
    ParallelFor(compute_pool_, v.n * v.c, [&](int64_t p) {
      const int64_t c = p % v.c;
      KernelScaleInto(v.s, gamma[c] * batch_inv_std_[c], dy + p * v.s,
                      dx + p * v.s);
    });
  }
  return grad_input_;
}

}  // namespace niid
