#ifndef NIID_NN_BATCHNORM_H_
#define NIID_NN_BATCHNORM_H_

#include <string>
#include <vector>

#include "nn/module.h"

namespace niid {

/// Batch normalization over the feature dimension.
///
/// Accepts rank-2 input [N, F] (per-feature, BatchNorm1d) or rank-4 input
/// [N, C, H, W] (per-channel, BatchNorm2d). gamma/beta are trainable;
/// running_mean/running_var are non-trainable buffers. In the federated
/// setting those buffers are part of the communicated state, and their naive
/// averaging across non-IID parties is what the paper's Finding 7 studies.
class BatchNorm : public Module {
 public:
  /// `num_features` is F (rank-2) or C (rank-4). `momentum` follows the
  /// PyTorch convention: running = (1 - momentum) * running + momentum * batch.
  explicit BatchNorm(int64_t num_features, float momentum = 0.1f,
                     float epsilon = 1e-5f);

  const Tensor& Forward(const Tensor& input) override;
  const Tensor& Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Parameters() override {
    return {&gamma_, &beta_, &running_mean_, &running_var_};
  }
  std::string Name() const override { return "BatchNorm"; }

  const Tensor& running_mean() const { return running_mean_.value; }
  const Tensor& running_var() const { return running_var_.value; }

 private:
  int64_t num_features_;
  float momentum_;
  float epsilon_;
  Parameter gamma_;
  Parameter beta_;
  Parameter running_mean_;  ///< buffer
  Parameter running_var_;   ///< buffer

  // Forward caches (training mode) and reusable scratch; all sized once per
  // batch shape, so steady-state steps never allocate.
  Tensor cached_normalized_;  // x_hat
  std::vector<float> batch_mean_;
  std::vector<float> batch_inv_std_;
  std::vector<double> sum_dy_;
  std::vector<double> sum_dy_xhat_;
  std::vector<int64_t> cached_shape_;
  Tensor out_;
  Tensor grad_input_;
};

}  // namespace niid

#endif  // NIID_NN_BATCHNORM_H_
