#include "nn/conv2d.h"

#include <cmath>

#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "util/thread_pool.h"

namespace niid {
namespace {

// He-uniform bound for ReLU networks: Var(W) = 2 / fan_in. The weaker
// 1/sqrt(fan_in) bound stalls deep stacks like VGG-9 (activations shrink
// ~0.4x per conv+ReLU, so gradients vanish for many steps).
float KaimingBound(int fan_in) {
  return std::sqrt(6.f / static_cast<float>(fan_in));
}

// Torch-style bias bound.
float BiasBound(int fan_in) {
  return 1.f / std::sqrt(static_cast<float>(fan_in));
}

}  // namespace

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, Rng& rng,
               int stride, int padding)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      weight_("conv.weight",
              Tensor::Uniform(
                  {out_channels,
                   static_cast<int64_t>(in_channels) * kernel * kernel},
                  rng, -KaimingBound(in_channels * kernel * kernel),
                  KaimingBound(in_channels * kernel * kernel)),
              /*is_trainable=*/true),
      bias_("conv.bias",
            Tensor::Uniform({out_channels}, rng,
                            -BiasBound(in_channels * kernel * kernel),
                            BiasBound(in_channels * kernel * kernel)),
            /*is_trainable=*/true) {
  NIID_CHECK_GE(stride, 1);
  NIID_CHECK_GE(padding, 0);
}

const Tensor& Conv2d::Forward(const Tensor& input) {
  NIID_CHECK_EQ(input.rank(), 4);
  NIID_CHECK_EQ(input.dim(1), in_channels_);
  const int64_t n = input.dim(0);
  const int h = static_cast<int>(input.dim(2));
  const int w = static_cast<int>(input.dim(3));
  const int out_h = ConvOutputSize(h, kernel_, stride_, padding_);
  const int out_w = ConvOutputSize(w, kernel_, stride_, padding_);
  cached_input_shape_ = input.shape();

  Im2Col(input, kernel_, stride_, padding_, cached_columns_, compute_pool_);
  const int64_t spatial = static_cast<int64_t>(out_h) * out_w;
  const int64_t ckk = static_cast<int64_t>(in_channels_) * kernel_ * kernel_;

  // Per image: out_img (out_c x spatial) = W (out_c x ckk) @ columns_img^T,
  // written straight into the NCHW output — the old [n*oh*ow, out_c]
  // intermediate and its transpose-scatter loop are fused into the GEMM's
  // packing step via the transposed operand view. The bias add rides the
  // same pass. Images are disjoint output planes, so they run in parallel;
  // nested Gemm calls on the same pool degrade to serial automatically.
  if (!ShapeIs(out_, n, out_channels_, out_h, out_w)) {
    out_.Resize({n, out_channels_, out_h, out_w});
  }
  const float* cols = cached_columns_.data();
  const float* wts = weight_.value.data();
  const float* bias = bias_.value.data();
  float* dst = out_.data();
  ParallelFor(compute_pool_, n, [&](int64_t img) {
    const float* cols_img = cols + img * spatial * ckk;
    float* out_img = dst + img * out_channels_ * spatial;
    Gemm(out_channels_, spatial, ckk, {wts, ckk, false},
         {cols_img, ckk, true}, out_img, spatial, /*accumulate=*/false,
         compute_pool_);
    for (int64_t ch = 0; ch < out_channels_; ++ch) {
      float* row = out_img + ch * spatial;
      const float bv = bias[ch];
      for (int64_t s = 0; s < spatial; ++s) row[s] += bv;
    }
  });
  return out_;
}

const Tensor& Conv2d::Backward(const Tensor& grad_output) {
  NIID_CHECK_EQ(grad_output.rank(), 4);
  NIID_CHECK_EQ(grad_output.dim(1), out_channels_);
  const int64_t n = grad_output.dim(0);
  const int64_t spatial = grad_output.dim(2) * grad_output.dim(3);
  const int64_t ckk = static_cast<int64_t>(in_channels_) * kernel_ * kernel_;
  NIID_CHECK_EQ(cached_columns_.dim(0), n * spatial);
  const float* g = grad_output.data();
  const float* cols = cached_columns_.data();

  // db: per-channel sums read directly from the NCHW gradient (the old flat
  // [n*oh*ow, out_c] gather is gone). Channels are independent outputs and
  // each keeps the (img, s) accumulation order fixed, so the result does not
  // depend on the thread count.
  float* bias_grad = bias_.grad.data();
  ParallelFor(compute_pool_, out_channels_, [&](int64_t ch) {
    float acc = 0.f;
    for (int64_t img = 0; img < n; ++img) {
      const float* row = g + (img * out_channels_ + ch) * spatial;
      for (int64_t s = 0; s < spatial; ++s) acc += row[s];
    }
    bias_grad[ch] += acc;
  });

  // dW^T (ckk x out_c) = sum_img columns_img^T @ G_img^T, with both
  // transposes absorbed into the GEMM operand views (G_img is read straight
  // from NCHW). The transposed layout puts the large ckk dimension on rows,
  // which is what the engine parallelises; images accumulate sequentially so
  // every element's FMA chain order is fixed regardless of threads.
  if (!ShapeIs(grad_wt_scratch_, ckk, out_channels_)) {
    grad_wt_scratch_.Resize({ckk, out_channels_});
  }
  for (int64_t img = 0; img < n; ++img) {
    Gemm(ckk, out_channels_, spatial, {cols + img * spatial * ckk, ckk, true},
         {g + img * out_channels_ * spatial, spatial, true},
         grad_wt_scratch_.data(), out_channels_, /*accumulate=*/img > 0,
         compute_pool_);
  }
  float* weight_grad = weight_.grad.data();
  const float* wt = grad_wt_scratch_.data();
  for (int64_t ch = 0; ch < out_channels_; ++ch) {
    float* row = weight_grad + ch * ckk;
    for (int64_t e = 0; e < ckk; ++e) row[e] += wt[e * out_channels_ + ch];
  }

  // dColumns per image: (spatial x ckk) = G_img^T @ W, again reading G_img
  // from NCHW via a transposed view. Images own disjoint row ranges of the
  // cached scratch, so they run in parallel.
  if (!ShapeIs(grad_columns_, n * spatial, ckk)) {
    grad_columns_.Resize({n * spatial, ckk});
  }
  float* gcol = grad_columns_.data();
  ParallelFor(compute_pool_, n, [&](int64_t img) {
    Gemm(spatial, ckk, out_channels_,
         {g + img * out_channels_ * spatial, spatial, true},
         {weight_.value.data(), ckk, false}, gcol + img * spatial * ckk, ckk,
         /*accumulate=*/false, compute_pool_);
  });

  Col2Im(grad_columns_, static_cast<int>(cached_input_shape_[0]),
         static_cast<int>(cached_input_shape_[1]),
         static_cast<int>(cached_input_shape_[2]),
         static_cast<int>(cached_input_shape_[3]), kernel_, stride_, padding_,
         grad_input_, compute_pool_);
  return grad_input_;
}

}  // namespace niid
