#include "nn/conv2d.h"

#include <cmath>

#include "tensor/gemm.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "util/thread_pool.h"

namespace niid {
namespace {

// He-uniform bound for ReLU networks: Var(W) = 2 / fan_in. The weaker
// 1/sqrt(fan_in) bound stalls deep stacks like VGG-9 (activations shrink
// ~0.4x per conv+ReLU, so gradients vanish for many steps).
float KaimingBound(int fan_in) {
  return std::sqrt(6.f / static_cast<float>(fan_in));
}

// Torch-style bias bound.
float BiasBound(int fan_in) {
  return 1.f / std::sqrt(static_cast<float>(fan_in));
}

}  // namespace

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, Rng& rng,
               int stride, int padding)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      weight_("conv.weight",
              Tensor::Uniform(
                  {out_channels,
                   static_cast<int64_t>(in_channels) * kernel * kernel},
                  rng, -KaimingBound(in_channels * kernel * kernel),
                  KaimingBound(in_channels * kernel * kernel)),
              /*is_trainable=*/true),
      bias_("conv.bias",
            Tensor::Uniform({out_channels}, rng,
                            -BiasBound(in_channels * kernel * kernel),
                            BiasBound(in_channels * kernel * kernel)),
            /*is_trainable=*/true) {
  NIID_CHECK_GE(stride, 1);
  NIID_CHECK_GE(padding, 0);
}

// NIID_HOT
const Tensor& Conv2d::Forward(const Tensor& input) {
  NIID_CHECK_EQ(input.rank(), 4);
  NIID_CHECK_EQ(input.dim(1), in_channels_);
  const int64_t n = input.dim(0);
  const int h = static_cast<int>(input.dim(2));
  const int w = static_cast<int>(input.dim(3));
  const int out_h = ConvOutputSize(h, kernel_, stride_, padding_);
  const int out_w = ConvOutputSize(w, kernel_, stride_, padding_);
  cached_input_shape_ = input.shape();

  Im2ColTransposed(input, kernel_, stride_, padding_, cached_columns_t_,
                   compute_pool_);
  const int64_t spatial = static_cast<int64_t>(out_h) * out_w;
  const int64_t total = n * spatial;
  const int64_t ckk = static_cast<int64_t>(in_channels_) * kernel_ * kernel_;

  // W is the left operand of every image's GEMM: pack it once per weight
  // version (invalidated on optimizer steps / state loads) instead of once
  // per image per call. The cache-free path packs on the fly and is
  // bit-identical — the packed bytes are the same either way.
  if (weight_pack_caching_ && !packed_w_.is_a()) {
    packed_w_.PackA(out_channels_, ckk, {weight_.value.data(), ckk, false});
  }

  // Per image: out_img (out_c x spatial) = W @ columns_t[:, img block],
  // written straight into the NCHW output. The transposed column layout
  // makes the GEMM's B pack a straight memcpy of row segments instead of a
  // strided gather. The bias add rides the same pass. Images are disjoint
  // output planes, so they run in parallel; nested Gemm calls on the same
  // pool degrade to serial automatically.
  if (!ShapeIs(out_, n, out_channels_, out_h, out_w)) {
    out_.Resize({n, out_channels_, out_h, out_w});
  }
  const float* cols_t = cached_columns_t_.data();
  const float* wts = weight_.value.data();
  const float* bias = bias_.value.data();
  float* dst = out_.data();
  ParallelFor(compute_pool_, n, [&](int64_t img) {
    const GemmOperand cols_img{cols_t + img * spatial, total, false};
    float* out_img = dst + img * out_channels_ * spatial;
    if (weight_pack_caching_) {
      GemmPackedA(out_channels_, spatial, ckk, packed_w_, cols_img, out_img,
                  spatial, /*accumulate=*/false, compute_pool_);
    } else {
      Gemm(out_channels_, spatial, ckk, {wts, ckk, false}, cols_img, out_img,
           spatial, /*accumulate=*/false, compute_pool_);
    }
    for (int64_t ch = 0; ch < out_channels_; ++ch) {
      float* row = out_img + ch * spatial;
      const float bv = bias[ch];
      for (int64_t s = 0; s < spatial; ++s) row[s] += bv;
    }
  });
  return out_;
}

// NIID_HOT
const Tensor& Conv2d::Backward(const Tensor& grad_output) {
  NIID_CHECK_EQ(grad_output.rank(), 4);
  NIID_CHECK_EQ(grad_output.dim(1), out_channels_);
  const int64_t n = grad_output.dim(0);
  const int64_t spatial = grad_output.dim(2) * grad_output.dim(3);
  const int64_t total = n * spatial;
  const int64_t ckk = static_cast<int64_t>(in_channels_) * kernel_ * kernel_;
  NIID_CHECK_EQ(cached_columns_t_.dim(1), total);
  const float* g = grad_output.data();
  const float* cols_t = cached_columns_t_.data();

  // db: per-channel plane sums read directly from the NCHW gradient via the
  // vectorized strided reduce. Channels are independent outputs and each
  // keeps the (img, s) accumulation order fixed, so the result does not
  // depend on the thread count.
  float* bias_grad = bias_.grad.data();
  ParallelFor(compute_pool_, out_channels_, [&](int64_t ch) {
    bias_grad[ch] += static_cast<float>(
        KernelPlaneSum(n, out_channels_ * spatial, spatial, g + ch * spatial));
  });

  // Pack-once for the gradient operand: one blocked transpose turns the
  // NCHW gradient into G_t [n*spatial, out_c], and BOTH backward GEMMs
  // consume it as cheap contiguous views — the per-image strided NCHW
  // re-packs the old 2n GEMM calls performed are gone.
  if (!ShapeIs(grad_out_t_, total, out_channels_)) {
    grad_out_t_.Resize({total, out_channels_});
  }
  KernelBatchTranspose(n, out_channels_, spatial, g, grad_out_t_.data(),
                       compute_pool_);
  const float* gt = grad_out_t_.data();

  // dW^T (ckk x out_c) = columns_t @ G_t as ONE fused GEMM over
  // k = n*spatial. The fused contraction visits k = (img, s) in exactly the
  // order the old per-image accumulate-GEMM loop did, so every element's
  // FMA chain — and hence the gradient bits — is unchanged. The scratch +
  // vectorized transpose-add (instead of accumulating into weight_.grad
  // directly) keeps the chain seeded at zero like the historical path.
  if (!ShapeIs(grad_wt_scratch_, ckk, out_channels_)) {
    grad_wt_scratch_.Resize({ckk, out_channels_});
  }
  Gemm(ckk, out_channels_, total, {cols_t, total, false},
       {gt, out_channels_, false}, grad_wt_scratch_.data(), out_channels_,
       /*accumulate=*/false, compute_pool_);
  KernelAddTransposed(out_channels_, ckk, grad_wt_scratch_.data(),
                      weight_.grad.data());

  // dColumns_t (ckk x n*spatial) = W^T @ G_t^T as one fused GEMM. W^T is
  // the packed-once weight cache (shared with every Backward until the next
  // optimizer step); the short-wide shape triggers the engine's
  // column-block parallel mode, which still never splits k = out_c.
  if (!ShapeIs(grad_columns_t_, ckk, total)) {
    grad_columns_t_.Resize({ckk, total});
  }
  const GemmOperand gt_t{gt, out_channels_, true};
  if (weight_pack_caching_) {
    if (!packed_wt_.is_a()) {
      packed_wt_.PackA(ckk, out_channels_, {weight_.value.data(), ckk, true});
    }
    GemmPackedA(ckk, total, out_channels_, packed_wt_, gt_t,
                grad_columns_t_.data(), total, /*accumulate=*/false,
                compute_pool_);
  } else {
    Gemm(ckk, total, out_channels_, {weight_.value.data(), ckk, true}, gt_t,
         grad_columns_t_.data(), total, /*accumulate=*/false, compute_pool_);
  }

  Col2ImTransposed(grad_columns_t_, static_cast<int>(cached_input_shape_[0]),
                   static_cast<int>(cached_input_shape_[1]),
                   static_cast<int>(cached_input_shape_[2]),
                   static_cast<int>(cached_input_shape_[3]), kernel_, stride_,
                   padding_, grad_input_, compute_pool_);
  return grad_input_;
}

}  // namespace niid
