#include "nn/conv2d.h"

#include <cmath>

#include "tensor/ops.h"

namespace niid {
namespace {

// He-uniform bound for ReLU networks: Var(W) = 2 / fan_in. The weaker
// 1/sqrt(fan_in) bound stalls deep stacks like VGG-9 (activations shrink
// ~0.4x per conv+ReLU, so gradients vanish for many steps).
float KaimingBound(int fan_in) {
  return std::sqrt(6.f / static_cast<float>(fan_in));
}

// Torch-style bias bound.
float BiasBound(int fan_in) {
  return 1.f / std::sqrt(static_cast<float>(fan_in));
}

}  // namespace

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, Rng& rng,
               int stride, int padding)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      weight_("conv.weight",
              Tensor::Uniform(
                  {out_channels,
                   static_cast<int64_t>(in_channels) * kernel * kernel},
                  rng, -KaimingBound(in_channels * kernel * kernel),
                  KaimingBound(in_channels * kernel * kernel)),
              /*is_trainable=*/true),
      bias_("conv.bias",
            Tensor::Uniform({out_channels}, rng,
                            -BiasBound(in_channels * kernel * kernel),
                            BiasBound(in_channels * kernel * kernel)),
            /*is_trainable=*/true) {
  NIID_CHECK_GE(stride, 1);
  NIID_CHECK_GE(padding, 0);
}

Tensor Conv2d::Forward(const Tensor& input) {
  NIID_CHECK_EQ(input.rank(), 4);
  NIID_CHECK_EQ(input.dim(1), in_channels_);
  const int64_t n = input.dim(0);
  const int h = static_cast<int>(input.dim(2));
  const int w = static_cast<int>(input.dim(3));
  const int out_h = ConvOutputSize(h, kernel_, stride_, padding_);
  const int out_w = ConvOutputSize(w, kernel_, stride_, padding_);
  cached_input_shape_ = input.shape();

  Im2Col(input, kernel_, stride_, padding_, cached_columns_);
  // columns: [n*oh*ow, c*k*k]; result: [n*oh*ow, out_c].
  Tensor flat_out;
  MatmulTransB(cached_columns_, weight_.value, flat_out);
  AddRowBias(flat_out, bias_.value);

  // Scatter rows (n, oy, ox) x out_c into NCHW.
  Tensor out({n, out_channels_, out_h, out_w});
  const float* src = flat_out.data();
  float* dst = out.data();
  const int64_t spatial = static_cast<int64_t>(out_h) * out_w;
  for (int64_t img = 0; img < n; ++img) {
    for (int64_t s = 0; s < spatial; ++s) {
      const float* row = src + (img * spatial + s) * out_channels_;
      for (int64_t c = 0; c < out_channels_; ++c) {
        dst[(img * out_channels_ + c) * spatial + s] = row[c];
      }
    }
  }
  return out;
}

Tensor Conv2d::Backward(const Tensor& grad_output) {
  NIID_CHECK_EQ(grad_output.rank(), 4);
  NIID_CHECK_EQ(grad_output.dim(1), out_channels_);
  const int64_t n = grad_output.dim(0);
  const int64_t spatial = grad_output.dim(2) * grad_output.dim(3);

  // Gather NCHW grads back into the [n*oh*ow, out_c] row layout.
  Tensor flat_grad({n * spatial, out_channels_});
  const float* src = grad_output.data();
  float* dst = flat_grad.data();
  for (int64_t img = 0; img < n; ++img) {
    for (int64_t s = 0; s < spatial; ++s) {
      float* row = dst + (img * spatial + s) * out_channels_;
      for (int64_t c = 0; c < out_channels_; ++c) {
        row[c] = src[(img * out_channels_ + c) * spatial + s];
      }
    }
  }

  // dW += G^T columns; db += column sums of G.
  Tensor grad_w;
  MatmulTransA(flat_grad, cached_columns_, grad_w);
  weight_.grad.Add(grad_w);
  Tensor grad_b;
  SumRows(flat_grad, grad_b);
  bias_.grad.Add(grad_b);

  // dColumns = G W; dInput = col2im(dColumns).
  Tensor grad_columns;
  Matmul(flat_grad, weight_.value, grad_columns);
  Tensor grad_input;
  Col2Im(grad_columns, static_cast<int>(cached_input_shape_[0]),
         static_cast<int>(cached_input_shape_[1]),
         static_cast<int>(cached_input_shape_[2]),
         static_cast<int>(cached_input_shape_[3]), kernel_, stride_, padding_,
         grad_input);
  return grad_input;
}

}  // namespace niid
