#ifndef NIID_NN_CONV2D_H_
#define NIID_NN_CONV2D_H_

#include <string>
#include <vector>

#include "nn/module.h"
#include "util/rng.h"

namespace niid {

/// 2-D convolution over NCHW input with a square kernel, implemented as
/// im2col + matmul. Weight layout: [out_channels, in_channels * k * k].
class Conv2d : public Module {
 public:
  Conv2d(int in_channels, int out_channels, int kernel, Rng& rng,
         int stride = 1, int padding = 0);

  const Tensor& Forward(const Tensor& input) override;
  const Tensor& Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Parameters() override { return {&weight_, &bias_}; }
  std::string Name() const override { return "Conv2d"; }

  int in_channels() const { return in_channels_; }
  int out_channels() const { return out_channels_; }
  int kernel() const { return kernel_; }

 private:
  int in_channels_;
  int out_channels_;
  int kernel_;
  int stride_;
  int padding_;
  Parameter weight_;
  Parameter bias_;
  // Forward caches for the backward pass.
  Tensor cached_columns_;           // im2col of the input
  std::vector<int64_t> cached_input_shape_;
  // Reusable gradient scratch — steady-state training reuses these buffers
  // instead of reallocating them every minibatch.
  Tensor grad_wt_scratch_;   // dW^T accumulator, [in_c*k*k, out_c]
  Tensor grad_columns_;      // column-space gradient, [n*oh*ow, in_c*k*k]
  Tensor out_;               // forward output scratch
  Tensor grad_input_;        // backward output scratch
};

}  // namespace niid

#endif  // NIID_NN_CONV2D_H_
