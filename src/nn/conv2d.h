#ifndef NIID_NN_CONV2D_H_
#define NIID_NN_CONV2D_H_

#include <string>
#include <vector>

#include "nn/module.h"
#include "tensor/gemm.h"
#include "util/rng.h"

namespace niid {

/// 2-D convolution over NCHW input with a square kernel, implemented as
/// transposed im2col + GEMMs on the pack-once engine (DESIGN.md §12).
/// Weight layout: [out_channels, in_channels * k * k].
class Conv2d : public Module {
 public:
  Conv2d(int in_channels, int out_channels, int kernel, Rng& rng,
         int stride = 1, int padding = 0);

  const Tensor& Forward(const Tensor& input) override;
  const Tensor& Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Parameters() override { return {&weight_, &bias_}; }
  std::string Name() const override { return "Conv2d"; }
  void InvalidateWeightCaches() override {
    packed_w_.Invalidate();
    packed_wt_.Invalidate();
  }

  int in_channels() const { return in_channels_; }
  int out_channels() const { return out_channels_; }
  int kernel() const { return kernel_; }

 private:
  int in_channels_;
  int out_channels_;
  int kernel_;
  int stride_;
  int padding_;
  Parameter weight_;
  Parameter bias_;
  // Forward caches for the backward pass.
  Tensor cached_columns_t_;  // transposed im2col, [in_c*k*k, n*oh*ow]
  std::vector<int64_t> cached_input_shape_;
  // Packed-weight caches: W as the forward GEMM's left operand and W^T as
  // the dX GEMM's left operand, each packed once per weight version and
  // reused across every image/step until InvalidateWeightCaches().
  PackedOperand packed_w_;
  PackedOperand packed_wt_;
  // Reusable gradient scratch — steady-state training reuses these buffers
  // instead of reallocating them every minibatch.
  Tensor grad_out_t_;        // per-image transposed output grad, [n*oh*ow, out_c]
  Tensor grad_wt_scratch_;   // dW^T accumulator, [in_c*k*k, out_c]
  Tensor grad_columns_t_;    // column-space gradient, [in_c*k*k, n*oh*ow]
  Tensor out_;               // forward output scratch
  Tensor grad_input_;        // backward output scratch
};

}  // namespace niid

#endif  // NIID_NN_CONV2D_H_
