#include "nn/linear.h"

#include <cmath>

#include "tensor/gemm.h"
#include "tensor/ops.h"

namespace niid {

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_("linear.weight",
              Tensor::Uniform({out_features, in_features}, rng,
                              -1.f / std::sqrt(static_cast<float>(in_features)),
                              1.f / std::sqrt(static_cast<float>(in_features))),
              /*is_trainable=*/true),
      bias_("linear.bias",
            Tensor::Uniform({out_features}, rng,
                            -1.f / std::sqrt(static_cast<float>(in_features)),
                            1.f / std::sqrt(static_cast<float>(in_features))),
            /*is_trainable=*/true) {}

// NIID_HOT
const Tensor& Linear::Forward(const Tensor& input) {
  NIID_CHECK_EQ(input.rank(), 2);
  NIID_CHECK_EQ(input.dim(1), in_features_);
  cached_input_ = input;
  const int64_t batch = input.dim(0);
  if (!ShapeIs(out_, batch, out_features_)) {
    out_.Resize({batch, out_features_});
  }
  // y = x @ W^T: the W^T right operand's per-call pack was a strided gather
  // over the [out, in] weight rows — pack it once per weight version
  // instead. Bit-identical to MatmulTransB: the packed panels hold the same
  // bytes either way.
  if (weight_pack_caching_) {
    if (!packed_wt_.is_b()) {
      packed_wt_.PackB(in_features_, out_features_,
                       {weight_.value.data(), in_features_, true});
    }
    GemmPackedB(batch, out_features_, in_features_,
                {input.data(), in_features_, false}, packed_wt_, out_.data(),
                out_features_, /*accumulate=*/false, compute_pool_);
  } else {
    Gemm(batch, out_features_, in_features_,
         {input.data(), in_features_, false},
         {weight_.value.data(), in_features_, true}, out_.data(),
         out_features_, /*accumulate=*/false, compute_pool_);
  }
  AddRowBias(out_, bias_.value, compute_pool_);
  return out_;
}

// NIID_HOT
const Tensor& Linear::Backward(const Tensor& grad_output) {
  NIID_CHECK_EQ(grad_output.rank(), 2);
  NIID_CHECK_EQ(grad_output.dim(1), out_features_);
  const int64_t batch = grad_output.dim(0);
  // dW += G^T X; db += column-sums of G; dX = G W. The gradient scratch
  // tensors are members so steady-state training allocates nothing here.
  MatmulTransA(grad_output, cached_input_, grad_w_scratch_, compute_pool_);
  weight_.grad.Add(grad_w_scratch_);
  SumRows(grad_output, grad_b_scratch_, compute_pool_);
  bias_.grad.Add(grad_b_scratch_);
  // dX = G @ W with W cached in packed form (shared with every Backward
  // until the weights change).
  if (!ShapeIs(grad_input_, batch, in_features_)) {
    grad_input_.Resize({batch, in_features_});
  }
  if (weight_pack_caching_) {
    if (!packed_w_.is_b()) {
      packed_w_.PackB(out_features_, in_features_,
                      {weight_.value.data(), in_features_, false});
    }
    GemmPackedB(batch, in_features_, out_features_,
                {grad_output.data(), out_features_, false}, packed_w_,
                grad_input_.data(), in_features_, /*accumulate=*/false,
                compute_pool_);
  } else {
    Gemm(batch, in_features_, out_features_,
         {grad_output.data(), out_features_, false},
         {weight_.value.data(), in_features_, false}, grad_input_.data(),
         in_features_, /*accumulate=*/false, compute_pool_);
  }
  return grad_input_;
}

}  // namespace niid
