#include "nn/linear.h"

#include <cmath>

#include "tensor/ops.h"

namespace niid {

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_("linear.weight",
              Tensor::Uniform({out_features, in_features}, rng,
                              -1.f / std::sqrt(static_cast<float>(in_features)),
                              1.f / std::sqrt(static_cast<float>(in_features))),
              /*is_trainable=*/true),
      bias_("linear.bias",
            Tensor::Uniform({out_features}, rng,
                            -1.f / std::sqrt(static_cast<float>(in_features)),
                            1.f / std::sqrt(static_cast<float>(in_features))),
            /*is_trainable=*/true) {}

const Tensor& Linear::Forward(const Tensor& input) {
  NIID_CHECK_EQ(input.rank(), 2);
  NIID_CHECK_EQ(input.dim(1), in_features_);
  cached_input_ = input;
  MatmulTransB(input, weight_.value, out_, compute_pool_);
  AddRowBias(out_, bias_.value, compute_pool_);
  return out_;
}

const Tensor& Linear::Backward(const Tensor& grad_output) {
  NIID_CHECK_EQ(grad_output.rank(), 2);
  NIID_CHECK_EQ(grad_output.dim(1), out_features_);
  // dW += G^T X; db += column-sums of G; dX = G W. The gradient scratch
  // tensors are members so steady-state training allocates nothing here.
  MatmulTransA(grad_output, cached_input_, grad_w_scratch_, compute_pool_);
  weight_.grad.Add(grad_w_scratch_);
  SumRows(grad_output, grad_b_scratch_, compute_pool_);
  bias_.grad.Add(grad_b_scratch_);
  Matmul(grad_output, weight_.value, grad_input_, compute_pool_);
  return grad_input_;
}

}  // namespace niid
