#ifndef NIID_NN_LINEAR_H_
#define NIID_NN_LINEAR_H_

#include <string>
#include <vector>

#include "nn/module.h"
#include "tensor/gemm.h"
#include "util/rng.h"

namespace niid {

/// Fully connected layer: y = x W^T + b with x: [N, in], W: [out, in].
/// Weights use Kaiming-uniform initialization (like torch.nn.Linear).
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng);

  const Tensor& Forward(const Tensor& input) override;
  const Tensor& Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Parameters() override { return {&weight_, &bias_}; }
  std::string Name() const override { return "Linear"; }
  void InvalidateWeightCaches() override {
    packed_wt_.Invalidate();
    packed_w_.Invalidate();
  }

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;
  // Packed-weight caches (DESIGN.md §12): W^T as the forward GEMM's right
  // operand (its per-call pack was a strided gather) and W as the dX GEMM's
  // right operand, re-packed lazily after InvalidateWeightCaches().
  PackedOperand packed_wt_;
  PackedOperand packed_w_;
  // Reusable output/gradient scratch — zero allocations in steady state.
  Tensor out_;
  Tensor grad_input_;
  Tensor grad_w_scratch_;
  Tensor grad_b_scratch_;
};

}  // namespace niid

#endif  // NIID_NN_LINEAR_H_
