#include "nn/loss.h"

#include <cmath>

#include "tensor/ops.h"
#include "util/check.h"

namespace niid {

LossResult SoftmaxCrossEntropy(const Tensor& logits,
                               const std::vector<int>& labels) {
  NIID_CHECK_EQ(logits.rank(), 2);
  const int64_t n = logits.dim(0);
  const int64_t classes = logits.dim(1);
  NIID_CHECK_EQ(static_cast<int64_t>(labels.size()), n);
  NIID_CHECK_GE(n, 1);

  LossResult result;
  result.grad_logits = logits;  // copy, then convert to probabilities
  SoftmaxRows(result.grad_logits);

  double total_loss = 0.0;
  float* probs = result.grad_logits.data();
  const float inv_n = 1.f / static_cast<float>(n);
  for (int64_t i = 0; i < n; ++i) {
    const int label = labels[i];
    NIID_DCHECK_LT(label, classes);
    float* row = probs + i * classes;
    // top-1 prediction
    int best = 0;
    for (int64_t j = 1; j < classes; ++j) {
      if (row[j] > row[best]) best = static_cast<int>(j);
    }
    if (best == label) ++result.correct;
    // loss and gradient: dL/dz = (p - onehot) / N
    const float p_label = row[label];
    total_loss += -std::log(std::max(p_label, 1e-12f));
    row[label] -= 1.f;
    for (int64_t j = 0; j < classes; ++j) row[j] *= inv_n;
  }
  result.loss = total_loss / static_cast<double>(n);
  return result;
}

}  // namespace niid
