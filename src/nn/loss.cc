#include "nn/loss.h"

#include "tensor/kernels.h"
#include "util/check.h"

namespace niid {

LossResult SoftmaxCrossEntropy(const Tensor& logits,
                               const std::vector<int>& labels) {
  LossResult result;
  SoftmaxCrossEntropyInto(logits, labels, result);
  return result;
}

void SoftmaxCrossEntropyInto(const Tensor& logits,
                             const std::vector<int>& labels,
                             LossResult& result) {
  NIID_CHECK_EQ(logits.rank(), 2);
  const int64_t n = logits.dim(0);
  const int64_t classes = logits.dim(1);
  NIID_CHECK_EQ(static_cast<int64_t>(labels.size()), n);
  NIID_CHECK_GE(n, 1);

  if (result.grad_logits.shape() != logits.shape()) {
    result.grad_logits.Resize(logits.shape());
  }
  KernelCopy(logits.numel(), logits.data(), result.grad_logits.data());

  result.correct = 0;
  double total_loss = 0.0;
  float* rows = result.grad_logits.data();
  const float inv_n = 1.f / static_cast<float>(n);
  for (int64_t i = 0; i < n; ++i) {
    const int label = labels[i];
    NIID_DCHECK_GE(label, 0);
    NIID_DCHECK_LT(label, classes);
    double row_loss = 0.0;
    bool row_correct = false;
    KernelSoftmaxXentRow(classes, label, inv_n, rows + i * classes, &row_loss,
                         &row_correct);
    total_loss += row_loss;
    if (row_correct) ++result.correct;
  }
  result.loss = total_loss / static_cast<double>(n);
}

}  // namespace niid
