#ifndef NIID_NN_LOSS_H_
#define NIID_NN_LOSS_H_

#include <vector>

#include "tensor/tensor.h"

namespace niid {

/// Result of a loss evaluation.
struct LossResult {
  double loss = 0.0;        ///< mean loss over the batch
  Tensor grad_logits;       ///< dL/dlogits, already divided by batch size
  int correct = 0;          ///< number of top-1 correct predictions
};

/// Mean softmax cross-entropy over a batch.
/// `logits`: [N, num_classes]; `labels`: N class ids in [0, num_classes).
LossResult SoftmaxCrossEntropy(const Tensor& logits,
                               const std::vector<int>& labels);

}  // namespace niid

#endif  // NIID_NN_LOSS_H_
