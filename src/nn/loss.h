#ifndef NIID_NN_LOSS_H_
#define NIID_NN_LOSS_H_

#include <vector>

#include "tensor/tensor.h"

namespace niid {

/// Result of a loss evaluation.
struct LossResult {
  double loss = 0.0;        ///< mean loss over the batch
  Tensor grad_logits;       ///< dL/dlogits, already divided by batch size
  int correct = 0;          ///< number of top-1 correct predictions
};

/// Mean softmax cross-entropy over a batch.
/// `logits`: [N, num_classes]; `labels`: N class ids in [0, num_classes).
LossResult SoftmaxCrossEntropy(const Tensor& logits,
                               const std::vector<int>& labels);

/// In-place variant: writes into a caller-owned LossResult whose grad_logits
/// scratch is reused across calls (zero allocations in steady state). Both
/// variants run the same KernelSoftmaxXentRow kernel per row, so they agree
/// bit for bit.
void SoftmaxCrossEntropyInto(const Tensor& logits,
                             const std::vector<int>& labels,
                             LossResult& result);

}  // namespace niid

#endif  // NIID_NN_LOSS_H_
