#include "nn/models/factory.h"

#include "nn/models/resnet.h"
#include "nn/models/simple_cnn.h"
#include "nn/models/tabular_mlp.h"
#include "nn/models/vgg9.h"
#include "util/check.h"

namespace niid {

std::unique_ptr<Module> CreateModel(const ModelSpec& spec, Rng& rng) {
  if (spec.name == "simple-cnn") return BuildSimpleCnn(spec, rng);
  if (spec.name == "mlp") return BuildTabularMlp(spec, rng);
  if (spec.name == "vgg9") return BuildVgg9(spec, rng);
  if (spec.name == "resnet") return BuildResNet(spec, rng);
  NIID_CHECK(false) << "unknown model name: " << spec.name;
  return nullptr;
}

ModelFactory MakeModelFactory(const ModelSpec& spec) {
  return [spec](Rng& rng) { return CreateModel(spec, rng); };
}

}  // namespace niid
