#ifndef NIID_NN_MODELS_FACTORY_H_
#define NIID_NN_MODELS_FACTORY_H_

#include <functional>
#include <memory>
#include <string>

#include "nn/module.h"
#include "util/rng.h"

namespace niid {

/// Describes the model to instantiate and the data it must fit.
struct ModelSpec {
  /// One of: "simple-cnn", "mlp", "vgg9", "resnet".
  std::string name = "simple-cnn";
  /// Image models ([C, H, W] inputs).
  int input_channels = 1;
  int input_height = 28;
  int input_width = 28;
  /// Tabular models ([N, F] inputs).
  int input_features = 0;
  int num_classes = 10;
  /// ResNet depth knob: depth = 6 * blocks_per_stage + 2.
  int resnet_blocks_per_stage = 1;
};

/// Instantiates the model described by `spec`, drawing initial weights from
/// `rng`. Aborts on an unknown model name (programming error).
std::unique_ptr<Module> CreateModel(const ModelSpec& spec, Rng& rng);

/// A reusable constructor for per-client model instances.
using ModelFactory = std::function<std::unique_ptr<Module>(Rng&)>;

/// Binds `spec` into a factory closure.
ModelFactory MakeModelFactory(const ModelSpec& spec);

}  // namespace niid

#endif  // NIID_NN_MODELS_FACTORY_H_
