#include "nn/models/resnet.h"

#include "nn/sequential.h"
#include "util/check.h"

namespace niid {

ResidualBlock::ResidualBlock(int in_channels, int out_channels, int stride,
                             Rng& rng)
    : has_projection_(stride != 1 || in_channels != out_channels),
      conv1_(in_channels, out_channels, /*kernel=*/3, rng, stride,
             /*padding=*/1),
      bn1_(out_channels),
      conv2_(out_channels, out_channels, /*kernel=*/3, rng, /*stride=*/1,
             /*padding=*/1),
      bn2_(out_channels) {
  if (has_projection_) {
    proj_conv_ = std::make_unique<Conv2d>(in_channels, out_channels,
                                          /*kernel=*/1, rng, stride,
                                          /*padding=*/0);
    proj_bn_ = std::make_unique<BatchNorm>(out_channels);
  }
}

Tensor ResidualBlock::Forward(const Tensor& input) {
  Tensor main = conv1_.Forward(input);
  main = bn1_.Forward(main);
  main = relu1_.Forward(main);
  main = conv2_.Forward(main);
  main = bn2_.Forward(main);

  Tensor shortcut;
  if (has_projection_) {
    shortcut = proj_conv_->Forward(input);
    shortcut = proj_bn_->Forward(shortcut);
  } else {
    shortcut = input;
  }
  NIID_CHECK_EQ(main.numel(), shortcut.numel());
  main.Add(shortcut);

  // Output ReLU (inline so the mask is owned by the block).
  out_relu_mask_.assign(main.numel(), 0);
  float* p = main.data();
  for (int64_t i = 0; i < main.numel(); ++i) {
    if (p[i] > 0.f) {
      out_relu_mask_[i] = 1;
    } else {
      p[i] = 0.f;
    }
  }
  return main;
}

Tensor ResidualBlock::Backward(const Tensor& grad_output) {
  NIID_CHECK_EQ(grad_output.numel(),
                static_cast<int64_t>(out_relu_mask_.size()));
  Tensor grad_sum = grad_output;
  float* p = grad_sum.data();
  for (int64_t i = 0; i < grad_sum.numel(); ++i) {
    if (!out_relu_mask_[i]) p[i] = 0.f;
  }

  // Main branch.
  Tensor grad_main = bn2_.Backward(grad_sum);
  grad_main = conv2_.Backward(grad_main);
  grad_main = relu1_.Backward(grad_main);
  grad_main = bn1_.Backward(grad_main);
  grad_main = conv1_.Backward(grad_main);

  // Shortcut branch.
  if (has_projection_) {
    Tensor grad_short = proj_bn_->Backward(grad_sum);
    grad_short = proj_conv_->Backward(grad_short);
    grad_main.Add(grad_short);
  } else {
    grad_main.Add(grad_sum);
  }
  return grad_main;
}

std::vector<Parameter*> ResidualBlock::Parameters() {
  std::vector<Parameter*> params;
  auto append = [&params](std::vector<Parameter*> layer_params) {
    params.insert(params.end(), layer_params.begin(), layer_params.end());
  };
  append(conv1_.Parameters());
  append(bn1_.Parameters());
  append(conv2_.Parameters());
  append(bn2_.Parameters());
  if (has_projection_) {
    append(proj_conv_->Parameters());
    append(proj_bn_->Parameters());
  }
  return params;
}

void ResidualBlock::SetTraining(bool training) {
  training_ = training;
  conv1_.SetTraining(training);
  bn1_.SetTraining(training);
  relu1_.SetTraining(training);
  conv2_.SetTraining(training);
  bn2_.SetTraining(training);
  if (has_projection_) {
    proj_conv_->SetTraining(training);
    proj_bn_->SetTraining(training);
  }
}

void ResidualBlock::SetComputePool(ThreadPool* pool) {
  compute_pool_ = pool;
  conv1_.SetComputePool(pool);
  bn1_.SetComputePool(pool);
  relu1_.SetComputePool(pool);
  conv2_.SetComputePool(pool);
  bn2_.SetComputePool(pool);
  if (has_projection_) {
    proj_conv_->SetComputePool(pool);
    proj_bn_->SetComputePool(pool);
  }
}

std::unique_ptr<Module> BuildResNet(const ModelSpec& spec, Rng& rng) {
  NIID_CHECK_GE(spec.resnet_blocks_per_stage, 1);
  auto model = std::make_unique<Sequential>();
  // Stem.
  model->Emplace<Conv2d>(spec.input_channels, 16, /*kernel=*/3, rng,
                         /*stride=*/1, /*padding=*/1);
  model->Emplace<BatchNorm>(16);
  model->Emplace<ReLU>();
  // Three stages of widths 16/32/64.
  int in_c = 16;
  const int widths[3] = {16, 32, 64};
  for (int stage = 0; stage < 3; ++stage) {
    const int out_c = widths[stage];
    for (int block = 0; block < spec.resnet_blocks_per_stage; ++block) {
      const int stride = (stage > 0 && block == 0) ? 2 : 1;
      model->Emplace<ResidualBlock>(in_c, out_c, stride, rng);
      in_c = out_c;
    }
  }
  model->Emplace<GlobalAvgPool>();
  model->Emplace<Linear>(64, spec.num_classes, rng);
  return model;
}

}  // namespace niid
