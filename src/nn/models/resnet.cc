#include "nn/models/resnet.h"

#include "nn/sequential.h"
#include "tensor/kernels.h"
#include "util/check.h"

namespace niid {

ResidualBlock::ResidualBlock(int in_channels, int out_channels, int stride,
                             Rng& rng)
    : has_projection_(stride != 1 || in_channels != out_channels),
      conv1_(in_channels, out_channels, /*kernel=*/3, rng, stride,
             /*padding=*/1),
      bn1_(out_channels),
      conv2_(out_channels, out_channels, /*kernel=*/3, rng, /*stride=*/1,
             /*padding=*/1),
      bn2_(out_channels) {
  if (has_projection_) {
    proj_conv_ = std::make_unique<Conv2d>(in_channels, out_channels,
                                          /*kernel=*/1, rng, stride,
                                          /*padding=*/0);
    proj_bn_ = std::make_unique<BatchNorm>(out_channels);
  }
}

const Tensor& ResidualBlock::Forward(const Tensor& input) {
  const Tensor* main = &conv1_.Forward(input);
  main = &bn1_.Forward(*main);
  main = &relu1_.Forward(*main);
  main = &conv2_.Forward(*main);
  main = &bn2_.Forward(*main);

  // out = main + shortcut, written into block-owned scratch so the sublayers'
  // scratch stays untouched for Backward.
  if (out_.shape() != main->shape()) out_.Resize(main->shape());
  out_ = *main;  // capacity reuse: no allocation in steady state
  if (has_projection_) {
    const Tensor* shortcut = &proj_conv_->Forward(input);
    shortcut = &proj_bn_->Forward(*shortcut);
    NIID_CHECK_EQ(out_.numel(), shortcut->numel());
    out_.Add(*shortcut);
  } else {
    NIID_CHECK_EQ(out_.numel(), input.numel());
    out_.Add(input);
  }

  // Output ReLU, in place (the mask is owned by the block).
  if (out_relu_mask_.size() != static_cast<size_t>(out_.numel())) {
    out_relu_mask_.resize(out_.numel());  // shrink keeps capacity: no alloc
  }
  KernelReluForward(out_.numel(), out_.data(), out_.data(),
                    out_relu_mask_.data(), compute_pool_);
  return out_;
}

const Tensor& ResidualBlock::Backward(const Tensor& grad_output) {
  NIID_CHECK_EQ(grad_output.numel(),
                static_cast<int64_t>(out_relu_mask_.size()));
  if (grad_sum_.shape() != grad_output.shape()) {
    grad_sum_.Resize(grad_output.shape());
  }
  KernelReluBackward(grad_output.numel(), grad_output.data(),
                     out_relu_mask_.data(), grad_sum_.data(), compute_pool_);

  // Main branch.
  const Tensor* grad_main = &bn2_.Backward(grad_sum_);
  grad_main = &conv2_.Backward(*grad_main);
  grad_main = &relu1_.Backward(*grad_main);
  grad_main = &bn1_.Backward(*grad_main);
  grad_main = &conv1_.Backward(*grad_main);
  if (grad_in_.shape() != grad_main->shape()) {
    grad_in_.Resize(grad_main->shape());
  }
  grad_in_ = *grad_main;

  // Shortcut branch.
  if (has_projection_) {
    const Tensor* grad_short = &proj_bn_->Backward(grad_sum_);
    grad_short = &proj_conv_->Backward(*grad_short);
    grad_in_.Add(*grad_short);
  } else {
    grad_in_.Add(grad_sum_);
  }
  return grad_in_;
}

std::vector<Parameter*> ResidualBlock::Parameters() {
  std::vector<Parameter*> params;
  auto append = [&params](std::vector<Parameter*> layer_params) {
    params.insert(params.end(), layer_params.begin(), layer_params.end());
  };
  append(conv1_.Parameters());
  append(bn1_.Parameters());
  append(conv2_.Parameters());
  append(bn2_.Parameters());
  if (has_projection_) {
    append(proj_conv_->Parameters());
    append(proj_bn_->Parameters());
  }
  return params;
}

void ResidualBlock::SetTraining(bool training) {
  training_ = training;
  conv1_.SetTraining(training);
  bn1_.SetTraining(training);
  relu1_.SetTraining(training);
  conv2_.SetTraining(training);
  bn2_.SetTraining(training);
  if (has_projection_) {
    proj_conv_->SetTraining(training);
    proj_bn_->SetTraining(training);
  }
}

void ResidualBlock::SetComputePool(ThreadPool* pool) {
  compute_pool_ = pool;
  conv1_.SetComputePool(pool);
  bn1_.SetComputePool(pool);
  relu1_.SetComputePool(pool);
  conv2_.SetComputePool(pool);
  bn2_.SetComputePool(pool);
  if (has_projection_) {
    proj_conv_->SetComputePool(pool);
    proj_bn_->SetComputePool(pool);
  }
}

void ResidualBlock::InvalidateWeightCaches() {
  conv1_.InvalidateWeightCaches();
  conv2_.InvalidateWeightCaches();
  if (has_projection_) proj_conv_->InvalidateWeightCaches();
}

void ResidualBlock::SetWeightPackCaching(bool enabled) {
  weight_pack_caching_ = enabled;
  conv1_.SetWeightPackCaching(enabled);
  bn1_.SetWeightPackCaching(enabled);
  relu1_.SetWeightPackCaching(enabled);
  conv2_.SetWeightPackCaching(enabled);
  bn2_.SetWeightPackCaching(enabled);
  if (has_projection_) {
    proj_conv_->SetWeightPackCaching(enabled);
    proj_bn_->SetWeightPackCaching(enabled);
  }
}

std::unique_ptr<Module> BuildResNet(const ModelSpec& spec, Rng& rng) {
  NIID_CHECK_GE(spec.resnet_blocks_per_stage, 1);
  auto model = std::make_unique<Sequential>();
  // Stem.
  model->Emplace<Conv2d>(spec.input_channels, 16, /*kernel=*/3, rng,
                         /*stride=*/1, /*padding=*/1);
  model->Emplace<BatchNorm>(16);
  model->Emplace<ReLU>();
  // Three stages of widths 16/32/64.
  int in_c = 16;
  const int widths[3] = {16, 32, 64};
  for (int stage = 0; stage < 3; ++stage) {
    const int out_c = widths[stage];
    for (int block = 0; block < spec.resnet_blocks_per_stage; ++block) {
      const int stride = (stage > 0 && block == 0) ? 2 : 1;
      model->Emplace<ResidualBlock>(in_c, out_c, stride, rng);
      in_c = out_c;
    }
  }
  model->Emplace<GlobalAvgPool>();
  model->Emplace<Linear>(64, spec.num_classes, rng);
  return model;
}

}  // namespace niid
