#ifndef NIID_NN_MODELS_RESNET_H_
#define NIID_NN_MODELS_RESNET_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/models/factory.h"
#include "nn/module.h"
#include "nn/pooling.h"
#include "nn/activations.h"
#include "nn/linear.h"

namespace niid {

/// A CIFAR-style residual BasicBlock:
///   y = ReLU( BN2(Conv2(ReLU(BN1(Conv1(x))))) + shortcut(x) )
/// with a 1x1 strided Conv+BN shortcut when the shape changes.
///
/// This carries the BatchNorm layers whose running-statistics aggregation the
/// paper's Finding 7 investigates.
class ResidualBlock : public Module {
 public:
  ResidualBlock(int in_channels, int out_channels, int stride, Rng& rng);

  const Tensor& Forward(const Tensor& input) override;
  const Tensor& Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Parameters() override;
  void SetTraining(bool training) override;
  void SetComputePool(ThreadPool* pool) override;
  void InvalidateWeightCaches() override;
  void SetWeightPackCaching(bool enabled) override;
  std::string Name() const override { return "ResidualBlock"; }

 private:
  bool has_projection_;
  Conv2d conv1_;
  BatchNorm bn1_;
  ReLU relu1_;
  Conv2d conv2_;
  BatchNorm bn2_;
  std::unique_ptr<Conv2d> proj_conv_;
  std::unique_ptr<BatchNorm> proj_bn_;
  std::vector<uint8_t> out_relu_mask_;
  Tensor out_;        // main + shortcut, then output-ReLU'd in place
  Tensor grad_sum_;   // dL/d(sum) after the output-ReLU mask
  Tensor grad_in_;    // accumulated dL/d(input)
};

/// Builds a CIFAR-style ResNet of depth 6 * blocks_per_stage + 2: a 3x3 stem
/// (16 channels) + BN + ReLU, three residual stages of width 16/32/64 (the
/// latter two strided), global average pooling and a linear head.
///
/// SUBSTITUTION NOTE: the paper trains ResNet-50; its Finding 7 (BatchNorm
/// averaging instability) depends only on the presence of BN layers, so a
/// configurable-depth BN ResNet preserves the studied mechanism at CPU scale.
std::unique_ptr<Module> BuildResNet(const ModelSpec& spec, Rng& rng);

}  // namespace niid

#endif  // NIID_NN_MODELS_RESNET_H_
