#include "nn/models/simple_cnn.h"

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace niid {

std::unique_ptr<Sequential> BuildSimpleCnn(const ModelSpec& spec, Rng& rng) {
  NIID_CHECK_GE(spec.input_height, 12)
      << "simple-cnn needs at least 12x12 inputs";
  auto model = std::make_unique<Sequential>();
  model->Emplace<Conv2d>(spec.input_channels, 6, /*kernel=*/5, rng);
  model->Emplace<ReLU>();
  model->Emplace<MaxPool2d>(2);
  model->Emplace<Conv2d>(6, 16, /*kernel=*/5, rng);
  model->Emplace<ReLU>();
  model->Emplace<MaxPool2d>(2);
  model->Emplace<Flatten>();

  // Spatial size after conv5 -> pool2 -> conv5 -> pool2 (no padding).
  const int h1 = ConvOutputSize(spec.input_height, 5, 1, 0) / 2;
  const int h2 = ConvOutputSize(h1, 5, 1, 0) / 2;
  const int w1 = ConvOutputSize(spec.input_width, 5, 1, 0) / 2;
  const int w2 = ConvOutputSize(w1, 5, 1, 0) / 2;
  const int64_t flat = static_cast<int64_t>(16) * h2 * w2;

  model->Emplace<Linear>(flat, 120, rng);
  model->Emplace<ReLU>();
  model->Emplace<Linear>(120, 84, rng);
  model->Emplace<ReLU>();
  model->Emplace<Linear>(84, spec.num_classes, rng);
  return model;
}

}  // namespace niid
