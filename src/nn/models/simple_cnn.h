#ifndef NIID_NN_MODELS_SIMPLE_CNN_H_
#define NIID_NN_MODELS_SIMPLE_CNN_H_

#include <memory>

#include "nn/models/factory.h"
#include "nn/sequential.h"

namespace niid {

/// The paper's CNN for image datasets (Section 5): two 5x5 convolutions
/// (6 and 16 channels) each followed by 2x2 max pooling, then fully connected
/// layers of 120 and 84 units with ReLU, then the classifier head.
std::unique_ptr<Sequential> BuildSimpleCnn(const ModelSpec& spec, Rng& rng);

}  // namespace niid

#endif  // NIID_NN_MODELS_SIMPLE_CNN_H_
