#include "nn/models/tabular_mlp.h"

#include "nn/activations.h"
#include "nn/linear.h"
#include "util/check.h"

namespace niid {

std::unique_ptr<Sequential> BuildTabularMlp(const ModelSpec& spec, Rng& rng) {
  NIID_CHECK_GT(spec.input_features, 0);
  auto model = std::make_unique<Sequential>();
  model->Emplace<Linear>(spec.input_features, 32, rng);
  model->Emplace<ReLU>();
  model->Emplace<Linear>(32, 16, rng);
  model->Emplace<ReLU>();
  model->Emplace<Linear>(16, 8, rng);
  model->Emplace<ReLU>();
  model->Emplace<Linear>(8, spec.num_classes, rng);
  return model;
}

}  // namespace niid
