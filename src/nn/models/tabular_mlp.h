#ifndef NIID_NN_MODELS_TABULAR_MLP_H_
#define NIID_NN_MODELS_TABULAR_MLP_H_

#include <memory>

#include "nn/models/factory.h"
#include "nn/sequential.h"

namespace niid {

/// The paper's MLP for tabular datasets: three hidden layers of 32, 16 and 8
/// units with ReLU activations, then the classifier head.
std::unique_ptr<Sequential> BuildTabularMlp(const ModelSpec& spec, Rng& rng);

}  // namespace niid

#endif  // NIID_NN_MODELS_TABULAR_MLP_H_
