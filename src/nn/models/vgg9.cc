#include "nn/models/vgg9.h"

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "util/check.h"

namespace niid {

std::unique_ptr<Sequential> BuildVgg9(const ModelSpec& spec, Rng& rng) {
  NIID_CHECK_GE(spec.input_height, 16) << "vgg9 needs at least 16x16 inputs";
  auto model = std::make_unique<Sequential>();
  int h = spec.input_height;
  int w = spec.input_width;
  // Feature extractor: config [32, M, 64, M, 128, 128, M, 256, 256, M].
  int in_c = spec.input_channels;
  const int config[][2] = {{32, 1}, {64, 1}, {128, 0}, {128, 1},
                           {256, 0}, {256, 1}};
  for (const auto& [out_c, pool] : config) {
    model->Emplace<Conv2d>(in_c, out_c, /*kernel=*/3, rng, /*stride=*/1,
                           /*padding=*/1);
    model->Emplace<ReLU>();
    in_c = out_c;
    if (pool) {
      model->Emplace<MaxPool2d>(2);
      h /= 2;
      w /= 2;
    }
  }
  model->Emplace<Flatten>();
  const int64_t flat = static_cast<int64_t>(in_c) * h * w;
  model->Emplace<Linear>(flat, 512, rng);
  model->Emplace<ReLU>();
  model->Emplace<Linear>(512, 512, rng);
  model->Emplace<ReLU>();
  model->Emplace<Linear>(512, spec.num_classes, rng);
  return model;
}

}  // namespace niid
