#ifndef NIID_NN_MODELS_VGG9_H_
#define NIID_NN_MODELS_VGG9_H_

#include <memory>

#include "nn/models/factory.h"
#include "nn/sequential.h"

namespace niid {

/// VGG-9 (Section 5.5): nine weighted layers — six 3x3 convolutions
/// (32, 64, 128, 128, 256, 256 channels) interleaved with max pooling, then
/// two 512-unit fully connected layers and the classifier head. No batch
/// normalization, which is exactly why the paper contrasts it with ResNet.
std::unique_ptr<Sequential> BuildVgg9(const ModelSpec& spec, Rng& rng);

}  // namespace niid

#endif  // NIID_NN_MODELS_VGG9_H_
