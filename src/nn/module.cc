#include "nn/module.h"

// Module is header-only today; this file anchors the vtable.
