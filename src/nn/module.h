#ifndef NIID_NN_MODULE_H_
#define NIID_NN_MODULE_H_

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace niid {

class ThreadPool;

/// One learnable tensor (or non-trainable buffer) of a module.
///
/// Buffers (trainable == false) hold state such as BatchNorm running
/// statistics. They carry no gradient but ARE part of the model state that
/// federated aggregation exchanges — the paper's Finding 7 is precisely about
/// the effect of naively averaging these buffers across non-IID parties.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;  ///< Same shape as value; meaningless for buffers.
  bool trainable = true;

  Parameter(std::string n, Tensor v, bool is_trainable = true)
      : name(std::move(n)),
        value(std::move(v)),
        grad(Tensor::Zeros(value.shape())),
        trainable(is_trainable) {}
};

/// Base class for every layer and model. A Module is a differentiable
/// function with internal parameters; Forward caches whatever Backward needs,
/// so the usage protocol is strictly: Forward, then at most one Backward.
///
/// Scratch ownership (DESIGN.md §8): Forward and Backward return references
/// to member scratch owned by the layer. The reference stays valid — and its
/// contents stable — until the same method is called again on the same layer,
/// which is exactly the lifetime a Sequential chain or a training step needs.
/// After the first step at a given batch shape, layers reuse their scratch
/// buffers and the steady-state step performs zero heap allocations.
class Module {
 public:
  virtual ~Module() = default;

  /// Computes the layer output for `input`, caching activations for Backward.
  /// Returns a reference to layer-owned scratch (see class comment).
  virtual const Tensor& Forward(const Tensor& input) = 0;

  /// Given dL/d(output), accumulates parameter gradients (into
  /// Parameter::grad) and returns dL/d(input). Must follow a Forward call.
  /// Returns a reference to layer-owned scratch (see class comment).
  virtual const Tensor& Backward(const Tensor& grad_output) = 0;

  /// All parameters and buffers of this module, in a deterministic order.
  virtual std::vector<Parameter*> Parameters() { return {}; }

  /// Switches between training mode (BatchNorm uses batch statistics and
  /// updates running stats) and evaluation mode.
  virtual void SetTraining(bool training) { training_ = training; }
  bool training() const { return training_; }

  /// Hands the module (and, via container overrides, every submodule) a
  /// worker pool for intra-layer parallelism: the GEMM/conv hot paths of
  /// Linear and Conv2d split row blocks and images across the pool. May be
  /// null (serial). The pool is borrowed, never owned, and results are
  /// bit-identical with or without it (DESIGN.md §7 determinism policy).
  /// Calling Forward/Backward from inside a task of the same pool is safe:
  /// nested parallel sections degrade to serial execution.
  virtual void SetComputePool(ThreadPool* pool) { compute_pool_ = pool; }
  ThreadPool* compute_pool() const { return compute_pool_; }

  /// Marks any cached packed-weight GEMM operands stale (DESIGN.md §12).
  /// Layers that keep weights in the GEMM engine's panel format (Conv2d,
  /// Linear) re-pack lazily on next use. The invalidation contract: this
  /// MUST be called whenever Parameter::value storage is written outside the
  /// module's own Forward/Backward — optimizer steps, state loads,
  /// deserialization, or direct element writes (e.g. finite-difference
  /// probes). SgdOptimizer::Step and the parameters.cc/serialization.cc
  /// loaders already do; new mutation sites must follow suit. Container
  /// overrides recurse into submodules; the default is a no-op.
  virtual void InvalidateWeightCaches() {}

  /// Enables or disables packed-weight caching (default enabled). Disabling
  /// invalidates and bypasses the caches so every GEMM re-packs its weight
  /// operand from Parameter::value — the cache-free oracle configuration
  /// used to prove the cached path bit-identical. Container overrides
  /// recurse into submodules.
  virtual void SetWeightPackCaching(bool enabled) {
    weight_pack_caching_ = enabled;
    InvalidateWeightCaches();
  }
  bool weight_pack_caching() const { return weight_pack_caching_; }

  /// Human-readable layer name for debugging and reports.
  virtual std::string Name() const = 0;

 protected:
  bool training_ = true;
  bool weight_pack_caching_ = true;
  ThreadPool* compute_pool_ = nullptr;
};

}  // namespace niid

#endif  // NIID_NN_MODULE_H_
