#include "nn/optimizer.h"

#include "tensor/kernels.h"

namespace niid {

SgdOptimizer::SgdOptimizer(Module& module, float learning_rate, float momentum,
                           float weight_decay)
    : module_(&module),
      learning_rate_(learning_rate),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  for (Parameter* p : module.Parameters()) {
    if (!p->trainable) continue;
    params_.push_back(p);
    velocity_.push_back(Tensor::Zeros(p->value.shape()));
  }
}

// NIID_HOT
void SgdOptimizer::Step(ThreadPool* pool) {
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    KernelSgdMomentumStep(p->value.numel(), learning_rate_, momentum_,
                          weight_decay_, p->value.data(), p->grad.data(),
                          velocity_[i].data(), pool);
  }
  // The step just rewrote every trainable Parameter::value, so any packed
  // weight operand cached by a layer is now stale (DESIGN.md §12).
  module_->InvalidateWeightCaches();
}

void SgdOptimizer::ZeroGrads() {
  for (Parameter* p : params_) {
    KernelFill(p->grad.numel(), 0.f, p->grad.data());
  }
}

void SgdOptimizer::ResetMomentum() {
  for (Tensor& v : velocity_) v.Fill(0.f);
}

}  // namespace niid
