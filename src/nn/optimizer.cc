#include "nn/optimizer.h"

namespace niid {

SgdOptimizer::SgdOptimizer(Module& module, float learning_rate, float momentum,
                           float weight_decay)
    : learning_rate_(learning_rate),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  for (Parameter* p : module.Parameters()) {
    if (!p->trainable) continue;
    params_.push_back(p);
    velocity_.push_back(Tensor::Zeros(p->value.shape()));
  }
}

void SgdOptimizer::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    float* w = p->value.data();
    const float* g = p->grad.data();
    float* v = velocity_[i].data();
    const int64_t n = p->value.numel();
    for (int64_t j = 0; j < n; ++j) {
      const float grad = g[j] + weight_decay_ * w[j];
      v[j] = momentum_ * v[j] + grad;
      w[j] -= learning_rate_ * v[j];
    }
  }
}

void SgdOptimizer::ResetMomentum() {
  for (Tensor& v : velocity_) v.Fill(0.f);
}

}  // namespace niid
