#ifndef NIID_NN_OPTIMIZER_H_
#define NIID_NN_OPTIMIZER_H_

#include <vector>

#include "nn/module.h"
#include "tensor/tensor.h"

namespace niid {

class ThreadPool;

/// SGD with momentum and L2 weight decay, matching torch.optim.SGD:
///   g  = grad + weight_decay * w
///   v  = momentum * v + g
///   w -= lr * v
/// The paper trains every model with SGD(lr, momentum = 0.9).
class SgdOptimizer {
 public:
  /// Binds to `module`'s trainable parameters. The module must outlive the
  /// optimizer, and its parameter list must not change.
  SgdOptimizer(Module& module, float learning_rate, float momentum = 0.9f,
               float weight_decay = 0.f);

  /// Applies one update using the gradients currently stored in the module.
  /// The whole update runs as one fused pass per parameter through
  /// KernelSgdMomentumStep; `pool` (optional) chunks large parameter tensors
  /// without changing results. Ends by invalidating the module's packed
  /// weight caches (the weights just changed — DESIGN.md §12).
  void Step(ThreadPool* pool = nullptr);

  /// Zeroes the gradients of the bound trainable parameters. Buffers carry no
  /// gradient (never written), so skipping them is exact — and unlike the
  /// free-function ZeroGrads(Module&) this reuses the cached parameter list
  /// instead of materializing a fresh vector every minibatch.
  void ZeroGrads();

  /// Clears the momentum buffers (used when a client restarts from a freshly
  /// received global model each round).
  void ResetMomentum();

  float learning_rate() const { return learning_rate_; }
  void set_learning_rate(float lr) { learning_rate_ = lr; }
  /// Retunes the optimizer in place so a persistent Client can reuse the
  /// bound parameter list (and its momentum storage) across rounds.
  void set_momentum(float momentum) { momentum_ = momentum; }
  void set_weight_decay(float weight_decay) { weight_decay_ = weight_decay; }

 private:
  Module* module_;
  std::vector<Parameter*> params_;
  std::vector<Tensor> velocity_;
  float learning_rate_;
  float momentum_;
  float weight_decay_;
};

}  // namespace niid

#endif  // NIID_NN_OPTIMIZER_H_
