#include "nn/parameters.h"

#include <cmath>

#include "tensor/kernels.h"
#include "util/check.h"

namespace niid {

std::vector<StateSegment> StateLayout(Module& module) {
  std::vector<StateSegment> layout;
  int64_t offset = 0;
  for (Parameter* p : module.Parameters()) {
    layout.push_back({offset, p->value.numel(), p->trainable});
    offset += p->value.numel();
  }
  return layout;
}

int64_t StateSize(Module& module) {
  int64_t size = 0;
  for (Parameter* p : module.Parameters()) size += p->value.numel();
  return size;
}

int64_t TrainableSize(Module& module) {
  int64_t size = 0;
  for (Parameter* p : module.Parameters()) {
    if (p->trainable) size += p->value.numel();
  }
  return size;
}

StateVector FlattenState(Module& module) {
  StateVector state;
  FlattenStateInto(module, state);
  return state;
}

void FlattenStateInto(Module& module, StateVector& state) {
  state.resize(StateSize(module));  // no-op after first use
  int64_t offset = 0;
  for (Parameter* p : module.Parameters()) {
    const int64_t n = p->value.numel();
    KernelCopy(n, p->value.data(), state.data() + offset);
    offset += n;
  }
}

void LoadState(Module& module, const StateVector& state) {
  int64_t offset = 0;
  for (Parameter* p : module.Parameters()) {
    const int64_t n = p->value.numel();
    NIID_CHECK_LE(offset + n, static_cast<int64_t>(state.size()));
    KernelCopy(n, state.data() + offset, p->value.data());
    offset += n;
  }
  NIID_CHECK_EQ(offset, static_cast<int64_t>(state.size()))
      << "state vector size mismatch";
}

void LoadTrainableState(Module& module, const std::vector<StateSegment>& layout,
                        const StateVector& state) {
  const std::vector<Parameter*> params = module.Parameters();
  NIID_CHECK_EQ(params.size(), layout.size());
  for (size_t i = 0; i < params.size(); ++i) {
    const StateSegment& seg = layout[i];
    NIID_CHECK_EQ(seg.size, params[i]->value.numel());
    NIID_CHECK_LE(seg.offset + seg.size, static_cast<int64_t>(state.size()));
    if (!seg.trainable) continue;
    KernelCopy(seg.size, state.data() + seg.offset, params[i]->value.data());
  }
}

StateVector GradState(Module& module) {
  StateVector grads;
  grads.reserve(StateSize(module));
  for (Parameter* p : module.Parameters()) {
    if (p->trainable) {
      const float* data = p->grad.data();
      grads.insert(grads.end(), data, data + p->grad.numel());
    } else {
      grads.insert(grads.end(), p->value.numel(), 0.f);
    }
  }
  return grads;
}

void AxpyToGrads(Module& module, float alpha, const StateVector& vec) {
  int64_t offset = 0;
  for (Parameter* p : module.Parameters()) {
    const int64_t n = p->value.numel();
    NIID_CHECK_LE(offset + n, static_cast<int64_t>(vec.size()));
    if (p->trainable) {
      KernelAxpy(n, alpha, vec.data() + offset, p->grad.data());
    }
    offset += n;
  }
  NIID_CHECK_EQ(offset, static_cast<int64_t>(vec.size()));
}

void ZeroGrads(Module& module) {
  for (Parameter* p : module.Parameters()) p->grad.Fill(0.f);
}

void Axpy(StateVector& a, float alpha, const StateVector& b) {
  NIID_CHECK_EQ(a.size(), b.size());
  KernelAxpy(static_cast<int64_t>(a.size()), alpha, b.data(), a.data());
}

void Scale(StateVector& a, float alpha) {
  KernelScale(static_cast<int64_t>(a.size()), alpha, a.data());
}

StateVector Subtract(const StateVector& a, const StateVector& b) {
  StateVector out;
  SubtractInto(a, b, out);
  return out;
}

void SubtractInto(const StateVector& a, const StateVector& b,
                  StateVector& out) {
  NIID_CHECK_EQ(a.size(), b.size());
  out.resize(a.size());  // no-op after first use
  KernelSub(static_cast<int64_t>(a.size()), a.data(), b.data(), out.data());
}

double Norm(const StateVector& a) {
  double sum = 0.0, sum_sq = 0.0;
  KernelSumSq(static_cast<int64_t>(a.size()), a.data(), &sum, &sum_sq);
  return std::sqrt(sum_sq);
}

}  // namespace niid
