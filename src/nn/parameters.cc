#include "nn/parameters.h"

#include <cmath>

#include "util/check.h"

namespace niid {

std::vector<StateSegment> StateLayout(Module& module) {
  std::vector<StateSegment> layout;
  int64_t offset = 0;
  for (Parameter* p : module.Parameters()) {
    layout.push_back({offset, p->value.numel(), p->trainable});
    offset += p->value.numel();
  }
  return layout;
}

int64_t StateSize(Module& module) {
  int64_t size = 0;
  for (Parameter* p : module.Parameters()) size += p->value.numel();
  return size;
}

int64_t TrainableSize(Module& module) {
  int64_t size = 0;
  for (Parameter* p : module.Parameters()) {
    if (p->trainable) size += p->value.numel();
  }
  return size;
}

StateVector FlattenState(Module& module) {
  StateVector state;
  state.reserve(StateSize(module));
  for (Parameter* p : module.Parameters()) {
    const float* data = p->value.data();
    state.insert(state.end(), data, data + p->value.numel());
  }
  return state;
}

void LoadState(Module& module, const StateVector& state) {
  int64_t offset = 0;
  for (Parameter* p : module.Parameters()) {
    const int64_t n = p->value.numel();
    NIID_CHECK_LE(offset + n, static_cast<int64_t>(state.size()));
    float* dst = p->value.data();
    for (int64_t i = 0; i < n; ++i) dst[i] = state[offset + i];
    offset += n;
  }
  NIID_CHECK_EQ(offset, static_cast<int64_t>(state.size()))
      << "state vector size mismatch";
}

StateVector GradState(Module& module) {
  StateVector grads;
  grads.reserve(StateSize(module));
  for (Parameter* p : module.Parameters()) {
    if (p->trainable) {
      const float* data = p->grad.data();
      grads.insert(grads.end(), data, data + p->grad.numel());
    } else {
      grads.insert(grads.end(), p->value.numel(), 0.f);
    }
  }
  return grads;
}

void AxpyToGrads(Module& module, float alpha, const StateVector& vec) {
  int64_t offset = 0;
  for (Parameter* p : module.Parameters()) {
    const int64_t n = p->value.numel();
    NIID_CHECK_LE(offset + n, static_cast<int64_t>(vec.size()));
    if (p->trainable) {
      float* grad = p->grad.data();
      for (int64_t i = 0; i < n; ++i) grad[i] += alpha * vec[offset + i];
    }
    offset += n;
  }
  NIID_CHECK_EQ(offset, static_cast<int64_t>(vec.size()));
}

void ZeroGrads(Module& module) {
  for (Parameter* p : module.Parameters()) p->grad.Fill(0.f);
}

void Axpy(StateVector& a, float alpha, const StateVector& b) {
  NIID_CHECK_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) a[i] += alpha * b[i];
}

void Scale(StateVector& a, float alpha) {
  for (float& v : a) v *= alpha;
}

StateVector Subtract(const StateVector& a, const StateVector& b) {
  NIID_CHECK_EQ(a.size(), b.size());
  StateVector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

double Norm(const StateVector& a) {
  double sum = 0.0;
  for (float v : a) sum += static_cast<double>(v) * v;
  return std::sqrt(sum);
}

}  // namespace niid
