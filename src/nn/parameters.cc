#include "nn/parameters.h"

#include <algorithm>
#include <cmath>

#include "tensor/kernels.h"
#include "util/check.h"

namespace niid {

std::vector<StateSegment> StateLayout(Module& module) {
  std::vector<StateSegment> layout;
  int64_t offset = 0;
  for (Parameter* p : module.Parameters()) {
    layout.push_back({offset, p->value.numel(), p->trainable});
    offset += p->value.numel();
  }
  return layout;
}

int64_t StateSize(Module& module) {
  int64_t size = 0;
  for (Parameter* p : module.Parameters()) size += p->value.numel();
  return size;
}

int64_t TrainableSize(Module& module) {
  int64_t size = 0;
  for (Parameter* p : module.Parameters()) {
    if (p->trainable) size += p->value.numel();
  }
  return size;
}

StateVector FlattenState(Module& module) {
  StateVector state;
  FlattenStateInto(module, state);
  return state;
}

void FlattenStateInto(Module& module, StateVector& state) {
  state.resize(StateSize(module));  // no-op after first use
  int64_t offset = 0;
  for (Parameter* p : module.Parameters()) {
    const int64_t n = p->value.numel();
    KernelCopy(n, p->value.data(), state.data() + offset);
    offset += n;
  }
}

void LoadState(Module& module, const StateVector& state) {
  int64_t offset = 0;
  for (Parameter* p : module.Parameters()) {
    const int64_t n = p->value.numel();
    NIID_CHECK_LE(offset + n, static_cast<int64_t>(state.size()));
    KernelCopy(n, state.data() + offset, p->value.data());
    offset += n;
  }
  NIID_CHECK_EQ(offset, static_cast<int64_t>(state.size()))
      << "state vector size mismatch";
  // Every Parameter::value was just rewritten — a workspace TrainContext is
  // time-shared across clients, so a packed weight cache left over from the
  // previous occupant is now stale (DESIGN.md §12).
  module.InvalidateWeightCaches();
}

void LoadTrainableState(Module& module, const std::vector<StateSegment>& layout,
                        const StateVector& state) {
  const std::vector<Parameter*> params = module.Parameters();
  NIID_CHECK_EQ(params.size(), layout.size());
  for (size_t i = 0; i < params.size(); ++i) {
    const StateSegment& seg = layout[i];
    NIID_CHECK_EQ(seg.size, params[i]->value.numel());
    NIID_CHECK_LE(seg.offset + seg.size, static_cast<int64_t>(state.size()));
    if (!seg.trainable) continue;
    KernelCopy(seg.size, state.data() + seg.offset, params[i]->value.data());
  }
  // Trainable values changed — stale packed weight caches must not survive.
  module.InvalidateWeightCaches();
}

StateVector GradState(Module& module) {
  StateVector grads;
  grads.reserve(StateSize(module));
  for (Parameter* p : module.Parameters()) {
    if (p->trainable) {
      const float* data = p->grad.data();
      grads.insert(grads.end(), data, data + p->grad.numel());
    } else {
      grads.insert(grads.end(), p->value.numel(), 0.f);
    }
  }
  return grads;
}

void GradStateInto(const std::vector<Parameter*>& params,
                   const std::vector<StateSegment>& layout, StateVector& out) {
  NIID_CHECK_EQ(params.size(), layout.size());
  int64_t total = 0;
  for (const StateSegment& seg : layout) total += seg.size;
  out.resize(total);  // no-op after first use
  for (size_t i = 0; i < params.size(); ++i) {
    const StateSegment& seg = layout[i];
    NIID_CHECK_EQ(seg.size, params[i]->value.numel());
    if (seg.trainable) {
      KernelCopy(seg.size, params[i]->grad.data(), out.data() + seg.offset);
    } else {
      std::fill(out.begin() + seg.offset, out.begin() + seg.offset + seg.size,
                0.f);
    }
  }
}

int64_t BufferSize(const std::vector<StateSegment>& layout) {
  int64_t size = 0;
  for (const StateSegment& seg : layout) {
    if (!seg.trainable) size += seg.size;
  }
  return size;
}

void SaveBufferState(Module& module, const std::vector<StateSegment>& layout,
                     StateVector& packed) {
  const std::vector<Parameter*> params = module.Parameters();
  NIID_CHECK_EQ(params.size(), layout.size());
  packed.resize(BufferSize(layout));  // no-op after first use
  int64_t cursor = 0;
  for (size_t i = 0; i < params.size(); ++i) {
    if (layout[i].trainable) continue;
    NIID_CHECK_EQ(layout[i].size, params[i]->value.numel());
    KernelCopy(layout[i].size, params[i]->value.data(),
               packed.data() + cursor);
    cursor += layout[i].size;
  }
  NIID_CHECK_EQ(cursor, static_cast<int64_t>(packed.size()));
}

void LoadBufferState(Module& module, const std::vector<StateSegment>& layout,
                     const StateVector& packed) {
  const std::vector<Parameter*> params = module.Parameters();
  NIID_CHECK_EQ(params.size(), layout.size());
  NIID_CHECK_EQ(static_cast<int64_t>(packed.size()), BufferSize(layout));
  int64_t cursor = 0;
  for (size_t i = 0; i < params.size(); ++i) {
    if (layout[i].trainable) continue;
    NIID_CHECK_EQ(layout[i].size, params[i]->value.numel());
    KernelCopy(layout[i].size, packed.data() + cursor,
               params[i]->value.data());
    cursor += layout[i].size;
  }
  NIID_CHECK_EQ(cursor, static_cast<int64_t>(packed.size()));
  // Only buffers (non-trainable values) changed, and layers never cache
  // packed buffer operands — but keep the contract simple: any
  // Parameter::value mutation invalidates.
  module.InvalidateWeightCaches();
}

void AxpyToGrads(Module& module, float alpha, const StateVector& vec) {
  int64_t offset = 0;
  for (Parameter* p : module.Parameters()) {
    const int64_t n = p->value.numel();
    NIID_CHECK_LE(offset + n, static_cast<int64_t>(vec.size()));
    if (p->trainable) {
      KernelAxpy(n, alpha, vec.data() + offset, p->grad.data());
    }
    offset += n;
  }
  NIID_CHECK_EQ(offset, static_cast<int64_t>(vec.size()));
}

void ZeroGrads(Module& module) {
  for (Parameter* p : module.Parameters()) p->grad.Fill(0.f);
}

void Axpy(StateVector& a, float alpha, const StateVector& b) {
  NIID_CHECK_EQ(a.size(), b.size());
  KernelAxpy(static_cast<int64_t>(a.size()), alpha, b.data(), a.data());
}

void Scale(StateVector& a, float alpha) {
  KernelScale(static_cast<int64_t>(a.size()), alpha, a.data());
}

StateVector Subtract(const StateVector& a, const StateVector& b) {
  StateVector out;
  SubtractInto(a, b, out);
  return out;
}

void SubtractInto(const StateVector& a, const StateVector& b,
                  StateVector& out) {
  NIID_CHECK_EQ(a.size(), b.size());
  out.resize(a.size());  // no-op after first use
  KernelSub(static_cast<int64_t>(a.size()), a.data(), b.data(), out.data());
}

double Norm(const StateVector& a) {
  double sum = 0.0, sum_sq = 0.0;
  KernelSumSq(static_cast<int64_t>(a.size()), a.data(), &sum, &sum_sq);
  return std::sqrt(sum_sq);
}

}  // namespace niid
