#ifndef NIID_NN_PARAMETERS_H_
#define NIID_NN_PARAMETERS_H_

#include <cstdint>
#include <vector>

#include "nn/module.h"

namespace niid {

/// Describes one contiguous segment of the flattened model state.
struct StateSegment {
  int64_t offset = 0;
  int64_t size = 0;
  bool trainable = true;
};

/// Flat view of a model's full state (parameters + buffers) in parameter
/// order. This is the unit of communication in the federated simulation: the
/// server ships/receives exactly this vector.
using StateVector = std::vector<float>;

/// Returns the segment layout of `module`'s state (deterministic order).
std::vector<StateSegment> StateLayout(Module& module);

/// Total number of floats in the model state (parameters + buffers).
int64_t StateSize(Module& module);
/// Number of trainable floats only.
int64_t TrainableSize(Module& module);

/// Copies all parameters and buffers into one flat vector.
StateVector FlattenState(Module& module);

/// Copies all parameters and buffers into `state`, resizing it only on first
/// use — the zero-allocation variant for per-round snapshots.
void FlattenStateInto(Module& module, StateVector& state);

/// Loads a flat vector produced by FlattenState back into the module.
void LoadState(Module& module, const StateVector& state);

/// Loads only the trainable segments of `state`, leaving buffers (BatchNorm
/// running statistics) at their current in-module values. Equivalent to the
/// FedBN-style "merge buffers back after LoadState" dance without the extra
/// full-state flatten/copy. `layout` must come from StateLayout(module).
void LoadTrainableState(Module& module, const std::vector<StateSegment>& layout,
                        const StateVector& state);

/// Returns the gradient as a state-sized vector: trainable positions hold
/// Parameter::grad, buffer positions hold zero.
StateVector GradState(Module& module);

/// Zero-allocation variant of GradState for hot callers that cache the
/// parameter list and layout (a worker TrainContext): writes the gradient
/// into `out`, resizing it only on first use. `params`/`layout` must come
/// from module.Parameters() / StateLayout(module) of the same module.
void GradStateInto(const std::vector<Parameter*>& params,
                   const std::vector<StateSegment>& layout, StateVector& out);

/// buffer-only (non-trainable) segment packing ------------------------------
///
/// A party's durable cross-round state under FedBN-style aggregation is just
/// its BatchNorm buffer segments; packing them densely keeps per-client
/// memory at O(buffer floats) instead of a full model replica.

/// Total number of floats in the non-trainable segments of `layout`.
int64_t BufferSize(const std::vector<StateSegment>& layout);

/// Copies the module's non-trainable segments, densely packed in layout
/// order, into `packed` (resized only on first use).
void SaveBufferState(Module& module, const std::vector<StateSegment>& layout,
                     StateVector& packed);

/// Loads a packed vector produced by SaveBufferState back into the module's
/// non-trainable segments. `packed.size()` must equal BufferSize(layout).
void LoadBufferState(Module& module, const std::vector<StateSegment>& layout,
                     const StateVector& packed);

/// For every trainable segment: Parameter::grad += alpha * vec[segment].
/// Used by FedProx (prox-term gradient) and SCAFFOLD (control variates).
void AxpyToGrads(Module& module, float alpha, const StateVector& vec);

/// Zeroes all parameter gradients.
void ZeroGrads(Module& module);

/// element-wise helpers on state vectors ------------------------------------

/// a += alpha * b (sizes must match; per element fma(alpha, b, a)).
void Axpy(StateVector& a, float alpha, const StateVector& b);
/// a *= alpha.
void Scale(StateVector& a, float alpha);
/// Returns a - b.
StateVector Subtract(const StateVector& a, const StateVector& b);
/// out = a - b without allocating (out is resized on first use).
void SubtractInto(const StateVector& a, const StateVector& b, StateVector& out);
/// L2 norm.
double Norm(const StateVector& a);

}  // namespace niid

#endif  // NIID_NN_PARAMETERS_H_
