#include "nn/pooling.h"

#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "util/thread_pool.h"

namespace niid {

MaxPool2d::MaxPool2d(int kernel, int stride)
    : kernel_(kernel), stride_(stride < 0 ? kernel : stride) {
  NIID_CHECK_GE(kernel, 1);
}

const Tensor& MaxPool2d::Forward(const Tensor& input) {
  NIID_CHECK_EQ(input.rank(), 4);
  const int64_t n = input.dim(0), c = input.dim(1);
  const int h = static_cast<int>(input.dim(2));
  const int w = static_cast<int>(input.dim(3));
  const int out_h = ConvOutputSize(h, kernel_, stride_, 0);
  const int out_w = ConvOutputSize(w, kernel_, stride_, 0);
  NIID_CHECK_GT(out_h, 0);
  NIID_CHECK_GT(out_w, 0);
  cached_input_shape_ = input.shape();

  if (!ShapeIs(out_, n, c, out_h, out_w)) {
    out_.Resize({n, c, out_h, out_w});
  }
  if (argmax_.size() != static_cast<size_t>(out_.numel())) {
    argmax_.resize(out_.numel());
  }
  const float* src = input.data();
  float* dst = out_.data();
  const int64_t out_plane = static_cast<int64_t>(out_h) * out_w;
  // Each (image, channel) plane owns a disjoint output range.
  ParallelFor(compute_pool_, n * c, [&](int64_t p) {
    const float* plane = src + p * h * w;
    const int64_t plane_offset = p * h * w;
    int64_t out_idx = p * out_plane;
    for (int oy = 0; oy < out_h; ++oy) {
      for (int ox = 0; ox < out_w; ++ox) {
        const int y0 = oy * stride_;
        const int x0 = ox * stride_;
        float best = plane[y0 * w + x0];
        int64_t best_idx = y0 * w + x0;
        for (int ky = 0; ky < kernel_; ++ky) {
          const int y = y0 + ky;
          if (y >= h) break;
          for (int kx = 0; kx < kernel_; ++kx) {
            const int x = x0 + kx;
            if (x >= w) break;
            const float v = plane[y * w + x];
            if (v > best) {
              best = v;
              best_idx = y * w + x;
            }
          }
        }
        dst[out_idx] = best;
        argmax_[out_idx] = plane_offset + best_idx;
        ++out_idx;
      }
    }
  });
  return out_;
}

const Tensor& MaxPool2d::Backward(const Tensor& grad_output) {
  NIID_CHECK_EQ(grad_output.numel(), static_cast<int64_t>(argmax_.size()));
  if (grad_input_.shape() != cached_input_shape_) {
    grad_input_.Resize(cached_input_shape_);
  }
  grad_input_.Fill(0.f);
  float* dst = grad_input_.data();
  const float* src = grad_output.data();
  const int64_t planes = cached_input_shape_[0] * cached_input_shape_[1];
  const int64_t out_plane = grad_output.numel() / planes;
  // Every argmax index stays inside its own plane, so planes scatter in
  // parallel without collisions.
  ParallelFor(compute_pool_, planes, [&](int64_t p) {
    for (int64_t i = p * out_plane; i < (p + 1) * out_plane; ++i) {
      dst[argmax_[i]] += src[i];
    }
  });
  return grad_input_;
}

const Tensor& GlobalAvgPool::Forward(const Tensor& input) {
  NIID_CHECK_EQ(input.rank(), 4);
  cached_input_shape_ = input.shape();
  const int64_t n = input.dim(0), c = input.dim(1);
  const int64_t spatial = input.dim(2) * input.dim(3);
  if (!ShapeIs(out_, n, c)) out_.Resize({n, c});
  const float* src = input.data();
  float* dst = out_.data();
  ParallelFor(compute_pool_, n * c, [&](int64_t i) {
    const double sum = KernelSum(spatial, src + i * spatial);
    dst[i] = static_cast<float>(sum / static_cast<double>(spatial));
  });
  return out_;
}

const Tensor& GlobalAvgPool::Backward(const Tensor& grad_output) {
  NIID_CHECK_EQ(grad_output.rank(), 2);
  if (grad_input_.shape() != cached_input_shape_) {
    grad_input_.Resize(cached_input_shape_);
  }
  const int64_t n = cached_input_shape_[0], c = cached_input_shape_[1];
  const int64_t spatial = cached_input_shape_[2] * cached_input_shape_[3];
  const float scale = 1.f / static_cast<float>(spatial);
  const float* src = grad_output.data();
  float* dst = grad_input_.data();
  ParallelFor(compute_pool_, n * c, [&](int64_t i) {
    KernelFill(spatial, src[i] * scale, dst + i * spatial);
  });
  return grad_input_;
}

const Tensor& Flatten::Forward(const Tensor& input) {
  cached_input_shape_ = input.shape();
  NIID_CHECK_GE(input.rank(), 2);
  const int64_t n = input.dim(0);
  if (!ShapeIs(out_, n, input.numel() / n)) {
    out_.Resize({n, input.numel() / n});
  }
  KernelCopy(input.numel(), input.data(), out_.data());
  return out_;
}

const Tensor& Flatten::Backward(const Tensor& grad_output) {
  if (grad_input_.shape() != cached_input_shape_) {
    grad_input_.Resize(cached_input_shape_);
  }
  KernelCopy(grad_output.numel(), grad_output.data(), grad_input_.data());
  return grad_input_;
}

}  // namespace niid
