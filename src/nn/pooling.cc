#include "nn/pooling.h"

#include "tensor/ops.h"

namespace niid {

MaxPool2d::MaxPool2d(int kernel, int stride)
    : kernel_(kernel), stride_(stride < 0 ? kernel : stride) {
  NIID_CHECK_GE(kernel, 1);
}

Tensor MaxPool2d::Forward(const Tensor& input) {
  NIID_CHECK_EQ(input.rank(), 4);
  const int64_t n = input.dim(0), c = input.dim(1);
  const int h = static_cast<int>(input.dim(2));
  const int w = static_cast<int>(input.dim(3));
  const int out_h = ConvOutputSize(h, kernel_, stride_, 0);
  const int out_w = ConvOutputSize(w, kernel_, stride_, 0);
  NIID_CHECK_GT(out_h, 0);
  NIID_CHECK_GT(out_w, 0);
  cached_input_shape_ = input.shape();

  Tensor out({n, c, out_h, out_w});
  argmax_.assign(out.numel(), 0);
  const float* src = input.data();
  float* dst = out.data();
  int64_t out_idx = 0;
  for (int64_t img = 0; img < n; ++img) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* plane = src + (img * c + ch) * h * w;
      const int64_t plane_offset = (img * c + ch) * h * w;
      for (int oy = 0; oy < out_h; ++oy) {
        for (int ox = 0; ox < out_w; ++ox) {
          const int y0 = oy * stride_;
          const int x0 = ox * stride_;
          float best = plane[y0 * w + x0];
          int64_t best_idx = y0 * w + x0;
          for (int ky = 0; ky < kernel_; ++ky) {
            const int y = y0 + ky;
            if (y >= h) break;
            for (int kx = 0; kx < kernel_; ++kx) {
              const int x = x0 + kx;
              if (x >= w) break;
              const float v = plane[y * w + x];
              if (v > best) {
                best = v;
                best_idx = y * w + x;
              }
            }
          }
          dst[out_idx] = best;
          argmax_[out_idx] = plane_offset + best_idx;
          ++out_idx;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2d::Backward(const Tensor& grad_output) {
  NIID_CHECK_EQ(grad_output.numel(), static_cast<int64_t>(argmax_.size()));
  Tensor grad_input(cached_input_shape_);
  float* dst = grad_input.data();
  const float* src = grad_output.data();
  for (int64_t i = 0; i < grad_output.numel(); ++i) {
    dst[argmax_[i]] += src[i];
  }
  return grad_input;
}

Tensor GlobalAvgPool::Forward(const Tensor& input) {
  NIID_CHECK_EQ(input.rank(), 4);
  cached_input_shape_ = input.shape();
  const int64_t n = input.dim(0), c = input.dim(1);
  const int64_t spatial = input.dim(2) * input.dim(3);
  Tensor out({n, c});
  const float* src = input.data();
  float* dst = out.data();
  for (int64_t i = 0; i < n * c; ++i) {
    double sum = 0.0;
    const float* plane = src + i * spatial;
    for (int64_t s = 0; s < spatial; ++s) sum += plane[s];
    dst[i] = static_cast<float>(sum / static_cast<double>(spatial));
  }
  return out;
}

Tensor GlobalAvgPool::Backward(const Tensor& grad_output) {
  NIID_CHECK_EQ(grad_output.rank(), 2);
  Tensor grad_input(cached_input_shape_);
  const int64_t n = cached_input_shape_[0], c = cached_input_shape_[1];
  const int64_t spatial = cached_input_shape_[2] * cached_input_shape_[3];
  const float scale = 1.f / static_cast<float>(spatial);
  const float* src = grad_output.data();
  float* dst = grad_input.data();
  for (int64_t i = 0; i < n * c; ++i) {
    const float g = src[i] * scale;
    float* plane = dst + i * spatial;
    for (int64_t s = 0; s < spatial; ++s) plane[s] = g;
  }
  return grad_input;
}

Tensor Flatten::Forward(const Tensor& input) {
  cached_input_shape_ = input.shape();
  NIID_CHECK_GE(input.rank(), 2);
  const int64_t n = input.dim(0);
  return input.Reshape({n, input.numel() / n});
}

Tensor Flatten::Backward(const Tensor& grad_output) {
  return grad_output.Reshape(cached_input_shape_);
}

}  // namespace niid
