#ifndef NIID_NN_POOLING_H_
#define NIID_NN_POOLING_H_

#include <string>
#include <vector>

#include "nn/module.h"

namespace niid {

/// Max pooling over NCHW input with a square window and equal stride.
class MaxPool2d : public Module {
 public:
  explicit MaxPool2d(int kernel, int stride = -1);

  const Tensor& Forward(const Tensor& input) override;
  const Tensor& Backward(const Tensor& grad_output) override;
  std::string Name() const override { return "MaxPool2d"; }

 private:
  int kernel_;
  int stride_;
  std::vector<int64_t> cached_input_shape_;
  std::vector<int64_t> argmax_;  ///< flat input index of each output element
  Tensor out_;
  Tensor grad_input_;
};

/// Global average pooling: [N, C, H, W] -> [N, C] (used by the ResNet head).
class GlobalAvgPool : public Module {
 public:
  const Tensor& Forward(const Tensor& input) override;
  const Tensor& Backward(const Tensor& grad_output) override;
  std::string Name() const override { return "GlobalAvgPool"; }

 private:
  std::vector<int64_t> cached_input_shape_;
  Tensor out_;
  Tensor grad_input_;
};

/// Reshapes [N, C, H, W] to [N, C*H*W] (backward restores the shape).
class Flatten : public Module {
 public:
  const Tensor& Forward(const Tensor& input) override;
  const Tensor& Backward(const Tensor& grad_output) override;
  std::string Name() const override { return "Flatten"; }

 private:
  std::vector<int64_t> cached_input_shape_;
  Tensor out_;
  Tensor grad_input_;
};

}  // namespace niid

#endif  // NIID_NN_POOLING_H_
