#include "nn/sequential.h"

namespace niid {

const Tensor& Sequential::Forward(const Tensor& input) {
  // Pointer chaining: each layer reads the previous layer's member scratch
  // and writes its own, so the whole chain moves zero tensors.
  const Tensor* current = &input;
  for (auto& layer : layers_) {
    current = &layer->Forward(*current);
  }
  return *current;
}

const Tensor& Sequential::Backward(const Tensor& grad_output) {
  const Tensor* current = &grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    current = &(*it)->Backward(*current);
  }
  return *current;
}

std::vector<Parameter*> Sequential::Parameters() {
  std::vector<Parameter*> params;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->Parameters()) params.push_back(p);
  }
  return params;
}

void Sequential::SetTraining(bool training) {
  training_ = training;
  for (auto& layer : layers_) layer->SetTraining(training);
}

void Sequential::SetComputePool(ThreadPool* pool) {
  compute_pool_ = pool;
  for (auto& layer : layers_) layer->SetComputePool(pool);
}

void Sequential::InvalidateWeightCaches() {
  for (auto& layer : layers_) layer->InvalidateWeightCaches();
}

void Sequential::SetWeightPackCaching(bool enabled) {
  weight_pack_caching_ = enabled;
  for (auto& layer : layers_) layer->SetWeightPackCaching(enabled);
}

}  // namespace niid
