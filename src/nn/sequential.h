#ifndef NIID_NN_SEQUENTIAL_H_
#define NIID_NN_SEQUENTIAL_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nn/module.h"

namespace niid {

/// Chains modules: Forward applies them in order, Backward in reverse.
class Sequential : public Module {
 public:
  Sequential() = default;

  /// Appends a layer (takes ownership) and returns a raw observer pointer.
  template <typename M, typename... Args>
  M* Emplace(Args&&... args) {
    auto layer = std::make_unique<M>(std::forward<Args>(args)...);
    M* raw = layer.get();
    layers_.push_back(std::move(layer));
    return raw;
  }

  /// Appends an already-constructed layer.
  void Append(std::unique_ptr<Module> layer) {
    layers_.push_back(std::move(layer));
  }

  const Tensor& Forward(const Tensor& input) override;
  const Tensor& Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Parameters() override;
  void SetTraining(bool training) override;
  void SetComputePool(ThreadPool* pool) override;
  void InvalidateWeightCaches() override;
  void SetWeightPackCaching(bool enabled) override;
  std::string Name() const override { return "Sequential"; }

  int size() const { return static_cast<int>(layers_.size()); }
  Module* layer(int i) { return layers_.at(i).get(); }

 private:
  std::vector<std::unique_ptr<Module>> layers_;
};

}  // namespace niid

#endif  // NIID_NN_SEQUENTIAL_H_
