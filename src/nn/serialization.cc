#include "nn/serialization.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

namespace niid {
namespace {

constexpr char kMagic[8] = {'N', 'I', 'I', 'D', 'M', 'D', 'L', '1'};

/// Upper bound on a serialized parameter name. Real names are tens of bytes;
/// anything larger is a corrupt or hostile header, rejected before the
/// allocation it would otherwise size.
constexpr uint32_t kMaxNameLength = 4096;

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  return in.good();
}

}  // namespace

Status SaveModel(Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::NotFound("cannot open for write: " + path);
  out.write(kMagic, sizeof(kMagic));
  const std::vector<Parameter*> params = module.Parameters();
  WritePod(out, static_cast<uint64_t>(params.size()));
  for (const Parameter* p : params) {
    WritePod(out, static_cast<uint32_t>(p->name.size()));
    out.write(p->name.data(), static_cast<std::streamsize>(p->name.size()));
    WritePod(out, static_cast<uint8_t>(p->trainable ? 1 : 0));
    WritePod(out, static_cast<uint32_t>(p->value.rank()));
    for (int d = 0; d < p->value.rank(); ++d) {
      WritePod(out, static_cast<int64_t>(p->value.dim(d)));
    }
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(p->value.numel() * sizeof(float)));
  }
  out.flush();
  if (!out.good()) return Status::DataLoss("write failed: " + path);
  return Status::Ok();
}

Status LoadModel(Module& module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open: " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::DataLoss("bad magic in " + path);
  }
  uint64_t count = 0;
  if (!ReadPod(in, count)) return Status::DataLoss("truncated header");
  const std::vector<Parameter*> params = module.Parameters();
  if (count != params.size()) {
    return Status::InvalidArgument(
        "parameter count mismatch: file has " + std::to_string(count) +
        ", model has " + std::to_string(params.size()));
  }
  // Two-phase load: stage every tensor, validating against the model's layout
  // and rejecting hostile declared lengths and non-finite payloads, then
  // commit all at once — a malformed file never leaves the module partially
  // mutated.
  std::vector<std::vector<float>> staged(params.size());
  for (size_t pi = 0; pi < params.size(); ++pi) {
    const Parameter* p = params[pi];
    uint32_t name_length = 0;
    if (!ReadPod(in, name_length)) return Status::DataLoss("truncated name");
    // The cap bounds the allocation below regardless of what the file claims.
    if (name_length > kMaxNameLength) {
      return Status::DataLoss("declared name length " +
                              std::to_string(name_length) + " exceeds cap");
    }
    std::string name(name_length, '\0');
    in.read(name.data(), name_length);
    if (!in.good()) return Status::DataLoss("truncated name body");
    if (name != p->name) {
      return Status::InvalidArgument("parameter name mismatch: file has '" +
                                     name + "', model expects '" + p->name +
                                     "'");
    }
    uint8_t trainable = 0;
    if (!ReadPod(in, trainable)) return Status::DataLoss("truncated flag");
    uint32_t rank = 0;
    if (!ReadPod(in, rank)) return Status::DataLoss("truncated rank");
    if (rank != static_cast<uint32_t>(p->value.rank())) {
      return Status::InvalidArgument("rank mismatch for " + p->name);
    }
    for (uint32_t d = 0; d < rank; ++d) {
      int64_t dim = 0;
      if (!ReadPod(in, dim)) return Status::DataLoss("truncated dims");
      if (dim != p->value.dim(static_cast<int>(d))) {
        return Status::InvalidArgument("shape mismatch for " + p->name);
      }
    }
    // The element count comes from the model, never from the file, so a
    // hostile header cannot trigger an oversized allocation here.
    staged[pi].resize(static_cast<size_t>(p->value.numel()));
    in.read(reinterpret_cast<char*>(staged[pi].data()),
            static_cast<std::streamsize>(p->value.numel() * sizeof(float)));
    if (!in.good()) return Status::DataLoss("truncated tensor data");
    for (const float v : staged[pi]) {
      if (!std::isfinite(v)) {
        return Status::DataLoss("non-finite value in tensor " + p->name);
      }
    }
  }
  for (size_t pi = 0; pi < params.size(); ++pi) {
    std::memcpy(params[pi]->value.data(), staged[pi].data(),
                staged[pi].size() * sizeof(float));
  }
  // Every Parameter::value was just rewritten from disk; drop any packed
  // weight operands the layers cached for the previous values (DESIGN.md §12).
  module.InvalidateWeightCaches();
  return Status::Ok();
}

}  // namespace niid
