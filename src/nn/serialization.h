#ifndef NIID_NN_SERIALIZATION_H_
#define NIID_NN_SERIALIZATION_H_

#include <string>

#include "nn/module.h"
#include "util/status.h"

namespace niid {

/// Saves `module`'s full state (parameters + buffers) to a binary file.
///
/// Format (little-endian):
///   magic "NIIDMDL1" (8 bytes)
///   uint64 number of parameters P
///   P records of: uint32 name length, name bytes, uint8 trainable,
///                 uint32 rank, int64 dims..., float32 data...
/// The layout doubles as an integrity check: loading into a model with a
/// different architecture fails cleanly instead of silently mis-assigning.
[[nodiscard]] Status SaveModel(Module& module, const std::string& path);

/// Loads a file written by SaveModel into `module`. The module must have the
/// same parameter names, order and shapes.
///
/// Hardened against hostile files: truncated data, oversized declared
/// lengths, wrong magic, and non-finite payloads all return a clean error
/// Status, and the module is only mutated after the entire file validates —
/// a failed load leaves the model exactly as it was.
[[nodiscard]] Status LoadModel(Module& module, const std::string& path);

}  // namespace niid

#endif  // NIID_NN_SERIALIZATION_H_
