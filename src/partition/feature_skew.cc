#include "partition/feature_skew.h"

#include <algorithm>
#include <map>

#include "data/fcube.h"
#include "util/check.h"

namespace niid {

std::vector<std::vector<int64_t>> FcubeOctantSplit(const Dataset& dataset,
                                                   int num_parties) {
  NIID_CHECK_EQ(num_parties, 4)
      << "the FCUBE partition allocates 8 octants pairwise to 4 parties";
  NIID_CHECK_EQ(dataset.feature_dim(), 3)
      << "FCUBE partition requires 3-feature data";
  // Octant o and its antipode (7 - o, flipping all sign bits) share a party.
  // Octants 0..3 each identify a unique symmetric pair.
  std::vector<std::vector<int64_t>> parts(num_parties);
  const float* data = dataset.features.data();
  for (int64_t i = 0; i < dataset.size(); ++i) {
    const int octant =
        FcubeOctant(data[i * 3], data[i * 3 + 1], data[i * 3 + 2]);
    const int party = std::min(octant, 7 - octant);
    parts[party].push_back(i);
  }
  return parts;
}

std::vector<std::vector<int64_t>> GroupSplit(const Dataset& dataset,
                                             int num_parties, Rng& rng) {
  NIID_CHECK(!dataset.groups.empty())
      << "real-world partition requires per-sample groups (writers)";
  NIID_CHECK_GE(num_parties, 1);

  // Distinct writers, shuffled, dealt round-robin to parties.
  std::map<int, std::vector<int64_t>> by_writer;
  for (int64_t i = 0; i < dataset.size(); ++i) {
    by_writer[dataset.groups[i]].push_back(i);
  }
  NIID_CHECK_GE(static_cast<int>(by_writer.size()), num_parties)
      << "fewer writers than parties";
  std::vector<int> writers;
  writers.reserve(by_writer.size());
  for (const auto& [writer, _] : by_writer) writers.push_back(writer);
  rng.Shuffle(writers);

  std::vector<std::vector<int64_t>> parts(num_parties);
  for (size_t w = 0; w < writers.size(); ++w) {
    const auto& samples = by_writer[writers[w]];
    auto& part = parts[w % num_parties];
    part.insert(part.end(), samples.begin(), samples.end());
  }
  for (auto& p : parts) std::sort(p.begin(), p.end());
  return parts;
}

}  // namespace niid
