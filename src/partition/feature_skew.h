#ifndef NIID_PARTITION_FEATURE_SKEW_H_
#define NIID_PARTITION_FEATURE_SKEW_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace niid {

/// Synthetic feature imbalance (FCUBE, Section 4.2): the cube is split into
/// 8 octants by the coordinate planes; each party receives the two octants
/// that are point-symmetric about the origin, so feature distributions
/// differ while labels stay balanced. Requires a 3-feature dataset and
/// exactly 4 parties.
std::vector<std::vector<int64_t>> FcubeOctantSplit(const Dataset& dataset,
                                                   int num_parties);

/// Real-world feature imbalance (FEMNIST, Section 4.2): writers (groups) are
/// divided randomly and equally among the parties; a party owns all samples
/// of its writers. Requires Dataset::groups.
std::vector<std::vector<int64_t>> GroupSplit(const Dataset& dataset,
                                             int num_parties, Rng& rng);

}  // namespace niid

#endif  // NIID_PARTITION_FEATURE_SKEW_H_
