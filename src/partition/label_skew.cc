#include "partition/label_skew.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"
#include "util/samplers.h"

namespace niid {
namespace {

// Indices of each class's samples, shuffled.
std::vector<std::vector<int64_t>> ShuffledClassIndices(
    const std::vector<int>& labels, int num_classes, Rng& rng) {
  std::vector<std::vector<int64_t>> by_class(num_classes);
  for (size_t i = 0; i < labels.size(); ++i) {
    NIID_CHECK_GE(labels[i], 0);
    NIID_CHECK_LT(labels[i], num_classes);
    by_class[labels[i]].push_back(static_cast<int64_t>(i));
  }
  for (auto& idx : by_class) rng.Shuffle(idx);
  return by_class;
}

}  // namespace

std::vector<std::vector<int64_t>> LabelQuantitySplit(
    const std::vector<int>& labels, int num_classes, int num_parties,
    int labels_per_party, Rng& rng) {
  NIID_CHECK_GE(num_parties, 1);
  NIID_CHECK_GE(labels_per_party, 1);
  NIID_CHECK_LE(labels_per_party, num_classes);

  // times[k] = number of parties owning label k; contain[i] = party i's
  // label set. Mirrors the reference NIID-Bench assignment.
  std::vector<int> times(num_classes, 0);
  std::vector<std::vector<int>> contain(num_parties);
  for (int party = 0; party < num_parties; ++party) {
    std::vector<int>& own = contain[party];
    own.push_back(party % num_classes);
    ++times[party % num_classes];
    while (static_cast<int>(own.size()) < labels_per_party) {
      const int candidate = static_cast<int>(rng.UniformInt(num_classes));
      if (std::find(own.begin(), own.end(), candidate) == own.end()) {
        own.push_back(candidate);
        ++times[candidate];
      }
    }
  }

  auto by_class = ShuffledClassIndices(labels, num_classes, rng);
  std::vector<std::vector<int64_t>> parts(num_parties);
  // Split each owned label's samples into `times[k]` equal chunks and hand
  // chunk j to the j-th party owning that label.
  std::vector<int> next_chunk(num_classes, 0);
  for (int party = 0; party < num_parties; ++party) {
    for (int label : contain[party]) {
      const auto& pool = by_class[label];
      const int owners = times[label];
      const int64_t chunk = static_cast<int64_t>(pool.size()) / owners;
      const int j = next_chunk[label]++;
      const int64_t begin = j * chunk;
      // Last owner takes the remainder.
      const int64_t end =
          (j == owners - 1) ? static_cast<int64_t>(pool.size())
                            : begin + chunk;
      for (int64_t i = begin; i < end; ++i) {
        parts[party].push_back(pool[i]);
      }
    }
    std::sort(parts[party].begin(), parts[party].end());
  }
  return parts;
}

std::vector<std::vector<int64_t>> LabelDirichletSplit(
    const std::vector<int>& labels, int num_classes, int num_parties,
    double beta, int min_samples_per_party, Rng& rng) {
  NIID_CHECK_GE(num_parties, 1);
  NIID_CHECK_GT(beta, 0.0);

  std::vector<std::vector<int64_t>> best;
  int64_t best_min_size = -1;
  constexpr int kMaxAttempts = 1000;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    auto by_class = ShuffledClassIndices(labels, num_classes, rng);
    std::vector<std::vector<int64_t>> parts(num_parties);
    for (int label = 0; label < num_classes; ++label) {
      const auto& pool = by_class[label];
      if (pool.empty()) continue;
      const std::vector<double> proportions =
          SampleDirichlet(rng, num_parties, beta);
      const std::vector<int64_t> counts =
          ProportionsToCounts(proportions, static_cast<int64_t>(pool.size()));
      int64_t offset = 0;
      for (int party = 0; party < num_parties; ++party) {
        for (int64_t i = 0; i < counts[party]; ++i) {
          parts[party].push_back(pool[offset + i]);
        }
        offset += counts[party];
      }
    }
    int64_t min_size = labels.size();
    for (const auto& p : parts) {
      min_size = std::min(min_size, static_cast<int64_t>(p.size()));
    }
    if (min_size > best_min_size) {
      best_min_size = min_size;
      best = std::move(parts);
    }
    if (best_min_size >= min_samples_per_party) break;
  }
  for (auto& p : best) std::sort(p.begin(), p.end());
  return best;
}

}  // namespace niid
