#ifndef NIID_PARTITION_LABEL_SKEW_H_
#define NIID_PARTITION_LABEL_SKEW_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace niid {

/// Quantity-based label imbalance (#C=k, Section 4.1).
///
/// Each party is assigned k distinct labels: the first is i % K (guaranteeing
/// coverage when num_parties >= num_classes, as in the reference NIID-Bench
/// implementation), the remaining k-1 are drawn uniformly without
/// replacement. Each label's samples are then divided randomly and equally
/// among the parties owning that label. Labels owned by no party contribute
/// no samples.
std::vector<std::vector<int64_t>> LabelQuantitySplit(
    const std::vector<int>& labels, int num_classes, int num_parties,
    int labels_per_party, Rng& rng);

/// Distribution-based label imbalance (p_k ~ Dir(beta), Section 4.1).
///
/// For every class k, proportions over parties are drawn from Dir(beta) and
/// the class's samples are allocated accordingly. The draw is repeated until
/// every party holds at least `min_samples_per_party` samples (at most 1000
/// attempts, then the best draw so far is used).
std::vector<std::vector<int64_t>> LabelDirichletSplit(
    const std::vector<int>& labels, int num_classes, int num_parties,
    double beta, int min_samples_per_party, Rng& rng);

}  // namespace niid

#endif  // NIID_PARTITION_LABEL_SKEW_H_
