#include "partition/lazy_index.h"

#include <algorithm>
#include <numeric>

#include "data/transforms.h"
#include "util/check.h"
#include "util/samplers.h"

namespace niid {
namespace {

// Salts separating the per-party derivation streams. Index draws use the raw
// config seed; the label-flip and noise transforms each get their own family
// so adding/removing a transform never shifts the index draws.
constexpr uint64_t kFlipSalt = 0x8c7f0aac97c4aa2fULL;
constexpr uint64_t kNoiseSalt = 0x5851f42d4c957f2dULL;

bool IsCrossDeviceStrategy(PartitionStrategy strategy) {
  switch (strategy) {
    case PartitionStrategy::kHomogeneous:
    case PartitionStrategy::kNoise:
    case PartitionStrategy::kLabelDirichlet:
    case PartitionStrategy::kLabelQuantity:
    case PartitionStrategy::kQuantityDirichlet:
      return true;
    case PartitionStrategy::kSynthetic:
    case PartitionStrategy::kRealWorld:
      return false;
  }
  return false;
}

}  // namespace

LazyPartitionIndex::LazyPartitionIndex(Dataset dataset,
                                       const PartitionConfig& config)
    : dataset_(std::move(dataset)), config_(config) {
  NIID_CHECK_GE(config_.num_parties, 1);
  const int64_t n = dataset_.size();
  NIID_CHECK_GT(n, 0);
  if (config_.cross_device_samples_per_party > 0) {
    NIID_CHECK(IsCrossDeviceStrategy(config_.strategy))
        << "strategy " << config_.Label()
        << " has no cross-device (overlapping-draw) form";
    if (config_.strategy == PartitionStrategy::kLabelDirichlet ||
        config_.strategy == PartitionStrategy::kLabelQuantity) {
      NIID_CHECK_GT(dataset_.num_classes, 0);
      class_pools_.assign(dataset_.num_classes, {});
      for (int64_t i = 0; i < n; ++i) {
        const int label = dataset_.labels[i];
        NIID_CHECK_GE(label, 0);
        NIID_CHECK_LT(label, dataset_.num_classes);
        class_pools_[label].push_back(i);
      }
    }
  } else {
    NIID_CHECK(config_.strategy == PartitionStrategy::kHomogeneous ||
               config_.strategy == PartitionStrategy::kNoise)
        << "lazy disjoint derivation only exists for the equal random split; "
        << "strategy " << config_.Label() << " needs MakePartition";
    NIID_CHECK_GE(n, config_.num_parties)
        << "disjoint split would leave empty parties";
    // The exact permutation HomogeneousSplit draws: MakePartition seeds
    // Rng(config.seed) and its first use is this shuffle.
    shuffled_.resize(n);
    std::iota(shuffled_.begin(), shuffled_.end(), 0);
    Rng rng(config_.seed);
    rng.Shuffle(shuffled_);
  }
}

void LazyPartitionIndex::PartyIndices(int64_t id,
                                      std::vector<int64_t>& out) const {
  NIID_CHECK_GE(id, 0);
  NIID_CHECK_LT(id, config_.num_parties);
  const int64_t n = dataset_.size();
  out.clear();
  if (config_.cross_device_samples_per_party <= 0) {
    // Disjoint lazy: party id's chunk of the cached permutation, sorted —
    // bit-equal to HomogeneousSplit / MakePartition.
    const int64_t parties = config_.num_parties;
    const int64_t chunk = n / parties;
    const int64_t begin = id * chunk;
    const int64_t end = (id == parties - 1) ? n : begin + chunk;
    out.assign(shuffled_.begin() + begin, shuffled_.begin() + end);
    std::sort(out.begin(), out.end());
    return;
  }
  const int64_t m = config_.cross_device_samples_per_party;
  Rng rng(DeriveStreamSeed(config_.seed, static_cast<uint64_t>(id)));
  switch (config_.strategy) {
    case PartitionStrategy::kHomogeneous:
    case PartitionStrategy::kNoise: {
      out.resize(m);
      for (int64_t i = 0; i < m; ++i) {
        out[i] = static_cast<int64_t>(rng.UniformInt(n));
      }
      break;
    }
    case PartitionStrategy::kQuantityDirichlet: {
      // Per-party size law: Gamma(beta)/beta has unit mean, so party sizes
      // average m with Dirichlet-like spread; clamped so every party is
      // non-empty and no party exceeds 4x the nominal share.
      const double g = rng.Gamma(config_.beta);
      int64_t size = static_cast<int64_t>(
          static_cast<double>(m) * g / config_.beta + 0.5);
      size = std::max<int64_t>(1, std::min(size, 4 * m));
      out.resize(size);
      for (int64_t i = 0; i < size; ++i) {
        out[i] = static_cast<int64_t>(rng.UniformInt(n));
      }
      break;
    }
    case PartitionStrategy::kLabelDirichlet: {
      // Party-local class mixture p ~ Dir(beta), restricted to classes that
      // actually have samples, then m class-conditional pool draws.
      std::vector<double> props =
          SampleDirichlet(rng, dataset_.num_classes, config_.beta);
      double sum = 0.0;
      for (int c = 0; c < dataset_.num_classes; ++c) {
        if (class_pools_[c].empty()) props[c] = 0.0;
        sum += props[c];
      }
      NIID_CHECK_GT(sum, 0.0);
      for (double& p : props) p /= sum;
      out.resize(m);
      for (int64_t i = 0; i < m; ++i) {
        const auto& pool = class_pools_[SampleCategorical(rng, props)];
        out[i] = pool[rng.UniformInt(pool.size())];
      }
      break;
    }
    case PartitionStrategy::kLabelQuantity: {
      // #C=k: first owned class is id % K (coverage), the rest drawn without
      // replacement from the remaining classes; samples round-robin across
      // the owned classes that are non-empty.
      const int num_classes = dataset_.num_classes;
      const int k = std::min(config_.labels_per_party, num_classes);
      NIID_CHECK_GE(k, 1);
      const int first = static_cast<int>(id % num_classes);
      std::vector<int> owned = {first};
      for (int c : SampleWithoutReplacement(rng, num_classes - 1, k - 1)) {
        owned.push_back(c + (c >= first ? 1 : 0));
      }
      std::vector<int> usable;
      for (int c : owned) {
        if (!class_pools_[c].empty()) usable.push_back(c);
      }
      out.resize(m);
      for (int64_t i = 0; i < m; ++i) {
        if (usable.empty()) {
          out[i] = static_cast<int64_t>(rng.UniformInt(n));
        } else {
          const auto& pool = class_pools_[usable[i % usable.size()]];
          out[i] = pool[rng.UniformInt(pool.size())];
        }
      }
      break;
    }
    case PartitionStrategy::kSynthetic:
    case PartitionStrategy::kRealWorld:
      NIID_CHECK(false) << "unreachable: rejected in constructor";
  }
  std::sort(out.begin(), out.end());
}

void LazyPartitionIndex::MaterializeParty(int64_t id, Dataset& out) const {
  NIID_CHECK_GT(dataset_.features.numel(), 0)
      << "MaterializeParty needs the full dataset, not a labels-only spec";
  std::vector<int64_t> indices;
  PartyIndices(id, indices);
  SubsetInto(dataset_, indices, out);
  // Same per-party transforms as MaterializeClientDataset, but each driven by
  // its own (seed, id)-pure stream so parties can materialize in any order on
  // any thread and still match bit-for-bit.
  const int64_t parties = config_.num_parties;
  if (config_.label_flip_prob > 0.0 && dataset_.num_classes > 1) {
    Rng rng(DeriveStreamSeed(config_.seed ^ kFlipSalt,
                             static_cast<uint64_t>(id)));
    const double flip_prob = config_.label_flip_prob *
                             static_cast<double>(id + 1) /
                             static_cast<double>(parties);
    for (int& label : out.labels) {
      if (rng.Uniform() < flip_prob) {
        const int offset =
            1 + static_cast<int>(rng.UniformInt(dataset_.num_classes - 1));
        label = (label + offset) % dataset_.num_classes;
      }
    }
  }
  if (config_.strategy == PartitionStrategy::kNoise) {
    Rng rng(DeriveStreamSeed(config_.seed ^ kNoiseSalt,
                             static_cast<uint64_t>(id)));
    const double variance = config_.noise_sigma *
                            static_cast<double>(id + 1) /
                            static_cast<double>(parties);
    AddGaussianNoise(out, variance, rng);
  }
}

}  // namespace niid
