#ifndef NIID_PARTITION_LAZY_INDEX_H_
#define NIID_PARTITION_LAZY_INDEX_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "data/party_source.h"
#include "partition/partition.h"

namespace niid {

/// A PartySource that derives any party's sample indices on demand from the
/// seeded partition spec, instead of materializing the full
/// Partition::client_indices table (which is O(total parties) and the first
/// thing that dies at 1M parties).
///
/// Two regimes, selected by PartitionConfig::cross_device_samples_per_party:
///
///  - Cross-device (> 0): parties are overlapping draws from the global pool.
///    Party p's indices are produced by Rng(DeriveStreamSeed(seed, p)) — a
///    pure function of (seed, p) — so deriving one party costs
///    O(samples_per_party) regardless of how many parties exist. Construction
///    caches only the per-class sample pools (O(dataset size), shared,
///    immutable). Supports homo/noise, label-dir, #C=k, and quantity-dir.
///
///  - Disjoint lazy (== 0): the classic equal random split, derived lazily.
///    Construction caches the seeded permutation (bit-equal to the one
///    HomogeneousSplit draws); PartyIndices(p) is p's sorted chunk, bit-equal
///    to MakePartition's client_indices[p]. Only kHomogeneous and kNoise are
///    supported lazily — the label/quantity-skew constructions are inherently
///    global and still go through MakePartition.
///
/// PartyIndices only reads labels/num_classes, so a features-free Dataset is
/// accepted when only index derivation is needed (MakePartition's cross-device
/// branch uses this). MaterializeParty requires the full dataset and applies
/// the same per-party transforms as MaterializeClientDataset (label flip,
/// feature noise), driven by transform streams derived purely from
/// (seed, party) so materialization order never matters.
///
/// Scenario label drift (fl/scenario.h) composes with this by design: drift
/// re-labels samples at TRAIN time, keyed on (party, generation, local
/// sample index), so the partition-time index derivation here never changes
/// across rounds — sparse 1M-party mode replays a drifting population with
/// no per-round re-partitioning and no extra state.
class LazyPartitionIndex : public PartySource {
 public:
  /// Takes ownership of `dataset`. Aborts on unsupported strategy/config
  /// combinations (see class comment).
  LazyPartitionIndex(Dataset dataset, const PartitionConfig& config);

  int64_t num_parties() const override { return config_.num_parties; }
  int64_t num_classes() const override { return dataset_.num_classes; }
  void MaterializeParty(int64_t id, Dataset& out) const override;

  /// Derives party `id`'s sorted sample indices into `out` (storage reused).
  void PartyIndices(int64_t id, std::vector<int64_t>& out) const;

  const Dataset& dataset() const { return dataset_; }
  const PartitionConfig& config() const { return config_; }

 private:
  Dataset dataset_;
  PartitionConfig config_;
  /// Cross-device label modes: per-class sample pools (immutable after ctor).
  std::vector<std::vector<int64_t>> class_pools_;
  /// Disjoint lazy mode: the seeded permutation HomogeneousSplit would draw.
  std::vector<int64_t> shuffled_;
};

}  // namespace niid

#endif  // NIID_PARTITION_LAZY_INDEX_H_
