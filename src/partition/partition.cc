#include "partition/partition.h"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "data/transforms.h"
#include "partition/feature_skew.h"
#include "partition/lazy_index.h"
#include "partition/label_skew.h"
#include "partition/quantity_skew.h"
#include "util/check.h"

namespace niid {

std::string StrategyLabel(PartitionStrategy strategy, int labels_per_party,
                          double beta, double noise_sigma) {
  char buffer[64];
  switch (strategy) {
    case PartitionStrategy::kHomogeneous:
      return "homo";
    case PartitionStrategy::kLabelQuantity:
      std::snprintf(buffer, sizeof(buffer), "#C=%d", labels_per_party);
      return buffer;
    case PartitionStrategy::kLabelDirichlet:
      std::snprintf(buffer, sizeof(buffer), "p~Dir(%g)", beta);
      return buffer;
    case PartitionStrategy::kNoise:
      std::snprintf(buffer, sizeof(buffer), "x~Gau(%g)", noise_sigma);
      return buffer;
    case PartitionStrategy::kSynthetic:
      return "synthetic";
    case PartitionStrategy::kRealWorld:
      return "real-world";
    case PartitionStrategy::kQuantityDirichlet:
      std::snprintf(buffer, sizeof(buffer), "q~Dir(%g)", beta);
      return buffer;
  }
  return "unknown";
}

StatusOr<PartitionStrategy> ParseStrategy(const std::string& name) {
  if (name == "homo" || name == "iid" || name == "homogeneous") {
    return PartitionStrategy::kHomogeneous;
  }
  if (name == "label-quantity" || name == "#C=k" || name == "label_quantity") {
    return PartitionStrategy::kLabelQuantity;
  }
  if (name == "label-dir" || name == "label_dir" || name == "noniid-labeldir") {
    return PartitionStrategy::kLabelDirichlet;
  }
  if (name == "noise") return PartitionStrategy::kNoise;
  if (name == "synthetic" || name == "fcube") {
    return PartitionStrategy::kSynthetic;
  }
  if (name == "real-world" || name == "real_world" || name == "femnist") {
    return PartitionStrategy::kRealWorld;
  }
  if (name == "quantity-dir" || name == "quantity_dir" ||
      name == "iid-diff-quantity") {
    return PartitionStrategy::kQuantityDirichlet;
  }
  return Status::InvalidArgument("unknown partition strategy: " + name);
}

std::vector<std::vector<int64_t>> HomogeneousSplit(int64_t num_samples,
                                                   int num_parties, Rng& rng) {
  NIID_CHECK_GE(num_parties, 1);
  std::vector<int64_t> all(num_samples);
  std::iota(all.begin(), all.end(), 0);
  rng.Shuffle(all);
  std::vector<std::vector<int64_t>> parts(num_parties);
  const int64_t chunk = num_samples / num_parties;
  int64_t offset = 0;
  for (int party = 0; party < num_parties; ++party) {
    const int64_t end = (party == num_parties - 1)
                            ? num_samples
                            : offset + chunk;
    parts[party].assign(all.begin() + offset, all.begin() + end);
    std::sort(parts[party].begin(), parts[party].end());
    offset = end;
  }
  return parts;
}

Partition MakePartition(const Dataset& train, const PartitionConfig& config) {
  Rng rng(config.seed);
  Partition partition;
  partition.config = config;
  if (config.cross_device_samples_per_party > 0) {
    // Cross-device overlap mode: every party is an independent seeded draw,
    // so the dense table is just the lazy derivation evaluated at every id.
    // (Labels-only spec: index derivation never touches features.)
    Dataset spec;
    spec.name = train.name;
    spec.labels = train.labels;
    spec.num_classes = train.num_classes;
    LazyPartitionIndex index(std::move(spec), config);
    partition.client_indices.resize(config.num_parties);
    for (int party = 0; party < config.num_parties; ++party) {
      index.PartyIndices(party, partition.client_indices[party]);
    }
    return partition;
  }
  switch (config.strategy) {
    case PartitionStrategy::kHomogeneous:
    case PartitionStrategy::kNoise:
      // The noise strategy splits homogeneously; the per-party noise is
      // applied when client datasets are materialized.
      partition.client_indices =
          HomogeneousSplit(train.size(), config.num_parties, rng);
      break;
    case PartitionStrategy::kLabelQuantity:
      partition.client_indices = LabelQuantitySplit(
          train.labels, train.num_classes, config.num_parties,
          config.labels_per_party, rng);
      break;
    case PartitionStrategy::kLabelDirichlet:
      partition.client_indices = LabelDirichletSplit(
          train.labels, train.num_classes, config.num_parties, config.beta,
          config.min_samples_per_party, rng);
      break;
    case PartitionStrategy::kSynthetic:
      partition.client_indices =
          FcubeOctantSplit(train, config.num_parties);
      break;
    case PartitionStrategy::kRealWorld:
      partition.client_indices = GroupSplit(train, config.num_parties, rng);
      break;
    case PartitionStrategy::kQuantityDirichlet:
      partition.client_indices = QuantityDirichletSplit(
          train.size(), config.num_parties, config.beta,
          config.min_samples_per_party, rng);
      break;
  }
  NIID_CHECK_EQ(partition.num_parties(), config.num_parties);
  return partition;
}

Dataset MaterializeClientDataset(const Dataset& train,
                                 const Partition& partition, int client,
                                 Rng& rng) {
  NIID_CHECK_GE(client, 0);
  NIID_CHECK_LT(client, partition.num_parties());
  Dataset local = Subset(train, partition.client_indices[client]);
  if (partition.config.label_flip_prob > 0.0 && train.num_classes > 1) {
    // Concept shift (extension): flip a party-dependent fraction of labels
    // to a uniformly drawn different class.
    const double flip_prob = partition.config.label_flip_prob *
                             static_cast<double>(client + 1) /
                             partition.num_parties();
    for (int& label : local.labels) {
      if (rng.Uniform() < flip_prob) {
        const int offset =
            1 + static_cast<int>(rng.UniformInt(train.num_classes - 1));
        label = (label + offset) % train.num_classes;
      }
    }
  }
  if (partition.config.strategy == PartitionStrategy::kNoise) {
    // Party P_i receives Gau(sigma * i / N) noise with 1-based i (the paper's
    // notation); the last party gets the full user-level sigma.
    const double variance = partition.config.noise_sigma *
                            static_cast<double>(client + 1) /
                            partition.num_parties();
    AddGaussianNoise(local, variance, rng);
  }
  return local;
}

}  // namespace niid
