#ifndef NIID_PARTITION_PARTITION_H_
#define NIID_PARTITION_PARTITION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"
#include "util/status.h"

namespace niid {

/// The six NIID-Bench partitioning strategies (Section 4) plus the IID
/// baseline ("homogeneous" in the paper's tables).
enum class PartitionStrategy {
  kHomogeneous,        ///< IID: random equal split
  kLabelQuantity,      ///< #C=k: each party holds k labels
  kLabelDirichlet,     ///< p_k ~ Dir(beta): per-class Dirichlet allocation
  kNoise,              ///< x_hat ~ Gau(sigma): equal split + per-party noise
  kSynthetic,          ///< FCUBE: by symmetric octant pair
  kRealWorld,          ///< FEMNIST: by writer (Dataset::groups)
  kQuantityDirichlet,  ///< q ~ Dir(beta): sizes Dirichlet, distribution IID
};

/// Short name used in tables, e.g. "#C=2", "p~Dir(0.5)", "homo".
std::string StrategyLabel(PartitionStrategy strategy, int labels_per_party,
                          double beta, double noise_sigma);

/// Parses a strategy name: "homo"/"iid", "label-quantity"/"#C=k",
/// "label-dir", "noise", "synthetic", "real-world", "quantity-dir".
StatusOr<PartitionStrategy> ParseStrategy(const std::string& name);

/// Parameters of a partitioning run.
struct PartitionConfig {
  PartitionStrategy strategy = PartitionStrategy::kHomogeneous;
  int num_parties = 10;
  /// kLabelQuantity: labels per party (the k of #C=k).
  int labels_per_party = 2;
  /// kLabelDirichlet / kQuantityDirichlet concentration.
  double beta = 0.5;
  /// kNoise: party P_i receives Gau(noise_sigma * (i+1) / N) noise, applied
  /// when the client dataset is materialized.
  double noise_sigma = 0.1;
  /// Dirichlet strategies redraw until every party has at least this many
  /// samples (mirrors NIID-Bench's min_size loop).
  int min_samples_per_party = 8;
  /// EXTENSION (not in the paper): concept shift — Kairouz et al.'s case (4)
  /// "same features, different labels", which NIID-Bench excludes. When
  /// > 0, party P_i's labels are flipped to a uniformly random other class
  /// with probability label_flip_prob * (i+1) / N when its local dataset is
  /// materialized, composing with any strategy above.
  double label_flip_prob = 0.0;
  /// EXTENSION (cross-device scale): when > 0, parties are overlapping
  /// per-party draws of this many samples from the global pool instead of a
  /// disjoint split — the only way 1M parties can each hold a non-empty shard
  /// of a ~50k-sample dataset. Every party's draw is a pure function of
  /// (seed, party id), so LazyPartitionIndex can derive any single party in
  /// O(samples_per_party) without materializing the other 999,999.
  /// Supported strategies: kHomogeneous, kNoise, kLabelDirichlet,
  /// kLabelQuantity, kQuantityDirichlet (as the per-party *size* law).
  int64_t cross_device_samples_per_party = 0;
  uint64_t seed = 1;

  std::string Label() const {
    return StrategyLabel(strategy, labels_per_party, beta, noise_sigma);
  }
};

/// The result: which training-sample indices each party owns.
struct Partition {
  PartitionConfig config;
  std::vector<std::vector<int64_t>> client_indices;

  int num_parties() const {
    return static_cast<int>(client_indices.size());
  }
  int64_t total_samples() const {
    int64_t total = 0;
    for (const auto& idx : client_indices) total += idx.size();
    return total;
  }
};

/// Partitions `train` per `config`. Aborts on invalid combinations
/// (kSynthetic on a non-FCUBE dataset, kRealWorld without groups).
Partition MakePartition(const Dataset& train, const PartitionConfig& config);

/// Materializes party `client`'s local dataset: copies its samples and, for
/// the noise strategy, adds Gau(noise_sigma * (client+1) / N) feature noise.
Dataset MaterializeClientDataset(const Dataset& train,
                                 const Partition& partition, int client,
                                 Rng& rng);

/// Equal random split used by kHomogeneous and kNoise (exposed for reuse).
std::vector<std::vector<int64_t>> HomogeneousSplit(int64_t num_samples,
                                                   int num_parties, Rng& rng);

}  // namespace niid

#endif  // NIID_PARTITION_PARTITION_H_
