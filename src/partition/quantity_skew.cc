#include "partition/quantity_skew.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"
#include "util/samplers.h"

namespace niid {

std::vector<std::vector<int64_t>> QuantityDirichletSplit(
    int64_t num_samples, int num_parties, double beta,
    int min_samples_per_party, Rng& rng) {
  NIID_CHECK_GE(num_parties, 1);
  NIID_CHECK_GT(beta, 0.0);
  NIID_CHECK_GE(num_samples, num_parties);

  std::vector<int64_t> all(num_samples);
  std::iota(all.begin(), all.end(), 0);
  rng.Shuffle(all);

  std::vector<int64_t> best_counts;
  int64_t best_min = -1;
  constexpr int kMaxAttempts = 1000;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    const std::vector<double> proportions =
        SampleDirichlet(rng, num_parties, beta);
    const std::vector<int64_t> counts =
        ProportionsToCounts(proportions, num_samples);
    const int64_t min_count = *std::min_element(counts.begin(), counts.end());
    if (min_count > best_min) {
      best_min = min_count;
      best_counts = counts;
    }
    if (best_min >= min_samples_per_party) break;
  }

  std::vector<std::vector<int64_t>> parts(num_parties);
  int64_t offset = 0;
  for (int party = 0; party < num_parties; ++party) {
    parts[party].assign(all.begin() + offset,
                        all.begin() + offset + best_counts[party]);
    std::sort(parts[party].begin(), parts[party].end());
    offset += best_counts[party];
  }
  return parts;
}

}  // namespace niid
