#ifndef NIID_PARTITION_QUANTITY_SKEW_H_
#define NIID_PARTITION_QUANTITY_SKEW_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace niid {

/// Quantity skew (q ~ Dir(beta), Section 4.3): party sizes are drawn from a
/// Dirichlet distribution; the shuffled dataset is split accordingly, so each
/// local distribution stays close to the global one while sizes differ. The
/// draw is repeated until every party has at least `min_samples_per_party`
/// samples (at most 1000 attempts, then the best draw is used).
std::vector<std::vector<int64_t>> QuantityDirichletSplit(
    int64_t num_samples, int num_parties, double beta,
    int min_samples_per_party, Rng& rng);

}  // namespace niid

#endif  // NIID_PARTITION_QUANTITY_SKEW_H_
