#include "partition/report.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/check.h"
#include "util/table.h"

namespace niid {

PartitionReport BuildPartitionReport(const Dataset& train,
                                     const Partition& partition) {
  const int parties = partition.num_parties();
  const int classes = train.num_classes;
  PartitionReport report;
  report.counts.assign(parties, std::vector<int64_t>(classes, 0));
  report.party_sizes.assign(parties, 0);

  for (int party = 0; party < parties; ++party) {
    for (int64_t idx : partition.client_indices[party]) {
      NIID_CHECK_LT(idx, train.size());
      ++report.counts[party][train.labels[idx]];
      ++report.party_sizes[party];
    }
  }

  // Distinct labels per party.
  double label_sum = 0.0;
  for (int party = 0; party < parties; ++party) {
    int distinct = 0;
    for (int64_t c : report.counts[party]) distinct += (c > 0);
    label_sum += distinct;
  }
  report.mean_labels_per_party = label_sum / parties;

  // Size imbalance.
  const int64_t max_size =
      *std::max_element(report.party_sizes.begin(), report.party_sizes.end());
  const int64_t min_size =
      *std::min_element(report.party_sizes.begin(), report.party_sizes.end());
  report.size_imbalance =
      min_size > 0 ? static_cast<double>(max_size) / min_size : 0.0;

  // Label-distribution divergence from the global distribution.
  std::vector<double> global(classes, 0.0);
  const auto global_counts = CountLabels(train);
  for (int c = 0; c < classes; ++c) {
    global[c] = static_cast<double>(global_counts[c]) /
                std::max<int64_t>(train.size(), 1);
  }
  double tv_sum = 0.0;
  for (int party = 0; party < parties; ++party) {
    if (report.party_sizes[party] == 0) {
      tv_sum += 1.0;  // an empty party is maximally divergent
      continue;
    }
    double tv = 0.0;
    for (int c = 0; c < classes; ++c) {
      const double local = static_cast<double>(report.counts[party][c]) /
                           report.party_sizes[party];
      tv += std::abs(local - global[c]);
    }
    tv_sum += 0.5 * tv;
  }
  report.mean_label_tv_distance = tv_sum / parties;
  return report;
}

void PrintPartitionMatrix(const PartitionReport& report, std::ostream& out) {
  const int parties = static_cast<int>(report.counts.size());
  const int classes =
      parties > 0 ? static_cast<int>(report.counts[0].size()) : 0;
  std::vector<std::string> headers = {"party"};
  for (int c = 0; c < classes; ++c) {
    headers.push_back("class " + std::to_string(c));
  }
  headers.push_back("total");
  Table table(headers);
  for (int party = 0; party < parties; ++party) {
    std::vector<std::string> row = {"P" + std::to_string(party)};
    for (int c = 0; c < classes; ++c) {
      row.push_back(std::to_string(report.counts[party][c]));
    }
    row.push_back(std::to_string(report.party_sizes[party]));
    table.AddRow(std::move(row));
  }
  table.Print(out);
}

}  // namespace niid
