#ifndef NIID_PARTITION_REPORT_H_
#define NIID_PARTITION_REPORT_H_

#include <ostream>
#include <vector>

#include "data/dataset.h"
#include "partition/partition.h"

namespace niid {

/// Summary statistics of a partition, used for Figure 3 and for sanity
/// checking experiments.
struct PartitionReport {
  /// counts[party][label] = number of samples of `label` held by `party`.
  std::vector<std::vector<int64_t>> counts;
  std::vector<int64_t> party_sizes;
  /// Mean over parties of the number of distinct labels held.
  double mean_labels_per_party = 0.0;
  /// Size imbalance: max party size / min party size (0 if a party is empty).
  double size_imbalance = 0.0;
  /// Mean total-variation distance between each party's label distribution
  /// and the global one (0 = IID, higher = more label skew).
  double mean_label_tv_distance = 0.0;
};

/// Computes the report for `partition` over `train`.
PartitionReport BuildPartitionReport(const Dataset& train,
                                     const Partition& partition);

/// Prints the party x class allocation matrix (the paper's Figure 3 view).
void PrintPartitionMatrix(const PartitionReport& report, std::ostream& out);

}  // namespace niid

#endif  // NIID_PARTITION_REPORT_H_
