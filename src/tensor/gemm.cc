#include "tensor/gemm.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#if defined(NIID_GEMM_AVX2) && defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#define NIID_GEMM_USE_AVX2 1
#else
#define NIID_GEMM_USE_AVX2 0
#endif

namespace niid {
namespace {

constexpr int kMr = kGemmMr;
constexpr int kNr = kGemmNr;

// Packing scratch. Thread-local so concurrent Gemm calls (e.g. one per
// federated client task) never share buffers, and so steady-state calls are
// allocation-free: resize() only grows capacity. The B panel is packed by
// the calling thread and read by workers; the A panel lives in whichever
// thread runs the row block. Publication of the packed B contents to the
// workers is ordered by ThreadPool::Schedule's mutex.
thread_local std::vector<float> tls_pack_a;
thread_local std::vector<float> tls_pack_b;

inline float OperandAt(const GemmOperand& x, int64_t r, int64_t c) {
  return x.trans ? x.data[c * x.stride + r] : x.data[r * x.stride + c];
}

// Packs op(A)[i0 : i0+mc, pc : pc+kc] into kMr-row panels: panel p holds kc
// steps of kMr consecutive rows, zero-padded past mc so the full microkernel
// can run on the body of every block.
void PackA(const GemmOperand& a, int64_t i0, int64_t mc, int64_t pc,
           int64_t kc, float* dst) {
  const int64_t panels = (mc + kMr - 1) / kMr;
  for (int64_t p = 0; p < panels; ++p) {
    const int64_t row0 = i0 + p * kMr;
    const int rows = static_cast<int>(std::min<int64_t>(kMr, i0 + mc - row0));
    float* panel = dst + p * kc * kMr;
    if (a.trans) {
      // op(A)[r, c] = data[c * stride + r]: rows are contiguous in memory.
      for (int64_t step = 0; step < kc; ++step) {
        const float* src = a.data + (pc + step) * a.stride + row0;
        float* out = panel + step * kMr;
        for (int r = 0; r < rows; ++r) out[r] = src[r];
        for (int r = rows; r < kMr; ++r) out[r] = 0.f;
      }
    } else {
      for (int64_t step = 0; step < kc; ++step) {
        const float* src = a.data + row0 * a.stride + pc + step;
        float* out = panel + step * kMr;
        for (int r = 0; r < rows; ++r) out[r] = src[r * a.stride];
        for (int r = rows; r < kMr; ++r) out[r] = 0.f;
      }
    }
  }
}

// Packs op(B)[pc : pc+kc, jc : jc+nc] into kNr-column panels: panel q holds
// kc steps of kNr consecutive columns, zero-padded past nc.
void PackB(const GemmOperand& b, int64_t pc, int64_t kc, int64_t jc,
           int64_t nc, float* dst) {
  const int64_t panels = (nc + kNr - 1) / kNr;
  for (int64_t q = 0; q < panels; ++q) {
    const int64_t col0 = jc + q * kNr;
    const int cols = static_cast<int>(std::min<int64_t>(kNr, jc + nc - col0));
    float* panel = dst + q * kc * kNr;
    if (b.trans) {
      for (int64_t step = 0; step < kc; ++step) {
        const float* src = b.data + pc + step;
        float* out = panel + step * kNr;
        for (int c = 0; c < cols; ++c) out[c] = src[(col0 + c) * b.stride];
        for (int c = cols; c < kNr; ++c) out[c] = 0.f;
      }
    } else {
      for (int64_t step = 0; step < kc; ++step) {
        const float* src = b.data + (pc + step) * b.stride + col0;
        float* out = panel + step * kNr;
        std::memcpy(out, src, sizeof(float) * cols);
        for (int c = cols; c < kNr; ++c) out[c] = 0.f;
      }
    }
  }
}

// Scalar microkernel, also used for edge tiles: a kMr x kNr register tile
// accumulated with std::fma in strictly increasing k order per element —
// the exact chain the AVX2 kernel's per-lane FMAs produce, so both backends
// are bit-identical. `load_c` continues the accumulation chain from C
// (later Kc blocks / accumulate mode) instead of starting at zero.
void MicroKernelScalar(int64_t kc, const float* a_panel, const float* b_panel,
                       float* c, int64_t ldc, bool load_c, int mr, int nr) {
  float tile[kMr][kNr];
  for (int i = 0; i < mr; ++i) {
    for (int j = 0; j < nr; ++j) {
      tile[i][j] = load_c ? c[i * ldc + j] : 0.f;
    }
  }
  for (int64_t step = 0; step < kc; ++step) {
    const float* arow = a_panel + step * kMr;
    const float* brow = b_panel + step * kNr;
    for (int i = 0; i < mr; ++i) {
      const float av = arow[i];
      for (int j = 0; j < nr; ++j) {
        tile[i][j] = std::fma(av, brow[j], tile[i][j]);
      }
    }
  }
  for (int i = 0; i < mr; ++i) {
    for (int j = 0; j < nr; ++j) c[i * ldc + j] = tile[i][j];
  }
}

#if NIID_GEMM_USE_AVX2
// Full-tile kernel: 6 x 16 C tile in 12 ymm accumulators, one broadcast per
// A element and two B vector loads per k step. Per-lane vfmadd follows the
// same k-ordered chain as the scalar kernel.
void MicroKernelFull(int64_t kc, const float* a_panel, const float* b_panel,
                     float* c, int64_t ldc, bool load_c) {
  __m256 acc[kMr][2];
  if (load_c) {
    for (int i = 0; i < kMr; ++i) {
      acc[i][0] = _mm256_loadu_ps(c + i * ldc);
      acc[i][1] = _mm256_loadu_ps(c + i * ldc + 8);
    }
  } else {
    for (int i = 0; i < kMr; ++i) {
      acc[i][0] = _mm256_setzero_ps();
      acc[i][1] = _mm256_setzero_ps();
    }
  }
  for (int64_t step = 0; step < kc; ++step) {
    const float* arow = a_panel + step * kMr;
    const __m256 b0 = _mm256_loadu_ps(b_panel + step * kNr);
    const __m256 b1 = _mm256_loadu_ps(b_panel + step * kNr + 8);
    for (int i = 0; i < kMr; ++i) {
      const __m256 ai = _mm256_broadcast_ss(arow + i);
      acc[i][0] = _mm256_fmadd_ps(ai, b0, acc[i][0]);
      acc[i][1] = _mm256_fmadd_ps(ai, b1, acc[i][1]);
    }
  }
  for (int i = 0; i < kMr; ++i) {
    _mm256_storeu_ps(c + i * ldc, acc[i][0]);
    _mm256_storeu_ps(c + i * ldc + 8, acc[i][1]);
  }
}
#endif  // NIID_GEMM_USE_AVX2

inline void MicroKernel(int64_t kc, const float* a_panel, const float* b_panel,
                        float* c, int64_t ldc, bool load_c, int mr, int nr) {
#if NIID_GEMM_USE_AVX2
  if (mr == kMr && nr == kNr) {
    MicroKernelFull(kc, a_panel, b_panel, c, ldc, load_c);
    return;
  }
#endif
  MicroKernelScalar(kc, a_panel, b_panel, c, ldc, load_c, mr, nr);
}

}  // namespace

// NIID_HOT: the training step's inner loop; see the allocation policy note
// on tls_pack_a/tls_pack_b above for the two sanctioned grow-only resizes.
void Gemm(int64_t m, int64_t n, int64_t k, const GemmOperand& a,
          const GemmOperand& b, float* c, int64_t ldc, bool accumulate,
          ThreadPool* pool) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    if (!accumulate) {
      for (int64_t i = 0; i < m; ++i) {
        std::memset(c + i * ldc, 0, sizeof(float) * n);
      }
    }
    return;
  }

  for (int64_t jc = 0; jc < n; jc += kGemmNc) {
    const int64_t nc = std::min<int64_t>(kGemmNc, n - jc);
    const int64_t b_panels = (nc + kNr - 1) / kNr;
    for (int64_t pc = 0; pc < k; pc += kGemmKc) {
      const int64_t kc = std::min<int64_t>(kGemmKc, k - pc);
      tls_pack_b.resize(  // NOLINT(niid-hot-alloc) grow-only TLS scratch
          static_cast<size_t>(b_panels * kc * kNr));
      float* packed_b = tls_pack_b.data();
      PackB(b, pc, kc, jc, nc, packed_b);
      // Later Kc blocks must continue each element's FMA chain from C.
      const bool load_c = accumulate || pc > 0;

      // Row-block parallelism only — K is never split across threads, so
      // every C element is produced by exactly one task with a fixed
      // accumulation order, independent of the thread count.
      const int64_t m_blocks = (m + kGemmMc - 1) / kGemmMc;
      ParallelFor(pool, m_blocks, [&](int64_t mb) {
        const int64_t i0 = mb * kGemmMc;
        const int64_t mc = std::min<int64_t>(kGemmMc, m - i0);
        const int64_t a_panels = (mc + kMr - 1) / kMr;
        tls_pack_a.resize(  // NOLINT(niid-hot-alloc) grow-only TLS scratch
            static_cast<size_t>(a_panels * kc * kMr));
        float* packed_a = tls_pack_a.data();
        PackA(a, i0, mc, pc, kc, packed_a);
        for (int64_t q = 0; q < b_panels; ++q) {
          const int64_t j0 = jc + q * kNr;
          const int nr =
              static_cast<int>(std::min<int64_t>(kNr, jc + nc - j0));
          const float* b_panel = packed_b + q * kc * kNr;
          for (int64_t p = 0; p < a_panels; ++p) {
            const int64_t i = i0 + p * kMr;
            const int mr =
                static_cast<int>(std::min<int64_t>(kMr, i0 + mc - i));
            MicroKernel(kc, packed_a + p * kc * kMr, b_panel,
                        c + i * ldc + j0, ldc, load_c, mr, nr);
          }
        }
      });
    }
  }
}

}  // namespace niid
