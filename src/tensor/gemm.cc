#include "tensor/gemm.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "util/check.h"

#if defined(NIID_GEMM_AVX2) && defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#define NIID_GEMM_USE_AVX2 1
#else
#define NIID_GEMM_USE_AVX2 0
#endif

namespace niid {
namespace {

constexpr int kMr = kGemmMr;
constexpr int kNr = kGemmNr;

// Pre-packed panel addressing below assumes cache blocks never straddle a
// panel: every Mc row block starts on an Mr panel boundary and every Nc
// column block on an Nr panel boundary.
static_assert(kGemmMc % kGemmMr == 0, "Mc must be a multiple of Mr");
static_assert(kGemmNc % kGemmNr == 0, "Nc must be a multiple of Nr");

// Packing scratch. Thread-local so concurrent Gemm calls (e.g. one per
// federated client task) never share buffers, and so steady-state calls are
// allocation-free: resize() only grows capacity. The B panel is packed by
// the calling thread and read by workers; the A panel lives in whichever
// thread runs the row block. Publication of the packed B contents to the
// workers is ordered by ThreadPool::Schedule's mutex.
thread_local std::vector<float> tls_pack_a;
thread_local std::vector<float> tls_pack_b;

// Packs op(A)[i0 : i0+mc, pc : pc+kc] into kMr-row panels: panel p holds kc
// steps of kMr consecutive rows, zero-padded past mc so the full microkernel
// can run on the body of every block. With i0 = pc = 0 and full extents this
// is exactly the PackedOperand A-side layout.
void PackA(const GemmOperand& a, int64_t i0, int64_t mc, int64_t pc,
           int64_t kc, float* dst) {
  const int64_t panels = (mc + kMr - 1) / kMr;
  for (int64_t p = 0; p < panels; ++p) {
    const int64_t row0 = i0 + p * kMr;
    const int rows = static_cast<int>(std::min<int64_t>(kMr, i0 + mc - row0));
    float* panel = dst + p * kc * kMr;
    if (a.trans) {
      // op(A)[r, c] = data[c * stride + r]: rows are contiguous in memory.
      for (int64_t step = 0; step < kc; ++step) {
        const float* src = a.data + (pc + step) * a.stride + row0;
        float* out = panel + step * kMr;
        for (int r = 0; r < rows; ++r) out[r] = src[r];
        for (int r = rows; r < kMr; ++r) out[r] = 0.f;
      }
    } else {
      for (int64_t step = 0; step < kc; ++step) {
        const float* src = a.data + row0 * a.stride + pc + step;
        float* out = panel + step * kMr;
        for (int r = 0; r < rows; ++r) out[r] = src[r * a.stride];
        for (int r = rows; r < kMr; ++r) out[r] = 0.f;
      }
    }
  }
}

// Packs op(B)[pc : pc+kc, jc : jc+nc] into kNr-column panels: panel q holds
// kc steps of kNr consecutive columns, zero-padded past nc. With pc = jc = 0
// and full extents this is exactly the PackedOperand B-side layout.
void PackB(const GemmOperand& b, int64_t pc, int64_t kc, int64_t jc,
           int64_t nc, float* dst) {
  const int64_t panels = (nc + kNr - 1) / kNr;
  for (int64_t q = 0; q < panels; ++q) {
    const int64_t col0 = jc + q * kNr;
    const int cols = static_cast<int>(std::min<int64_t>(kNr, jc + nc - col0));
    float* panel = dst + q * kc * kNr;
    if (b.trans) {
      for (int64_t step = 0; step < kc; ++step) {
        const float* src = b.data + pc + step;
        float* out = panel + step * kNr;
        for (int c = 0; c < cols; ++c) out[c] = src[(col0 + c) * b.stride];
        for (int c = cols; c < kNr; ++c) out[c] = 0.f;
      }
    } else {
      for (int64_t step = 0; step < kc; ++step) {
        const float* src = b.data + (pc + step) * b.stride + col0;
        float* out = panel + step * kNr;
        std::memcpy(out, src, sizeof(float) * cols);
        for (int c = cols; c < kNr; ++c) out[c] = 0.f;
      }
    }
  }
}

// Scalar microkernel, also used for edge tiles: a kMr x kNr register tile
// accumulated with std::fma in strictly increasing k order per element —
// the exact chain the AVX2 kernels' per-lane FMAs produce, so both backends
// are bit-identical. `load_c` continues the accumulation chain from C
// (later Kc blocks / accumulate mode) instead of starting at zero.
[[maybe_unused]] void MicroKernelScalar(int64_t kc, const float* a_panel,
                                        const float* b_panel, float* c,
                                        int64_t ldc, bool load_c, int mr,
                                        int nr) {
  float tile[kMr][kNr];
  for (int i = 0; i < mr; ++i) {
    for (int j = 0; j < nr; ++j) {
      tile[i][j] = load_c ? c[i * ldc + j] : 0.f;
    }
  }
  for (int64_t step = 0; step < kc; ++step) {
    const float* arow = a_panel + step * kMr;
    const float* brow = b_panel + step * kNr;
    for (int i = 0; i < mr; ++i) {
      const float av = arow[i];
      for (int j = 0; j < nr; ++j) {
        tile[i][j] = std::fma(av, brow[j], tile[i][j]);
      }
    }
  }
  for (int i = 0; i < mr; ++i) {
    for (int j = 0; j < nr; ++j) c[i * ldc + j] = tile[i][j];
  }
}

#if NIID_GEMM_USE_AVX2
// Full-tile kernel: 6 x 16 C tile in 12 ymm accumulators, one broadcast per
// A element and two B vector loads per k step. Per-lane vfmadd follows the
// same k-ordered chain as the scalar kernel.
void MicroKernelFull(int64_t kc, const float* a_panel, const float* b_panel,
                     float* c, int64_t ldc, bool load_c) {
  __m256 acc[kMr][2];
  if (load_c) {
    for (int i = 0; i < kMr; ++i) {
      acc[i][0] = _mm256_loadu_ps(c + i * ldc);
      acc[i][1] = _mm256_loadu_ps(c + i * ldc + 8);
    }
  } else {
    for (int i = 0; i < kMr; ++i) {
      acc[i][0] = _mm256_setzero_ps();
      acc[i][1] = _mm256_setzero_ps();
    }
  }
  for (int64_t step = 0; step < kc; ++step) {
    const float* arow = a_panel + step * kMr;
    const __m256 b0 = _mm256_loadu_ps(b_panel + step * kNr);
    const __m256 b1 = _mm256_loadu_ps(b_panel + step * kNr + 8);
    for (int i = 0; i < kMr; ++i) {
      const __m256 ai = _mm256_broadcast_ss(arow + i);
      acc[i][0] = _mm256_fmadd_ps(ai, b0, acc[i][0]);
      acc[i][1] = _mm256_fmadd_ps(ai, b1, acc[i][1]);
    }
  }
  for (int i = 0; i < kMr; ++i) {
    _mm256_storeu_ps(c + i * ldc, acc[i][0]);
    _mm256_storeu_ps(c + i * ldc + 8, acc[i][1]);
  }
}

// Lane masks for the edge kernel: kTailMask[t] enables the first t lanes.
alignas(32) constexpr int32_t kTailMask[9][8] = {
    {0, 0, 0, 0, 0, 0, 0, 0},
    {-1, 0, 0, 0, 0, 0, 0, 0},
    {-1, -1, 0, 0, 0, 0, 0, 0},
    {-1, -1, -1, 0, 0, 0, 0, 0},
    {-1, -1, -1, -1, 0, 0, 0, 0},
    {-1, -1, -1, -1, -1, 0, 0, 0},
    {-1, -1, -1, -1, -1, -1, 0, 0},
    {-1, -1, -1, -1, -1, -1, -1, 0},
    {-1, -1, -1, -1, -1, -1, -1, -1},
};

// Edge-tile kernel (mr < 6 and/or nr < 16): same broadcast-FMA schedule as
// the full kernel but with a row loop bounded by mr and masked C loads and
// stores bounded by nr. The B panel is always kNr wide and zero-padded, so
// full-width B loads are in-bounds; lanes at or past nr compute on those
// zeros and are discarded by the masked store. Each surviving lane's FMA
// chain is identical to the scalar kernel's, so the backends stay
// bit-identical on edge tiles too.
void MicroKernelEdge(int64_t kc, const float* a_panel, const float* b_panel,
                     float* c, int64_t ldc, bool load_c, int mr, int nr) {
  const int n0 = nr < 8 ? nr : 8;
  const int n1 = nr - n0;
  const __m256i m0 =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(kTailMask[n0]));
  const __m256i m1 =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(kTailMask[n1]));
  __m256 acc[kMr][2];
  for (int i = 0; i < mr; ++i) {
    if (load_c) {
      acc[i][0] = _mm256_maskload_ps(c + i * ldc, m0);
      acc[i][1] = n1 > 0 ? _mm256_maskload_ps(c + i * ldc + 8, m1)
                         : _mm256_setzero_ps();
    } else {
      acc[i][0] = _mm256_setzero_ps();
      acc[i][1] = _mm256_setzero_ps();
    }
  }
  for (int64_t step = 0; step < kc; ++step) {
    const float* arow = a_panel + step * kMr;
    const __m256 b0 = _mm256_loadu_ps(b_panel + step * kNr);
    const __m256 b1 = _mm256_loadu_ps(b_panel + step * kNr + 8);
    for (int i = 0; i < mr; ++i) {
      const __m256 ai = _mm256_broadcast_ss(arow + i);
      acc[i][0] = _mm256_fmadd_ps(ai, b0, acc[i][0]);
      acc[i][1] = _mm256_fmadd_ps(ai, b1, acc[i][1]);
    }
  }
  for (int i = 0; i < mr; ++i) {
    _mm256_maskstore_ps(c + i * ldc, m0, acc[i][0]);
    if (n1 > 0) _mm256_maskstore_ps(c + i * ldc + 8, m1, acc[i][1]);
  }
}
#endif  // NIID_GEMM_USE_AVX2

inline void MicroKernel(int64_t kc, const float* a_panel, const float* b_panel,
                        float* c, int64_t ldc, bool load_c, int mr, int nr) {
#if NIID_GEMM_USE_AVX2
  if (mr == kMr && nr == kNr) {
    MicroKernelFull(kc, a_panel, b_panel, c, ldc, load_c);
  } else {
    MicroKernelEdge(kc, a_panel, b_panel, c, ldc, load_c, mr, nr);
  }
#else
  MicroKernelScalar(kc, a_panel, b_panel, c, ldc, load_c, mr, nr);
#endif
}

// One Nc column block of the blocked loop: for each Kc slice, source the B
// panels (pre-packed `pb` or a fresh pack into TLS scratch), then run the
// row-block loop — in parallel when `pool` is set. `pa`/`pb`, when non-null,
// point at full-matrix PackedOperand layouts whose panel stride is the full
// k extent.
// NIID_HOT: inner loop of every training step; the two resizes are
// grow-only TLS scratch.
void ComputeColumnBlock(int64_t m, int64_t n, int64_t k, const GemmOperand& a,
                        const float* pa, const GemmOperand& b, const float* pb,
                        float* c, int64_t ldc, bool accumulate, int64_t jc,
                        ThreadPool* pool) {
  const int64_t nc = std::min<int64_t>(kGemmNc, n - jc);
  const int64_t b_panels = (nc + kNr - 1) / kNr;
  for (int64_t pc = 0; pc < k; pc += kGemmKc) {
    const int64_t kc = std::min<int64_t>(kGemmKc, k - pc);
    const float* packed_b = nullptr;
    if (pb == nullptr) {
      tls_pack_b.resize(  // NOLINT(niid-hot-alloc) grow-only TLS scratch
          static_cast<size_t>(b_panels * kc * kNr));
      packed_b = tls_pack_b.data();
      PackB(b, pc, kc, jc, nc, tls_pack_b.data());
    }
    // Later Kc blocks must continue each element's FMA chain from C.
    const bool load_c = accumulate || pc > 0;

    // Row-block parallelism only — K is never split across threads, so
    // every C element is produced by exactly one task with a fixed
    // accumulation order, independent of the thread count.
    const int64_t m_blocks = (m + kGemmMc - 1) / kGemmMc;
    ParallelFor(pool, m_blocks, [&](int64_t mb) {
      const int64_t i0 = mb * kGemmMc;
      const int64_t mc = std::min<int64_t>(kGemmMc, m - i0);
      const int64_t a_panels = (mc + kMr - 1) / kMr;
      const float* packed_a = nullptr;
      if (pa == nullptr) {
        tls_pack_a.resize(  // NOLINT(niid-hot-alloc) grow-only TLS scratch
            static_cast<size_t>(a_panels * kc * kMr));
        packed_a = tls_pack_a.data();
        PackA(a, i0, mc, pc, kc, tls_pack_a.data());
      }
      for (int64_t q = 0; q < b_panels; ++q) {
        const int64_t j0 = jc + q * kNr;
        const int nr = static_cast<int>(std::min<int64_t>(kNr, jc + nc - j0));
        // Pre-packed panels span the full k extent; block-local packs span
        // kc. Global panel indices stay aligned because Mc % Mr == 0 and
        // Nc % Nr == 0 (static_asserts above).
        const float* b_panel = pb != nullptr
                                   ? pb + (jc / kNr + q) * k * kNr + pc * kNr
                                   : packed_b + q * kc * kNr;
        for (int64_t p = 0; p < a_panels; ++p) {
          const int64_t i = i0 + p * kMr;
          const int mr = static_cast<int>(std::min<int64_t>(kMr, i0 + mc - i));
          const float* a_panel =
              pa != nullptr ? pa + (i0 / kMr + p) * k * kMr + pc * kMr
                            : packed_a + p * kc * kMr;
          MicroKernel(kc, a_panel, b_panel, c + i * ldc + j0, ldc, load_c, mr,
                      nr);
        }
      }
    });
  }
}

// Shared blocked driver behind Gemm/GemmPackedA/GemmPackedB.
// NIID_HOT: the training step's inner loop; see the allocation policy note
// on tls_pack_a/tls_pack_b above for the sanctioned grow-only resizes.
void GemmImpl(int64_t m, int64_t n, int64_t k, const GemmOperand& a,
              const float* pa, const GemmOperand& b, const float* pb, float* c,
              int64_t ldc, bool accumulate, ThreadPool* pool) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    if (!accumulate) {
      for (int64_t i = 0; i < m; ++i) {
        std::memset(c + i * ldc, 0, sizeof(float) * n);
      }
    }
    return;
  }

  // Short-wide shapes (one Mc row block, many Nc column blocks — e.g. the
  // fused conv-backward dX GEMM, m = C*k*k, n = N*H*W) have no row-block
  // parallelism to exploit, so parallelize over column blocks instead.
  // Tasks write disjoint C columns and K is still never split, so the
  // per-element FMA chains — and hence the results — are unchanged. Limited
  // to k <= Kc so the per-task repack of A (when not pre-packed) stays
  // negligible.
  const int64_t m_blocks = (m + kGemmMc - 1) / kGemmMc;
  const int64_t jc_blocks = (n + kGemmNc - 1) / kGemmNc;
  if (pool != nullptr && m_blocks == 1 && jc_blocks > 1 && k <= kGemmKc) {
    ParallelFor(pool, jc_blocks, [&](int64_t jb) {
      ComputeColumnBlock(m, n, k, a, pa, b, pb, c, ldc, accumulate,
                         jb * kGemmNc, nullptr);
    });
    return;
  }

  for (int64_t jc = 0; jc < n; jc += kGemmNc) {
    ComputeColumnBlock(m, n, k, a, pa, b, pb, c, ldc, accumulate, jc, pool);
  }
}

}  // namespace

void PackedOperand::PackA(int64_t m, int64_t k, const GemmOperand& a) {
  NIID_CHECK(m > 0 && k > 0);
  const int64_t panels = (m + kMr - 1) / kMr;
  data_.resize(  // NOLINT(niid-hot-alloc) grow-only cache buffer
      static_cast<size_t>(panels * k * kMr));
  niid::PackA(a, 0, m, 0, k, data_.data());
  rows_ = m;
  cols_ = k;
  side_ = Side::kA;
}

void PackedOperand::PackB(int64_t k, int64_t n, const GemmOperand& b) {
  NIID_CHECK(k > 0 && n > 0);
  const int64_t panels = (n + kNr - 1) / kNr;
  data_.resize(  // NOLINT(niid-hot-alloc) grow-only cache buffer
      static_cast<size_t>(panels * k * kNr));
  niid::PackB(b, 0, k, 0, n, data_.data());
  rows_ = k;
  cols_ = n;
  side_ = Side::kB;
}

// NIID_HOT: the training step's inner loop.
void Gemm(int64_t m, int64_t n, int64_t k, const GemmOperand& a,
          const GemmOperand& b, float* c, int64_t ldc, bool accumulate,
          ThreadPool* pool) {
  GemmImpl(m, n, k, a, nullptr, b, nullptr, c, ldc, accumulate, pool);
}

// NIID_HOT: the training step's inner loop (pre-packed left operand).
void GemmPackedA(int64_t m, int64_t n, int64_t k, const PackedOperand& a,
                 const GemmOperand& b, float* c, int64_t ldc, bool accumulate,
                 ThreadPool* pool) {
  NIID_CHECK(a.is_a() && a.rows() == m && a.cols() == k);
  GemmImpl(m, n, k, GemmOperand{}, a.data(), b, nullptr, c, ldc, accumulate,
           pool);
}

// NIID_HOT: the training step's inner loop (pre-packed right operand).
void GemmPackedB(int64_t m, int64_t n, int64_t k, const GemmOperand& a,
                 const PackedOperand& b, float* c, int64_t ldc,
                 bool accumulate, ThreadPool* pool) {
  NIID_CHECK(b.is_b() && b.rows() == k && b.cols() == n);
  GemmImpl(m, n, k, a, nullptr, GemmOperand{}, b.data(), c, ldc, accumulate,
           pool);
}

}  // namespace niid
