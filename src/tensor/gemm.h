#ifndef NIID_TENSOR_GEMM_H_
#define NIID_TENSOR_GEMM_H_

#include <cstdint>
#include <vector>

#include "util/thread_pool.h"

namespace niid {

/// Blocked, packed, optionally multithreaded single-precision GEMM.
///
/// Computes C = op(A) * op(B) (or C += op(A) * op(B) with `accumulate`)
/// where op(X) is X or X^T depending on the operand's `trans` flag. The
/// engine tiles the iteration space into Mc/Kc/Nc cache blocks, packs both
/// operands into contiguous panels held in reusable thread-local scratch
/// buffers, and runs an explicit register-tiled microkernel (AVX2+FMA when
/// the build enables it, a bit-identical scalar std::fma kernel otherwise).
///
/// Determinism policy (see DESIGN.md §7): the K dimension is never split
/// across threads — parallelism is over disjoint row blocks of C (or, for
/// single-row-block shapes, disjoint column blocks) — and every
/// multiply-add in the engine is a fused multiply-add applied in strictly
/// increasing k order per output element. Results are therefore
/// bit-identical for any thread count, any pool, and both microkernel
/// backends, and bit-identical to the scalar reference
/// `MatmulReference`-family oracles in tensor/ops.h.

/// A rank-2 operand view: row-major storage with an arbitrary row stride,
/// logically transposed when `trans` is set. op(X)[r, c] reads
/// data[c * stride + r] if trans else data[r * stride + c].
struct GemmOperand {
  const float* data = nullptr;
  int64_t stride = 0;
  bool trans = false;
};

/// Caller-owned pre-packed operand (pack-once API, DESIGN.md §12).
///
/// Holds a full matrix laid out in the engine's internal panel format so
/// `GemmPackedA`/`GemmPackedB` can skip the per-call packing pass entirely.
/// The payoff is operand reuse: a weight matrix packed once per optimizer
/// step and consumed by every image's GEMM, or a gradient matrix packed
/// once and fed to both the dW and dX GEMMs of a convolution backward.
///
/// Layout contract (stable; tests assert bitwise GEMM equality against the
/// pack-on-the-fly path):
///  - A side: ceil(m / kGemmMr) panels, panel p holding all k steps of
///    rows [p*Mr, p*Mr+Mr) at data()[p*k*Mr + step*Mr + r], zero-padded
///    past m.
///  - B side: ceil(n / kGemmNr) panels, panel q holding all k steps of
///    columns [q*Nr, q*Nr+Nr) at data()[q*k*Nr + step*Nr + c], zero-padded
///    past n.
///
/// The buffer is grow-only (steady-state re-packs are allocation-free) and
/// `Invalidate()` marks the contents stale without releasing capacity —
/// the hook layer caches use when the underlying weights change.
class PackedOperand {
 public:
  /// Packs op(a)[m, k] as the left (A-side) GEMM operand.
  void PackA(int64_t m, int64_t k, const GemmOperand& a);
  /// Packs op(b)[k, n] as the right (B-side) GEMM operand.
  void PackB(int64_t k, int64_t n, const GemmOperand& b);

  /// Marks the packed contents stale; capacity is retained.
  void Invalidate() { side_ = Side::kNone; }
  /// True if the buffer currently holds a valid A-side / B-side pack.
  bool valid() const { return side_ != Side::kNone; }
  bool is_a() const { return side_ == Side::kA; }
  bool is_b() const { return side_ == Side::kB; }
  /// Logical extents of the packed operand: rows() x cols() == op(X).
  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  const float* data() const { return data_.data(); }

 private:
  enum class Side { kNone, kA, kB };
  std::vector<float> data_;
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  Side side_ = Side::kNone;
};

/// C[m, n] (row stride `ldc`) = op(a)[m, k] * op(b)[k, n], overwriting C,
/// or accumulating into it when `accumulate` is true. `pool` may be null
/// (serial); passing a pool whose worker thread is the caller is safe and
/// runs serially (see ThreadPool::IsWorkerThread).
void Gemm(int64_t m, int64_t n, int64_t k, const GemmOperand& a,
          const GemmOperand& b, float* c, int64_t ldc, bool accumulate,
          ThreadPool* pool);

/// Gemm with a pre-packed left operand (`a.PackA(m, k, ...)` must have run).
/// Bit-identical to the equivalent `Gemm` call.
void GemmPackedA(int64_t m, int64_t n, int64_t k, const PackedOperand& a,
                 const GemmOperand& b, float* c, int64_t ldc, bool accumulate,
                 ThreadPool* pool);

/// Gemm with a pre-packed right operand (`b.PackB(k, n, ...)` must have
/// run). Bit-identical to the equivalent `Gemm` call.
void GemmPackedB(int64_t m, int64_t n, int64_t k, const GemmOperand& a,
                 const PackedOperand& b, float* c, int64_t ldc,
                 bool accumulate, ThreadPool* pool);

/// Microkernel register-tile extents, exported so tests can build shape
/// grids that straddle the tile edges.
inline constexpr int kGemmMr = 6;
inline constexpr int kGemmNr = 16;

/// Cache-block extents (rows of A per parallel task, K panel depth, columns
/// of B per outer block).
inline constexpr int64_t kGemmMc = 96;
inline constexpr int64_t kGemmKc = 256;
inline constexpr int64_t kGemmNc = 1024;

}  // namespace niid

#endif  // NIID_TENSOR_GEMM_H_
