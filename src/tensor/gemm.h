#ifndef NIID_TENSOR_GEMM_H_
#define NIID_TENSOR_GEMM_H_

#include <cstdint>

#include "util/thread_pool.h"

namespace niid {

/// Blocked, packed, optionally multithreaded single-precision GEMM.
///
/// Computes C = op(A) * op(B) (or C += op(A) * op(B) with `accumulate`)
/// where op(X) is X or X^T depending on the operand's `trans` flag. The
/// engine tiles the iteration space into Mc/Kc/Nc cache blocks, packs both
/// operands into contiguous panels held in reusable thread-local scratch
/// buffers, and runs an explicit register-tiled microkernel (AVX2+FMA when
/// the build enables it, a bit-identical scalar std::fma kernel otherwise).
///
/// Determinism policy (see DESIGN.md §7): the K dimension is never split
/// across threads — parallelism is over disjoint row blocks of C only — and
/// every multiply-add in the engine is a fused multiply-add applied in
/// strictly increasing k order per output element. Results are therefore
/// bit-identical for any thread count, any pool, and both microkernel
/// backends, and bit-identical to the scalar reference
/// `MatmulReference`-family oracles in tensor/ops.h.

/// A rank-2 operand view: row-major storage with an arbitrary row stride,
/// logically transposed when `trans` is set. op(X)[r, c] reads
/// data[c * stride + r] if trans else data[r * stride + c].
struct GemmOperand {
  const float* data = nullptr;
  int64_t stride = 0;
  bool trans = false;
};

/// C[m, n] (row stride `ldc`) = op(a)[m, k] * op(b)[k, n], overwriting C,
/// or accumulating into it when `accumulate` is true. `pool` may be null
/// (serial); passing a pool whose worker thread is the caller is safe and
/// runs serially (see ThreadPool::IsWorkerThread).
void Gemm(int64_t m, int64_t n, int64_t k, const GemmOperand& a,
          const GemmOperand& b, float* c, int64_t ldc, bool accumulate,
          ThreadPool* pool);

/// Microkernel register-tile extents, exported so tests can build shape
/// grids that straddle the tile edges.
inline constexpr int kGemmMr = 6;
inline constexpr int kGemmNr = 16;

/// Cache-block extents (rows of A per parallel task, K panel depth, columns
/// of B per outer block).
inline constexpr int64_t kGemmMc = 96;
inline constexpr int64_t kGemmKc = 256;
inline constexpr int64_t kGemmNc = 1024;

}  // namespace niid

#endif  // NIID_TENSOR_GEMM_H_
