#include "tensor/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/thread_pool.h"

#if defined(NIID_KERNELS_AVX2) && defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#define NIID_KERNELS_USE_AVX2 1
#else
#define NIID_KERNELS_USE_AVX2 0
#endif

namespace niid {
namespace {

// ---------------------------------------------------------------------------
// Shared scalar bodies. These ARE the kernel definitions: the AVX2 paths
// below evaluate the identical per-element/per-lane arithmetic, and the
// public Kernel*Reference oracles call these directly.
// ---------------------------------------------------------------------------

inline void ScalarScale(int64_t begin, int64_t end, float alpha, float* x) {
  for (int64_t i = begin; i < end; ++i) x[i] *= alpha;
}

inline void ScalarAxpy(int64_t begin, int64_t end, float alpha,
                       const float* x, float* y) {
  for (int64_t i = begin; i < end; ++i) y[i] = std::fma(alpha, x[i], y[i]);
}

inline void ScalarSub(int64_t begin, int64_t end, const float* a,
                      const float* b, float* out) {
  for (int64_t i = begin; i < end; ++i) out[i] = a[i] - b[i];
}

inline void ScalarSgdStep(int64_t begin, int64_t end, float lr, float momentum,
                          float weight_decay, float* w, const float* g,
                          float* v) {
  for (int64_t i = begin; i < end; ++i) {
    const float grad = std::fma(weight_decay, w[i], g[i]);
    v[i] = std::fma(momentum, v[i], grad);
    w[i] = std::fma(-lr, v[i], w[i]);
  }
}

inline void ScalarReluForward(int64_t begin, int64_t end, const float* x,
                              float* out, uint8_t* mask) {
  for (int64_t i = begin; i < end; ++i) {
    const float xi = x[i];
    const bool positive = xi > 0.f;
    mask[i] = positive ? 1 : 0;
    out[i] = positive ? xi : 0.f;
  }
}

inline void ScalarReluBackward(int64_t begin, int64_t end, const float* gout,
                               const uint8_t* mask, float* gin) {
  for (int64_t i = begin; i < end; ++i) {
    gin[i] = mask[i] ? gout[i] : 0.f;
  }
}

// Four-lane double reduction tree (see kernels.h): lane i%4 over the body,
// combined as (l0 + l2) + (l1 + l3), tail appended sequentially.
inline double CombineLanes(const double lanes[4]) {
  return (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
}

inline void ScalarSumSqBody(int64_t body, const float* x, double* sum,
                            double* sum_sq) {
  double ls[4] = {0.0, 0.0, 0.0, 0.0};
  double lq[4] = {0.0, 0.0, 0.0, 0.0};
  for (int64_t i = 0; i < body; i += 4) {
    for (int lane = 0; lane < 4; ++lane) {
      const double d = static_cast<double>(x[i + lane]);
      ls[lane] += d;
      lq[lane] = std::fma(d, d, lq[lane]);
    }
  }
  *sum = CombineLanes(ls);
  *sum_sq = CombineLanes(lq);
}

inline void ScalarDySumsBody(int64_t body, const float* dy, const float* xhat,
                             double* sum_dy, double* sum_dy_xhat) {
  double ld[4] = {0.0, 0.0, 0.0, 0.0};
  double lh[4] = {0.0, 0.0, 0.0, 0.0};
  for (int64_t i = 0; i < body; i += 4) {
    for (int lane = 0; lane < 4; ++lane) {
      const double d = static_cast<double>(dy[i + lane]);
      const double h = static_cast<double>(xhat[i + lane]);
      ld[lane] += d;
      lh[lane] = std::fma(d, h, lh[lane]);
    }
  }
  *sum_dy = CombineLanes(ld);
  *sum_dy_xhat = CombineLanes(lh);
}

inline void ScalarBnNormalize(int64_t begin, int64_t end, float mean,
                              float inv_std, float gamma, float beta,
                              const float* x, float* xhat, float* out) {
  for (int64_t i = begin; i < end; ++i) {
    const float h = (x[i] - mean) * inv_std;
    xhat[i] = h;
    out[i] = std::fma(gamma, h, beta);
  }
}

inline void ScalarBnBackwardDx(int64_t begin, int64_t end, double coeff,
                               double mean_dy, double mean_dy_xhat,
                               const float* dy, const float* xhat, float* dx) {
  for (int64_t i = begin; i < end; ++i) {
    double t = static_cast<double>(dy[i]) - mean_dy;
    t = std::fma(-static_cast<double>(xhat[i]), mean_dy_xhat, t);
    dx[i] = static_cast<float>(coeff * t);
  }
}

inline void ScalarMinMax(int64_t begin, int64_t end, const float* x,
                         float* mn, float* mx) {
  float lo = *mn, hi = *mx;
  for (int64_t i = begin; i < end; ++i) {
    const float v = x[i];
    lo = lo < v ? lo : v;  // minps: second operand on NaN
    hi = hi > v ? hi : v;  // maxps: second operand on NaN
  }
  *mn = lo;
  *mx = hi;
}

inline void ScalarQuantizeAffine(int64_t begin, int64_t end, const float* x,
                                 float lo, float inv_scale, int qmax,
                                 uint8_t* q) {
  const float fqmax = static_cast<float>(qmax);
  for (int64_t i = begin; i < end; ++i) {
    float t = std::nearbyint((x[i] - lo) * inv_scale);
    t = t < 0.f ? 0.f : t;
    t = t > fqmax ? fqmax : t;
    q[i] = static_cast<uint8_t>(t);
  }
}

inline void ScalarDequantAxpy(int64_t begin, int64_t end, const uint8_t* q,
                              float scale, float lo, float* out) {
  for (int64_t i = begin; i < end; ++i) {
    out[i] += std::fma(static_cast<float>(q[i]), scale, lo);
  }
}

inline void ScalarAbs(int64_t begin, int64_t end, const float* x, float* out) {
  for (int64_t i = begin; i < end; ++i) out[i] = std::fabs(x[i]);
}

inline int64_t ScalarCountAbsGreater(int64_t begin, int64_t end,
                                     const float* x, float threshold) {
  int64_t count = 0;
  for (int64_t i = begin; i < end; ++i) {
    if (std::fabs(x[i]) > threshold) ++count;
  }
  return count;
}

inline void ScalarTranspose(int64_t rows, int64_t cols, const float* src,
                            float* dst) {
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) dst[c * rows + r] = src[r * cols + c];
  }
}

inline void ScalarAddTransposed(int64_t rows, int64_t cols, const float* src,
                                float* dst) {
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) dst[r * cols + c] += src[c * rows + r];
  }
}

#if NIID_KERNELS_USE_AVX2
// Transposes the 8x8 block whose rows start at src, src+stride, ... into
// registers: out[j][i] = src[i * stride + j]. Pure lane movement — no
// arithmetic — so it cannot perturb bits.
inline void Transpose8x8Regs(const float* src, int64_t stride, __m256 out[8]) {
  const __m256 r0 = _mm256_loadu_ps(src + 0 * stride);
  const __m256 r1 = _mm256_loadu_ps(src + 1 * stride);
  const __m256 r2 = _mm256_loadu_ps(src + 2 * stride);
  const __m256 r3 = _mm256_loadu_ps(src + 3 * stride);
  const __m256 r4 = _mm256_loadu_ps(src + 4 * stride);
  const __m256 r5 = _mm256_loadu_ps(src + 5 * stride);
  const __m256 r6 = _mm256_loadu_ps(src + 6 * stride);
  const __m256 r7 = _mm256_loadu_ps(src + 7 * stride);
  const __m256 t0 = _mm256_unpacklo_ps(r0, r1);
  const __m256 t1 = _mm256_unpackhi_ps(r0, r1);
  const __m256 t2 = _mm256_unpacklo_ps(r2, r3);
  const __m256 t3 = _mm256_unpackhi_ps(r2, r3);
  const __m256 t4 = _mm256_unpacklo_ps(r4, r5);
  const __m256 t5 = _mm256_unpackhi_ps(r4, r5);
  const __m256 t6 = _mm256_unpacklo_ps(r6, r7);
  const __m256 t7 = _mm256_unpackhi_ps(r6, r7);
  const __m256 s0 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 s1 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 s2 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 s3 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 s4 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 s5 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 s6 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 s7 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(3, 2, 3, 2));
  out[0] = _mm256_permute2f128_ps(s0, s4, 0x20);
  out[1] = _mm256_permute2f128_ps(s1, s5, 0x20);
  out[2] = _mm256_permute2f128_ps(s2, s6, 0x20);
  out[3] = _mm256_permute2f128_ps(s3, s7, 0x20);
  out[4] = _mm256_permute2f128_ps(s0, s4, 0x31);
  out[5] = _mm256_permute2f128_ps(s1, s5, 0x31);
  out[6] = _mm256_permute2f128_ps(s2, s6, 0x31);
  out[7] = _mm256_permute2f128_ps(s3, s7, 0x31);
}
#endif  // NIID_KERNELS_USE_AVX2

// One [rows x cols] -> [cols x rows] transpose (8x8 blocked body, scalar
// edges in the AVX2 build; plain scalar otherwise).
inline void TransposeOne(int64_t rows, int64_t cols, const float* src,
                         float* dst) {
#if NIID_KERNELS_USE_AVX2
  const int64_t rb = rows & ~int64_t{7};
  const int64_t cb = cols & ~int64_t{7};
  for (int64_t r0 = 0; r0 < rb; r0 += 8) {
    for (int64_t c0 = 0; c0 < cb; c0 += 8) {
      __m256 t[8];
      Transpose8x8Regs(src + r0 * cols + c0, cols, t);
      for (int j = 0; j < 8; ++j) {
        _mm256_storeu_ps(dst + (c0 + j) * rows + r0, t[j]);
      }
    }
    for (int64_t c = cb; c < cols; ++c) {
      for (int64_t r = r0; r < r0 + 8; ++r) {
        dst[c * rows + r] = src[r * cols + c];
      }
    }
  }
  for (int64_t r = rb; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) dst[c * rows + r] = src[r * cols + c];
  }
#else
  ScalarTranspose(rows, cols, src, dst);
#endif
}

// Splits [0, n) into range chunks on the pool when n is large enough.
// Elementwise kernels are chunk-boundary-invariant (each element's result
// depends only on its own inputs), so this never changes bits.
template <typename Fn>
void ForRanges(ThreadPool* pool, int64_t n, const Fn& fn) {
  if (pool == nullptr || n < kKernelParallelThreshold ||
      pool->num_threads() == 1 || pool->IsWorkerThread()) {
    fn(int64_t{0}, n);
    return;
  }
  const int64_t max_chunks = static_cast<int64_t>(pool->num_threads()) * 4;
  const int64_t num_chunks =
      std::min<int64_t>(max_chunks, (n + kKernelParallelThreshold - 1) /
                                        kKernelParallelThreshold);
  const int64_t chunk = (n + num_chunks - 1) / num_chunks;
  ParallelFor(pool, num_chunks, [&](int64_t c) {
    const int64_t begin = c * chunk;
    const int64_t end = std::min<int64_t>(begin + chunk, n);
    if (begin < end) fn(begin, end);
  });
}

}  // namespace

// ---------------------------------------------------------------------------
// Production kernels.
// ---------------------------------------------------------------------------

// NIID_HOT
void KernelFill(int64_t n, float value, float* x) {
  std::fill(x, x + n, value);
}

// NIID_HOT
void KernelCopy(int64_t n, const float* src, float* dst) {
  std::memcpy(dst, src, static_cast<size_t>(n) * sizeof(float));
}

// NIID_HOT
void KernelScale(int64_t n, float alpha, float* x, ThreadPool* pool) {
  ForRanges(pool, n, [&](int64_t begin, int64_t end) {
#if NIID_KERNELS_USE_AVX2
    const __m256 va = _mm256_set1_ps(alpha);
    int64_t i = begin;
    for (; i + 8 <= end; i += 8) {
      _mm256_storeu_ps(x + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), va));
    }
    ScalarScale(i, end, alpha, x);
#else
    ScalarScale(begin, end, alpha, x);
#endif
  });
}

// NIID_HOT
void KernelScaleInto(int64_t n, float alpha, const float* x, float* out) {
#if NIID_KERNELS_USE_AVX2
  const __m256 va = _mm256_set1_ps(alpha);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_mul_ps(va, _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) out[i] = alpha * x[i];
#else
  for (int64_t i = 0; i < n; ++i) out[i] = alpha * x[i];
#endif
}

// NIID_HOT
void KernelAxpy(int64_t n, float alpha, const float* x, float* y,
                ThreadPool* pool) {
  ForRanges(pool, n, [&](int64_t begin, int64_t end) {
#if NIID_KERNELS_USE_AVX2
    const __m256 va = _mm256_set1_ps(alpha);
    int64_t i = begin;
    for (; i + 8 <= end; i += 8) {
      const __m256 vy = _mm256_loadu_ps(y + i);
      _mm256_storeu_ps(y + i,
                       _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i), vy));
    }
    ScalarAxpy(i, end, alpha, x, y);
#else
    ScalarAxpy(begin, end, alpha, x, y);
#endif
  });
}

// NIID_HOT
void KernelSub(int64_t n, const float* a, const float* b, float* out,
               ThreadPool* pool) {
  ForRanges(pool, n, [&](int64_t begin, int64_t end) {
#if NIID_KERNELS_USE_AVX2
    int64_t i = begin;
    for (; i + 8 <= end; i += 8) {
      _mm256_storeu_ps(
          out + i,
          _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
    }
    ScalarSub(i, end, a, b, out);
#else
    ScalarSub(begin, end, a, b, out);
#endif
  });
}

// NIID_HOT
void KernelSgdMomentumStep(int64_t n, float lr, float momentum,
                           float weight_decay, float* w, const float* g,
                           float* v, ThreadPool* pool) {
  ForRanges(pool, n, [&](int64_t begin, int64_t end) {
#if NIID_KERNELS_USE_AVX2
    const __m256 vlr = _mm256_set1_ps(lr);
    const __m256 vmom = _mm256_set1_ps(momentum);
    const __m256 vwd = _mm256_set1_ps(weight_decay);
    int64_t i = begin;
    for (; i + 8 <= end; i += 8) {
      __m256 vw = _mm256_loadu_ps(w + i);
      __m256 vv = _mm256_loadu_ps(v + i);
      const __m256 grad = _mm256_fmadd_ps(vwd, vw, _mm256_loadu_ps(g + i));
      vv = _mm256_fmadd_ps(vmom, vv, grad);
      _mm256_storeu_ps(v + i, vv);
      vw = _mm256_fnmadd_ps(vlr, vv, vw);
      _mm256_storeu_ps(w + i, vw);
    }
    ScalarSgdStep(i, end, lr, momentum, weight_decay, w, g, v);
#else
    ScalarSgdStep(begin, end, lr, momentum, weight_decay, w, g, v);
#endif
  });
}

// NIID_HOT
void KernelReluForward(int64_t n, const float* x, float* out, uint8_t* mask,
                       ThreadPool* pool) {
  ForRanges(pool, n, [&](int64_t begin, int64_t end) {
#if NIID_KERNELS_USE_AVX2
    const __m256 zero = _mm256_setzero_ps();
    int64_t i = begin;
    for (; i + 8 <= end; i += 8) {
      const __m256 v = _mm256_loadu_ps(x + i);
      const __m256 m = _mm256_cmp_ps(v, zero, _CMP_GT_OQ);
      _mm256_storeu_ps(out + i, _mm256_and_ps(v, m));
      const int bits = _mm256_movemask_ps(m);
      for (int j = 0; j < 8; ++j) {
        mask[i + j] = static_cast<uint8_t>((bits >> j) & 1);
      }
    }
    ScalarReluForward(i, end, x, out, mask);
#else
    ScalarReluForward(begin, end, x, out, mask);
#endif
  });
}

// NIID_HOT
void KernelReluBackward(int64_t n, const float* gout, const uint8_t* mask,
                        float* gin, ThreadPool* pool) {
  ForRanges(pool, n, [&](int64_t begin, int64_t end) {
#if NIID_KERNELS_USE_AVX2
    const __m256i izero = _mm256_setzero_si256();
    int64_t i = begin;
    for (; i + 8 <= end; i += 8) {
      const __m128i bytes = _mm_loadl_epi64(
          reinterpret_cast<const __m128i*>(mask + i));
      const __m256i m32 = _mm256_cvtepu8_epi32(bytes);
      const __m256i keep = _mm256_cmpgt_epi32(m32, izero);
      const __m256 g = _mm256_loadu_ps(gout + i);
      _mm256_storeu_ps(gin + i,
                       _mm256_and_ps(g, _mm256_castsi256_ps(keep)));
    }
    ScalarReluBackward(i, end, gout, mask, gin);
#else
    ScalarReluBackward(begin, end, gout, mask, gin);
#endif
  });
}

// NIID_HOT
void KernelSumSq(int64_t n, const float* x, double* sum, double* sum_sq) {
  const int64_t body = n & ~int64_t{3};
  double s = 0.0, q = 0.0;
#if NIID_KERNELS_USE_AVX2
  __m256d acc_s = _mm256_setzero_pd();
  __m256d acc_q = _mm256_setzero_pd();
  for (int64_t i = 0; i < body; i += 4) {
    const __m256d d = _mm256_cvtps_pd(_mm_loadu_ps(x + i));
    acc_s = _mm256_add_pd(acc_s, d);
    acc_q = _mm256_fmadd_pd(d, d, acc_q);
  }
  {
    // (l0 + l2, l1 + l3) then low + high: the CombineLanes tree.
    const __m128d ps = _mm_add_pd(_mm256_castpd256_pd128(acc_s),
                                  _mm256_extractf128_pd(acc_s, 1));
    const __m128d pq = _mm_add_pd(_mm256_castpd256_pd128(acc_q),
                                  _mm256_extractf128_pd(acc_q, 1));
    s = _mm_cvtsd_f64(ps) + _mm_cvtsd_f64(_mm_unpackhi_pd(ps, ps));
    q = _mm_cvtsd_f64(pq) + _mm_cvtsd_f64(_mm_unpackhi_pd(pq, pq));
  }
#else
  ScalarSumSqBody(body, x, &s, &q);
#endif
  for (int64_t i = body; i < n; ++i) {
    const double d = static_cast<double>(x[i]);
    s += d;
    q = std::fma(d, d, q);
  }
  *sum += s;
  *sum_sq += q;
}

// NIID_HOT
void KernelDySums(int64_t n, const float* dy, const float* xhat,
                  double* sum_dy, double* sum_dy_xhat) {
  const int64_t body = n & ~int64_t{3};
  double s = 0.0, h = 0.0;
#if NIID_KERNELS_USE_AVX2
  __m256d acc_s = _mm256_setzero_pd();
  __m256d acc_h = _mm256_setzero_pd();
  for (int64_t i = 0; i < body; i += 4) {
    const __m256d d = _mm256_cvtps_pd(_mm_loadu_ps(dy + i));
    const __m256d x = _mm256_cvtps_pd(_mm_loadu_ps(xhat + i));
    acc_s = _mm256_add_pd(acc_s, d);
    acc_h = _mm256_fmadd_pd(d, x, acc_h);
  }
  {
    const __m128d ps = _mm_add_pd(_mm256_castpd256_pd128(acc_s),
                                  _mm256_extractf128_pd(acc_s, 1));
    const __m128d ph = _mm_add_pd(_mm256_castpd256_pd128(acc_h),
                                  _mm256_extractf128_pd(acc_h, 1));
    s = _mm_cvtsd_f64(ps) + _mm_cvtsd_f64(_mm_unpackhi_pd(ps, ps));
    h = _mm_cvtsd_f64(ph) + _mm_cvtsd_f64(_mm_unpackhi_pd(ph, ph));
  }
#else
  ScalarDySumsBody(body, dy, xhat, &s, &h);
#endif
  for (int64_t i = body; i < n; ++i) {
    const double d = static_cast<double>(dy[i]);
    s += d;
    h = std::fma(d, static_cast<double>(xhat[i]), h);
  }
  *sum_dy += s;
  *sum_dy_xhat += h;
}

// NIID_HOT
double KernelSum(int64_t n, const float* x) {
  const int64_t body = n & ~int64_t{3};
  double s = 0.0;
#if NIID_KERNELS_USE_AVX2
  __m256d acc = _mm256_setzero_pd();
  for (int64_t i = 0; i < body; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_cvtps_pd(_mm_loadu_ps(x + i)));
  }
  const __m128d pair = _mm_add_pd(_mm256_castpd256_pd128(acc),
                                  _mm256_extractf128_pd(acc, 1));
  s = _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
#else
  double lanes[4] = {0.0, 0.0, 0.0, 0.0};
  for (int64_t i = 0; i < body; i += 4) {
    for (int lane = 0; lane < 4; ++lane) {
      lanes[lane] += static_cast<double>(x[i + lane]);
    }
  }
  s = CombineLanes(lanes);
#endif
  for (int64_t i = body; i < n; ++i) s += static_cast<double>(x[i]);
  return s;
}

// NIID_HOT
double KernelPlaneSum(int64_t planes, int64_t plane_stride, int64_t n,
                      const float* x) {
  double total = 0.0;
  for (int64_t p = 0; p < planes; ++p) {
    total += KernelSum(n, x + p * plane_stride);
  }
  return total;
}

// NIID_HOT
void KernelBnBackwardReduce(int64_t planes, int64_t plane_stride, int64_t n,
                            const float* dy, const float* xhat, double* sum_dy,
                            double* sum_dy_xhat) {
  // Chains KernelDySums per plane in increasing p order — the exact
  // reduction the pre-fused per-image loop performed, so curves are
  // unchanged.
  double s = 0.0, h = 0.0;
  for (int64_t p = 0; p < planes; ++p) {
    KernelDySums(n, dy + p * plane_stride, xhat + p * plane_stride, &s, &h);
  }
  *sum_dy += s;
  *sum_dy_xhat += h;
}

// NIID_HOT
void KernelBatchTranspose(int64_t batch, int64_t rows, int64_t cols,
                          const float* src, float* dst, ThreadPool* pool) {
  const int64_t item = rows * cols;
  if (pool != nullptr && batch > 1 && batch * item >= kKernelParallelThreshold) {
    ParallelFor(pool, batch, [&](int64_t b) {
      TransposeOne(rows, cols, src + b * item, dst + b * item);
    });
    return;
  }
  for (int64_t b = 0; b < batch; ++b) {
    TransposeOne(rows, cols, src + b * item, dst + b * item);
  }
}

// NIID_HOT
void KernelAddTransposed(int64_t rows, int64_t cols, const float* src,
                         float* dst) {
#if NIID_KERNELS_USE_AVX2
  const int64_t rb = rows & ~int64_t{7};
  const int64_t cb = cols & ~int64_t{7};
  for (int64_t r0 = 0; r0 < rb; r0 += 8) {
    for (int64_t c0 = 0; c0 < cb; c0 += 8) {
      // t[j][i] = src[(c0 + i) * rows + r0 + j]: the values destined for
      // dst row r0 + j, columns c0 .. c0 + 7.
      __m256 t[8];
      Transpose8x8Regs(src + c0 * rows + r0, rows, t);
      for (int j = 0; j < 8; ++j) {
        float* d = dst + (r0 + j) * cols + c0;
        _mm256_storeu_ps(d, _mm256_add_ps(_mm256_loadu_ps(d), t[j]));
      }
    }
    for (int64_t c = cb; c < cols; ++c) {
      for (int64_t r = r0; r < r0 + 8; ++r) {
        dst[r * cols + c] += src[c * rows + r];
      }
    }
  }
  for (int64_t r = rb; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      dst[r * cols + c] += src[c * rows + r];
    }
  }
#else
  ScalarAddTransposed(rows, cols, src, dst);
#endif
}

// NIID_HOT
void KernelBnNormalize(int64_t n, float mean, float inv_std, float gamma,
                       float beta, const float* x, float* xhat, float* out) {
#if NIID_KERNELS_USE_AVX2
  const __m256 vm = _mm256_set1_ps(mean);
  const __m256 vi = _mm256_set1_ps(inv_std);
  const __m256 vg = _mm256_set1_ps(gamma);
  const __m256 vb = _mm256_set1_ps(beta);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 h =
        _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(x + i), vm), vi);
    _mm256_storeu_ps(xhat + i, h);
    _mm256_storeu_ps(out + i, _mm256_fmadd_ps(vg, h, vb));
  }
  ScalarBnNormalize(i, n, mean, inv_std, gamma, beta, x, xhat, out);
#else
  ScalarBnNormalize(0, n, mean, inv_std, gamma, beta, x, xhat, out);
#endif
}

// NIID_HOT
void KernelBnBackwardDx(int64_t n, float coeff, double mean_dy,
                        double mean_dy_xhat, const float* dy,
                        const float* xhat, float* dx) {
  const double coeff_d = static_cast<double>(coeff);
#if NIID_KERNELS_USE_AVX2
  const __m256d vmd = _mm256_set1_pd(mean_dy);
  const __m256d vmh = _mm256_set1_pd(mean_dy_xhat);
  const __m256d vc = _mm256_set1_pd(coeff_d);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d = _mm256_cvtps_pd(_mm_loadu_ps(dy + i));
    const __m256d h = _mm256_cvtps_pd(_mm_loadu_ps(xhat + i));
    __m256d t = _mm256_sub_pd(d, vmd);
    t = _mm256_fnmadd_pd(h, vmh, t);
    _mm_storeu_ps(dx + i, _mm256_cvtpd_ps(_mm256_mul_pd(vc, t)));
  }
  ScalarBnBackwardDx(i, n, coeff_d, mean_dy, mean_dy_xhat, dy, xhat, dx);
#else
  ScalarBnBackwardDx(0, n, coeff_d, mean_dy, mean_dy_xhat, dy, xhat, dx);
#endif
}

// NIID_HOT
void KernelMinMax(int64_t n, const float* x, float* out_min, float* out_max) {
  float mn = x[0];
  float mx = x[0];
#if NIID_KERNELS_USE_AVX2
  int64_t i = 0;
  if (n >= 8) {
    __m256 vmn = _mm256_set1_ps(x[0]);
    __m256 vmx = vmn;
    for (; i + 8 <= n; i += 8) {
      const __m256 v = _mm256_loadu_ps(x + i);
      vmn = _mm256_min_ps(vmn, v);
      vmx = _mm256_max_ps(vmx, v);
    }
    // Lane reduction in lane order; for finite inputs min/max commute, so
    // this equals the sequential scan bit for bit.
    alignas(32) float lanes_mn[8];
    alignas(32) float lanes_mx[8];
    _mm256_store_ps(lanes_mn, vmn);
    _mm256_store_ps(lanes_mx, vmx);
    for (int lane = 0; lane < 8; ++lane) {
      mn = mn < lanes_mn[lane] ? mn : lanes_mn[lane];
      mx = mx > lanes_mx[lane] ? mx : lanes_mx[lane];
    }
  }
  ScalarMinMax(i, n, x, &mn, &mx);
#else
  ScalarMinMax(1, n, x, &mn, &mx);
#endif
  *out_min = mn;
  *out_max = mx;
}

// NIID_HOT
void KernelQuantizeAffine(int64_t n, const float* x, float lo, float inv_scale,
                          int qmax, uint8_t* q) {
#if NIID_KERNELS_USE_AVX2
  const __m256 vlo = _mm256_set1_ps(lo);
  const __m256 vinv = _mm256_set1_ps(inv_scale);
  const __m256 vzero = _mm256_setzero_ps();
  const __m256 vqmax = _mm256_set1_ps(static_cast<float>(qmax));
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 t = _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(x + i), vlo), vinv);
    t = _mm256_round_ps(t, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    t = _mm256_max_ps(t, vzero);
    t = _mm256_min_ps(t, vqmax);
    const __m256i vi = _mm256_cvttps_epi32(t);  // integral after round
    const __m128i p16 = _mm_packus_epi32(_mm256_castsi256_si128(vi),
                                         _mm256_extracti128_si256(vi, 1));
    const __m128i p8 = _mm_packus_epi16(p16, p16);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(q + i), p8);
  }
  ScalarQuantizeAffine(i, n, x, lo, inv_scale, qmax, q);
#else
  ScalarQuantizeAffine(0, n, x, lo, inv_scale, qmax, q);
#endif
}

// NIID_HOT
void KernelDequantAxpy(int64_t n, const uint8_t* q, float scale, float lo,
                       float* out) {
#if NIID_KERNELS_USE_AVX2
  const __m256 vs = _mm256_set1_ps(scale);
  const __m256 vlo = _mm256_set1_ps(lo);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i codes = _mm256_cvtepu8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(q + i)));
    const __m256 v = _mm256_fmadd_ps(_mm256_cvtepi32_ps(codes), vs, vlo);
    _mm256_storeu_ps(out + i, _mm256_add_ps(_mm256_loadu_ps(out + i), v));
  }
  ScalarDequantAxpy(i, n, q, scale, lo, out);
#else
  ScalarDequantAxpy(0, n, q, scale, lo, out);
#endif
}

// NIID_HOT
void KernelAbs(int64_t n, const float* x, float* out) {
#if NIID_KERNELS_USE_AVX2
  const __m256 mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_and_ps(_mm256_loadu_ps(x + i), mask));
  }
  ScalarAbs(i, n, x, out);
#else
  ScalarAbs(0, n, x, out);
#endif
}

// NIID_HOT
int64_t KernelCountAbsGreater(int64_t n, const float* x, float threshold) {
#if NIID_KERNELS_USE_AVX2
  const __m256 mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  const __m256 vt = _mm256_set1_ps(threshold);
  int64_t count = 0;
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 a = _mm256_and_ps(_mm256_loadu_ps(x + i), mask);
    const int bits =
        _mm256_movemask_ps(_mm256_cmp_ps(a, vt, _CMP_GT_OQ));
    count += __builtin_popcount(static_cast<unsigned>(bits));
  }
  return count + ScalarCountAbsGreater(i, n, x, threshold);
#else
  return ScalarCountAbsGreater(0, n, x, threshold);
#endif
}

// NIID_HOT
void KernelSoftmaxXentRow(int64_t classes, int label, float inv_n, float* row,
                          double* loss, bool* correct) {
  // Shared scalar prologue (max, exp, sum, argmax) — exp dominates and has
  // no bit-stable vector form, so both backends run this identically.
  float max_v = row[0];
  for (int64_t j = 1; j < classes; ++j) max_v = std::max(max_v, row[j]);
  float sum = 0.f;
  int64_t best = 0;
  for (int64_t j = 0; j < classes; ++j) {
    const float e = std::exp(row[j] - max_v);
    row[j] = e;
    sum += e;
    if (e > row[best]) best = j;
  }
  const float inv = 1.f / sum;
  const float p_label = row[label] * inv;
  *loss = -std::log(std::max(p_label, 1e-12f));
  *correct = best == static_cast<int64_t>(label);
  // grad = (softmax - onehot) * inv_n, folded into one scale plus one
  // correction: e * (inv * inv_n) everywhere, then -inv_n at the label.
  KernelScale(classes, inv * inv_n, row);
  row[label] -= inv_n;
}

// ---------------------------------------------------------------------------
// Verification oracles.
// ---------------------------------------------------------------------------

void KernelAxpyReference(int64_t n, float alpha, const float* x, float* y) {
  ScalarAxpy(0, n, alpha, x, y);
}

void KernelSubReference(int64_t n, const float* a, const float* b,
                        float* out) {
  ScalarSub(0, n, a, b, out);
}

void KernelSgdMomentumStepReference(int64_t n, float lr, float momentum,
                                    float weight_decay, float* w,
                                    const float* g, float* v) {
  ScalarSgdStep(0, n, lr, momentum, weight_decay, w, g, v);
}

void KernelReluForwardReference(int64_t n, const float* x, float* out,
                                uint8_t* mask) {
  ScalarReluForward(0, n, x, out, mask);
}

void KernelReluBackwardReference(int64_t n, const float* gout,
                                 const uint8_t* mask, float* gin) {
  ScalarReluBackward(0, n, gout, mask, gin);
}

void KernelSumSqReference(int64_t n, const float* x, double* sum,
                          double* sum_sq) {
  const int64_t body = n & ~int64_t{3};
  double s = 0.0, q = 0.0;
  ScalarSumSqBody(body, x, &s, &q);
  for (int64_t i = body; i < n; ++i) {
    const double d = static_cast<double>(x[i]);
    s += d;
    q = std::fma(d, d, q);
  }
  *sum += s;
  *sum_sq += q;
}

void KernelDySumsReference(int64_t n, const float* dy, const float* xhat,
                           double* sum_dy, double* sum_dy_xhat) {
  const int64_t body = n & ~int64_t{3};
  double s = 0.0, h = 0.0;
  ScalarDySumsBody(body, dy, xhat, &s, &h);
  for (int64_t i = body; i < n; ++i) {
    const double d = static_cast<double>(dy[i]);
    s += d;
    h = std::fma(d, static_cast<double>(xhat[i]), h);
  }
  *sum_dy += s;
  *sum_dy_xhat += h;
}

void KernelBnNormalizeReference(int64_t n, float mean, float inv_std,
                                float gamma, float beta, const float* x,
                                float* xhat, float* out) {
  ScalarBnNormalize(0, n, mean, inv_std, gamma, beta, x, xhat, out);
}

void KernelBnBackwardDxReference(int64_t n, float coeff, double mean_dy,
                                 double mean_dy_xhat, const float* dy,
                                 const float* xhat, float* dx) {
  ScalarBnBackwardDx(0, n, static_cast<double>(coeff), mean_dy, mean_dy_xhat,
                     dy, xhat, dx);
}

double KernelPlaneSumReference(int64_t planes, int64_t plane_stride, int64_t n,
                               const float* x) {
  double total = 0.0;
  for (int64_t p = 0; p < planes; ++p) {
    const float* plane = x + p * plane_stride;
    const int64_t body = n & ~int64_t{3};
    double lanes[4] = {0.0, 0.0, 0.0, 0.0};
    for (int64_t i = 0; i < body; i += 4) {
      for (int lane = 0; lane < 4; ++lane) {
        lanes[lane] += static_cast<double>(plane[i + lane]);
      }
    }
    double s = CombineLanes(lanes);
    for (int64_t i = body; i < n; ++i) s += static_cast<double>(plane[i]);
    total += s;
  }
  return total;
}

void KernelBnBackwardReduceReference(int64_t planes, int64_t plane_stride,
                                     int64_t n, const float* dy,
                                     const float* xhat, double* sum_dy,
                                     double* sum_dy_xhat) {
  double s = 0.0, h = 0.0;
  for (int64_t p = 0; p < planes; ++p) {
    KernelDySumsReference(n, dy + p * plane_stride, xhat + p * plane_stride,
                          &s, &h);
  }
  *sum_dy += s;
  *sum_dy_xhat += h;
}

void KernelBatchTransposeReference(int64_t batch, int64_t rows, int64_t cols,
                                   const float* src, float* dst) {
  for (int64_t b = 0; b < batch; ++b) {
    ScalarTranspose(rows, cols, src + b * rows * cols, dst + b * rows * cols);
  }
}

void KernelAddTransposedReference(int64_t rows, int64_t cols, const float* src,
                                  float* dst) {
  ScalarAddTransposed(rows, cols, src, dst);
}

void KernelMinMaxReference(int64_t n, const float* x, float* out_min,
                           float* out_max) {
  float mn = x[0];
  float mx = x[0];
  ScalarMinMax(1, n, x, &mn, &mx);
  *out_min = mn;
  *out_max = mx;
}

void KernelQuantizeAffineReference(int64_t n, const float* x, float lo,
                                   float inv_scale, int qmax, uint8_t* q) {
  ScalarQuantizeAffine(0, n, x, lo, inv_scale, qmax, q);
}

void KernelDequantAxpyReference(int64_t n, const uint8_t* q, float scale,
                                float lo, float* out) {
  ScalarDequantAxpy(0, n, q, scale, lo, out);
}

void KernelAbsReference(int64_t n, const float* x, float* out) {
  ScalarAbs(0, n, x, out);
}

int64_t KernelCountAbsGreaterReference(int64_t n, const float* x,
                                       float threshold) {
  return ScalarCountAbsGreater(0, n, x, threshold);
}

}  // namespace niid
