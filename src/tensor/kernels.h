#ifndef NIID_TENSOR_KERNELS_H_
#define NIID_TENSOR_KERNELS_H_

#include <cstdint>

namespace niid {

class ThreadPool;

/// Vectorized elementwise and reduction kernels for everything in a training
/// step that is not a GEMM: optimizer updates, activations, normalization
/// statistics, loss rows, and the flatten/load/delta state copies.
///
/// Determinism policy (DESIGN.md §8, extending the GEMM engine's §7 rules):
/// every kernel has exactly one arithmetic definition, written below in terms
/// of per-element fused multiply-adds and (for reductions) a fixed four-lane
/// accumulation tree. The AVX2+FMA backend (compiled into kernels.cc alone,
/// like gemm.cc) evaluates that same definition per SIMD lane, so scalar and
/// vector builds are bit-identical, and parallel chunking never crosses an
/// element, so results are bit-identical for every thread count.
///
/// The `Kernel*Reference` oracles at the bottom restate each definition in
/// plain scalar code; tests/kernels_test.cc enforces bitwise equality between
/// the production kernels and these oracles.

/// Elements below this count run serially even when a pool is supplied; the
/// scheduling round-trip costs more than the loop.
inline constexpr int64_t kKernelParallelThreshold = 1 << 15;

// ---------------------------------------------------------------------------
// Elementwise kernels. Per element i the definitions are:
//   Fill:  x[i] = value
//   Copy:  dst[i] = src[i]
//   Scale: x[i] *= alpha
//   ScaleInto: out[i] = alpha * x[i]
//   Axpy:  y[i] = fma(alpha, x[i], y[i])
//   Sub:   out[i] = a[i] - b[i]
// ---------------------------------------------------------------------------

void KernelFill(int64_t n, float value, float* x);
void KernelCopy(int64_t n, const float* src, float* dst);
void KernelScale(int64_t n, float alpha, float* x, ThreadPool* pool = nullptr);
void KernelScaleInto(int64_t n, float alpha, const float* x, float* out);
void KernelAxpy(int64_t n, float alpha, const float* x, float* y,
                ThreadPool* pool = nullptr);
void KernelSub(int64_t n, const float* a, const float* b, float* out,
               ThreadPool* pool = nullptr);

/// Fused SGD-with-momentum update (torch.optim.SGD semantics), one pass over
/// the parameter segment. Per element:
///   g' = fma(weight_decay, w[i], g[i])
///   v[i] = fma(momentum, v[i], g')
///   w[i] = fma(-lr, v[i], w[i])
void KernelSgdMomentumStep(int64_t n, float lr, float momentum,
                           float weight_decay, float* w, const float* g,
                           float* v, ThreadPool* pool = nullptr);

/// Masked ReLU forward: out[i] = x[i] > 0 ? x[i] : 0, mask[i] = x[i] > 0.
/// `out` may alias `x` (in-place).
void KernelReluForward(int64_t n, const float* x, float* out, uint8_t* mask,
                       ThreadPool* pool = nullptr);

/// Masked ReLU backward: gin[i] = mask[i] ? gout[i] : 0. `gin` may alias
/// `gout` (in-place).
void KernelReluBackward(int64_t n, const float* gout, const uint8_t* mask,
                        float* gin, ThreadPool* pool = nullptr);

// ---------------------------------------------------------------------------
// Reductions. Accumulation runs in double over four virtual lanes: element i
// of the body (n rounded down to a multiple of 4) feeds lane i % 4, each lane
// chaining fused multiply-adds in increasing i order; lanes combine as
// (l0 + l2) + (l1 + l3) and the tail elements append sequentially to the
// combined value. Both backends implement exactly this tree, so the result
// is one bit pattern regardless of build flags.
// ---------------------------------------------------------------------------

/// sum += Σ x[i], sum_sq += Σ x[i]^2 (the BatchNorm moment pass).
void KernelSumSq(int64_t n, const float* x, double* sum, double* sum_sq);

/// sum_dy += Σ dy[i], sum_dy_xhat += Σ dy[i] * xhat[i] (BatchNorm backward).
void KernelDySums(int64_t n, const float* dy, const float* xhat,
                  double* sum_dy, double* sum_dy_xhat);

/// Σ x[i] with the same four-lane double tree (GlobalAvgPool).
double KernelSum(int64_t n, const float* x);

/// Strided batch of `KernelSum`s (conv bias gradient): returns
///   Σ_p KernelSum(n, x + p * plane_stride)
/// with the per-plane totals chained into a running double in strictly
/// increasing p order. Each plane uses the four-lane tree above, so the
/// result is backend- and thread-count-invariant.
double KernelPlaneSum(int64_t planes, int64_t plane_stride, int64_t n,
                      const float* x);

/// Fused BatchNorm-backward reduction over one channel's planes (batch
/// dimension strided by `plane_stride`, each plane a contiguous [H*W] run):
///   sum_dy += Σ_p Σ_i dy_p[i],  sum_dy_xhat += Σ_p Σ_i dy_p[i] * xhat_p[i]
/// evaluated as the plane-ordered chain of `KernelDySums` applications —
/// bit-identical to calling KernelDySums once per plane in increasing p
/// order, which is exactly the reduction order the scalar path has always
/// used. Handles the degenerate n == 1 (1x1 spatial) case through the same
/// per-plane tail path.
void KernelBnBackwardReduce(int64_t planes, int64_t plane_stride, int64_t n,
                            const float* dy, const float* xhat,
                            double* sum_dy, double* sum_dy_xhat);

// ---------------------------------------------------------------------------
// Data-movement kernels (pure copies/adds: per-element results depend on a
// single input element, so any chunking or backend is trivially
// bit-identical).
// ---------------------------------------------------------------------------

/// Batched matrix transpose: for each item b,
///   dst[b * rows * cols + c * rows + r] = src[b * rows * cols + r * cols + c]
/// i.e. each [rows x cols] matrix becomes [cols x rows]. Used to turn the
/// NCHW output gradient into the [N*S x C] operand both conv-backward GEMMs
/// consume. AVX2 path runs 8x8 in-register block transposes; items are
/// independent, so the batch dimension parallelizes freely.
void KernelBatchTranspose(int64_t batch, int64_t rows, int64_t cols,
                          const float* src, float* dst,
                          ThreadPool* pool = nullptr);

/// Transposed accumulate: dst[r * cols + c] += src[c * rows + r] for a
/// [rows x cols] dst and [cols x rows] src (the conv dW^T scatter). Each
/// destination element is one float add of one source element.
void KernelAddTransposed(int64_t rows, int64_t cols, const float* src,
                         float* dst);

// ---------------------------------------------------------------------------
// BatchNorm plane kernels (one contiguous [H*W] plane of one channel).
// ---------------------------------------------------------------------------

/// xhat[i] = (x[i] - mean) * inv_std; out[i] = fma(gamma, xhat[i], beta).
void KernelBnNormalize(int64_t n, float mean, float inv_std, float gamma,
                       float beta, const float* x, float* xhat, float* out);

/// Training-mode dx, computed in double like the historical scalar path:
///   t = (double)dy[i] - mean_dy
///   t = fma(-(double)xhat[i], mean_dy_xhat, t)
///   dx[i] = (float)((double)coeff * t)
void KernelBnBackwardDx(int64_t n, float coeff, double mean_dy,
                        double mean_dy_xhat, const float* dy,
                        const float* xhat, float* dx);

// ---------------------------------------------------------------------------
// Update-codec kernels (fl/compress.cc). All serial: they run inside the
// round-level ParallelFor, one client per worker, so a nested pool would
// only add scheduling overhead. Inputs are assumed finite (non-finite deltas
// are rejected downstream by ValidateUpdate); for finite inputs min/max and
// comparison counts are order-invariant, so scalar and AVX2 builds agree
// bitwise.
// ---------------------------------------------------------------------------

/// Running min/max over x[0..n): out_min = min_i x[i], out_max = max_i x[i]
/// with minps/maxps semantics (m = m < x ? m : x). Requires n >= 1.
void KernelMinMax(int64_t n, const float* x, float* out_min, float* out_max);

/// Affine quantize-row: q[i] = clamp(nearbyint((x[i] - lo) * inv_scale),
/// 0, qmax) as a uint8 code. nearbyint rounds to nearest-even, matching
/// _mm256_round_ps(_MM_FROUND_TO_NEAREST_INT) bit for bit. qmax <= 255.
void KernelQuantizeAffine(int64_t n, const float* x, float lo, float inv_scale,
                          int qmax, uint8_t* q);

/// Dequantize-accumulate: out[i] += fma((float)q[i], scale, lo). Decoding
/// into a zeroed buffer yields out[i] = fma(q[i], scale, lo) exactly, and
/// the same kernel with (-scale, -lo) subtracts the reconstruction — the
/// error-feedback residual update — since fma(q, -s, -l) == -fma(q, s, l).
void KernelDequantAxpy(int64_t n, const uint8_t* q, float scale, float lo,
                       float* out);

/// Magnitude pass of the top-k threshold scan: out[i] = |x[i]|.
void KernelAbs(int64_t n, const float* x, float* out);

/// Count of elements with |x[i]| > threshold (strict). With threshold = the
/// kth largest magnitude this is the number of coordinates top-k keeps
/// unconditionally; ties at the threshold fill the remainder in index order.
int64_t KernelCountAbsGreater(int64_t n, const float* x, float threshold);

// ---------------------------------------------------------------------------
// Softmax cross-entropy row kernel.
// ---------------------------------------------------------------------------

/// Converts one logits row (length `classes`) in place into the scaled
/// gradient (softmax(row) - onehot(label)) * inv_n, returning the row's
/// -log(p_label) in `loss` and whether argmax(row) == label in `correct`.
/// exp/max/sum run in shared scalar code (std::exp has no bit-stable vector
/// form); only the final elementwise scale is vectorized, so the kernel is
/// backend-invariant by construction.
void KernelSoftmaxXentRow(int64_t classes, int label, float inv_n, float* row,
                          double* loss, bool* correct);

// ---------------------------------------------------------------------------
// Scalar verification oracles: plain-C++ restatements of the definitions
// above (no intrinsics, no pool). The production kernels must match these
// bit for bit in every build; see tests/kernels_test.cc.
// ---------------------------------------------------------------------------

void KernelAxpyReference(int64_t n, float alpha, const float* x, float* y);
void KernelSubReference(int64_t n, const float* a, const float* b, float* out);
void KernelSgdMomentumStepReference(int64_t n, float lr, float momentum,
                                    float weight_decay, float* w,
                                    const float* g, float* v);
void KernelReluForwardReference(int64_t n, const float* x, float* out,
                                uint8_t* mask);
void KernelReluBackwardReference(int64_t n, const float* gout,
                                 const uint8_t* mask, float* gin);
void KernelSumSqReference(int64_t n, const float* x, double* sum,
                          double* sum_sq);
void KernelDySumsReference(int64_t n, const float* dy, const float* xhat,
                           double* sum_dy, double* sum_dy_xhat);
void KernelBnNormalizeReference(int64_t n, float mean, float inv_std,
                                float gamma, float beta, const float* x,
                                float* xhat, float* out);
void KernelBnBackwardDxReference(int64_t n, float coeff, double mean_dy,
                                 double mean_dy_xhat, const float* dy,
                                 const float* xhat, float* dx);
double KernelPlaneSumReference(int64_t planes, int64_t plane_stride, int64_t n,
                               const float* x);
void KernelBnBackwardReduceReference(int64_t planes, int64_t plane_stride,
                                     int64_t n, const float* dy,
                                     const float* xhat, double* sum_dy,
                                     double* sum_dy_xhat);
void KernelBatchTransposeReference(int64_t batch, int64_t rows, int64_t cols,
                                   const float* src, float* dst);
void KernelAddTransposedReference(int64_t rows, int64_t cols, const float* src,
                                  float* dst);
void KernelMinMaxReference(int64_t n, const float* x, float* out_min,
                           float* out_max);
void KernelQuantizeAffineReference(int64_t n, const float* x, float lo,
                                   float inv_scale, int qmax, uint8_t* q);
void KernelDequantAxpyReference(int64_t n, const uint8_t* q, float scale,
                                float lo, float* out);
void KernelAbsReference(int64_t n, const float* x, float* out);
int64_t KernelCountAbsGreaterReference(int64_t n, const float* x,
                                       float threshold);

}  // namespace niid

#endif  // NIID_TENSOR_KERNELS_H_
