#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "tensor/gemm.h"
#include "tensor/kernels.h"
#include "util/thread_pool.h"

namespace niid {
namespace {

// Resets `out` to shape [rows, cols], reusing the existing buffer (even
// across shape changes, e.g. a smaller final batch) as long as its capacity
// suffices. The contents are left stale: the GEMM engine overwrites every
// element (and zero-fills when k == 0), so no defensive Fill is needed.
void PrepareOutput(Tensor& out, int64_t rows, int64_t cols) {
  if (out.rank() != 2 || out.dim(0) != rows || out.dim(1) != cols) {
    out.Resize({rows, cols});
  }
}

// Minimum element count before row ops bother with the pool; below this the
// scheduling overhead exceeds the loop cost.
constexpr int64_t kRowOpParallelThreshold = 1 << 14;

}  // namespace

void Matmul(const Tensor& a, const Tensor& b, Tensor& out, ThreadPool* pool) {
  NIID_CHECK_EQ(a.rank(), 2);
  NIID_CHECK_EQ(b.rank(), 2);
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  NIID_CHECK_EQ(b.dim(0), k);
  PrepareOutput(out, m, n);
  Gemm(m, n, k, {a.data(), k, false}, {b.data(), n, false}, out.data(), n,
       /*accumulate=*/false, pool);
}

void MatmulTransA(const Tensor& a, const Tensor& b, Tensor& out,
                  ThreadPool* pool) {
  NIID_CHECK_EQ(a.rank(), 2);
  NIID_CHECK_EQ(b.rank(), 2);
  const int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  NIID_CHECK_EQ(b.dim(0), k);
  PrepareOutput(out, m, n);
  Gemm(m, n, k, {a.data(), m, true}, {b.data(), n, false}, out.data(), n,
       /*accumulate=*/false, pool);
}

void MatmulTransB(const Tensor& a, const Tensor& b, Tensor& out,
                  ThreadPool* pool) {
  NIID_CHECK_EQ(a.rank(), 2);
  NIID_CHECK_EQ(b.rank(), 2);
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  NIID_CHECK_EQ(b.dim(1), k);
  PrepareOutput(out, m, n);
  Gemm(m, n, k, {a.data(), k, false}, {b.data(), k, true}, out.data(), n,
       /*accumulate=*/false, pool);
}

void MatmulReference(const Tensor& a, const Tensor& b, Tensor& out) {
  NIID_CHECK_EQ(a.rank(), 2);
  NIID_CHECK_EQ(b.rank(), 2);
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  NIID_CHECK_EQ(b.dim(0), k);
  PrepareOutput(out, m, n);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.f;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc = std::fma(a.data()[i * k + kk], b.data()[kk * n + j], acc);
      }
      out.data()[i * n + j] = acc;
    }
  }
}

void MatmulTransAReference(const Tensor& a, const Tensor& b, Tensor& out) {
  NIID_CHECK_EQ(a.rank(), 2);
  NIID_CHECK_EQ(b.rank(), 2);
  const int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  NIID_CHECK_EQ(b.dim(0), k);
  PrepareOutput(out, m, n);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.f;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc = std::fma(a.data()[kk * m + i], b.data()[kk * n + j], acc);
      }
      out.data()[i * n + j] = acc;
    }
  }
}

void MatmulTransBReference(const Tensor& a, const Tensor& b, Tensor& out) {
  NIID_CHECK_EQ(a.rank(), 2);
  NIID_CHECK_EQ(b.rank(), 2);
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  NIID_CHECK_EQ(b.dim(1), k);
  PrepareOutput(out, m, n);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.f;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc = std::fma(a.data()[i * k + kk], b.data()[j * k + kk], acc);
      }
      out.data()[i * n + j] = acc;
    }
  }
}

void AddRowBias(Tensor& matrix, const Tensor& bias, ThreadPool* pool) {
  NIID_CHECK_EQ(matrix.rank(), 2);
  const int64_t m = matrix.dim(0), n = matrix.dim(1);
  NIID_CHECK_EQ(bias.numel(), n);
  float* pm = matrix.data();
  const float* pb = bias.data();
  const auto add_row = [&](int64_t i) {
    float* row = pm + i * n;
    for (int64_t j = 0; j < n; ++j) row[j] += pb[j];
  };
  if (pool != nullptr && m * n >= kRowOpParallelThreshold) {
    ParallelFor(pool, m, add_row);
  } else {
    for (int64_t i = 0; i < m; ++i) add_row(i);
  }
}

void SumRows(const Tensor& matrix, Tensor& out, ThreadPool* pool) {
  NIID_CHECK_EQ(matrix.rank(), 2);
  const int64_t m = matrix.dim(0), n = matrix.dim(1);
  if (out.rank() != 1 || out.numel() != n) out.Resize({n});
  const float* pm = matrix.data();
  float* po = out.data();
  if (pool != nullptr && m * n >= kRowOpParallelThreshold) {
    // Chunk columns across workers; each column accumulates its rows in
    // increasing row order, the same per-element addition sequence as the
    // serial path, so the result is bit-identical for any thread count.
    ParallelFor(pool, n, [&](int64_t j) {
      float acc = 0.f;
      for (int64_t i = 0; i < m; ++i) acc += pm[i * n + j];
      po[j] = acc;
    });
    return;
  }
  out.Fill(0.f);
  for (int64_t i = 0; i < m; ++i) {
    const float* row = pm + i * n;
    for (int64_t j = 0; j < n; ++j) po[j] += row[j];
  }
}

int ConvOutputSize(int input, int kernel, int stride, int padding) {
  return (input + 2 * padding - kernel) / stride + 1;
}

void Im2Col(const Tensor& input, int kernel, int stride, int padding,
            Tensor& columns, ThreadPool* pool) {
  NIID_CHECK_EQ(input.rank(), 4);
  const int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                w = input.dim(3);
  const int out_h = ConvOutputSize(static_cast<int>(h), kernel, stride,
                                   padding);
  const int out_w = ConvOutputSize(static_cast<int>(w), kernel, stride,
                                   padding);
  NIID_CHECK_GT(out_h, 0);
  NIID_CHECK_GT(out_w, 0);
  const int64_t rows = n * out_h * out_w;
  const int64_t cols = c * kernel * kernel;
  if (columns.rank() != 2 || columns.dim(0) != rows ||
      columns.dim(1) != cols) {
    columns.Resize({rows, cols});
  }
  const float* src = input.data();
  float* dst = columns.data();
  // Each image owns a disjoint row range of `columns`, so images gather in
  // parallel without synchronisation.
  ParallelFor(pool, n, [&](int64_t img) {
    for (int oy = 0; oy < out_h; ++oy) {
      for (int ox = 0; ox < out_w; ++ox) {
        float* row = dst + ((img * out_h + oy) * out_w + ox) * cols;
        int64_t idx = 0;
        for (int64_t ch = 0; ch < c; ++ch) {
          const float* plane = src + (img * c + ch) * h * w;
          for (int ky = 0; ky < kernel; ++ky) {
            const int iy = oy * stride - padding + ky;
            if (iy < 0 || iy >= h) {
              for (int kx = 0; kx < kernel; ++kx) row[idx++] = 0.f;
              continue;
            }
            const float* line = plane + iy * w;
            for (int kx = 0; kx < kernel; ++kx) {
              const int ix = ox * stride - padding + kx;
              row[idx++] = (ix < 0 || ix >= w) ? 0.f : line[ix];
            }
          }
        }
      }
    }
  });
}

void Col2Im(const Tensor& columns, int n, int c, int h, int w, int kernel,
            int stride, int padding, Tensor& grad_input, ThreadPool* pool) {
  const int out_h = ConvOutputSize(h, kernel, stride, padding);
  const int out_w = ConvOutputSize(w, kernel, stride, padding);
  const int64_t cols = static_cast<int64_t>(c) * kernel * kernel;
  NIID_CHECK_EQ(columns.rank(), 2);
  NIID_CHECK_EQ(columns.dim(0), static_cast<int64_t>(n) * out_h * out_w);
  NIID_CHECK_EQ(columns.dim(1), cols);
  if (grad_input.rank() != 4 || grad_input.dim(0) != n ||
      grad_input.dim(1) != c || grad_input.dim(2) != h ||
      grad_input.dim(3) != w) {
    grad_input.Resize({n, c, h, w});
  }
  grad_input.Fill(0.f);
  const float* src = columns.data();
  float* dst = grad_input.data();
  // Each image scatters only into its own [c, h, w] planes.
  ParallelFor(pool, n, [&](int64_t img) {
    for (int oy = 0; oy < out_h; ++oy) {
      for (int ox = 0; ox < out_w; ++ox) {
        const float* row = src + ((img * out_h + oy) * out_w + ox) * cols;
        int64_t idx = 0;
        for (int64_t ch = 0; ch < c; ++ch) {
          float* plane = dst + (img * c + ch) * h * w;
          for (int ky = 0; ky < kernel; ++ky) {
            const int iy = oy * stride - padding + ky;
            if (iy < 0 || iy >= h) {
              idx += kernel;
              continue;
            }
            float* line = plane + iy * w;
            for (int kx = 0; kx < kernel; ++kx) {
              const int ix = ox * stride - padding + kx;
              if (ix >= 0 && ix < w) line[ix] += row[idx];
              ++idx;
            }
          }
        }
      }
    }
  });
}

// NIID_HOT
void Im2ColTransposed(const Tensor& input, int kernel, int stride, int padding,
                      Tensor& columns_t, ThreadPool* pool) {
  NIID_CHECK_EQ(input.rank(), 4);
  const int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                w = input.dim(3);
  const int out_h =
      ConvOutputSize(static_cast<int>(h), kernel, stride, padding);
  const int out_w =
      ConvOutputSize(static_cast<int>(w), kernel, stride, padding);
  NIID_CHECK_GT(out_h, 0);
  NIID_CHECK_GT(out_w, 0);
  const int64_t spatial = static_cast<int64_t>(out_h) * out_w;
  const int64_t total = n * spatial;
  const int64_t rows = c * kernel * kernel;
  if (columns_t.rank() != 2 || columns_t.dim(0) != rows ||
      columns_t.dim(1) != total) {
    columns_t.Resize({rows, total});
  }
  const float* src = input.data();
  float* dst = columns_t.data();
  // Each task owns whole rows of columns_t, so rows build in parallel
  // without synchronisation.
  ParallelFor(pool, rows, [&](int64_t e) {
    const int64_t ch = e / (kernel * kernel);
    const int ky = static_cast<int>((e / kernel) % kernel);
    const int kx = static_cast<int>(e % kernel);
    for (int64_t img = 0; img < n; ++img) {
      const float* plane = src + (img * c + ch) * h * w;
      float* row = dst + e * total + img * spatial;
      for (int oy = 0; oy < out_h; ++oy) {
        const int iy = oy * stride - padding + ky;
        float* out = row + static_cast<int64_t>(oy) * out_w;
        if (iy < 0 || iy >= h) {
          KernelFill(out_w, 0.f, out);
          continue;
        }
        const float* line = plane + static_cast<int64_t>(iy) * w;
        if (stride == 1) {
          // ix = ox + kx - padding: one contiguous input run, zero-padded
          // at the clipped edges.
          const int ox0 = std::max(0, padding - kx);
          const int ox1 = std::min(out_w, static_cast<int>(w) - kx + padding);
          for (int ox = 0; ox < ox0; ++ox) out[ox] = 0.f;
          if (ox1 > ox0) {
            std::memcpy(out + ox0, line + ox0 + kx - padding,
                        sizeof(float) * (ox1 - ox0));
          }
          for (int ox = std::max(ox0, ox1); ox < out_w; ++ox) out[ox] = 0.f;
        } else {
          for (int ox = 0; ox < out_w; ++ox) {
            const int ix = ox * stride - padding + kx;
            out[ox] = (ix < 0 || ix >= w) ? 0.f : line[ix];
          }
        }
      }
    }
  });
}

// NIID_HOT
void Col2ImTransposed(const Tensor& columns_t, int n, int c, int h, int w,
                      int kernel, int stride, int padding, Tensor& grad_input,
                      ThreadPool* pool) {
  const int out_h = ConvOutputSize(h, kernel, stride, padding);
  const int out_w = ConvOutputSize(w, kernel, stride, padding);
  const int64_t spatial = static_cast<int64_t>(out_h) * out_w;
  const int64_t total = static_cast<int64_t>(n) * spatial;
  const int64_t rows = static_cast<int64_t>(c) * kernel * kernel;
  NIID_CHECK_EQ(columns_t.rank(), 2);
  NIID_CHECK_EQ(columns_t.dim(0), rows);
  NIID_CHECK_EQ(columns_t.dim(1), total);
  if (grad_input.rank() != 4 || grad_input.dim(0) != n ||
      grad_input.dim(1) != c || grad_input.dim(2) != h ||
      grad_input.dim(3) != w) {
    grad_input.Resize({n, c, h, w});
  }
  grad_input.Fill(0.f);
  const float* src = columns_t.data();
  float* dst = grad_input.data();
  // Each image accumulates only into its own [c, h, w] planes, in fixed
  // (ch, ky, kx, oy, ox) order regardless of thread count. KernelAxpy with
  // alpha == 1 is an exact x + y per element, so the vectorized stride-1
  // path adds the same bits a scalar += would.
  ParallelFor(pool, n, [&](int64_t img) {
    for (int64_t e = 0; e < rows; ++e) {
      const int64_t ch = e / (kernel * kernel);
      const int ky = static_cast<int>((e / kernel) % kernel);
      const int kx = static_cast<int>(e % kernel);
      const float* row = src + e * total + img * spatial;
      float* plane = dst + (img * c + ch) * h * w;
      for (int oy = 0; oy < out_h; ++oy) {
        const int iy = oy * stride - padding + ky;
        if (iy < 0 || iy >= h) continue;
        const float* in = row + static_cast<int64_t>(oy) * out_w;
        float* line = plane + static_cast<int64_t>(iy) * w;
        if (stride == 1) {
          const int ox0 = std::max(0, padding - kx);
          const int ox1 = std::min(out_w, w - kx + padding);
          if (ox1 > ox0) {
            KernelAxpy(ox1 - ox0, 1.f, in + ox0, line + ox0 + kx - padding);
          }
        } else {
          for (int ox = 0; ox < out_w; ++ox) {
            const int ix = ox * stride - padding + kx;
            if (ix >= 0 && ix < w) line[ix] += in[ox];
          }
        }
      }
    }
  });
}

void SoftmaxRows(Tensor& logits) {
  NIID_CHECK_EQ(logits.rank(), 2);
  const int64_t m = logits.dim(0), n = logits.dim(1);
  float* p = logits.data();
  for (int64_t i = 0; i < m; ++i) {
    float* row = p + i * n;
    float max_v = row[0];
    for (int64_t j = 1; j < n; ++j) max_v = std::max(max_v, row[j]);
    float sum = 0.f;
    for (int64_t j = 0; j < n; ++j) {
      row[j] = std::exp(row[j] - max_v);
      sum += row[j];
    }
    const float inv = 1.f / sum;
    for (int64_t j = 0; j < n; ++j) row[j] *= inv;
  }
}

std::vector<int> ArgmaxRows(const Tensor& matrix) {
  NIID_CHECK_EQ(matrix.rank(), 2);
  const int64_t m = matrix.dim(0), n = matrix.dim(1);
  std::vector<int> result(m);
  const float* p = matrix.data();
  for (int64_t i = 0; i < m; ++i) {
    const float* row = p + i * n;
    int best = 0;
    for (int64_t j = 1; j < n; ++j) {
      if (row[j] > row[best]) best = static_cast<int>(j);
    }
    result[i] = best;
  }
  return result;
}

}  // namespace niid
