#ifndef NIID_TENSOR_OPS_H_
#define NIID_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace niid {

/// out = a @ b for rank-2 tensors: [m, k] x [k, n] -> [m, n].
/// `out` is overwritten (and reshaped if necessary).
void Matmul(const Tensor& a, const Tensor& b, Tensor& out);

/// out = a^T @ b: [k, m]^T x [k, n] -> [m, n].
void MatmulTransA(const Tensor& a, const Tensor& b, Tensor& out);

/// out = a @ b^T: [m, k] x [n, k]^T -> [m, n].
void MatmulTransB(const Tensor& a, const Tensor& b, Tensor& out);

/// Adds bias (length n) to every row of a rank-2 tensor [m, n].
void AddRowBias(Tensor& matrix, const Tensor& bias);

/// Sums the rows of [m, n] into `out` (length n) — the bias gradient.
void SumRows(const Tensor& matrix, Tensor& out);

/// im2col for NCHW images with square kernel/stride/padding.
/// input: [N, C, H, W] -> columns: [N * out_h * out_w, C * kh * kw].
/// Each output row is the receptive field of one output pixel, so convolution
/// becomes a single matmul with the [C*kh*kw, out_c] weight matrix.
void Im2Col(const Tensor& input, int kernel, int stride, int padding,
            Tensor& columns);

/// Inverse scatter of Im2Col: accumulates column gradients back into
/// an image-gradient tensor of shape [N, C, H, W] (zeroed by this call).
void Col2Im(const Tensor& columns, int n, int c, int h, int w, int kernel,
            int stride, int padding, Tensor& grad_input);

/// Returns the spatial output size for a conv/pool dimension.
int ConvOutputSize(int input, int kernel, int stride, int padding);

/// Row-wise softmax in place on a rank-2 tensor (numerically stable).
void SoftmaxRows(Tensor& logits);

/// Returns the argmax of each row of a rank-2 tensor.
std::vector<int> ArgmaxRows(const Tensor& matrix);

}  // namespace niid

#endif  // NIID_TENSOR_OPS_H_
