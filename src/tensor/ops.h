#ifndef NIID_TENSOR_OPS_H_
#define NIID_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace niid {

class ThreadPool;

/// out = a @ b for rank-2 tensors: [m, k] x [k, n] -> [m, n].
/// `out` is overwritten (and reshaped if necessary). All three matmul
/// variants run on the blocked/packed GEMM engine (tensor/gemm.h); `pool`
/// parallelises over row blocks of the output and may be null (serial).
/// Results are bit-identical for every thread count.
void Matmul(const Tensor& a, const Tensor& b, Tensor& out,
            ThreadPool* pool = nullptr);

/// out = a^T @ b: [k, m]^T x [k, n] -> [m, n].
void MatmulTransA(const Tensor& a, const Tensor& b, Tensor& out,
                  ThreadPool* pool = nullptr);

/// out = a @ b^T: [m, k] x [n, k]^T -> [m, n].
void MatmulTransB(const Tensor& a, const Tensor& b, Tensor& out,
                  ThreadPool* pool = nullptr);

/// Scalar reference implementations of the three matmul variants: one
/// std::fma per (element, k) in strictly increasing k order — the exact
/// accumulation contract the blocked engine implements. The engine must
/// produce bit-identical results to these oracles (see tests/gemm_test.cc);
/// they are retained purely for verification and benchmarking baselines.
void MatmulReference(const Tensor& a, const Tensor& b, Tensor& out);
void MatmulTransAReference(const Tensor& a, const Tensor& b, Tensor& out);
void MatmulTransBReference(const Tensor& a, const Tensor& b, Tensor& out);

/// Adds bias (length n) to every row of a rank-2 tensor [m, n]. With a pool,
/// rows are processed in parallel (disjoint writes, order-independent).
void AddRowBias(Tensor& matrix, const Tensor& bias, ThreadPool* pool = nullptr);

/// Sums the rows of [m, n] into `out` (length n) — the bias gradient. With a
/// pool, columns are chunked across workers; each column still accumulates
/// its rows in increasing row order, so the result is bit-identical to the
/// serial path.
void SumRows(const Tensor& matrix, Tensor& out, ThreadPool* pool = nullptr);

/// im2col for NCHW images with square kernel/stride/padding.
/// input: [N, C, H, W] -> columns: [N * out_h * out_w, C * kh * kw].
/// Each output row is the receptive field of one output pixel, so convolution
/// becomes a single matmul with the [C*kh*kw, out_c] weight matrix. Images
/// are gathered in parallel when a pool is supplied (disjoint row ranges).
void Im2Col(const Tensor& input, int kernel, int stride, int padding,
            Tensor& columns, ThreadPool* pool = nullptr);

/// Inverse scatter of Im2Col: accumulates column gradients back into
/// an image-gradient tensor of shape [N, C, H, W] (zeroed by this call).
/// Images scatter in parallel when a pool is supplied (disjoint planes).
void Col2Im(const Tensor& columns, int n, int c, int h, int w, int kernel,
            int stride, int padding, Tensor& grad_input,
            ThreadPool* pool = nullptr);

/// Transposed im2col: input [N, C, H, W] -> columns_t
/// [C * kh * kw, N * out_h * out_w]. Row e = (ch, ky, kx) holds, for every
/// output pixel, the input value under kernel tap (ky, kx) — i.e. the
/// transpose of `Im2Col`'s layout with the batch folded into the column
/// dimension. This is the GEMM-friendly orientation for the fused
/// conv-forward/backward paths (DESIGN.md §12): for stride 1 each
/// (row, image, oy) span is a contiguous memcpy of an input line instead of
/// a gather. Rows are built in parallel when a pool is supplied (each task
/// owns whole rows).
void Im2ColTransposed(const Tensor& input, int kernel, int stride, int padding,
                      Tensor& columns_t, ThreadPool* pool = nullptr);

/// Inverse of `Im2ColTransposed`: accumulates a [C*kh*kw, N*out_h*out_w]
/// column-gradient matrix back into grad_input [N, C, H, W] (zeroed by this
/// call). Each image accumulates its taps in fixed (ch, ky, kx, oy, ox)
/// order — independent of thread count — with contiguous vectorized adds in
/// the stride-1 case. Images scatter in parallel (disjoint planes).
void Col2ImTransposed(const Tensor& columns_t, int n, int c, int h, int w,
                      int kernel, int stride, int padding, Tensor& grad_input,
                      ThreadPool* pool = nullptr);

/// Returns the spatial output size for a conv/pool dimension.
int ConvOutputSize(int input, int kernel, int stride, int padding);

/// Row-wise softmax in place on a rank-2 tensor (numerically stable).
void SoftmaxRows(Tensor& logits);

/// Returns the argmax of each row of a rank-2 tensor.
std::vector<int> ArgmaxRows(const Tensor& matrix);

}  // namespace niid

#endif  // NIID_TENSOR_OPS_H_
