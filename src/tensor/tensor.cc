#include "tensor/tensor.h"

#include <atomic>
#include <cmath>
#include <sstream>

#include "tensor/kernels.h"

namespace niid {
namespace {

// Counts float-buffer growths across all Tensors; see AllocationCount().
std::atomic<int64_t> tensor_allocations{0};

void NoteAllocation() {
  tensor_allocations.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

int64_t NumElements(const std::vector<int64_t>& shape) {
  if (shape.empty()) return 0;
  int64_t n = 1;
  for (int64_t d : shape) {
    NIID_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

int64_t Tensor::AllocationCount() {
  return tensor_allocations.load(std::memory_order_relaxed);
}

Tensor::Tensor(std::vector<int64_t> shape)
    : shape_(std::move(shape)),
      data_(static_cast<size_t>(NumElements(shape_)), 0.f) {
  if (!data_.empty()) NoteAllocation();
}

Tensor::Tensor(const Tensor& other) : shape_(other.shape_), data_(other.data_) {
  if (!data_.empty()) NoteAllocation();
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  if (other.data_.size() > data_.capacity()) NoteAllocation();
  shape_ = other.shape_;  // vector assignment reuses capacity when possible
  data_ = other.data_;
  return *this;
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Zeros(std::vector<int64_t> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::Ones(std::vector<int64_t> shape) {
  return Full(std::move(shape), 1.f);
}

Tensor Tensor::Randn(std::vector<int64_t> shape, Rng& rng, float mean,
                     float stddev) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) {
    v = static_cast<float>(rng.Normal(mean, stddev));
  }
  return t;
}

Tensor Tensor::Uniform(std::vector<int64_t> shape, Rng& rng, float lo,
                       float hi) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) {
    v = static_cast<float>(rng.Uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::FromVector(std::vector<int64_t> shape,
                          std::vector<float> values) {
  NIID_CHECK_EQ(NumElements(shape), static_cast<int64_t>(values.size()));
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = std::move(values);
  return t;
}

void Tensor::Resize(const std::vector<int64_t>& new_shape) {
  const int64_t n = NumElements(new_shape);
  if (static_cast<size_t>(n) > data_.capacity()) NoteAllocation();
  shape_.assign(new_shape.begin(), new_shape.end());
  data_.resize(static_cast<size_t>(n));
}

int64_t Tensor::dim(int d) const {
  if (d < 0) d += rank();
  NIID_CHECK_GE(d, 0);
  NIID_CHECK_LT(d, rank());
  return shape_[d];
}

Tensor Tensor::Reshape(std::vector<int64_t> new_shape) const {
  NIID_CHECK_EQ(NumElements(new_shape), numel())
      << "cannot reshape " << ShapeString();
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  if (!t.data_.empty()) NoteAllocation();
  return t;
}

void Tensor::Fill(float value) {
  KernelFill(numel(), value, data());
}

void Tensor::SetRow(int64_t i, const float* row) {
  NIID_CHECK_EQ(rank(), 2);
  NIID_CHECK_LT(i, shape_[0]);
  const int64_t width = shape_[1];
  for (int64_t j = 0; j < width; ++j) data_[i * width + j] = row[j];
}

std::vector<float> Tensor::Row(int64_t i) const {
  NIID_CHECK_EQ(rank(), 2);
  NIID_CHECK_LT(i, shape_[0]);
  const int64_t width = shape_[1];
  return std::vector<float>(data_.begin() + i * width,
                            data_.begin() + (i + 1) * width);
}

void Tensor::Add(const Tensor& other) {
  NIID_CHECK_EQ(numel(), other.numel());
  // fma(1, x, y) rounds once to x + y, so Axpy with alpha = 1 is exact +=.
  KernelAxpy(numel(), 1.f, other.data(), data());
}

void Tensor::Sub(const Tensor& other) {
  NIID_CHECK_EQ(numel(), other.numel());
  KernelSub(numel(), data(), other.data(), data());
}

void Tensor::Scale(float factor) {
  KernelScale(numel(), factor, data());
}

void Tensor::Axpy(float alpha, const Tensor& x) {
  NIID_CHECK_EQ(numel(), x.numel());
  KernelAxpy(numel(), alpha, x.data(), data());
}

double Tensor::Sum() const {
  return KernelSum(numel(), data());
}

double Tensor::Norm() const {
  double sum = 0.0, sum_sq = 0.0;
  KernelSumSq(numel(), data(), &sum, &sum_sq);
  return std::sqrt(sum_sq);
}

std::string Tensor::ShapeString() const {
  std::ostringstream out;
  out << "[";
  for (int i = 0; i < rank(); ++i) {
    if (i > 0) out << ", ";
    out << shape_[i];
  }
  out << "]";
  return out.str();
}

}  // namespace niid
