#ifndef NIID_TENSOR_TENSOR_H_
#define NIID_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace niid {

/// Dense, contiguous, row-major float32 tensor with value semantics.
///
/// This is the numeric substrate for the whole benchmark: model parameters,
/// activations and dataset storage are all Tensors. It deliberately supports
/// only what the benchmark needs — contiguous storage, a handful of factory
/// functions and shape manipulation; the math lives in tensor/ops.h and the
/// layer implementations.
class Tensor {
 public:
  /// Creates an empty (0-element, rank-0) tensor.
  Tensor() = default;

  /// Creates a zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<int64_t> shape);
  Tensor(std::initializer_list<int64_t> shape)
      : Tensor(std::vector<int64_t>(shape)) {}

  // Copies are written out by hand (instead of defaulted) so buffer growth
  // can feed the allocation counter below; moves never allocate.
  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&& other) noexcept = default;
  Tensor& operator=(Tensor&& other) noexcept = default;

  /// Factory: tensor of the given shape filled with `value`.
  static Tensor Full(std::vector<int64_t> shape, float value);
  /// Factory: zeros / ones.
  static Tensor Zeros(std::vector<int64_t> shape);
  static Tensor Ones(std::vector<int64_t> shape);
  /// Factory: i.i.d. N(mean, stddev) entries drawn from `rng`.
  static Tensor Randn(std::vector<int64_t> shape, Rng& rng, float mean = 0.f,
                      float stddev = 1.f);
  /// Factory: i.i.d. U[lo, hi) entries drawn from `rng`.
  static Tensor Uniform(std::vector<int64_t> shape, Rng& rng, float lo,
                        float hi);
  /// Factory: wraps an explicit value list (shape must match the size).
  static Tensor FromVector(std::vector<int64_t> shape,
                           std::vector<float> values);

  const std::vector<int64_t>& shape() const { return shape_; }
  int rank() const { return static_cast<int>(shape_.size()); }
  /// Size of dimension `d` (supports negative d counting from the back).
  int64_t dim(int d) const;
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& storage() { return data_; }
  const std::vector<float>& storage() const { return data_; }

  /// Flat element access with debug-mode bounds checking.
  float& operator[](int64_t i) {
    NIID_DCHECK_LT(i, numel());
    return data_[i];
  }
  float operator[](int64_t i) const {
    NIID_DCHECK_LT(i, numel());
    return data_[i];
  }

  /// 2-D access (requires rank 2).
  float& at(int64_t i, int64_t j) {
    NIID_DCHECK_EQ(rank(), 2);
    NIID_DCHECK_LT(i, shape_[0]);
    NIID_DCHECK_LT(j, shape_[1]);
    return data_[i * shape_[1] + j];
  }
  float at(int64_t i, int64_t j) const {
    return const_cast<Tensor*>(this)->at(i, j);
  }

  /// 4-D access (requires rank 4; layout [N, C, H, W]).
  float& at(int64_t n, int64_t c, int64_t h, int64_t w) {
    NIID_DCHECK_EQ(rank(), 4);
    return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
  }
  float at(int64_t n, int64_t c, int64_t h, int64_t w) const {
    return const_cast<Tensor*>(this)->at(n, c, h, w);
  }

  /// Returns a tensor with the same data and a new shape (numel must match).
  Tensor Reshape(std::vector<int64_t> new_shape) const;

  /// Reshapes in place, reusing the existing buffer whenever its capacity
  /// suffices — the zero-allocation workhorse for per-layer scratch that
  /// oscillates between full and partial batch shapes. Growing beyond
  /// capacity reallocates (counted); elements beyond the old numel are
  /// zero-initialized, existing elements are preserved.
  void Resize(const std::vector<int64_t>& new_shape);

  /// Number of float-buffer growths since process start, across all Tensors.
  /// The zero-allocation regression test asserts this stays flat across
  /// steady-state training steps; always compiled (one relaxed atomic
  /// increment per growth, which is by design rare).
  static int64_t AllocationCount();

  /// Sets every element to `value`.
  void Fill(float value);

  /// Copies `row` (length = dim(1)) into row `i` of a rank-2 tensor.
  void SetRow(int64_t i, const float* row);
  /// Returns a copy of row `i` of a rank-2 tensor.
  std::vector<float> Row(int64_t i) const;

  /// Element-wise in-place operations.
  void Add(const Tensor& other);              ///< this += other
  void Sub(const Tensor& other);              ///< this -= other
  void Scale(float factor);                   ///< this *= factor
  void Axpy(float alpha, const Tensor& x);    ///< this += alpha * x

  /// Sum of all elements.
  double Sum() const;
  /// L2 norm of all elements.
  double Norm() const;

  /// Human-readable shape, e.g. "[64, 1, 28, 28]".
  std::string ShapeString() const;

  friend bool operator==(const Tensor& a, const Tensor& b) {
    return a.shape_ == b.shape_ && a.data_ == b.data_;
  }

 private:
  std::vector<int64_t> shape_;
  std::vector<float> data_;
};

/// Returns the product of `shape`'s entries (0 for rank-0).
int64_t NumElements(const std::vector<int64_t>& shape);

/// Allocation-free shape predicates for hot-path "does the scratch already
/// have this shape?" checks (comparing against a braced std::vector would
/// heap-allocate the temporary every step).
inline bool ShapeIs(const Tensor& t, int64_t d0) {
  return t.rank() == 1 && t.shape()[0] == d0;
}
inline bool ShapeIs(const Tensor& t, int64_t d0, int64_t d1) {
  return t.rank() == 2 && t.shape()[0] == d0 && t.shape()[1] == d1;
}
inline bool ShapeIs(const Tensor& t, int64_t d0, int64_t d1, int64_t d2,
                    int64_t d3) {
  return t.rank() == 4 && t.shape()[0] == d0 && t.shape()[1] == d1 &&
         t.shape()[2] == d2 && t.shape()[3] == d3;
}

}  // namespace niid

#endif  // NIID_TENSOR_TENSOR_H_
