#ifndef NIID_UTIL_CHECK_H_
#define NIID_UTIL_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

// Invariant-checking macros in the spirit of glog's CHECK family.
//
// Library code in this project does not throw exceptions; violated invariants
// are programming errors and abort with a diagnostic. Recoverable conditions
// (e.g. a missing file) are reported through util::Status instead.

namespace niid::internal {

/// Collects a failure message and aborts in its destructor. Streaming into the
/// object appends to the message, mirroring the glog idiom:
///   NIID_CHECK(x > 0) << "x was " << x;
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition
            << " ";
  }

  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << "\n";  // cerr is unit-buffered; no flush
    std::abort();
  }

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace niid::internal

#define NIID_CHECK(condition)                                             \
  if (condition) {                                                        \
  } else                                                                  \
    ::niid::internal::CheckFailure(__FILE__, __LINE__, #condition)

#define NIID_CHECK_BINOP(a, b, op)                                        \
  if ((a)op(b)) {                                                         \
  } else                                                                  \
    ::niid::internal::CheckFailure(__FILE__, __LINE__, #a " " #op " " #b) \
        << "(" << (a) << " vs " << (b) << ") "

#define NIID_CHECK_EQ(a, b) NIID_CHECK_BINOP(a, b, ==)
#define NIID_CHECK_NE(a, b) NIID_CHECK_BINOP(a, b, !=)
#define NIID_CHECK_LT(a, b) NIID_CHECK_BINOP(a, b, <)
#define NIID_CHECK_LE(a, b) NIID_CHECK_BINOP(a, b, <=)
#define NIID_CHECK_GT(a, b) NIID_CHECK_BINOP(a, b, >)
#define NIID_CHECK_GE(a, b) NIID_CHECK_BINOP(a, b, >=)

// Checks that fire only in debug builds; used on hot paths (tensor indexing).
#ifdef NDEBUG
#define NIID_DCHECK(condition) NIID_CHECK(true)
#define NIID_DCHECK_EQ(a, b) NIID_CHECK(true)
#define NIID_DCHECK_LT(a, b) NIID_CHECK(true)
#define NIID_DCHECK_GE(a, b) NIID_CHECK(true)
#else
#define NIID_DCHECK(condition) NIID_CHECK(condition)
#define NIID_DCHECK_EQ(a, b) NIID_CHECK_EQ(a, b)
#define NIID_DCHECK_LT(a, b) NIID_CHECK_LT(a, b)
#define NIID_DCHECK_GE(a, b) NIID_CHECK_GE(a, b)
#endif

#endif  // NIID_UTIL_CHECK_H_
