#include "util/csv.h"

namespace niid {

std::string EscapeCsvCell(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string escaped = "\"";
  for (char c : cell) {
    if (c == '"') escaped += '"';
    escaped += c;
  }
  escaped += '"';
  return escaped;
}

CsvWriter::CsvWriter(const std::string& path) : out_(path) {}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << EscapeCsvCell(cells[i]);
  }
  out_ << '\n';
}

}  // namespace niid
