#ifndef NIID_UTIL_CSV_H_
#define NIID_UTIL_CSV_H_

#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace niid {

/// Writes rows to a CSV file. Cells containing commas, quotes or newlines are
/// quoted per RFC 4180. Used by the bench harness to dump training curves and
/// result tables for external plotting.
class CsvWriter {
 public:
  /// Opens `path` for writing, truncating any existing file. Check ok().
  explicit CsvWriter(const std::string& path);

  /// True if the file opened successfully.
  bool ok() const { return out_.good(); }

  /// Writes one row.
  void WriteRow(const std::vector<std::string>& cells);

  /// Convenience: header row then flush.
  void WriteHeader(const std::vector<std::string>& cells) { WriteRow(cells); }

  /// Flushes buffered output.
  void Flush() { out_.flush(); }

 private:
  std::ofstream out_;
};

/// Escapes one CSV cell per RFC 4180 (exposed for testing).
std::string EscapeCsvCell(const std::string& cell);

}  // namespace niid

#endif  // NIID_UTIL_CSV_H_
