#include "util/flags.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <climits>
#include <cstdlib>

namespace niid {

FlagParser::FlagParser(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const size_t eq = body.find('=');
    if (eq == std::string::npos) {
      values_[body] = "true";
    } else {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    }
  }
}

bool FlagParser::Has(const std::string& name) const {
  known_.insert(name);
  return values_.count(name) > 0;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value) const {
  known_.insert(name);
  const auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

int FlagParser::GetInt(const std::string& name, int default_value) const {
  const int64_t wide = GetInt64(name, default_value);
  if (wide < INT_MIN || wide > INT_MAX) {
    parse_errors_.push_back("--" + name + " is out of int range");
    return default_value;
  }
  return static_cast<int>(wide);
}

int64_t FlagParser::GetInt64(const std::string& name,
                             int64_t default_value) const {
  known_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(it->second.c_str(), &end, 10);
  if (it->second.empty() || end == nullptr || *end != '\0' || errno == ERANGE) {
    parse_errors_.push_back("--" + name + "=" + it->second +
                            " is not a valid integer");
    return default_value;
  }
  return static_cast<int64_t>(parsed);
}

double FlagParser::GetDouble(const std::string& name,
                             double default_value) const {
  known_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(it->second.c_str(), &end);
  if (it->second.empty() || end == nullptr || *end != '\0' || errno == ERANGE) {
    parse_errors_.push_back("--" + name + "=" + it->second +
                            " is not a valid number");
    return default_value;
  }
  return parsed;
}

double FlagParser::GetNonNegativeDouble(const std::string& name,
                                        double default_value) const {
  const double parsed = GetDouble(name, default_value);
  if (parsed < 0.0) {
    parse_errors_.push_back("--" + name + " must be >= 0");
    return default_value;
  }
  return parsed;
}

bool FlagParser::GetBool(const std::string& name, bool default_value) const {
  known_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  std::string v = it->second;
  std::transform(v.begin(), v.end(), v.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  parse_errors_.push_back("--" + name + "=" + it->second +
                          " is not a valid boolean");
  return default_value;
}

Status FlagParser::Validate(
    const std::vector<std::string>& extra_known) const {
  std::set<std::string> known = known_;
  known.insert(extra_known.begin(), extra_known.end());

  std::vector<std::string> problems = parse_errors_;
  for (const auto& [name, value] : values_) {
    if (known.count(name)) continue;
    problems.push_back("unknown flag --" + name);
  }
  if (problems.empty()) return Status::Ok();

  std::string message;
  for (const std::string& problem : problems) {
    if (!message.empty()) message += "; ";
    message += problem;
  }
  message += ". Valid flags:";
  for (const std::string& name : known) message += " --" + name;
  return Status::InvalidArgument(message);
}

std::vector<std::string> SplitCommaList(const std::string& value) {
  std::vector<std::string> items;
  std::string current;
  for (char c : value) {
    if (c == ',') {
      if (!current.empty()) items.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) items.push_back(current);
  return items;
}

}  // namespace niid
