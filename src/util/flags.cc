#include "util/flags.h"

#include <cstdlib>

namespace niid {

FlagParser::FlagParser(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const size_t eq = body.find('=');
    if (eq == std::string::npos) {
      values_[body] = "true";
    } else {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    }
  }
}

bool FlagParser::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value) const {
  const auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

int FlagParser::GetInt(const std::string& name, int default_value) const {
  const auto it = values_.find(name);
  return it == values_.end() ? default_value : std::atoi(it->second.c_str());
}

int64_t FlagParser::GetInt64(const std::string& name,
                             int64_t default_value) const {
  const auto it = values_.find(name);
  return it == values_.end() ? default_value : std::atoll(it->second.c_str());
}

double FlagParser::GetDouble(const std::string& name,
                             double default_value) const {
  const auto it = values_.find(name);
  return it == values_.end() ? default_value : std::atof(it->second.c_str());
}

bool FlagParser::GetBool(const std::string& name, bool default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::vector<std::string> SplitCommaList(const std::string& value) {
  std::vector<std::string> items;
  std::string current;
  for (char c : value) {
    if (c == ',') {
      if (!current.empty()) items.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) items.push_back(current);
  return items;
}

}  // namespace niid
