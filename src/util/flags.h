#ifndef NIID_UTIL_FLAGS_H_
#define NIID_UTIL_FLAGS_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/status.h"

namespace niid {

/// Minimal command-line flag parser for the bench and example binaries.
/// Accepts `--key=value` and bare `--key` (boolean true). Anything else is a
/// positional argument. No registration needed: callers query with defaults.
///
///   FlagParser flags(argc, argv);
///   int rounds = flags.GetInt("rounds", 20);
///   bool quick = flags.GetBool("quick", false);
///   if (Status s = flags.Validate(); !s.ok()) { ... }
///
/// Every Has/Get* call registers its flag name as known. After all queries,
/// Validate() rejects any flag the program never asked about (a typo like
/// --checkpoint_evry must not silently disable checkpointing) and any value
/// that failed numeric parsing, with an error listing the valid flags.
class FlagParser {
 public:
  FlagParser(int argc, char** argv);

  /// True if --name was passed at all.
  bool Has(const std::string& name) const;

  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int GetInt(const std::string& name, int default_value) const;
  int64_t GetInt64(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  /// GetDouble plus a range check: a negative value records a Validate()
  /// error and falls back to the default. For flags where a negative value
  /// is always a footgun (rates, norms, fractions) — e.g. a negative
  /// --max_update_norm would silently disable the update-norm gate.
  double GetNonNegativeDouble(const std::string& name,
                              double default_value) const;
  /// "--x", "--x=true", "--x=1" are true; "--x=false", "--x=0" are false.
  bool GetBool(const std::string& name, bool default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Rejects flags that were passed but never queried through Has/Get*, and
  /// values that failed to parse as their requested numeric type. Call after
  /// all flag queries. `extra_known` whitelists flags a program only queries
  /// later (e.g. an output path read after the run finishes).
  Status Validate(const std::vector<std::string>& extra_known = {}) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  /// Names queried so far — Has/Get* are logically const lookups, so the
  /// bookkeeping that powers Validate is mutable.
  mutable std::set<std::string> known_;
  mutable std::vector<std::string> parse_errors_;
};

/// Splits "a,b,c" into {"a","b","c"}; empty segments are dropped.
std::vector<std::string> SplitCommaList(const std::string& value);

}  // namespace niid

#endif  // NIID_UTIL_FLAGS_H_
