#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace niid {
namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kInfo};
std::mutex& LogMutex() {
  static std::mutex mutex;
  return mutex;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* basename = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') basename = p + 1;
  }
  stream_ << "[" << LevelTag(level) << " " << basename << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  const std::lock_guard<std::mutex> lock(LogMutex());
  std::ostream& out = (level_ >= LogLevel::kWarning) ? std::cerr : std::clog;
  out << stream_.str() << "\n";
  out.flush();
}

}  // namespace internal
}  // namespace niid
