#ifndef NIID_UTIL_LOGGING_H_
#define NIID_UTIL_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace niid {

/// Severity levels for the process-wide logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum severity that is emitted (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Buffers one log line and flushes it (with level tag and timestamp) on
/// destruction. Instantiate through the NIID_LOG macro, not directly.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Discards everything streamed into it; used for suppressed levels.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define NIID_LOG(level)                                          \
  if (::niid::LogLevel::level < ::niid::GetLogLevel()) {         \
  } else                                                         \
    ::niid::internal::LogMessage(::niid::LogLevel::level, __FILE__, __LINE__)

}  // namespace niid

#endif  // NIID_UTIL_LOGGING_H_
