#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace niid {
namespace {

// splitmix64: used to expand the user seed into xoshiro state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t DeriveStreamSeed(uint64_t seed, uint64_t stream) {
  // Two splitmix64 rounds over a golden-ratio combination of seed and
  // stream index; Rng's constructor expands the result further, so nearby
  // (seed, stream) pairs yield unrelated generators.
  uint64_t x = seed ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
  (void)SplitMix64(x);
  return SplitMix64(x);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  NIID_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller transform.
  double u1 = Uniform();
  while (u1 <= 0.0) u1 = Uniform();
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::Gamma(double shape) {
  NIID_CHECK_GT(shape, 0.0);
  // Marsaglia & Tsang (2000). For shape < 1 use the boost trick:
  // Gamma(a) = Gamma(a+1) * U^(1/a).
  if (shape < 1.0) {
    const double u = Uniform();
    return Gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = Normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = Uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

Rng Rng::Split() { return Rng(NextUint64()); }

RngState Rng::SaveState() const {
  RngState saved;
  for (int i = 0; i < 4; ++i) saved.state[i] = state_[i];
  saved.has_cached_normal = has_cached_normal_;
  saved.cached_normal = cached_normal_;
  return saved;
}

void Rng::RestoreState(const RngState& saved) {
  for (int i = 0; i < 4; ++i) state_[i] = saved.state[i];
  has_cached_normal_ = saved.has_cached_normal;
  cached_normal_ = saved.cached_normal;
}

}  // namespace niid
