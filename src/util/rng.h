#ifndef NIID_UTIL_RNG_H_
#define NIID_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace niid {

/// Snapshot of an Rng's full internal state. Captured by SaveState and
/// reinstalled by RestoreState so a generator can be checkpointed to disk and
/// resumed bit-identically (the cached Box–Muller half-draw is part of the
/// state: dropping it would desync every stream that had an odd number of
/// Normal() calls at checkpoint time).
struct RngState {
  uint64_t state[4] = {0, 0, 0, 0};
  bool has_cached_normal = false;
  double cached_normal = 0.0;
};

/// Derives the seed of the `stream`-th member of a seed family as a pure
/// function of (seed, stream) — unlike Rng::Split, which must advance the
/// parent, so deriving stream p costs O(p). The sparse party engine seeds
/// party p's private stream with DeriveStreamSeed(setup_seed, p): any
/// party's generator is reachable in O(1) without touching the others.
uint64_t DeriveStreamSeed(uint64_t seed, uint64_t stream);

/// Deterministic pseudo-random number generator (xoshiro256**) with explicit
/// seeding and cheap stream splitting.
///
/// Every stochastic component of the benchmark draws from an Rng passed in by
/// the caller, so experiments are bit-reproducible given a seed — including
/// multi-threaded runs, where each client receives a pre-split child stream.
/// std::mt19937 + std::normal_distribution is avoided because distribution
/// implementations differ across standard libraries.
class Rng {
 public:
  /// Seeds the generator. Any 64-bit value (including 0) is a valid seed; the
  /// state is expanded with splitmix64 so nearby seeds give unrelated streams.
  explicit Rng(uint64_t seed = 0);

  /// Returns the next raw 64-bit output.
  uint64_t NextUint64();

  /// Returns a uniform draw in [0, 1).
  double Uniform();

  /// Returns a uniform draw in [lo, hi).
  double Uniform(double lo, double hi);

  /// Returns a uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Returns a standard normal draw (Box–Muller; deterministic everywhere).
  double Normal();

  /// Returns a normal draw with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Returns a Gamma(shape, 1) draw (Marsaglia–Tsang). Requires shape > 0.
  double Gamma(double shape);

  /// Fisher–Yates shuffles `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(UniformInt(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// Derives an independent child generator. Each call advances this
  /// generator, so successive splits give distinct streams.
  Rng Split();

  /// Captures the full generator state for checkpointing.
  RngState SaveState() const;

  /// Reinstalls a state captured by SaveState; the next draws continue the
  /// saved stream exactly.
  void RestoreState(const RngState& saved);

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace niid

#endif  // NIID_UTIL_RNG_H_
