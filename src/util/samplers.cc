#include "util/samplers.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "util/check.h"

namespace niid {

std::vector<double> SampleDirichlet(Rng& rng, int dimension, double beta) {
  NIID_CHECK_GE(dimension, 1);
  NIID_CHECK_GT(beta, 0.0);
  return SampleDirichlet(rng, std::vector<double>(dimension, beta));
}

std::vector<double> SampleDirichlet(Rng& rng,
                                    const std::vector<double>& alpha) {
  NIID_CHECK_GE(alpha.size(), 1u);
  std::vector<double> draws(alpha.size());
  double sum = 0.0;
  for (size_t i = 0; i < alpha.size(); ++i) {
    NIID_CHECK_GT(alpha[i], 0.0);
    draws[i] = rng.Gamma(alpha[i]);
    sum += draws[i];
  }
  // All-zero draws are possible only with pathologically tiny alphas; fall
  // back to uniform rather than dividing by zero.
  if (sum <= 0.0) {
    std::fill(draws.begin(), draws.end(), 1.0 / alpha.size());
    return draws;
  }
  for (double& d : draws) d /= sum;
  return draws;
}

std::vector<int64_t> ProportionsToCounts(const std::vector<double>& proportions,
                                         int64_t total) {
  NIID_CHECK_GE(total, 0);
  const size_t n = proportions.size();
  NIID_CHECK_GE(n, 1u);
  std::vector<int64_t> counts(n, 0);
  std::vector<double> remainders(n, 0.0);
  int64_t assigned = 0;
  for (size_t i = 0; i < n; ++i) {
    const double exact = proportions[i] * static_cast<double>(total);
    counts[i] = static_cast<int64_t>(exact);
    remainders[i] = exact - static_cast<double>(counts[i]);
    assigned += counts[i];
  }
  // Largest-remainder correction for the leftover items.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return remainders[a] > remainders[b];
  });
  int64_t leftover = total - assigned;
  for (size_t i = 0; leftover > 0; i = (i + 1) % n, --leftover) {
    ++counts[order[i]];
  }
  return counts;
}

int SampleCategorical(Rng& rng, const std::vector<double>& probabilities) {
  NIID_CHECK_GE(probabilities.size(), 1u);
  const double u = rng.Uniform();
  double cumulative = 0.0;
  for (size_t i = 0; i < probabilities.size(); ++i) {
    cumulative += probabilities[i];
    if (u < cumulative) return static_cast<int>(i);
  }
  return static_cast<int>(probabilities.size()) - 1;
}

std::vector<int> SampleWithoutReplacement(Rng& rng, int n, int k) {
  NIID_CHECK_GE(k, 0);
  NIID_CHECK_LE(k, n);
  // Sparse partial Fisher–Yates: instead of materializing the n-entry pool
  // (an O(n) wall when sampling 100 parties out of 1M), track only the
  // entries the swaps displaced. The draw sequence — UniformInt(n - i) for
  // i in [0, k) — and the resulting sample are bit-identical to the dense
  // pool version at every (n, k); work and memory are O(k log k) / O(k).
  std::vector<int> sample(k);
  std::map<int, int> displaced;  // pool position -> current value
  for (int i = 0; i < k; ++i) {
    const int j = i + static_cast<int>(rng.UniformInt(n - i));
    const auto at_j = displaced.find(j);
    sample[i] = at_j == displaced.end() ? j : at_j->second;
    // The dense version swaps pool[i] into pool[j]. Position i is never
    // revisited (later draws land at positions > i), so only pool[j]'s new
    // value needs recording; pool[i]'s pre-swap value is i itself unless an
    // earlier swap already displaced it.
    const auto at_i = displaced.find(i);
    const int value_at_i = at_i == displaced.end() ? i : at_i->second;
    displaced[j] = value_at_i;
  }
  std::sort(sample.begin(), sample.end());
  return sample;
}

}  // namespace niid
