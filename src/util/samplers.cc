#include "util/samplers.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace niid {

std::vector<double> SampleDirichlet(Rng& rng, int dimension, double beta) {
  NIID_CHECK_GE(dimension, 1);
  NIID_CHECK_GT(beta, 0.0);
  return SampleDirichlet(rng, std::vector<double>(dimension, beta));
}

std::vector<double> SampleDirichlet(Rng& rng,
                                    const std::vector<double>& alpha) {
  NIID_CHECK_GE(alpha.size(), 1u);
  std::vector<double> draws(alpha.size());
  double sum = 0.0;
  for (size_t i = 0; i < alpha.size(); ++i) {
    NIID_CHECK_GT(alpha[i], 0.0);
    draws[i] = rng.Gamma(alpha[i]);
    sum += draws[i];
  }
  // All-zero draws are possible only with pathologically tiny alphas; fall
  // back to uniform rather than dividing by zero.
  if (sum <= 0.0) {
    std::fill(draws.begin(), draws.end(), 1.0 / alpha.size());
    return draws;
  }
  for (double& d : draws) d /= sum;
  return draws;
}

std::vector<int64_t> ProportionsToCounts(const std::vector<double>& proportions,
                                         int64_t total) {
  NIID_CHECK_GE(total, 0);
  const size_t n = proportions.size();
  NIID_CHECK_GE(n, 1u);
  std::vector<int64_t> counts(n, 0);
  std::vector<double> remainders(n, 0.0);
  int64_t assigned = 0;
  for (size_t i = 0; i < n; ++i) {
    const double exact = proportions[i] * static_cast<double>(total);
    counts[i] = static_cast<int64_t>(exact);
    remainders[i] = exact - static_cast<double>(counts[i]);
    assigned += counts[i];
  }
  // Largest-remainder correction for the leftover items.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return remainders[a] > remainders[b];
  });
  int64_t leftover = total - assigned;
  for (size_t i = 0; leftover > 0; i = (i + 1) % n, --leftover) {
    ++counts[order[i]];
  }
  return counts;
}

int SampleCategorical(Rng& rng, const std::vector<double>& probabilities) {
  NIID_CHECK_GE(probabilities.size(), 1u);
  const double u = rng.Uniform();
  double cumulative = 0.0;
  for (size_t i = 0; i < probabilities.size(); ++i) {
    cumulative += probabilities[i];
    if (u < cumulative) return static_cast<int>(i);
  }
  return static_cast<int>(probabilities.size()) - 1;
}

std::vector<int> SampleWithoutReplacement(Rng& rng, int n, int k) {
  NIID_CHECK_GE(k, 0);
  NIID_CHECK_LE(k, n);
  std::vector<int> pool(n);
  std::iota(pool.begin(), pool.end(), 0);
  // Partial Fisher–Yates: after k swaps the first k entries are the sample.
  for (int i = 0; i < k; ++i) {
    const int j = i + static_cast<int>(rng.UniformInt(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  std::sort(pool.begin(), pool.end());
  return pool;
}

}  // namespace niid
