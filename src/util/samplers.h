#ifndef NIID_UTIL_SAMPLERS_H_
#define NIID_UTIL_SAMPLERS_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace niid {

/// Draws a sample from a symmetric Dirichlet distribution Dir(beta) of the
/// given dimension. The result is a probability vector (sums to 1).
/// Requires beta > 0 and dimension >= 1.
std::vector<double> SampleDirichlet(Rng& rng, int dimension, double beta);

/// Draws a sample from a Dirichlet distribution with per-component
/// concentrations `alpha` (all > 0).
std::vector<double> SampleDirichlet(Rng& rng, const std::vector<double>& alpha);

/// Splits `total` items into proportions.size() integer counts that sum to
/// `total`, allocating round(total * p_i) with largest-remainder correction.
std::vector<int64_t> ProportionsToCounts(const std::vector<double>& proportions,
                                         int64_t total);

/// Samples one index from a discrete distribution given by `probabilities`
/// (which must sum to approximately 1).
int SampleCategorical(Rng& rng, const std::vector<double>& probabilities);

/// Returns `k` distinct indices uniformly sampled from [0, n) in sorted order.
/// Requires 0 <= k <= n.
std::vector<int> SampleWithoutReplacement(Rng& rng, int n, int k);

}  // namespace niid

#endif  // NIID_UTIL_SAMPLERS_H_
