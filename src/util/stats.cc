#include "util/stats.h"

#include <cmath>
#include <cstdio>

namespace niid {

void RunningStat::Add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStat::stddev() const {
  if (count_ <= 0) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(count_));
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  RunningStat stat;
  for (double v : values) stat.Add(v);
  return stat.stddev();
}

std::string FormatPercent(double fraction, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f%%", decimals, fraction * 100.0);
  return buffer;
}

std::string FormatAccuracy(const std::vector<double>& values) {
  return FormatPercent(Mean(values)) + "±" + FormatPercent(StdDev(values));
}

}  // namespace niid
