#ifndef NIID_UTIL_STATS_H_
#define NIID_UTIL_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace niid {

/// Accumulates a stream of values and reports mean / variance / extrema.
/// Uses Welford's online algorithm for numerical stability.
class RunningStat {
 public:
  void Add(double value);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Population standard deviation (divides by N). The paper reports the
  /// spread over three trials; population std matches numpy's default.
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Returns the arithmetic mean of `values` (0 for an empty vector).
double Mean(const std::vector<double>& values);

/// Returns the population standard deviation of `values`.
double StdDev(const std::vector<double>& values);

/// Formats mean±std the way the paper's Table 3 does, e.g. "68.2%±0.7%".
/// `values` are fractions in [0,1]; they are scaled to percentages.
std::string FormatAccuracy(const std::vector<double>& values);

/// Formats a single fraction as a percentage, e.g. "68.2%".
std::string FormatPercent(double fraction, int decimals = 1);

}  // namespace niid

#endif  // NIID_UTIL_STATS_H_
