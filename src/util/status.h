#ifndef NIID_UTIL_STATUS_H_
#define NIID_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "util/check.h"

namespace niid {

/// Error category for recoverable failures (I/O, malformed input, bad config).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kDataLoss,
  kInternal,
};

/// Lightweight absl::Status-alike. Library functions that can fail for
/// environmental reasons return Status / StatusOr<T> rather than throwing.
/// Class-level [[nodiscard]]: silently dropping any returned Status is a
/// compile warning (an error under -DNIID_WERROR=ON, as in CI), the static
/// side of the analyzer's discarded-status check.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value or an error Status.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(T value) : holder_(std::move(value)) {}          // NOLINT
  StatusOr(Status status) : holder_(std::move(status)) {    // NOLINT
    NIID_CHECK(!std::get<Status>(holder_).ok())
        << "StatusOr constructed from OK status";
  }

  bool ok() const { return std::holds_alternative<T>(holder_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(holder_);
  }

  /// Returns the contained value; aborts if this holds an error.
  T& value() & {
    NIID_CHECK(ok()) << status().ToString();
    return std::get<T>(holder_);
  }
  const T& value() const& {
    NIID_CHECK(ok()) << status().ToString();
    return std::get<T>(holder_);
  }
  T&& value() && {
    NIID_CHECK(ok()) << status().ToString();
    return std::get<T>(std::move(holder_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<Status, T> holder_;
};

}  // namespace niid

#endif  // NIID_UTIL_STATUS_H_
