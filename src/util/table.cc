#include "util/table.h"

#include <algorithm>

#include "util/check.h"

namespace niid {
namespace {

constexpr const char* kSeparatorMarker = "\x01sep";

// Display width in code points (cells contain UTF-8 like '±'); counting
// non-continuation bytes keeps columns aligned in a terminal.
size_t DisplayWidth(const std::string& s) {
  size_t width = 0;
  for (unsigned char c : s) {
    if ((c & 0xC0) != 0x80) ++width;
  }
  return width;
}

void PrintPadded(std::ostream& out, const std::string& s, size_t width) {
  out << s;
  for (size_t i = DisplayWidth(s); i < width; ++i) out << ' ';
}

}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  NIID_CHECK(!headers_.empty());
}

void Table::AddRow(std::vector<std::string> cells) {
  NIID_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::AddSeparator() {
  rows_.push_back({kSeparatorMarker});
}

void Table::Print(std::ostream& out) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = DisplayWidth(headers_[c]);
  }
  for (const auto& row : rows_) {
    if (row.size() == 1 && row[0] == kSeparatorMarker) continue;
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], DisplayWidth(row[c]));
    }
  }
  size_t total = 0;
  for (size_t w : widths) total += w + 3;

  auto print_rule = [&] {
    for (size_t i = 0; i + 1 < total; ++i) out << '-';
    out << "\n";
  };

  for (size_t c = 0; c < headers_.size(); ++c) {
    PrintPadded(out, headers_[c], widths[c]);
    out << " | ";
  }
  out << "\n";
  print_rule();
  for (const auto& row : rows_) {
    if (row.size() == 1 && row[0] == kSeparatorMarker) {
      print_rule();
      continue;
    }
    for (size_t c = 0; c < row.size(); ++c) {
      PrintPadded(out, row[c], widths[c]);
      out << " | ";
    }
    out << "\n";
  }
}

void Table::PrintMarkdown(std::ostream& out) const {
  out << "|";
  for (const auto& h : headers_) out << " " << h << " |";
  out << "\n|";
  for (size_t c = 0; c < headers_.size(); ++c) out << "---|";
  out << "\n";
  for (const auto& row : rows_) {
    if (row.size() == 1 && row[0] == kSeparatorMarker) continue;
    out << "|";
    for (const auto& cell : row) out << " " << cell << " |";
    out << "\n";
  }
}

}  // namespace niid
