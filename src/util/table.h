#ifndef NIID_UTIL_TABLE_H_
#define NIID_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace niid {

/// Builds and pretty-prints an aligned text table (used by the bench harness
/// to print rows in the same layout as the paper's tables).
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a row. The row must have exactly as many cells as headers.
  void AddRow(std::vector<std::string> cells);

  /// Appends a horizontal separator line.
  void AddSeparator();

  /// Renders the table with padded columns and a header rule.
  void Print(std::ostream& out) const;

  /// Renders the table as GitHub-flavoured markdown.
  void PrintMarkdown(std::ostream& out) const;

  int num_rows() const { return static_cast<int>(rows_.size()); }

 private:
  std::vector<std::string> headers_;
  // A row with the special marker cell "\x01sep" renders as a separator.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace niid

#endif  // NIID_UTIL_TABLE_H_
