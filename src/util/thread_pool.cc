#include "util/thread_pool.h"

#include <utility>

#include "util/check.h"

namespace niid {

ThreadPool::ThreadPool(int num_threads) {
  NIID_CHECK_GE(num_threads, 1);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    NIID_CHECK(!shutting_down_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, int64_t n,
                 const std::function<void(int64_t)>& body) {
  if (pool == nullptr || pool->num_threads() == 1 || n <= 1) {
    for (int64_t i = 0; i < n; ++i) body(i);
    return;
  }
  for (int64_t i = 0; i < n; ++i) {
    pool->Schedule([&body, i] { body(i); });
  }
  pool->Wait();
}

}  // namespace niid
