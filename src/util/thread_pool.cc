#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace niid {
namespace {

// Set once per worker thread to its owning pool; never reset because the
// thread terminates with the pool. Lets ParallelFor detect re-entrancy.
thread_local const ThreadPool* current_worker_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  NIID_CHECK_GE(num_threads, 1);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    NIID_CHECK(!shutting_down_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

bool ThreadPool::IsWorkerThread() const {
  return current_worker_pool == this;
}

void ThreadPool::WorkerLoop() {
  current_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (error && !first_error_) first_error_ = std::move(error);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

namespace internal {

void ParallelForChunked(ThreadPool* pool, int64_t n,
                        const std::function<void(int64_t, int64_t)>& range) {
  // A handful of chunks per worker balances load without paying one queue
  // round-trip (and, under TSan, one shadow allocation) per index.
  const int64_t max_chunks = static_cast<int64_t>(pool->num_threads()) * 4;
  const int64_t num_chunks = std::min<int64_t>(n, max_chunks);
  const int64_t chunk = (n + num_chunks - 1) / num_chunks;
  for (int64_t begin = 0; begin < n; begin += chunk) {
    const int64_t end = std::min<int64_t>(begin + chunk, n);
    pool->Schedule([&range, begin, end] { range(begin, end); });
  }
  pool->Wait();
}

}  // namespace internal

}  // namespace niid
