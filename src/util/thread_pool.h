#ifndef NIID_UTIL_THREAD_POOL_H_
#define NIID_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace niid {

/// Fixed-size worker pool used to train clients of one federated round in
/// parallel. Determinism is preserved because each parallel task owns a
/// pre-split RNG stream and writes only to its own output slot.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Schedule(std::function<void()> task);

  /// Blocks until all scheduled tasks have finished.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  int64_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Runs body(i) for i in [0, n) across the pool and waits for completion.
/// With a null pool, runs serially on the calling thread.
void ParallelFor(ThreadPool* pool, int64_t n,
                 const std::function<void(int64_t)>& body);

}  // namespace niid

#endif  // NIID_UTIL_THREAD_POOL_H_
