#ifndef NIID_UTIL_THREAD_POOL_H_
#define NIID_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace niid {

/// Fixed-size worker pool used to train clients of one federated round in
/// parallel. Determinism is preserved because each parallel task owns a
/// pre-split RNG stream and writes only to its own output slot.
///
/// Exception safety: a task that throws does not take down the process.
/// The first exception raised by any task since the last Wait() is captured
/// and rethrown from the next Wait() call on the scheduling thread;
/// subsequent exceptions from the same batch are dropped. After Wait()
/// rethrows, the pool is back in a clean state and remains usable.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Schedule(std::function<void()> task);

  /// Blocks until all scheduled tasks have finished. If any task threw since
  /// the previous Wait(), rethrows the first such exception (and clears it,
  /// leaving the pool reusable).
  void Wait();

  /// True when the calling thread is one of this pool's workers. Used by
  /// ParallelFor to run nested parallel sections serially instead of
  /// deadlocking (a worker that called Wait() would wait on its own task).
  bool IsWorkerThread() const;

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  int64_t in_flight_ = 0;          // guarded by mutex_
  bool shutting_down_ = false;     // guarded by mutex_
  std::exception_ptr first_error_; // guarded by mutex_
};

namespace internal {

/// Pool-only backend for ParallelFor: splits [0, n) into contiguous chunks
/// (a few per worker), schedules each as one task and waits. Callers must
/// have already handled the serial cases.
void ParallelForChunked(ThreadPool* pool, int64_t n,
                        const std::function<void(int64_t, int64_t)>& range);

}  // namespace internal

/// Runs body(i) for i in [0, n) across the pool and waits for completion.
/// Work is scheduled in contiguous chunks (a few per worker) rather than one
/// task per index, so the per-task overhead stays constant as n grows. With a
/// null pool (or n <= 1, or a single-threaded pool) runs serially on the
/// calling thread. If any invocation of `body` throws, the first exception is
/// rethrown on the calling thread after all chunks have drained.
///
/// Safe to call from inside a task running on the same pool: re-entrant
/// calls are detected via IsWorkerThread() and run serially on the calling
/// thread (a nested Wait() would otherwise block on the caller's own task).
/// This is what lets the GEMM engine accept the same pool the federated
/// server uses for client-level parallelism.
///
/// A template so the serial path never materializes a std::function: with a
/// null pool the call is a plain inlined loop with zero heap traffic, which
/// the zero-allocation training-step guarantee (DESIGN.md §8) relies on.
template <typename Body>
void ParallelFor(ThreadPool* pool, int64_t n, const Body& body) {
  if (n <= 0) return;
  if (pool == nullptr || pool->num_threads() == 1 || n == 1 ||
      pool->IsWorkerThread()) {
    for (int64_t i = 0; i < n; ++i) body(i);
    return;
  }
  internal::ParallelForChunked(pool, n, [&body](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) body(i);
  });
}

}  // namespace niid

#endif  // NIID_UTIL_THREAD_POOL_H_
