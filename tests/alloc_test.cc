// Steady-state allocation regression tests (DESIGN.md §8, allocation policy).
//
// After a one-step warmup that sizes every scratch buffer, a training step —
// gather, forward, loss, backward, optimizer step — must perform ZERO heap
// allocations, for each of the paper's model families. Two independent
// detectors enforce this:
//   * a global operator new/delete override counting every heap allocation
//     on this thread (the models run without a compute pool here), and
//   * Tensor::AllocationCount(), the tensor layer's own buffer-growth
//     counter, which also guards the pooled path where worker-queue nodes
//     would otherwise hide tensor regressions.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <numeric>
#include <vector>

#include "data/dataset.h"
#include "data/synthetic.h"
#include "nn/loss.h"
#include "nn/models/factory.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "nn/parameters.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace {
std::atomic<bool> g_counting{false};
std::atomic<int64_t> g_heap_allocs{0};

void* CountedAlloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

// The replaced operator new allocates with std::malloc, so std::free in the
// replaced operator delete is the matching deallocator; GCC's pairing
// heuristic cannot see through the replacement and warns spuriously.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t) {
  return CountedAlloc(size);
}
void* operator new[](std::size_t size, std::align_val_t) {
  return CountedAlloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace niid {
namespace {

struct StepHarness {
  Dataset data;
  std::unique_ptr<Module> model;
  std::unique_ptr<SgdOptimizer> optimizer;
  Tensor batch_x;
  std::vector<int> batch_y;
  std::vector<int64_t> indices;
  LossResult loss;

  void RunStep(int64_t start, int64_t batch_size) {
    const int64_t count = std::min<int64_t>(batch_size, data.size() - start);
    indices.resize(count);
    std::iota(indices.begin(), indices.end(), start);
    GatherBatchInto(data, indices, batch_x, batch_y);
    optimizer->ZeroGrads();
    const Tensor& logits = model->Forward(batch_x);
    SoftmaxCrossEntropyInto(logits, batch_y, loss);
    model->Backward(loss.grad_logits);
    optimizer->Step();
  }
};

StepHarness MakeImageHarness(const ModelSpec& spec, int64_t train_size) {
  StepHarness h;
  SyntheticImageConfig config;
  config.channels = spec.input_channels;
  config.height = spec.input_height;
  config.width = spec.input_width;
  config.num_classes = spec.num_classes;
  config.train_size = train_size;
  config.test_size = 1;
  config.seed = 77;
  h.data = MakeSyntheticImages(config).train;
  Rng rng(7);
  h.model = CreateModel(spec, rng);
  h.model->SetTraining(true);
  h.optimizer = std::make_unique<SgdOptimizer>(*h.model, 0.01f);
  return h;
}

void ExpectZeroAllocSteadyState(StepHarness& h, int64_t batch_size) {
  // Warmup: first step sizes all scratch (allocations expected and fine).
  h.RunStep(/*start=*/0, batch_size);

  const int64_t tensor_allocs_before = Tensor::AllocationCount();
  g_heap_allocs.store(0);
  g_counting.store(true);
  // Several steady-state steps over different samples, same batch shape.
  h.RunStep(0, batch_size);
  h.RunStep(batch_size, batch_size);
  h.RunStep(0, batch_size);
  g_counting.store(false);

  EXPECT_EQ(g_heap_allocs.load(), 0)
      << "steady-state training step hit the heap";
  EXPECT_EQ(Tensor::AllocationCount(), tensor_allocs_before)
      << "steady-state training step grew a Tensor buffer";
}

TEST(AllocTest, SimpleCnnStepIsZeroAlloc) {
  ModelSpec spec;
  spec.name = "simple-cnn";
  spec.input_channels = 3;
  spec.input_height = 16;
  spec.input_width = 16;
  spec.num_classes = 10;
  StepHarness h = MakeImageHarness(spec, /*train_size=*/32);
  ExpectZeroAllocSteadyState(h, /*batch_size=*/8);
}

TEST(AllocTest, TabularMlpStepIsZeroAlloc) {
  StepHarness h;
  SyntheticTabularConfig config;
  config.num_features = 32;
  config.train_size = 64;
  config.test_size = 1;
  config.seed = 78;
  h.data = MakeSyntheticTabular(config).train;
  ModelSpec spec;
  spec.name = "mlp";
  spec.input_features = 32;
  spec.num_classes = 2;
  Rng rng(8);
  h.model = CreateModel(spec, rng);
  h.model->SetTraining(true);
  h.optimizer = std::make_unique<SgdOptimizer>(*h.model, 0.01f);
  ExpectZeroAllocSteadyState(h, /*batch_size=*/16);
}

TEST(AllocTest, ResNetStepIsZeroAlloc) {
  ModelSpec spec;
  spec.name = "resnet";
  spec.input_channels = 3;
  spec.input_height = 16;
  spec.input_width = 16;
  spec.num_classes = 10;
  spec.resnet_blocks_per_stage = 1;
  StepHarness h = MakeImageHarness(spec, /*train_size=*/16);
  ExpectZeroAllocSteadyState(h, /*batch_size=*/4);
}

// The tensor-layer counter itself: growth is counted, reuse is not.
TEST(AllocTest, TensorAllocationCounterSemantics) {
  const int64_t before = Tensor::AllocationCount();
  Tensor t({4, 4});
  EXPECT_EQ(Tensor::AllocationCount(), before + 1);
  t.Resize({2, 8});  // same numel: reuse
  EXPECT_EQ(Tensor::AllocationCount(), before + 1);
  t.Resize({2, 2});  // shrink: reuse
  EXPECT_EQ(Tensor::AllocationCount(), before + 1);
  t.Resize({8, 8});  // grow: counts
  EXPECT_EQ(Tensor::AllocationCount(), before + 2);
  t.Resize({4, 4});  // shrink back into capacity: reuse
  EXPECT_EQ(Tensor::AllocationCount(), before + 2);
}

}  // namespace
}  // namespace niid
