// Fixture-driven tests for the niid-analyzer checks (tools/analyzer/,
// DESIGN.md §11). Every check must fire on its bad fixture with the right
// file:line, stay silent on the good twin, and honor the NOLINT escapes.

#include "analyzer/analyzer.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace niid::analyzer {
namespace {

std::vector<Finding> Analyze(const std::string& content,
                         const std::string& path = "src/fl/fixture.cc") {
  return AnalyzeSource(path, content);
}

bool HasFinding(const std::vector<Finding>& findings, const std::string& check,
                int line) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) {
                       return f.check == check && f.line == line;
                     });
}

int CountCheck(const std::vector<Finding>& findings, const std::string& check) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.check == check; }));
}

// ------------------------------------------------- parallel-capture-race

TEST(ParallelCaptureRace, FlagsUnindexedWriteToRefCapture) {
  const std::vector<Finding> findings = Analyze(R"cc(
void Bad(ThreadPool* pool) {
  int total = 0;
  ParallelFor(pool, 8, [&](int64_t i) {
    total = static_cast<int>(i);
  });
}
)cc");
  EXPECT_TRUE(HasFinding(findings, "parallel-capture-race", 5)) << findings.size();
}

TEST(ParallelCaptureRace, AcceptsPerIndexSlotWrite) {
  const std::vector<Finding> findings = Analyze(R"cc(
void Good(ThreadPool* pool, std::vector<int>& out) {
  ParallelFor(pool, 8, [&](int64_t i) {
    out[i] = static_cast<int>(i * 2);
  });
}
)cc");
  EXPECT_EQ(CountCheck(findings, "parallel-capture-race"), 0);
}

TEST(ParallelCaptureRace, AcceptsIndirectIndexThroughLoopVariable) {
  // dst[argmax[i]] is still per-index: the subscript chain mentions i.
  const std::vector<Finding> findings = Analyze(R"cc(
void Good(ThreadPool* pool, float* dst, const int* argmax) {
  ParallelFor(pool, 8, [&](int64_t i) {
    dst[argmax[i]] = 1.f;
  });
}
)cc");
  EXPECT_EQ(CountCheck(findings, "parallel-capture-race"), 0);
}

TEST(ParallelCaptureRace, AcceptsBoundsCheckedAccessorIndexedByLoopVar) {
  const std::vector<Finding> findings = Analyze(R"cc(
void Good(ThreadPool* pool, Tensor& shared) {
  ParallelFor(pool, shared.dim(0), [&shared](int64_t row) {
    shared.at(row, 0) = 1.f;
  });
}
)cc");
  EXPECT_EQ(CountCheck(findings, "parallel-capture-race"), 0);
}

TEST(ParallelCaptureRace, AcceptsBodyLocalsAndValueCaptures) {
  const std::vector<Finding> findings = Analyze(R"cc(
void Good(ThreadPool* pool) {
  int seed = 3;
  ParallelFor(pool, 8, [seed](int64_t i) mutable {
    int acc = 0;
    acc += seed;
    seed = acc;
  });
}
)cc");
  EXPECT_EQ(CountCheck(findings, "parallel-capture-race"), 0);
}

TEST(ParallelCaptureRace, FlagsNamedRefCaptureOnSchedule) {
  const std::vector<Finding> findings = Analyze(R"cc(
void Bad(ThreadPool& pool) {
  bool done = false;
  pool.Schedule([&done] { done = true; });
}
)cc");
  EXPECT_TRUE(HasFinding(findings, "parallel-capture-race", 4));
}

TEST(ParallelCaptureRace, AcceptsAtomicCounter) {
  const std::vector<Finding> findings = Analyze(R"cc(
void Good(ThreadPool& pool) {
  std::atomic<int> counter{0};
  pool.Schedule([&counter] { counter++; });
}
)cc");
  EXPECT_EQ(CountCheck(findings, "parallel-capture-race"), 0);
}

TEST(ParallelCaptureRace, NolintEscapes) {
  const std::vector<Finding> findings = Analyze(R"cc(
void Escaped(ThreadPool* pool) {
  int total = 0;
  ParallelFor(pool, 8, [&](int64_t i) {
    total = static_cast<int>(i);  // NOLINT(niid-parallel-capture)
  });
}
)cc");
  EXPECT_EQ(CountCheck(findings, "parallel-capture-race"), 0);
}

TEST(ParallelCaptureRace, NestedLambdaParamsCountAsIndexVariables) {
  // The inner lambda's parameter j indexes the outer capture: per-index.
  const std::vector<Finding> findings = Analyze(R"cc(
void Good(ThreadPool* pool, std::vector<float>& out) {
  ParallelFor(pool, 8, [&](int64_t i) {
    auto inner = [&](int64_t j) { out[j] = 0.f; };
    inner(i);
  });
}
)cc");
  EXPECT_EQ(CountCheck(findings, "parallel-capture-race"), 0);
}

TEST(ParallelCaptureRace, FlagsUnindexedWriteInsideNestedLambda) {
  const std::vector<Finding> findings = Analyze(R"cc(
void Bad(ThreadPool* pool) {
  float shared = 0.f;
  ParallelFor(pool, 8, [&](int64_t i) {
    auto inner = [&]() { shared = 1.f; };
    inner();
  });
}
)cc");
  EXPECT_TRUE(HasFinding(findings, "parallel-capture-race", 5));
}

TEST(ParallelCaptureRace, IgnoresSerialCode) {
  const std::vector<Finding> findings = Analyze(R"cc(
void Serial() {
  int total = 0;
  for (int i = 0; i < 8; ++i) total += i;
  auto fn = [&total] { total = 9; };
  fn();
}
)cc");
  EXPECT_EQ(CountCheck(findings, "parallel-capture-race"), 0);
}

// ------------------------------------------------- float-reduction-order

TEST(FloatReductionOrder, FlagsSharedFloatAccumulation) {
  const std::vector<Finding> findings = Analyze(R"cc(
void Bad(ThreadPool* pool, const float* x) {
  float sum = 0.f;
  ParallelFor(pool, 8, [&](int64_t i) {
    sum += x[i];
  });
}
)cc");
  EXPECT_TRUE(HasFinding(findings, "float-reduction-order", 5));
  EXPECT_EQ(CountCheck(findings, "parallel-capture-race"), 0);
}

TEST(FloatReductionOrder, AcceptsPerIndexSlotAccumulation) {
  const std::vector<Finding> findings = Analyze(R"cc(
void Good(ThreadPool* pool, const float* x, std::vector<double>& slots) {
  ParallelFor(pool, 8, [&](int64_t b) {
    slots[b] += x[b];
  });
}
)cc");
  EXPECT_EQ(CountCheck(findings, "float-reduction-order"), 0);
}

TEST(FloatReductionOrder, NolintEscapes) {
  const std::vector<Finding> findings = Analyze(R"cc(
void Escaped(ThreadPool* pool, const float* x) {
  double sum = 0.0;
  ParallelFor(pool, 8, [&](int64_t i) {
    sum += x[i];  // NOLINT(niid-float-reduction)
  });
}
)cc");
  EXPECT_EQ(CountCheck(findings, "float-reduction-order"), 0);
}

// ---------------------------------------------- deterministic-iteration

TEST(DeterministicIteration, FlagsRangeForOverUnorderedMapInFl) {
  const std::vector<Finding> findings = Analyze(R"cc(
void Bad(const std::unordered_map<int, float>& weights) {
  float sum = 0.f;
  for (const auto& kv : weights) {
    sum += kv.second;
  }
}
)cc");
  EXPECT_TRUE(HasFinding(findings, "deterministic-iteration", 4));
}

TEST(DeterministicIteration, FlagsIteratorLoop) {
  const std::vector<Finding> findings = Analyze(R"cc(
void Bad(std::unordered_set<int>& ids) {
  for (auto it = ids.begin(); it != ids.end(); ++it) {
  }
}
)cc");
  EXPECT_TRUE(HasFinding(findings, "deterministic-iteration", 3));
}

TEST(DeterministicIteration, SilentOnOrderedContainers) {
  const std::vector<Finding> findings = Analyze(R"cc(
void Good(const std::map<int, float>& weights) {
  float sum = 0.f;
  for (const auto& kv : weights) {
    sum += kv.second;
  }
}
)cc");
  EXPECT_EQ(CountCheck(findings, "deterministic-iteration"), 0);
}

TEST(DeterministicIteration, ScopedToFlAndTensorPaths) {
  const std::string fixture = R"cc(
void Lookup(const std::unordered_map<int, float>& cache) {
  for (const auto& kv : cache) {
  }
}
)cc";
  EXPECT_EQ(CountCheck(Analyze(fixture, "src/data/loader.cc"),
                       "deterministic-iteration"),
            0);
  EXPECT_EQ(CountCheck(Analyze(fixture, "src/tensor/cache.cc"),
                       "deterministic-iteration"),
            1);
  // The scenario / robust-aggregation layer lives on the determinism-critical
  // server path: its files must stay inside the check's scope.
  EXPECT_EQ(CountCheck(Analyze(fixture, "src/fl/scenario.cc"),
                       "deterministic-iteration"),
            1);
  EXPECT_EQ(CountCheck(Analyze(fixture, "src/fl/robust.cc"),
                       "deterministic-iteration"),
            1);
}

TEST(DeterministicIteration, LookupWithoutIterationIsFine) {
  const std::vector<Finding> findings = Analyze(R"cc(
float Good(const std::unordered_map<int, float>& cache, int key) {
  auto it = cache.find(key);
  return it == cache.end() ? 0.f : it->second;
}
)cc");
  EXPECT_EQ(CountCheck(findings, "deterministic-iteration"), 0);
}

TEST(DeterministicIteration, NolintEscapes) {
  const std::vector<Finding> findings = Analyze(R"cc(
void Escaped(const std::unordered_map<int, float>& w) {
  // Order-insensitive: max over values.
  float best = 0.f;
  for (const auto& kv : w) {  // NOLINT(niid-deterministic-iteration)
    best = kv.second > best ? kv.second : best;
  }
}
)cc");
  EXPECT_EQ(CountCheck(findings, "deterministic-iteration"), 0);
}

// ------------------------------------------------- hot-path-allocation

TEST(HotPathAllocation, FlagsAllocationsInsideHotFunction) {
  const std::vector<Finding> findings = Analyze(R"cc(
// NIID_HOT
void Bad(std::vector<float>& v) {
  v.resize(128);
  v.push_back(1.f);
  auto p = std::make_unique<int>(3);
  int* raw = new int[4];
}
)cc");
  EXPECT_TRUE(HasFinding(findings, "hot-path-allocation", 4));
  EXPECT_TRUE(HasFinding(findings, "hot-path-allocation", 5));
  EXPECT_TRUE(HasFinding(findings, "hot-path-allocation", 6));
  EXPECT_TRUE(HasFinding(findings, "hot-path-allocation", 7));
}

TEST(HotPathAllocation, SilentOutsideHotFunctions) {
  const std::vector<Finding> findings = Analyze(R"cc(
void Setup(std::vector<float>& v) {
  v.resize(128);
  v.push_back(1.f);
}
)cc");
  EXPECT_EQ(CountCheck(findings, "hot-path-allocation"), 0);
}

TEST(HotPathAllocation, HotRegionEndsWithFunctionBody) {
  const std::vector<Finding> findings = Analyze(R"cc(
// NIID_HOT
void Hot(const float* x, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = x[i];
}

void ColdNeighbor(std::vector<float>& v) {
  v.push_back(1.f);
}
)cc");
  EXPECT_EQ(CountCheck(findings, "hot-path-allocation"), 0);
}

TEST(HotPathAllocation, MarkerSurvivesSignatureWithDefaultBracketArgs) {
  // Macro-heavy/bracketed signatures: the body brace is found by skipping
  // balanced groups, not by pattern-matching the signature.
  const std::vector<Finding> findings = Analyze(R"cc(
// NIID_HOT
NIID_EXPORT void Hot(std::array<int, 4> dims = {1, 2, 3, 4},
                     const char* tag = "x[{") {
  scratch.push_back(0);
}
)cc");
  EXPECT_TRUE(HasFinding(findings, "hot-path-allocation", 5));
}

TEST(HotPathAllocation, NolintEscapesGrowOnlyScratch) {
  const std::vector<Finding> findings = Analyze(R"cc(
// NIID_HOT
void Hot(std::vector<float>& tls) {
  tls.resize(128);  // NOLINT(niid-hot-alloc)
}
)cc");
  EXPECT_EQ(CountCheck(findings, "hot-path-allocation"), 0);
}

TEST(HotPathAllocation, CaseSensitiveSanctionedResizeStaysLegal) {
  // Tensor::Resize (capital R) is the repo's sanctioned setup-time reshape.
  const std::vector<Finding> findings = Analyze(R"cc(
// NIID_HOT
void Hot(Tensor& t) {
  t.Resize({8, 8});
}
)cc");
  EXPECT_EQ(CountCheck(findings, "hot-path-allocation"), 0);
}

// --------------------------------------------------- discarded-status

TEST(DiscardedStatus, FlagsDroppedStatusReturn) {
  const std::vector<Finding> findings = Analyze(R"cc(
Status SaveThing(const std::string& path);

void Bad(const std::string& path) {
  SaveThing(path);
}
)cc");
  EXPECT_TRUE(HasFinding(findings, "discarded-status", 5));
}

TEST(DiscardedStatus, FlagsDroppedMemberCall) {
  const std::vector<Finding> findings = Analyze(R"cc(
struct Leaderboard {
  Status SaveCsv(const std::string& path) const;
};

void Bad(const Leaderboard& board) {
  board.SaveCsv("out.csv");
}
)cc");
  EXPECT_TRUE(HasFinding(findings, "discarded-status", 7));
}

TEST(DiscardedStatus, SilentWhenChecked) {
  const std::vector<Finding> findings = Analyze(R"cc(
Status SaveThing(const std::string& path);

int Good(const std::string& path) {
  const Status saved = SaveThing(path);
  if (!saved.ok()) return 1;
  return 0;
}
)cc");
  EXPECT_EQ(CountCheck(findings, "discarded-status"), 0);
}

TEST(DiscardedStatus, VoidCastIsExplicitDiscard) {
  const std::vector<Finding> findings = Analyze(R"cc(
Status SaveThing(const std::string& path);

void Good(const std::string& path) {
  (void)SaveThing(path);
}
)cc");
  EXPECT_EQ(CountCheck(findings, "discarded-status"), 0);
}

TEST(DiscardedStatus, BoolValidatorsRegister) {
  const std::vector<Finding> findings = Analyze(R"cc(
bool ValidateShape(const Tensor& t);

void Bad(const Tensor& t) {
  ValidateShape(t);
}
)cc");
  EXPECT_TRUE(HasFinding(findings, "discarded-status", 5));
}

TEST(DiscardedStatus, PlainBoolFunctionsDoNotRegister) {
  const std::vector<Finding> findings = Analyze(R"cc(
bool Contains(const std::vector<int>& v, int x);

void Good(const std::vector<int>& v) {
  Contains(v, 3);
}
)cc");
  EXPECT_EQ(CountCheck(findings, "discarded-status"), 0);
}

TEST(DiscardedStatus, StatusOrReturnsRegisterToo) {
  const std::vector<Finding> findings = Analyze(R"cc(
StatusOr<int> ParseCount(const std::string& text);

void Bad(const std::string& text) {
  ParseCount(text);
}
)cc");
  EXPECT_TRUE(HasFinding(findings, "discarded-status", 5));
}

TEST(DiscardedStatus, QualifiedFactoryCallsAreNotDeclarations) {
  // `Status::Ok()` / `Status::InvalidArgument(...)` are uses of Status's own
  // factories, not declarations of functions named Ok / InvalidArgument.
  const std::vector<Finding> findings = Analyze(R"cc(
Status Good(bool fine) {
  if (!fine) return Status::InvalidArgument("bad");
  return Status::Ok();
}

void AlsoGood() {
  Ok();
  InvalidArgument("unrelated free function");
}
)cc");
  EXPECT_EQ(CountCheck(findings, "discarded-status"), 0);
}

TEST(DiscardedStatus, MacroStatementsDoNotConfuseBoundaries) {
  const std::vector<Finding> findings = Analyze(R"cc(
Status SaveThing(const std::string& path);

void Mixed(const std::string& path) {
  NIID_CHECK_GE(path.size(), 1u) << "empty path " << path;
  SaveThing(path);
  NIID_CHECK(true);
}
)cc");
  EXPECT_TRUE(HasFinding(findings, "discarded-status", 6));
  EXPECT_EQ(CountCheck(findings, "discarded-status"), 1);
}

TEST(DiscardedStatus, NolintEscapes) {
  const std::vector<Finding> findings = Analyze(R"cc(
Status SaveThing(const std::string& path);

void Escaped(const std::string& path) {
  SaveThing(path);  // NOLINT(niid-discarded-status)
}
)cc");
  EXPECT_EQ(CountCheck(findings, "discarded-status"), 0);
}

// --------------------------------------------- cross-file + regression

TEST(AnalyzeFiles, RegistryIsSharedAcrossFiles) {
  // Declaration in one file, discarded call in another: the two-pass repo
  // analysis must still catch it (this is how the real bench/ findings were
  // caught against declarations in src/core/).
  const std::vector<std::pair<std::string, std::string>> files = {
      {"src/core/curves.h", R"cc(
Status WriteCurvesCsv(const std::vector<Curve>& curves,
                      const std::string& path);
)cc"},
      {"bench/bench_fixture.cpp", R"cc(
void Report(const std::vector<Curve>& curves) {
  WriteCurvesCsv(curves, "out.csv");
}
)cc"}};
  const std::vector<Finding> findings = AnalyzeFiles(files);
  ASSERT_EQ(CountCheck(findings, "discarded-status"), 1);
  EXPECT_EQ(findings[0].file, "bench/bench_fixture.cpp");
  EXPECT_EQ(findings[0].line, 3);
}

TEST(Regression, ServerRoundScratchPattern) {
  // Reduced from src/fl/server.cc pre-fix: per-round vector allocation in
  // the NIID_HOT round path. The fix hoists scratch to members; the fixture
  // pins the analyzer behavior that forced it.
  const std::vector<Finding> findings = Analyze(R"cc(
// NIID_HOT
RoundStats RunRound(const LocalTrainOptions& options) {
  std::vector<Assignment> work;
  work.reserve(sampled.size());
  work.push_back(std::move(assignment));
  std::vector<LocalUpdate> updates(work.size());
  return stats;
}
)cc");
  EXPECT_TRUE(HasFinding(findings, "hot-path-allocation", 6));
}

TEST(Regression, GemmThreadLocalPackResizePattern) {
  // Reduced from src/tensor/gemm.cc: the two grow-only thread-local pack
  // buffer resizes are intentional and carry NOLINT escapes; without the
  // escape the check must fire.
  const std::vector<Finding> bad = Analyze(R"cc(
// NIID_HOT
void Gemm(ThreadPool* pool) {
  tls_pack_b.resize(1024);
  ParallelFor(pool, 4, [&](int64_t mb) {
    tls_pack_a.resize(512);
  });
}
)cc");
  EXPECT_EQ(CountCheck(bad, "hot-path-allocation"), 2);

  const std::vector<Finding> escaped = Analyze(R"cc(
// NIID_HOT
void Gemm(ThreadPool* pool) {
  tls_pack_b.resize(1024);  // NOLINT(niid-hot-alloc) grow-only TLS scratch
  ParallelFor(pool, 4, [&](int64_t mb) {
    tls_pack_a.resize(512);  // NOLINT(niid-hot-alloc) grow-only TLS scratch
  });
}
)cc");
  EXPECT_EQ(CountCheck(escaped, "hot-path-allocation"), 0);
}

TEST(Regression, NolintNextlineCoversFollowingLine) {
  const std::vector<Finding> findings = Analyze(R"cc(
// NIID_HOT
void Hot(std::unique_ptr<int>& slot) {
  // NOLINTNEXTLINE(niid-hot-alloc) one-time lazy init
  slot = std::make_unique<int>(7);
}
)cc");
  EXPECT_EQ(CountCheck(findings, "hot-path-allocation"), 0);
}

TEST(Lexer, StringsCommentsAndPreprocessorAreInert) {
  // Banned constructs inside strings, comments, and preprocessor directives
  // must not fire: only real code tokens count.
  const std::vector<Finding> findings = Analyze(R"cc(
#define HOT_HELPER(v) ((v).push_back(0))
// Prose that merely mentions NIID_HOT is not a marker.
void Good() {
  const char* msg = "call v.push_back(1) and new int[3]";
  // new int[4] in a comment
}
)cc");
  EXPECT_TRUE(findings.empty());
}

}  // namespace
}  // namespace niid::analyzer
