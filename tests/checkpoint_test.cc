// Tests for crash-safe checkpoint/resume: file-format round-trips and
// hardening (truncation, hostile lengths, checksum, non-finite payloads),
// all-or-nothing restores, and the headline guarantee — kill a run at round
// k, resume from the checkpoint, and reproduce the uninterrupted run bit for
// bit, for every algorithm family.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "fl/algorithm.h"
#include "fl/checkpoint.h"
#include "fl/client.h"
#include "fl/server.h"
#include "nn/models/factory.h"
#include "nn/serialization.h"

namespace niid {
namespace {

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void Dump(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Mirror of the writer's checksum (FNV-1a 64) so tests can re-seal files
// after deliberately corrupting their interior.
uint64_t TestFnv1a(const char* data, size_t size) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void Reseal(std::string& bytes) {
  const uint64_t checksum =
      TestFnv1a(bytes.data(), bytes.size() - sizeof(uint64_t));
  std::memcpy(bytes.data() + bytes.size() - sizeof(uint64_t), &checksum,
              sizeof(uint64_t));
}

ServerCheckpoint SampleCheckpoint() {
  ServerCheckpoint checkpoint;
  checkpoint.config_seed = 42;
  checkpoint.algorithm = "fedavg";
  checkpoint.num_clients = 2;
  checkpoint.state_size = 3;
  checkpoint.rounds_completed = 7;
  checkpoint.cumulative_upload_floats = 12345;
  checkpoint.server_rng.state[0] = 1;
  checkpoint.server_rng.state[3] = 99;
  checkpoint.server_rng.has_cached_normal = true;
  checkpoint.server_rng.cached_normal = -0.25;
  checkpoint.global_state = {0.5f, -1.5f, 2.0f};
  checkpoint.algorithm_state = {{1.f, 2.f}, {}};
  checkpoint.client_rng.resize(2);
  checkpoint.client_rng[1].state[2] = 17;
  checkpoint.client_buffers = {{}, {3.f, 4.f}};
  checkpoint.trial = 1;
  checkpoint.round_accuracy = {0.5, 0.6, 0.7};
  checkpoint.round_loss = {1.2, 1.1, 1.0};
  return checkpoint;
}

// ------------------------------------------------------------- file format

TEST(CheckpointFileTest, RoundTripPreservesEveryField) {
  const std::string path = TestPath("ckpt_roundtrip.bin");
  const ServerCheckpoint saved = SampleCheckpoint();
  ASSERT_TRUE(WriteCheckpointFile(saved, path).ok());
  StatusOr<ServerCheckpoint> loaded = ReadCheckpointFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->config_seed, saved.config_seed);
  EXPECT_EQ(loaded->algorithm, saved.algorithm);
  EXPECT_EQ(loaded->num_clients, saved.num_clients);
  EXPECT_EQ(loaded->state_size, saved.state_size);
  EXPECT_EQ(loaded->rounds_completed, saved.rounds_completed);
  EXPECT_EQ(loaded->cumulative_upload_floats, saved.cumulative_upload_floats);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(loaded->server_rng.state[i], saved.server_rng.state[i]);
  }
  EXPECT_EQ(loaded->server_rng.has_cached_normal,
            saved.server_rng.has_cached_normal);
  EXPECT_EQ(loaded->server_rng.cached_normal, saved.server_rng.cached_normal);
  EXPECT_EQ(loaded->global_state, saved.global_state);
  EXPECT_EQ(loaded->algorithm_state, saved.algorithm_state);
  ASSERT_EQ(loaded->client_rng.size(), saved.client_rng.size());
  EXPECT_EQ(loaded->client_rng[1].state[2], saved.client_rng[1].state[2]);
  EXPECT_EQ(loaded->client_buffers, saved.client_buffers);
  EXPECT_EQ(loaded->trial, saved.trial);
  EXPECT_EQ(loaded->round_accuracy, saved.round_accuracy);
  EXPECT_EQ(loaded->round_loss, saved.round_loss);
}

TEST(CheckpointFileTest, WriteIsAtomicAndLeavesNoTmpResidue) {
  const std::string path = TestPath("ckpt_atomic.bin");
  ASSERT_TRUE(WriteCheckpointFile(SampleCheckpoint(), path).ok());
  EXPECT_TRUE(std::ifstream(path).good());
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  // Overwriting an existing checkpoint is also atomic and residue-free.
  ASSERT_TRUE(WriteCheckpointFile(SampleCheckpoint(), path).ok());
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
}

TEST(CheckpointFileTest, MissingFileIsNotFound) {
  EXPECT_EQ(ReadCheckpointFile(TestPath("no_such_ckpt.bin")).status().code(),
            StatusCode::kNotFound);
}

TEST(CheckpointFileTest, RejectsTinyAndWrongMagicFiles) {
  const std::string path = TestPath("ckpt_bad.bin");
  Dump(path, "xy");
  EXPECT_EQ(ReadCheckpointFile(path).status().code(), StatusCode::kDataLoss);
  Dump(path, "NOTACKPTxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx");
  EXPECT_EQ(ReadCheckpointFile(path).status().code(), StatusCode::kDataLoss);
}

TEST(CheckpointFileTest, RejectsTruncatedFile) {
  const std::string path = TestPath("ckpt_trunc.bin");
  ASSERT_TRUE(WriteCheckpointFile(SampleCheckpoint(), path).ok());
  std::string bytes = Slurp(path);
  Dump(path, bytes.substr(0, bytes.size() / 2));
  EXPECT_EQ(ReadCheckpointFile(path).status().code(), StatusCode::kDataLoss);
}

TEST(CheckpointFileTest, ChecksumCatchesSilentCorruption) {
  const std::string path = TestPath("ckpt_flip.bin");
  ASSERT_TRUE(WriteCheckpointFile(SampleCheckpoint(), path).ok());
  std::string bytes = Slurp(path);
  bytes[bytes.size() / 2] ^= 0x40;
  Dump(path, bytes);
  EXPECT_EQ(ReadCheckpointFile(path).status().code(), StatusCode::kDataLoss);
}

TEST(CheckpointFileTest, HostileDeclaredLengthRejectedCleanly) {
  const std::string path = TestPath("ckpt_hostile.bin");
  const ServerCheckpoint saved = SampleCheckpoint();
  ASSERT_TRUE(WriteCheckpointFile(saved, path).ok());
  std::string bytes = Slurp(path);
  // The global-state count sits after magic(8) + version(4) + seed(8) +
  // algorithm(8 + len) + codec(8 + len) + error-feedback byte(1) +
  // codec seed(8) + five int64 counters(40) + server rng(41).
  const size_t count_offset = 8 + 4 + 8 + (8 + saved.algorithm.size()) +
                              (8 + saved.codec.size()) + 1 + 8 + 40 +
                              (4 * 8 + 1 + 8);
  uint64_t declared = 0;
  std::memcpy(&declared, bytes.data() + count_offset, sizeof(declared));
  ASSERT_EQ(declared, saved.global_state.size()) << "format drifted; fix the "
                                                    "offset arithmetic above";
  // Claim far more floats than the file holds; a naive reader would allocate
  // petabytes or over-read. Re-seal so the checksum is not what rejects it.
  declared = uint64_t{1} << 60;
  std::memcpy(bytes.data() + count_offset, &declared, sizeof(declared));
  Reseal(bytes);
  Dump(path, bytes);
  EXPECT_EQ(ReadCheckpointFile(path).status().code(), StatusCode::kDataLoss);
}

TEST(CheckpointFileTest, NonFinitePayloadRejected) {
  const std::string path = TestPath("ckpt_nan.bin");
  ServerCheckpoint poisoned = SampleCheckpoint();
  poisoned.global_state[1] = std::numeric_limits<float>::quiet_NaN();
  ASSERT_TRUE(WriteCheckpointFile(poisoned, path).ok());
  EXPECT_EQ(ReadCheckpointFile(path).status().code(), StatusCode::kDataLoss);
}

// Fuzz-lite: flip every body byte of a sealed checkpoint (re-sealing each
// time so the checksum never short-circuits the parse) and require the
// reader to fail cleanly or parse — never crash, hang, or over-allocate.
TEST(CheckpointFileTest, ByteFlipsNeverCrashTheReader) {
  const std::string path = TestPath("ckpt_fuzz.bin");
  ASSERT_TRUE(WriteCheckpointFile(SampleCheckpoint(), path).ok());
  const std::string pristine = Slurp(path);
  for (size_t i = 0; i < pristine.size() - sizeof(uint64_t); ++i) {
    std::string bytes = pristine;
    bytes[i] ^= 0xff;
    Reseal(bytes);
    Dump(path, bytes);
    const StatusOr<ServerCheckpoint> result = ReadCheckpointFile(path);
    (void)result;  // any clean Status is acceptable; surviving is the test
  }
}

// ------------------------------------------------------------- federation

ModelSpec CkptMlpSpec() {
  ModelSpec spec;
  spec.name = "mlp";
  spec.input_features = 10;
  spec.num_classes = 2;
  return spec;
}

Dataset CkptDataset(int64_t n, uint64_t seed) {
  SyntheticTabularConfig config;
  config.num_features = 10;
  config.train_size = n;
  config.test_size = 1;
  config.class_sep = 3.0f;
  config.seed = seed;
  return MakeSyntheticTabular(config).train;
}

std::vector<std::unique_ptr<Client>> CkptClients(int num_clients,
                                                 int64_t samples_each) {
  Dataset full = CkptDataset(256, /*seed=*/4242);
  std::vector<std::unique_ptr<Client>> clients;
  for (int i = 0; i < num_clients; ++i) {
    std::vector<int64_t> shard;
    for (int64_t k = 0; k < samples_each; ++k) {
      shard.push_back((static_cast<int64_t>(i) * samples_each + k) %
                      full.size());
    }
    clients.push_back(
        std::make_unique<Client>(i, Subset(full, shard), Rng(100 + i)));
  }
  return clients;
}

std::unique_ptr<FederatedServer> CkptServer(
    const std::string& algorithm, const AlgorithmConfig& algo_config,
    const ServerConfig& server_config) {
  auto algorithm_or = CreateAlgorithm(algorithm, algo_config);
  return std::make_unique<FederatedServer>(MakeModelFactory(CkptMlpSpec()),
                                           CkptClients(4, 32),
                                           std::move(*algorithm_or),
                                           server_config);
}

LocalTrainOptions CkptOptions() {
  LocalTrainOptions options;
  options.local_epochs = 2;
  options.batch_size = 16;
  options.learning_rate = 0.05f;
  return options;
}

struct ResumeCase {
  std::string label;
  std::string algorithm;
  AlgorithmConfig algo;
  ServerConfig server;
};

std::vector<ResumeCase> ResumeCases() {
  std::vector<ResumeCase> cases;
  for (const char* name :
       {"fedavg", "fedprox", "scaffold", "fednova", "fedadam"}) {
    ResumeCase c;
    c.label = name;
    c.algorithm = name;
    c.server.seed = 5;
    c.server.sample_fraction = 0.75;
    cases.push_back(c);
  }
  // FedAvgM: the velocity vector is extra durable server state.
  ResumeCase momentum;
  momentum.label = "fedavgm";
  momentum.algorithm = "fedavg";
  momentum.algo.server_momentum = 0.9f;
  momentum.server.seed = 5;
  momentum.server.sample_fraction = 0.75;
  cases.push_back(momentum);
  // Faulty federation: the checkpoint must also capture a run whose rounds
  // drop, straggle, reject, and retry.
  ResumeCase faulty;
  faulty.label = "fedavg+faults";
  faulty.algorithm = "fedavg";
  faulty.server.seed = 5;
  faulty.server.faults.drop_rate = 0.15;
  faulty.server.faults.crash_rate = 0.1;
  faulty.server.faults.straggle_rate = 0.25;
  faulty.server.faults.corrupt_rate = 0.1;
  faulty.server.faults.seed = 31;
  faulty.server.max_update_norm = 1e4;
  faulty.server.min_aggregate_clients = 2;
  cases.push_back(faulty);
  return cases;
}

// The headline guarantee: run k rounds, checkpoint through the file format,
// restore into a FRESH server (simulating a new process after a crash), run
// the remaining rounds — and land bit-identically on an uninterrupted run,
// for every algorithm family, with and without faults.
TEST(ResumeBitIdentityTest, KillAndResumeMatchesUninterruptedRun) {
  const int total_rounds = 5, kill_after = 2;
  for (const ResumeCase& c : ResumeCases()) {
    auto uninterrupted = CkptServer(c.algorithm, c.algo, c.server);
    for (int round = 0; round < total_rounds; ++round) {
      uninterrupted->RunRound(CkptOptions());
    }

    const std::string path = TestPath("resume_" + c.label + ".bin");
    {
      auto first_process = CkptServer(c.algorithm, c.algo, c.server);
      for (int round = 0; round < kill_after; ++round) {
        first_process->RunRound(CkptOptions());
      }
      ASSERT_TRUE(first_process->SaveCheckpoint(path).ok()) << c.label;
      // first_process dies here.
    }
    auto resumed = CkptServer(c.algorithm, c.algo, c.server);
    const Status loaded = resumed->LoadCheckpoint(path);
    ASSERT_TRUE(loaded.ok()) << c.label << ": " << loaded.ToString();
    EXPECT_EQ(resumed->rounds_completed(), kill_after) << c.label;
    for (int round = kill_after; round < total_rounds; ++round) {
      resumed->RunRound(CkptOptions());
    }

    EXPECT_EQ(resumed->global_state(), uninterrupted->global_state())
        << c.label;
    EXPECT_EQ(resumed->rounds_completed(), uninterrupted->rounds_completed())
        << c.label;
    EXPECT_EQ(resumed->cumulative_upload_floats(),
              uninterrupted->cumulative_upload_floats())
        << c.label;
  }
}

// FedBN-style runs add durable per-party BatchNorm buffers; the checkpoint
// must carry them so personalized evaluation survives a crash.
TEST(ResumeBitIdentityTest, FedBnBuffersSurviveResume) {
  ModelSpec spec;
  spec.name = "resnet";
  spec.input_channels = 1;
  spec.input_height = 16;
  spec.input_width = 16;
  spec.num_classes = 4;
  spec.resnet_blocks_per_stage = 1;
  const ModelFactory factory = MakeModelFactory(spec);

  SyntheticImageConfig icfg;
  icfg.num_classes = 4;
  icfg.channels = 1;
  icfg.height = 16;
  icfg.width = 16;
  icfg.train_size = 48;
  icfg.test_size = 16;
  icfg.seed = 21;
  const FederatedDataset fed = MakeSyntheticImages(icfg);
  auto make_clients = [&fed]() {
    std::vector<std::unique_ptr<Client>> clients;
    for (int i = 0; i < 2; ++i) {
      std::vector<int64_t> indices(24);
      std::iota(indices.begin(), indices.end(), int64_t{24} * i);
      clients.push_back(std::make_unique<Client>(
          i, Subset(fed.train, indices), Rng(11 * (i + 1))));
    }
    return clients;
  };
  AlgorithmConfig algo;
  algo.average_bn_buffers = false;  // FedBN: parties keep their own buffers
  ServerConfig config;
  config.seed = 5;
  auto make_server = [&]() {
    auto algorithm = CreateAlgorithm("fedavg", algo);
    return std::make_unique<FederatedServer>(factory, make_clients(),
                                             std::move(*algorithm), config);
  };
  LocalTrainOptions options;
  options.local_epochs = 1;
  options.batch_size = 8;
  options.learning_rate = 0.05f;

  auto uninterrupted = make_server();
  for (int round = 0; round < 3; ++round) uninterrupted->RunRound(options);

  const std::string path = TestPath("resume_fedbn.bin");
  {
    auto first_process = make_server();
    for (int round = 0; round < 2; ++round) first_process->RunRound(options);
    ASSERT_TRUE(first_process->client(0).has_local_buffers());
    ASSERT_TRUE(first_process->SaveCheckpoint(path).ok());
  }
  auto resumed = make_server();
  ASSERT_FALSE(resumed->client(0).has_local_buffers());
  ASSERT_TRUE(resumed->LoadCheckpoint(path).ok());
  EXPECT_TRUE(resumed->client(0).has_local_buffers());
  resumed->RunRound(options);

  EXPECT_EQ(resumed->global_state(), uninterrupted->global_state());
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(resumed->client(i).buffer_state(),
              uninterrupted->client(i).buffer_state())
        << "client " << i;
    const EvalResult a = resumed->EvaluatePersonalized(i, fed.test);
    const EvalResult b = uninterrupted->EvaluatePersonalized(i, fed.test);
    EXPECT_EQ(a.loss, b.loss) << "client " << i;
    EXPECT_EQ(a.accuracy, b.accuracy) << "client " << i;
  }
}

// ------------------------------------------------------------- restore guard

TEST(RestoreGuardTest, FingerprintMismatchLeavesServerIntact) {
  ServerConfig config;
  config.seed = 5;
  auto source = CkptServer("fedavg", AlgorithmConfig{}, config);
  source->RunRound(CkptOptions());
  const ServerCheckpoint checkpoint = source->MakeCheckpoint();

  // Wrong algorithm.
  auto other_algorithm = CkptServer("fednova", AlgorithmConfig{}, config);
  StateVector before = other_algorithm->global_state();
  EXPECT_FALSE(other_algorithm->RestoreCheckpoint(checkpoint).ok());
  EXPECT_EQ(other_algorithm->global_state(), before);
  EXPECT_EQ(other_algorithm->rounds_completed(), 0);

  // Wrong seed.
  ServerConfig other_seed_config = config;
  other_seed_config.seed = 6;
  auto other_seed = CkptServer("fedavg", AlgorithmConfig{}, other_seed_config);
  before = other_seed->global_state();
  EXPECT_FALSE(other_seed->RestoreCheckpoint(checkpoint).ok());
  EXPECT_EQ(other_seed->global_state(), before);

  // The rejected server is still healthy: it can run rounds afterwards.
  other_seed->RunRound(CkptOptions());
  EXPECT_EQ(other_seed->rounds_completed(), 1);
}

TEST(RestoreGuardTest, AlgorithmStateShapeMismatchRejectedBeforeMutation) {
  ServerConfig config;
  config.seed = 5;
  auto source = CkptServer("scaffold", AlgorithmConfig{}, config);
  source->RunRound(CkptOptions());
  ServerCheckpoint checkpoint = source->MakeCheckpoint();
  // SCAFFOLD expects 1 + num_clients control vectors; drop one.
  ASSERT_GT(checkpoint.algorithm_state.size(), 1u);
  checkpoint.algorithm_state.pop_back();

  auto target = CkptServer("scaffold", AlgorithmConfig{}, config);
  const StateVector before = target->global_state();
  EXPECT_FALSE(target->RestoreCheckpoint(checkpoint).ok());
  EXPECT_EQ(target->global_state(), before);
  EXPECT_EQ(target->rounds_completed(), 0);
}

TEST(RestoreGuardTest, StatelessAlgorithmRejectsForeignState) {
  ServerConfig config;
  config.seed = 5;
  auto source = CkptServer("fedavg", AlgorithmConfig{}, config);
  source->RunRound(CkptOptions());
  ServerCheckpoint checkpoint = source->MakeCheckpoint();
  ASSERT_TRUE(checkpoint.algorithm_state.empty());
  checkpoint.algorithm_state.push_back(StateVector{1.f, 2.f});

  auto target = CkptServer("fedavg", AlgorithmConfig{}, config);
  EXPECT_FALSE(target->RestoreCheckpoint(checkpoint).ok());
}

// --------------------------------------------------- model-file hardening

TEST(ModelFileHardeningTest, HostileNameLengthRejectedWithoutMutation) {
  const std::string path = TestPath("model_hostile_name.bin");
  Rng rng(3);
  auto model = CreateModel(CkptMlpSpec(), rng);
  ASSERT_TRUE(SaveModel(*model, path).ok());
  std::string bytes = Slurp(path);
  // First name length lives right after magic(8) + param count(8). Declare
  // an absurd length; the cap must reject it before allocating.
  uint32_t hostile = 0x7fffffff;
  std::memcpy(bytes.data() + 16, &hostile, sizeof(hostile));
  Dump(path, bytes);

  const StateVector before = FlattenState(*model);
  EXPECT_EQ(LoadModel(*model, path).code(), StatusCode::kDataLoss);
  EXPECT_EQ(FlattenState(*model), before);
}

TEST(ModelFileHardeningTest, TruncatedTensorDataRejectedWithoutMutation) {
  const std::string path = TestPath("model_trunc.bin");
  Rng rng(3);
  auto model = CreateModel(CkptMlpSpec(), rng);
  ASSERT_TRUE(SaveModel(*model, path).ok());
  const std::string bytes = Slurp(path);
  Dump(path, bytes.substr(0, bytes.size() - 10));

  Rng rng2(4);  // different init, so a partial load would be visible
  auto victim = CreateModel(CkptMlpSpec(), rng2);
  const StateVector before = FlattenState(*victim);
  EXPECT_EQ(LoadModel(*victim, path).code(), StatusCode::kDataLoss);
  EXPECT_EQ(FlattenState(*victim), before);
}

TEST(ModelFileHardeningTest, NaNPayloadRejectedWithoutMutation) {
  const std::string path = TestPath("model_nan.bin");
  Rng rng(3);
  auto model = CreateModel(CkptMlpSpec(), rng);
  ASSERT_TRUE(SaveModel(*model, path).ok());
  std::string bytes = Slurp(path);
  // Poison the LAST float in the file: every earlier tensor stages cleanly,
  // so this asserts the no-partial-commit property, not just detection.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  std::memcpy(bytes.data() + bytes.size() - sizeof(float), &nan, sizeof(nan));
  Dump(path, bytes);

  Rng rng2(4);
  auto victim = CreateModel(CkptMlpSpec(), rng2);
  const StateVector before = FlattenState(*victim);
  EXPECT_EQ(LoadModel(*victim, path).code(), StatusCode::kDataLoss);
  EXPECT_EQ(FlattenState(*victim), before);
}

}  // namespace
}  // namespace niid
