// Tests for the update-compression codec layer (fl/compress.h, DESIGN.md
// §13): per-codec round-trip properties, error-feedback residual contracts,
// hardened decode, bitwise thread-invariance of compressed rounds, resume
// bit-identity with residuals, v1 checkpoint back-compat, uplink byte
// accounting, and flag/parse rejection coverage. Every suite name starts
// with `Compress` so the tsan CI shard picks them up.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "fl/algorithm.h"
#include "fl/checkpoint.h"
#include "fl/client.h"
#include "fl/compress.h"
#include "fl/server.h"
#include "nn/models/factory.h"
#include "tensor/kernels.h"
#include "util/flags.h"
#include "util/rng.h"

namespace niid {
namespace {

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// ------------------------------------------------------------ codec units

// Uneven multi-segment layout, odd total size: exercises per-segment scales,
// the int4 nibble pack crossing segment boundaries, and vector tails.
std::vector<StateSegment> TestLayout() {
  return {{0, 400, true}, {400, 251, true}, {651, 350, false}};
}
constexpr int64_t kTestN = 1001;

StateVector RandomDelta(int64_t n, uint64_t seed) {
  Rng rng(seed);
  StateVector delta(n);
  for (float& x : delta) x = 0.05f * static_cast<float>(rng.Normal());
  return delta;
}

UpdateCodec MakeCodec(CodecKind kind, bool error_feedback = false,
                      double sparsity = 0.05) {
  CompressionConfig config;
  config.codec = kind;
  config.error_feedback = error_feedback;
  config.sparsity = sparsity;
  return UpdateCodec(config, /*server_seed=*/5, TestLayout(), kTestN);
}

TEST(CompressCodecTest, ParseCodecRoundTripsAndRejectsUnknown) {
  for (const CodecKind kind :
       {CodecKind::kIdentity, CodecKind::kInt8, CodecKind::kInt4,
        CodecKind::kTopK, CodecKind::kRandK}) {
    const StatusOr<CodecKind> parsed = ParseCodec(CodecName(kind));
    ASSERT_TRUE(parsed.ok()) << CodecName(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_EQ(*ParseCodec("identity"), CodecKind::kIdentity);
  for (const char* bad : {"gzip", "int16", "", "TOPK", "rand-k"}) {
    EXPECT_FALSE(ParseCodec(bad).ok()) << bad;
  }
}

// Per-segment scales recomputed independently of the codec, so the bound is
// checked against first principles, not against the implementation.
void ExpectQuantErrorBounded(const StateVector& reference,
                             const StateVector& decoded, int qmax) {
  for (const StateSegment& segment : TestLayout()) {
    float lo = 0.f, hi = 0.f;
    KernelMinMax(segment.size, reference.data() + segment.offset, &lo, &hi);
    const float scale = (hi - lo) / static_cast<float>(qmax);
    for (int64_t i = segment.offset; i < segment.offset + segment.size; ++i) {
      EXPECT_LE(std::fabs(decoded[i] - reference[i]), 0.51f * scale)
          << "coordinate " << i;
    }
  }
}

TEST(CompressCodecTest, Int8RoundTripErrorBoundedByHalfStep) {
  const UpdateCodec codec = MakeCodec(CodecKind::kInt8);
  const StateVector delta = RandomDelta(kTestN, 7);
  CodecScratch scratch;
  EncodedDelta payload;
  codec.Encode(0, 2, delta, nullptr, scratch, payload);
  // header(20) + segment count(8) + 3 x {lo, scale}(24) + n codes.
  EXPECT_EQ(payload.bytes.size(), 20u + 8u + 24u + kTestN);
  StateVector decoded;
  ASSERT_TRUE(codec.Decode(0, 2, payload, decoded, scratch).ok());
  ExpectQuantErrorBounded(delta, decoded, 255);
}

TEST(CompressCodecTest, Int4RoundTripErrorBoundedOddLength) {
  const UpdateCodec codec = MakeCodec(CodecKind::kInt4);
  const StateVector delta = RandomDelta(kTestN, 8);
  CodecScratch scratch;
  EncodedDelta payload;
  codec.Encode(3, 1, delta, nullptr, scratch, payload);
  // Nibbles pack globally: ceil(1001 / 2) = 501 code bytes.
  EXPECT_EQ(payload.bytes.size(), 20u + 8u + 24u + (kTestN + 1) / 2);
  StateVector decoded;
  ASSERT_TRUE(codec.Decode(3, 1, payload, decoded, scratch).ok());
  ExpectQuantErrorBounded(delta, decoded, 15);
}

TEST(CompressCodecTest, TopKKeepsLargestCoordinatesExactly) {
  const UpdateCodec codec = MakeCodec(CodecKind::kTopK);
  const int64_t k = codec.SparseK();
  EXPECT_EQ(k, 50);  // 0.05 * 1001 rounded
  const StateVector delta = RandomDelta(kTestN, 9);
  CodecScratch scratch;
  EncodedDelta payload;
  codec.Encode(1, 0, delta, nullptr, scratch, payload);
  EXPECT_EQ(payload.bytes.size(), 20u + 8u + 8u * k);
  StateVector decoded;
  ASSERT_TRUE(codec.Decode(1, 0, payload, decoded, scratch).ok());

  // The kept coordinates are exactly the k largest magnitudes, bit-exact.
  std::vector<float> magnitudes(kTestN);
  for (int64_t i = 0; i < kTestN; ++i) magnitudes[i] = std::fabs(delta[i]);
  std::nth_element(magnitudes.begin(), magnitudes.begin() + (k - 1),
                   magnitudes.end(), std::greater<float>());
  const float threshold = magnitudes[k - 1];
  int64_t kept = 0;
  for (int64_t i = 0; i < kTestN; ++i) {
    if (decoded[i] != 0.f) {
      ++kept;
      EXPECT_EQ(decoded[i], delta[i]) << "kept coordinate " << i;
      EXPECT_GE(std::fabs(delta[i]), threshold);
    }
  }
  EXPECT_EQ(kept, k);
}

TEST(CompressCodecTest, TopKBreaksTiesByIncreasingIndex) {
  const UpdateCodec codec = MakeCodec(CodecKind::kTopK);
  const int64_t k = codec.SparseK();
  StateVector delta(kTestN, 0.25f);  // every magnitude ties
  CodecScratch scratch;
  EncodedDelta payload;
  codec.Encode(0, 0, delta, nullptr, scratch, payload);
  StateVector decoded;
  ASSERT_TRUE(codec.Decode(0, 0, payload, decoded, scratch).ok());
  for (int64_t i = 0; i < kTestN; ++i) {
    EXPECT_EQ(decoded[i], i < k ? 0.25f : 0.f) << "coordinate " << i;
  }
}

TEST(CompressCodecTest, RandKShipsOnlyValuesAndReplaysIndices) {
  const UpdateCodec codec = MakeCodec(CodecKind::kRandK);
  const int64_t k = codec.SparseK();
  const StateVector delta = RandomDelta(kTestN, 10);
  CodecScratch scratch;
  EncodedDelta payload;
  codec.Encode(2, 3, delta, nullptr, scratch, payload);
  // No indices on the wire: header + k + k floats.
  EXPECT_EQ(payload.bytes.size(), 20u + 8u + 4u * k);

  StateVector decoded_a, decoded_b;
  ASSERT_TRUE(codec.Decode(2, 3, payload, decoded_a, scratch).ok());
  ASSERT_TRUE(codec.Decode(2, 3, payload, decoded_b, scratch).ok());
  EXPECT_EQ(decoded_a, decoded_b);  // replay is deterministic
  int64_t kept = 0;
  for (int64_t i = 0; i < kTestN; ++i) {
    if (decoded_a[i] != 0.f) {
      ++kept;
      EXPECT_EQ(decoded_a[i], delta[i]);
    }
  }
  EXPECT_LE(kept, k);  // a drawn coordinate may hold a genuine zero
  EXPECT_GT(kept, k / 2);

  // Different (round, client) cells draw different coordinate sets.
  EncodedDelta other;
  codec.Encode(3, 3, delta, nullptr, scratch, other);
  StateVector decoded_other;
  ASSERT_TRUE(codec.Decode(3, 3, other, decoded_other, scratch).ok());
  EXPECT_NE(decoded_a, decoded_other);
}

TEST(CompressCodecTest, ErrorFeedbackMakesSparsifierResidualExact) {
  const UpdateCodec codec =
      MakeCodec(CodecKind::kTopK, /*error_feedback=*/true);
  const StateVector delta = RandomDelta(kTestN, 11);
  StateVector residual;
  CodecScratch scratch;
  EncodedDelta payload;
  codec.Encode(0, 0, delta, &residual, scratch, payload);
  StateVector decoded;
  ASSERT_TRUE(codec.Decode(0, 0, payload, decoded, scratch).ok());
  // Sparsified values ship exactly, so residual + decoded == delta bitwise:
  // kept coordinates have residual 0, discarded ones carry delta untouched.
  ASSERT_EQ(residual.size(), delta.size());
  for (int64_t i = 0; i < kTestN; ++i) {
    if (decoded[i] != 0.f) {
      EXPECT_EQ(residual[i], 0.f) << i;
      EXPECT_EQ(decoded[i], delta[i]) << i;
    } else {
      EXPECT_EQ(residual[i], delta[i]) << i;
    }
  }

  // Second round: the residual folds into the next update, so a coordinate
  // the sparsifier keeps missing accumulates until it wins a slot.
  const StateVector delta2 = RandomDelta(kTestN, 12);
  StateVector corrected(kTestN);
  for (int64_t i = 0; i < kTestN; ++i) corrected[i] = delta2[i] + residual[i];
  EncodedDelta payload2;
  codec.Encode(1, 0, delta2, &residual, scratch, payload2);
  StateVector decoded2;
  ASSERT_TRUE(codec.Decode(1, 0, payload2, decoded2, scratch).ok());
  for (int64_t i = 0; i < kTestN; ++i) {
    if (decoded2[i] != 0.f) {
      EXPECT_EQ(decoded2[i], corrected[i]) << i;
      EXPECT_EQ(residual[i], 0.f) << i;
    } else {
      EXPECT_EQ(residual[i], corrected[i]) << i;
    }
  }
}

TEST(CompressCodecTest, ErrorFeedbackQuantizerResidualBoundedByHalfStep) {
  const UpdateCodec codec =
      MakeCodec(CodecKind::kInt8, /*error_feedback=*/true);
  const StateVector delta = RandomDelta(kTestN, 13);
  StateVector residual;
  CodecScratch scratch;
  EncodedDelta payload;
  codec.Encode(0, 1, delta, &residual, scratch, payload);
  StateVector decoded;
  ASSERT_TRUE(codec.Decode(0, 1, payload, decoded, scratch).ok());
  ASSERT_EQ(residual.size(), delta.size());
  for (const StateSegment& segment : TestLayout()) {
    float lo = 0.f, hi = 0.f;
    KernelMinMax(segment.size, delta.data() + segment.offset, &lo, &hi);
    const float scale = (hi - lo) / 255.f;
    for (int64_t i = segment.offset; i < segment.offset + segment.size; ++i) {
      // residual is exactly the quantization error of this round...
      EXPECT_LE(std::fabs(residual[i]), 0.51f * scale) << i;
      // ...and decoded + residual reconstructs the encoded value to float
      // rounding of one addition.
      EXPECT_NEAR(decoded[i] + residual[i], delta[i],
                  1e-6f + 1e-5f * std::fabs(delta[i]))
          << i;
    }
  }
}

TEST(CompressCodecTest, DecodeRejectsStructuralCorruption) {
  const UpdateCodec codec = MakeCodec(CodecKind::kTopK);
  const StateVector delta = RandomDelta(kTestN, 14);
  CodecScratch scratch;
  EncodedDelta payload;
  codec.Encode(4, 2, delta, nullptr, scratch, payload);
  StateVector decoded;
  ASSERT_TRUE(codec.Decode(4, 2, payload, decoded, scratch).ok());

  // Wrong (round, client) binding.
  EXPECT_FALSE(codec.Decode(5, 2, payload, decoded, scratch).ok());
  EXPECT_FALSE(codec.Decode(4, 1, payload, decoded, scratch).ok());

  // Wrong codec family for the payload.
  const UpdateCodec other = MakeCodec(CodecKind::kInt8);
  EXPECT_FALSE(other.Decode(4, 2, payload, decoded, scratch).ok());

  // Truncations at every prefix length fail cleanly.
  for (const size_t keep : {0u, 3u, 19u, 20u, 27u, 40u}) {
    EncodedDelta truncated;
    truncated.bytes.assign(payload.bytes.begin(),
                           payload.bytes.begin() + keep);
    EXPECT_FALSE(codec.Decode(4, 2, truncated, decoded, scratch).ok())
        << "kept " << keep;
  }

  // Trailing garbage is rejected, not silently ignored.
  EncodedDelta padded = payload;
  padded.bytes.push_back(0x5a);
  EXPECT_FALSE(codec.Decode(4, 2, padded, decoded, scratch).ok());

  // Unsorted top-k indices (duplicate injection) are rejected.
  EncodedDelta swapped = payload;
  std::memcpy(swapped.bytes.data() + 28, swapped.bytes.data() + 32, 4);
  EXPECT_FALSE(codec.Decode(4, 2, swapped, decoded, scratch).ok());
}

TEST(CompressCodecTest, DecodeSurvivesByteFlipFuzz) {
  // Flip every byte of every codec's payload: Decode must return a clean
  // Status each time — corrupt-but-parseable payloads are fine (the decoded
  // delta goes through ValidateUpdate downstream), crashing is not.
  const StateVector delta = RandomDelta(kTestN, 15);
  for (const CodecKind kind : {CodecKind::kInt8, CodecKind::kInt4,
                               CodecKind::kTopK, CodecKind::kRandK}) {
    const UpdateCodec codec = MakeCodec(kind);
    CodecScratch scratch;
    EncodedDelta payload;
    codec.Encode(0, 0, delta, nullptr, scratch, payload);
    StateVector decoded;
    for (size_t i = 0; i < payload.bytes.size(); ++i) {
      EncodedDelta corrupt = payload;
      corrupt.bytes[i] ^= 0xff;
      const Status status = codec.Decode(0, 0, corrupt, decoded, scratch);
      (void)status;  // any clean Status is acceptable; surviving is the test
    }
  }
}

// ------------------------------------------------------- federation helpers

ModelSpec CompressMlpSpec() {
  ModelSpec spec;
  spec.name = "mlp";
  spec.input_features = 10;
  spec.num_classes = 2;
  return spec;
}

FederatedDataset CompressData() {
  SyntheticTabularConfig config;
  config.num_features = 10;
  config.train_size = 256;
  config.test_size = 128;
  config.class_sep = 3.0f;
  config.seed = 4242;
  return MakeSyntheticTabular(config);
}

// Label-skewed shards (the synthetic stand-in for the paper's #C=1 setting):
// each party holds mostly one class, plus a small slice of the other.
std::vector<std::unique_ptr<Client>> CompressClients(const Dataset& full,
                                                     int num_clients) {
  std::vector<std::vector<int64_t>> by_label(2);
  for (int64_t i = 0; i < full.size(); ++i) {
    by_label[full.labels[i]].push_back(i);
  }
  std::vector<std::unique_ptr<Client>> clients;
  for (int i = 0; i < num_clients; ++i) {
    const auto& own = by_label[i % 2];
    const auto& other = by_label[(i + 1) % 2];
    std::vector<int64_t> shard;
    for (int64_t j = 0; j < 40; ++j) {
      shard.push_back(own[(static_cast<int64_t>(i) * 40 + j) % own.size()]);
    }
    for (int64_t j = 0; j < 8; ++j) {
      shard.push_back(other[(static_cast<int64_t>(i) * 8 + j) % other.size()]);
    }
    clients.push_back(
        std::make_unique<Client>(i, Subset(full, shard), Rng(100 + i)));
  }
  return clients;
}

std::unique_ptr<FederatedServer> CompressServer(
    const std::string& algorithm, const CompressionConfig& compression,
    int threads, const Dataset& train) {
  ServerConfig config;
  config.seed = 5;
  config.sample_fraction = 0.75;
  config.num_threads = threads;
  config.compression = compression;
  auto algorithm_or = CreateAlgorithm(algorithm, AlgorithmConfig{});
  return std::make_unique<FederatedServer>(
      MakeModelFactory(CompressMlpSpec()), CompressClients(train, 4),
      std::move(*algorithm_or), config);
}

LocalTrainOptions CompressOptions() {
  LocalTrainOptions options;
  options.local_epochs = 2;
  options.batch_size = 16;
  options.learning_rate = 0.05f;
  return options;
}

struct CompressRunResult {
  StateVector state;
  std::vector<double> losses;
  std::vector<int64_t> bytes;
  EvalResult eval;
};

CompressRunResult RunCompressedRounds(const std::string& algorithm,
                                      const CompressionConfig& compression,
                                      int threads, int rounds,
                                      const FederatedDataset& data) {
  auto server = CompressServer(algorithm, compression, threads, data.train);
  CompressRunResult result;
  for (int round = 0; round < rounds; ++round) {
    const RoundStats stats = server->RunRound(CompressOptions());
    result.losses.push_back(stats.mean_local_loss);
    result.bytes.push_back(stats.bytes_uplink);
  }
  result.state = server->global_state();
  result.eval = server->EvaluateGlobal(data.test, 64);
  return result;
}

// ------------------------------------------------------- thread invariance

CompressionConfig Int8Ef() {
  CompressionConfig config;
  config.codec = CodecKind::kInt8;
  config.error_feedback = true;
  return config;
}

TEST(CompressRoundIdentityTest, BitIdenticalAcrossThreadCountsAllAlgorithms) {
  const FederatedDataset data = CompressData();
  for (const char* algorithm :
       {"fedavg", "fedprox", "scaffold", "fednova", "fedadam"}) {
    const CompressRunResult serial =
        RunCompressedRounds(algorithm, Int8Ef(), 1, 3, data);
    for (const int threads : {2, 8}) {
      const CompressRunResult parallel =
          RunCompressedRounds(algorithm, Int8Ef(), threads, 3, data);
      EXPECT_EQ(parallel.state, serial.state)
          << algorithm << " threads=" << threads;
      EXPECT_EQ(parallel.losses, serial.losses)
          << algorithm << " threads=" << threads;
      EXPECT_EQ(parallel.bytes, serial.bytes)
          << algorithm << " threads=" << threads;
      EXPECT_EQ(parallel.eval.loss, serial.eval.loss)
          << algorithm << " threads=" << threads;
      EXPECT_EQ(parallel.eval.accuracy, serial.eval.accuracy)
          << algorithm << " threads=" << threads;
    }
  }
}

TEST(CompressRoundIdentityTest, BitIdenticalAcrossThreadCountsAllCodecs) {
  const FederatedDataset data = CompressData();
  for (const CodecKind kind :
       {CodecKind::kIdentity, CodecKind::kInt8, CodecKind::kInt4,
        CodecKind::kTopK, CodecKind::kRandK}) {
    CompressionConfig compression;
    compression.codec = kind;
    compression.error_feedback = kind != CodecKind::kIdentity;
    const CompressRunResult serial =
        RunCompressedRounds("fedavg", compression, 1, 3, data);
    for (const int threads : {2, 8}) {
      const CompressRunResult parallel =
          RunCompressedRounds("fedavg", compression, threads, 3, data);
      EXPECT_EQ(parallel.state, serial.state)
          << CodecName(kind) << " threads=" << threads;
      EXPECT_EQ(parallel.losses, serial.losses)
          << CodecName(kind) << " threads=" << threads;
      EXPECT_EQ(parallel.bytes, serial.bytes)
          << CodecName(kind) << " threads=" << threads;
    }
  }
}

// ---------------------------------------------------------- accuracy gap

TEST(CompressAccuracyTest, Int8ErrorFeedbackTracksUncompressedFedAvg) {
  const FederatedDataset data = CompressData();
  const CompressRunResult uncompressed =
      RunCompressedRounds("fedavg", CompressionConfig{}, 2, 8, data);
  const CompressRunResult compressed =
      RunCompressedRounds("fedavg", Int8Ef(), 2, 8, data);
  // Same skewed federation, same seeds: int8 + error feedback must land
  // within half an accuracy point of the float32 oracle.
  EXPECT_NEAR(compressed.eval.accuracy, uncompressed.eval.accuracy, 0.005);
  EXPECT_NEAR(compressed.eval.loss, uncompressed.eval.loss, 0.05);
  // And the compression was real: a round of int8 uplink is ~4x smaller.
  ASSERT_FALSE(compressed.bytes.empty());
  EXPECT_LT(compressed.bytes.back() * 3, uncompressed.bytes.back());
}

// ------------------------------------------------------- resume identity

TEST(CompressResumeTest, KillAndResumeBitIdenticalWithResiduals) {
  const FederatedDataset data = CompressData();
  for (const CodecKind kind : {CodecKind::kInt8, CodecKind::kRandK}) {
    CompressionConfig compression;
    compression.codec = kind;
    compression.error_feedback = true;
    const int total_rounds = 5, kill_after = 2;

    auto uninterrupted = CompressServer("fedavg", compression, 2, data.train);
    for (int round = 0; round < total_rounds; ++round) {
      uninterrupted->RunRound(CompressOptions());
    }

    const std::string path =
        TestPath("compress_resume_" + CodecName(kind) + ".bin");
    {
      auto first_process = CompressServer("fedavg", compression, 2,
                                          data.train);
      for (int round = 0; round < kill_after; ++round) {
        first_process->RunRound(CompressOptions());
      }
      // Error feedback has engaged by now: at least one party holds a
      // non-empty residual that the checkpoint must carry.
      bool any_residual = false;
      for (int i = 0; i < first_process->num_clients(); ++i) {
        any_residual |= !first_process->client(i).residual().empty();
      }
      ASSERT_TRUE(any_residual) << CodecName(kind);
      ASSERT_TRUE(first_process->SaveCheckpoint(path).ok()) << CodecName(kind);
    }

    auto resumed = CompressServer("fedavg", compression, 2, data.train);
    const Status loaded = resumed->LoadCheckpoint(path);
    ASSERT_TRUE(loaded.ok()) << CodecName(kind) << ": " << loaded.ToString();
    std::vector<double> resumed_losses;
    for (int round = kill_after; round < total_rounds; ++round) {
      resumed_losses.push_back(
          resumed->RunRound(CompressOptions()).mean_local_loss);
    }

    EXPECT_EQ(resumed->global_state(), uninterrupted->global_state())
        << CodecName(kind);
    EXPECT_EQ(resumed->cumulative_bytes_uplink(),
              uninterrupted->cumulative_bytes_uplink())
        << CodecName(kind);
    for (int i = 0; i < resumed->num_clients(); ++i) {
      EXPECT_EQ(resumed->client(i).residual(),
                uninterrupted->client(i).residual())
          << CodecName(kind) << " client " << i;
    }
    const EvalResult a = resumed->EvaluateGlobal(data.test, 64);
    const EvalResult b = uninterrupted->EvaluateGlobal(data.test, 64);
    EXPECT_EQ(a.loss, b.loss) << CodecName(kind);
    EXPECT_EQ(a.accuracy, b.accuracy) << CodecName(kind);
  }
}

// --------------------------------------------------- checkpoint back-compat

// Byte-level mirror of the v1 writer (the format shipped before the codec
// layer), so back-compat is tested against real v1 bytes, not today's writer.
void V1AppendPod(std::string& out, const void* value, size_t size) {
  out.append(reinterpret_cast<const char*>(value), size);
}
template <typename T>
void V1Pod(std::string& out, const T& value) {
  V1AppendPod(out, &value, sizeof(T));
}
void V1String(std::string& out, const std::string& value) {
  V1Pod(out, static_cast<uint64_t>(value.size()));
  out.append(value);
}
void V1Floats(std::string& out, const StateVector& values) {
  V1Pod(out, static_cast<uint64_t>(values.size()));
  if (!values.empty()) {
    V1AppendPod(out, values.data(), values.size() * sizeof(float));
  }
}
void V1Rng(std::string& out, const RngState& rng) {
  for (int i = 0; i < 4; ++i) V1Pod(out, rng.state[i]);
  V1Pod(out, static_cast<uint8_t>(rng.has_cached_normal ? 1 : 0));
  V1Pod(out, rng.cached_normal);
}
uint64_t V1Fnv1a(const char* data, size_t size) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string WriteV1Bytes(const ServerCheckpoint& checkpoint) {
  std::string payload;
  payload.append("NIIDCKPT", 8);
  V1Pod(payload, uint32_t{1});
  V1Pod(payload, checkpoint.config_seed);
  V1String(payload, checkpoint.algorithm);
  V1Pod(payload, checkpoint.num_clients);
  V1Pod(payload, checkpoint.state_size);
  V1Pod(payload, checkpoint.rounds_completed);
  V1Pod(payload, checkpoint.cumulative_upload_floats);
  V1Rng(payload, checkpoint.server_rng);
  V1Floats(payload, checkpoint.global_state);
  V1Pod(payload, static_cast<uint64_t>(checkpoint.algorithm_state.size()));
  for (const StateVector& vec : checkpoint.algorithm_state) {
    V1Floats(payload, vec);
  }
  V1Pod(payload, static_cast<uint64_t>(checkpoint.client_rng.size()));
  for (const RngState& rng : checkpoint.client_rng) V1Rng(payload, rng);
  V1Pod(payload, static_cast<uint64_t>(checkpoint.client_buffers.size()));
  for (const StateVector& vec : checkpoint.client_buffers) {
    V1Floats(payload, vec);
  }
  V1Pod(payload, checkpoint.trial);
  V1Pod(payload, static_cast<uint64_t>(checkpoint.round_accuracy.size()));
  for (const double v : checkpoint.round_accuracy) V1Pod(payload, v);
  V1Pod(payload, static_cast<uint64_t>(checkpoint.round_loss.size()));
  for (const double v : checkpoint.round_loss) V1Pod(payload, v);
  V1Pod(payload, V1Fnv1a(payload.data(), payload.size()));
  return payload;
}

TEST(CompressCheckpointTest, V1FilesStillLoadWhenCompressionOff) {
  const FederatedDataset data = CompressData();
  auto source = CompressServer("fedavg", CompressionConfig{}, 1, data.train);
  source->RunRound(CompressOptions());
  const ServerCheckpoint snapshot = source->MakeCheckpoint();

  const std::string path = TestPath("compress_v1_compat.bin");
  const std::string v1_bytes = WriteV1Bytes(snapshot);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(v1_bytes.data(),
              static_cast<std::streamsize>(v1_bytes.size()));
  }

  StatusOr<ServerCheckpoint> loaded = ReadCheckpointFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->codec, "none");
  EXPECT_FALSE(loaded->error_feedback);
  EXPECT_EQ(static_cast<int64_t>(loaded->client_residuals.size()),
            loaded->num_clients);
  for (const StateVector& residual : loaded->client_residuals) {
    EXPECT_TRUE(residual.empty());
  }
  EXPECT_EQ(loaded->cumulative_bytes_uplink,
            loaded->cumulative_upload_floats * 4);

  // Restores into a compression-off server and continues bit-identically.
  auto resumed = CompressServer("fedavg", CompressionConfig{}, 1, data.train);
  ASSERT_TRUE(resumed->RestoreCheckpoint(*loaded).ok());
  source->RunRound(CompressOptions());
  resumed->RunRound(CompressOptions());
  EXPECT_EQ(resumed->global_state(), source->global_state());

  // But not into a compressed server: the codec fingerprint differs.
  auto compressed = CompressServer("fedavg", Int8Ef(), 1, data.train);
  EXPECT_FALSE(compressed->RestoreCheckpoint(*loaded).ok());
}

TEST(CompressCheckpointTest, CodecFingerprintMismatchRejectedIntact) {
  const FederatedDataset data = CompressData();
  auto source = CompressServer("fedavg", Int8Ef(), 1, data.train);
  source->RunRound(CompressOptions());
  const ServerCheckpoint checkpoint = source->MakeCheckpoint();
  EXPECT_EQ(checkpoint.codec, "int8");
  EXPECT_TRUE(checkpoint.error_feedback);

  // Same codec, error feedback off: rejected, server untouched.
  CompressionConfig no_ef;
  no_ef.codec = CodecKind::kInt8;
  auto target = CompressServer("fedavg", no_ef, 1, data.train);
  const StateVector before = target->global_state();
  EXPECT_FALSE(target->RestoreCheckpoint(checkpoint).ok());
  EXPECT_EQ(target->global_state(), before);
  EXPECT_EQ(target->rounds_completed(), 0);

  // Different codec family: rejected.
  CompressionConfig topk;
  topk.codec = CodecKind::kTopK;
  topk.error_feedback = true;
  auto other = CompressServer("fedavg", topk, 1, data.train);
  EXPECT_FALSE(other->RestoreCheckpoint(checkpoint).ok());

  // Exact fingerprint: accepted.
  auto matching = CompressServer("fedavg", Int8Ef(), 1, data.train);
  EXPECT_TRUE(matching->RestoreCheckpoint(checkpoint).ok());
}

// ------------------------------------------------------- byte accounting

TEST(CompressStatsTest, ByteAccountingMatchesPayloadMath) {
  const FederatedDataset data = CompressData();

  auto identity = CompressServer("fedavg", CompressionConfig{}, 1, data.train);
  const RoundStats id_stats = identity->RunRound(CompressOptions());
  const int64_t state_bytes =
      static_cast<int64_t>(identity->global_state().size()) * 4;
  // Identity: wire bytes == uncompressed bytes == arrivals * 4 * state_size.
  EXPECT_EQ(id_stats.bytes_uplink, id_stats.bytes_uplink_uncompressed);
  EXPECT_EQ(id_stats.bytes_uplink, id_stats.aggregated * state_bytes);
  EXPECT_EQ(identity->cumulative_bytes_uplink(), id_stats.bytes_uplink);

  CompressionConfig int8;
  int8.codec = CodecKind::kInt8;
  auto compressed = CompressServer("fedavg", int8, 1, data.train);
  const RoundStats c1 = compressed->RunRound(CompressOptions());
  const RoundStats c2 = compressed->RunRound(CompressOptions());
  EXPECT_EQ(c1.bytes_uplink_uncompressed, c1.aggregated * state_bytes);
  // int8 code bytes are n of 4n, so the wire ratio must clear 3.5x even with
  // per-segment scale metadata on top.
  EXPECT_LT(c1.bytes_uplink * 7, c1.bytes_uplink_uncompressed * 2);
  EXPECT_GT(c1.bytes_uplink, 0);
  EXPECT_EQ(compressed->cumulative_bytes_uplink(),
            c1.bytes_uplink + c2.bytes_uplink);
}

TEST(CompressStatsTest, RoundStatsCsvCarriesByteColumns) {
  RoundStats stats;
  stats.round = 3;
  stats.mean_local_loss = 0.5;
  stats.aggregated = 4;
  stats.bytes_uplink = 1234;
  stats.bytes_uplink_uncompressed = 4936;
  const std::string path = TestPath("compress_round_stats.csv");
  ASSERT_TRUE(WriteRoundStatsCsv({stats}, path).ok());
  std::ifstream in(path);
  std::string header, row;
  ASSERT_TRUE(std::getline(in, header));
  ASSERT_TRUE(std::getline(in, row));
  EXPECT_NE(header.find("bytes_uplink,bytes_uplink_uncompressed"),
            std::string::npos);
  // Scenario counters append after the byte columns (schema-stable prefix).
  EXPECT_EQ(row, "3,0.5,4,0,0,0,0,0,1,1234,4936,0,0,0,0,0");
}

// ------------------------------------------------------------- flag surface

TEST(CompressFlagsTest, CodecFlagsParseAndUnknownNamesRejected) {
  const char* argv[] = {"prog", "--compress=int4", "--compress_k=0.1",
                        "--error_feedback", "--compress_seed=9"};
  FlagParser flags(5, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetString("compress", "none"), "int4");
  EXPECT_DOUBLE_EQ(flags.GetDouble("compress_k", 0.05), 0.1);
  EXPECT_TRUE(flags.GetBool("error_feedback", false));
  EXPECT_EQ(flags.GetInt64("compress_seed", 0), 9);
  EXPECT_TRUE(flags.Validate().ok());
  EXPECT_TRUE(ParseCodec(flags.GetString("compress", "none")).ok());

  // A typo'd flag the program never queries is rejected by Validate().
  const char* bad_argv[] = {"prog", "--compess=int8"};
  FlagParser bad_flags(2, const_cast<char**>(bad_argv));
  EXPECT_EQ(bad_flags.GetString("compress", "none"), "none");
  EXPECT_FALSE(bad_flags.Validate().ok());

  // A known flag with an unknown codec value fails at ParseCodec.
  const char* bogus_argv[] = {"prog", "--compress=gzip"};
  FlagParser bogus_flags(2, const_cast<char**>(bogus_argv));
  const std::string name = bogus_flags.GetString("compress", "none");
  EXPECT_TRUE(bogus_flags.Validate().ok());
  EXPECT_FALSE(ParseCodec(name).ok());
}

}  // namespace
}  // namespace niid
