// Tests for the thread pool, Status/StatusOr, logging plumbing, and the
// worker-workspace simulation engine (checkout semantics, replica counting,
// and bitwise determinism of rounds and pooled evaluation).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "fl/algorithm.h"
#include "fl/client.h"
#include "fl/metrics.h"
#include "fl/server.h"
#include "fl/workspace.h"
#include "nn/models/factory.h"
#include "util/logging.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace niid {
namespace {

// ---------------------------------------------------------------- pool

TEST(ThreadPoolTest, RunsAllScheduledTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
  EXPECT_EQ(pool.num_threads(), 4);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Schedule([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Schedule([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<int> hits(200, 0);
  ParallelFor(&pool, 200, [&hits](int64_t i) { hits[i] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, NullPoolRunsSerially) {
  std::vector<int64_t> order;
  ParallelFor(nullptr, 5, [&order](int64_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int64_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, TaskExceptionSurfacesFromWait) {
  ThreadPool pool(2);
  pool.Schedule([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
}

TEST(ThreadPoolTest, PoolRemainsUsableAfterTaskException) {
  ThreadPool pool(2);
  pool.Schedule([] { throw std::runtime_error("first batch"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The error slot must be clear: a clean batch completes without throwing.
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, OnlyFirstExceptionIsRethrown) {
  ThreadPool pool(4);
  for (int i = 0; i < 20; ++i) {
    pool.Schedule([] { throw std::runtime_error("boom"); });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  pool.Wait();  // all later exceptions were dropped; pool is clean
  SUCCEED();
}

TEST(ParallelForTest, BodyExceptionPropagatesToCaller) {
  ThreadPool pool(3);
  EXPECT_THROW(
      ParallelFor(&pool, 100,
                  [](int64_t i) {
                    if (i == 37) throw std::invalid_argument("bad index");
                  }),
      std::invalid_argument);
  // Remaining chunks drained; the pool is reusable afterwards.
  std::vector<int> hits(64, 0);
  ParallelFor(&pool, 64, [&hits](int64_t i) { hits[i] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, SerialPathPropagatesException) {
  EXPECT_THROW(ParallelFor(nullptr, 5,
                           [](int64_t i) {
                             if (i == 2) throw std::runtime_error("serial");
                           }),
               std::runtime_error);
}

TEST(ParallelForTest, ChunkedSchedulingCoversLargeRanges) {
  ThreadPool pool(4);
  constexpr int64_t kN = 100000;
  std::vector<unsigned char> hits(kN, 0);
  ParallelFor(&pool, kN, [&hits](int64_t i) { hits[i] += 1; });
  int64_t total = 0;
  for (const unsigned char h : hits) total += h;
  EXPECT_EQ(total, kN);
}

TEST(ParallelForTest, ResultsIndependentOfThreadCount) {
  auto compute = [](int threads) {
    std::vector<double> out(64, 0.0);
    ThreadPool pool(threads);
    ParallelFor(&pool, 64, [&out](int64_t i) {
      double acc = 0;
      for (int k = 0; k < 1000; ++k) acc += (i + 1) * 0.001;
      out[i] = acc;
    });
    return out;
  };
  EXPECT_EQ(compute(1), compute(4));
}

// ---------------------------------------------------------------- status

TEST(StatusTest, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = Status::NotFound("missing thing");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "missing thing");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::InvalidArgument("bad"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::vector<int>> result(std::vector<int>{1, 2, 3});
  const std::vector<int> moved = std::move(result).value();
  EXPECT_EQ(moved.size(), 3u);
}

TEST(StatusOrDeathTest, ValueOnErrorAborts) {
  StatusOr<int> result(Status::Internal("boom"));
  EXPECT_DEATH(result.value(), "boom");
}

// ---------------------------------------------------------------- logging

TEST(LoggingTest, LevelFilterSuppressesBelowThreshold) {
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  // These must compile and not crash; output routing is not asserted here
  // (it goes to clog/cerr), only that streaming works at every level.
  NIID_LOG(kDebug) << "invisible " << 1;
  NIID_LOG(kInfo) << "invisible " << 2;
  NIID_LOG(kWarning) << "invisible " << 3;
  SetLogLevel(saved);
  SUCCEED();
}

TEST(LoggingTest, SetAndGetLevelRoundTrips) {
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
  SetLogLevel(saved);
}

// ----------------------------------------------------------- workspaces

ModelSpec WsMlpSpec() {
  ModelSpec spec;
  spec.name = "mlp";
  spec.input_features = 10;
  spec.num_classes = 2;
  return spec;
}

Dataset WsDataset(int64_t n, uint64_t seed) {
  SyntheticTabularConfig config;
  config.num_features = 10;
  config.train_size = n;
  config.test_size = 1;
  config.class_sep = 3.0f;
  config.seed = seed;
  return MakeSyntheticTabular(config).train;
}

LocalTrainOptions WsOptions() {
  LocalTrainOptions options;
  options.local_epochs = 2;
  options.batch_size = 16;
  options.learning_rate = 0.05f;
  return options;
}

// Clients share one underlying distribution and differ only in their shard.
std::vector<std::unique_ptr<Client>> WsClients(int num_clients,
                                               int64_t samples_each) {
  Dataset full = WsDataset(256, /*seed=*/4242);
  std::vector<std::unique_ptr<Client>> clients;
  for (int i = 0; i < num_clients; ++i) {
    std::vector<int64_t> shard;
    for (int64_t k = 0; k < samples_each; ++k) {
      shard.push_back((static_cast<int64_t>(i) * samples_each + k) %
                      full.size());
    }
    clients.push_back(
        std::make_unique<Client>(i, Subset(full, shard), Rng(100 + i)));
  }
  return clients;
}

std::unique_ptr<FederatedServer> WsServer(const std::string& algorithm_name,
                                          int num_clients, double fraction,
                                          int threads,
                                          int64_t samples_each = 64) {
  auto algorithm = CreateAlgorithm(algorithm_name, AlgorithmConfig{});
  ServerConfig config;
  config.sample_fraction = fraction;
  config.seed = 5;
  config.num_threads = threads;
  return std::make_unique<FederatedServer>(MakeModelFactory(WsMlpSpec()),
                                           WsClients(num_clients, samples_each),
                                           std::move(*algorithm), config);
}

TEST(WorkspacePoolTest, ReplicaCounterTracksPoolLifetime) {
  const int64_t before = LiveModelReplicaCount();
  {
    WorkspacePool pool(MakeModelFactory(WsMlpSpec()), 3);
    EXPECT_EQ(pool.size(), 3);
    EXPECT_EQ(LiveModelReplicaCount(), before + 3);
  }
  EXPECT_EQ(LiveModelReplicaCount(), before);
}

TEST(WorkspacePoolTest, AcquireHandsOutExclusiveContexts) {
  WorkspacePool pool(MakeModelFactory(WsMlpSpec()), 2);
  TrainContext* a = pool.Acquire();
  TrainContext* b = pool.Acquire();
  EXPECT_NE(a, b);
  pool.Release(a);
  // With b still checked out, the only free context is a.
  TrainContext* c = pool.Acquire();
  EXPECT_EQ(c, a);
  pool.Release(b);
  pool.Release(c);
}

TEST(WorkspacePoolTest, LeaseReleasesOnScopeExit) {
  WorkspacePool pool(MakeModelFactory(WsMlpSpec()), 1);
  {
    WorkspaceLease lease(pool);
    EXPECT_NE(lease.get(), nullptr);
  }
  // Re-acquirable: would deadlock if the lease leaked its context.
  WorkspaceLease again(pool);
  EXPECT_NE(again.get(), nullptr);
}

// The tentpole scalability claim, in the shape of the paper's Figure 12 run:
// 100 parties at sampling fraction 0.1 must keep exactly num_threads model
// replicas alive — not one per party.
TEST(WorkspacePoolTest, Fig12ShapeRunKeepsReplicasAtThreadCount) {
  const int64_t before = LiveModelReplicaCount();
  auto server = WsServer("fedavg", /*num_clients=*/100, /*fraction=*/0.1,
                         /*threads=*/2, /*samples_each=*/16);
  EXPECT_EQ(server->num_workspaces(), 2);
  EXPECT_EQ(LiveModelReplicaCount() - before, 2);
  LocalTrainOptions options = WsOptions();
  options.local_epochs = 1;
  for (int round = 0; round < 2; ++round) {
    const RoundStats stats = server->RunRound(options);
    EXPECT_EQ(stats.sampled_clients.size(), 10u);
    EXPECT_EQ(LiveModelReplicaCount() - before, 2);
  }
  server.reset();
  EXPECT_EQ(LiveModelReplicaCount(), before);
}

struct RoundRunResult {
  StateVector state;
  std::vector<std::vector<int>> sampled;
  std::vector<double> losses;
  EvalResult eval;
};

RoundRunResult RunRounds(const std::string& algorithm_name, int threads,
                         int rounds, const Dataset& test) {
  auto server = WsServer(algorithm_name, /*num_clients=*/4, /*fraction=*/0.5,
                         threads);
  RoundRunResult result;
  for (int round = 0; round < rounds; ++round) {
    const RoundStats stats = server->RunRound(WsOptions());
    result.sampled.push_back(stats.sampled_clients);
    result.losses.push_back(stats.mean_local_loss);
  }
  result.state = server->global_state();
  result.eval = server->EvaluateGlobal(test, /*batch_size=*/32);
  return result;
}

// Bitwise round identity: the same simulation must produce the same global
// state, per-round stats, and evaluation no matter the thread count, for
// every algorithm family (plain averaging, gradient hooks, per-client
// control variates, normalized averaging, adaptive server optimizers).
TEST(RoundIdentityTest, BitIdenticalAcrossThreadCounts) {
  const Dataset test = WsDataset(100, 4242);
  for (const std::string name :
       {"fedavg", "fedprox", "scaffold", "fednova", "fedadam"}) {
    const RoundRunResult base = RunRounds(name, /*threads=*/1, /*rounds=*/3,
                                          test);
    for (int threads : {2, 8}) {
      const RoundRunResult run = RunRounds(name, threads, /*rounds=*/3, test);
      EXPECT_EQ(run.state, base.state) << name << " threads=" << threads;
      EXPECT_EQ(run.sampled, base.sampled) << name;
      EXPECT_EQ(run.losses, base.losses) << name;
      EXPECT_EQ(run.eval.loss, base.eval.loss) << name;
      EXPECT_EQ(run.eval.accuracy, base.eval.accuracy) << name;
      EXPECT_EQ(run.eval.num_samples, base.eval.num_samples) << name;
    }
  }
}

// Pooled evaluation must reproduce the serial evaluator bit for bit,
// including on a dataset whose size is not a multiple of the batch size.
TEST(EvalIdentityTest, PooledMatchesSerialBitwise) {
  const ModelFactory factory = MakeModelFactory(WsMlpSpec());
  Rng rng(7);
  auto model = factory(rng);
  const StateVector state = FlattenState(*model);
  const Dataset data = WsDataset(230, /*seed=*/99);  // 230 = 3*64 + 38

  const EvalResult serial = Evaluate(*model, data, /*batch_size=*/64);

  WorkspacePool workspaces(factory, 3);
  ThreadPool pool(3);
  for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
    const EvalResult pooled =
        EvaluateParallel(workspaces, state, data, p, /*batch_size=*/64);
    EXPECT_EQ(pooled.loss, serial.loss);
    EXPECT_EQ(pooled.accuracy, serial.accuracy);
    EXPECT_EQ(pooled.num_samples, serial.num_samples);
  }
}

TEST(EvalIdentityTest, SingleBatchAndEmptyShapes) {
  const ModelFactory factory = MakeModelFactory(WsMlpSpec());
  Rng rng(8);
  auto model = factory(rng);
  const StateVector state = FlattenState(*model);
  WorkspacePool workspaces(factory, 2);
  const Dataset tiny = WsDataset(5, /*seed=*/1);  // single remainder batch
  const EvalResult serial = Evaluate(*model, tiny, /*batch_size=*/64);
  const EvalResult pooled =
      EvaluateParallel(workspaces, state, tiny, nullptr, /*batch_size=*/64);
  EXPECT_EQ(pooled.loss, serial.loss);
  EXPECT_EQ(pooled.accuracy, serial.accuracy);
  EXPECT_EQ(pooled.num_samples, 5);
}

// FedBN under workspace sharing: two parties time-sharing ONE context across
// interleaved rounds must see exactly the buffers they trained — matching
// twin parties that each own a dedicated context (the pre-workspace
// per-client-model behavior).
TEST(FedBnWorkspaceTest, BufferSegmentsSurviveTimeSharing) {
  ModelSpec spec;
  spec.name = "resnet";
  spec.input_channels = 1;
  spec.input_height = 16;
  spec.input_width = 16;
  spec.num_classes = 4;
  spec.resnet_blocks_per_stage = 1;
  const ModelFactory factory = MakeModelFactory(spec);

  SyntheticImageConfig icfg;
  icfg.num_classes = 4;
  icfg.channels = 1;
  icfg.height = 16;
  icfg.width = 16;
  icfg.train_size = 48;
  icfg.test_size = 16;
  icfg.seed = 21;
  const FederatedDataset fed = MakeSyntheticImages(icfg);
  auto shard = [&fed](int64_t start) {
    std::vector<int64_t> indices(24);
    std::iota(indices.begin(), indices.end(), start);
    return Subset(fed.train, indices);
  };

  Rng init(3);
  const StateVector global = FlattenState(*factory(init));
  LocalTrainOptions options;
  options.local_epochs = 1;
  options.batch_size = 8;
  options.learning_rate = 0.05f;
  options.keep_local_buffers = true;

  // Arm 1: both parties share one workspace, interleaved A, B, A, B.
  Client a1(0, shard(0), Rng(11));
  Client b1(1, shard(24), Rng(22));
  TrainContext ctx_shared(factory);
  std::vector<LocalUpdate> arm1;
  arm1.push_back(a1.Train(ctx_shared, global, options));
  arm1.push_back(b1.Train(ctx_shared, global, options));
  arm1.push_back(a1.Train(ctx_shared, global, options));
  arm1.push_back(b1.Train(ctx_shared, global, options));
  EXPECT_TRUE(a1.has_local_buffers());
  EXPECT_TRUE(b1.has_local_buffers());

  // Arm 2: identical twins, each with a dedicated workspace.
  Client a2(0, shard(0), Rng(11));
  Client b2(1, shard(24), Rng(22));
  TrainContext ctx_a(factory);
  TrainContext ctx_b(factory);
  std::vector<LocalUpdate> arm2;
  arm2.push_back(a2.Train(ctx_a, global, options));
  arm2.push_back(b2.Train(ctx_b, global, options));
  arm2.push_back(a2.Train(ctx_a, global, options));
  arm2.push_back(b2.Train(ctx_b, global, options));

  for (size_t i = 0; i < arm1.size(); ++i) {
    EXPECT_EQ(arm1[i].delta, arm2[i].delta) << "assignment " << i;
    EXPECT_EQ(arm1[i].average_loss, arm2[i].average_loss) << "assignment " << i;
  }

  // Personalized views (global trainables + each party's own buffers) must
  // also round-trip identically through the shared context.
  a1.LoadPersonalState(*ctx_shared.model, ctx_shared.layout, global);
  const EvalResult pa1 = Evaluate(*ctx_shared.model, fed.test);
  a2.LoadPersonalState(*ctx_a.model, ctx_a.layout, global);
  const EvalResult pa2 = Evaluate(*ctx_a.model, fed.test);
  EXPECT_EQ(pa1.loss, pa2.loss);
  EXPECT_EQ(pa1.accuracy, pa2.accuracy);
  b1.LoadPersonalState(*ctx_shared.model, ctx_shared.layout, global);
  const EvalResult pb1 = Evaluate(*ctx_shared.model, fed.test);
  b2.LoadPersonalState(*ctx_b.model, ctx_b.layout, global);
  const EvalResult pb2 = Evaluate(*ctx_b.model, fed.test);
  EXPECT_EQ(pb1.loss, pb2.loss);
  // The two parties trained on different shards: their personalized BN
  // statistics must genuinely differ (the store is per-party, not shared).
  EXPECT_NE(pa1.loss, pb1.loss);
}

}  // namespace
}  // namespace niid
