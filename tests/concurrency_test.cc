// Tests for the thread pool, Status/StatusOr, and logging plumbing.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/logging.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace niid {
namespace {

// ---------------------------------------------------------------- pool

TEST(ThreadPoolTest, RunsAllScheduledTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
  EXPECT_EQ(pool.num_threads(), 4);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Schedule([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Schedule([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<int> hits(200, 0);
  ParallelFor(&pool, 200, [&hits](int64_t i) { hits[i] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, NullPoolRunsSerially) {
  std::vector<int64_t> order;
  ParallelFor(nullptr, 5, [&order](int64_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int64_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, TaskExceptionSurfacesFromWait) {
  ThreadPool pool(2);
  pool.Schedule([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
}

TEST(ThreadPoolTest, PoolRemainsUsableAfterTaskException) {
  ThreadPool pool(2);
  pool.Schedule([] { throw std::runtime_error("first batch"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The error slot must be clear: a clean batch completes without throwing.
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, OnlyFirstExceptionIsRethrown) {
  ThreadPool pool(4);
  for (int i = 0; i < 20; ++i) {
    pool.Schedule([] { throw std::runtime_error("boom"); });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  pool.Wait();  // all later exceptions were dropped; pool is clean
  SUCCEED();
}

TEST(ParallelForTest, BodyExceptionPropagatesToCaller) {
  ThreadPool pool(3);
  EXPECT_THROW(
      ParallelFor(&pool, 100,
                  [](int64_t i) {
                    if (i == 37) throw std::invalid_argument("bad index");
                  }),
      std::invalid_argument);
  // Remaining chunks drained; the pool is reusable afterwards.
  std::vector<int> hits(64, 0);
  ParallelFor(&pool, 64, [&hits](int64_t i) { hits[i] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, SerialPathPropagatesException) {
  EXPECT_THROW(ParallelFor(nullptr, 5,
                           [](int64_t i) {
                             if (i == 2) throw std::runtime_error("serial");
                           }),
               std::runtime_error);
}

TEST(ParallelForTest, ChunkedSchedulingCoversLargeRanges) {
  ThreadPool pool(4);
  constexpr int64_t kN = 100000;
  std::vector<unsigned char> hits(kN, 0);
  ParallelFor(&pool, kN, [&hits](int64_t i) { hits[i] += 1; });
  int64_t total = 0;
  for (const unsigned char h : hits) total += h;
  EXPECT_EQ(total, kN);
}

TEST(ParallelForTest, ResultsIndependentOfThreadCount) {
  auto compute = [](int threads) {
    std::vector<double> out(64, 0.0);
    ThreadPool pool(threads);
    ParallelFor(&pool, 64, [&out](int64_t i) {
      double acc = 0;
      for (int k = 0; k < 1000; ++k) acc += (i + 1) * 0.001;
      out[i] = acc;
    });
    return out;
  };
  EXPECT_EQ(compute(1), compute(4));
}

// ---------------------------------------------------------------- status

TEST(StatusTest, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = Status::NotFound("missing thing");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "missing thing");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::InvalidArgument("bad"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::vector<int>> result(std::vector<int>{1, 2, 3});
  const std::vector<int> moved = std::move(result).value();
  EXPECT_EQ(moved.size(), 3u);
}

TEST(StatusOrDeathTest, ValueOnErrorAborts) {
  StatusOr<int> result(Status::Internal("boom"));
  EXPECT_DEATH(result.value(), "boom");
}

// ---------------------------------------------------------------- logging

TEST(LoggingTest, LevelFilterSuppressesBelowThreshold) {
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  // These must compile and not crash; output routing is not asserted here
  // (it goes to clog/cerr), only that streaming works at every level.
  NIID_LOG(kDebug) << "invisible " << 1;
  NIID_LOG(kInfo) << "invisible " << 2;
  NIID_LOG(kWarning) << "invisible " << 3;
  SetLogLevel(saved);
  SUCCEED();
}

TEST(LoggingTest, SetAndGetLevelRoundTrips) {
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
  SetLogLevel(saved);
}

}  // namespace
}  // namespace niid
