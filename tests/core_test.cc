#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/coverage.h"
#include "core/curves.h"
#include "core/decision_tree.h"
#include "core/experiment.h"

namespace niid {
namespace {

// ---------------------------------------------------------------- curves

TEST(CurvesTest, PrintCurvesContainsValues) {
  std::vector<Curve> curves = {{"fedavg", {0.1, 0.5, 0.9}},
                               {"fedprox", {0.2, 0.6}}};
  std::ostringstream out;
  PrintCurves(curves, out, 1);
  const std::string text = out.str();
  EXPECT_NE(text.find("fedavg"), std::string::npos);
  EXPECT_NE(text.find("90.0%"), std::string::npos);
  EXPECT_NE(text.find("60.0%"), std::string::npos);
}

TEST(CurvesTest, StrideSubsamplesButKeepsLastRow) {
  std::vector<Curve> curves = {{"x", {0.1, 0.2, 0.3, 0.4, 0.5}}};
  std::ostringstream out;
  PrintCurves(curves, out, 2);
  const std::string text = out.str();
  EXPECT_NE(text.find("10.0%"), std::string::npos);   // round 1
  EXPECT_EQ(text.find("20.0%"), std::string::npos);   // round 2 skipped
  EXPECT_NE(text.find("50.0%"), std::string::npos);   // last round kept
}

TEST(CurvesTest, CsvRoundTrip) {
  const std::string path = ::testing::TempDir() + "/curves.csv";
  std::vector<Curve> curves = {{"a", {0.25, 0.5}}, {"b", {0.75}}};
  ASSERT_TRUE(WriteCurvesCsv(curves, path).ok());
  std::ifstream in(path);
  std::string header, row1, row2;
  std::getline(in, header);
  std::getline(in, row1);
  std::getline(in, row2);
  EXPECT_EQ(header, "round,a,b");
  EXPECT_EQ(row1.substr(0, 2), "1,");
  EXPECT_NE(row1.find("0.25"), std::string::npos);
  EXPECT_NE(row2.find("0.5"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CurvesTest, CsvFailsOnBadPath) {
  EXPECT_FALSE(WriteCurvesCsv({}, "/nonexistent_dir/x.csv").ok());
}

TEST(CurvesTest, InstabilityMeasuresWiggle) {
  // Smooth ramp vs oscillation of the same range.
  const std::vector<double> smooth = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6};
  const std::vector<double> wiggly = {0.1, 0.6, 0.1, 0.6, 0.1, 0.6};
  EXPECT_LT(CurveInstability(smooth), 1e-9);
  EXPECT_GT(CurveInstability(wiggly), 0.4);
  EXPECT_EQ(CurveInstability({0.5}), 0.0);
  EXPECT_EQ(CurveInstability({}), 0.0);
}

TEST(CurvesTest, InstabilityWindowRestricts) {
  // Unstable early, stable late.
  const std::vector<double> values = {0.1, 0.9, 0.1, 0.9, 0.5, 0.5, 0.5, 0.5};
  EXPECT_GT(CurveInstability(values), CurveInstability(values, 3));
  EXPECT_LT(CurveInstability(values, 3), 1e-9);
}

// ---------------------------------------------------------------- results

TEST(ExperimentResultTest, FinalAccuraciesAndMeanCurve) {
  ExperimentResult result;
  result.trials.push_back({{0.1, 0.3}, {1.0, 0.5}, 0.3, 100});
  result.trials.push_back({{0.2, 0.5}, {0.9, 0.4}, 0.5, 100});
  EXPECT_EQ(result.FinalAccuracies(), (std::vector<double>{0.3, 0.5}));
  const auto mean = result.MeanCurve();
  ASSERT_EQ(mean.size(), 2u);
  EXPECT_NEAR(mean[0], 0.15, 1e-12);
  EXPECT_NEAR(mean[1], 0.4, 1e-12);
}

TEST(ExperimentResultTest, MeanCurveHandlesUnequalLengths) {
  ExperimentResult result;
  result.trials.push_back({{0.1, 0.3, 0.5}, {}, 0.5, 0});
  result.trials.push_back({{0.2}, {}, 0.2, 0});
  const auto mean = result.MeanCurve();
  ASSERT_EQ(mean.size(), 3u);
  EXPECT_NEAR(mean[0], 0.15, 1e-12);
  EXPECT_NEAR(mean[2], 0.5, 1e-12);  // only one trial contributes
}

// ---------------------------------------------------------------- fig 6

TEST(DecisionTreeTest, MatchesPaperRecommendations) {
  EXPECT_EQ(RecommendAlgorithm(PartitionStrategy::kHomogeneous).algorithm,
            "fedavg");
  EXPECT_EQ(RecommendAlgorithm(PartitionStrategy::kLabelQuantity, 1).algorithm,
            "fedprox");
  EXPECT_EQ(RecommendAlgorithm(PartitionStrategy::kLabelQuantity, 3).algorithm,
            "fedprox");
  EXPECT_EQ(RecommendAlgorithm(PartitionStrategy::kLabelDirichlet).algorithm,
            "fedprox");
  EXPECT_EQ(RecommendAlgorithm(PartitionStrategy::kNoise).algorithm,
            "scaffold");
  EXPECT_EQ(RecommendAlgorithm(PartitionStrategy::kSynthetic).algorithm,
            "scaffold");
  EXPECT_EQ(RecommendAlgorithm(PartitionStrategy::kRealWorld).algorithm,
            "scaffold");
  EXPECT_EQ(
      RecommendAlgorithm(PartitionStrategy::kQuantityDirichlet).algorithm,
      "fedprox");
}

TEST(DecisionTreeTest, EveryRecommendationHasRationale) {
  for (const auto strategy :
       {PartitionStrategy::kHomogeneous, PartitionStrategy::kLabelQuantity,
        PartitionStrategy::kLabelDirichlet, PartitionStrategy::kNoise,
        PartitionStrategy::kSynthetic, PartitionStrategy::kRealWorld,
        PartitionStrategy::kQuantityDirichlet}) {
    EXPECT_FALSE(RecommendAlgorithm(strategy).rationale.empty());
  }
}

TEST(DecisionTreeTest, PrintsTree) {
  std::ostringstream out;
  PrintDecisionTree(out);
  EXPECT_NE(out.str().find("SCAFFOLD"), std::string::npos);
  EXPECT_NE(out.str().find("FedProx"), std::string::npos);
}

// ---------------------------------------------------------------- table 1

TEST(CoverageTest, MatchesPaperTable1) {
  const auto rows = StrategyCoverage();
  ASSERT_EQ(rows.size(), 6u);
  // NIID-Bench covers everything.
  for (const auto& row : rows) {
    ASSERT_EQ(row.covered.size(), 5u);
    EXPECT_TRUE(row.covered[4]) << row.strategy;
  }
  // FedAvg only covers quantity-based label skew.
  int fedavg_count = 0;
  for (const auto& row : rows) fedavg_count += row.covered[0];
  EXPECT_EQ(fedavg_count, 1);
  // FedProx covers quantity-based label skew + synthetic + real-world.
  int fedprox_count = 0;
  for (const auto& row : rows) fedprox_count += row.covered[1];
  EXPECT_EQ(fedprox_count, 3);
}

TEST(CoverageTest, PrintsTable) {
  std::ostringstream out;
  PrintStrategyCoverage(out);
  EXPECT_NE(out.str().find("NIID-Bench"), std::string::npos);
  EXPECT_NE(out.str().find("noise-based"), std::string::npos);
}

}  // namespace
}  // namespace niid
