#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "data/catalog.h"
#include "data/dataset.h"
#include "data/fcube.h"
#include "data/femnist.h"
#include "data/loaders.h"
#include "data/synthetic.h"
#include "data/transforms.h"

namespace niid {
namespace {

// ---------------------------------------------------------------- dataset

Dataset TinyDataset() {
  Dataset d;
  d.name = "tiny";
  d.num_classes = 3;
  d.features = Tensor::FromVector({4, 2}, {0, 1, 2, 3, 4, 5, 6, 7});
  d.labels = {0, 1, 2, 0};
  return d;
}

TEST(DatasetTest, BasicAccessors) {
  const Dataset d = TinyDataset();
  EXPECT_EQ(d.size(), 4);
  EXPECT_FALSE(d.is_image());
  EXPECT_EQ(d.feature_dim(), 2);
}

TEST(DatasetTest, CountLabels) {
  const Dataset d = TinyDataset();
  EXPECT_EQ(CountLabels(d), (std::vector<int64_t>{2, 1, 1}));
}

TEST(DatasetTest, SubsetCopiesRowsAndMetadata) {
  Dataset d = TinyDataset();
  d.groups = {7, 8, 9, 7};
  const Dataset sub = Subset(d, {2, 0});
  EXPECT_EQ(sub.size(), 2);
  EXPECT_EQ(sub.labels, (std::vector<int>{2, 0}));
  EXPECT_EQ(sub.groups, (std::vector<int>{9, 7}));
  EXPECT_FLOAT_EQ(sub.features.at(0, 0), 4.f);
  EXPECT_FLOAT_EQ(sub.features.at(1, 1), 1.f);
  EXPECT_EQ(sub.num_classes, 3);
}

TEST(DatasetTest, GatherBatchShapes) {
  Dataset d;
  d.num_classes = 2;
  d.features = Tensor::Zeros({6, 1, 4, 4});
  d.labels = {0, 1, 0, 1, 0, 1};
  auto [x, y] = GatherBatch(d, {1, 3, 5});
  EXPECT_EQ(x.shape(), (std::vector<int64_t>{3, 1, 4, 4}));
  EXPECT_EQ(y, (std::vector<int>{1, 1, 1}));
}

TEST(DatasetTest, GatherBatchIntoReusesBuffers) {
  Dataset d;
  d.num_classes = 2;
  d.features = Tensor::Zeros({6, 1, 4, 4});
  for (int64_t i = 0; i < d.features.numel(); ++i) {
    d.features.data()[i] = static_cast<float>(i);
  }
  d.labels = {0, 1, 0, 1, 0, 1};

  Tensor x;
  std::vector<int> y;
  GatherBatchInto(d, {1, 3, 5}, x, y);
  EXPECT_EQ(x.shape(), (std::vector<int64_t>{3, 1, 4, 4}));
  EXPECT_EQ(y, (std::vector<int>{1, 1, 1}));
  EXPECT_FLOAT_EQ(x.data()[0], 16.f);  // row 1 starts at element 16

  // Same batch shape: buffers must be reused, not regrown.
  const int64_t allocs = Tensor::AllocationCount();
  GatherBatchInto(d, {0, 2, 4}, x, y);
  EXPECT_EQ(Tensor::AllocationCount(), allocs);
  EXPECT_EQ(y, (std::vector<int>{0, 0, 0}));
  EXPECT_FLOAT_EQ(x.data()[0], 0.f);

  // Smaller final batch: shape changes, contents follow.
  GatherBatchInto(d, {5}, x, y);
  EXPECT_EQ(x.shape(), (std::vector<int64_t>{1, 1, 4, 4}));
  EXPECT_EQ(y, (std::vector<int>{1}));
  EXPECT_FLOAT_EQ(x.data()[0], 80.f);
}

#ifndef NDEBUG
TEST(DatasetDeathTest, GatherBatchRejectsNegativeIndex) {
  Dataset d;
  d.num_classes = 2;
  d.features = Tensor::Zeros({4, 2});
  d.labels = {0, 1, 0, 1};
  EXPECT_DEATH(GatherBatch(d, {-1}), "CHECK failed");
}

TEST(DatasetDeathTest, GatherBatchRejectsOutOfRangeIndex) {
  Dataset d;
  d.num_classes = 2;
  d.features = Tensor::Zeros({4, 2});
  d.labels = {0, 1, 0, 1};
  EXPECT_DEATH(GatherBatch(d, {4}), "CHECK failed");
}
#endif  // NDEBUG

TEST(DatasetTest, ValidateAcceptsGoodData) {
  ValidateDataset(TinyDataset());  // must not abort
}

TEST(DatasetDeathTest, ValidateRejectsBadLabel) {
  Dataset d = TinyDataset();
  d.labels[0] = 5;
  EXPECT_DEATH(ValidateDataset(d), "CHECK failed");
}

// ---------------------------------------------------------------- loaders

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()), bytes.size());
}

void AppendBigEndian32(std::vector<uint8_t>& bytes, uint32_t value) {
  bytes.push_back(value >> 24);
  bytes.push_back((value >> 16) & 0xFF);
  bytes.push_back((value >> 8) & 0xFF);
  bytes.push_back(value & 0xFF);
}

TEST(IdxLoaderTest, LoadsTinyMnistStyleFiles) {
  // 2 images of 2x3 pixels.
  std::vector<uint8_t> images;
  AppendBigEndian32(images, 0x00000803);
  AppendBigEndian32(images, 2);
  AppendBigEndian32(images, 2);
  AppendBigEndian32(images, 3);
  for (int i = 0; i < 12; ++i) images.push_back(static_cast<uint8_t>(i * 20));
  std::vector<uint8_t> labels;
  AppendBigEndian32(labels, 0x00000801);
  AppendBigEndian32(labels, 2);
  labels.push_back(3);
  labels.push_back(1);

  const std::string image_path = TempPath("idx_images");
  const std::string label_path = TempPath("idx_labels");
  WriteBytes(image_path, images);
  WriteBytes(label_path, labels);

  auto dataset_or = LoadIdx(image_path, label_path, "tiny-mnist");
  ASSERT_TRUE(dataset_or.ok()) << dataset_or.status().ToString();
  const Dataset& d = *dataset_or;
  EXPECT_EQ(d.size(), 2);
  EXPECT_EQ(d.features.shape(), (std::vector<int64_t>{2, 1, 2, 3}));
  EXPECT_EQ(d.labels, (std::vector<int>{3, 1}));
  EXPECT_EQ(d.num_classes, 4);  // max label + 1
  EXPECT_NEAR(d.features[1], 20 / 255.f, 1e-6);
  std::remove(image_path.c_str());
  std::remove(label_path.c_str());
}

TEST(IdxLoaderTest, RejectsBadMagic) {
  std::vector<uint8_t> bad;
  AppendBigEndian32(bad, 0xDEADBEEF);
  AppendBigEndian32(bad, 0);
  AppendBigEndian32(bad, 0);
  AppendBigEndian32(bad, 0);
  const std::string path = TempPath("idx_bad");
  WriteBytes(path, bad);
  auto result = LoadIdx(path, path, "x");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(IdxLoaderTest, MissingFileIsNotFound) {
  auto result = LoadIdx("/nonexistent/a", "/nonexistent/b", "x");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(CifarLoaderTest, LoadsBinaryRecords) {
  std::vector<uint8_t> bytes;
  for (int record = 0; record < 3; ++record) {
    bytes.push_back(static_cast<uint8_t>(record));  // label
    for (int i = 0; i < 3 * 32 * 32; ++i) {
      bytes.push_back(static_cast<uint8_t>((record * 50 + i) % 256));
    }
  }
  const std::string path = TempPath("cifar_batch.bin");
  WriteBytes(path, bytes);
  auto dataset_or = LoadCifar10({path}, "tiny-cifar");
  ASSERT_TRUE(dataset_or.ok()) << dataset_or.status().ToString();
  EXPECT_EQ(dataset_or->size(), 3);
  EXPECT_EQ(dataset_or->features.shape(), (std::vector<int64_t>{3, 3, 32, 32}));
  EXPECT_EQ(dataset_or->labels, (std::vector<int>{0, 1, 2}));
  std::remove(path.c_str());
}

TEST(CifarLoaderTest, RejectsTruncatedFile) {
  const std::string path = TempPath("cifar_trunc.bin");
  WriteBytes(path, std::vector<uint8_t>(100, 0));
  EXPECT_FALSE(LoadCifar10({path}, "x").ok());
  std::remove(path.c_str());
}

TEST(LibsvmLoaderTest, LoadsSparseRows) {
  const std::string path = TempPath("data.libsvm");
  {
    std::ofstream out(path);
    out << "+1 1:0.5 3:1.5\n";
    out << "-1 2:2.0\n";
    out << "# a comment line\n";
    out << "+1 4:-1.0\n";
  }
  auto dataset_or = LoadLibsvm(path, 4, "tiny-libsvm");
  ASSERT_TRUE(dataset_or.ok()) << dataset_or.status().ToString();
  const Dataset& d = *dataset_or;
  EXPECT_EQ(d.size(), 3);
  EXPECT_EQ(d.num_classes, 2);
  // -1 maps to class 0, +1 to class 1 (sorted order of distinct labels).
  EXPECT_EQ(d.labels, (std::vector<int>{1, 0, 1}));
  EXPECT_FLOAT_EQ(d.features.at(0, 0), 0.5f);
  EXPECT_FLOAT_EQ(d.features.at(0, 2), 1.5f);
  EXPECT_FLOAT_EQ(d.features.at(1, 1), 2.0f);
  EXPECT_FLOAT_EQ(d.features.at(2, 3), -1.0f);
  EXPECT_FLOAT_EQ(d.features.at(0, 1), 0.f);
  std::remove(path.c_str());
}

TEST(LibsvmLoaderTest, RejectsOutOfRangeIndex) {
  const std::string path = TempPath("bad.libsvm");
  {
    std::ofstream out(path);
    out << "1 9:1.0\n";
  }
  EXPECT_FALSE(LoadLibsvm(path, 4, "x").ok());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------- synthetic

TEST(SyntheticImageTest, ShapesAndLabelRange) {
  SyntheticImageConfig config;
  config.train_size = 100;
  config.test_size = 40;
  config.channels = 3;
  config.height = 16;
  config.width = 16;
  const FederatedDataset fd = MakeSyntheticImages(config);
  EXPECT_EQ(fd.train.features.shape(), (std::vector<int64_t>{100, 3, 16, 16}));
  EXPECT_EQ(fd.test.size(), 40);
  ValidateDataset(fd.train);
  ValidateDataset(fd.test);
  for (int64_t i = 0; i < fd.train.features.numel(); ++i) {
    EXPECT_GE(fd.train.features[i], 0.f);
    EXPECT_LE(fd.train.features[i], 1.f);
  }
}

TEST(SyntheticImageTest, DeterministicForSameSeed) {
  SyntheticImageConfig config;
  config.train_size = 20;
  config.test_size = 10;
  const FederatedDataset a = MakeSyntheticImages(config);
  const FederatedDataset b = MakeSyntheticImages(config);
  EXPECT_TRUE(a.train.features == b.train.features);
  EXPECT_EQ(a.train.labels, b.train.labels);
}

TEST(SyntheticImageTest, DifferentSeedsDiffer) {
  SyntheticImageConfig config;
  config.train_size = 20;
  config.test_size = 10;
  const FederatedDataset a = MakeSyntheticImages(config);
  config.seed = 999;
  const FederatedDataset b = MakeSyntheticImages(config);
  EXPECT_FALSE(a.train.features == b.train.features);
}

// Nearest-class-centroid accuracy must be far above chance: the generator
// must produce learnable class structure.
TEST(SyntheticImageTest, ClassStructureIsLearnable) {
  SyntheticImageConfig config;
  config.train_size = 400;
  config.test_size = 200;
  config.num_classes = 4;
  config.height = 12;
  config.width = 12;
  const FederatedDataset fd = MakeSyntheticImages(config);
  const int64_t dim = fd.train.feature_dim();
  std::vector<std::vector<double>> centroids(
      config.num_classes, std::vector<double>(dim, 0.0));
  std::vector<int64_t> counts(config.num_classes, 0);
  for (int64_t i = 0; i < fd.train.size(); ++i) {
    const int label = fd.train.labels[i];
    ++counts[label];
    for (int64_t j = 0; j < dim; ++j) {
      centroids[label][j] += fd.train.features[i * dim + j];
    }
  }
  for (int c = 0; c < config.num_classes; ++c) {
    for (double& v : centroids[c]) v /= std::max<int64_t>(counts[c], 1);
  }
  int64_t correct = 0;
  for (int64_t i = 0; i < fd.test.size(); ++i) {
    double best = 1e300;
    int best_class = -1;
    for (int c = 0; c < config.num_classes; ++c) {
      double dist = 0;
      for (int64_t j = 0; j < dim; ++j) {
        const double diff = fd.test.features[i * dim + j] - centroids[c][j];
        dist += diff * diff;
      }
      if (dist < best) {
        best = dist;
        best_class = c;
      }
    }
    correct += (best_class == fd.test.labels[i]);
  }
  const double accuracy = double(correct) / fd.test.size();
  EXPECT_GT(accuracy, 0.6) << "nearest-centroid accuracy " << accuracy;
}

TEST(SyntheticTabularTest, ShapesSparsityAndDeterminism) {
  SyntheticTabularConfig config;
  config.train_size = 200;
  config.test_size = 50;
  config.num_features = 40;
  config.density = 0.25f;
  const FederatedDataset fd = MakeSyntheticTabular(config);
  ValidateDataset(fd.train);
  EXPECT_EQ(fd.train.features.shape(), (std::vector<int64_t>{200, 40}));
  // Sparsity: roughly 25% nonzero.
  int64_t nonzero = 0;
  for (int64_t i = 0; i < fd.train.features.numel(); ++i) {
    nonzero += (fd.train.features[i] != 0.f);
  }
  const double density = double(nonzero) / fd.train.features.numel();
  EXPECT_NEAR(density, 0.25, 0.05);
  const FederatedDataset fd2 = MakeSyntheticTabular(config);
  EXPECT_TRUE(fd.train.features == fd2.train.features);
}

TEST(SyntheticTabularTest, HigherSeparationIsMoreLearnable) {
  auto centroid_accuracy = [](float sep) {
    SyntheticTabularConfig config;
    config.train_size = 400;
    config.test_size = 200;
    config.num_features = 30;
    config.class_sep = sep;
    const FederatedDataset fd = MakeSyntheticTabular(config);
    const int64_t dim = fd.train.feature_dim();
    std::vector<std::vector<double>> centroids(2, std::vector<double>(dim, 0));
    std::vector<int64_t> counts(2, 0);
    for (int64_t i = 0; i < fd.train.size(); ++i) {
      ++counts[fd.train.labels[i]];
      for (int64_t j = 0; j < dim; ++j) {
        centroids[fd.train.labels[i]][j] += fd.train.features[i * dim + j];
      }
    }
    for (int c = 0; c < 2; ++c) {
      for (double& v : centroids[c]) v /= std::max<int64_t>(counts[c], 1);
    }
    int64_t correct = 0;
    for (int64_t i = 0; i < fd.test.size(); ++i) {
      double d0 = 0, d1 = 0;
      for (int64_t j = 0; j < dim; ++j) {
        const double x = fd.test.features[i * dim + j];
        d0 += (x - centroids[0][j]) * (x - centroids[0][j]);
        d1 += (x - centroids[1][j]) * (x - centroids[1][j]);
      }
      correct += ((d1 < d0 ? 1 : 0) == fd.test.labels[i]);
    }
    return double(correct) / fd.test.size();
  };
  EXPECT_GT(centroid_accuracy(3.0f), centroid_accuracy(0.3f));
}

// ---------------------------------------------------------------- fcube

TEST(FcubeTest, LabelsFollowTheX1Plane) {
  const FederatedDataset fd = MakeFcube({.train_size = 500, .test_size = 100});
  for (int64_t i = 0; i < fd.train.size(); ++i) {
    const float x1 = fd.train.features[i * 3];
    EXPECT_EQ(fd.train.labels[i], x1 > 0 ? 0 : 1);
  }
  EXPECT_EQ(fd.train.num_classes, 2);
  EXPECT_EQ(fd.train.feature_dim(), 3);
}

TEST(FcubeTest, PointsInsideUnitCube) {
  const FederatedDataset fd = MakeFcube({.train_size = 200, .test_size = 50});
  for (int64_t i = 0; i < fd.train.features.numel(); ++i) {
    EXPECT_GE(fd.train.features[i], -1.f);
    EXPECT_LE(fd.train.features[i], 1.f);
  }
}

TEST(FcubeTest, OctantFunction) {
  EXPECT_EQ(FcubeOctant(1, 1, 1), 7);
  EXPECT_EQ(FcubeOctant(-1, -1, -1), 0);
  EXPECT_EQ(FcubeOctant(1, -1, -1), 1);
  EXPECT_EQ(FcubeOctant(-1, 1, -1), 2);
  EXPECT_EQ(FcubeOctant(-1, -1, 1), 4);
}

TEST(FcubeTest, AllOctantsPopulated) {
  const FederatedDataset fd = MakeFcube({.train_size = 800, .test_size = 100});
  std::set<int> seen;
  for (int64_t i = 0; i < fd.train.size(); ++i) {
    seen.insert(FcubeOctant(fd.train.features[i * 3],
                            fd.train.features[i * 3 + 1],
                            fd.train.features[i * 3 + 2]));
  }
  EXPECT_EQ(seen.size(), 8u);
}

// ---------------------------------------------------------------- femnist

TEST(FemnistTest, GroupsPresentAndInRange) {
  FemnistConfig config;
  config.num_writers = 20;
  config.train_size = 300;
  config.test_size = 100;
  const FederatedDataset fd = MakeFemnist(config);
  ASSERT_EQ(fd.train.groups.size(), 300u);
  ASSERT_EQ(fd.test.groups.size(), 100u);
  std::set<int> writers(fd.train.groups.begin(), fd.train.groups.end());
  EXPECT_GT(writers.size(), 10u);
  for (int w : fd.train.groups) {
    EXPECT_GE(w, 0);
    EXPECT_LT(w, 20);
  }
  ValidateDataset(fd.train);
}

TEST(FemnistTest, WriterStyleShiftsFeatureDistribution) {
  FemnistConfig config;
  config.num_writers = 2;
  config.train_size = 2000;
  config.test_size = 10;
  config.writer_strength = 1.0f;
  const FederatedDataset fd = MakeFemnist(config);
  // Writer styles are smooth per-pixel fields with zero global mean, so
  // compare the per-pixel mean images of the two writers.
  const int64_t dim = fd.train.feature_dim();
  std::vector<double> mean0(dim, 0.0), mean1(dim, 0.0);
  int64_t count[2] = {0, 0};
  for (int64_t i = 0; i < fd.train.size(); ++i) {
    const int w = fd.train.groups[i];
    auto& mean = (w == 0) ? mean0 : mean1;
    for (int64_t j = 0; j < dim; ++j) {
      mean[j] += fd.train.features[i * dim + j];
    }
    ++count[w];
  }
  ASSERT_GT(count[0], 0);
  ASSERT_GT(count[1], 0);
  double distance_sq = 0.0;
  for (int64_t j = 0; j < dim; ++j) {
    const double diff = mean0[j] / count[0] - mean1[j] / count[1];
    distance_sq += diff * diff;
  }
  EXPECT_GT(std::sqrt(distance_sq), 0.3)
      << "writer mean images are indistinguishable";
}

// ---------------------------------------------------------------- transforms

TEST(TransformsTest, GaussianNoiseMatchesVariance) {
  Dataset d;
  d.num_classes = 2;
  d.features = Tensor::Zeros({200, 50});
  d.labels.assign(200, 0);
  Rng rng(3);
  AddGaussianNoise(d, 0.04, rng);  // variance 0.04 => std 0.2
  double sum = 0, sq = 0;
  for (int64_t i = 0; i < d.features.numel(); ++i) {
    sum += d.features[i];
    sq += double(d.features[i]) * d.features[i];
  }
  const double mean = sum / d.features.numel();
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(sq / d.features.numel() - mean * mean, 0.04, 0.005);
}

TEST(TransformsTest, ZeroVarianceIsNoOp) {
  Dataset d = TinyDataset();
  const Tensor before = d.features;
  Rng rng(4);
  AddGaussianNoise(d, 0.0, rng);
  EXPECT_TRUE(d.features == before);
}

TEST(TransformsTest, StandardizeProducesZeroMeanUnitVar) {
  Dataset d;
  d.num_classes = 2;
  Rng rng(5);
  d.features = Tensor::Randn({500, 8}, rng, 3.f, 2.f);
  d.labels.assign(500, 0);
  const FeatureStats stats = ComputeFeatureStats(d);
  StandardizeFeatures(d, stats);
  for (int64_t j = 0; j < 8; ++j) {
    double sum = 0, sq = 0;
    for (int64_t i = 0; i < 500; ++i) {
      sum += d.features.at(i, j);
      sq += double(d.features.at(i, j)) * d.features.at(i, j);
    }
    const double mean = sum / 500;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(sq / 500 - mean * mean, 1.0, 1e-3);
  }
}

TEST(TransformsTest, ConstantFeatureDoesNotBlowUp) {
  Dataset d;
  d.num_classes = 2;
  d.features = Tensor::Full({10, 2}, 5.f);
  d.labels.assign(10, 0);
  const FeatureStats stats = ComputeFeatureStats(d);
  StandardizeFeatures(d, stats);
  for (int64_t i = 0; i < d.features.numel(); ++i) {
    EXPECT_FALSE(std::isnan(d.features[i]));
    EXPECT_NEAR(d.features[i], 0.f, 1e-3);
  }
}

// ---------------------------------------------------------------- catalog

TEST(CatalogTest, ListsNineDatasets) {
  EXPECT_EQ(CatalogDatasetNames().size(), 9u);
}

TEST(CatalogTest, Table2FactsMatchThePaper) {
  EXPECT_EQ(GetDatasetInfo("mnist").paper_train_size, 60000);
  EXPECT_EQ(GetDatasetInfo("cifar10").num_classes, 10);
  EXPECT_EQ(GetDatasetInfo("rcv1").num_features, 47236);
  EXPECT_FLOAT_EQ(GetDatasetInfo("rcv1").default_learning_rate, 0.1f);
  EXPECT_FLOAT_EQ(GetDatasetInfo("adult").default_learning_rate, 0.01f);
  EXPECT_EQ(GetDatasetInfo("covtype").paper_train_size, 435759);
  EXPECT_EQ(GetDatasetInfo("fcube").num_features, 3);
}

TEST(CatalogTest, UnknownDatasetIsInvalidArgument) {
  CatalogOptions options;
  auto result = MakeCatalogDataset("imagenet", options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

class CatalogAllDatasets : public ::testing::TestWithParam<std::string> {};

TEST_P(CatalogAllDatasets, InstantiatesValidScaledDataset) {
  CatalogOptions options;
  options.size_factor = 0.002;
  options.min_train_size = 100;
  options.min_test_size = 40;
  auto fd_or = MakeCatalogDataset(GetParam(), options);
  ASSERT_TRUE(fd_or.ok()) << fd_or.status().ToString();
  ValidateDataset(fd_or->train);
  ValidateDataset(fd_or->test);
  EXPECT_GE(fd_or->train.size(), 100);
  const DatasetInfo& info = GetDatasetInfo(GetParam());
  EXPECT_EQ(fd_or->train.num_classes, info.num_classes);
  EXPECT_EQ(fd_or->train.is_image(), info.is_image);
  if (info.is_image) {
    EXPECT_EQ(fd_or->train.features.dim(1), info.channels);
    EXPECT_EQ(fd_or->train.features.dim(2), info.height);
  }
}

INSTANTIATE_TEST_SUITE_P(Nine, CatalogAllDatasets,
                         ::testing::ValuesIn(CatalogDatasetNames()));

TEST(CatalogTest, DefaultModelSpecPicksArchitecture) {
  CatalogOptions options;
  options.size_factor = 0.001;
  options.min_train_size = 50;
  options.min_test_size = 20;
  auto image = MakeCatalogDataset("mnist", options);
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(DefaultModelSpec(image->train).name, "simple-cnn");
  EXPECT_EQ(DefaultModelSpec(image->train, "vgg9").name, "vgg9");
  auto tabular = MakeCatalogDataset("covtype", options);
  ASSERT_TRUE(tabular.ok());
  const ModelSpec spec = DefaultModelSpec(tabular->train);
  EXPECT_EQ(spec.name, "mlp");
  EXPECT_EQ(spec.input_features, 54);
  EXPECT_EQ(spec.num_classes, 2);
}

TEST(CatalogTest, RcvFeatureCapApplies) {
  CatalogOptions options;
  options.size_factor = 0.001;
  options.min_train_size = 50;
  options.min_test_size = 20;
  options.max_tabular_features = 500;
  auto fd = MakeCatalogDataset("rcv1", options);
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(fd->train.feature_dim(), 500);
}


TEST(CatalogTest, SizeCapsApply) {
  CatalogOptions options;
  options.size_factor = 1.0;      // paper size...
  options.max_train_size = 700;   // ...but capped
  options.min_train_size = 100;
  options.min_test_size = 50;
  auto fd = MakeCatalogDataset("mnist", options);
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(fd->train.size(), 700);
}

TEST(CatalogTest, MinimumsFloorTinyFactors) {
  CatalogOptions options;
  options.size_factor = 1e-9;
  options.min_train_size = 123;
  options.min_test_size = 45;
  auto fd = MakeCatalogDataset("adult", options);
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(fd->train.size(), 123);
  EXPECT_EQ(fd->test.size(), 45);
}

TEST(FcubeTest, DeterministicAcrossCalls) {
  const FederatedDataset a = MakeFcube({.train_size = 50, .test_size = 10});
  const FederatedDataset b = MakeFcube({.train_size = 50, .test_size = 10});
  EXPECT_TRUE(a.train.features == b.train.features);
  EXPECT_EQ(a.train.labels, b.train.labels);
}

}  // namespace
}  // namespace niid
