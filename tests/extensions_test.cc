// Tests for the extension features beyond the paper's core protocol:
// differential privacy on uploads, heterogeneous local epochs, FedAvgM
// server momentum, the non-IID skew profiler, and model serialization.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "core/profiler.h"
#include "util/stats.h"
#include "core/runner.h"
#include "data/synthetic.h"
#include "fl/fedavg.h"
#include "fl/privacy.h"
#include "nn/models/factory.h"
#include "nn/serialization.h"

namespace niid {
namespace {

// ---------------------------------------------------------------- privacy

TEST(PrivacyTest, ClipReducesLargeNorm) {
  StateVector v = {3.f, 4.f};  // norm 5
  const double before = ClipToNorm(v, 1.0);
  EXPECT_DOUBLE_EQ(before, 5.0);
  EXPECT_NEAR(Norm(v), 1.0, 1e-6);
  EXPECT_NEAR(v[0] / v[1], 0.75, 1e-5);  // direction preserved
}

TEST(PrivacyTest, ClipKeepsSmallNorm) {
  StateVector v = {0.3f, 0.4f};  // norm 0.5
  ClipToNorm(v, 1.0);
  EXPECT_FLOAT_EQ(v[0], 0.3f);
  EXPECT_FLOAT_EQ(v[1], 0.4f);
}

TEST(PrivacyTest, DisabledConfigIsNoOp) {
  DpConfig config;  // clip_norm = 0 => disabled
  EXPECT_FALSE(config.enabled());
  LocalUpdate update;
  update.delta = {10.f, 20.f};
  Rng rng(1);
  ApplyDpToUpdate(config, rng, update);
  EXPECT_EQ(update.delta, (StateVector{10.f, 20.f}));
}

TEST(PrivacyTest, NoiseMatchesConfiguredSigma) {
  DpConfig config;
  config.clip_norm = 1.0;
  config.noise_multiplier = 2.0;  // sigma = 2
  Rng rng(2);
  RunningStat stat;
  for (int trial = 0; trial < 2000; ++trial) {
    LocalUpdate update;
    update.delta = {0.f, 0.f, 0.f, 0.f};
    ApplyDpToUpdate(config, rng, update);
    for (float v : update.delta) stat.Add(v);
  }
  EXPECT_NEAR(stat.mean(), 0.0, 0.1);
  EXPECT_NEAR(stat.stddev(), 2.0, 0.1);
}

TEST(PrivacyTest, ScaffoldControlAlsoNoised) {
  DpConfig config;
  config.clip_norm = 0.5;
  config.noise_multiplier = 0.0;  // pure clipping for determinism
  Rng rng(3);
  LocalUpdate update;
  update.delta = {3.f, 4.f};
  update.delta_c = {30.f, 40.f};
  ApplyDpToUpdate(config, rng, update);
  EXPECT_NEAR(Norm(update.delta), 0.5, 1e-6);
  EXPECT_NEAR(Norm(update.delta_c), 0.5, 1e-6);
}

TEST(PrivacyTest, EpsilonAccounting) {
  // Larger noise => smaller epsilon (more privacy).
  const double eps1 = GaussianMechanismEpsilon(1.0, 1e-5);
  const double eps4 = GaussianMechanismEpsilon(4.0, 1e-5);
  EXPECT_GT(eps1, eps4);
  EXPECT_NEAR(eps1, std::sqrt(2.0 * std::log(1.25e5)), 1e-9);
}

TEST(PrivacyTest, EndToEndDpStillLearnsWithMildNoise) {
  ExperimentConfig config;
  config.dataset = "covtype";
  config.catalog.size_factor = 0.001;
  config.catalog.min_train_size = 400;
  config.catalog.min_test_size = 150;
  config.rounds = 8;
  config.local.local_epochs = 2;
  config.local.batch_size = 16;
  config.local.learning_rate = 0.05f;
  config.partition.num_parties = 4;
  config.dp.clip_norm = 5.0;
  config.dp.noise_multiplier = 0.001;
  const ExperimentResult result = RunExperiment(config);
  EXPECT_GT(result.trials[0].final_accuracy, 0.6);
}

TEST(PrivacyTest, HeavyNoiseDestroysLearning) {
  ExperimentConfig config;
  config.dataset = "covtype";
  config.catalog.size_factor = 0.001;
  config.catalog.min_train_size = 300;
  config.catalog.min_test_size = 150;
  config.rounds = 4;
  config.local.local_epochs = 2;
  config.local.batch_size = 16;
  config.local.learning_rate = 0.05f;
  config.partition.num_parties = 4;
  config.dp.clip_norm = 0.1;
  config.dp.noise_multiplier = 10.0;
  const ExperimentResult result = RunExperiment(config);
  EXPECT_LT(result.trials[0].final_accuracy, 0.7);  // ~chance on 2 classes
}

// ------------------------------------------------- heterogeneous epochs

TEST(HeteroEpochsTest, TauVariesAcrossClients) {
  ExperimentConfig config;
  config.dataset = "covtype";
  config.catalog.size_factor = 0.001;
  config.catalog.min_train_size = 400;
  config.catalog.min_test_size = 100;
  config.rounds = 1;
  config.local.local_epochs = 8;
  config.local.batch_size = 16;
  config.min_local_epochs = 1;  // E_i ~ U{1..8}
  config.partition.num_parties = 8;

  Dataset test;
  auto server = BuildServerForTrial(config, 0, &test);
  // Observe tau heterogeneity through the round's mean loss proxy: rerun
  // rounds and check upload accounting is unchanged while training happens.
  LocalTrainOptions local = config.local;
  local.learning_rate = 0.05f;
  // Directly check: clients with equal data sizes but random E_i must
  // produce different tau. Train two rounds and compare deltas via the
  // algorithm interface is awkward; instead verify determinism + learning.
  const RoundStats stats = server->RunRound(local);
  EXPECT_EQ(stats.sampled_clients.size(), 8u);
  const double acc = server->EvaluateGlobal(test).accuracy;
  EXPECT_GT(acc, 0.3);
}

TEST(HeteroEpochsTest, DeterministicAcrossRuns) {
  ExperimentConfig config;
  config.dataset = "covtype";
  config.catalog.size_factor = 0.001;
  config.catalog.min_train_size = 300;
  config.catalog.min_test_size = 100;
  config.rounds = 3;
  config.local.local_epochs = 6;
  config.local.batch_size = 16;
  config.min_local_epochs = 1;
  config.partition.num_parties = 4;
  const ExperimentResult a = RunExperiment(config);
  const ExperimentResult b = RunExperiment(config);
  EXPECT_EQ(a.trials[0].round_accuracy, b.trials[0].round_accuracy);
}

// ------------------------------------------------- FedAvgM

LocalUpdate MakeUpdate(int id, float delta_value, size_t dim) {
  LocalUpdate update;
  update.client_id = id;
  update.num_samples = 100;
  update.delta.assign(dim, delta_value);
  update.tau = 5;
  return update;
}

TEST(FedAvgMTest, MomentumAccumulatesAcrossRounds) {
  AlgorithmConfig config;
  config.server_momentum = 0.9f;
  FedAvg fedavg(config);
  fedavg.Initialize(2, 2);
  StateVector global = {0.f, 0.f};
  const std::vector<StateSegment> layout = {{0, 2, true}};
  // Round 1: avg delta = 1 => v=1, w=-1. Round 2: v=1.9, w=-2.9.
  std::vector<LocalUpdate> updates = {MakeUpdate(0, 1.f, 2),
                                      MakeUpdate(1, 1.f, 2)};
  fedavg.Aggregate(global, updates, layout);
  EXPECT_FLOAT_EQ(global[0], -1.f);
  fedavg.Aggregate(global, updates, layout);
  EXPECT_FLOAT_EQ(global[0], -2.9f);
}

TEST(FedAvgMTest, ZeroMomentumMatchesPlainFedAvg) {
  AlgorithmConfig plain;
  AlgorithmConfig with_momentum;
  with_momentum.server_momentum = 0.f;
  FedAvg a(plain), b(with_momentum);
  a.Initialize(1, 3);
  b.Initialize(1, 3);
  StateVector ga = {1.f, 1.f, 1.f}, gb = ga;
  const std::vector<StateSegment> layout = {{0, 3, true}};
  std::vector<LocalUpdate> updates = {MakeUpdate(0, 0.5f, 3)};
  a.Aggregate(ga, updates, layout);
  b.Aggregate(gb, updates, layout);
  EXPECT_EQ(ga, gb);
}

// ------------------------------------------------- profiler

Dataset MakeLabeledDataset(const std::vector<int>& labels, float mean,
                           int classes = 2) {
  Dataset d;
  d.num_classes = classes;
  d.labels = labels;
  d.features =
      Tensor::Full({static_cast<int64_t>(labels.size()), 4}, mean);
  return d;
}

TEST(ProfilerTest, ProfileCountsAndMoments) {
  const Dataset d = MakeLabeledDataset({0, 0, 1}, 2.f);
  const ClientProfile profile = ProfileClient(7, d);
  EXPECT_EQ(profile.client_id, 7);
  EXPECT_EQ(profile.num_samples, 3);
  EXPECT_EQ(profile.label_counts, (std::vector<int64_t>{2, 1}));
  EXPECT_NEAR(profile.feature_mean, 2.0, 1e-6);
  EXPECT_NEAR(profile.feature_variance, 0.0, 1e-6);
}

TEST(ProfilerTest, DetectsLabelSkew) {
  std::vector<ClientProfile> profiles = {
      ProfileClient(0, MakeLabeledDataset({0, 0, 0, 0}, 0.f)),
      ProfileClient(1, MakeLabeledDataset({1, 1, 1, 1}, 0.f))};
  // Give both non-zero feature variance so feature_shift stays finite.
  profiles[0].feature_variance = 1.0;
  profiles[1].feature_variance = 1.0;
  const SkewDiagnosis diagnosis = DiagnoseSkew(profiles);
  EXPECT_EQ(diagnosis.kind, SkewKind::kLabelSkew);
  EXPECT_NEAR(diagnosis.label_tv_distance, 0.5, 1e-9);
  EXPECT_EQ(diagnosis.recommendation.algorithm, "fedprox");
}

TEST(ProfilerTest, DetectsFeatureSkew) {
  std::vector<ClientProfile> profiles = {
      ProfileClient(0, MakeLabeledDataset({0, 1, 0, 1}, 0.f)),
      ProfileClient(1, MakeLabeledDataset({0, 1, 0, 1}, 3.f))};
  profiles[0].feature_variance = 1.0;
  profiles[1].feature_variance = 1.0;
  const SkewDiagnosis diagnosis = DiagnoseSkew(profiles);
  EXPECT_EQ(diagnosis.kind, SkewKind::kFeatureSkew);
  EXPECT_EQ(diagnosis.recommendation.algorithm, "scaffold");
}

TEST(ProfilerTest, DetectsQuantitySkew) {
  std::vector<ClientProfile> profiles = {
      ProfileClient(0, MakeLabeledDataset(std::vector<int>(100, 0), 0.f)),
      ProfileClient(1, MakeLabeledDataset({0, 0, 0, 0}, 0.f))};
  // Same label distribution (all class 0), same features, sizes 100 vs 4.
  profiles[0].feature_variance = 1.0;
  profiles[1].feature_variance = 1.0;
  const SkewDiagnosis diagnosis = DiagnoseSkew(profiles);
  EXPECT_EQ(diagnosis.kind, SkewKind::kQuantitySkew);
  EXPECT_NEAR(diagnosis.size_imbalance, 25.0, 1e-9);
}

TEST(ProfilerTest, IidLooksClean) {
  std::vector<ClientProfile> profiles = {
      ProfileClient(0, MakeLabeledDataset({0, 1, 0, 1}, 1.f)),
      ProfileClient(1, MakeLabeledDataset({1, 0, 1, 0}, 1.f))};
  profiles[0].feature_variance = 1.0;
  profiles[1].feature_variance = 1.0;
  const SkewDiagnosis diagnosis = DiagnoseSkew(profiles);
  EXPECT_EQ(diagnosis.kind, SkewKind::kNone);
  EXPECT_EQ(diagnosis.recommendation.algorithm, "fedavg");
}

TEST(ProfilerTest, EndToEndOnRealPartitions) {
  // Build actual partitions and check the profiler names the right skew.
  SyntheticImageConfig image_config;
  image_config.train_size = 600;
  image_config.test_size = 50;
  image_config.height = 8;
  image_config.width = 8;
  const Dataset train = MakeSyntheticImages(image_config).train;

  auto diagnose = [&](PartitionStrategy strategy, double beta) {
    PartitionConfig pc;
    pc.strategy = strategy;
    pc.beta = beta;
    pc.num_parties = 10;
    pc.labels_per_party = 1;
    pc.min_samples_per_party = 2;
    pc.noise_sigma = 2.0;
    pc.seed = 77;
    const Partition partition = MakePartition(train, pc);
    std::vector<ClientProfile> profiles;
    Rng rng(5);
    for (int i = 0; i < partition.num_parties(); ++i) {
      profiles.push_back(ProfileClient(
          i, MaterializeClientDataset(train, partition, i, rng)));
    }
    return DiagnoseSkew(profiles);
  };

  EXPECT_EQ(diagnose(PartitionStrategy::kLabelQuantity, 0.5).kind,
            SkewKind::kLabelSkew);
  EXPECT_EQ(diagnose(PartitionStrategy::kHomogeneous, 0.5).kind,
            SkewKind::kNone);
  EXPECT_EQ(diagnose(PartitionStrategy::kQuantityDirichlet, 0.12).kind,
            SkewKind::kQuantitySkew);
  // Noise-based feature skew: zero-mean noise shifts per-party variance,
  // which the scale-shift branch of the detector must pick up.
  EXPECT_EQ(diagnose(PartitionStrategy::kNoise, 0.5).kind,
            SkewKind::kFeatureSkew);
}

TEST(ProfilerTest, PrintsReadableReport) {
  std::vector<ClientProfile> profiles = {
      ProfileClient(0, MakeLabeledDataset({0, 1}, 0.f))};
  profiles[0].feature_variance = 1.0;
  std::ostringstream out;
  PrintDiagnosis(DiagnoseSkew(profiles), out);
  EXPECT_NE(out.str().find("recommended algorithm"), std::string::npos);
}

// ------------------------------------------------- serialization

TEST(SerializationTest, RoundTripsResNetState) {
  Rng rng(11);
  ModelSpec spec;
  spec.name = "resnet";
  spec.input_channels = 1;
  spec.input_height = 16;
  spec.input_width = 16;
  spec.num_classes = 10;
  auto model = CreateModel(spec, rng);
  const StateVector original = FlattenState(*model);

  const std::string path = ::testing::TempDir() + "/model_roundtrip.bin";
  ASSERT_TRUE(SaveModel(*model, path).ok());

  // Scramble, reload, compare.
  Rng rng2(99);
  auto reloaded = CreateModel(spec, rng2);
  EXPECT_NE(FlattenState(*reloaded), original);
  ASSERT_TRUE(LoadModel(*reloaded, path).ok());
  EXPECT_EQ(FlattenState(*reloaded), original);
  std::remove(path.c_str());
}

TEST(SerializationTest, RejectsArchitectureMismatch) {
  Rng rng(12);
  ModelSpec cnn;
  cnn.name = "simple-cnn";
  auto model = CreateModel(cnn, rng);
  const std::string path = ::testing::TempDir() + "/model_mismatch.bin";
  ASSERT_TRUE(SaveModel(*model, path).ok());

  ModelSpec mlp;
  mlp.name = "mlp";
  mlp.input_features = 10;
  auto other = CreateModel(mlp, rng);
  const Status status = LoadModel(*other, path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializationTest, RejectsGarbageFile) {
  const std::string path = ::testing::TempDir() + "/model_garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a model file";
  }
  Rng rng(13);
  ModelSpec spec;
  spec.name = "mlp";
  spec.input_features = 4;
  auto model = CreateModel(spec, rng);
  const Status status = LoadModel(*model, path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(SerializationTest, MissingFileIsNotFound) {
  Rng rng(14);
  ModelSpec spec;
  spec.name = "mlp";
  spec.input_features = 4;
  auto model = CreateModel(spec, rng);
  EXPECT_EQ(LoadModel(*model, "/nonexistent/file.bin").code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace niid
