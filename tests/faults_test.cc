// Tests for the deterministic fault-injection layer and the server's
// quorum-guarded robustness path: pure, seeded fault schedules; the
// ValidateUpdate guard; and bit-identical faulty rounds across thread counts.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "fl/algorithm.h"
#include "fl/client.h"
#include "fl/faults.h"
#include "fl/server.h"
#include "nn/models/factory.h"

namespace niid {
namespace {

FaultConfig AllFaultsConfig() {
  FaultConfig config;
  config.drop_rate = 0.1;
  config.crash_rate = 0.1;
  config.straggle_rate = 0.2;
  config.corrupt_rate = 0.1;
  config.seed = 77;
  return config;
}

// ---------------------------------------------------------------- schedule

TEST(FaultPlanTest, DisabledPlanNeverFaults) {
  FaultPlan plan(FaultConfig{}, /*server_seed=*/5);
  EXPECT_FALSE(plan.enabled());
  for (int round = 0; round < 10; ++round) {
    for (int client = 0; client < 10; ++client) {
      EXPECT_EQ(plan.Decide(round, client).type, FaultType::kNone);
    }
  }
}

TEST(FaultPlanTest, DecideIsAPureFunctionOfRoundAndClient) {
  const FaultConfig config = AllFaultsConfig();
  FaultPlan a(config, /*server_seed=*/5);
  FaultPlan b(config, /*server_seed=*/5);
  for (int round = 0; round < 20; ++round) {
    for (int client = 0; client < 20; ++client) {
      const FaultDecision first = a.Decide(round, client);
      // Same plan asked again, and an independently built plan, must agree.
      const FaultDecision again = a.Decide(round, client);
      const FaultDecision other = b.Decide(round, client);
      EXPECT_EQ(static_cast<int>(first.type), static_cast<int>(again.type));
      EXPECT_EQ(first.work_fraction, again.work_fraction);
      EXPECT_EQ(static_cast<int>(first.type), static_cast<int>(other.type));
      EXPECT_EQ(first.work_fraction, other.work_fraction);
    }
  }
}

TEST(FaultPlanTest, ExplicitSeedDecouplesScheduleFromServerSeed) {
  const FaultConfig config = AllFaultsConfig();  // seed = 77
  FaultPlan a(config, /*server_seed=*/1);
  FaultPlan b(config, /*server_seed=*/999);
  for (int round = 0; round < 10; ++round) {
    for (int client = 0; client < 10; ++client) {
      EXPECT_EQ(static_cast<int>(a.Decide(round, client).type),
                static_cast<int>(b.Decide(round, client).type));
    }
  }
}

TEST(FaultPlanTest, DerivedSeedVariesWithServerSeed) {
  FaultConfig config = AllFaultsConfig();
  config.seed = 0;  // derive from the server seed
  FaultPlan a(config, /*server_seed=*/1);
  FaultPlan b(config, /*server_seed=*/2);
  int differing = 0;
  for (int round = 0; round < 20; ++round) {
    for (int client = 0; client < 20; ++client) {
      if (a.Decide(round, client).type != b.Decide(round, client).type) {
        ++differing;
      }
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultPlanTest, EmpiricalRatesMatchConfiguredRates) {
  const FaultConfig config = AllFaultsConfig();
  FaultPlan plan(config, /*server_seed=*/5);
  const int rounds = 200, clients = 100;
  const double cells = static_cast<double>(rounds) * clients;
  int counts[5] = {0, 0, 0, 0, 0};
  for (int round = 0; round < rounds; ++round) {
    for (int client = 0; client < clients; ++client) {
      ++counts[static_cast<int>(plan.Decide(round, client).type)];
    }
  }
  const double tolerance = 0.02;
  EXPECT_NEAR(counts[static_cast<int>(FaultType::kDrop)] / cells,
              config.drop_rate, tolerance);
  EXPECT_NEAR(counts[static_cast<int>(FaultType::kCrash)] / cells,
              config.crash_rate, tolerance);
  EXPECT_NEAR(counts[static_cast<int>(FaultType::kStraggle)] / cells,
              config.straggle_rate, tolerance);
  EXPECT_NEAR(counts[static_cast<int>(FaultType::kCorrupt)] / cells,
              config.corrupt_rate, tolerance);
}

TEST(FaultPlanTest, WorkFractionsStayWithinConfiguredBounds) {
  FaultConfig config;
  config.straggle_rate = 0.5;
  config.crash_rate = 0.3;
  config.straggle_floor = 0.4;
  config.seed = 3;
  FaultPlan plan(config, /*server_seed=*/5);
  for (int round = 0; round < 50; ++round) {
    for (int client = 0; client < 20; ++client) {
      const FaultDecision decision = plan.Decide(round, client);
      if (decision.type == FaultType::kStraggle ||
          decision.type == FaultType::kCrash) {
        EXPECT_GE(decision.work_fraction, config.straggle_floor);
        EXPECT_LT(decision.work_fraction, 1.0);
      }
    }
  }
}

#ifdef GTEST_HAS_DEATH_TEST
TEST(FaultPlanDeathTest, RejectsOutOfRangeRates) {
  FaultConfig negative;
  negative.drop_rate = -0.1;
  EXPECT_DEATH(FaultPlan(negative, 1), "");
  FaultConfig oversum;
  oversum.drop_rate = 0.6;
  oversum.crash_rate = 0.6;
  EXPECT_DEATH(FaultPlan(oversum, 1), "mutually exclusive");
  FaultConfig bad_floor;
  bad_floor.straggle_rate = 0.1;
  bad_floor.straggle_floor = 0.0;
  EXPECT_DEATH(FaultPlan(bad_floor, 1), "");
}
#endif

// ---------------------------------------------------------------- validate

LocalUpdate SmallUpdate() {
  LocalUpdate update;
  update.client_id = 3;
  update.num_samples = 10;
  update.tau = 4;
  update.average_loss = 0.5;
  update.delta = {0.1f, -0.2f, 0.3f};
  return update;
}

TEST(ValidateUpdateTest, AcceptsFiniteUpdate) {
  EXPECT_TRUE(ValidateUpdate(SmallUpdate(), /*max_update_norm=*/0.0).ok());
  EXPECT_TRUE(ValidateUpdate(SmallUpdate(), /*max_update_norm=*/10.0).ok());
}

TEST(ValidateUpdateTest, RejectsNaNAndInfInDelta) {
  LocalUpdate update = SmallUpdate();
  update.delta[1] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_EQ(ValidateUpdate(update, 0.0).code(), StatusCode::kDataLoss);
  update = SmallUpdate();
  update.delta[0] = std::numeric_limits<float>::infinity();
  EXPECT_EQ(ValidateUpdate(update, 0.0).code(), StatusCode::kDataLoss);
}

TEST(ValidateUpdateTest, RejectsNonFiniteControlVariateAndLoss) {
  LocalUpdate update = SmallUpdate();
  update.delta_c = {0.f, std::numeric_limits<float>::quiet_NaN()};
  EXPECT_EQ(ValidateUpdate(update, 0.0).code(), StatusCode::kDataLoss);
  update = SmallUpdate();
  update.average_loss = std::numeric_limits<double>::infinity();
  EXPECT_EQ(ValidateUpdate(update, 0.0).code(), StatusCode::kDataLoss);
}

TEST(ValidateUpdateTest, NormCapCatchesFiniteBlowup) {
  LocalUpdate update = SmallUpdate();
  for (float& v : update.delta) v *= 1e7f;
  // Finite, so a finiteness-only check passes it...
  EXPECT_TRUE(ValidateUpdate(update, /*max_update_norm=*/0.0).ok());
  // ...but the norm cap does not.
  EXPECT_EQ(ValidateUpdate(update, /*max_update_norm=*/100.0).code(),
            StatusCode::kInvalidArgument);
}

TEST(CorruptTest, EveryModeIsCaughtByTheGuard) {
  FaultConfig config;
  config.corrupt_rate = 1.0;
  config.seed = 11;
  FaultPlan plan(config, /*server_seed=*/5);
  int caught = 0, seen = 0;
  bool saw_modes[3] = {false, false, false};
  for (int client = 0; client < 64; ++client) {
    const FaultDecision decision = plan.Decide(/*round=*/0, client);
    ASSERT_EQ(static_cast<int>(decision.type),
              static_cast<int>(FaultType::kCorrupt));
    saw_modes[static_cast<int>(decision.corruption)] = true;
    LocalUpdate update = SmallUpdate();
    update.delta.assign(256, 0.01f);
    plan.Corrupt(decision, /*round=*/0, client, update);
    ++seen;
    if (!ValidateUpdate(update, /*max_update_norm=*/100.0).ok()) ++caught;
  }
  EXPECT_EQ(caught, seen);
  EXPECT_TRUE(saw_modes[0] && saw_modes[1] && saw_modes[2])
      << "64 corrupt draws should exercise NaN, Inf, and norm-blowup";
}

// --------------------------------------------------------------- federation

ModelSpec FaultMlpSpec() {
  ModelSpec spec;
  spec.name = "mlp";
  spec.input_features = 10;
  spec.num_classes = 2;
  return spec;
}

Dataset FaultDataset(int64_t n, uint64_t seed) {
  SyntheticTabularConfig config;
  config.num_features = 10;
  config.train_size = n;
  config.test_size = 1;
  config.class_sep = 3.0f;
  config.seed = seed;
  return MakeSyntheticTabular(config).train;
}

std::vector<std::unique_ptr<Client>> FaultClients(int num_clients,
                                                  int64_t samples_each) {
  Dataset full = FaultDataset(256, /*seed=*/4242);
  std::vector<std::unique_ptr<Client>> clients;
  for (int i = 0; i < num_clients; ++i) {
    std::vector<int64_t> shard;
    for (int64_t k = 0; k < samples_each; ++k) {
      shard.push_back((static_cast<int64_t>(i) * samples_each + k) %
                      full.size());
    }
    clients.push_back(
        std::make_unique<Client>(i, Subset(full, shard), Rng(100 + i)));
  }
  return clients;
}

std::unique_ptr<FederatedServer> FaultServer(const std::string& algorithm,
                                             const ServerConfig& config,
                                             int num_clients = 6,
                                             int64_t samples_each = 32) {
  auto algorithm_or = CreateAlgorithm(algorithm, AlgorithmConfig{});
  return std::make_unique<FederatedServer>(
      MakeModelFactory(FaultMlpSpec()), FaultClients(num_clients, samples_each),
      std::move(*algorithm_or), config);
}

LocalTrainOptions FaultOptions() {
  LocalTrainOptions options;
  options.local_epochs = 2;
  options.batch_size = 16;
  options.learning_rate = 0.05f;
  return options;
}

struct FaultRunResult {
  StateVector state;
  std::vector<int> dropped, crashed, straggled, rejected, aggregated;
  std::vector<double> losses;
};

FaultRunResult RunFaultyRounds(const std::string& algorithm, int threads,
                               int rounds) {
  ServerConfig config;
  config.seed = 5;
  config.num_threads = threads;
  config.faults = AllFaultsConfig();
  config.max_update_norm = 1e4;
  config.min_aggregate_clients = 2;
  FaultRunResult result;
  auto server = FaultServer(algorithm, config);
  for (int round = 0; round < rounds; ++round) {
    const RoundStats stats = server->RunRound(FaultOptions());
    result.dropped.push_back(stats.dropped);
    result.crashed.push_back(stats.crashed);
    result.straggled.push_back(stats.straggled);
    result.rejected.push_back(stats.rejected);
    result.aggregated.push_back(stats.aggregated);
    result.losses.push_back(stats.mean_local_loss);
  }
  result.state = server->global_state();
  return result;
}

// The tentpole determinism claim: a faulty federation — drops, crashes,
// stragglers, corrupted uploads, rejections, quorum bookkeeping — must be
// bit-identical across num_threads in {1, 2, 8} for every algorithm family.
TEST(FaultRoundTest, FaultyRoundsBitIdenticalAcrossThreadCounts) {
  for (const std::string name :
       {"fedavg", "fedprox", "scaffold", "fednova", "fedadam"}) {
    const FaultRunResult base = RunFaultyRounds(name, /*threads=*/1,
                                                /*rounds=*/4);
    for (int threads : {2, 8}) {
      const FaultRunResult run = RunFaultyRounds(name, threads, /*rounds=*/4);
      EXPECT_EQ(run.state, base.state) << name << " threads=" << threads;
      EXPECT_EQ(run.dropped, base.dropped) << name;
      EXPECT_EQ(run.crashed, base.crashed) << name;
      EXPECT_EQ(run.straggled, base.straggled) << name;
      EXPECT_EQ(run.rejected, base.rejected) << name;
      EXPECT_EQ(run.aggregated, base.aggregated) << name;
      EXPECT_EQ(run.losses, base.losses) << name;
    }
  }
}

// With faults configured but every rate zero, the fault layer must be fully
// transparent: bitwise-identical to a server that never heard of faults.
TEST(FaultRoundTest, ZeroRatesAreBitTransparent) {
  ServerConfig plain;
  plain.seed = 5;
  ServerConfig with_layer = plain;
  with_layer.faults.seed = 123;  // configured, but no rate is positive
  with_layer.max_update_norm = 1e9;
  auto a = FaultServer("fedavg", plain);
  auto b = FaultServer("fedavg", with_layer);
  for (int round = 0; round < 3; ++round) {
    a->RunRound(FaultOptions());
    b->RunRound(FaultOptions());
  }
  EXPECT_EQ(a->global_state(), b->global_state());
}

TEST(FaultRoundTest, CorruptedUpdatesAreRejectedNotAggregated) {
  ServerConfig config;
  config.seed = 5;
  config.faults.corrupt_rate = 1.0;
  config.faults.seed = 9;
  config.max_update_norm = 1e4;
  config.max_resample_retries = 1;
  auto server = FaultServer("fedavg", config);
  const StateVector before = server->global_state();
  const RoundStats stats = server->RunRound(FaultOptions());
  // Every upload is corrupted and every mode is caught, so nothing survives:
  // the round falls below quorum and the global model must not move.
  EXPECT_EQ(stats.aggregated, 0);
  EXPECT_FALSE(stats.quorum_met);
  EXPECT_GT(stats.rejected, 0);
  EXPECT_EQ(server->global_state(), before);
  EXPECT_EQ(server->rounds_completed(), 1);
}

TEST(FaultRoundTest, AllDropRoundTerminatesWithinRetryBudget) {
  ServerConfig config;
  config.seed = 5;
  config.faults.drop_rate = 1.0;
  config.faults.seed = 9;
  config.min_aggregate_clients = 3;
  config.max_resample_retries = 2;
  auto server = FaultServer("fedavg", config);
  const StateVector before = server->global_state();
  const RoundStats stats = server->RunRound(FaultOptions());
  EXPECT_FALSE(stats.quorum_met);
  EXPECT_EQ(stats.aggregated, 0);
  EXPECT_LE(stats.resample_retries, config.max_resample_retries);
  // Full participation: everyone was attempted once, then the round gave up.
  EXPECT_EQ(stats.dropped, server->num_clients());
  EXPECT_EQ(server->global_state(), before);
  EXPECT_EQ(server->rounds_completed(), 1);
  EXPECT_EQ(stats.mean_local_loss, 0.0);
}

TEST(FaultRoundTest, QuorumResamplesUnderPartialParticipation) {
  // Half the parties drop; sampling 2 of 12 per attempt with a quorum of 3
  // forces re-sampling, and the retry budget bounds it.
  ServerConfig config;
  config.seed = 5;
  config.sample_fraction = 0.17;  // 2 of 12
  config.faults.drop_rate = 0.5;
  config.faults.seed = 9;
  config.min_aggregate_clients = 3;
  config.max_resample_retries = 5;
  auto server = FaultServer("fedavg", config, /*num_clients=*/12,
                            /*samples_each=*/16);
  int retries = 0;
  for (int round = 0; round < 5; ++round) {
    const RoundStats stats = server->RunRound(FaultOptions());
    retries += stats.resample_retries;
    EXPECT_LE(stats.resample_retries, config.max_resample_retries);
    if (stats.quorum_met) {
      EXPECT_GE(stats.aggregated, config.min_aggregate_clients);
    }
  }
  EXPECT_GT(retries, 0) << "a 2-party sample cannot meet a 3-party quorum "
                           "without re-sampling";
}

// Stragglers exercise FedNova's variable-tau normalization: a heavily
// truncated federation must still train (tau_i differs per party and per
// round, and aggregation has to stay well-defined).
TEST(FaultRoundTest, StragglersKeepFedNovaWellDefined) {
  ServerConfig config;
  config.seed = 5;
  config.faults.straggle_rate = 1.0;
  config.faults.straggle_floor = 0.1;
  config.faults.seed = 9;
  auto server = FaultServer("fednova", config);
  for (int round = 0; round < 3; ++round) {
    const RoundStats stats = server->RunRound(FaultOptions());
    EXPECT_TRUE(stats.quorum_met);
    EXPECT_EQ(stats.straggled, server->num_clients());
    EXPECT_EQ(stats.aggregated, server->num_clients());
  }
  for (const float v : server->global_state()) {
    ASSERT_TRUE(std::isfinite(v));
  }
}

// A crashed party's work is discarded before any durable state moves:
// SCAFFOLD's control variates must evolve exactly as if the party had never
// been sampled into the round's aggregation.
TEST(FaultRoundTest, CrashDiscardsUpdateBeforeAggregation) {
  ServerConfig config;
  config.seed = 5;
  config.faults.crash_rate = 1.0;
  config.faults.seed = 9;
  auto server = FaultServer("scaffold", config);
  const StateVector before = server->global_state();
  const RoundStats stats = server->RunRound(FaultOptions());
  EXPECT_EQ(stats.crashed, server->num_clients());
  EXPECT_EQ(stats.aggregated, 0);
  EXPECT_EQ(server->global_state(), before);
}

}  // namespace
}  // namespace niid
