// Tests for the FedOpt extension family (FedAdam / FedYogi / FedAdagrad).

#include <gtest/gtest.h>

#include <cmath>

#include "core/runner.h"
#include "fl/fedopt.h"

namespace niid {
namespace {

LocalUpdate UniformUpdate(float delta_value, size_t dim,
                          int64_t samples = 100) {
  LocalUpdate update;
  update.client_id = 0;
  update.num_samples = samples;
  update.delta.assign(dim, delta_value);
  update.tau = 5;
  return update;
}

std::vector<StateSegment> TrainableLayout(int64_t dim) {
  return {{0, dim, true}};
}

AlgorithmConfig SimpleConfig() {
  AlgorithmConfig config;
  config.fedopt_beta1 = 0.9f;
  config.fedopt_beta2 = 0.99f;
  config.fedopt_tau = 1e-3f;
  config.fedopt_server_lr = 0.1f;
  return config;
}

TEST(FedOptTest, NamesAndFactory) {
  for (const std::string name : {"fedadam", "fedyogi", "fedadagrad"}) {
    auto algorithm = CreateAlgorithm(name, AlgorithmConfig{});
    ASSERT_TRUE(algorithm.ok()) << name;
    EXPECT_EQ((*algorithm)->name(), name);
  }
  EXPECT_EQ(ExtendedAlgorithmNames().size(), 7u);
  EXPECT_EQ(AlgorithmNames().size(), 4u);  // paper's four stay canonical
}

TEST(FedOptTest, AdamFirstStepMatchesHandComputation) {
  const AlgorithmConfig config = SimpleConfig();
  FedOpt adam(config, FedOptVariant::kAdam);
  adam.Initialize(1, 2);
  StateVector global = {0.f, 0.f};
  std::vector<LocalUpdate> updates = {UniformUpdate(0.5f, 2)};
  adam.Aggregate(global, updates, TrainableLayout(2));
  // m = 0.1 * 0.5 = 0.05; v = 0.99 * tau^2 + 0.01 * 0.25 ~= 0.0025;
  // step = 0.1 * 0.05 / (sqrt(0.0025) + 1e-3).
  const float v = 0.99f * 1e-6f + 0.01f * 0.25f;
  const float expected = 0.1f * 0.05f / (std::sqrt(v) + 1e-3f);
  EXPECT_NEAR(global[0], -expected, 1e-6f);
  EXPECT_NEAR(adam.momentum()[0], 0.05f, 1e-7f);
}

TEST(FedOptTest, AdagradAccumulatesSecondMoment) {
  FedOpt adagrad(SimpleConfig(), FedOptVariant::kAdagrad);
  adagrad.Initialize(1, 1);
  StateVector global = {0.f};
  std::vector<LocalUpdate> updates = {UniformUpdate(1.f, 1)};
  adagrad.Aggregate(global, updates, TrainableLayout(1));
  adagrad.Aggregate(global, updates, TrainableLayout(1));
  // v = tau^2 + 1 + 1 ~= 2; strictly increasing.
  EXPECT_NEAR(adagrad.second_moment()[0], 2.f, 1e-4f);
}

TEST(FedOptTest, YogiMovesSecondMomentTowardSquare) {
  FedOpt yogi(SimpleConfig(), FedOptVariant::kYogi);
  yogi.Initialize(1, 1);
  StateVector global = {0.f};
  // v starts at tau^2 ~ 0 < d^2 = 1, so Yogi increases v by (1-beta2)*d^2.
  std::vector<LocalUpdate> updates = {UniformUpdate(1.f, 1)};
  yogi.Aggregate(global, updates, TrainableLayout(1));
  EXPECT_NEAR(yogi.second_moment()[0], 1e-6f + 0.01f, 1e-6f);
  // Now shrink: with d = 0, sign(v - 0) = +1 and v stays (d2 = 0 => no-op).
  std::vector<LocalUpdate> zero = {UniformUpdate(0.f, 1)};
  const float v_before = yogi.second_moment()[0];
  yogi.Aggregate(global, zero, TrainableLayout(1));
  EXPECT_NEAR(yogi.second_moment()[0], v_before, 1e-7f);
}

TEST(FedOptTest, AdaptiveStepIsBoundedByServerLr) {
  // Even a huge delta produces a per-coordinate step of about server_lr
  // once normalized — the defining property of the adaptive family.
  FedOpt adam(SimpleConfig(), FedOptVariant::kAdam);
  adam.Initialize(1, 1);
  StateVector global = {0.f};
  std::vector<LocalUpdate> updates = {UniformUpdate(1000.f, 1)};
  adam.Aggregate(global, updates, TrainableLayout(1));
  // |step| <= server_lr * (1-beta1)*d / (sqrt((1-beta2)) * d) ~ lr.
  EXPECT_LT(std::abs(global[0]), 0.11f);
}

TEST(FedOptTest, BuffersArePlainAveraged) {
  FedOpt adam(SimpleConfig(), FedOptVariant::kAdam);
  adam.Initialize(1, 4);
  StateVector global = {0.f, 0.f, 10.f, 10.f};
  const std::vector<StateSegment> layout = {{0, 2, true}, {2, 2, false}};
  std::vector<LocalUpdate> updates = {UniformUpdate(1.f, 4)};
  adam.Aggregate(global, updates, layout);
  // Buffer positions get the raw averaged delta (w -= delta).
  EXPECT_FLOAT_EQ(global[2], 9.f);
  EXPECT_FLOAT_EQ(global[3], 9.f);
  // Trainable positions get the adaptive (bounded) step instead.
  EXPECT_GT(global[0], -0.11f);
}

TEST(FedOptTest, EndToEndLearnsOnTabularData) {
  for (const std::string name : {"fedadam", "fedyogi", "fedadagrad"}) {
    ExperimentConfig config;
    config.dataset = "covtype";
    config.catalog.size_factor = 0.001;
    config.catalog.min_train_size = 400;
    config.catalog.min_test_size = 150;
    config.rounds = 10;
    config.local.local_epochs = 2;
    config.local.batch_size = 16;
    config.local.learning_rate = 0.05f;
    config.algo.fedopt_server_lr = 0.05f;
    config.algorithm = name;
    config.partition.num_parties = 4;
    const ExperimentResult result = RunExperiment(config);
    EXPECT_GT(result.trials[0].final_accuracy, 0.6) << name;
  }
}

TEST(FedOptTest, DeterministicAcrossRuns) {
  ExperimentConfig config;
  config.dataset = "covtype";
  config.catalog.size_factor = 0.001;
  config.catalog.min_train_size = 240;
  config.catalog.min_test_size = 100;
  config.rounds = 4;
  config.local.local_epochs = 2;
  config.local.batch_size = 16;
  config.algorithm = "fedyogi";
  config.partition.num_parties = 4;
  const ExperimentResult a = RunExperiment(config);
  const ExperimentResult b = RunExperiment(config);
  EXPECT_EQ(a.trials[0].round_accuracy, b.trials[0].round_accuracy);
}


TEST(FedOptTest, PartialParticipationRuns) {
  ExperimentConfig config;
  config.dataset = "covtype";
  config.catalog.size_factor = 0.001;
  config.catalog.min_train_size = 400;
  config.catalog.min_test_size = 100;
  config.rounds = 5;
  config.local.local_epochs = 2;
  config.local.batch_size = 16;
  config.algorithm = "fedadam";
  config.partition.num_parties = 10;
  config.partition.min_samples_per_party = 2;
  config.sample_fraction = 0.3;
  const ExperimentResult result = RunExperiment(config);
  EXPECT_GE(result.trials[0].final_accuracy, 0.0);
  EXPECT_LE(result.trials[0].final_accuracy, 1.0);
}

TEST(FedOptTest, MomentumDecaysWithoutUpdates) {
  // After a large delta, rounds with zero deltas shrink m geometrically.
  FedOpt adam(SimpleConfig(), FedOptVariant::kAdam);
  adam.Initialize(1, 1);
  StateVector global = {0.f};
  std::vector<LocalUpdate> big = {UniformUpdate(1.f, 1)};
  adam.Aggregate(global, big, TrainableLayout(1));
  const float m1 = adam.momentum()[0];
  std::vector<LocalUpdate> zero = {UniformUpdate(0.f, 1)};
  adam.Aggregate(global, zero, TrainableLayout(1));
  EXPECT_NEAR(adam.momentum()[0], 0.9f * m1, 1e-7f);
}

}  // namespace
}  // namespace niid
